# Convenience targets for the OpenMP-MCA reproduction.

GO ?= go

.PHONY: all build vet test race bench experiments taskgraph clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ompmca-epcc -outer 15 -absolute
	$(GO) run ./cmd/ompmca-npb -class W
	$(GO) run ./cmd/ompmca-info
	$(GO) run ./cmd/ompmca-boot -v
	$(GO) run ./cmd/ompmca-validate
	$(GO) run ./cmd/ompmca-offload
	$(GO) run ./cmd/ompmca-taskgraph

# MTAPI task-fabric demo: irregular graph across domains, work stealing,
# domain-loss fault injection.
taskgraph:
	$(GO) run ./cmd/ompmca-taskgraph

clean:
	$(GO) clean ./...
