# Convenience targets for the OpenMP-MCA reproduction.

GO ?= go

.PHONY: all build vet test race bench bench-json bench-compare bench-compare-fresh \
	experiments taskgraph mesh-smoke api api-check serve loadgen service-smoke \
	chaos chaos-smoke crash-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# -run '^$' keeps the unit tests out of the benchmark run (without it
# every package's tests execute first, drowning the timings).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# Machine-readable benchmark trajectory (internal/benchjson schema).
# Usage: make bench-json [BENCH_LABEL=pr7] [BENCH_OUT=BENCH_7.json]
BENCH_LABEL ?= dev
BENCH_OUT   ?= bench-dev.json
bench-json:
	$(GO) run ./cmd/ompmca-bench -label $(BENCH_LABEL) -out $(BENCH_OUT)

# Diff the two newest committed trajectories and fail on regressions.
bench-compare:
	$(GO) run ./cmd/ompmca-bench -compare -fail-on-regression \
		$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -2)

# Report-only drift check for CI: a fresh short measurement against the
# newest committed trajectory. CI runners are noisy shared machines, so
# the tolerance is loose and regressions are reported, never fatal.
bench-compare-fresh:
	$(GO) run ./cmd/ompmca-bench -benchtime 0.05s -label fresh -out /tmp/bench-fresh.json
	$(GO) run ./cmd/ompmca-bench -compare -tolerance 75 \
		$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1) /tmp/bench-fresh.json

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ompmca-epcc -outer 15 -absolute
	$(GO) run ./cmd/ompmca-npb -class W
	$(GO) run ./cmd/ompmca-info
	$(GO) run ./cmd/ompmca-boot -v
	$(GO) run ./cmd/ompmca-validate
	$(GO) run ./cmd/ompmca-offload
	$(GO) run ./cmd/ompmca-taskgraph

# MTAPI task-fabric demo: irregular graph across domains, work stealing,
# domain-loss fault injection.
taskgraph:
	$(GO) run ./cmd/ompmca-taskgraph

# Peer-steal mesh smoke: the task graph at 3 and 8 domains with the mesh
# on (asserting at least one direct peer steal) and off (asserting the
# host-brokered path alone still settles byte-exact), then the two fixed
# seed-42 mesh fault campaigns (kill-victim-mid-yield, dead-peer-channel).
# CI runs this on every push.
mesh-smoke:
	$(GO) run ./cmd/ompmca-taskgraph -n 26 -cutoff 18 -leaf-delay 1ms -domains 3 -require-peer-steals
	$(GO) run ./cmd/ompmca-taskgraph -n 26 -cutoff 18 -leaf-delay 1ms -domains 8 -require-peer-steals
	$(GO) run ./cmd/ompmca-taskgraph -n 26 -cutoff 18 -leaf-delay 1ms -domains 3 -peer-steal=false
	$(GO) run ./cmd/ompmca-taskgraph -n 26 -cutoff 18 -leaf-delay 1ms -domains 8 -peer-steal=false
	$(GO) run ./cmd/ompmca-chaos -mesh

# Public API surface gate. API.txt is the committed `go doc .` output;
# `make api` regenerates it after an intentional surface change,
# `make api-check` (run in CI) fails when the surface drifted without
# the file being updated.
api:
	$(GO) doc . > API.txt

api-check:
	$(GO) doc . > /tmp/api-now.txt
	diff -u API.txt /tmp/api-now.txt || \
		{ echo "public API surface changed: run 'make api' and commit API.txt"; exit 1; }

# Seeded fault campaigns against offload, fabric and service workloads:
# byte-exact results and zero lost jobs under domain kills, frame
# drops/delays/duplication, admission saturation and group cancellation.
# Usage: make chaos [CHAOS_SEED=42] [CHAOS_CAMPAIGNS=6] [CHAOS_DURATION=2s]
CHAOS_SEED      ?= 42
CHAOS_CAMPAIGNS ?= 6
CHAOS_DURATION  ?= 2s
chaos:
	$(GO) run ./cmd/ompmca-chaos -seed $(CHAOS_SEED) \
		-campaigns $(CHAOS_CAMPAIGNS) -duration $(CHAOS_DURATION) -v

# Short seeded campaign sweep under the race detector; CI runs this on
# every push. Nonzero exit on any lost job, inexact result or
# unclassified error.
chaos-smoke:
	$(GO) run -race ./cmd/ompmca-chaos -seed 42 -campaigns 3 -duration 1s
	$(GO) run -race ./cmd/ompmca-chaos -kill-mid-graph

# Durable-store crash smoke: SIGKILL a loaded ompmca-serve (no graceful
# shutdown) with jobs queued and mid-flight, restart it over the same
# state dir, and require zero lost jobs with byte-exact results — the
# write-ahead journal's recovery contract under genuine process death.
# CI runs this on every push.
crash-smoke:
	$(GO) build -o /tmp/ompmca-serve ./cmd/ompmca-serve
	$(GO) run ./cmd/ompmca-chaos -crash -serve-bin /tmp/ompmca-serve

# Multi-tenant job service: boot the HTTP front end / drive it.
serve:
	$(GO) run ./cmd/ompmca-serve

loadgen:
	$(GO) run ./cmd/ompmca-loadgen

# End-to-end service smoke: boot ompmca-serve, drive it with 1000
# concurrent submitters across 3 tenants with mid-run fault injection,
# require zero lost jobs. CI runs this on every push.
service-smoke:
	$(GO) build -o /tmp/ompmca-serve ./cmd/ompmca-serve
	$(GO) build -o /tmp/ompmca-loadgen ./cmd/ompmca-loadgen
	/tmp/ompmca-serve -addr 127.0.0.1:18080 & \
	SERVE_PID=$$!; \
	trap "kill $$SERVE_PID 2>/dev/null" EXIT; \
	/tmp/ompmca-loadgen -addr http://127.0.0.1:18080 -submitters 1000 -jobs 2 -fault

clean:
	$(GO) clean ./...
