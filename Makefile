# Convenience targets for the OpenMP-MCA reproduction.

GO ?= go

.PHONY: all build vet test race bench bench-json bench-compare experiments taskgraph clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# -run '^$' keeps the unit tests out of the benchmark run (without it
# every package's tests execute first, drowning the timings).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# Machine-readable benchmark trajectory (internal/benchjson schema).
# Usage: make bench-json [BENCH_LABEL=pr7] [BENCH_OUT=BENCH_7.json]
BENCH_LABEL ?= dev
BENCH_OUT   ?= bench-dev.json
bench-json:
	$(GO) run ./cmd/ompmca-bench -label $(BENCH_LABEL) -out $(BENCH_OUT)

# Diff the two newest committed trajectories and fail on regressions.
bench-compare:
	$(GO) run ./cmd/ompmca-bench -compare -fail-on-regression \
		$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -2)

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ompmca-epcc -outer 15 -absolute
	$(GO) run ./cmd/ompmca-npb -class W
	$(GO) run ./cmd/ompmca-info
	$(GO) run ./cmd/ompmca-boot -v
	$(GO) run ./cmd/ompmca-validate
	$(GO) run ./cmd/ompmca-offload
	$(GO) run ./cmd/ompmca-taskgraph

# MTAPI task-fabric demo: irregular graph across domains, work stealing,
# domain-loss fault injection.
taskgraph:
	$(GO) run ./cmd/ompmca-taskgraph

clean:
	$(GO) clean ./...
