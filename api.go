package openmpmca

import (
	"openmpmca/internal/core"
)

// The root package fronts the runtime implementation in internal/core with
// a stable, importable surface: aliases for the core types (so values flow
// freely between the facade and in-module code that still imports
// internal/core) plus thin wrappers for the constructors. Programs should
// import "openmpmca" and never reach into internal/.

// Runtime is an OpenMP-style runtime instance; see New.
//
// A Runtime is safe for concurrent use by multiple goroutines: overlapping
// parallel regions lease warm teams and disjoint pool workers, panics in
// region bodies are contained into RegionPanicError results, and
// WithMaxConcurrentRegions bounds how many regions may be in flight.
type Runtime = core.Runtime

// Context is the per-thread handle a parallel region's body receives: it
// carries the thread number and the worksharing, tasking and
// synchronization constructs (For, Sections, Single, Critical, Barrier,
// Task, ...).
type Context = core.Context

// Option configures a Runtime at construction; see New.
type Option = core.Option

// Stats is the runtime's live counter set; StatsSnapshot a point-in-time
// copy of it.
type (
	Stats         = core.Stats
	StatsSnapshot = core.StatsSnapshot
)

// ThreadLayer is the substrate a Runtime forks threads and allocates
// runtime memory through — the native Go layer or the MCA (MRAPI) layer.
type ThreadLayer = core.ThreadLayer

// Monitor observes runtime events (forks, barriers, criticals, cancels);
// see WithMonitor.
type Monitor = core.Monitor

// Schedule selects a loop iteration schedule.
type Schedule = core.Schedule

// Loop schedules (schedule clause / OMP_SCHEDULE).
const (
	ScheduleStatic  = core.ScheduleStatic
	ScheduleDynamic = core.ScheduleDynamic
	ScheduleGuided  = core.ScheduleGuided
	ScheduleAuto    = core.ScheduleAuto
)

// BarrierKind selects the team barrier algorithm.
type BarrierKind = core.BarrierKind

// Barrier algorithms (ablation knob).
const (
	BarrierCentral = core.BarrierCentral
	BarrierTree    = core.BarrierTree
)

// TaskQueue selects the task-scheduler structure.
type TaskQueue = core.TaskQueue

// Task-scheduler structures (ablation knob).
const (
	TaskQueueSteal  = core.TaskQueueSteal
	TaskQueueShared = core.TaskQueueShared
)

// Lock and NestLock are the omp_lock_t / omp_nest_lock_t counterparts;
// create them with Runtime.NewLock / Runtime.NewNestLock.
type (
	Lock     = core.Lock
	NestLock = core.NestLock
)

// Error sentinels. Every error a Runtime returns matches at most one of
// these under errors.Is:
//
//   - ErrClosed: the fork (or lock creation) raced or followed Close;
//   - ErrSaturated: the admission queue behind WithMaxConcurrentRegions
//     was full — backpressure, retry later;
//   - ErrCanceled: the region was torn down early; the cause (the ctx
//     error, e.g. context.DeadlineExceeded) is wrapped alongside;
//   - ErrInvalidOption: an option constructor rejected its argument and
//     New refused to build the runtime.
var (
	ErrClosed        = core.ErrClosed
	ErrSaturated     = core.ErrSaturated
	ErrCanceled      = core.ErrCanceled
	ErrInvalidOption = core.ErrInvalidOption
)

// RegionPanicError is what a fork returns when a region body panicked:
// the first panic value with its stack, retrievable with errors.As. The
// panicking team was canceled and its structures rebuilt; the Runtime
// stays fully usable.
type RegionPanicError = core.RegionPanicError

// New creates a runtime. With no options it runs on the native thread
// layer with one thread per host processor:
//
//	rt, err := openmpmca.New()
//	defer rt.Close()
//	err = rt.ParallelFor(n, func(i int) { out[i] = f(in[i]) })
func New(opts ...Option) (*Runtime, error) { return core.New(opts...) }

// NewNativeLayer builds the plain-goroutine thread layer; nprocs <= 0
// means "use the host processor count".
func NewNativeLayer(nprocs int) ThreadLayer { return core.NewNativeLayer(nprocs) }

// WithLayer selects the thread layer (default: NewNativeLayer(0)).
func WithLayer(l ThreadLayer) Option { return core.WithLayer(l) }

// WithNumThreads sets the default team size (OMP_NUM_THREADS).
func WithNumThreads(n int) Option { return core.WithNumThreads(n) }

// WithSchedule sets the runtime loop schedule (OMP_SCHEDULE).
func WithSchedule(s Schedule, chunk int) Option { return core.WithSchedule(s, chunk) }

// WithMonitor installs an execution monitor.
func WithMonitor(m Monitor) Option { return core.WithMonitor(m) }

// WithBarrierKind selects the barrier algorithm.
func WithBarrierKind(k BarrierKind) Option { return core.WithBarrierKind(k) }

// WithTaskQueue selects the task-scheduler structure.
func WithTaskQueue(k TaskQueue) Option { return core.WithTaskQueue(k) }

// WithEnv loads ICVs from OpenMP environment variables through getenv
// (pass os.Getenv).
func WithEnv(getenv func(string) string) Option { return core.WithEnv(getenv) }

// WithMaxConcurrentRegions caps the number of parallel regions in flight:
// up to max run, up to max more queue, and further forks fail fast with
// ErrSaturated. 0 (the default) removes the cap.
func WithMaxConcurrentRegions(max int) Option { return core.WithMaxConcurrentRegions(max) }

// WithTeamLeasing toggles the warm-team cache (default on).
func WithTeamLeasing(on bool) Option { return core.WithTeamLeasing(on) }

// Reduce performs a parallel reduction over 0..n-1 inside a region; every
// thread must call it (it contains a barrier). See core.Reduce.
func Reduce[T any](c *Context, n int, identity T, op func(T, T) T, body func(lo, hi int) T) T {
	return core.Reduce(c, n, identity, op, body)
}

// SingleCopy runs fn on one thread and broadcasts its result to the whole
// team (single + copyprivate).
func SingleCopy[T any](c *Context, fn func() T) T { return core.SingleCopy(c, fn) }

// ParseSchedule parses an OMP_SCHEDULE-style "kind[,chunk]" string.
func ParseSchedule(s string) (Schedule, int, error) { return core.ParseSchedule(s) }
