package openmpmca

import (
	"errors"
	"fmt"
	"testing"

	"openmpmca/internal/oerrors"
)

// TestSentinelTaxonomyParity pins the rewrap contract for every public
// sentinel across all four facade families (New, NewOffload,
// NewTaskFabric, NewJobService): errors.Is still matches the sentinel
// bare and through fmt.Errorf wrapping, errors.As extracts the
// classified error, and the category/code pair is stable.
func TestSentinelTaxonomyParity(t *testing.T) {
	cases := []struct {
		name string
		err  error
		cat  ErrorCategory
		code string
	}{
		{"core/ErrClosed", ErrClosed, ErrorCancel, "runtime_closed"},
		{"core/ErrSaturated", ErrSaturated, ErrorAdmission, "saturated"},
		{"core/ErrCanceled", ErrCanceled, ErrorCancel, "canceled"},
		{"core/ErrInvalidOption", ErrInvalidOption, ErrorAdmission, "invalid_option"},
		{"offload/ErrDomainLost", ErrDomainLost, ErrorDomain, "domain_lost"},
		{"fabric/ErrFabricClosed", ErrFabricClosed, ErrorCancel, "fabric_closed"},
		{"fabric/ErrTaskCanceled", ErrTaskCanceled, ErrorCancel, "task_canceled"},
		{"fabric/ErrGroupDrained", ErrGroupDrained, ErrorInternal, "group_drained"},
		{"service/ErrServiceClosed", ErrServiceClosed, ErrorCancel, "service_closed"},
	}
	for _, tc := range cases {
		wraps := []struct {
			name string
			err  error
		}{
			{"bare", tc.err},
			{"wrapped", fmt.Errorf("context: %w", tc.err)},
			{"double-wrapped", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", tc.err))},
		}
		for _, w := range wraps {
			name := tc.name + "/" + w.name
			if !errors.Is(w.err, tc.err) {
				t.Errorf("%s: errors.Is lost the sentinel", name)
			}
			var e *oerrors.E
			if !errors.As(w.err, &e) {
				t.Errorf("%s: errors.As found no classified error in %v", name, w.err)
				continue
			}
			if e.Cat != tc.cat || e.Code != tc.code {
				t.Errorf("%s: classified %s/%s, want %s/%s", name, e.Cat, e.Code, tc.cat, tc.code)
			}
			if cat, ok := ErrorCategoryOf(w.err); !ok || cat != tc.cat {
				t.Errorf("%s: ErrorCategoryOf = %v/%v, want %s", name, cat, ok, tc.cat)
			}
			if code, ok := ErrorCodeOf(w.err); !ok || code != tc.code {
				t.Errorf("%s: ErrorCodeOf = %v/%v, want %s", name, code, ok, tc.code)
			}
		}
	}
}

// TestClosedErrorsClassifiedAcrossConstructors provokes a live
// post-Close error from each facade constructor's product and asserts
// the surfaced value still matches its sentinel AND carries the
// taxonomy code — the rewrap must hold on real error paths, not just on
// the sentinels themselves.
func TestClosedErrorsClassifiedAcrossConstructors(t *testing.T) {
	check := func(name string, err, sentinel error, code string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: operation on closed value returned nil", name)
			return
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: err = %v, want its closed sentinel", name, err)
		}
		if got, ok := ErrorCodeOf(err); !ok || got != code {
			t.Errorf("%s: code = %q/%v, want %q", name, got, ok, code)
		}
	}

	rt, err := New(WithLayer(NewNativeLayer(4)), WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	check("New", rt.Parallel(func(c *Context) {}), ErrClosed, "runtime_closed")

	off, err := NewOffload(NewOffloadRegistry(), WithOffloadDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
	_, perr := off.ParallelFor("any", 8, nil)
	if got, ok := ErrorCodeOf(perr); perr == nil || !ok || got != "offload_closed" {
		t.Errorf("NewOffload: closed ParallelFor = %v (code %q/%v), want offload_closed", perr, got, ok)
	}

	jobs := NewJobRegistry()
	fab, err := NewTaskFabric(jobs, WithFabricDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewJobService(fab, jobs,
		WithServiceTenants(Tenant{Name: "t", Key: "k", Quota: 1, Priority: ServicePriorityNormal}))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if h := srv.Health(); h.Status != "down" {
		t.Errorf("NewJobService: closed Health().Status = %q, want down", h.Status)
	}
	check("NewJobService sentinel", fmt.Errorf("settle: %w", ErrServiceClosed), ErrServiceClosed, "service_closed")

	if err := fab.Close(); err != nil {
		t.Fatal(err)
	}
	_, serr := fab.SubmitJob("any", nil)
	check("NewTaskFabric", serr, ErrFabricClosed, "fabric_closed")
}
