package openmpmca

import (
	"openmpmca/internal/jobservice"
	"openmpmca/internal/oerrors"
	"openmpmca/internal/spans"
)

// Observability surface: the error taxonomy (internal/oerrors) and the
// span exporter (internal/spans). Every error the public API returns
// carries a stable category and code; ErrorCategoryOf/ErrorCodeOf read
// them and ErrorCounts exposes the process-wide counters the job
// service serves at /v1/stats and /v1/health.

// ErrorCategory is the failure plane an error belongs to.
type ErrorCategory = oerrors.Category

// The taxonomy's categories.
const (
	ErrorTransport = oerrors.Transport // messaging-layer failures
	ErrorDomain    = oerrors.Domain    // worker-domain lifecycle (loss, readmit)
	ErrorAdmission = oerrors.Admission // saturation, quota, option validation
	ErrorCancel    = oerrors.Cancel    // deliberate teardown (cancel, close)
	ErrorInternal  = oerrors.Internal  // unknown jobs, failed kernels, logic errors
)

// ErrorCategories lists every category in stable order.
func ErrorCategories() []ErrorCategory { return oerrors.Categories() }

// ErrorCategoryOf reports the category of the outermost classified
// error in err's chain, or false when err carries no classification.
func ErrorCategoryOf(err error) (ErrorCategory, bool) { return oerrors.CategoryOf(err) }

// ErrorCodeOf reports the stable string code (e.g. "domain_lost",
// "saturated") of the outermost classified error in err's chain, or
// false when err carries no classification.
func ErrorCodeOf(err error) (string, bool) { return oerrors.CodeOf(err) }

// ErrorStats is a snapshot of the process-wide error-taxonomy counters:
// total plus per-category and per-code occurrence counts.
type ErrorStats = oerrors.CountsSnapshot

// ErrorCounts snapshots the process-wide error-taxonomy counters — the
// same numbers the job service's /v1/stats "errors" section and
// /v1/health report.
func ErrorCounts() ErrorStats { return oerrors.Counts() }

// Span is one folded work lifetime: an offload chunk, a fabric task or
// a parallel region, from first dispatch to settled result, with retry
// and loss-recovery annotations.
type Span = spans.Span

// SpanStats aggregates a span exporter's whole run.
type SpanStats = spans.Stats

// SpanView is a span exporter snapshot: retained completed spans, open
// spans and aggregates — the GET /v1/spans body.
type SpanView = spans.View

// SpanExporter folds trace events into lifetime spans. It implements
// Monitor, OffloadEventSink and FabricEventSink, so one exporter can
// observe all three layers at once (combine with a trace.Recorder via
// trace.NewTee when both the flat event log and the folded spans are
// wanted):
//
//	sp := openmpmca.NewSpanExporter(0)
//	fab, _ := openmpmca.NewTaskFabric(jobs, openmpmca.WithFabricEventSink(sp))
//	... run work ...
//	view := sp.Snapshot() // or serve it: WithServiceSpans(sp)
type SpanExporter = spans.Exporter

// NewSpanExporter creates a span exporter retaining the last capacity
// completed spans (a default bound if capacity <= 0).
func NewSpanExporter(capacity int) *SpanExporter { return spans.NewExporter(capacity) }

// WithServiceSpans serves a span exporter's folded lifetimes at the job
// service's GET /v1/spans. Wire the same exporter into the fabric
// and/or offloader as their event sink; the service only reads it.
func WithServiceSpans(x *SpanExporter) JobServiceOption { return jobservice.WithSpans(x) }
