package openmpmca

import (
	"time"

	"openmpmca/internal/offload"
)

// Multi-domain offload: distribute parallel-for regions across runtime
// domains — separate Runtime instances on their own hypervisor
// partitions — that communicate exclusively over MCAPI. See
// internal/offload for the architecture.
//
// Naming convention: every option that configures NewOffload is named
// WithOffload*; every option that configures NewTaskFabric is named
// WithFabric*. Process-wide tuning toggles live in api_tuning.go.

// Offload farms ParallelFor regions out to worker domains; see NewOffload.
type Offload = offload.Offloader

// OffloadOption configures NewOffload.
type OffloadOption = offload.Option

// OffloadKernel is a distributable parallel-for body: Chunk runs a
// subrange on one domain's runtime, Fold merges partial results in
// chunk order.
type OffloadKernel = offload.Kernel

// OffloadFuncKernel adapts plain funcs into an OffloadKernel.
type OffloadFuncKernel = offload.FuncKernel

// OffloadRegistry maps kernel names to kernels; the host and every
// worker domain resolve chunk descriptors against the same registry.
type OffloadRegistry = offload.Registry

// OffloadStats is a snapshot of the offload counters (RemoteChunks,
// Resends, DomainsLost, ...). It forms the "offload" section of the
// unified Snapshot.
type OffloadStats = offload.StatsSnapshot

// OffloadDomainInfo describes one offload worker domain for
// introspection: identity, liveness and the adaptive per-iteration
// service estimate.
type OffloadDomainInfo = offload.DomainInfo

// OffloadEventSink receives offload send/recv trace events; a
// trace.Recorder satisfies it.
type OffloadEventSink = offload.EventSink

// ErrDomainLost marks a region during which a worker domain died; the
// region's result is still complete (its chunks re-ran elsewhere).
var ErrDomainLost = offload.ErrDomainLost

// NewOffloadRegistry creates an empty kernel registry.
func NewOffloadRegistry() *OffloadRegistry { return offload.NewRegistry() }

// NewOffload partitions a simulated board into a host domain plus worker
// domains (default 3), boots an MCA-backed Runtime on each, and wires
// them together over MCAPI packet channels.
func NewOffload(reg *OffloadRegistry, opts ...OffloadOption) (*Offload, error) {
	return offload.New(reg, opts...)
}

// WithOffloadDomains sets the number of worker domains.
func WithOffloadDomains(n int) OffloadOption { return offload.WithDomains(n) }

// WithDomains sets the number of worker domains.
//
// Deprecated: use WithOffloadDomains. WithDomains predates the unified
// WithOffload*/WithFabric* naming and is kept only so existing callers
// keep compiling; it will not grow siblings.
func WithDomains(n int) OffloadOption { return offload.WithDomains(n) }

// WithOffloadChunkIters fixes the iterations per offloaded chunk.
func WithOffloadChunkIters(n int) OffloadOption { return offload.WithChunkIters(n) }

// WithOffloadChunkDeadline bounds how long a dispatched chunk may stay
// unanswered before it is resent to another domain.
func WithOffloadChunkDeadline(d time.Duration) OffloadOption { return offload.WithChunkDeadline(d) }

// WithOffloadRetries caps per-chunk resends before the region fails.
func WithOffloadRetries(n int) OffloadOption { return offload.WithRetries(n) }

// WithOffloadHeartbeat sets the offloader's domain-health ping period; a
// domain missing pongs for eight periods is declared lost.
func WithOffloadHeartbeat(period time.Duration) OffloadOption { return offload.WithHeartbeat(period) }

// WithOffloadInflight caps the chunks outstanding on one domain (the
// credit window).
func WithOffloadInflight(n int) OffloadOption { return offload.WithInflight(n) }

// WithOffloadEventSink installs a sink for offload trace events.
func WithOffloadEventSink(s OffloadEventSink) OffloadOption { return offload.WithEventSink(s) }
