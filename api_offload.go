package openmpmca

import (
	"openmpmca/internal/offload"
)

// Multi-domain offload: distribute parallel-for regions across runtime
// domains — separate Runtime instances on their own hypervisor
// partitions — that communicate exclusively over MCAPI. See
// internal/offload for the architecture.

// Offload farms ParallelFor regions out to worker domains; see NewOffload.
type Offload = offload.Offloader

// OffloadOption configures NewOffload.
type OffloadOption = offload.Option

// OffloadKernel is a distributable parallel-for body: Chunk runs a
// subrange on one domain's runtime, Fold merges partial results in
// chunk order.
type OffloadKernel = offload.Kernel

// OffloadFuncKernel adapts plain funcs into an OffloadKernel.
type OffloadFuncKernel = offload.FuncKernel

// OffloadRegistry maps kernel names to kernels; the host and every
// worker domain resolve chunk descriptors against the same registry.
type OffloadRegistry = offload.Registry

// OffloadStats is a snapshot of the offload counters (RemoteChunks,
// Resends, DomainsLost, ...).
type OffloadStats = offload.StatsSnapshot

// OffloadEventSink receives offload send/recv trace events; a
// trace.Recorder satisfies it.
type OffloadEventSink = offload.EventSink

// ErrDomainLost marks a region during which a worker domain died; the
// region's result is still complete (its chunks re-ran elsewhere).
var ErrDomainLost = offload.ErrDomainLost

// NewOffloadRegistry creates an empty kernel registry.
func NewOffloadRegistry() *OffloadRegistry { return offload.NewRegistry() }

// NewOffload partitions a simulated board into a host domain plus worker
// domains (default 3), boots an MCA-backed Runtime on each, and wires
// them together over MCAPI packet channels.
func NewOffload(reg *OffloadRegistry, opts ...OffloadOption) (*Offload, error) {
	return offload.New(reg, opts...)
}

// WithDomains sets the number of worker domains.
func WithDomains(n int) OffloadOption { return offload.WithDomains(n) }

// WithOffloadChunkIters fixes the iterations per offloaded chunk.
func WithOffloadChunkIters(n int) OffloadOption { return offload.WithChunkIters(n) }

// WithOffloadEventSink installs a sink for offload trace events.
func WithOffloadEventSink(s OffloadEventSink) OffloadOption { return offload.WithEventSink(s) }

// WithOffloadBatching toggles chunk-frame coalescing per scheduler flush
// (on by default); off restores one packet per chunk as an ablation
// baseline for benchmarks.
func WithOffloadBatching(on bool) OffloadOption { return offload.WithBatching(on) }
