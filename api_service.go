package openmpmca

import (
	"time"

	"openmpmca/internal/durable"
	"openmpmca/internal/jobservice"
)

// Multi-tenant job service: a persistent HTTP/JSON front end over a
// TaskFabric (and optionally an Offload) with API-key tenants, quotas,
// priority classes and weighted-fair dispatch. See internal/jobservice
// for the architecture and cmd/ompmca-serve for a ready-to-run server.

// JobService is the HTTP job service; it implements http.Handler. See
// NewJobService.
type JobService = jobservice.Server

// JobServiceOption configures NewJobService.
type JobServiceOption = jobservice.Option

// Tenant is one API-key principal of a JobService: a name, a secret
// key, an in-flight quota and a priority class (plus the optional admin
// role unlocking domain drain/readmit).
type Tenant = jobservice.Tenant

// ServicePriority is a tenant's service class; it maps to a
// weighted-fair dispatch weight.
type ServicePriority = jobservice.Priority

// Tenant service classes (dispatch weights 4, 2 and 1).
const (
	ServicePriorityHigh   = jobservice.PriorityHigh
	ServicePriorityNormal = jobservice.PriorityNormal
	ServicePriorityLow    = jobservice.PriorityLow
)

// Snapshot is the unified stats umbrella: core runtime, offload, fabric
// and job-service counters in one JSON-taggable shape. GET /v1/stats,
// ompmca-info -stats and ompmca-bench -stats all serialize this type.
type Snapshot = jobservice.Snapshot

// ServiceStats is the job service's section of Snapshot.
type ServiceStats = jobservice.ServiceStats

// TenantStats is one tenant's slice of ServiceStats.
type TenantStats = jobservice.TenantStats

// DurableStats is the durable job store's section of Snapshot: journal
// generation and size, fsync/snapshot counters, and what the last
// recovery replayed. Present only when the service runs with a state
// dir (WithServiceStateDir).
type DurableStats = durable.Stats

// JobEvent is one line of a job's progress stream
// (GET /v1/jobs/{id}/events): lifecycle transitions, per-chunk
// completions of parallel-for regions, and fabric task send/done
// events, each stamped with a per-job sequence number.
type JobEvent = jobservice.JobEvent

// ServiceProgressHub attributes fabric task events to the jobs that
// launched them, feeding the per-job progress streams. Install it as
// the fabric's event sink; it tees every event to the next sink (a span
// exporter, typically) so observability keeps working:
//
//	sp := openmpmca.NewSpanExporter(0)
//	hub := openmpmca.NewServiceProgressHub(sp)
//	fab, _ := openmpmca.NewTaskFabric(jobs, openmpmca.WithFabricEventSink(hub))
//	svc, _ := openmpmca.NewJobService(fab, jobs, ..., openmpmca.WithServiceProgress(hub))
type ServiceProgressHub = jobservice.ProgressHub

// NewServiceProgressHub builds a progress hub teeing into next (which
// may be nil).
func NewServiceProgressHub(next FabricEventSink) *ServiceProgressHub {
	return jobservice.NewProgressHub(next)
}

// ErrServiceClosed is returned by operations on a closed JobService.
var ErrServiceClosed = jobservice.ErrClosed

// NewJobService builds a job service over a fabric and its job registry.
// At least one tenant (WithServiceTenants) is required; wire an
// offloader with WithServiceOffloader to also serve parallel-for jobs.
// Serve it with net/http and stop it with Close:
//
//	svc, err := openmpmca.NewJobService(fab, jobs,
//		openmpmca.WithServiceTenants(openmpmca.Tenant{
//			Name: "alice", Key: "s3cret", Quota: 16,
//			Priority: openmpmca.ServicePriorityNormal,
//		}))
//	http.ListenAndServe(":8080", svc)
func NewJobService(fab *TaskFabric, jobs *JobRegistry, opts ...JobServiceOption) (*JobService, error) {
	return jobservice.New(fab, jobs, opts...)
}

// WithServiceTenants registers the service's tenants.
func WithServiceTenants(ts ...Tenant) JobServiceOption { return jobservice.WithTenants(ts...) }

// WithServiceOffloader wires an offloader and its kernel registry into
// the service so tenants can submit parallel-for jobs.
func WithServiceOffloader(o *Offload, kernels *OffloadRegistry) JobServiceOption {
	return jobservice.WithOffloader(o, kernels)
}

// WithServiceDispatchWindow bounds how many jobs may be inside the
// fabric and offloader at once (default 64).
func WithServiceDispatchWindow(n int) JobServiceOption { return jobservice.WithDispatchWindow(n) }

// WithServiceRetryAfter sets the Retry-After hint on HTTP 429 responses
// (default 1s).
func WithServiceRetryAfter(d time.Duration) JobServiceOption { return jobservice.WithRetryAfter(d) }

// WithServiceStateDir makes the service durable: every job-state
// transition is journaled to an append-only, CRC-framed write-ahead log
// under dir (fsynced before the submit 202), periodically compacted
// into snapshots, and replayed at the next startup — settled jobs come
// back with their byte-exact results, unsettled jobs are re-enqueued
// and re-executed. Without this option the service is in-memory only.
func WithServiceStateDir(dir string) JobServiceOption { return jobservice.WithStateDir(dir) }

// WithServiceProgress wires a progress hub into the service so
// GET /v1/jobs/{id}/events can attribute fabric task events to jobs.
// The same hub must be installed as the fabric's event sink
// (WithFabricEventSink).
func WithServiceProgress(h *ServiceProgressHub) JobServiceOption { return jobservice.WithProgress(h) }

// LoadTenantsFile reads tenants from a keys file: one
// "name:key:quota:priority[:admin][:rate=R/B]" spec per line, blank
// lines and #-comments ignored. The file holds API keys, so any mode
// looser than 0600 is refused.
func LoadTenantsFile(path string) ([]Tenant, error) { return jobservice.LoadTenantsFile(path) }
