package openmpmca

import (
	"time"

	"openmpmca/internal/taskfabric"
)

// MTAPI task fabric: distribute irregular tasks across runtime domains —
// separate Runtime instances on their own hypervisor partitions, each
// running a local MTAPI scheduler — joined only by MCAPI packet
// channels, with host-brokered work stealing between domains. See
// internal/taskfabric for the architecture.

// TaskFabric executes jobs submitted by name across worker domains; see
// NewTaskFabric.
type TaskFabric = taskfabric.Fabric

// TaskFabricOption configures NewTaskFabric.
type TaskFabricOption = taskfabric.Option

// FabricJob is distributable work: Execute runs on the scheduled
// domain's runtime, with the argument and result as opaque bytes.
type FabricJob = taskfabric.Job

// FabricFuncJob adapts plain funcs into a FabricJob.
type FabricFuncJob = taskfabric.FuncJob

// JobRegistry maps job names to implementations; the host and every
// worker domain resolve task frames against the same registry.
type JobRegistry = taskfabric.Registry

// FabricTask tracks one submitted task; Wait follows the mtapi timeout
// contract (negative forever, zero polls once, positive bounded).
type FabricTask = taskfabric.TaskHandle

// FabricGroup collects tasks for collective completion across domains:
// WaitAny delivers each completion exactly once, WaitAll settles the
// group, Cancel drops what has not started.
type FabricGroup = taskfabric.Group

// FabricStats is a snapshot of the fabric counters (RemoteTasks, Steals,
// DomainsLost, ...). It forms the "fabric" section of the unified
// Snapshot.
type FabricStats = taskfabric.Stats

// FabricDomainInfo describes one fabric worker domain for introspection:
// identity, liveness, outstanding tasks and the adaptive per-task
// service estimate.
type FabricDomainInfo = taskfabric.DomainInfo

// FabricEventSink receives task send/recv/steal trace events; a
// trace.Recorder satisfies it.
type FabricEventSink = taskfabric.EventSink

// FabricPeerStealSink is the optional extension a FabricEventSink may
// implement to additionally observe direct domain-to-domain mesh steals
// (WithFabricPeerStealing); trace.Recorder and spans.Exporter both
// satisfy it.
type FabricPeerStealSink = taskfabric.PeerStealSink

var (
	// ErrFabricClosed is returned by operations on a closed TaskFabric.
	ErrFabricClosed = taskfabric.ErrClosed
	// ErrTaskCanceled marks tasks canceled via FabricGroup.Cancel.
	ErrTaskCanceled = taskfabric.ErrCanceled
	// ErrGroupDrained is returned by WaitAny when a group has no
	// outstanding or undelivered tasks.
	ErrGroupDrained = taskfabric.ErrGroupDrained
)

// NewJobRegistry creates an empty job registry.
func NewJobRegistry() *JobRegistry { return taskfabric.NewRegistry() }

// NewTaskFabric partitions a simulated board into a host domain plus
// worker domains (default 3), boots an MCA-backed Runtime and an MTAPI
// scheduler on each worker, and wires them together over MCAPI packet
// channels. A domain that dies mid-graph is detected by heartbeat loss
// and its tasks re-execute on the host — completed graphs surface the
// loss as an ErrDomainLost-wrapped error alongside full results.
func NewTaskFabric(reg *JobRegistry, opts ...TaskFabricOption) (*TaskFabric, error) {
	return taskfabric.NewFabric(reg, opts...)
}

// WithFabricDomains sets the number of worker domains.
func WithFabricDomains(n int) TaskFabricOption { return taskfabric.WithDomains(n) }

// WithFabricEventSink installs a sink for task-fabric trace events.
func WithFabricEventSink(s FabricEventSink) TaskFabricOption { return taskfabric.WithEventSink(s) }

// WithFabricHeartbeat sets the fabric's domain-health ping period; a
// domain missing pongs for eight periods is declared lost.
func WithFabricHeartbeat(period time.Duration) TaskFabricOption {
	return taskfabric.WithHeartbeat(period)
}

// WithFabricTaskDeadline bounds how long a dispatched task may stay
// unanswered before it is resent.
func WithFabricTaskDeadline(d time.Duration) TaskFabricOption {
	return taskfabric.WithTaskDeadline(d)
}

// WithFabricRetries caps per-task resends before the task fails.
func WithFabricRetries(n int) TaskFabricOption { return taskfabric.WithRetries(n) }

// WithFabricInflight caps the tasks outstanding on one domain (the
// credit window).
func WithFabricInflight(n int) TaskFabricOption { return taskfabric.WithInflight(n) }

// WithFabricDomainWorkers sets each worker domain's MTAPI scheduler
// width (workers per domain).
func WithFabricDomainWorkers(n int) TaskFabricOption { return taskfabric.WithDomainWorkers(n) }
