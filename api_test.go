package openmpmca

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestPublicAPIRoundTrip drives the facade end to end: construction,
// worksharing, stats, and close — without touching internal/ directly.
func TestPublicAPIRoundTrip(t *testing.T) {
	rt, err := New(
		WithLayer(NewNativeLayer(8)),
		WithNumThreads(4),
		WithSchedule(ScheduleDynamic, 16),
		WithBarrierKind(BarrierTree),
		WithTaskQueue(TaskQueueSteal),
		WithMaxConcurrentRegions(8),
		WithTeamLeasing(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	out := make([]int, 1000)
	if err := rt.ParallelFor(len(out), func(i int) { out[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}

	var sum int
	if err := rt.Parallel(func(c *Context) {
		total := Reduce(c, len(out), 0, func(a, b int) int { return a + b },
			func(lo, hi int) int {
				s := 0
				for i := lo; i < hi; i++ {
					s += out[i]
				}
				return s
			})
		c.Master(func() { sum = total })
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range out {
		want += v
	}
	if sum != want {
		t.Fatalf("reduction = %d, want %d", sum, want)
	}

	st := rt.Stats().Snapshot()
	if st.Regions != 2 {
		t.Errorf("Regions = %d, want 2", st.Regions)
	}
}

func TestPublicErrorTaxonomy(t *testing.T) {
	// ErrInvalidOption from New.
	if _, err := New(WithNumThreads(-3)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("New(WithNumThreads(-3)) = %v, want ErrInvalidOption", err)
	}
	if _, err := New(WithMaxConcurrentRegions(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("New(WithMaxConcurrentRegions(-1)) = %v, want ErrInvalidOption", err)
	}

	rt, err := New(WithLayer(NewNativeLayer(4)), WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}

	// RegionPanicError via errors.As; cause via errors.Is.
	cause := errors.New("kaboom")
	err = rt.Parallel(func(c *Context) {
		if c.ThreadNum() == 0 {
			panic(cause)
		}
	})
	var rpe *RegionPanicError
	if !errors.As(err, &rpe) {
		t.Fatalf("panic region = %v, want RegionPanicError", err)
	}
	if !errors.Is(err, cause) {
		t.Error("RegionPanicError does not unwrap to its error cause")
	}

	// ErrCanceled wrapping the ctx error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = rt.ParallelCtx(ctx, func(c *Context) {})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled ParallelCtx = %v, want ErrCanceled ∧ context.Canceled", err)
	}

	// ErrClosed after Close.
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(c *Context) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Parallel after Close = %v, want ErrClosed", err)
	}
}

// TestOptionValidationParity pins the facade-wide error contract: every
// constructor — New, NewOffload, NewTaskFabric, NewJobService — rejects
// a nonsense option with an error matching ErrInvalidOption, so callers
// need exactly one errors.Is branch regardless of which layer they are
// configuring.
func TestOptionValidationParity(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"core threads", func() error { _, err := New(WithNumThreads(-1)); return err }},
		{"offload nil registry", func() error { _, err := NewOffload(nil); return err }},
		{"offload domains", func() error {
			_, err := NewOffload(NewOffloadRegistry(), WithOffloadDomains(0))
			return err
		}},
		{"offload chunk iters", func() error {
			_, err := NewOffload(NewOffloadRegistry(), WithOffloadChunkIters(-5))
			return err
		}},
		{"offload deadline", func() error {
			_, err := NewOffload(NewOffloadRegistry(), WithOffloadChunkDeadline(0))
			return err
		}},
		{"offload retries", func() error {
			_, err := NewOffload(NewOffloadRegistry(), WithOffloadRetries(-1))
			return err
		}},
		{"offload heartbeat", func() error {
			_, err := NewOffload(NewOffloadRegistry(), WithOffloadHeartbeat(-time.Second))
			return err
		}},
		{"offload inflight", func() error {
			_, err := NewOffload(NewOffloadRegistry(), WithOffloadInflight(0))
			return err
		}},
		{"fabric nil registry", func() error { _, err := NewTaskFabric(nil); return err }},
		{"fabric domains", func() error {
			_, err := NewTaskFabric(NewJobRegistry(), WithFabricDomains(-2))
			return err
		}},
		{"fabric deadline", func() error {
			_, err := NewTaskFabric(NewJobRegistry(), WithFabricTaskDeadline(-time.Second))
			return err
		}},
		{"fabric retries", func() error {
			_, err := NewTaskFabric(NewJobRegistry(), WithFabricRetries(-1))
			return err
		}},
		{"fabric inflight", func() error {
			_, err := NewTaskFabric(NewJobRegistry(), WithFabricInflight(0))
			return err
		}},
		{"fabric workers", func() error {
			_, err := NewTaskFabric(NewJobRegistry(), WithFabricDomainWorkers(-1))
			return err
		}},
		{"service nil fabric", func() error {
			_, err := NewJobService(nil, NewJobRegistry(),
				WithServiceTenants(Tenant{Name: "t", Key: "k", Quota: 1, Priority: ServicePriorityNormal}))
			return err
		}},
		{"service no tenants", func() error {
			jobs := NewJobRegistry()
			fab, err := NewTaskFabric(jobs, WithFabricDomains(2))
			if err != nil {
				return err
			}
			defer fab.Close()
			_, err = NewJobService(fab, jobs)
			return err
		}},
		{"service bad quota", func() error {
			jobs := NewJobRegistry()
			fab, err := NewTaskFabric(jobs, WithFabricDomains(2))
			if err != nil {
				return err
			}
			defer fab.Close()
			_, err = NewJobService(fab, jobs,
				WithServiceTenants(Tenant{Name: "t", Key: "k", Quota: 0, Priority: ServicePriorityNormal}))
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", tc.name, err)
		}
	}
}

// TestDeprecatedOptionAliases pins that the pre-unification names still
// build working values and configure exactly what their canonical
// replacements do.
func TestDeprecatedOptionAliases(t *testing.T) {
	reg := NewOffloadRegistry()
	off, err := NewOffload(reg, WithDomains(2)) // deprecated alias of WithOffloadDomains
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.Domains() != 2 {
		t.Errorf("WithDomains(2) built %d domains", off.Domains())
	}

	off2, err := NewOffload(NewOffloadRegistry(), WithOffloadDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	defer off2.Close()
	if off2.Domains() != off.Domains() {
		t.Errorf("alias and canonical option disagree: %d vs %d", off.Domains(), off2.Domains())
	}
}

func TestPublicSaturation(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(4)), WithNumThreads(2), WithMaxConcurrentRegions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	hold := make(chan struct{})
	inside := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- rt.Parallel(func(c *Context) {
			c.Master(func() { close(inside); <-hold })
		})
	}()
	<-inside

	// The slot is held; a deadline'd caller queues, then gives up.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := rt.ParallelCtx(ctx, func(c *Context) {}); !errors.Is(err, ErrCanceled) {
		t.Errorf("queued caller past deadline = %v, want ErrCanceled", err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
