package openmpmca

import (
	"openmpmca/internal/offload"
	"openmpmca/internal/syncq"
	"openmpmca/internal/taskfabric"
)

// Cross-cutting tuning knobs. All default to on; they exist as ablation
// switches (the WithTaskQueue pattern, but for cross-cutting allocator
// and wire behavior) so cmd/ompmca-bench can measure each
// optimization's contribution against the unoptimized baseline.
// Production callers leave them alone.

// SetCodecPooling toggles wire-codec encode-buffer pooling for the
// offload and task-fabric frame codecs (default on). Off restores
// allocate-per-frame.
func SetCodecPooling(on bool) { offload.SetCodecPooling(on) }

// CodecPooling reports whether codec encode buffers are pooled.
func CodecPooling() bool { return offload.CodecPooling() }

// SetWaitPooling toggles waiter-channel and timer pooling in the
// runtime's internal wait queues (default on). Off restores
// allocate-per-wait.
func SetWaitPooling(on bool) { syncq.SetPooling(on) }

// WaitPooling reports whether wait-queue waiters and timers are pooled.
func WaitPooling() bool { return syncq.PoolingEnabled() }

// WithOffloadBatching toggles chunk-frame coalescing per scheduler flush
// (on by default); off restores one packet per chunk as an ablation
// baseline for benchmarks.
func WithOffloadBatching(on bool) OffloadOption { return offload.WithBatching(on) }

// WithFabricBatching toggles task/result/credit frame coalescing per
// flush (on by default); off restores one packet per frame as an
// ablation baseline for benchmarks.
func WithFabricBatching(on bool) TaskFabricOption { return taskfabric.WithBatching(on) }
