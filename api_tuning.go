package openmpmca

import (
	"openmpmca/internal/offload"
	"openmpmca/internal/syncq"
	"openmpmca/internal/taskfabric"
)

// Cross-cutting tuning knobs. All default to on; they exist as ablation
// switches (the WithTaskQueue pattern, but for cross-cutting allocator
// and wire behavior) so cmd/ompmca-bench can measure each
// optimization's contribution against the unoptimized baseline.
// Production callers leave them alone.

// SetCodecPooling toggles wire-codec encode-buffer pooling for the
// offload and task-fabric frame codecs (default on). Off restores
// allocate-per-frame.
func SetCodecPooling(on bool) { offload.SetCodecPooling(on) }

// CodecPooling reports whether codec encode buffers are pooled.
func CodecPooling() bool { return offload.CodecPooling() }

// SetWaitPooling toggles waiter-channel and timer pooling in the
// runtime's internal wait queues (default on). Off restores
// allocate-per-wait.
func SetWaitPooling(on bool) { syncq.SetPooling(on) }

// WaitPooling reports whether wait-queue waiters and timers are pooled.
func WaitPooling() bool { return syncq.PoolingEnabled() }

// WithOffloadBatching toggles chunk-frame coalescing per scheduler flush
// (on by default); off restores one packet per chunk as an ablation
// baseline for benchmarks.
func WithOffloadBatching(on bool) OffloadOption { return offload.WithBatching(on) }

// WithFabricBatching toggles task/result/credit frame coalescing per
// flush (on by default); off restores one packet per frame as an
// ablation baseline for benchmarks.
func WithFabricBatching(on bool) TaskFabricOption { return taskfabric.WithBatching(on) }

// WithFabricPeerStealing toggles the direct domain-to-domain steal mesh
// (on by default): idle domains steal queued tasks straight from the
// most-loaded victim over worker-to-worker MCAPI channels, with the
// host as fallback broker. Off restores the purely host-brokered steal
// path as an ablation baseline — grant-for-grant identical to the
// pre-mesh fabric.
func WithFabricPeerStealing(on bool) TaskFabricOption { return taskfabric.WithPeerStealing(on) }

// WithFabricZeroCopyThreshold sets the payload size (bytes) at or above
// which task arguments and results move through MRAPI remote-memory
// windows instead of inline in MCAPI packets, with frames carrying only
// (owner, offset, length) descriptors (default 4096); n <= 0 disables
// the zero-copy plane entirely.
func WithFabricZeroCopyThreshold(n int) TaskFabricOption { return taskfabric.WithZeroCopyThreshold(n) }
