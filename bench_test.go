package openmpmca

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§6), plus the ablations DESIGN.md calls out:
//
//	BenchmarkTable1/*      — EPCC overhead ratio per directive (Table I)
//	BenchmarkFigure4/*     — NAS kernel scaling, MCA vs native (Figure 4)
//	BenchmarkFigure1       — board model construction/diagram (Figure 1)
//	BenchmarkAblation*     — barrier algorithm, shmem kind, pool reuse,
//	                         loop schedules
//	BenchmarkP4080/*       — the §4C predecessor board, for comparison
//	Benchmark{MRAPI,MCAPI,MTAPI}* — substrate micro-benchmarks
//
// Figure-level benchmarks report model-derived metrics via
// b.ReportMetric: "speedup24" (speedup at 24 threads), "gap%" (max
// MCA-vs-native modeled time gap) and "modeled-s" (virtual seconds on the
// T4240), alongside the usual wall ns/op of regenerating the experiment.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"openmpmca/internal/board"
	"openmpmca/internal/core"
	"openmpmca/internal/epcc"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/mrapi"
	"openmpmca/internal/mtapi"
	"openmpmca/internal/npb"
	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
)

// benchThreads keeps construct-level benches affordable on small hosts
// while still exercising multi-cluster teams of the modeled board.
const benchThreads = 8

func nativeRuntime(b *testing.B, threads int, opts ...core.Option) *core.Runtime {
	b.Helper()
	all := append([]core.Option{
		core.WithLayer(core.NewNativeLayer(platform.T4240RDB().HWThreads())),
		core.WithNumThreads(threads),
	}, opts...)
	rt, err := core.New(all...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = rt.Close() })
	return rt
}

func mcaRuntime(b *testing.B, threads int, opts ...core.Option) *core.Runtime {
	b.Helper()
	l, err := core.NewMCALayer(platform.T4240RDB().NewSystem())
	if err != nil {
		b.Fatal(err)
	}
	all := append([]core.Option{
		core.WithLayer(l),
		core.WithNumThreads(threads),
	}, opts...)
	rt, err := core.New(all...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = rt.Close() })
	return rt
}

// ----- Table I -----

// BenchmarkTable1 measures, per directive, the EPCC overhead of the
// MCA-backed runtime and of the native runtime, reporting their ratio —
// one cell of the paper's Table I per sub-benchmark.
func BenchmarkTable1(b *testing.B) {
	opt := epcc.Options{InnerReps: 64, OuterReps: 3, DelayLength: 32}
	for _, construct := range epcc.Table1Constructs {
		b.Run(construct, func(b *testing.B) {
			ratioSum := 0.0
			for i := 0; i < b.N; i++ {
				nat := nativeRuntime(b, benchThreads)
				natUS, err := epcc.NewSuite(nat, opt).Measure(construct)
				if err != nil {
					b.Fatal(err)
				}
				mca := mcaRuntime(b, benchThreads)
				mcaUS, err := epcc.NewSuite(mca, opt).Measure(construct)
				if err != nil {
					b.Fatal(err)
				}
				_ = nat.Close()
				_ = mca.Close()
				r := mcaUS.OverheadUS / natUS.OverheadUS
				if natUS.OverheadUS < 0.01 { // noise floor, as in table.go
					r = 1
				}
				ratioSum += r
			}
			b.ReportMetric(ratioSum/float64(b.N), "mca/native")
		})
	}
}

// ----- Figure 4 -----

// BenchmarkFigure4 regenerates one panel of Figure 4 per kernel (class S
// so the full suite stays affordable; use cmd/ompmca-npb for classes W/A)
// and reports the model-derived speedup at 24 threads plus the
// MCA-vs-native gap.
func BenchmarkFigure4(b *testing.B) {
	threads := []int{1, 12, 24}
	for _, kernel := range npb.Kernels {
		b.Run(kernel, func(b *testing.B) {
			var speedup24, gap float64
			for i := 0; i < b.N; i++ {
				s, err := npb.MeasureFigure4(platform.T4240RDB(), kernel, npb.ClassS, threads)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range s.Points {
					if !p.Verified {
						b.Fatalf("%s unverified at %s/%d", kernel, p.Layer, p.Threads)
					}
				}
				speedup24 = s.SpeedupAt("mca", 24)
				gap = s.MaxRelativeGap() * 100
			}
			b.ReportMetric(speedup24, "speedup24")
			b.ReportMetric(gap, "gap%")
		})
	}
}

// ----- Figures 1–3 artifacts -----

// BenchmarkFigure1 regenerates the board model and its block diagram.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		board := platform.T4240RDB()
		if board.BlockDiagram() == "" || board.ResourceTree() == nil {
			b.Fatal("empty artifact")
		}
	}
}

// BenchmarkFigure2 regenerates the hypervisor partition map: create the
// three-guest layout, start it, render, tear down.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hv, err := platform.NewHypervisor(platform.T4240RDB())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hv.CreatePartition("ctrl", platform.GuestLinux, []int{0, 1, 2, 3}, 2048); err != nil {
			b.Fatal(err)
		}
		if _, err := hv.CreatePartition("data", platform.GuestBareMetal, []int{8, 9, 10, 11}, 1024); err != nil {
			b.Fatal(err)
		}
		if err := hv.Start("ctrl"); err != nil {
			b.Fatal(err)
		}
		if hv.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkFigure3 regenerates the development-environment flow: a full
// network boot cycle (TFTP kernel fetch, checksum, NFS root mount).
func BenchmarkFigure3(b *testing.B) {
	brd := board.NewBoard()
	tftp := board.NewTFTPServer()
	flashImg, err := brd.Flash.Read("uImage")
	if err != nil {
		b.Fatal(err)
	}
	tftp.Put("uImage-dev", flashImg)
	nfs := board.NewNFSServer()
	nfs.AddExport("/srv/t4240")
	cfg := board.BootConfig{
		Source: board.BootNetwork, TFTP: tftp, KernelFile: "uImage-dev",
		NFS: nfs, Export: "/srv/t4240",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		brd.Reset()
		if err := brd.Boot(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ----- §4C: the predecessor board -----

// BenchmarkP4080 runs the EP kernel's model on the P4080DS (8 cores, no
// SMT) so the two boards' scaling can be compared as in §4C.
func BenchmarkP4080(b *testing.B) {
	b.Run("EP", func(b *testing.B) {
		var speedup8 float64
		for i := 0; i < b.N; i++ {
			s, err := npb.MeasureFigure4(platform.P4080DS(), "EP", npb.ClassS, []int{1, 8})
			if err != nil {
				b.Fatal(err)
			}
			speedup8 = s.SpeedupAt("mca", 8)
		}
		b.ReportMetric(speedup8, "speedup8")
	})
}

// ----- ablations -----

// BenchmarkAblationBarrier compares the central barrier against the
// combining tree inside real parallel regions.
func BenchmarkAblationBarrier(b *testing.B) {
	for _, kind := range []core.BarrierKind{core.BarrierCentral, core.BarrierTree} {
		b.Run(kind.String(), func(b *testing.B) {
			rt := nativeRuntime(b, benchThreads, core.WithBarrierKind(kind))
			b.ResetTimer()
			_ = rt.Parallel(func(c *core.Context) {
				for i := 0; i < b.N; i++ {
					c.Barrier()
				}
			})
		})
	}
}

// BenchmarkAblationShmem compares MRAPI's default system-level shared
// memory against the paper's malloc extension (§5A2): create + attach +
// detach + delete per op.
func BenchmarkAblationShmem(b *testing.B) {
	sys := mrapi.NewSystem(nil)
	node, err := sys.Initialize(1, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []mrapi.ShmemKind{mrapi.ShmemSysV, mrapi.ShmemMalloc} {
		b.Run(kind.String(), func(b *testing.B) {
			attrs := &mrapi.ShmemAttributes{Kind: kind}
			for i := 0; i < b.N; i++ {
				s, err := node.ShmemCreate(mrapi.Key(i+10), 256, attrs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Attach(node); err != nil {
					b.Fatal(err)
				}
				if err := s.Detach(node); err != nil {
					b.Fatal(err)
				}
				if err := s.Delete(node); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNodeReuse isolates the paper's thread-pool argument
// (§5B1): forking regions from a persistent pool versus paying full
// runtime construction (worker/node creation) per region.
func BenchmarkAblationNodeReuse(b *testing.B) {
	body := func(c *core.Context) { c.Barrier() }
	b.Run("pooled", func(b *testing.B) {
		rt := mcaRuntime(b, benchThreads)
		_ = rt.Parallel(body) // warm the pool
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.Parallel(body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l, err := core.NewMCALayer(platform.T4240RDB().NewSystem())
			if err != nil {
				b.Fatal(err)
			}
			rt, err := core.New(core.WithLayer(l), core.WithNumThreads(benchThreads))
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.Parallel(body); err != nil {
				b.Fatal(err)
			}
			_ = rt.Close()
		}
	})
}

// BenchmarkConcurrentRegions measures the multi-tenant fork path: N
// goroutines fork small parallel regions against one runtime, with the
// warm-team lease cache on (the default) versus off (every region pays
// full team construction + layer free — the seed's behavior). Both
// thread layers are covered; the leased rows should win from 1 caller up
// and widen the gap as callers overlap.
func BenchmarkConcurrentRegions(b *testing.B) {
	const teamSize = 4
	runtimes := []struct {
		layer string
		mk    func(b *testing.B, opts ...core.Option) *core.Runtime
	}{
		{"native", func(b *testing.B, opts ...core.Option) *core.Runtime {
			return nativeRuntime(b, teamSize, opts...)
		}},
		{"mca", func(b *testing.B, opts ...core.Option) *core.Runtime {
			return mcaRuntime(b, teamSize, opts...)
		}},
	}
	for _, rc := range runtimes {
		for _, leased := range []bool{true, false} {
			mode := "leased"
			if !leased {
				mode = "perregion"
			}
			for _, callers := range []int{1, 4, 8} {
				name := fmt.Sprintf("%s/%s/callers=%d", rc.layer, mode, callers)
				b.Run(name, func(b *testing.B) {
					rt := rc.mk(b, core.WithTeamLeasing(leased))
					var sink atomic.Int64
					b.ResetTimer()
					var wg sync.WaitGroup
					wg.Add(callers)
					for g := 0; g < callers; g++ {
						go func() {
							defer wg.Done()
							for i := 0; i < b.N; i++ {
								if err := rt.ParallelFor(64, func(j int) { sink.Add(1) }); err != nil {
									b.Error(err)
									return
								}
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					if leased {
						st := rt.Stats().Snapshot()
						b.ReportMetric(float64(st.LeaseHits)/float64(st.Regions), "lease-hit-rate")
					}
				})
			}
		}
	}
}

// BenchmarkAblationSchedule compares loop schedules on a triangularly
// imbalanced workload (cost ∝ iteration index).
func BenchmarkAblationSchedule(b *testing.B) {
	const n = 512
	work := func(i int) float64 {
		s := 0.0
		for k := 0; k < i; k++ {
			s += float64(k&7) * 0.5
		}
		return s
	}
	var sink float64
	cases := []struct {
		name string
		opts core.LoopOpts
	}{
		{"static", core.LoopOpts{Schedule: core.ScheduleStatic}},
		{"dynamic8", core.LoopOpts{Schedule: core.ScheduleDynamic, Chunk: 8}},
		{"guided", core.LoopOpts{Schedule: core.ScheduleGuided}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			rt := nativeRuntime(b, benchThreads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rt.Parallel(func(c *core.Context) {
					c.ForOpts(n, tc.opts, func(lo, hi int) {
						for j := lo; j < hi; j++ {
							sink += work(j)
						}
					})
				})
			}
		})
	}
	_ = sink
}

// BenchmarkTaskScheduler is the EPCC taskbench pattern (task generation +
// taskwait from every thread) run against both task schedulers — the
// per-worker stealing deques and the legacy team-shared queue kept as the
// ablation baseline — on both layers across team sizes. Each task writes
// its own slot so the measured cost is scheduling, not cache-line
// ping-pong on a shared counter.
func BenchmarkTaskScheduler(b *testing.B) {
	const tasksPerRegion = 256
	layers := []struct {
		name  string
		newRT func(b *testing.B, threads int, opts ...core.Option) *core.Runtime
	}{
		{"native", nativeRuntime},
		{"mca", mcaRuntime},
	}
	for _, kind := range []core.TaskQueue{core.TaskQueueShared, core.TaskQueueSteal} {
		for _, layer := range layers {
			for _, threads := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%s/%s/%d", kind, layer.name, threads)
				b.Run(name, func(b *testing.B) {
					rt := layer.newRT(b, threads, core.WithTaskQueue(kind))
					slots := make([]int, threads*tasksPerRegion)
					per := tasksPerRegion / threads
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := rt.Parallel(func(c *core.Context) {
							base := c.ThreadNum() * tasksPerRegion
							for j := 0; j < per; j++ {
								slot := base + j
								c.Task(func() { slots[slot]++ })
							}
							c.TaskWait()
						}); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					s := rt.Stats().Snapshot()
					if s.Tasks == 0 {
						b.Fatal("no tasks executed")
					}
					b.ReportMetric(float64(s.Steals)/float64(b.N), "steals/op")
				})
			}
		}
	}
}

// ----- substrate micro-benchmarks -----

// BenchmarkMRAPIMutex measures the MRAPI mutex round trip against the
// bare sync.Mutex the native layer uses — the per-lock cost of the MCA
// indirection (Listing 4's code path).
func BenchmarkMRAPIMutex(b *testing.B) {
	sys := mrapi.NewSystem(nil)
	node, err := sys.Initialize(1, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	m, err := node.MutexCreate(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := m.Lock(node, mrapi.TimeoutInfinite)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Unlock(node, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCAPIMsgRoundTrip measures one connectionless send+recv.
func BenchmarkMCAPIMsgRoundTrip(b *testing.B) {
	sys := mcapi.NewSystem()
	n, err := sys.Initialize(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	ep, err := n.CreateEndpoint(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mcapi.MsgSend(ep, payload, 0, mcapi.TimeoutInfinite); err != nil {
			b.Fatal(err)
		}
		if _, _, err := mcapi.MsgRecv(ep, mcapi.TimeoutInfinite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCAPIPktChannel measures one packet-channel send+recv.
func BenchmarkMCAPIPktChannel(b *testing.B) {
	sys := mcapi.NewSystem()
	n1, _ := sys.Initialize(1, 1)
	n2, _ := sys.Initialize(1, 2)
	out, _ := n1.CreateEndpoint(1, nil)
	in, _ := n2.CreateEndpoint(1, nil)
	if err := mcapi.PktConnect(out, in); err != nil {
		b.Fatal(err)
	}
	send, err := mcapi.PktOpenSend(out)
	if err != nil {
		b.Fatal(err)
	}
	recv, err := mcapi.PktOpenRecv(in)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send.Send(payload, mcapi.TimeoutInfinite); err != nil {
			b.Fatal(err)
		}
		if _, err := recv.Recv(mcapi.TimeoutInfinite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMTAPITask measures task start + wait through the scheduler.
func BenchmarkMTAPITask(b *testing.B) {
	node := mtapi.NewNode(1, 1, &mtapi.NodeAttributes{Workers: 2})
	defer node.Shutdown()
	if _, err := node.CreateAction(1, "noop", func(any) (any, error) { return nil, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := node.Start(1, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.Wait(mtapi.TimeoutInfinite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelCharge measures the virtual-time hot path (one Charge).
func BenchmarkModelCharge(b *testing.B) {
	m := perfmodel.New(platform.T4240RDB(), perfmodel.KernelProfile{Name: "x", CyclesPerUnit: 3})
	m.Fork(benchThreads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Charge(i%benchThreads, 100)
	}
}
