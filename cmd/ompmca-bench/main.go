// Command ompmca-bench runs the curated hot-path benchmark suite and
// persists the measurements as a machine-readable trajectory
// (internal/benchjson). One BENCH_<n>.json is committed per PR, so the
// repo carries its own performance history; the compare mode diffs two
// trajectory files and flags regressions.
//
//	ompmca-bench -label pr7 -out BENCH_7.json       # measure
//	ompmca-bench -ablate -label pr7-base -out b.json # knobs off
//	ompmca-bench -compare BENCH_6.json BENCH_7.json  # diff
//
// The suite covers the latencies the paper's evaluation turns on:
// fork/join (Table I's parallel directive), task-steal throughput
// (taskbench), MCAPI message and packet round-trips (the transport under
// every offload), one offloaded chunk round-trip, and the task-fabric
// codec's frame throughput. -ablate turns every hot-path optimization
// off (codec pooling, wait pooling, frame batching), measuring the
// unoptimized baseline the optimizations are judged against.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"openmpmca/internal/benchjson"
	"openmpmca/internal/core"
	"openmpmca/internal/jobservice"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/offload"
	"openmpmca/internal/platform"
	"openmpmca/internal/syncq"
	"openmpmca/internal/taskfabric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ompmca-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		label     = flag.String("label", "dev", "trajectory label recorded in the output")
		out       = flag.String("out", "", "output file (default stdout)")
		benchtime = flag.String("benchtime", "0.2s", "per-benchmark time or iteration budget (testing -benchtime syntax, e.g. 0.5s or 100x)")
		ablate    = flag.Bool("ablate", false, "disable every hot-path optimization (pooling, batching): measure the baseline")
		compare   = flag.Bool("compare", false, "compare two trajectory files given as arguments instead of measuring")
		tolerance = flag.Float64("tolerance", 10, "percent ns/op drift tolerated by -compare before flagging")
		failRegr  = flag.Bool("fail-on-regression", false, "with -compare, exit nonzero when regressions are found")
		list      = flag.Bool("list", false, "list suite benchmarks and exit")
		stats     = flag.Bool("stats", false, "run a short fabric+offload workload and emit the unified openmpmca.Snapshot JSON instead of benchmarking")
	)
	testing.Init()
	flag.Parse()

	if *list {
		for _, s := range suite(false) {
			fmt.Println(s.name)
		}
		return nil
	}
	if *stats {
		return runStats()
	}
	if *compare {
		return runCompare(flag.Args(), *tolerance, *failRegr)
	}
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (did you mean -compare?)", flag.Args())
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %w", err)
	}

	syncq.SetPooling(!*ablate)
	offload.SetCodecPooling(!*ablate)

	traj := &benchjson.Trajectory{
		SchemaVersion: benchjson.SchemaVersion,
		Label:         *label,
		GoVersion:     runtime.Version(),
		CreatedUnix:   time.Now().Unix(),
		Knobs: map[string]bool{
			"codec_pooling":  !*ablate,
			"wait_pooling":   !*ablate,
			"frame_batching": !*ablate,
		},
	}
	for _, s := range suite(!*ablate) {
		fmt.Fprintf(os.Stderr, "running %s...\n", s.name)
		res, err := s.measure()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintf(os.Stderr, "  %s: %.1f ns/op, %.1f allocs/op\n", s.name, res.NsPerOp, res.AllocsPerOp)
		traj.Results = append(traj.Results, res)
	}
	buf, err := traj.Encode()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// runStats exercises the fabric and the offloader with the built-in
// demo workloads and prints the unified stats umbrella — the same
// openmpmca.Snapshot shape the job service serves on /v1/stats — so
// benchmark tooling and the service speak one format.
func runStats() error {
	jobs := taskfabric.NewRegistry()
	if err := jobservice.RegisterBuiltinJobs(jobs); err != nil {
		return err
	}
	fab, err := taskfabric.NewFabric(jobs, taskfabric.WithDomains(3))
	if err != nil {
		return err
	}
	defer fab.Close()
	kernels := offload.NewRegistry()
	if err := jobservice.RegisterBuiltinKernels(kernels); err != nil {
		return err
	}
	off, err := offload.New(kernels, offload.WithDomains(2))
	if err != nil {
		return err
	}
	defer off.Close()

	g := fab.NewGroup()
	for i := 0; i < 32; i++ {
		if _, err := g.SubmitJob(jobservice.JobFib, jobservice.U64(uint64(10+i))); err != nil {
			return err
		}
	}
	if err := g.WaitAll(taskfabric.TimeoutInfinite); err != nil {
		return err
	}
	if _, err := off.ParallelFor(jobservice.KernelVecSum, 100000, nil); err != nil {
		return err
	}

	host := fab.HostStats()
	fabStats := fab.Stats()
	offStats := off.Stats()
	snap := jobservice.Snapshot{Core: &host, Offload: &offStats, Fabric: &fabStats}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func runCompare(paths []string, tolerance float64, failRegr bool) error {
	if len(paths) != 2 {
		return fmt.Errorf("-compare wants exactly two trajectory files, got %d", len(paths))
	}
	load := func(p string) (*benchjson.Trajectory, error) {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		return benchjson.Decode(data)
	}
	prev, err := load(paths[0])
	if err != nil {
		return fmt.Errorf("%s: %w", paths[0], err)
	}
	cur, err := load(paths[1])
	if err != nil {
		return fmt.Errorf("%s: %w", paths[1], err)
	}
	c := benchjson.Compare(prev, cur, tolerance)
	fmt.Print(c.Render())
	if failRegr && c.Regressions() > 0 {
		return fmt.Errorf("%d regression(s) beyond ±%.1f%%", c.Regressions(), tolerance)
	}
	return nil
}

// entry is one suite benchmark: measure sets up its fixture, runs it
// under testing.Benchmark, and returns the trajectory record.
type entry struct {
	name    string
	measure func() (benchjson.Result, error)
}

// resultOf converts a testing result, attaching optional extra metrics.
func resultOf(name string, r testing.BenchmarkResult, metrics map[string]float64) benchjson.Result {
	return benchjson.Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		Metrics:     metrics,
	}
}

// suite returns the curated benchmarks. batch propagates the ablation
// state into the per-instance batching options.
func suite(batch bool) []entry {
	return []entry{
		{"fork_join", benchForkJoin},
		{"steal_throughput", benchStealThroughput},
		{"mcapi_msg_roundtrip", benchMsgRoundTrip},
		{"mcapi_pkt_roundtrip", benchPktRoundTrip},
		{"syncq_wait_timeout", benchWaitTimeout},
		{"taskcodec_frames", benchTaskCodec},
		{"offload_chunk_roundtrip", func() (benchjson.Result, error) { return benchOffloadChunk(batch) }},
		{"fabric_steal_roundtrip", func() (benchjson.Result, error) { return benchStealRoundTrip(true) }},
		{"fabric_steal_brokered", func() (benchjson.Result, error) { return benchStealRoundTrip(false) }},
	}
}

const benchThreads = 4

func mcaRuntime(opts ...core.Option) (*core.Runtime, error) {
	l, err := core.NewMCALayer(platform.T4240RDB().NewSystem())
	if err != nil {
		return nil, err
	}
	all := append([]core.Option{core.WithLayer(l), core.WithNumThreads(benchThreads)}, opts...)
	return core.New(all...)
}

// benchForkJoin measures an empty parallel region on the MCA-backed
// runtime — the paper's fork/join overhead (Table I, "parallel").
func benchForkJoin() (benchjson.Result, error) {
	rt, err := mcaRuntime()
	if err != nil {
		return benchjson.Result{}, err
	}
	defer rt.Close()
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rt.Parallel(func(c *core.Context) {}); err != nil {
				benchErr = err
				return
			}
		}
	})
	return resultOf("fork_join", r, nil), benchErr
}

// benchStealThroughput is the EPCC taskbench pattern on the stealing
// scheduler: every thread spawns tasks, then taskwaits.
func benchStealThroughput() (benchjson.Result, error) {
	const tasksPerRegion = 128
	rt, err := mcaRuntime(core.WithTaskQueue(core.TaskQueueSteal))
	if err != nil {
		return benchjson.Result{}, err
	}
	defer rt.Close()
	slots := make([]int, benchThreads*tasksPerRegion)
	per := tasksPerRegion / benchThreads
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rt.Parallel(func(c *core.Context) {
				base := c.ThreadNum() * tasksPerRegion
				for j := 0; j < per; j++ {
					slot := base + j
					c.Task(func() { slots[slot]++ })
				}
				c.TaskWait()
			}); err != nil {
				benchErr = err
				return
			}
		}
	})
	m := map[string]float64{}
	if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns > 0 {
		m["tasks_per_sec"] = float64(tasksPerRegion) * 1e9 / ns
	}
	return resultOf("steal_throughput", r, m), benchErr
}

// benchMsgRoundTrip measures one MCAPI connectionless send+recv.
func benchMsgRoundTrip() (benchjson.Result, error) {
	sys := mcapi.NewSystem()
	n, err := sys.Initialize(1, 1)
	if err != nil {
		return benchjson.Result{}, err
	}
	ep, err := n.CreateEndpoint(1, nil)
	if err != nil {
		return benchjson.Result{}, err
	}
	payload := make([]byte, 64)
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := mcapi.MsgSend(ep, payload, 0, mcapi.TimeoutInfinite); err != nil {
				benchErr = err
				return
			}
			if _, _, err := mcapi.MsgRecv(ep, mcapi.TimeoutInfinite); err != nil {
				benchErr = err
				return
			}
		}
	})
	return resultOf("mcapi_msg_roundtrip", r, nil), benchErr
}

// benchPktRoundTrip measures one MCAPI packet-channel send+recv.
func benchPktRoundTrip() (benchjson.Result, error) {
	sys := mcapi.NewSystem()
	n1, err := sys.Initialize(1, 1)
	if err != nil {
		return benchjson.Result{}, err
	}
	n2, err := sys.Initialize(1, 2)
	if err != nil {
		return benchjson.Result{}, err
	}
	out, err := n1.CreateEndpoint(1, nil)
	if err != nil {
		return benchjson.Result{}, err
	}
	in, err := n2.CreateEndpoint(1, nil)
	if err != nil {
		return benchjson.Result{}, err
	}
	if err := mcapi.PktConnect(out, in); err != nil {
		return benchjson.Result{}, err
	}
	send, err := mcapi.PktOpenSend(out)
	if err != nil {
		return benchjson.Result{}, err
	}
	recv, err := mcapi.PktOpenRecv(in)
	if err != nil {
		return benchjson.Result{}, err
	}
	payload := make([]byte, 64)
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := send.Send(payload, mcapi.TimeoutInfinite); err != nil {
				benchErr = err
				return
			}
			if _, err := recv.Recv(mcapi.TimeoutInfinite); err != nil {
				benchErr = err
				return
			}
		}
	})
	return resultOf("mcapi_pkt_roundtrip", r, nil), benchErr
}

// benchWaitTimeout measures the syncq timed-wait path every blocking
// MCAPI operation sits on — the target of the waiter/timer pooling.
func benchWaitTimeout() (benchjson.Result, error) {
	var mu sync.Mutex
	var q syncq.WaitQueue
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mu.Lock()
			q.Wait(&mu, time.Microsecond, false)
			mu.Unlock()
		}
	})
	return resultOf("syncq_wait_timeout", r, nil), nil
}

// benchTaskCodec measures one task frame through the wire codec —
// encode, zero-copy decode, recycle — the task fabric's per-task cost.
func benchTaskCodec() (benchjson.Result, error) {
	arg := make([]byte, 64)
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pkt := offload.EncodeTaskFrame(offload.KindTask, offload.TaskFrame{
				Task: uint64(i), Attempt: 1, Job: "job", Arg: arg,
			})
			if _, err := offload.DecodeTaskFrameShared(offload.KindTask, pkt); err != nil {
				benchErr = err
				return
			}
			offload.RecycleFrame(pkt)
		}
	})
	m := map[string]float64{}
	if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns > 0 {
		m["frames_per_sec"] = 1e9 / ns
	}
	return resultOf("taskcodec_frames", r, m), benchErr
}

// benchStealRoundTrip measures how long an imbalanced task burst takes
// to settle when idle domains must pull queued work from loaded peers:
// serial domains, two short blockers pinning the first domains
// scheduled, and a tail of trivial tasks queued behind them, so the
// burst's latency is dominated by steal round-trips. peer toggles the
// direct mesh against host brokerage — the ablation pair the
// trajectory tracks (fabric_steal_roundtrip vs fabric_steal_brokered).
func benchStealRoundTrip(peer bool) (benchjson.Result, error) {
	name := "fabric_steal_roundtrip"
	if !peer {
		name = "fabric_steal_brokered"
	}
	reg := taskfabric.NewRegistry()
	err := reg.Register(taskfabric.FuncJob{
		JobName: "spin",
		Fn: func(rt *core.Runtime, arg []byte) ([]byte, error) {
			if len(arg) == 8 {
				if d := time.Duration(binary.LittleEndian.Uint64(arg)); d > 0 {
					time.Sleep(d)
				}
			}
			return arg, nil
		},
	})
	if err != nil {
		return benchjson.Result{}, err
	}
	f, err := taskfabric.NewFabric(reg,
		taskfabric.WithDomains(3),
		taskfabric.WithDomainWorkers(1),
		taskfabric.WithHeartbeat(time.Millisecond),
		taskfabric.WithTaskDeadline(10*time.Second), // keep re-dispatch out of the measurement
		taskfabric.WithInflight(16),
		taskfabric.WithPeerStealing(peer),
	)
	if err != nil {
		return benchjson.Result{}, err
	}
	defer f.Close()
	blockArg := binary.LittleEndian.AppendUint64(nil, uint64(time.Millisecond))
	quickArg := binary.LittleEndian.AppendUint64(nil, 0)
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := f.NewGroup()
			for j := 0; j < 2; j++ {
				if _, err := g.SubmitJob("spin", blockArg); err != nil {
					benchErr = err
					return
				}
			}
			for j := 0; j < 12; j++ {
				if _, err := g.SubmitJob("spin", quickArg); err != nil {
					benchErr = err
					return
				}
			}
			if err := g.WaitAll(taskfabric.TimeoutInfinite); err != nil {
				benchErr = err
				return
			}
		}
	})
	st := f.Stats()
	if benchErr == nil && st.Steals == 0 {
		benchErr = fmt.Errorf("%s: Steals = 0, the burst never forced a migration", name)
	}
	if benchErr == nil && peer && st.PeerSteals == 0 {
		benchErr = fmt.Errorf("%s: PeerSteals = 0 with the mesh on", name)
	}
	if benchErr == nil && !peer && st.PeerSteals != 0 {
		benchErr = fmt.Errorf("%s: PeerSteals = %d with the mesh off", name, st.PeerSteals)
	}
	m := map[string]float64{"steals": float64(st.Steals), "peer_steals": float64(st.PeerSteals)}
	return resultOf(name, r, m), benchErr
}

// benchOffloadChunk measures one offloaded parallel-for region: chunks
// travel to worker domains over MCAPI and fold back on the host.
func benchOffloadChunk(batch bool) (benchjson.Result, error) {
	reg := offload.NewRegistry()
	kern := offload.FuncKernel{
		KernelName: "sum",
		ChunkFn: func(rt *core.Runtime, lo, hi int, arg []byte) ([]byte, error) {
			var s uint64
			for i := lo; i < hi; i++ {
				s += uint64(i)
			}
			return binary.LittleEndian.AppendUint64(nil, s), nil
		},
		FoldFn: func(acc, part []byte) ([]byte, error) {
			if acc == nil {
				acc = make([]byte, 8)
			}
			total := binary.LittleEndian.Uint64(acc) + binary.LittleEndian.Uint64(part)
			binary.LittleEndian.PutUint64(acc, total)
			return acc, nil
		},
	}
	if err := reg.Register(kern); err != nil {
		return benchjson.Result{}, err
	}
	o, err := offload.New(reg,
		offload.WithDomains(2),
		offload.WithChunkIters(512),
		offload.WithBatching(batch),
	)
	if err != nil {
		return benchjson.Result{}, err
	}
	defer o.Close()
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := o.ParallelFor("sum", 4096, nil); err != nil {
				benchErr = err
				return
			}
		}
	})
	return resultOf("offload_chunk_roundtrip", r, nil), benchErr
}
