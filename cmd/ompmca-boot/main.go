// Command ompmca-boot walks the board bring-up of the paper's §4B and
// Figure 3: it first boots the T4240RDB the factory way (NOR flash,
// volatile root), demonstrates that a reset loses the development state,
// then reconfigures u-boot for TFTP kernel loading with an NFS root and
// shows the state surviving reboots.
package main

import (
	"flag"
	"fmt"
	"log"

	"openmpmca/internal/board"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-boot: ")
	verbose := flag.Bool("v", false, "print full boot logs")
	flag.Parse()

	b := board.NewBoard()

	// Factory boot from NOR flash.
	fmt.Println("--- factory boot (NOR flash) ---")
	if err := b.Boot(board.BootConfig{Source: board.BootFlash}); err != nil {
		log.Fatal(err)
	}
	printLog(b, *verbose)
	root, err := b.Root()
	if err != nil {
		log.Fatal(err)
	}
	root.WriteFile("/home/dev/toolchain.patch", []byte("work in progress"))
	fmt.Println("wrote /home/dev/toolchain.patch to the RAM-disk root")
	b.Reset()
	if err := b.Boot(board.BootConfig{Source: board.BootFlash}); err != nil {
		log.Fatal(err)
	}
	root, _ = b.Root()
	if _, err := root.ReadFile("/home/dev/toolchain.patch"); err != nil {
		fmt.Println("after reset: /home/dev/toolchain.patch is GONE (flash root is refreshed every reset)")
	}

	// Development boot: TFTP kernel + NFS root (Figure 3).
	fmt.Println("\n--- development boot (TFTP + NFS) ---")
	tftp := board.NewTFTPServer()
	tftp.Put("uImage-omp", devKernel())
	nfs := board.NewNFSServer()
	nfs.AddExport("/srv/nfs/t4240")
	b.Flash.SetEnv("bootcmd", "tftp uImage-omp; nfsroot /srv/nfs/t4240; bootm")
	cfg := board.BootConfig{
		Source:     board.BootNetwork,
		TFTP:       tftp,
		KernelFile: "uImage-omp",
		NFS:        nfs,
		Export:     "/srv/nfs/t4240",
	}
	b.Reset()
	if err := b.Boot(cfg); err != nil {
		log.Fatal(err)
	}
	printLog(b, *verbose)
	root, _ = b.Root()
	root.WriteFile("/opt/mca-libgomp.so", []byte("the toolchain under development"))
	fmt.Println("installed /opt/mca-libgomp.so on the NFS root")
	b.Reset()
	if err := b.Boot(cfg); err != nil {
		log.Fatal(err)
	}
	root, _ = b.Root()
	if data, err := root.ReadFile("/opt/mca-libgomp.so"); err == nil {
		fmt.Printf("after reboot: /opt/mca-libgomp.so intact (%d bytes) — NFS root persists\n\n", len(data))
	}
	fmt.Print(board.RenderEnvironment(b, tftp, nfs, "/srv/nfs/t4240"))
}

func printLog(b *board.Board, verbose bool) {
	if !verbose {
		return
	}
	for _, line := range b.BootLog() {
		fmt.Println("  " + line)
	}
}

// devKernel is the development kernel image served over TFTP.
func devKernel() []byte {
	// Re-use the flash image builder by round-tripping through a board's
	// factory flash; the content differs only in payload.
	f := board.NewNORFlash()
	img, _ := f.Read("uImage")
	return img
}
