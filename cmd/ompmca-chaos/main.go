// Command ompmca-chaos runs seeded, replayable fault campaigns against
// the runtime's offload, task-fabric and job-service layers and asserts
// the two chaos properties: byte-exact results and zero lost jobs
// (internal/chaos).
//
//	ompmca-chaos -seed 42 -campaigns 6 -duration 2s   # a full sweep
//	ompmca-chaos -seed 42 -campaigns 1                # replay one schedule
//	ompmca-chaos -kill-mid-graph                      # the promoted CI scenario
//	ompmca-chaos -mesh                                # the 8-domain peer-steal scenarios
//	ompmca-chaos -crash -serve-bin ./ompmca-serve     # SIGKILL a durable server mid-load
//	ompmca-chaos -json > results.json                 # machine-readable verdicts
//
// -crash runs the durability campaign: it boots the given server binary
// with a -state-dir, loads it over HTTP, SIGKILLs it with spin jobs
// still in flight, restarts it over the same state dir and requires
// every accepted job to settle byte-exact — the write-ahead journal's
// zero-loss contract under genuine process death.
//
// The entire fault schedule — which domains die when, which frame-fault
// windows open at what rates, where the saturation bursts land — derives
// from -seed, so a failing run's seed is a complete reproduction recipe.
// Exit status is nonzero if any campaign loses a job, settles inexact,
// or surfaces an unclassified error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"openmpmca/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 42, "campaign schedule seed (replay a failure with its seed)")
	campaigns := flag.Int("campaigns", 6, "number of campaigns to derive and run")
	duration := flag.Duration("duration", 2*time.Second, "per-campaign fault-schedule budget")
	killMidGraph := flag.Bool("kill-mid-graph", false, "run only the fixed kill-mid-graph scenario")
	mesh := flag.Bool("mesh", false, "run only the fixed peer-steal mesh scenarios (kill-victim-mid-yield, dead-peer-channel)")
	crash := flag.Bool("crash", false, "run the crash-restart durability campaign against a server binary (-serve-bin)")
	serveBin := flag.String("serve-bin", "", "path to an ompmca-serve binary for -crash")
	stateDir := flag.String("state-dir", "", "state dir for -crash (default: a fresh temp dir)")
	crashJobs := flag.Int("crash-jobs", 16, "closed-form jobs submitted per life for -crash")
	crashKills := flag.Int("crash-kills", 2, "SIGKILL/restart cycles for -crash")
	verbose := flag.Bool("v", false, "print each campaign's schedule before running it")
	jsonOut := flag.Bool("json", false, "emit results as JSON on stdout")
	flag.Parse()

	if *crash {
		runCrash(*seed, *serveBin, *stateDir, *crashJobs, *crashKills, *jsonOut)
		return
	}

	var plan []chaos.Campaign
	switch {
	case *killMidGraph:
		plan = []chaos.Campaign{chaos.KillMidGraphCampaign()}
	case *mesh:
		plan = chaos.MeshCampaigns()
	default:
		plan = chaos.Plan(*seed, *campaigns, *duration)
	}

	results := make([]chaos.Result, 0, len(plan))
	failed := 0
	for _, c := range plan {
		if *verbose && !*jsonOut {
			fmt.Print(c.Schedule())
		}
		r := chaos.Run(c)
		results = append(results, r)
		if !*jsonOut {
			fmt.Println(r.Summary())
			for _, f := range r.Failures {
				fmt.Printf("    FAIL %s\n", f)
			}
		}
		if !r.OK() {
			failed++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "ompmca-chaos:", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%d/%d campaigns passed (seed %d)\n", len(plan)-failed, len(plan), *seed)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ompmca-chaos: %d campaign(s) failed; replay with -seed %d\n", failed, *seed)
		os.Exit(1)
	}
}

// runCrash executes the crash-restart durability campaign and exits
// with the verdict.
func runCrash(seed int64, serveBin, stateDir string, jobs, kills int, jsonOut bool) {
	if serveBin == "" {
		fmt.Fprintln(os.Stderr, "ompmca-chaos: -crash requires -serve-bin")
		os.Exit(2)
	}
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "ompmca-crash-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ompmca-chaos:", err)
			os.Exit(1)
		}
		// os.Exit skips defers; clean the scratch dir explicitly before
		// every exit below.
		stateDir = dir
	}
	cleanup := func() {
		if !strings.HasPrefix(filepath.Base(stateDir), "ompmca-crash-") {
			return // only remove dirs this run created
		}
		os.RemoveAll(stateDir)
	}
	r := chaos.RunCrash(chaos.CrashCampaign{
		Name:     "crash-restart",
		Seed:     seed,
		ServeBin: serveBin,
		StateDir: stateDir,
		Jobs:     jobs,
		Kills:    kills,
	})
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, "ompmca-chaos:", err)
			os.Exit(1)
		}
	} else {
		fmt.Println(r.Summary())
		for _, f := range r.Failures {
			fmt.Printf("    FAIL %s\n", f)
		}
		fmt.Printf("recovered %d job(s) across %d SIGKILL(s)\n", r.Recovered, kills)
	}
	cleanup()
	if !r.OK() {
		fmt.Fprintf(os.Stderr, "ompmca-chaos: crash campaign failed; replay with -seed %d\n", seed)
		os.Exit(1)
	}
}
