// Command ompmca-chaos runs seeded, replayable fault campaigns against
// the runtime's offload, task-fabric and job-service layers and asserts
// the two chaos properties: byte-exact results and zero lost jobs
// (internal/chaos).
//
//	ompmca-chaos -seed 42 -campaigns 6 -duration 2s   # a full sweep
//	ompmca-chaos -seed 42 -campaigns 1                # replay one schedule
//	ompmca-chaos -kill-mid-graph                      # the promoted CI scenario
//	ompmca-chaos -mesh                                # the 8-domain peer-steal scenarios
//	ompmca-chaos -json > results.json                 # machine-readable verdicts
//
// The entire fault schedule — which domains die when, which frame-fault
// windows open at what rates, where the saturation bursts land — derives
// from -seed, so a failing run's seed is a complete reproduction recipe.
// Exit status is nonzero if any campaign loses a job, settles inexact,
// or surfaces an unclassified error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"openmpmca/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 42, "campaign schedule seed (replay a failure with its seed)")
	campaigns := flag.Int("campaigns", 6, "number of campaigns to derive and run")
	duration := flag.Duration("duration", 2*time.Second, "per-campaign fault-schedule budget")
	killMidGraph := flag.Bool("kill-mid-graph", false, "run only the fixed kill-mid-graph scenario")
	mesh := flag.Bool("mesh", false, "run only the fixed peer-steal mesh scenarios (kill-victim-mid-yield, dead-peer-channel)")
	verbose := flag.Bool("v", false, "print each campaign's schedule before running it")
	jsonOut := flag.Bool("json", false, "emit results as JSON on stdout")
	flag.Parse()

	var plan []chaos.Campaign
	switch {
	case *killMidGraph:
		plan = []chaos.Campaign{chaos.KillMidGraphCampaign()}
	case *mesh:
		plan = chaos.MeshCampaigns()
	default:
		plan = chaos.Plan(*seed, *campaigns, *duration)
	}

	results := make([]chaos.Result, 0, len(plan))
	failed := 0
	for _, c := range plan {
		if *verbose && !*jsonOut {
			fmt.Print(c.Schedule())
		}
		r := chaos.Run(c)
		results = append(results, r)
		if !*jsonOut {
			fmt.Println(r.Summary())
			for _, f := range r.Failures {
				fmt.Printf("    FAIL %s\n", f)
			}
		}
		if !r.OK() {
			failed++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "ompmca-chaos:", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%d/%d campaigns passed (seed %d)\n", len(plan)-failed, len(plan), *seed)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ompmca-chaos: %d campaign(s) failed; replay with -seed %d\n", failed, *seed)
		os.Exit(1)
	}
}
