// Command ompmca-epcc regenerates the paper's Table I: EPCC
// synchronization-overhead ratios of the MCA-backed OpenMP runtime versus
// the native runtime, per directive and thread count, on the modeled
// T4240RDB.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"openmpmca/internal/core"
	"openmpmca/internal/epcc"
	"openmpmca/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-epcc: ")
	var (
		threadsFlag = flag.String("threads", "4,8,12,16,20,24", "comma-separated team sizes")
		inner       = flag.Int("inner", 128, "construct executions per sample")
		outer       = flag.Int("outer", 7, "samples per cell (median reported)")
		delay       = flag.Int("delay", 64, "busy-delay length inside constructs")
		boardName   = flag.String("board", "t4240", "board model: t4240 or p4080")
		absolute    = flag.Bool("absolute", false, "also print absolute overheads (µs)")
		sched       = flag.Bool("sched", false, "also run the schedbench schedule-overhead sweep")
		array       = flag.Bool("array", false, "also run the arraybench data-environment sweep")
	)
	flag.Parse()

	board, err := pickBoard(*boardName)
	if err != nil {
		log.Fatal(err)
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		log.Fatal(err)
	}
	opt := epcc.Options{InnerReps: *inner, OuterReps: *outer, DelayLength: *delay}

	res, err := epcc.MeasureTable1(board, opt, threads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	if *sched {
		for _, layerName := range []string{"native", "mca"} {
			rt, err := runtimeFor(board, layerName, threads[len(threads)-1])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n[%s layer] ", layerName)
			fmt.Print(epcc.NewSuite(rt, opt).MeasureScheduleTable().Render())
			_ = rt.Close()
		}
	}
	if *array {
		for _, layerName := range []string{"native", "mca"} {
			rt, err := runtimeFor(board, layerName, threads[len(threads)-1])
			if err != nil {
				log.Fatal(err)
			}
			table, err := epcc.NewSuite(rt, opt).MeasureArrayTable()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n[%s layer] ", layerName)
			fmt.Print(table.Render())
			_ = rt.Close()
		}
	}
	if *absolute {
		fmt.Println("\nAbsolute overheads (µs, median):")
		for _, c := range res.Constructs {
			fmt.Printf("%-14s native:", c)
			for _, v := range res.NativeUS[c] {
				fmt.Printf("%9.2f", v)
			}
			fmt.Printf("\n%-14s mca:   ", c)
			for _, v := range res.MCAUS[c] {
				fmt.Printf("%9.2f", v)
			}
			fmt.Println()
		}
	}
}

func runtimeFor(board *platform.Board, layerName string, threads int) (*core.Runtime, error) {
	var layer core.ThreadLayer
	if layerName == "mca" {
		l, err := core.NewMCALayer(board.NewSystem())
		if err != nil {
			return nil, err
		}
		layer = l
	} else {
		layer = core.NewNativeLayer(board.HWThreads())
	}
	return core.New(core.WithLayer(layer), core.WithNumThreads(threads))
}

func pickBoard(name string) (*platform.Board, error) {
	switch strings.ToLower(name) {
	case "t4240", "t4240rdb":
		return platform.T4240RDB(), nil
	case "p4080", "p4080ds":
		return platform.P4080DS(), nil
	}
	return nil, fmt.Errorf("unknown board %q", name)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts")
	}
	return out, nil
}
