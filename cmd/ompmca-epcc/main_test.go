package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("4,8, 12")
	if err != nil || len(got) != 3 || got[2] != 12 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "-4"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

func TestPickBoard(t *testing.T) {
	b, err := pickBoard("p4080ds")
	if err != nil || b.Cores != 8 {
		t.Errorf("pickBoard = %v, %v", b, err)
	}
	if _, err := pickBoard("zynq"); err == nil {
		t.Error("unknown board accepted")
	}
}

func TestRuntimeFor(t *testing.T) {
	b, _ := pickBoard("t4240")
	for _, layer := range []string{"native", "mca"} {
		rt, err := runtimeFor(b, layer, 4)
		if err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if rt.NumThreads() != 4 {
			t.Errorf("%s threads = %d", layer, rt.NumThreads())
		}
		_ = rt.Close()
	}
}
