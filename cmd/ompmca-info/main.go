// Command ompmca-info renders the platform artifacts of the paper's §4:
// the T4240RDB block diagram (Figure 1), a hypervisor partitioning demo
// (Figure 2), the T4240-vs-P4080 comparison (§4C), and the MRAPI metadata
// resource tree the runtime reads (§5B4).
package main

import (
	"flag"
	"fmt"
	"log"

	"openmpmca/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-info: ")
	var (
		diagram    = flag.Bool("diagram", false, "render the board block diagram (Figure 1)")
		hypervisor = flag.Bool("hypervisor", false, "render a hypervisor partition demo (Figure 2)")
		compare    = flag.Bool("compare", false, "render the T4240 vs P4080 comparison (§4C)")
		tree       = flag.Bool("tree", false, "render the MRAPI metadata resource tree")
	)
	flag.Parse()
	all := !*diagram && !*hypervisor && !*compare && !*tree

	t4 := platform.T4240RDB()
	if *diagram || all {
		fmt.Println("=== Figure 1: board block diagram ===")
		fmt.Println(t4.BlockDiagram())
	}
	if *hypervisor || all {
		fmt.Println("=== Figure 2: embedded hypervisor partitions ===")
		hv, err := platform.NewHypervisor(t4)
		if err != nil {
			log.Fatal(err)
		}
		mustPartition(hv, "control-plane", platform.GuestLinux, []int{0, 1, 2, 3, 4, 5, 6, 7}, 2048, "eth0")
		mustPartition(hv, "data-plane", platform.GuestBareMetal, []int{8, 9, 10, 11, 12, 13, 14, 15}, 2048, "dpaa0")
		mustPartition(hv, "realtime", platform.GuestRTOS, []int{16, 17, 18, 19}, 1024)
		for _, name := range []string{"control-plane", "data-plane", "realtime"} {
			if err := hv.Start(name); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println(hv.Render())
	}
	if *compare || all {
		fmt.Println("=== §4C: T4240RDB vs P4080DS ===")
		fmt.Println(platform.Compare(t4, platform.P4080DS()))
	}
	if *tree || all {
		fmt.Println("=== MRAPI metadata resource tree (mrapi_resources_get) ===")
		fmt.Println(t4.ResourceTree().Render())
	}
}

func mustPartition(hv *platform.Hypervisor, name string, guest platform.GuestOS, cpus []int, memMB int, io ...string) {
	if _, err := hv.CreatePartition(name, guest, cpus, memMB, io...); err != nil {
		log.Fatalf("partition %s: %v", name, err)
	}
}
