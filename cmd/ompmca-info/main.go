// Command ompmca-info renders the platform artifacts of the paper's §4:
// the T4240RDB block diagram (Figure 1), a hypervisor partitioning demo
// (Figure 2), the T4240-vs-P4080 comparison (§4C), the MRAPI metadata
// resource tree the runtime reads (§5B4), and the runtime's scheduler
// counters from a sample tasking workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"openmpmca"
	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-info: ")
	var (
		diagram    = flag.Bool("diagram", false, "render the board block diagram (Figure 1)")
		hypervisor = flag.Bool("hypervisor", false, "render a hypervisor partition demo (Figure 2)")
		compare    = flag.Bool("compare", false, "render the T4240 vs P4080 comparison (§4C)")
		tree       = flag.Bool("tree", false, "render the MRAPI metadata resource tree")
		stats      = flag.Bool("stats", false, "run a sample tasking workload and print runtime scheduler counters")
		threads    = flag.Int("threads", 8, "team size for -stats")
		jsonOut    = flag.Bool("json", false, "with -stats, emit the unified openmpmca.Snapshot as NDJSON (one line per layer)")
	)
	flag.Parse()
	all := !*diagram && !*hypervisor && !*compare && !*tree && !*stats

	t4 := platform.T4240RDB()
	if *diagram || all {
		fmt.Println("=== Figure 1: board block diagram ===")
		fmt.Println(t4.BlockDiagram())
	}
	if *hypervisor || all {
		fmt.Println("=== Figure 2: embedded hypervisor partitions ===")
		hv, err := platform.NewHypervisor(t4)
		if err != nil {
			log.Fatal(err)
		}
		mustPartition(hv, "control-plane", platform.GuestLinux, []int{0, 1, 2, 3, 4, 5, 6, 7}, 2048, "eth0")
		mustPartition(hv, "data-plane", platform.GuestBareMetal, []int{8, 9, 10, 11, 12, 13, 14, 15}, 2048, "dpaa0")
		mustPartition(hv, "realtime", platform.GuestRTOS, []int{16, 17, 18, 19}, 1024)
		for _, name := range []string{"control-plane", "data-plane", "realtime"} {
			if err := hv.Start(name); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println(hv.Render())
	}
	if *compare || all {
		fmt.Println("=== §4C: T4240RDB vs P4080DS ===")
		fmt.Println(platform.Compare(t4, platform.P4080DS()))
	}
	if *tree || all {
		fmt.Println("=== MRAPI metadata resource tree (mrapi_resources_get) ===")
		fmt.Println(t4.ResourceTree().Render())
	}
	if *stats || all {
		if !*jsonOut {
			fmt.Println("=== runtime scheduler counters (task workload) ===")
		}
		if err := printStats(t4, *threads, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}
}

// printStats runs the same recursive tasking workload on the native and the
// MCA-backed runtime and prints each one's counter snapshot, making the
// work-stealing scheduler's behavior (local pops vs steals vs failed
// probes) observable from the command line. With jsonOut it emits one
// NDJSON line per layer carrying the unified openmpmca.Snapshot — the
// same shape the job service serves on /v1/stats.
func printStats(board *platform.Board, threads int, jsonOut bool) error {
	layers := []struct {
		name  string
		layer func() (openmpmca.ThreadLayer, error)
	}{
		{"native", func() (openmpmca.ThreadLayer, error) {
			return openmpmca.NewNativeLayer(board.HWThreads()), nil
		}},
		{"mca", func() (openmpmca.ThreadLayer, error) {
			return core.NewMCALayer(board.NewSystem())
		}},
	}
	for _, lc := range layers {
		l, err := lc.layer()
		if err != nil {
			return err
		}
		rt, err := openmpmca.New(openmpmca.WithLayer(l), openmpmca.WithNumThreads(threads))
		if err != nil {
			return err
		}
		err = rt.Parallel(func(c *openmpmca.Context) {
			c.SingleNoWait(func() {
				var fib func(c *openmpmca.Context, n int) int
				fib = func(c *openmpmca.Context, n int) int {
					if n < 2 {
						return n
					}
					var a, b int
					c.Taskgroup(func() {
						c.Task(func() { a = fib(c, n-1) })
						b = fib(c, n-2)
					})
					return a + b
				}
				fib(c, 16)
			})
		})
		if err != nil {
			return err
		}
		s := rt.Stats().Snapshot()
		if jsonOut {
			line := struct {
				Layer    string             `json:"layer"`
				Snapshot openmpmca.Snapshot `json:"snapshot"`
			}{lc.name, openmpmca.Snapshot{Core: &s}}
			if err := json.NewEncoder(os.Stdout).Encode(line); err != nil {
				return err
			}
		} else {
			fmt.Printf("%-6s  queue=%s regions=%d threads=%d barriers=%d tasks=%d\n",
				lc.name, rt.TaskQueueKind(), s.Regions, s.Threads, s.Barriers, s.Tasks)
			fmt.Printf("        local-pops=%d steals=%d steal-fails=%d\n",
				s.LocalPops, s.Steals, s.StealFails)
		}
		if err := rt.Close(); err != nil {
			return err
		}
	}
	return nil
}

func mustPartition(hv *platform.Hypervisor, name string, guest platform.GuestOS, cpus []int, memMB int, io ...string) {
	if _, err := hv.CreatePartition(name, guest, cpus, memMB, io...); err != nil {
		log.Fatalf("partition %s: %v", name, err)
	}
}
