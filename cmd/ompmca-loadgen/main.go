// Command ompmca-loadgen drives an ompmca-serve instance with thousands
// of concurrent submitters across multiple tenants and asserts the job
// service's contracts from the outside:
//
//   - every accepted job returns its exact expected result — including
//     jobs in flight while a domain is drained and readmitted (-fault);
//   - quotas are enforced: an over-quota burst is refused with HTTP 429
//     plus a Retry-After header and never wedges the fabric (the probe
//     phase);
//   - dispatch is weighted-fair: under sustained contention every
//     tenant's completion share stays within bounds of its priority
//     weight share (the fairness phase);
//   - nothing is lost: at the end the server's own counters must show
//     zero failed and zero unaccounted jobs.
//
// Exit status is nonzero if any assertion fails or the -timeout expires.
//
//	ompmca-serve &
//	ompmca-loadgen -submitters 1000 -jobs 2 -fault
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmpmca"
	"openmpmca/internal/jobservice"
)

type tenantFlags []openmpmca.Tenant

func (f *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*f)) }

func (f *tenantFlags) Set(spec string) error {
	t, err := jobservice.ParseTenant(spec)
	if err != nil {
		return err
	}
	*f = append(*f, t)
	return nil
}

// gen is the load generator's shared state.
type gen struct {
	base    string
	client  *http.Client
	tenants []openmpmca.Tenant
	ctx     context.Context

	useOffload bool

	retries429 atomic.Uint64
	accepted   atomic.Uint64
	verified   atomic.Uint64
	recovered  atomic.Uint64
	failures   atomic.Uint64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-loadgen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "ompmca-serve base URL")
		submitters  = flag.Int("submitters", 1000, "concurrent submitter goroutines across all tenants")
		jobsPerSub  = flag.Int("jobs", 2, "jobs each submitter runs to completion")
		timeout     = flag.Duration("timeout", 3*time.Minute, "overall deadline; expiry is a failure")
		fault       = flag.Bool("fault", false, "drain and readmit a fabric domain mid-run")
		faultDomain = flag.Int("fault-domain", 1, "fabric domain -fault drains")
		fairnessMin = flag.Float64("fairness-min", 0.2, "min completion share as a fraction of weight share (0 skips the fairness phase)")
		quotaProbe  = flag.Bool("quota-probe", true, "burst each tenant over quota and require 429 + Retry-After")
		useOffload  = flag.Bool("offload", true, "include parallel_for (vecsum) jobs in the mix")
		maxConns    = flag.Int("max-conns", 256, "HTTP connection cap toward the server")
		tenants     tenantFlags
	)
	flag.Var(&tenants, "tenant", "tenant spec name:key:quota:priority[:admin] (repeatable; default: demo tenants)")
	flag.Parse()

	if len(tenants) == 0 {
		tenants = jobservice.DemoTenants()
	}
	if len(tenants) < 3 {
		return fmt.Errorf("need at least 3 tenants for a meaningful run, got %d", len(tenants))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	g := &gen{
		base: strings.TrimRight(*addr, "/"),
		client: &http.Client{Transport: &http.Transport{
			MaxConnsPerHost:     *maxConns,
			MaxIdleConnsPerHost: *maxConns,
		}},
		tenants:    tenants,
		ctx:        ctx,
		useOffload: *useOffload,
	}

	if err := g.waitReady(15 * time.Second); err != nil {
		return err
	}
	before, err := g.stats()
	if err != nil {
		return err
	}
	if before.Service == nil {
		return fmt.Errorf("server stats carry no service section")
	}

	if *quotaProbe {
		for _, t := range tenants {
			if err := g.probeQuota(t); err != nil {
				return fmt.Errorf("quota probe (%s): %w", t.Name, err)
			}
		}
		log.Printf("quota probe: every tenant refused over quota with 429 + Retry-After")
	}

	var faultErr error
	faultDone := make(chan struct{})
	if *fault {
		admin := adminTenant(tenants)
		if admin == nil {
			return fmt.Errorf("-fault needs an admin tenant")
		}
		go func() {
			defer close(faultDone)
			faultErr = g.injectFault(*admin, *faultDomain)
		}()
	} else {
		close(faultDone)
	}

	total := *submitters * *jobsPerSub
	log.Printf("main load: %d submitters × %d jobs across %d tenants (%d jobs total)",
		*submitters, *jobsPerSub, len(tenants), total)
	start := time.Now()
	var wg sync.WaitGroup
	for si := 0; si < *submitters; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			t := g.tenants[si%len(g.tenants)]
			rng := rand.New(rand.NewSource(int64(si)))
			for k := 0; k < *jobsPerSub; k++ {
				if g.ctx.Err() != nil {
					return
				}
				if err := g.runJob(t, si**jobsPerSub+k, rng); err != nil {
					g.failures.Add(1)
					log.Printf("FAIL [%s] %v", t.Name, err)
				}
			}
		}(si)
	}
	wg.Wait()
	<-faultDone
	if g.ctx.Err() != nil {
		return fmt.Errorf("deadline expired after %v: %d/%d jobs verified", *timeout, g.verified.Load(), total)
	}
	if faultErr != nil {
		return fmt.Errorf("fault injection: %w", faultErr)
	}
	log.Printf("main load: %d accepted, %d verified exact (%d recovered from domain loss), %d retries on 429, %v",
		g.accepted.Load(), g.verified.Load(), g.recovered.Load(), g.retries429.Load(), time.Since(start).Round(time.Millisecond))

	if *fairnessMin > 0 {
		if err := g.checkFairness(*fairnessMin); err != nil {
			return fmt.Errorf("fairness: %w", err)
		}
	}

	after, err := g.stats()
	if err != nil {
		return err
	}
	svc := after.Service
	dF, dA, dC := svc.Failed-before.Service.Failed, svc.Accepted-before.Service.Accepted,
		svc.Completed-before.Service.Completed+svc.Canceled-before.Service.Canceled
	if dF != 0 {
		return fmt.Errorf("server reports %d failed jobs", dF)
	}
	if dA != dC || svc.Queued != 0 || svc.Running != 0 {
		return fmt.Errorf("lost jobs: accepted %d, settled %d, queued %d, running %d", dA, dC, svc.Queued, svc.Running)
	}
	if g.failures.Load() != 0 {
		return fmt.Errorf("%d job assertions failed", g.failures.Load())
	}
	log.Printf("OK: %d jobs accepted server-side, %d settled, zero lost", dA, dC)
	return nil
}

func adminTenant(ts []openmpmca.Tenant) *openmpmca.Tenant {
	for i := range ts {
		if ts[i].Admin {
			return &ts[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// HTTP plumbing.

type envelope struct {
	Type      string          `json:"type"`
	Metadata  json.RawMessage `json:"metadata"`
	Error     string          `json:"error"`
	ErrorCode int             `json:"error_code"`
}

// call issues one request; out (when non-nil) receives the decoded
// metadata. The Retry-After header value (seconds) is returned alongside.
func (g *gen) call(method, path, key string, body, out any) (int, string, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, "", err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(g.ctx, method, g.base+path, rd)
	if err != nil {
		return 0, "", err
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return resp.StatusCode, "", fmt.Errorf("%s %s: bad envelope: %w", method, path, err)
	}
	if env.Type == "error" {
		return resp.StatusCode, resp.Header.Get("Retry-After"), nil
	}
	if out != nil {
		if err := json.Unmarshal(env.Metadata, out); err != nil {
			return resp.StatusCode, "", fmt.Errorf("%s %s: bad metadata: %w", method, path, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

func (g *gen) waitReady(d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		code, _, err := g.call(http.MethodGet, "/v1/ready", "", nil, nil)
		if err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v (last: code=%d err=%v)", g.base, d, code, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (g *gen) stats() (openmpmca.Snapshot, error) {
	var snap openmpmca.Snapshot
	code, _, err := g.call(http.MethodGet, "/v1/stats", g.tenants[0].Key, nil, &snap)
	if err != nil {
		return snap, err
	}
	if code != http.StatusOK {
		return snap, fmt.Errorf("stats: HTTP %d", code)
	}
	return snap, nil
}

type submitRequest struct {
	Job  string `json:"job"`
	Kind string `json:"kind,omitempty"`
	Arg  []byte `json:"arg,omitempty"`
	N    int    `json:"n,omitempty"`
}

// submit posts one job, retrying on 429 with the server's Retry-After
// hint (capped, jittered). Returns the job ID.
func (g *gen) submit(t openmpmca.Tenant, req submitRequest, rng *rand.Rand) (string, error) {
	for {
		var v jobservice.JobView
		code, retryAfter, err := g.call(http.MethodPost, "/v1/jobs", t.Key, req, &v)
		if err != nil {
			return "", err
		}
		switch code {
		case http.StatusAccepted:
			g.accepted.Add(1)
			return v.ID, nil
		case http.StatusTooManyRequests:
			g.retries429.Add(1)
			backoff := time.Second
			if retryAfter != "" {
				var secs int
				if _, err := fmt.Sscanf(retryAfter, "%d", &secs); err == nil && secs > 0 {
					backoff = time.Duration(secs) * time.Second
				}
			}
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			jitter := time.Duration(rng.Intn(50)) * time.Millisecond
			select {
			case <-time.After(backoff/4 + jitter):
			case <-g.ctx.Done():
				return "", g.ctx.Err()
			}
		default:
			return "", fmt.Errorf("submit %q: HTTP %d", req.Job, code)
		}
	}
}

// await long-polls a job to settlement.
func (g *gen) await(t openmpmca.Tenant, id string) (jobservice.JobView, error) {
	for {
		var v jobservice.JobView
		code, _, err := g.call(http.MethodGet, "/v1/jobs/"+id+"?wait=2s", t.Key, nil, &v)
		if err != nil {
			return v, err
		}
		if code != http.StatusOK {
			return v, fmt.Errorf("job %s: HTTP %d", id, code)
		}
		switch v.Status {
		case jobservice.StatusSucceeded, jobservice.StatusFailed, jobservice.StatusCanceled:
			return v, nil
		}
		if g.ctx.Err() != nil {
			return v, g.ctx.Err()
		}
	}
}

// ---------------------------------------------------------------------------
// Phases.

// runJob submits workload #idx and asserts its exact result.
func (g *gen) runJob(t openmpmca.Tenant, idx int, rng *rand.Rand) error {
	var req submitRequest
	var want []byte
	mix := 4
	if g.useOffload {
		mix = 5
	}
	switch idx % mix {
	case 0:
		lo, hi := int64(-(idx % 50)), int64(idx%1000)
		req = submitRequest{Job: jobservice.JobSum, Arg: jobservice.I64Pair(lo, hi)}
		want = jobservice.SumExpected(lo, hi)
	case 1:
		n := uint64(10 + idx%40)
		req = submitRequest{Job: jobservice.JobFib, Arg: jobservice.U64(n)}
		want = jobservice.FibExpected(n)
	case 2:
		payload := []byte(fmt.Sprintf("payload-%d", idx))
		req = submitRequest{Job: jobservice.JobEcho, Arg: payload}
		want = payload
	case 3:
		ns := uint64(5 * time.Millisecond)
		req = submitRequest{Job: jobservice.JobSpin, Arg: jobservice.U64(ns)}
		want = jobservice.U64(ns)
	case 4:
		n := 100 + idx%900
		req = submitRequest{Job: jobservice.KernelVecSum, Kind: jobservice.KindParallelFor, N: n}
		want = jobservice.VecSumExpected(n)
	}
	id, err := g.submit(t, req, rng)
	if err != nil {
		return err
	}
	v, err := g.await(t, id)
	if err != nil {
		return err
	}
	if v.Status != jobservice.StatusSucceeded {
		return fmt.Errorf("job %s (%s) settled %s: %s", id, req.Job, v.Status, v.Error)
	}
	if !bytes.Equal(v.Result, want) {
		return fmt.Errorf("job %s (%s): result %x, want %x", id, req.Job, v.Result, want)
	}
	if v.Recovered {
		g.recovered.Add(1)
	}
	g.verified.Add(1)
	return nil
}

// probeQuota deterministically bursts one idle tenant to its quota with
// slow jobs, requires the next submit to bounce with 429 + Retry-After,
// then drains the burst and verifies every accepted job's result.
func (g *gen) probeQuota(t openmpmca.Tenant) error {
	if t.Quota > 128 {
		log.Printf("quota probe: skipping %s (quota %d too large to burst)", t.Name, t.Quota)
		return nil
	}
	rng := rand.New(rand.NewSource(1))
	spin := jobservice.U64(uint64(300 * time.Millisecond))
	ids := make([]string, 0, t.Quota)
	for i := 0; i < t.Quota; i++ {
		var v jobservice.JobView
		code, _, err := g.call(http.MethodPost, "/v1/jobs", t.Key,
			submitRequest{Job: jobservice.JobSpin, Arg: spin}, &v)
		if err != nil {
			return err
		}
		if code != http.StatusAccepted {
			return fmt.Errorf("burst submit %d/%d: HTTP %d", i+1, t.Quota, code)
		}
		ids = append(ids, v.ID)
	}
	code, retryAfter, err := g.call(http.MethodPost, "/v1/jobs", t.Key,
		submitRequest{Job: jobservice.JobEcho}, nil)
	if err != nil {
		return err
	}
	if code != http.StatusTooManyRequests {
		return fmt.Errorf("submit over quota: HTTP %d, want 429", code)
	}
	if retryAfter == "" {
		return fmt.Errorf("429 carried no Retry-After header")
	}
	for _, id := range ids {
		v, err := g.await(t, id)
		if err != nil {
			return err
		}
		if v.Status != jobservice.StatusSucceeded || !bytes.Equal(v.Result, spin) {
			return fmt.Errorf("burst job %s settled %s (result %x)", id, v.Status, v.Result)
		}
	}
	// Capacity freed: the tenant is welcome again.
	id, err := g.submit(t, submitRequest{Job: jobservice.JobEcho, Arg: []byte("after")}, rng)
	if err != nil {
		return err
	}
	if v, err := g.await(t, id); err != nil || v.Status != jobservice.StatusSucceeded {
		return fmt.Errorf("post-burst submit: %v (status %s)", err, v.Status)
	}
	return nil
}

// injectFault waits for the run to be well underway, drains a fabric
// domain through the loss path, verifies the fleet reports it dead,
// then readmits it — all via the admin API while submitters hammer the
// service.
func (g *gen) injectFault(admin openmpmca.Tenant, domain int) error {
	for {
		if g.ctx.Err() != nil {
			return g.ctx.Err()
		}
		if g.verified.Load() >= 50 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	path := fmt.Sprintf("/v1/domains/%d/drain", domain)
	code, _, err := g.call(http.MethodPost, path, admin.Key, nil, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("drain: HTTP %d", code)
	}
	log.Printf("fault: drained fabric domain %d mid-run", domain)
	deadline := time.Now().Add(15 * time.Second)
	for {
		var doms jobservice.DomainsView
		if _, _, err := g.call(http.MethodGet, "/v1/domains", admin.Key, nil, &doms); err != nil {
			return err
		}
		if domain < len(doms.Fabric) && !doms.Fabric[domain].Live {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("domain %d still live 15s after drain", domain)
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // let the degraded fleet absorb load
	code, _, err = g.call(http.MethodPost, fmt.Sprintf("/v1/domains/%d/readmit", domain), admin.Key, nil, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("readmit: HTTP %d", code)
	}
	log.Printf("fault: readmitted fabric domain %d", domain)
	return nil
}

// checkFairness saturates every tenant simultaneously with uniform slow
// jobs, then compares each tenant's share of the completions against its
// weight share: share/weightShare must stay >= min for every tenant.
func (g *gen) checkFairness(min float64) error {
	before, err := g.stats()
	if err != nil {
		return err
	}
	spinNs := uint64(20 * time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ti, t := range g.tenants {
		for s := 0; s < t.Quota; s++ {
			wg.Add(1)
			go func(t openmpmca.Tenant, seed int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed)))
				for {
					select {
					case <-stop:
						return
					case <-g.ctx.Done():
						return
					default:
					}
					id, err := g.submit(t, submitRequest{Job: jobservice.JobSpin, Arg: jobservice.U64(spinNs)}, rng)
					if err != nil {
						return
					}
					if _, err := g.await(t, id); err != nil {
						return
					}
				}
			}(t, ti*1000+s)
		}
	}
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
	after, err := g.stats()
	if err != nil {
		return err
	}

	perTenant := func(s openmpmca.Snapshot) map[string]uint64 {
		m := make(map[string]uint64)
		for _, ts := range s.Service.Tenants {
			m[ts.Name] = ts.Completed
		}
		return m
	}
	b, a := perTenant(before), perTenant(after)
	var totalDelta, totalWeight float64
	for _, t := range g.tenants {
		totalDelta += float64(a[t.Name] - b[t.Name])
		totalWeight += float64(t.Priority.Weight())
	}
	if totalDelta < 100 {
		log.Printf("fairness: only %.0f completions in the window; skipping the share check", totalDelta)
		return nil
	}
	for _, t := range g.tenants {
		share := float64(a[t.Name]-b[t.Name]) / totalDelta
		weightShare := float64(t.Priority.Weight()) / totalWeight
		ratio := share / weightShare
		log.Printf("fairness: %-6s weight=%d share=%.3f weight-share=%.3f ratio=%.2f",
			t.Name, t.Priority.Weight(), share, weightShare, ratio)
		if ratio < min {
			return fmt.Errorf("tenant %s starved: share %.3f < %.2f × weight share %.3f",
				t.Name, share, min, weightShare)
		}
	}
	return nil
}
