// Command ompmca-npb regenerates the paper's Figure 4: the NAS parallel
// benchmarks (EP, CG, IS, MG, FT) on the modeled T4240RDB, comparing the
// MCA-backed OpenMP runtime against the native runtime from 1 to 24
// threads, reporting deterministic virtual-time execution times and
// speedups.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"openmpmca/internal/core"
	"openmpmca/internal/npb"
	"openmpmca/internal/platform"
	"openmpmca/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-npb: ")
	var (
		kernelFlag  = flag.String("kernel", "all", "kernel: EP, CG, IS, MG, FT or all")
		classFlag   = flag.String("class", "W", "problem class: S, W or A")
		threadsFlag = flag.String("threads", "1,2,4,8,12,16,20,24", "comma-separated team sizes")
		boardName   = flag.String("board", "t4240", "board model: t4240 or p4080")
		calibrate   = flag.Bool("calibrate", true, "scale the MCA layer's modeled management costs by host-measured EPCC ratios")
		traceFlag   = flag.Bool("trace", false, "print each kernel's construct profile (fork/barrier/reduction counts)")
		plot        = flag.Bool("plot", true, "draw the ASCII speedup chart under each panel")
	)
	flag.Parse()

	class, err := npb.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	board, err := pickBoard(*boardName)
	if err != nil {
		log.Fatal(err)
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		log.Fatal(err)
	}

	kernels := npb.Kernels
	if *kernelFlag != "all" {
		kernels = []string{strings.ToUpper(*kernelFlag)}
	}

	opts := npb.Figure4Options{}
	if *calibrate {
		scales, err := npb.CalibrateMCAScales(board, maxOf(threads))
		if err != nil {
			log.Fatal(err)
		}
		opts.Scales = &scales
		fmt.Printf("EPCC-calibrated MCA cost factors (shared across kernels): fork %.2f, sync %.2f, reduction %.2f\n\n",
			scales.Fork, scales.Sync, scales.Reduction)
	}

	for _, name := range kernels {
		series, err := npb.MeasureFigure4Opts(board, name, class, threads, opts)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Print(series.Render())
		if *plot {
			fmt.Print(series.Plot())
		}
		fmt.Printf("max MCA-vs-native time gap: %.2f%%\n", series.MaxRelativeGap()*100)
		if *traceFlag {
			if err := printConstructProfile(board, name, class); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}
}

// printConstructProfile runs the kernel once at 4 threads with the trace
// recorder attached and prints its construct counts — the parallel
// structure behind each Figure 4 panel.
func printConstructProfile(board *platform.Board, kernelName string, class npb.Class) error {
	kern, err := npb.New(kernelName, class)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(1) // aggregates only; the ring can stay tiny
	rt, err := core.New(
		core.WithLayer(core.NewNativeLayer(board.HWThreads())),
		core.WithNumThreads(4),
		core.WithMonitor(rec),
	)
	if err != nil {
		return err
	}
	defer rt.Close()
	if _, err := kern.Run(rt); err != nil {
		return err
	}
	s := rec.Summary()
	fmt.Printf("construct profile (4 threads): %d regions, %d barriers, %d reductions, %d singles, %.0f work units\n",
		s.Forks, s.Barriers, s.Reductions, s.Singles, s.UnitsCharged)
	return nil
}

func maxOf(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func pickBoard(name string) (*platform.Board, error) {
	switch strings.ToLower(name) {
	case "t4240", "t4240rdb":
		return platform.T4240RDB(), nil
	case "p4080", "p4080ds":
		return platform.P4080DS(), nil
	}
	return nil, fmt.Errorf("unknown board %q", name)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts")
	}
	return out, nil
}
