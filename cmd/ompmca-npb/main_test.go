package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,24")
	if err != nil || len(got) != 3 || got[2] != 24 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "1,-2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

func TestPickBoard(t *testing.T) {
	for _, name := range []string{"t4240", "T4240RDB", "p4080", "P4080DS"} {
		if _, err := pickBoard(name); err != nil {
			t.Errorf("pickBoard(%q): %v", name, err)
		}
	}
	if _, err := pickBoard("imx8"); err == nil {
		t.Error("unknown board accepted")
	}
}

func TestMaxOf(t *testing.T) {
	if maxOf([]int{3, 24, 7}) != 24 || maxOf(nil) != 1 {
		t.Error("maxOf wrong")
	}
}
