// Command ompmca-offload demonstrates multi-domain offload: an NPB
// EP-style counting kernel split across worker domains — each its own
// hypervisor partition running an MCA-backed OpenMP runtime — with all
// coordination riding MCAPI packet channels. A fault-injection pass
// kills one domain mid-region and shows the region still completing
// with the exact sequential result.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"openmpmca"
	"openmpmca/internal/trace"
)

// mix is the demo's deterministic per-index hash: the "random" stream an
// NPB EP rank would generate, reduced to an integer so results compare
// exactly across any distribution of chunks.
func mix(i int64) uint64 {
	x := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

// accept is EP's acceptance test, integerized: does index i's deviate
// fall inside the band?
func accept(i int64) bool { return mix(i)%1000 < 337 }

// epKernel counts accepted indices in [lo,hi) on the executing domain's
// OpenMP runtime. chunkDelay stretches each chunk so the fault-injection
// window is wide enough to watch.
func epKernel(chunkDelay time.Duration) openmpmca.OffloadFuncKernel {
	return openmpmca.OffloadFuncKernel{
		KernelName: "ep-count",
		ChunkFn: func(rt *openmpmca.Runtime, lo, hi int, arg []byte) ([]byte, error) {
			if chunkDelay > 0 {
				time.Sleep(chunkDelay)
			}
			var mu sync.Mutex
			var count uint64
			err := rt.ParallelForRange(hi-lo, func(l, h int) {
				var c uint64
				for i := l; i < h; i++ {
					if accept(int64(lo + i)) {
						c++
					}
				}
				mu.Lock()
				count += c
				mu.Unlock()
			})
			if err != nil {
				return nil, err
			}
			return binary.LittleEndian.AppendUint64(nil, count), nil
		},
		FoldFn: func(acc, part []byte) ([]byte, error) {
			if len(part) != 8 {
				return nil, fmt.Errorf("bad partial (%d bytes)", len(part))
			}
			if acc == nil {
				acc = make([]byte, 8)
			}
			binary.LittleEndian.PutUint64(acc,
				binary.LittleEndian.Uint64(acc)+binary.LittleEndian.Uint64(part))
			return acc, nil
		},
	}
}

func seqCount(n int) uint64 {
	var c uint64
	for i := 0; i < n; i++ {
		if accept(int64(i)) {
			c++
		}
	}
	return c
}

// run executes the demo: one clean region, then one region with domain 0
// killed mid-flight. It returns an error on any mismatch.
func run(n, domains int, chunkDelay time.Duration, out *log.Logger) error {
	reg := openmpmca.NewOffloadRegistry()
	if err := reg.Register(epKernel(chunkDelay)); err != nil {
		return err
	}
	rec := trace.NewRecorder(8192)
	o, err := openmpmca.NewOffload(reg,
		openmpmca.WithOffloadDomains(domains),
		openmpmca.WithOffloadEventSink(rec),
	)
	if err != nil {
		return err
	}
	defer o.Close()

	out.Printf("%s", o.Render())
	want := seqCount(n)

	// Pass 1: all domains healthy.
	start := time.Now()
	res, err := o.ParallelFor("ep-count", n, nil)
	if err != nil {
		return fmt.Errorf("clean region: %w", err)
	}
	got := binary.LittleEndian.Uint64(res)
	st := o.Stats()
	out.Printf("clean region:    count=%d (%v)  remote=%d local=%d resends=%d",
		got, time.Since(start).Round(time.Millisecond), st.RemoteChunks, st.LocalChunks, st.Resends)
	if got != want {
		return fmt.Errorf("clean region count = %d, want %d", got, want)
	}

	// Pass 2: crash a domain once offload traffic is flowing; the host
	// must detect the loss via heartbeats and re-execute its chunks.
	base := st.RemoteChunks
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if o.Stats().RemoteChunks > base {
				_ = o.KillDomain(0)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	start = time.Now()
	res, err = o.ParallelFor("ep-count", n, nil)
	if !errors.Is(err, openmpmca.ErrDomainLost) {
		return fmt.Errorf("faulted region error = %v, want ErrDomainLost", err)
	}
	got = binary.LittleEndian.Uint64(res)
	st = o.Stats()
	out.Printf("faulted region:  count=%d (%v)  remote=%d local=%d resends=%d lost=%d",
		got, time.Since(start).Round(time.Millisecond),
		st.RemoteChunks, st.LocalChunks, st.Resends, st.DomainsLost)
	out.Printf("                 (%v)", err)
	if got != want {
		return fmt.Errorf("faulted region count = %d, want %d", got, want)
	}
	if st.DomainsLost != 1 {
		return fmt.Errorf("DomainsLost = %d, want 1", st.DomainsLost)
	}
	sum := rec.Summary()
	out.Printf("trace:           %d offload sends, %d offload recvs, %d heartbeats",
		sum.OffloadSends, sum.OffloadRecvs, st.Heartbeats)
	return nil
}

func main() {
	n := flag.Int("n", 400_000, "iterations per region")
	domains := flag.Int("domains", 3, "worker domains")
	delay := flag.Duration("chunk-delay", 2*time.Millisecond, "artificial per-chunk latency")
	flag.Parse()

	out := log.New(os.Stdout, "", 0)
	if err := run(*n, *domains, *delay, out); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		os.Exit(1)
	}
	out.Printf("PASS: parallel-for split across %d MCAPI domains; domain loss tolerated", *domains)
}
