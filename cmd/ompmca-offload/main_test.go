package main

import (
	"io"
	"log"
	"testing"
	"time"
)

// TestRunSmoke drives the full demo — clean region plus the
// fault-injected one — at a reduced size.
func TestRunSmoke(t *testing.T) {
	if err := run(60_000, 3, time.Millisecond, log.New(io.Discard, "", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestSeqCountDeterministic(t *testing.T) {
	if a, b := seqCount(10_000), seqCount(10_000); a != b || a == 0 {
		t.Fatalf("seqCount unstable or degenerate: %d vs %d", a, b)
	}
}
