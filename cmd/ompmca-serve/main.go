// Command ompmca-serve boots the multi-tenant job service: a simulated
// T4240RDB board partitioned into a host plus worker domains, an MTAPI
// task fabric and an MCAPI offload cluster over it, and the HTTP/JSON
// front end of internal/jobservice on top — turning the one-shot demo
// binaries into a persistent daemon tenants share.
//
//	ompmca-serve -addr :8080 -domains 3 -offload-domains 2
//	ompmca-serve -state-dir /var/lib/ompmca        # survive restarts
//	ompmca-serve -tls-cert c.pem -tls-key k.pem    # serve HTTPS
//	ompmca-serve -tenants-file /etc/ompmca/tenants # keys from a 0600 file
//
// With -state-dir the service journals every job-state transition to a
// write-ahead log and replays it at startup: a crash or restart loses
// nothing — settled jobs keep their byte-exact results, unsettled jobs
// re-execute.
//
// With no -tenant flags (and no -tenants-file) the demo tenants are
// installed (alice: admin, high priority; bob: normal; carol: low) and
// printed at startup. The built-in demo jobs (sum, fib, echo, spin) and
// the vecsum parallel-for kernel are always registered:
//
//	curl -s -H 'X-API-Key: key-bob' -d '{"job":"fib","arg":"AAAAAAAAACg="}' \
//	    localhost:8080/v1/jobs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openmpmca"
	"openmpmca/internal/jobservice"
)

// tenantFlags collects repeated -tenant specs.
type tenantFlags []openmpmca.Tenant

func (f *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*f)) }

func (f *tenantFlags) Set(spec string) error {
	t, err := jobservice.ParseTenant(spec)
	if err != nil {
		return err
	}
	*f = append(*f, t)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-serve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		domains    = flag.Int("domains", 3, "fabric worker domains")
		offDomains = flag.Int("offload-domains", 2, "offload worker domains (0 disables parallel_for jobs)")
		heartbeat  = flag.Duration("heartbeat", 25*time.Millisecond, "domain health ping period")
		dispatch   = flag.Int("dispatch", 64, "dispatch window: jobs inside the fabric/offloader at once")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		spanCap    = flag.Int("spans", 0, "span ring capacity for GET /v1/spans (0: default bound)")
		stateDir   = flag.String("state-dir", "", "durable job store directory: journal + snapshots, replayed at startup (empty: in-memory only)")
		tlsCert    = flag.String("tls-cert", "", "TLS certificate file (serve HTTPS; requires -tls-key)")
		tlsKey     = flag.String("tls-key", "", "TLS private key file (requires -tls-cert)")
		tenantsF   = flag.String("tenants-file", "", "tenants file, one name:key:quota:priority[:admin][:rate=R/B] per line (mode 0600)")
		tenants    tenantFlags
	)
	flag.Var(&tenants, "tenant", "tenant spec name:key:quota:priority[:admin][:rate=R/B] (repeatable; default: demo tenants)")
	flag.Parse()

	if (*tlsCert == "") != (*tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key must be given together")
	}
	if *tenantsF != "" {
		fromFile, err := openmpmca.LoadTenantsFile(*tenantsF)
		if err != nil {
			return err
		}
		log.Printf("loaded %d tenant(s) from %s", len(fromFile), *tenantsF)
		tenants = append(tenants, fromFile...)
	}
	if len(tenants) == 0 {
		tenants = jobservice.DemoTenants()
		log.Print("no -tenant flags: installing demo tenants")
		for _, t := range tenants {
			role := ""
			if t.Admin {
				role = " admin"
			}
			log.Printf("  %-6s key=%s quota=%d priority=%s%s", t.Name, t.Key, t.Quota, t.Priority, role)
		}
	}

	jobs := openmpmca.NewJobRegistry()
	if err := jobservice.RegisterBuiltinJobs(jobs); err != nil {
		return err
	}
	sp := openmpmca.NewSpanExporter(*spanCap)
	// The progress hub sits between the fabric and the span exporter:
	// it attributes task events to jobs for the per-job event streams
	// and tees everything through to the exporter.
	hub := openmpmca.NewServiceProgressHub(sp)
	fab, err := openmpmca.NewTaskFabric(jobs,
		openmpmca.WithFabricDomains(*domains),
		openmpmca.WithFabricHeartbeat(*heartbeat),
		openmpmca.WithFabricEventSink(hub),
	)
	if err != nil {
		return err
	}
	defer fab.Close()

	opts := []openmpmca.JobServiceOption{
		openmpmca.WithServiceTenants(tenants...),
		openmpmca.WithServiceDispatchWindow(*dispatch),
		openmpmca.WithServiceRetryAfter(*retryAfter),
		openmpmca.WithServiceSpans(sp),
		openmpmca.WithServiceProgress(hub),
	}
	if *stateDir != "" {
		log.Printf("durable job store in %s", *stateDir)
		opts = append(opts, openmpmca.WithServiceStateDir(*stateDir))
	}
	if *offDomains > 0 {
		kernels := openmpmca.NewOffloadRegistry()
		if err := jobservice.RegisterBuiltinKernels(kernels); err != nil {
			return err
		}
		off, err := openmpmca.NewOffload(kernels,
			openmpmca.WithOffloadDomains(*offDomains),
			openmpmca.WithOffloadHeartbeat(*heartbeat),
			openmpmca.WithOffloadEventSink(sp),
		)
		if err != nil {
			return err
		}
		defer off.Close()
		opts = append(opts, openmpmca.WithServiceOffloader(off, kernels))
	}

	svc, err := openmpmca.NewJobService(fab, jobs, opts...)
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: svc}
	errCh := make(chan error, 1)
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
		go func() { errCh <- hs.ServeTLS(ln, *tlsCert, *tlsKey) }()
	} else {
		go func() { errCh <- hs.Serve(ln) }()
	}

	// The readiness line CI and scripts wait for; keep its shape stable.
	fmt.Printf("ompmca-serve: listening on %s://%s (%d fabric domains, %d offload domains)\n",
		scheme, ln.Addr(), *domains, *offDomains)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Print("shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			return err
		}
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
