// Command ompmca-taskgraph demonstrates the MTAPI task fabric on an
// irregular graph: a Fibonacci tree decomposition whose tasks are
// expanded dynamically by the host — each completed split submits its
// children — and executed across worker domains, each its own hypervisor
// partition running an MCA-backed OpenMP runtime under a local MTAPI
// scheduler, with all coordination riding MCAPI packet channels. A
// fault-injection pass kills one domain mid-graph and shows the graph
// still completing with the exact sequential result.
//
// The demo scales to the board's full width (-domains 8 on the default
// T4240RDB) and exercises the peer-to-peer steal mesh: with -peer-steal
// (default) idle domains steal queued tasks directly from loaded peers,
// and -require-peer-steals pins each domain to one MTAPI worker, blocks
// most of them, and fails unless at least one direct mesh steal
// happened — the configuration CI's mesh-smoke job asserts.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"openmpmca"
	"openmpmca/internal/trace"
)

// waitForever is the fabric's infinite-wait timeout (mtapi contract:
// negative forever, zero polls once, positive bounded).
const waitForever time.Duration = -1

// fibIter computes fib(n) mod 2^64 — the exact value every distribution
// of the task tree must reproduce.
func fibIter(n uint32) uint64 {
	var a, b uint64 = 0, 1
	for i := uint32(0); i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// Task argument: n u32 | cutoff u32. Result: tag 0 | value u64 (leaf) or
// tag 1 | left u32 | right u32 (split: the children to submit).
func fibArg(n, cutoff uint32) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, n)
	return binary.LittleEndian.AppendUint32(buf, cutoff)
}

// fibJob is the one job in the graph. Below the cutoff it computes the
// leaf value on the executing domain's OpenMP runtime (burn work scales
// with n, so task durations are genuinely irregular); above it, it asks
// the host to split.
func fibJob(leafDelay time.Duration) openmpmca.FabricFuncJob {
	return openmpmca.FabricFuncJob{
		JobName: "fib",
		Fn: func(rt *openmpmca.Runtime, arg []byte) ([]byte, error) {
			if len(arg) != 8 {
				return nil, fmt.Errorf("bad arg (%d bytes)", len(arg))
			}
			n := binary.LittleEndian.Uint32(arg)
			cutoff := binary.LittleEndian.Uint32(arg[4:])
			if n > cutoff {
				res := []byte{1}
				res = binary.LittleEndian.AppendUint32(res, n-1)
				return binary.LittleEndian.AppendUint32(res, n-2), nil
			}
			if leafDelay > 0 {
				time.Sleep(leafDelay)
			}
			var mu sync.Mutex
			var burn uint64
			err := rt.ParallelForRange(int(n+1)*512, func(lo, hi int) {
				var c uint64
				for i := lo; i < hi; i++ {
					c += uint64(i)&7 + 1
				}
				mu.Lock()
				burn += c
				mu.Unlock()
			})
			if err != nil {
				return nil, err
			}
			_ = burn
			return binary.LittleEndian.AppendUint64([]byte{0}, fibIter(n)), nil
		},
	}
}

// expand drives one graph to completion: submit the root, then submit
// children as splits complete, summing leaf values — which telescopes to
// exactly fib(root). Returns the sum and whether any task survived a
// domain loss.
func expand(g *openmpmca.FabricGroup, root, cutoff uint32) (uint64, bool, error) {
	if _, err := g.SubmitJob("fib", fibArg(root, cutoff)); err != nil {
		return 0, false, err
	}
	var total uint64
	var recovered bool
	for {
		h, err := g.WaitAny(waitForever)
		if err == openmpmca.ErrGroupDrained {
			return total, recovered, nil
		}
		if err != nil {
			return 0, recovered, err
		}
		res, err := h.Wait(0)
		if err != nil {
			if !errors.Is(err, openmpmca.ErrDomainLost) {
				return 0, recovered, fmt.Errorf("task %d: %w", h.ID(), err)
			}
			recovered = true // re-executed after a crash; result is valid
		}
		if len(res) == 0 {
			return 0, recovered, fmt.Errorf("task %d: empty result", h.ID())
		}
		switch res[0] {
		case 0:
			if len(res) != 9 {
				return 0, recovered, fmt.Errorf("task %d: bad leaf (%d bytes)", h.ID(), len(res))
			}
			total += binary.LittleEndian.Uint64(res[1:])
		case 1:
			if len(res) != 9 {
				return 0, recovered, fmt.Errorf("task %d: bad split (%d bytes)", h.ID(), len(res))
			}
			left := binary.LittleEndian.Uint32(res[1:])
			right := binary.LittleEndian.Uint32(res[5:])
			if _, err := g.SubmitJob("fib", fibArg(left, cutoff)); err != nil {
				return 0, recovered, err
			}
			if _, err := g.SubmitJob("fib", fibArg(right, cutoff)); err != nil {
				return 0, recovered, err
			}
		default:
			return 0, recovered, fmt.Errorf("task %d: unknown result tag %d", h.ID(), res[0])
		}
	}
}

// blockJob sleeps the duration encoded in its argument — the steal
// setup: long blockers pin serial domains so queues back up behind them
// and idle peers must steal.
var blockJob = openmpmca.FabricFuncJob{
	JobName: "block",
	Fn: func(rt *openmpmca.Runtime, arg []byte) ([]byte, error) {
		if len(arg) != 8 {
			return nil, fmt.Errorf("bad arg (%d bytes)", len(arg))
		}
		time.Sleep(time.Duration(binary.LittleEndian.Uint64(arg)))
		return arg, nil
	},
}

// run executes the demo: one clean graph, then one with domain 0 killed
// mid-expansion. It returns an error on any mismatch. With requirePeer,
// domains are serialized and blocked so the mesh must carry steals, and
// a run without any direct peer steal fails.
func run(n, cutoff uint32, domains int, leafDelay time.Duration,
	peerSteal, requirePeer bool, out *log.Logger) error {
	reg := openmpmca.NewJobRegistry()
	if err := reg.Register(fibJob(leafDelay)); err != nil {
		return err
	}
	if err := reg.Register(blockJob); err != nil {
		return err
	}
	rec := trace.NewRecorder(16384)
	opts := []openmpmca.TaskFabricOption{
		openmpmca.WithFabricDomains(domains),
		openmpmca.WithFabricHeartbeat(10 * time.Millisecond),
		openmpmca.WithFabricEventSink(rec),
		openmpmca.WithFabricPeerStealing(peerSteal),
	}
	if requirePeer {
		// One MTAPI worker per domain and a generous deadline: queues
		// back up behind blockers instead of draining in parallel, and
		// re-dispatch cannot masquerade as stealing.
		opts = append(opts,
			openmpmca.WithFabricDomainWorkers(1),
			openmpmca.WithFabricTaskDeadline(10*time.Second),
			openmpmca.WithFabricInflight(16),
		)
	}
	fab, err := openmpmca.NewTaskFabric(reg, opts...)
	if err != nil {
		return err
	}
	defer fab.Close()

	// The imbalance for requirePeer: most domains busy with one long
	// blocker each, so the rest must steal the graph's tasks over the
	// mesh. The blockers settle in the background.
	var blockers *openmpmca.FabricGroup
	if requirePeer {
		blockers = fab.NewGroup()
		arg := binary.LittleEndian.AppendUint64(nil, uint64(300*time.Millisecond))
		for i := 0; i < domains-1; i++ {
			if _, err := blockers.SubmitJob("block", arg); err != nil {
				return err
			}
		}
	}

	out.Printf("%s", fab.Render())
	want := fibIter(n)

	// Pass 1: all domains healthy.
	start := time.Now()
	got, _, err := expand(fab.NewGroup(), n, cutoff)
	if err != nil {
		return fmt.Errorf("clean graph: %w", err)
	}
	st := fab.Stats()
	out.Printf("clean graph:     fib(%d)=%d (%v)  tasks=%d remote=%d local=%d steals=%d peer=%d",
		n, got, time.Since(start).Round(time.Millisecond),
		st.Submitted, st.RemoteTasks, st.LocalTasks, st.Steals, st.PeerSteals)
	if got != want {
		return fmt.Errorf("clean graph fib(%d) = %d, want %d", n, got, want)
	}

	// Pass 2: crash a domain once tasks are flowing; the host must
	// detect the loss via heartbeats and re-execute its tasks locally.
	base := st.RemoteTasks
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if fab.Stats().RemoteTasks > base+2 {
				_ = fab.KillDomain(0)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	start = time.Now()
	got, recovered, err := expand(fab.NewGroup(), n, cutoff)
	if err != nil {
		return fmt.Errorf("faulted graph: %w", err)
	}
	st = fab.Stats()
	out.Printf("faulted graph:   fib(%d)=%d (%v)  remote=%d local=%d resends=%d lost=%d steals=%d peer=%d",
		n, got, time.Since(start).Round(time.Millisecond),
		st.RemoteTasks, st.LocalTasks, st.Resends, st.DomainsLost, st.Steals, st.PeerSteals)
	if got != want {
		return fmt.Errorf("faulted graph fib(%d) = %d, want %d", n, got, want)
	}
	if st.DomainsLost != 1 {
		return fmt.Errorf("DomainsLost = %d, want 1", st.DomainsLost)
	}
	if !recovered {
		return fmt.Errorf("no task was recovered despite the domain loss")
	}
	if blockers != nil {
		if err := blockers.WaitAll(30 * time.Second); err != nil && !errors.Is(err, openmpmca.ErrDomainLost) {
			return fmt.Errorf("blockers: %w", err)
		}
	}
	st = fab.Stats()
	sum := rec.Summary()
	out.Printf("trace:           %d task sends, %d task recvs, %d steals (%d peer), %d heartbeats",
		sum.TaskSends, sum.TaskRecvs, sum.TaskSteals, sum.PeerSteals, st.Heartbeats)
	out.Printf("mesh:            peer-steals=%d brokered-fallbacks=%d rmem-bytes=%d",
		st.PeerSteals, st.BrokeredFallbacks, st.RmemBytesMoved)
	if requirePeer && st.PeerSteals == 0 {
		return fmt.Errorf("PeerSteals = 0 under -require-peer-steals: the mesh never carried a direct steal (Steals = %d)", st.Steals)
	}
	if !peerSteal && st.PeerSteals != 0 {
		return fmt.Errorf("PeerSteals = %d with -peer-steal=false, want 0", st.PeerSteals)
	}
	return nil
}

func main() {
	n := flag.Uint("n", 30, "fibonacci index to decompose")
	cutoff := flag.Uint("cutoff", 22, "sequential leaf cutoff")
	domains := flag.Int("domains", 3, "worker domains")
	leafDelay := flag.Duration("leaf-delay", 2*time.Millisecond, "artificial per-leaf latency")
	peerSteal := flag.Bool("peer-steal", true, "steal directly over the peer mesh (false: host-brokered only)")
	requirePeer := flag.Bool("require-peer-steals", false, "serialize domains, add blockers, and fail unless a direct peer steal happened")
	flag.Parse()
	if *cutoff >= *n {
		fmt.Fprintln(os.Stderr, "FAIL: cutoff must be below n")
		os.Exit(1)
	}
	if *requirePeer && !*peerSteal {
		fmt.Fprintln(os.Stderr, "FAIL: -require-peer-steals needs -peer-steal")
		os.Exit(1)
	}
	if *requirePeer && *domains < 2 {
		fmt.Fprintln(os.Stderr, "FAIL: -require-peer-steals needs at least 2 domains")
		os.Exit(1)
	}

	out := log.New(os.Stdout, "", 0)
	if err := run(uint32(*n), uint32(*cutoff), *domains, *leafDelay, *peerSteal, *requirePeer, out); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		os.Exit(1)
	}
	out.Printf("PASS: irregular task graph across %d MCAPI domains; domain loss tolerated", *domains)
}
