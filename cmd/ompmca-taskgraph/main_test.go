package main

import (
	"io"
	"log"
	"testing"
	"time"
)

// TestRunSmoke drives the full demo — clean graph plus the
// fault-injected one — at a reduced size.
func TestRunSmoke(t *testing.T) {
	if err := run(24, 16, 3, 500*time.Microsecond, true, false, log.New(io.Discard, "", 0)); err != nil {
		t.Fatal(err)
	}
}

// TestRunRequirePeerSteals is the mesh-smoke configuration: serial
// domains, blocker imbalance, and a hard failure unless at least one
// steal rode a direct peer link.
func TestRunRequirePeerSteals(t *testing.T) {
	if testing.Short() {
		t.Skip("blocker-paced demo run")
	}
	if err := run(24, 16, 3, 500*time.Microsecond, true, true, log.New(io.Discard, "", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestFibIter(t *testing.T) {
	want := map[uint32]uint64{0: 0, 1: 1, 2: 1, 10: 55, 30: 832040}
	for n, v := range want {
		if got := fibIter(n); got != v {
			t.Errorf("fibIter(%d) = %d, want %d", n, got, v)
		}
	}
}
