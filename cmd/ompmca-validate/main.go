// Command ompmca-validate runs the OpenMP validation suite (paper §6A)
// against the native and/or MCA-backed runtime, and executes the paper's
// broken-MRAPI-mutex regression: the fault that made the critical
// construct fail must be caught by the suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
	"openmpmca/internal/validation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompmca-validate: ")
	var (
		layerFlag = flag.String("layer", "both", "runtime under test: native, mca or both")
		reps      = flag.Int("reps", 3, "repetitions per test")
		threads   = flag.Int("threads", 8, "team size")
	)
	flag.Parse()

	boardModel := platform.T4240RDB()
	failures := 0

	runSuite := func(name string, mk func() (*core.Runtime, error)) {
		fmt.Printf("=== validation suite on %s layer (%d reps, %d threads) ===\n", name, *reps, *threads)
		outcomes, err := validation.RunAll(mk, *reps)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range outcomes {
			status := "PASS"
			if !o.Passed() {
				status = "FAIL"
				failures++
			}
			fmt.Printf("  %-22s %s  (%d/%d runs ok, crosscheck %v)", o.Name, status, o.Runs-o.Failures, o.Runs, o.CrossOK)
			if o.Detail != "" {
				fmt.Printf("  [%s]", o.Detail)
			}
			fmt.Println()
		}
	}

	layer := strings.ToLower(*layerFlag)
	if layer == "native" || layer == "both" {
		runSuite("native", func() (*core.Runtime, error) {
			return core.New(core.WithLayer(core.NewNativeLayer(boardModel.HWThreads())), core.WithNumThreads(*threads))
		})
	}
	if layer == "mca" || layer == "both" {
		runSuite("mca", func() (*core.Runtime, error) {
			l, err := core.NewMCALayer(boardModel.NewSystem())
			if err != nil {
				return nil, err
			}
			return core.New(core.WithLayer(l), core.WithNumThreads(*threads))
		})
	}

	fmt.Println("=== §6A regression: non-functional MRAPI mutex must be detected ===")
	if err := validation.BrokenMutexRegression(boardModel); err != nil {
		fmt.Printf("  FAIL: %v\n", err)
		failures++
	} else {
		fmt.Println("  PASS: injected mutex fault detected by the critical check; fixed layer passes")
	}

	if failures > 0 {
		fmt.Printf("\n%d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall validation checks passed")
}
