// Package openmpmca is a from-scratch Go reproduction of "OpenMP-MCA:
// Leveraging Multiprocessor Embedded Systems using industry standards"
// (Sun, Chandrasekaran, Chapman — IPDPSW 2015): an OpenMP-style fork/join
// runtime whose thread, memory and synchronization services are routed
// through a full implementation of the Multicore Association APIs (MRAPI,
// MCAPI, MTAPI), evaluated on a modeled Freescale T4240RDB board.
//
// The root package is the public API. Create a runtime with New, fork
// parallel regions with Runtime.Parallel / Runtime.ParallelFor (or their
// context-taking Ctx variants), and release it with Runtime.Close:
//
//	rt, err := openmpmca.New(openmpmca.WithNumThreads(8))
//	if err != nil { ... }
//	defer rt.Close()
//
//	err = rt.ParallelFor(len(xs), func(i int) { xs[i] *= 2 })
//
// The implementation lives under internal/ and the runnable demos under
// examples/ and cmd/; bench_test.go regenerates the paper's Table I and
// Figure 4. See README.md for the map.
//
// # Concurrency contract
//
// A Runtime is a multi-tenant service: any number of goroutines may fork
// overlapping parallel regions against one instance. Each region leases a
// warm team from a per-size cache (visible as LeaseHits/LeaseMisses in
// Stats) and acquires an exclusive set of pool workers, so regions never
// share mutable coordination state. WithMaxConcurrentRegions bounds the
// number of in-flight regions: beyond the cap and its equally sized
// admission queue, forks fail fast with ErrSaturated.
//
// # Cancellation
//
// ParallelCtx, ParallelNCtx and ParallelForCtx thread a context.Context
// through the region. When the context is canceled or times out, every
// thread in the team unwinds at its next cancellation point — loop chunk
// dispatch, task scheduling, barrier waits — and the fork returns an
// error matching both errors.Is(err, ErrCanceled) and errors.Is(err,
// ctx.Err()). Cancellation is cooperative: a body call already in
// progress runs to completion first, exactly like #pragma omp cancel.
//
// # Panic containment
//
// A panic in a region body (or in an explicit task) does not crash the
// process: the panicking thread records the panic, the team is canceled,
// its peers unwind, and the fork returns a *RegionPanicError carrying the
// first panic value and stack (errors.As to retrieve it). The team's
// coordination structures are rebuilt before reuse, so the Runtime
// remains fully usable afterwards.
//
// # Migrating from internal/core
//
// Code inside this module that imported openmpmca/internal/core can move
// to the root package by switching the import: every root type is an
// alias of its core counterpart (openmpmca.Runtime == core.Runtime), so
// the two surfaces interoperate value-for-value; only the option and
// constructor call sites change package qualifier.
package openmpmca
