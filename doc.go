// Package openmpmca is a from-scratch Go reproduction of "OpenMP-MCA:
// Leveraging Multiprocessor Embedded Systems using industry standards"
// (Sun, Chandrasekaran, Chapman — IPDPSW 2015): an OpenMP-style fork/join
// runtime whose thread, memory and synchronization services are routed
// through a full implementation of the Multicore Association APIs (MRAPI,
// MCAPI, MTAPI), evaluated on a modeled Freescale T4240RDB board.
//
// The root package carries only the module documentation and the
// benchmark harness (bench_test.go) that regenerates the paper's Table I
// and Figure 4; the implementation lives under internal/ and the runnable
// demos under examples/ and cmd/. See README.md for the map.
package openmpmca
