// Imagefilter parallelizes an embedded image-processing pipeline — the
// workload class the paper's motivation cites (ultrasound image processing
// on multicore embedded systems, ref [33]): a synthetic B-mode-style frame
// is denoised with a 5×5 Gaussian blur and edges are extracted with a
// Sobel operator, both workshared over the MCA-backed runtime, with a
// sequential re-computation verifying the parallel result.
package main

import (
	"fmt"
	"log"
	"math"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

const (
	width  = 640
	height = 480
)

type image []float64 // row-major width×height

func (im image) at(x, y int) float64 { return im[y*width+x] }

// synthFrame builds a deterministic speckled test frame with a few bright
// reflectors, loosely shaped like an ultrasound B-scan.
func synthFrame() image {
	im := make(image, width*height)
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>33) / float64(1<<31)
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := 0.2 * next() // speckle
			for _, r := range [][3]float64{{160, 120, 40}, {400, 300, 60}, {520, 100, 25}} {
				dx, dy := float64(x)-r[0], float64(y)-r[1]
				if d := math.Hypot(dx, dy); d < r[2] {
					v += 0.8 * (1 - d/r[2])
				}
			}
			im[y*width+x] = v
		}
	}
	return im
}

// gauss5 is a separable 5-tap Gaussian kernel.
var gauss5 = [5]float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}

// blurRows convolves horizontally, rows workshared.
func blurRows(c *core.Context, src, dst image) {
	c.ForRange(height, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < width; x++ {
				acc := 0.0
				for k := -2; k <= 2; k++ {
					xx := clamp(x+k, 0, width-1)
					acc += gauss5[k+2] * src.at(xx, y)
				}
				dst[y*width+x] = acc
			}
		}
	})
}

// blurCols convolves vertically.
func blurCols(c *core.Context, src, dst image) {
	c.ForRange(height, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < width; x++ {
				acc := 0.0
				for k := -2; k <= 2; k++ {
					yy := clamp(y+k, 0, height-1)
					acc += gauss5[k+2] * src.at(x, yy)
				}
				dst[y*width+x] = acc
			}
		}
	})
}

// sobel extracts gradient magnitude; interior rows workshared dynamically
// (the guard rows make the work slightly irregular).
func sobel(c *core.Context, src, dst image) {
	c.ForRange(height, core.LoopOpts{Schedule: core.ScheduleDynamic, Chunk: 16}, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			if y == 0 || y == height-1 {
				continue
			}
			for x := 1; x < width-1; x++ {
				gx := -src.at(x-1, y-1) - 2*src.at(x-1, y) - src.at(x-1, y+1) +
					src.at(x+1, y-1) + 2*src.at(x+1, y) + src.at(x+1, y+1)
				gy := -src.at(x-1, y-1) - 2*src.at(x, y-1) - src.at(x+1, y-1) +
					src.at(x-1, y+1) + 2*src.at(x, y+1) + src.at(x+1, y+1)
				dst[y*width+x] = math.Hypot(gx, gy)
			}
		}
	})
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// pipeline runs blur+sobel through the runtime and returns the edge
// energy (sum of gradient magnitudes), the frame checksum used for
// verification.
func pipeline(rt *core.Runtime, frame image) (float64, error) {
	tmp := make(image, len(frame))
	blurred := make(image, len(frame))
	edges := make(image, len(frame))
	var energy float64
	err := rt.Parallel(func(c *core.Context) {
		blurRows(c, frame, tmp)
		blurCols(c, tmp, blurred)
		sobel(c, blurred, edges)
		total := core.Reduce(c, len(edges), 0.0,
			func(a, b float64) float64 { return a + b },
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += edges[i]
				}
				return s
			})
		c.Master(func() { energy = total })
	})
	return energy, err
}

func main() {
	log.SetFlags(0)
	frame := synthFrame()

	board := platform.T4240RDB()
	layer, err := core.NewMCALayer(board.NewSystem())
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New(core.WithLayer(layer), core.WithNumThreads(8))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	parallel, err := pipeline(rt, frame)
	if err != nil {
		log.Fatal(err)
	}

	// Sequential verification on a one-thread team.
	seq, err := core.New(core.WithLayer(core.NewNativeLayer(1)), core.WithNumThreads(1))
	if err != nil {
		log.Fatal(err)
	}
	defer seq.Close()
	reference, err := pipeline(seq, frame)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("frame: %dx%d, 8 MCA worker threads on modeled %s\n", width, height, board.Name)
	fmt.Printf("edge energy: parallel %.6f  sequential %.6f\n", parallel, reference)
	if math.Abs(parallel-reference) > 1e-6*math.Abs(reference) {
		log.Fatal("VERIFICATION FAILED: parallel and sequential pipelines disagree")
	}
	fmt.Println("verification: PASS (parallel result matches sequential reference)")
}
