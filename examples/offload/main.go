// Offload reproduces the heterogeneous scenario of the authors' companion
// work (paper ref [3], "Targeting heterogeneous SoCs using MCAPI") on the
// simulated platform: a host partition running the MCA-backed OpenMP
// runtime offloads FIR filtering to a bare-metal "accelerator" node.
//
// The host DMA-writes each input block into MRAPI remote memory with an
// asynchronous request, rings a doorbell over an MCAPI message, and the
// accelerator — which shares no Go memory with the host loop, only the
// MRAPI/MCAPI substrates — filters the block and rings back. The host
// overlaps its own OpenMP post-processing with the accelerator's work and
// verifies the offloaded results against a local computation.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/mrapi"
	"openmpmca/internal/platform"
)

const (
	blockFloats = 512
	blockBytes  = blockFloats * 8
	numBlocks   = 24

	rmemIn  mrapi.Key = 1
	rmemOut mrapi.Key = 2

	hostDoor  mcapi.Port = 1
	accelDoor mcapi.Port = 2
)

// fir is the 4-tap filter both sides implement.
var firTaps = [4]float64{0.1, 0.25, 0.4, 0.25}

func firFilter(in, out []float64) {
	for i := range in {
		acc := 0.0
		for t, w := range firTaps {
			if j := i - t; j >= 0 {
				acc += w * in[j]
			}
		}
		out[i] = acc
	}
}

func putFloats(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

func getFloats(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// accelerator is the bare-metal node's firmware loop: wait for a doorbell
// naming a block, filter it in remote memory, ring back.
func accelerator(node *mrapi.Node, in, out *mrapi.Rmem, door *mcapi.Endpoint, hostBell *mcapi.Endpoint) {
	inBuf := make([]byte, blockBytes)
	inF := make([]float64, blockFloats)
	outF := make([]float64, blockFloats)
	outBuf := make([]byte, blockBytes)
	for {
		msg, _, err := mcapi.MsgRecv(door, mcapi.TimeoutInfinite)
		if err != nil {
			log.Fatalf("accelerator doorbell: %v", err)
		}
		block := int(binary.LittleEndian.Uint32(msg))
		if block == 0xFFFF {
			return // shutdown
		}
		off := block * blockBytes
		if err := in.Read(node, off, inBuf); err != nil {
			log.Fatalf("accelerator rmem read: %v", err)
		}
		getFloats(inF, inBuf)
		firFilter(inF, outF)
		putFloats(outBuf, outF)
		if err := out.Write(node, off, outBuf); err != nil {
			log.Fatalf("accelerator rmem write: %v", err)
		}
		if err := mcapi.MsgSend(hostBell, msg, 0, mcapi.TimeoutInfinite); err != nil {
			log.Fatalf("accelerator ring-back: %v", err)
		}
	}
}

func main() {
	log.SetFlags(0)

	// Partition the board: the host gets cluster 0, the accelerator-side
	// control core sits apart — Figure 2's partitioning in action.
	board := platform.T4240RDB()
	hv, err := platform.NewHypervisor(board)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hv.CreatePartition("host", platform.GuestLinux, []int{0, 1, 2, 3, 4, 5, 6, 7}, 2048); err != nil {
		log.Fatal(err)
	}
	if _, err := hv.CreatePartition("accel", platform.GuestBareMetal, []int{8, 9}, 256); err != nil {
		log.Fatal(err)
	}
	hostSys, err := hv.PartitionSystem("host")
	if err != nil {
		log.Fatal(err)
	}

	// MRAPI: the host's MCA-backed OpenMP runtime binds to its partition.
	layer, err := core.NewMCALayer(hostSys)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New(core.WithLayer(layer))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	fmt.Printf("host partition: OpenMP team of %d (from partition metadata)\n", rt.NumThreads())

	// Shared substrate between host and accelerator: one MRAPI domain
	// with DMA remote memories, plus MCAPI doorbells.
	sharedSys := mrapi.NewSystem(nil)
	hostNode, err := sharedSys.Initialize(7, 1, &mrapi.NodeAttributes{Name: "host", Affinity: -1})
	if err != nil {
		log.Fatal(err)
	}
	accelNode, err := sharedSys.Initialize(7, 2, &mrapi.NodeAttributes{Name: "accel", Affinity: -1})
	if err != nil {
		log.Fatal(err)
	}
	in, err := hostNode.RmemCreate(rmemIn, numBlocks*blockBytes, &mrapi.RmemAttributes{Access: mrapi.RmemDMA})
	if err != nil {
		log.Fatal(err)
	}
	out, err := hostNode.RmemCreate(rmemOut, numBlocks*blockBytes, &mrapi.RmemAttributes{Access: mrapi.RmemDMA})
	if err != nil {
		log.Fatal(err)
	}
	for _, pair := range []struct {
		r *mrapi.Rmem
		n *mrapi.Node
	}{{in, hostNode}, {in, accelNode}, {out, hostNode}, {out, accelNode}} {
		if err := pair.r.Attach(pair.n); err != nil {
			log.Fatal(err)
		}
	}

	comm := mcapi.NewSystem()
	hostComm, _ := comm.Initialize(7, 1)
	accelComm, _ := comm.Initialize(7, 2)
	hostBell, err := hostComm.CreateEndpoint(hostDoor, nil)
	if err != nil {
		log.Fatal(err)
	}
	accelBell, err := accelComm.CreateEndpoint(accelDoor, nil)
	if err != nil {
		log.Fatal(err)
	}

	go accelerator(accelNode, in, out, accelBell, hostBell)

	// Generate input and DMA it out block by block, asynchronously.
	input := make([]float64, numBlocks*blockFloats)
	for i := range input {
		input[i] = math.Sin(float64(i)/17) + 0.25*math.Cos(float64(i)/3)
	}
	raw := make([]byte, numBlocks*blockBytes)
	putFloats(raw, input)

	doorbell := make([]byte, 4)
	for b := 0; b < numBlocks; b++ {
		req := in.WriteI(hostNode, b*blockBytes, raw[b*blockBytes:(b+1)*blockBytes])
		if err := req.Wait(mrapi.TimeoutInfinite); err != nil {
			log.Fatalf("DMA block %d: %v", b, err)
		}
		binary.LittleEndian.PutUint32(doorbell, uint32(b))
		if err := mcapi.MsgSend(accelBell, doorbell, 0, mcapi.TimeoutInfinite); err != nil {
			log.Fatal(err)
		}
	}
	stats := in.Stats()
	fmt.Printf("host -> accel: %d blocks, %d DMA bursts, %d bytes written\n",
		numBlocks, stats.DMABursts, stats.BytesWritten)

	// While the accelerator filters, the host runs its own OpenMP stage:
	// compute the input's energy in parallel.
	var energy float64
	_ = rt.Parallel(func(c *core.Context) {
		e := core.Reduce(c, len(input), 0.0,
			func(a, b float64) float64 { return a + b },
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += input[i] * input[i]
				}
				return s
			})
		c.Master(func() { energy = e })
	})

	// Collect ring-backs, then read results back over DMA.
	seen := make(map[int]bool)
	for i := 0; i < numBlocks; i++ {
		msg, _, err := mcapi.MsgRecv(hostBell, mcapi.TimeoutInfinite)
		if err != nil {
			log.Fatal(err)
		}
		seen[int(binary.LittleEndian.Uint32(msg))] = true
	}
	binary.LittleEndian.PutUint32(doorbell, 0xFFFF)
	_ = mcapi.MsgSend(accelBell, doorbell, 0, mcapi.TimeoutInfinite)

	result := make([]float64, numBlocks*blockFloats)
	resultRaw := make([]byte, numBlocks*blockBytes)
	rd := out.ReadI(hostNode, 0, resultRaw)
	if err := rd.Wait(mrapi.TimeoutInfinite); err != nil {
		log.Fatal(err)
	}
	getFloats(result, resultRaw)

	// Verify: per-block FIR against a local reference.
	reference := make([]float64, blockFloats)
	maxErr := 0.0
	for b := 0; b < numBlocks; b++ {
		firFilter(input[b*blockFloats:(b+1)*blockFloats], reference)
		for i, want := range reference {
			if d := math.Abs(result[b*blockFloats+i] - want); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("host overlap stage: signal energy = %.4f\n", energy)
	fmt.Printf("accel -> host: %d/%d blocks returned, max abs err = %.2e\n", len(seen), numBlocks, maxErr)
	if len(seen) != numBlocks || maxErr > 1e-12 {
		log.Fatal("VERIFICATION FAILED")
	}
	fmt.Println("verification: PASS (offloaded FIR matches local reference bit-for-bit)")
}
