// Quickstart: the paper's Listing 1 — a parallel-for smoothing loop — run
// through the OpenMP-style runtime twice: once over the native thread
// layer (the libGOMP stand-in) and once over the MCA layer, where worker
// threads are MRAPI nodes, runtime memory comes from MRAPI shared memory
// and critical sections are MRAPI mutexes. Same program, same results;
// only the substrate changes — the paper's portability pitch.
//
// The runtime is driven entirely through the public openmpmca package;
// only the modeled board and the MCA substrate construction come from
// in-module packages.
package main

import (
	"fmt"
	"log"

	"openmpmca"
	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

// sum is the paper's Listing 1: b[i] = (a[i] + a[i-1]) / 2.
func sum(rt *openmpmca.Runtime, a, b []float32) error {
	return rt.ParallelFor(len(a)-1, func(i int) {
		b[i+1] = (a[i+1] + a[i]) / 2.0
	})
}

func main() {
	log.SetFlags(0)
	const n = 1 << 16
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i % 97)
	}

	board := platform.T4240RDB()
	fmt.Printf("board: %s (%d hardware threads)\n\n", board.Name, board.HWThreads())

	for _, layerName := range []string{"native", "mca"} {
		var layer openmpmca.ThreadLayer
		if layerName == "mca" {
			l, err := core.NewMCALayer(board.NewSystem())
			if err != nil {
				log.Fatal(err)
			}
			layer = l
		} else {
			layer = openmpmca.NewNativeLayer(board.HWThreads())
		}
		rt, err := openmpmca.New(openmpmca.WithLayer(layer))
		if err != nil {
			log.Fatal(err)
		}

		b := make([]float32, n)
		if err := sum(rt, a, b); err != nil {
			log.Fatal(err)
		}

		// A reduction for good measure: mean of the smoothed signal.
		var mean float64
		if err := rt.Parallel(func(c *openmpmca.Context) {
			total := openmpmca.Reduce(c, n-1, 0.0,
				func(x, y float64) float64 { return x + y },
				func(lo, hi int) float64 {
					s := 0.0
					for i := lo; i < hi; i++ {
						s += float64(b[i+1])
					}
					return s
				})
			c.Master(func() { mean = total / float64(n-1) })
		}); err != nil {
			log.Fatal(err)
		}

		st := rt.Stats().Snapshot()
		fmt.Printf("[%s] %d threads (from %s), smoothed mean = %.4f\n",
			layerName, rt.NumThreads(), sourceOfThreads(layerName), mean)
		fmt.Printf("[%s] runtime stats: %d regions, %d barriers, %d team-lease hits\n\n",
			layerName, st.Regions, st.Barriers, st.LeaseHits)
		if err := rt.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

func sourceOfThreads(layer string) string {
	if layer == "mca" {
		return "MRAPI metadata resource tree"
	}
	return "host processor count"
}
