// Router builds the workload the T4 family actually ships in — a packet
// pipeline (paper §4A: "routers, switches, gateways") — on top of the
// MCAPI communication substrate: an ingress node distributes frames over
// packet channels to classifier worker nodes, which route them to one of
// two egress nodes; a control endpoint exchanges prioritized
// connectionless messages with every stage. Everything is checked: no
// frame is lost, reordered within a flow, or mis-routed.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"openmpmca/internal/mcapi"
)

const (
	domainID = 1

	ingressNode = 1
	workerBase  = 10
	egressFast  = 20
	egressSlow  = 21

	dataPort = 100
	ctrlPort = 1

	workers = 4
	frames  = 2000
)

// frame layout: [flowID uint32][seq uint32][dscp byte].
func encodeFrame(flow, seq uint32, dscp byte) []byte {
	buf := make([]byte, 9)
	binary.BigEndian.PutUint32(buf[0:], flow)
	binary.BigEndian.PutUint32(buf[4:], seq)
	buf[8] = dscp
	return buf
}

func decodeFrame(b []byte) (flow, seq uint32, dscp byte) {
	return binary.BigEndian.Uint32(b[0:]), binary.BigEndian.Uint32(b[4:]), b[8]
}

func main() {
	log.SetFlags(0)
	sys := mcapi.NewSystem()

	// Topology: ingress -> workers (packet channels) -> egress (messages,
	// so the two egress queues also exercise priorities).
	ingress, err := sys.Initialize(domainID, ingressNode)
	if err != nil {
		log.Fatal(err)
	}
	ingressCtl, err := ingress.CreateEndpoint(ctrlPort, nil)
	if err != nil {
		log.Fatal(err)
	}

	type workerLink struct {
		send *mcapi.PktSendHandle
		recv *mcapi.PktRecvHandle
	}
	links := make([]workerLink, workers)
	workerNodes := make([]*mcapi.Node, workers)
	for w := 0; w < workers; w++ {
		wn, err := sys.Initialize(domainID, workerBase+mcapi.NodeID(w))
		if err != nil {
			log.Fatal(err)
		}
		workerNodes[w] = wn
		out, err := ingress.CreateEndpoint(dataPort+mcapi.Port(w), nil)
		if err != nil {
			log.Fatal(err)
		}
		in, err := wn.CreateEndpoint(dataPort, &mcapi.EndpointAttributes{QueueDepth: 128})
		if err != nil {
			log.Fatal(err)
		}
		if err := mcapi.PktConnect(out, in); err != nil {
			log.Fatal(err)
		}
		s, err := mcapi.PktOpenSend(out)
		if err != nil {
			log.Fatal(err)
		}
		r, err := mcapi.PktOpenRecv(in)
		if err != nil {
			log.Fatal(err)
		}
		links[w] = workerLink{send: s, recv: r}
	}

	fastNode, _ := sys.Initialize(domainID, egressFast)
	slowNode, _ := sys.Initialize(domainID, egressSlow)
	fastEP, err := fastNode.CreateEndpoint(dataPort, &mcapi.EndpointAttributes{QueueDepth: 4096})
	if err != nil {
		log.Fatal(err)
	}
	slowEP, err := slowNode.CreateEndpoint(dataPort, &mcapi.EndpointAttributes{QueueDepth: 4096})
	if err != nil {
		log.Fatal(err)
	}

	// Classifier workers: DSCP >= 32 goes to the fast path with high
	// priority, everything else to the slow path.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				pkt, err := links[w].recv.Recv(mcapi.TimeoutInfinite)
				if err != nil {
					log.Fatalf("worker %d recv: %v", w, err)
				}
				flow, seq, dscp := decodeFrame(pkt)
				if flow == 0 && seq == 0 && dscp == 0xFF {
					return // poison frame: shut down
				}
				if dscp >= 32 {
					err = mcapi.MsgSend(fastEP, pkt, 0, mcapi.TimeoutInfinite)
				} else {
					err = mcapi.MsgSend(slowEP, pkt, 2, mcapi.TimeoutInfinite)
				}
				if err != nil {
					log.Fatalf("worker %d forward: %v", w, err)
				}
			}
		}(w)
	}

	// Egress collectors.
	type collected struct {
		frames map[uint32][]uint32 // flow -> seqs in arrival order
		count  int
	}
	collect := func(ep *mcapi.Endpoint, want int) *collected {
		col := &collected{frames: make(map[uint32][]uint32)}
		for col.count < want {
			pkt, _, err := mcapi.MsgRecv(ep, mcapi.TimeoutInfinite)
			if err != nil {
				log.Fatalf("egress recv: %v", err)
			}
			flow, seq, _ := decodeFrame(pkt)
			col.frames[flow] = append(col.frames[flow], seq)
			col.count++
		}
		return col
	}

	// Ingress: spray frames across workers by flow hash, so one flow
	// always rides one worker — the standard trick that preserves
	// per-flow ordering through a parallel pipeline.
	fastWant, slowWant := 0, 0
	go func() {
		for i := 0; i < frames; i++ {
			flow := uint32(i % 16)
			seq := uint32(i / 16)
			dscp := byte((flow * 4) % 64)
			w := int(flow) % workers
			if err := links[w].send.Send(encodeFrame(flow, seq, dscp), mcapi.TimeoutInfinite); err != nil {
				log.Fatalf("ingress send: %v", err)
			}
		}
		// Control-plane note, then poison the workers.
		_ = mcapi.MsgSend(ingressCtl, []byte("ingress drained"), 0, mcapi.TimeoutInfinite)
		for w := 0; w < workers; w++ {
			_ = links[w].send.Send(encodeFrame(0, 0, 0xFF), mcapi.TimeoutInfinite)
		}
	}()

	for i := 0; i < frames; i++ {
		flow := uint32(i % 16)
		if (flow*4)%64 >= 32 {
			fastWant++
		} else {
			slowWant++
		}
	}
	var fastCol, slowCol *collected
	var cg sync.WaitGroup
	cg.Add(2)
	go func() { defer cg.Done(); fastCol = collect(fastEP, fastWant) }()
	go func() { defer cg.Done(); slowCol = collect(slowEP, slowWant) }()
	cg.Wait()
	wg.Wait()

	if note, _, err := mcapi.MsgRecv(ingressCtl, mcapi.TimeoutImmediate); err == nil {
		fmt.Printf("control message: %q\n", note)
	}

	// Verification: totals and per-flow ordering.
	total := fastCol.count + slowCol.count
	ordered := true
	for _, col := range []*collected{fastCol, slowCol} {
		for flow, seqs := range col.frames {
			for i := 1; i < len(seqs); i++ {
				if seqs[i] != seqs[i-1]+1 {
					ordered = false
					fmt.Printf("flow %d reordered: %d after %d\n", flow, seqs[i], seqs[i-1])
				}
			}
		}
	}
	fmt.Printf("frames: %d sent, %d delivered (%d fast path, %d slow path) across %d classifier nodes\n",
		frames, total, fastCol.count, slowCol.count, workers)
	if total != frames || !ordered {
		log.Fatal("VERIFICATION FAILED")
	}
	fmt.Println("verification: PASS (no loss, per-flow order preserved, DSCP routing correct)")
}
