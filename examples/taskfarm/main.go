// Taskfarm demonstrates the MTAPI task-management substrate the paper
// names as future work (§7): a Mandelbrot frame is tiled into independent
// jobs executed by an MTAPI task group on a bounded worker pool, while an
// ordered MTAPI queue serializes the per-row output assembly — the
// canonical "farm + ordered sink" structure of embedded vision pipelines.
package main

import (
	"fmt"
	"log"
	"time"

	"openmpmca/internal/mtapi"
)

const (
	width, height = 256, 192
	tileRows      = 16
	maxIter       = 96

	jobRenderTile mtapi.JobID = 1
	jobEmitRow    mtapi.JobID = 2
)

type tileArgs struct {
	y0, y1 int
	out    []int32 // shared frame buffer; tiles do not overlap
}

func renderTile(args any) (any, error) {
	a := args.(tileArgs)
	for y := a.y0; y < a.y1; y++ {
		cy := -1.0 + 2.0*float64(y)/float64(height)
		for x := 0; x < width; x++ {
			cx := -2.2 + 3.0*float64(x)/float64(width)
			var zx, zy float64
			var it int32
			for it = 0; it < maxIter; it++ {
				zx, zy = zx*zx-zy*zy+cx, 2*zx*zy+cy
				if zx*zx+zy*zy > 4 {
					break
				}
			}
			a.out[y*width+x] = it
		}
	}
	return a.y1 - a.y0, nil
}

func main() {
	log.SetFlags(0)
	node := mtapi.NewNode(1, 1, &mtapi.NodeAttributes{Workers: 8})
	defer node.Shutdown()

	if _, err := node.CreateAction(jobRenderTile, "mandelbrot", renderTile); err != nil {
		log.Fatal(err)
	}

	frame := make([]int32, width*height)
	start := time.Now()

	// Farm: one group task per tile.
	group := node.CreateGroup()
	for y := 0; y < height; y += tileRows {
		y1 := y + tileRows
		if y1 > height {
			y1 = height
		}
		if _, err := group.Start(jobRenderTile, tileArgs{y0: y, y1: y1, out: frame}, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := group.WaitAll(mtapi.TimeoutInfinite); err != nil {
		log.Fatal(err)
	}
	renderTime := time.Since(start)

	// Ordered sink: rows are summarized strictly top-to-bottom through an
	// MTAPI queue, proving queue serialization.
	rowOrder := make([]int, 0, height)
	if _, err := node.CreateAction(jobEmitRow, "emit", func(args any) (any, error) {
		rowOrder = append(rowOrder, args.(int)) // safe: queue serializes
		return nil, nil
	}); err != nil {
		log.Fatal(err)
	}
	queue, err := node.CreateQueue(jobEmitRow, nil)
	if err != nil {
		log.Fatal(err)
	}
	var last *mtapi.Task
	for y := 0; y < height; y++ {
		t, err := queue.Enqueue(y)
		if err != nil {
			log.Fatal(err)
		}
		last = t
	}
	if _, err := last.Wait(mtapi.TimeoutInfinite); err != nil {
		log.Fatal(err)
	}

	// Verification: every pixel rendered, rows emitted in order.
	inside := 0
	for _, it := range frame {
		if it == maxIter {
			inside++
		}
	}
	orderOK := len(rowOrder) == height
	for i, y := range rowOrder {
		if y != i {
			orderOK = false
			break
		}
	}
	fmt.Printf("rendered %dx%d Mandelbrot in %d tiles on %d MTAPI workers (%v)\n",
		width, height, (height+tileRows-1)/tileRows, 8, renderTime.Round(time.Millisecond))
	fmt.Printf("pixels in set: %d (%.1f%%), tasks executed: %d\n",
		inside, 100*float64(inside)/float64(len(frame)), node.Executed())
	if inside == 0 || !orderOK {
		log.Fatal("VERIFICATION FAILED")
	}
	fmt.Println("verification: PASS (all tiles rendered, queue preserved row order)")
}
