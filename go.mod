module openmpmca

go 1.22
