module openmpmca

go 1.23
