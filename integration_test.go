package openmpmca

// End-to-end composition test: the full stack the paper describes, wired
// together the way cmd/ and examples/ wire it — board model → hypervisor
// partition → partition-scoped MRAPI universe → MCA thread layer → OpenMP
// runtime → EPCC measurement, NAS kernel and validation suite — asserting
// that every seam composes.

import (
	"testing"

	"openmpmca/internal/core"
	"openmpmca/internal/epcc"
	"openmpmca/internal/npb"
	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
	"openmpmca/internal/trace"
	"openmpmca/internal/validation"
)

func TestFullStackComposition(t *testing.T) {
	// 1. Board and hypervisor: carve an 8-CPU Linux partition.
	board := platform.T4240RDB()
	hv, err := platform.NewHypervisor(board)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hv.CreatePartition("omp", platform.GuestLinux, []int{0, 1, 2, 3, 4, 5, 6, 7}, 2048); err != nil {
		t.Fatal(err)
	}
	if err := hv.Start("omp"); err != nil {
		t.Fatal(err)
	}
	sys, err := hv.PartitionSystem("omp")
	if err != nil {
		t.Fatal(err)
	}

	// 2. MCA-backed runtime inside the partition, traced and timed.
	layer, err := core.NewMCALayer(sys)
	if err != nil {
		t.Fatal(err)
	}
	model := perfmodel.New(board, perfmodel.KernelProfile{Name: "itest", CyclesPerUnit: 10})
	rec := trace.NewRecorder(0)
	rt, err := core.New(core.WithLayer(layer), core.WithMonitor(trace.NewTee(model, rec)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.NumThreads() != 8 {
		t.Fatalf("partition team = %d, want 8", rt.NumThreads())
	}

	// 3. A worksharing + reduction region must compute correctly and feed
	// both monitors.
	var sum int64
	if err := rt.Parallel(func(c *core.Context) {
		r := core.Reduce(c, 10_000, int64(0),
			func(a, b int64) int64 { return a + b },
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				c.Charge(float64(hi - lo))
				return s
			})
		c.Master(func() { sum = r })
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(9999) * 10000 / 2; sum != want {
		t.Fatalf("reduce = %d, want %d", sum, want)
	}
	if model.Seconds() <= 0 {
		t.Error("virtual clock did not advance")
	}
	if s := rec.Summary(); s.Forks != 1 || s.UnitsCharged != 10_000 {
		t.Errorf("trace summary = %+v", s)
	}

	// 4. EPCC measures on the same runtime.
	suite := epcc.NewSuite(rt, epcc.Options{InnerReps: 8, OuterReps: 3, DelayLength: 8})
	if _, err := suite.Measure("barrier"); err != nil {
		t.Fatal(err)
	}

	// 5. A NAS kernel runs verified on the partition runtime.
	ep, err := npb.New("EP", npb.ClassS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ep.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("EP on the partition runtime not verified: %s", res.Detail)
	}

	// 6. The validation battery passes against partition-scoped runtimes.
	outcomes, err := validation.RunAll(func() (*core.Runtime, error) {
		l, err := core.NewMCALayer(hv.Board().NewSystem())
		if err != nil {
			return nil, err
		}
		return core.New(core.WithLayer(l), core.WithNumThreads(8))
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.Passed() {
			t.Errorf("validation %s failed: %s", o.Name, o.Detail)
		}
	}
}
