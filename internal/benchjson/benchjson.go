// Package benchjson defines the machine-readable benchmark trajectory
// the repo persists across PRs: cmd/ompmca-bench runs the curated
// hot-path suite and emits one versioned BENCH_<n>.json per PR, and the
// compare mode diffs two such files to flag regressions before they
// land. The schema is deliberately small — a label, the knob settings
// the run was taken under, and one record per benchmark — so a file
// written by PR n is still readable (and comparable) many PRs later.
package benchjson

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SchemaVersion is bumped only on incompatible changes; Decode rejects
// files from a different major schema.
const SchemaVersion = 1

// Result is one benchmark's measurement.
type Result struct {
	// Name identifies the benchmark within the suite, stable across
	// trajectory files (e.g. "offload_chunk_roundtrip").
	Name string `json:"name"`
	// Iterations is the b.N the measurement averaged over.
	Iterations int `json:"iterations"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp capture allocation pressure — the pooling
	// optimizations are judged on these as much as on latency.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics holds benchmark-specific extras (e.g. "frames_per_sec").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Trajectory is one BENCH_<n>.json: a labeled suite run under recorded
// knob settings.
type Trajectory struct {
	SchemaVersion int             `json:"schema_version"`
	Label         string          `json:"label"`
	GoVersion     string          `json:"go_version,omitempty"`
	CreatedUnix   int64           `json:"created_unix,omitempty"`
	Knobs         map[string]bool `json:"knobs,omitempty"`
	Results       []Result        `json:"results"`
}

// Validate checks the invariants Decode and Encode enforce.
func (t *Trajectory) Validate() error {
	if t.SchemaVersion != SchemaVersion {
		return fmt.Errorf("benchjson: schema_version %d, this reader speaks %d", t.SchemaVersion, SchemaVersion)
	}
	if t.Label == "" {
		return fmt.Errorf("benchjson: empty label")
	}
	if len(t.Results) == 0 {
		return fmt.Errorf("benchjson: no results")
	}
	seen := make(map[string]bool, len(t.Results))
	for i, r := range t.Results {
		if r.Name == "" {
			return fmt.Errorf("benchjson: result %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("benchjson: duplicate result %q", r.Name)
		}
		seen[r.Name] = true
		if r.NsPerOp < 0 || r.Iterations < 0 {
			return fmt.Errorf("benchjson: result %q has negative measurements", r.Name)
		}
	}
	return nil
}

// Encode validates and marshals the trajectory in the committed format:
// indented, trailing newline, results in suite order.
func (t *Trajectory) Encode() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Decode parses and validates one trajectory file.
func Decode(data []byte) (*Trajectory, error) {
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Delta is one benchmark's movement between two trajectories. Positive
// Pct means the current run is slower.
type Delta struct {
	Name        string
	PrevNsPerOp float64
	CurNsPerOp  float64
	Pct         float64 // (cur-prev)/prev * 100
	AllocsPrev  float64
	AllocsCur   float64
	Regressed   bool // slower than prev beyond tolerance
	Improved    bool // faster than prev beyond tolerance
}

// Comparison is the diff of two trajectories.
type Comparison struct {
	PrevLabel    string
	CurLabel     string
	TolerancePct float64
	Deltas       []Delta  // benchmarks present in both, in cur's order
	Added        []string // in cur only
	Removed      []string // in prev only
}

// Regressions counts deltas beyond tolerance in the slow direction.
func (c *Comparison) Regressions() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

// Improvements counts deltas beyond tolerance in the fast direction.
func (c *Comparison) Improvements() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Improved {
			n++
		}
	}
	return n
}

// Compare diffs two trajectories; a benchmark regresses (or improves)
// when its ns/op moved more than tolerancePct from prev.
func Compare(prev, cur *Trajectory, tolerancePct float64) *Comparison {
	c := &Comparison{PrevLabel: prev.Label, CurLabel: cur.Label, TolerancePct: tolerancePct}
	prevBy := make(map[string]Result, len(prev.Results))
	for _, r := range prev.Results {
		prevBy[r.Name] = r
	}
	curSeen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		curSeen[r.Name] = true
		p, ok := prevBy[r.Name]
		if !ok {
			c.Added = append(c.Added, r.Name)
			continue
		}
		d := Delta{
			Name:        r.Name,
			PrevNsPerOp: p.NsPerOp,
			CurNsPerOp:  r.NsPerOp,
			AllocsPrev:  p.AllocsPerOp,
			AllocsCur:   r.AllocsPerOp,
		}
		if p.NsPerOp > 0 {
			d.Pct = (r.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
		}
		d.Regressed = d.Pct > tolerancePct
		d.Improved = d.Pct < -tolerancePct
		c.Deltas = append(c.Deltas, d)
	}
	for _, r := range prev.Results {
		if !curSeen[r.Name] {
			c.Removed = append(c.Removed, r.Name)
		}
	}
	sort.Strings(c.Added)
	sort.Strings(c.Removed)
	return c
}

// Render formats the comparison as a plain-text table.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark trajectory: %s -> %s (tolerance ±%.1f%%)\n",
		c.PrevLabel, c.CurLabel, c.TolerancePct)
	fmt.Fprintf(&b, "%-28s %14s %14s %9s %16s\n", "benchmark", "prev ns/op", "cur ns/op", "delta", "allocs/op")
	for _, d := range c.Deltas {
		tag := ""
		switch {
		case d.Regressed:
			tag = "  REGRESSED"
		case d.Improved:
			tag = "  improved"
		}
		fmt.Fprintf(&b, "%-28s %14.1f %14.1f %+8.1f%% %7.1f -> %5.1f%s\n",
			d.Name, d.PrevNsPerOp, d.CurNsPerOp, d.Pct, d.AllocsPrev, d.AllocsCur, tag)
	}
	for _, n := range c.Added {
		fmt.Fprintf(&b, "%-28s (new benchmark)\n", n)
	}
	for _, n := range c.Removed {
		fmt.Fprintf(&b, "%-28s (removed benchmark)\n", n)
	}
	fmt.Fprintf(&b, "%d regression(s), %d improvement(s)\n", c.Regressions(), c.Improvements())
	return b.String()
}
