package benchjson

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sample() *Trajectory {
	return &Trajectory{
		SchemaVersion: SchemaVersion,
		Label:         "golden",
		GoVersion:     "go1.23",
		CreatedUnix:   1754600000,
		Knobs: map[string]bool{
			"codec_pooling":    true,
			"offload_batching": false,
		},
		Results: []Result{
			{Name: "fork_join", Iterations: 1000, NsPerOp: 12345.6, AllocsPerOp: 4, BytesPerOp: 512},
			{Name: "taskcodec_frames", Iterations: 100000, NsPerOp: 180.25,
				Metrics: map[string]float64{"frames_per_sec": 5547850.2}},
		},
	}
}

// TestGoldenFile pins the committed BENCH_<n>.json format: the checked-in
// golden file must decode, validate, and re-encode byte-identically.
// Regenerate with `BENCHJSON_UPDATE=1 go test ./internal/benchjson -run
// Golden` only alongside a SchemaVersion bump.
var update = os.Getenv("BENCHJSON_UPDATE") == "1"

func TestGoldenFile(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	want, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (set BENCHJSON_UPDATE=1 to create): %v", err)
	}
	tr, err := Decode(data)
	if err != nil {
		t.Fatalf("golden file does not decode: %v", err)
	}
	reenc, err := tr.Encode()
	if err != nil {
		t.Fatalf("golden trajectory does not re-encode: %v", err)
	}
	if !bytes.Equal(reenc, data) {
		t.Errorf("golden round-trip not byte-identical:\n--- file ---\n%s--- re-encoded ---\n%s", data, reenc)
	}
	if !bytes.Equal(want, data) {
		t.Errorf("golden file drifted from sample():\n--- sample ---\n%s--- file ---\n%s", want, data)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trajectory)
	}{
		{"wrong schema", func(tr *Trajectory) { tr.SchemaVersion = 99 }},
		{"empty label", func(tr *Trajectory) { tr.Label = "" }},
		{"no results", func(tr *Trajectory) { tr.Results = nil }},
		{"unnamed result", func(tr *Trajectory) { tr.Results[0].Name = "" }},
		{"duplicate result", func(tr *Trajectory) { tr.Results[1].Name = tr.Results[0].Name }},
		{"negative ns", func(tr *Trajectory) { tr.Results[0].NsPerOp = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := sample()
			tc.mut(tr)
			if err := tr.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
			if _, err := tr.Encode(); err == nil {
				t.Errorf("Encode accepted %s", tc.name)
			}
		})
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("Decode accepted malformed JSON")
	}
}

func TestCompare(t *testing.T) {
	prev := sample()
	cur := sample()
	cur.Label = "next"
	cur.Results[0].NsPerOp = prev.Results[0].NsPerOp * 1.5 // regression
	cur.Results[1].NsPerOp = prev.Results[1].NsPerOp * 0.5 // improvement
	cur.Results = append(cur.Results, Result{Name: "brand_new", NsPerOp: 1})

	c := Compare(prev, cur, 10)
	if c.Regressions() != 1 {
		t.Errorf("Regressions = %d, want 1", c.Regressions())
	}
	if c.Improvements() != 1 {
		t.Errorf("Improvements = %d, want 1", c.Improvements())
	}
	if len(c.Added) != 1 || c.Added[0] != "brand_new" {
		t.Errorf("Added = %v, want [brand_new]", c.Added)
	}
	if len(c.Removed) != 0 {
		t.Errorf("Removed = %v, want none", c.Removed)
	}
	if d := c.Deltas[0]; !d.Regressed || d.Pct < 49 || d.Pct > 51 {
		t.Errorf("delta 0 = %+v, want ~+50%% regression", d)
	}

	// Within tolerance: neither flag trips.
	cur2 := sample()
	cur2.Results[0].NsPerOp *= 1.05
	c2 := Compare(prev, cur2, 10)
	if c2.Regressions() != 0 || c2.Improvements() != 0 {
		t.Errorf("5%% drift beyond 10%% tolerance: %d regressions, %d improvements",
			c2.Regressions(), c2.Improvements())
	}

	// Render must mention the regressed benchmark and the summary line.
	out := c.Render()
	if !bytes.Contains([]byte(out), []byte("REGRESSED")) || !bytes.Contains([]byte(out), []byte("1 regression(s)")) {
		t.Errorf("Render missing regression markers:\n%s", out)
	}
}
