// Package board models the embedded development environment of the
// paper's §4B and Figure 3: a T4240RDB whose u-boot either boots the
// pre-installed image from NOR flash (with a volatile root file system
// that is refreshed on every reset) or fetches the kernel over TFTP and
// mounts a persistent root file system over NFS from a host workstation —
// the configuration the authors set up to survive development iterations.
package board

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"openmpmca/internal/platform"
)

// Errors returned by the boot flow.
var (
	ErrNoKernel     = errors.New("board: kernel image not found")
	ErrBadImage     = errors.New("board: kernel image failed verification")
	ErrNoServer     = errors.New("board: network server not configured")
	ErrNoExport     = errors.New("board: NFS export not found")
	ErrNotBooted    = errors.New("board: board is not booted")
	ErrFileNotFound = errors.New("board: file not found")
)

// ----- NOR flash -----

// NORFlash holds the factory u-boot environment and images.
type NORFlash struct {
	mu    sync.Mutex
	files map[string][]byte
	env   map[string]string
}

// NewNORFlash creates flash pre-installed the way Freescale ships the
// board: u-boot, a kernel image, and a bootargs environment selecting
// flash boot.
func NewNORFlash() *NORFlash {
	kernel := buildKernelImage("factory-linux-sdk")
	return &NORFlash{
		files: map[string][]byte{
			"u-boot.bin": []byte("u-boot 2014.07-T4240RDB"),
			"uImage":     kernel,
		},
		env: map[string]string{
			"bootcmd":  "bootm flash",
			"bootargs": "root=/dev/ram rw",
		},
	}
}

// Read returns a flash file.
func (f *NORFlash) Read(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[name]
	if !ok {
		return nil, ErrFileNotFound
	}
	return append([]byte(nil), data...), nil
}

// SetEnv updates a u-boot environment variable (saveenv persistence).
func (f *NORFlash) SetEnv(key, value string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.env[key] = value
}

// Env reads a u-boot environment variable.
func (f *NORFlash) Env(key string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.env[key]
}

// ----- kernel images -----

// imageMagic marks a valid uImage header.
const imageMagic = "uImage\x00"

// buildKernelImage wraps a payload with the header + checksum u-boot
// verifies before jumping into the kernel.
func buildKernelImage(payload string) []byte {
	sum := sha256.Sum256([]byte(payload))
	return []byte(imageMagic + hex.EncodeToString(sum[:8]) + "\x00" + payload)
}

// verifyKernelImage re-derives the checksum, as u-boot's bootm does.
func verifyKernelImage(img []byte) error {
	if len(img) < len(imageMagic)+17 || string(img[:len(imageMagic)]) != imageMagic {
		return ErrBadImage
	}
	rest := img[len(imageMagic):]
	wantSum := string(rest[:16])
	payload := rest[17:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:8]) != wantSum {
		return ErrBadImage
	}
	return nil
}

// ----- TFTP server (RFC 1350 block semantics) -----

// TFTPBlockSize is the RFC 1350 data block size.
const TFTPBlockSize = 512

// TFTPServer is the in-memory file host the development workstation runs
// for u-boot's kernel fetch.
type TFTPServer struct {
	mu     sync.Mutex
	files  map[string][]byte
	blocks uint64 // blocks served, for diagnostics
}

// NewTFTPServer creates an empty server.
func NewTFTPServer() *TFTPServer {
	return &TFTPServer{files: make(map[string][]byte)}
}

// Put installs a file.
func (s *TFTPServer) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte(nil), data...)
}

// Get transfers a file RRQ-style: data arrives in numbered 512-byte
// blocks, the transfer terminating with the first short block (a file of
// exactly k·512 bytes is followed by an empty terminating block, per the
// RFC). It returns the reassembled file and the block count.
func (s *TFTPServer) Get(name string) ([]byte, int, error) {
	s.mu.Lock()
	data, ok := s.files[name]
	s.mu.Unlock()
	if !ok {
		return nil, 0, ErrFileNotFound
	}
	var out []byte
	blocks := 0
	for off := 0; ; off += TFTPBlockSize {
		end := off + TFTPBlockSize
		if end > len(data) {
			end = len(data)
		}
		block := data[off:end]
		out = append(out, block...)
		blocks++
		s.mu.Lock()
		s.blocks++
		s.mu.Unlock()
		if len(block) < TFTPBlockSize {
			break // short (possibly empty) block terminates the transfer
		}
	}
	return out, blocks, nil
}

// BlocksServed reports total data blocks served.
func (s *TFTPServer) BlocksServed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocks
}

// ----- NFS server -----

// NFSServer hosts persistent root file systems exported to boards.
type NFSServer struct {
	mu      sync.Mutex
	exports map[string]map[string][]byte
}

// NewNFSServer creates a server with no exports.
func NewNFSServer() *NFSServer {
	return &NFSServer{exports: make(map[string]map[string][]byte)}
}

// AddExport creates an exported root file system.
func (s *NFSServer) AddExport(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.exports[name]; !ok {
		s.exports[name] = map[string][]byte{
			"/etc/hostname": []byte("t4240rdb"),
			"/sbin/init":    []byte("#!busybox init"),
		}
	}
}

// Mount attaches a client to an export; the returned RootFS operates
// directly on server state, so writes survive client reboots.
func (s *NFSServer) Mount(export string) (*RootFS, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.exports[export]
	if !ok {
		return nil, ErrNoExport
	}
	return &RootFS{server: s, files: fs, persistent: true}, nil
}

// RootFS is a mounted root file system: RAM-disk (volatile) or NFS
// (persistent).
type RootFS struct {
	server     *NFSServer // nil for RAM disks
	mu         sync.Mutex
	files      map[string][]byte
	persistent bool
}

// newRAMDisk builds the volatile root the factory flash image unpacks —
// "the file system will be refreshed for every reset" (§4B).
func newRAMDisk() *RootFS {
	return &RootFS{
		files: map[string][]byte{
			"/etc/hostname": []byte("t4240rdb"),
			"/sbin/init":    []byte("#!busybox init"),
		},
	}
}

// Persistent reports whether writes survive a reboot.
func (r *RootFS) Persistent() bool { return r.persistent }

// WriteFile stores a file.
func (r *RootFS) WriteFile(path string, data []byte) {
	r.lock()
	defer r.unlock()
	r.files[path] = append([]byte(nil), data...)
}

// ReadFile fetches a file.
func (r *RootFS) ReadFile(path string) ([]byte, error) {
	r.lock()
	defer r.unlock()
	data, ok := r.files[path]
	if !ok {
		return nil, ErrFileNotFound
	}
	return append([]byte(nil), data...), nil
}

// List returns all paths, sorted.
func (r *RootFS) List() []string {
	r.lock()
	defer r.unlock()
	out := make([]string, 0, len(r.files))
	for p := range r.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (r *RootFS) lock() {
	if r.server != nil {
		r.server.mu.Lock()
	} else {
		r.mu.Lock()
	}
}

func (r *RootFS) unlock() {
	if r.server != nil {
		r.server.mu.Unlock()
	} else {
		r.mu.Unlock()
	}
}

// ----- the board and its boot flow -----

// BootSource selects where u-boot takes the kernel and root from.
type BootSource int

const (
	// BootFlash is the factory default: kernel from NOR flash, volatile
	// RAM-disk root.
	BootFlash BootSource = iota
	// BootNetwork is the paper's development setup: kernel over TFTP,
	// root over NFS.
	BootNetwork
)

func (b BootSource) String() string {
	if b == BootNetwork {
		return "tftp+nfs"
	}
	return "nor-flash"
}

// BootConfig parameterizes a boot.
type BootConfig struct {
	Source BootSource
	// TFTP / KernelFile / NFS / Export configure network boot.
	TFTP       *TFTPServer
	KernelFile string
	NFS        *NFSServer
	Export     string
}

// Board is the bootable T4240RDB: hardware model + flash + current
// software state.
type Board struct {
	HW    *platform.Board
	Flash *NORFlash

	mu     sync.Mutex
	booted bool
	root   *RootFS
	log    []string
}

// NewBoard ships a board in factory state.
func NewBoard() *Board {
	return &Board{HW: platform.T4240RDB(), Flash: NewNORFlash()}
}

// Booted reports whether the board is up.
func (b *Board) Booted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.booted
}

// Root returns the mounted root file system of a booted board.
func (b *Board) Root() (*RootFS, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.booted {
		return nil, ErrNotBooted
	}
	return b.root, nil
}

// BootLog returns the boot event trail of the last boot.
func (b *Board) BootLog() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.log...)
}

// Reset powers the board down; a flash-booted root is lost, an NFS root
// survives on the server.
func (b *Board) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.booted = false
	b.root = nil
	b.log = nil
}

// Boot runs the u-boot sequence for the given configuration.
func (b *Board) Boot(cfg BootConfig) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.log = nil
	b.booted = false
	step := func(format string, args ...any) {
		b.log = append(b.log, fmt.Sprintf(format, args...))
	}

	step("power-on reset: %d cores / %d hw threads @ %d MHz", b.HW.Cores, b.HW.HWThreads(), b.HW.FreqMHz)
	if _, err := b.Flash.Read("u-boot.bin"); err != nil {
		step("u-boot missing from NOR flash")
		return ErrNoKernel
	}
	step("u-boot loaded from NOR flash")

	var kernel []byte
	switch cfg.Source {
	case BootFlash:
		img, err := b.Flash.Read("uImage")
		if err != nil {
			step("kernel missing from flash")
			return ErrNoKernel
		}
		kernel = img
		step("kernel read from NOR flash (%d bytes)", len(img))
	case BootNetwork:
		if cfg.TFTP == nil {
			return ErrNoServer
		}
		img, blocks, err := cfg.TFTP.Get(cfg.KernelFile)
		if err != nil {
			step("tftp %s: not found", cfg.KernelFile)
			return ErrNoKernel
		}
		kernel = img
		step("tftp %s: %d bytes in %d blocks", cfg.KernelFile, len(img), blocks)
	}

	if err := verifyKernelImage(kernel); err != nil {
		step("bootm: bad image checksum")
		return err
	}
	step("bootm: image verified, starting kernel")

	switch cfg.Source {
	case BootFlash:
		b.root = newRAMDisk()
		step("root: RAM disk unpacked (volatile — refreshed every reset)")
	case BootNetwork:
		if cfg.NFS == nil {
			return ErrNoServer
		}
		root, err := cfg.NFS.Mount(cfg.Export)
		if err != nil {
			step("nfs mount %s: no such export", cfg.Export)
			return err
		}
		b.root = root
		step("root: NFS export %q mounted rw (persistent on host)", cfg.Export)
	}
	step("init: system up, %s boot complete", cfg.Source)
	b.booted = true
	return nil
}

// NetworkEnvironment carries the servers a network boot needs; BootAuto
// resolves them from the u-boot environment.
type NetworkEnvironment struct {
	TFTP *TFTPServer
	NFS  *NFSServer
}

// BootAuto boots the way u-boot's saved environment dictates (§4B: the
// authors "modify the board's configuration" by rewriting bootcmd): a
// bootcmd containing "tftp" selects the network path, with the kernel
// file taken from the "kernelfile" variable and the NFS root from
// "nfsroot"; anything else boots the factory flash image.
func (b *Board) BootAuto(env NetworkEnvironment) error {
	bootcmd := b.Flash.Env("bootcmd")
	if !strings.Contains(bootcmd, "tftp") {
		return b.Boot(BootConfig{Source: BootFlash})
	}
	return b.Boot(BootConfig{
		Source:     BootNetwork,
		TFTP:       env.TFTP,
		KernelFile: b.Flash.Env("kernelfile"),
		NFS:        env.NFS,
		Export:     b.Flash.Env("nfsroot"),
	})
}

// RenderEnvironment draws the Figure 3 development-environment diagram
// for a network-boot setup.
func RenderEnvironment(b *Board, tftp *TFTPServer, nfs *NFSServer, export string) string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — NFS development environment\n")
	sb.WriteString("+----------------------+            +--------------------+\n")
	sb.WriteString("|  Linux workstation   |  ethernet  |      T4240RDB      |\n")
	fmt.Fprintf(&sb, "|  TFTP: %4d blocks   |<---------->|  u-boot -> kernel  |\n", tftp.BlocksServed())
	fmt.Fprintf(&sb, "|  NFS export: %-7s |            |  rootfs over NFS   |\n", export)
	sb.WriteString("+----------------------+            +--------------------+\n")
	if b.Booted() {
		fmt.Fprintf(&sb, "board state: up (%d hw threads online)\n", b.HW.HWThreads())
	} else {
		sb.WriteString("board state: down\n")
	}
	return sb.String()
}
