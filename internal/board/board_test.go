package board

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFlashBootVolatileRoot(t *testing.T) {
	b := NewBoard()
	if err := b.Boot(BootConfig{Source: BootFlash}); err != nil {
		t.Fatal(err)
	}
	if !b.Booted() {
		t.Fatal("board not booted")
	}
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.Persistent() {
		t.Error("flash root must be volatile")
	}
	root.WriteFile("/home/dev/app", []byte("my work"))
	// §4B: "the file system will be refreshed for every reset".
	b.Reset()
	if err := b.Boot(BootConfig{Source: BootFlash}); err != nil {
		t.Fatal(err)
	}
	root2, _ := b.Root()
	if _, err := root2.ReadFile("/home/dev/app"); !errors.Is(err, ErrFileNotFound) {
		t.Error("flash-boot root survived a reset; it must be refreshed")
	}
}

func TestNetworkBootPersistentRoot(t *testing.T) {
	b := NewBoard()
	tftp := NewTFTPServer()
	tftp.Put("uImage-dev", buildKernelImage("custom-kernel-4.9-omp"))
	nfs := NewNFSServer()
	nfs.AddExport("/srv/t4240")
	cfg := BootConfig{Source: BootNetwork, TFTP: tftp, KernelFile: "uImage-dev", NFS: nfs, Export: "/srv/t4240"}
	if err := b.Boot(cfg); err != nil {
		t.Fatal(err)
	}
	root, _ := b.Root()
	if !root.Persistent() {
		t.Fatal("NFS root must be persistent")
	}
	root.WriteFile("/opt/mca-libgomp.so", []byte("toolchain"))
	b.Reset()
	if b.Booted() {
		t.Error("board up after reset")
	}
	if err := b.Boot(cfg); err != nil {
		t.Fatal(err)
	}
	root2, _ := b.Root()
	data, err := root2.ReadFile("/opt/mca-libgomp.so")
	if err != nil || !bytes.Equal(data, []byte("toolchain")) {
		t.Errorf("NFS root lost data across reboot: %q, %v", data, err)
	}
}

func TestBootLogNarratesSequence(t *testing.T) {
	b := NewBoard()
	tftp := NewTFTPServer()
	tftp.Put("k", buildKernelImage("x"))
	nfs := NewNFSServer()
	nfs.AddExport("root")
	_ = b.Boot(BootConfig{Source: BootNetwork, TFTP: tftp, KernelFile: "k", NFS: nfs, Export: "root"})
	log := strings.Join(b.BootLog(), "\n")
	for _, want := range []string{"power-on reset", "u-boot loaded", "tftp k:", "image verified", "NFS export", "boot complete"} {
		if !strings.Contains(log, want) {
			t.Errorf("boot log missing %q:\n%s", want, log)
		}
	}
}

func TestBootFailures(t *testing.T) {
	b := NewBoard()
	if err := b.Boot(BootConfig{Source: BootNetwork}); !errors.Is(err, ErrNoServer) {
		t.Errorf("no tftp = %v", err)
	}
	tftp := NewTFTPServer()
	if err := b.Boot(BootConfig{Source: BootNetwork, TFTP: tftp, KernelFile: "nope"}); !errors.Is(err, ErrNoKernel) {
		t.Errorf("missing kernel = %v", err)
	}
	tftp.Put("bad", []byte("not a uImage"))
	if err := b.Boot(BootConfig{Source: BootNetwork, TFTP: tftp, KernelFile: "bad"}); !errors.Is(err, ErrBadImage) {
		t.Errorf("bad image = %v", err)
	}
	tftp.Put("ok", buildKernelImage("k"))
	if err := b.Boot(BootConfig{Source: BootNetwork, TFTP: tftp, KernelFile: "ok"}); !errors.Is(err, ErrNoServer) {
		t.Errorf("no nfs = %v", err)
	}
	nfs := NewNFSServer()
	if err := b.Boot(BootConfig{Source: BootNetwork, TFTP: tftp, KernelFile: "ok", NFS: nfs, Export: "x"}); !errors.Is(err, ErrNoExport) {
		t.Errorf("missing export = %v", err)
	}
	if b.Booted() {
		t.Error("board reports booted after failures")
	}
	if _, err := b.Root(); !errors.Is(err, ErrNotBooted) {
		t.Errorf("Root on down board = %v", err)
	}
}

func TestImageVerification(t *testing.T) {
	img := buildKernelImage("payload")
	if err := verifyKernelImage(img); err != nil {
		t.Fatal(err)
	}
	// A flipped payload byte must fail the checksum.
	img[len(img)-1] ^= 0xFF
	if err := verifyKernelImage(img); !errors.Is(err, ErrBadImage) {
		t.Errorf("corrupted image = %v", err)
	}
	if err := verifyKernelImage([]byte("short")); !errors.Is(err, ErrBadImage) {
		t.Errorf("short image = %v", err)
	}
}

func TestTFTPBlockSequencing(t *testing.T) {
	s := NewTFTPServer()
	cases := []struct {
		size, blocks int
	}{
		{0, 1},                    // empty file: one empty block
		{100, 1},                  // sub-block file
		{TFTPBlockSize, 2},        // exact multiple: empty terminator
		{TFTPBlockSize*3 + 10, 4}, // three full + one short
		{TFTPBlockSize * 2, 3},    // two full + empty terminator
	}
	for _, c := range cases {
		data := bytes.Repeat([]byte{0xAB}, c.size)
		s.Put("f", data)
		got, blocks, err := s.Get("f")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("size %d: data mismatch (%v)", c.size, err)
		}
		if blocks != c.blocks {
			t.Errorf("size %d: %d blocks, want %d", c.size, blocks, c.blocks)
		}
	}
	if _, _, err := s.Get("missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("missing file = %v", err)
	}
	if s.BlocksServed() == 0 {
		t.Error("blocks counter never advanced")
	}
}

func TestUBootEnv(t *testing.T) {
	f := NewNORFlash()
	if f.Env("bootcmd") != "bootm flash" {
		t.Errorf("factory bootcmd = %q", f.Env("bootcmd"))
	}
	f.SetEnv("bootcmd", "tftp; bootm")
	if f.Env("bootcmd") != "tftp; bootm" {
		t.Error("saveenv lost the update")
	}
}

func TestNFSSharedAcrossMounts(t *testing.T) {
	nfs := NewNFSServer()
	nfs.AddExport("root")
	m1, err := nfs.Mount("root")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := nfs.Mount("root")
	if err != nil {
		t.Fatal(err)
	}
	m1.WriteFile("/shared", []byte("visible"))
	data, err := m2.ReadFile("/shared")
	if err != nil || string(data) != "visible" {
		t.Errorf("second mount sees %q, %v", data, err)
	}
	if len(m2.List()) < 3 {
		t.Errorf("List = %v", m2.List())
	}
}

func TestRenderEnvironmentFigure3(t *testing.T) {
	b := NewBoard()
	tftp := NewTFTPServer()
	tftp.Put("k", buildKernelImage("x"))
	nfs := NewNFSServer()
	nfs.AddExport("root")
	_ = b.Boot(BootConfig{Source: BootNetwork, TFTP: tftp, KernelFile: "k", NFS: nfs, Export: "root"})
	out := RenderEnvironment(b, tftp, nfs, "root")
	for _, want := range []string{"Figure 3", "TFTP", "NFS export", "T4240RDB", "board state: up"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBootAutoFollowsEnv(t *testing.T) {
	b := NewBoard()
	// Factory environment boots from flash.
	if err := b.BootAuto(NetworkEnvironment{}); err != nil {
		t.Fatal(err)
	}
	root, _ := b.Root()
	if root.Persistent() {
		t.Error("factory env should select flash boot (volatile root)")
	}

	// Rewriting bootcmd (the §4B reconfiguration) switches to TFTP/NFS.
	tftp := NewTFTPServer()
	tftp.Put("uImage-dev", buildKernelImage("dev"))
	nfs := NewNFSServer()
	nfs.AddExport("/srv/dev")
	b.Flash.SetEnv("bootcmd", "tftp; nfsroot; bootm")
	b.Flash.SetEnv("kernelfile", "uImage-dev")
	b.Flash.SetEnv("nfsroot", "/srv/dev")
	b.Reset()
	if err := b.BootAuto(NetworkEnvironment{TFTP: tftp, NFS: nfs}); err != nil {
		t.Fatal(err)
	}
	root, _ = b.Root()
	if !root.Persistent() {
		t.Error("tftp bootcmd should select the NFS root")
	}
	// Saved env survives resets (NOR-flash persistence), so the next auto
	// boot repeats the network path without reconfiguration.
	b.Reset()
	if err := b.BootAuto(NetworkEnvironment{TFTP: tftp, NFS: nfs}); err != nil {
		t.Fatal(err)
	}
	root, _ = b.Root()
	if !root.Persistent() {
		t.Error("saved env lost across reset")
	}
}

func TestBootAutoMissingServers(t *testing.T) {
	b := NewBoard()
	b.Flash.SetEnv("bootcmd", "tftp; bootm")
	if err := b.BootAuto(NetworkEnvironment{}); !errors.Is(err, ErrNoServer) {
		t.Errorf("auto network boot without servers = %v", err)
	}
}
