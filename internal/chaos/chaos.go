// Package chaos is the runtime's property-based fault-campaign runner:
// it composes fault actions — killing and readmitting worker domains,
// dropping/delaying/duplicating MCAPI frames, saturating admission, and
// canceling task groups — against running offload, task-fabric and
// job-service workloads, then asserts the two properties the recovery
// machinery promises:
//
//  1. byte-exact results: every unit of work that settles successfully
//     settles with exactly the closed-form expected payload, no matter
//     which domains died or which frames the wire ate;
//  2. zero lost jobs: every submitted unit settles — with a result or
//     with a classified error — within the drain deadline.
//
// Campaigns are seeded and replayable: the entire fault schedule is
// derived from one int64 seed (Plan), so `ompmca-chaos -seed 42` runs
// the identical schedule every time and a failing campaign's seed is a
// complete reproduction recipe. The per-frame drop/dup coin flips use a
// campaign-local RNG too; exact frame fates still race with scheduling,
// which is the point — the *schedule* is the property being replayed,
// the assertions hold under any interleaving.
//
// Run installs a process-wide MCAPI fault injector
// (mcapi.SetFaultInjector); campaigns must therefore run sequentially,
// never concurrently with each other or with production traffic.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmpmca/internal/mcapi"
	"openmpmca/internal/oerrors"
)

// Workload selects the subsystem a campaign drives.
type Workload string

// Workloads.
const (
	// WorkloadFabric submits task graphs to a taskfabric.Fabric
	// directly: sum tasks with closed-form results, long spin blockers
	// to set up stealing, sacrificial groups for cancellation.
	WorkloadFabric Workload = "fabric"
	// WorkloadOffload runs parallel-for regions on an
	// offload.Offloader: vecsum kernels with closed-form results.
	WorkloadOffload Workload = "offload"
	// WorkloadService drives the full HTTP job service: submissions,
	// polling, group cancel and domain drain/readmit all travel through
	// the JSON API, including its quota (429) admission path.
	WorkloadService Workload = "service"
)

// ActionKind is one fault family.
type ActionKind string

// Fault actions a campaign composes.
const (
	ActKillDomain    ActionKind = "kill"     // declare a worker domain dead (loss path)
	ActReadmitDomain ActionKind = "readmit"  // bring a killed domain back
	ActDropFrames    ActionKind = "drop"     // lose packet-channel frames at Rate for Window
	ActDelayFrames   ActionKind = "delay"    // hold each frame Delay at Rate for Window
	ActDupFrames     ActionKind = "dup"      // duplicate frames at Rate for Window
	ActSaturate      ActionKind = "saturate" // burst-submit past admission limits
	ActCancelGroup   ActionKind = "cancel"   // cancel the sacrificial task group
)

// Action is one scheduled fault.
type Action struct {
	Kind ActionKind    `json:"kind"`
	At   time.Duration `json:"at"` // offset from campaign start
	// Domain targets kill/readmit (fabric/offload link index).
	Domain int `json:"domain,omitempty"`
	// AfterSteal delays a kill until the fabric has brokered at least
	// one steal (At then acts as the wait deadline) — the
	// kill-mid-graph scenario: the victim dies holding stolen tasks.
	AfterSteal bool `json:"after_steal,omitempty"`
	// Rate is the per-frame fault probability for drop/delay/dup.
	Rate float64 `json:"rate,omitempty"`
	// Delay is the per-frame hold for ActDelayFrames.
	Delay time.Duration `json:"delay,omitempty"`
	// Window is how long a frame-fault episode stays active.
	Window time.Duration `json:"window,omitempty"`
	// Burst is the ActSaturate submission burst size.
	Burst int `json:"burst,omitempty"`
}

// String renders one schedule line, deterministically.
func (a Action) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s @%-6s", a.Kind, a.At)
	switch a.Kind {
	case ActKillDomain:
		fmt.Fprintf(&b, " domain=%d", a.Domain)
		if a.AfterSteal {
			b.WriteString(" after-steal")
		}
	case ActReadmitDomain:
		fmt.Fprintf(&b, " domain=%d", a.Domain)
	case ActDropFrames, ActDupFrames:
		fmt.Fprintf(&b, " rate=%.2f window=%s", a.Rate, a.Window)
	case ActDelayFrames:
		fmt.Fprintf(&b, " rate=%.2f delay=%s window=%s", a.Rate, a.Delay, a.Window)
	case ActSaturate:
		fmt.Fprintf(&b, " burst=%d", a.Burst)
	}
	return b.String()
}

// Campaign is one replayable fault schedule plus the workload it runs
// against. Everything here is derived from the seed by Plan; a Campaign
// serializes losslessly, so a failure report IS a reproduction.
type Campaign struct {
	Name     string   `json:"name"`
	Seed     int64    `json:"seed"`
	Workload Workload `json:"workload"`
	Domains  int      `json:"domains"`
	Tasks    int      `json:"tasks"`              // main workload size
	Blockers int      `json:"blockers,omitempty"` // long tasks pinning domains (steal setup)
	// TaskSpin gives every fabric main task a busy time, so domains
	// killed mid-graph die holding in-flight work and the loss path is
	// actually exercised; zero keeps tasks instantaneous.
	TaskSpin time.Duration `json:"task_spin,omitempty"`
	Duration time.Duration `json:"duration"` // soft budget the schedule is laid out in
	Actions  []Action      `json:"actions"`
}

// Validate rejects a campaign whose schedule cannot be applied to its
// own topology — chiefly a kill or readmit naming a domain id that was
// never built. Run calls it before constructing any workload, so a
// hand-edited or version-skewed schedule fails fast with a classified
// error instead of silently no-opping its way to a hollow PASS.
func (c Campaign) Validate() error {
	if c.Domains < 1 {
		return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption,
			"chaos: campaign %s: %d domains, need at least 1", c.Name, c.Domains)
	}
	for i, a := range c.Actions {
		switch a.Kind {
		case ActKillDomain, ActReadmitDomain:
			if a.Domain < 0 || a.Domain >= c.Domains {
				return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption,
					"chaos: campaign %s: action %d (%s) targets domain %d, topology has domains 0..%d",
					c.Name, i, a.Kind, a.Domain, c.Domains-1)
			}
		case ActDropFrames, ActDelayFrames, ActDupFrames:
			if a.Rate < 0 || a.Rate > 1 {
				return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption,
					"chaos: campaign %s: action %d (%s) rate %v outside [0,1]",
					c.Name, i, a.Kind, a.Rate)
			}
		}
	}
	return nil
}

// Schedule renders the campaign header and every action, one per line —
// byte-identical across replays of the same seed.
func (c Campaign) Schedule() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s seed=%d workload=%s domains=%d tasks=%d",
		c.Name, c.Seed, c.Workload, c.Domains, c.Tasks)
	if c.Blockers > 0 {
		fmt.Fprintf(&b, " blockers=%d", c.Blockers)
	}
	b.WriteByte('\n')
	for _, a := range c.Actions {
		b.WriteString("  ")
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Result is one campaign's verdict and evidence.
type Result struct {
	Campaign string        `json:"campaign"`
	Seed     int64         `json:"seed"`
	Workload Workload      `json:"workload"`
	Elapsed  time.Duration `json:"elapsed"`

	Submitted int `json:"submitted"` // units of work submitted
	Settled   int `json:"settled"`   // units that reached a terminal state
	Lost      int `json:"lost"`      // Submitted - Settled: MUST be zero
	Exact     int `json:"exact"`     // units whose payload matched the closed form
	Inexact   int `json:"inexact"`   // units with a wrong payload: MUST be zero

	DomainKills    int    `json:"domain_kills"`
	Readmissions   int    `json:"readmissions"`
	FaultsInjected uint64 `json:"faults_injected"` // frames dropped/dup'd/delayed
	Steals         uint64 `json:"steals,omitempty"`
	// PeerSteals counts the subset of Steals that moved directly
	// domain-to-domain over the mesh (fabric workloads with peer
	// stealing on).
	PeerSteals uint64 `json:"peer_steals,omitempty"`
	Recovered  uint64 `json:"recovered,omitempty"` // units that survived a domain loss

	// Unclassified counts surfaced errors that carried no taxonomy
	// code: MUST be zero — every error crossing the public surface is
	// classified.
	Unclassified int `json:"unclassified"`
	// Errors is the oerrors counter growth attributable to this
	// campaign (per category and code).
	Errors oerrors.CountsSnapshot `json:"errors"`

	Failures []string `json:"failures,omitempty"`
}

// OK reports whether the campaign upheld both chaos properties and
// surfaced only classified errors.
func (r Result) OK() bool {
	return r.Lost == 0 && r.Inexact == 0 && r.Unclassified == 0 && len(r.Failures) == 0
}

// Summary renders a one-line verdict.
func (r Result) Summary() string {
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s %-8s %-7s settled %d/%d exact %d kills=%d readmits=%d faults=%d errors=%d in %v",
		verdict, r.Campaign, r.Workload, r.Settled, r.Submitted, r.Exact,
		r.DomainKills, r.Readmissions, r.FaultsInjected, r.Errors.Total, r.Elapsed.Round(time.Millisecond))
}

// fail records one assertion failure.
func (r *Result) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// checkClassified asserts a surfaced error carries a taxonomy code.
func (r *Result) checkClassified(where string, err error) {
	if err == nil {
		return
	}
	if _, ok := oerrors.CodeOf(err); !ok {
		r.Unclassified++
		r.fail("%s: unclassified error: %v", where, err)
	}
}

// frameFaults is the mutable state behind the campaign's MCAPI fault
// injector: the currently open fault window, its rates, and a seeded
// RNG for the per-frame coin flips. Data-plane (packet-channel) frames
// only — heartbeats stay clean so domain loss happens exactly when the
// schedule kills a domain, not as a side effect of message drops.
type frameFaults struct {
	mu       sync.Mutex
	rng      *rand.Rand
	drop     float64
	dup      float64
	delayP   float64
	delay    time.Duration
	until    time.Time
	injected atomic.Uint64
}

func newFrameFaults(seed int64) *frameFaults {
	return &frameFaults{rng: rand.New(rand.NewSource(seed))}
}

// window opens one fault episode.
func (ff *frameFaults) window(kind ActionKind, rate float64, delay, window time.Duration) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.drop, ff.dup, ff.delayP = 0, 0, 0
	switch kind {
	case ActDropFrames:
		ff.drop = rate
	case ActDupFrames:
		ff.dup = rate
	case ActDelayFrames:
		ff.delayP, ff.delay = rate, delay
	}
	ff.until = time.Now().Add(window)
}

// injector is the mcapi.FaultInjector for one campaign. Every injected
// fault is counted in the error taxonomy as Transport/frame_fault, so
// /v1/stats shows the campaign's wire damage alongside the errors it
// provoked.
func (ff *frameFaults) injector(class mcapi.FaultClass, _, _ mcapi.FaultTarget, _ int) mcapi.FaultDecision {
	if class != mcapi.FaultPkt {
		return mcapi.FaultDecision{}
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if time.Now().After(ff.until) {
		return mcapi.FaultDecision{}
	}
	p := ff.rng.Float64()
	var d mcapi.FaultDecision
	switch {
	case p < ff.drop:
		d = mcapi.FaultDecision{Action: mcapi.FaultDrop}
	case p < ff.drop+ff.dup:
		d = mcapi.FaultDecision{Action: mcapi.FaultDup}
	case p < ff.drop+ff.dup+ff.delayP:
		d = mcapi.FaultDecision{Action: mcapi.FaultDelay, Delay: ff.delay}
	default:
		return mcapi.FaultDecision{}
	}
	ff.injected.Add(1)
	_ = oerrors.New(oerrors.Transport, oerrors.CodeFrameFault, "chaos: injected frame fault")
	return d
}

// ops is the workload-side interface the fault driver applies actions
// through. Nil members mean the action is unsupported and skipped.
type ops struct {
	kill     func(domain int) error
	readmit  func(domain int) error
	steals   func() uint64
	saturate func(burst int)
	cancel   func()
}

// driveFaults executes the campaign's schedule against a running
// workload. It blocks until every action has been applied or stop
// closes; it returns the kill/readmit counts actually applied.
func driveFaults(c Campaign, ff *frameFaults, o ops, stop <-chan struct{}, res *Result) {
	actions := append([]Action(nil), c.Actions...)
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].At < actions[j].At })
	start := time.Now()
	for _, a := range actions {
		wait := a.At - time.Since(start)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-stop:
				return
			}
		}
		switch a.Kind {
		case ActKillDomain:
			if o.kill == nil {
				continue
			}
			if a.AfterSteal && o.steals != nil {
				// The kill-mid-graph trigger: wait for a brokered steal
				// so the victim dies holding migrated tasks. a.At is
				// already spent; allow one more window of patience.
				deadline := time.Now().Add(10 * time.Second)
				for o.steals() == 0 && time.Now().Before(deadline) {
					select {
					case <-time.After(time.Millisecond):
					case <-stop:
						return
					}
				}
			}
			if err := o.kill(a.Domain); err == nil {
				res.DomainKills++
			} else {
				res.checkClassified("kill", err)
			}
		case ActReadmitDomain:
			if o.readmit == nil {
				continue
			}
			if err := o.readmit(a.Domain); err == nil {
				res.Readmissions++
			} else {
				// Readmitting a live domain is a legitimate race with
				// the schedule; it must still classify.
				res.checkClassified("readmit", err)
			}
		case ActDropFrames, ActDelayFrames, ActDupFrames:
			ff.window(a.Kind, a.Rate, a.Delay, a.Window)
		case ActSaturate:
			if o.saturate != nil {
				o.saturate(a.Burst)
			}
		case ActCancelGroup:
			if o.cancel != nil {
				o.cancel()
			}
		}
	}
}
