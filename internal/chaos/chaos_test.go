package chaos

import (
	"strings"
	"testing"
	"time"

	"openmpmca/internal/oerrors"
)

// TestPlanDeterministic is the replay contract: the same (seed, n,
// duration) triple renders byte-identical schedules, and a different
// seed renders a different one.
func TestPlanDeterministic(t *testing.T) {
	render := func(seed int64) string {
		var b strings.Builder
		for _, c := range Plan(seed, 6, 2*time.Second) {
			b.WriteString(c.Schedule())
		}
		return b.String()
	}
	a, b := render(42), render(42)
	if a != b {
		t.Fatalf("same seed rendered different schedules:\n%s\n--- vs ---\n%s", a, b)
	}
	if render(43) == a {
		t.Error("different seeds rendered identical schedules")
	}
	// Any n >= 3 must mix every subsystem.
	for _, w := range []Workload{WorkloadFabric, WorkloadOffload, WorkloadService} {
		if !strings.Contains(a, "workload="+string(w)) {
			t.Errorf("plan is missing workload %s:\n%s", w, a)
		}
	}
}

// TestKillMidGraphCampaign is the promoted form of the fabric's
// original kill-mid-graph CI test: a domain is killed the moment it
// holds stolen tasks, and the graph must still settle byte-exact with
// the loss surfaced as classified domain_lost errors.
func TestKillMidGraphCampaign(t *testing.T) {
	r := Run(KillMidGraphCampaign())
	if !r.OK() {
		t.Fatalf("campaign failed: %v", r.Failures)
	}
	if r.DomainKills != 1 {
		t.Errorf("DomainKills = %d, want 1", r.DomainKills)
	}
	if r.Steals == 0 {
		t.Error("Steals = 0, want >= 1: the kill must land after a brokered steal")
	}
	if r.Recovered == 0 {
		t.Error("Recovered = 0, want >= 1: the victim must die holding in-flight work")
	}
	if r.Errors.ByCode[oerrors.CodeDomainLost] == 0 {
		t.Errorf("no %s errors surfaced; errors = %+v", oerrors.CodeDomainLost, r.Errors)
	}
	if r.Lost != 0 || r.Inexact != 0 {
		t.Errorf("lost=%d inexact=%d, want 0/0", r.Lost, r.Inexact)
	}
}

// TestValidateRejectsPhantomDomain is the fail-fast contract: a
// schedule naming a domain id outside the campaign's own topology must
// fail the campaign immediately with a classified error — not silently
// no-op its way to a hollow PASS — and Run must never build a workload
// for it.
func TestValidateRejectsPhantomDomain(t *testing.T) {
	c := KillMidGraphCampaign()
	c.Actions = append(c.Actions, Action{Kind: ActReadmitDomain, At: time.Second, Domain: c.Domains + 3})
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted a phantom domain id")
	} else if _, ok := oerrors.CodeOf(err); !ok {
		t.Fatalf("Validate error unclassified: %v", err)
	}
	start := time.Now()
	r := Run(c)
	if r.OK() {
		t.Fatal("Run passed a campaign with a phantom domain id")
	}
	if r.Unclassified != 0 {
		t.Errorf("Unclassified = %d, want 0", r.Unclassified)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Run took %v for an invalid campaign, want fail-fast", elapsed)
	}
	if r.Submitted != 0 {
		t.Errorf("Submitted = %d: workload built for an invalid campaign", r.Submitted)
	}
}

// TestMeshCampaigns replays the fixed 8-domain peer-steal scenarios:
// kill-victim-mid-yield must settle byte-exact having actually exercised
// direct mesh steals, and dead-peer-channel must settle despite its
// drop window starving mesh links.
func TestMeshCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault campaigns")
	}
	for _, c := range MeshCampaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			r := Run(c)
			if !r.OK() {
				t.Fatalf("campaign %s failed: %v", c.Name, r.Failures)
			}
			if r.Lost != 0 || r.Inexact != 0 {
				t.Errorf("lost=%d inexact=%d, want 0/0", r.Lost, r.Inexact)
			}
			if c.Name == "kill-victim-mid-yield" {
				if r.PeerSteals == 0 {
					t.Errorf("PeerSteals = 0 (Steals = %d), want direct mesh migrations", r.Steals)
				}
				if r.DomainKills != 1 {
					t.Errorf("DomainKills = %d, want 1", r.DomainKills)
				}
			}
		})
	}
}

// TestMixedCampaignsSettle runs one short planned campaign per workload
// — each composing frame faults, a kill/readmit pair and (where the
// workload has admission) saturation and cancellation — and asserts the
// chaos properties hold for all three subsystems.
func TestMixedCampaignsSettle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault campaigns")
	}
	for _, c := range Plan(1, 3, 600*time.Millisecond) {
		c := c
		t.Run(string(c.Workload), func(t *testing.T) {
			r := Run(c)
			if !r.OK() {
				t.Fatalf("campaign %s (seed %d) failed: %v", c.Name, c.Seed, r.Failures)
			}
			if r.Submitted == 0 || r.Settled != r.Submitted {
				t.Errorf("settled %d/%d, want all", r.Settled, r.Submitted)
			}
		})
	}
}
