package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"syscall"
	"time"

	"openmpmca/internal/jobservice"
)

// CrashCampaign is the durability property test: a real server process
// with a durable state dir is loaded over HTTP, SIGKILLed mid-flight —
// no graceful shutdown, no flush — restarted over the same state dir,
// and every job accepted before the kill must still settle with its
// byte-exact closed-form result. Kills counts kill/restart cycles; a
// final, graceful life drains whatever the last kill left behind.
//
// Unlike the in-process campaigns, the server is an external binary
// (ServeBin) driven over real sockets, so the kill is a genuine
// process death: the only state that survives is what the write-ahead
// journal fsynced before each HTTP 202.
type CrashCampaign struct {
	Name     string   `json:"name"`
	Seed     int64    `json:"seed"`
	ServeBin string   `json:"serve_bin"` // server binary: accepts -state-dir/-addr, prints the readiness line
	Args     []string `json:"args,omitempty"`
	Env      []string `json:"env,omitempty"` // extra environment for every life
	StateDir string   `json:"state_dir"`
	// Jobs is the closed-form load submitted per life (sum/fib/echo and
	// parallel-for vecsum, expectations computed client-side).
	Jobs int `json:"jobs"`
	// Spins is the count of long spin jobs submitted immediately before
	// each kill, guaranteeing work is queued or mid-flight when the
	// process dies.
	Spins   int           `json:"spins"`
	SpinDur time.Duration `json:"spin_dur"`
	Kills   int           `json:"kills"`
}

// withCrashDefaults fills zero fields.
func (c CrashCampaign) withCrashDefaults() CrashCampaign {
	if c.Name == "" {
		c.Name = "crash"
	}
	if c.Jobs <= 0 {
		c.Jobs = 16
	}
	if c.Spins <= 0 {
		c.Spins = 4
	}
	if c.SpinDur <= 0 {
		c.SpinDur = 500 * time.Millisecond
	}
	if c.Kills <= 0 {
		c.Kills = 1
	}
	return c
}

// readyLine matches the server's stable readiness line.
var readyLine = regexp.MustCompile(`listening on (https?://\S+)`)

// serverProc is one life of the server under test.
type serverProc struct {
	cmd    *exec.Cmd
	base   string // http://host:port parsed from the readiness line
	stderr *bytes.Buffer
}

// startServer boots one life and waits for the readiness line.
func startServer(c CrashCampaign) (*serverProc, error) {
	args := append([]string{"-state-dir", c.StateDir, "-addr", "127.0.0.1:0"}, c.Args...)
	cmd := exec.Command(c.ServeBin, args...)
	cmd.Env = append(os.Environ(), c.Env...)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &serverProc{cmd: cmd, stderr: &errBuf}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if m := readyLine.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case ready <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case p.base = <-ready:
		return p, nil
	case <-time.After(15 * time.Second):
		p.kill()
		return nil, fmt.Errorf("server never printed its readiness line; stderr:\n%s", errBuf.String())
	}
}

// kill is the crash: SIGKILL, no shutdown, no flush.
func (p *serverProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	_, _ = p.cmd.Process.Wait()
}

// shutdown ends the final life gracefully (SIGTERM, then SIGKILL if it
// lingers), so the campaign does not leak processes.
func (p *serverProc) shutdown() {
	if p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = p.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
}

// get/post drive the server's JSON API over the real socket.
func (p *serverProc) do(method, path, key string, body any) (int, envelope, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, envelope{}, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, p.base+path, rd)
	if err != nil {
		return 0, envelope{}, err
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, envelope{}, err
	}
	defer resp.Body.Close()
	var env envelope
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, envelope{}, err
	}
	_ = json.Unmarshal(data, &env)
	return resp.StatusCode, env, nil
}

// crashJob is one job the campaign tracks across process lives.
type crashJob struct {
	id     string
	name   string
	expect []byte
}

// RunCrash executes one crash-restart campaign. The admin demo tenant
// (alice) drives everything, which is what ServeBin installs when run
// without tenant flags.
func RunCrash(c CrashCampaign) (res Result) {
	c = c.withCrashDefaults()
	res = Result{Campaign: c.Name, Seed: c.Seed, Workload: "crash"}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	if c.ServeBin == "" || c.StateDir == "" {
		res.fail("crash campaign needs ServeBin and StateDir")
		return res
	}
	const key = "key-alice"

	var tracked []crashJob
	submit := func(p *serverProc, name string, body map[string]any, expect []byte) {
		code, env, err := p.do(http.MethodPost, "/v1/jobs", key, body)
		if err != nil {
			res.fail("submit %s: %v", name, err)
			return
		}
		if code != http.StatusAccepted {
			res.fail("submit %s: HTTP %d %s", name, code, env.Error)
			return
		}
		var view struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(env.Metadata, &view); err != nil || view.ID == "" {
			res.fail("submit %s: bad view: %v", name, err)
			return
		}
		res.Submitted++
		tracked = append(tracked, crashJob{id: view.ID, name: name, expect: expect})
	}

	// load submits the per-life mix: closed-form quick jobs, then the
	// spin jobs that are guaranteed to be unsettled at the kill.
	load := func(p *serverProc, life int) {
		for i := 0; i < c.Jobs; i++ {
			k := int(c.Seed) + life*c.Jobs + i
			switch i % 4 {
			case 0, 1:
				lo, hi := int64(k)*5, int64(k)*5+int64(60+k%31)
				submit(p, "sum", map[string]any{"job": jobservice.JobSum, "arg": jobservice.I64Pair(lo, hi)},
					jobservice.SumExpected(lo, hi))
			case 2:
				n := uint64(12 + k%50)
				submit(p, "fib", map[string]any{"job": jobservice.JobFib, "arg": jobservice.U64(n)},
					jobservice.FibExpected(n))
			default:
				n := 10000 + k*311
				submit(p, "vecsum", map[string]any{"job": jobservice.KernelVecSum, "kind": "parallel_for", "n": n},
					jobservice.VecSumExpected(n))
			}
		}
		arg := jobservice.U64(uint64(c.SpinDur))
		for i := 0; i < c.Spins; i++ {
			submit(p, "spin", map[string]any{"job": jobservice.JobSpin, "arg": arg}, arg)
		}
	}

	// Kill lives: load, then die with the spins still in flight.
	for life := 0; life < c.Kills; life++ {
		p, err := startServer(c)
		if err != nil {
			res.fail("life %d: %v", life, err)
			return res
		}
		load(p, life)
		p.kill()
	}

	// The final life replays the journal and must drain everything.
	p, err := startServer(c)
	if err != nil {
		res.fail("final life: %v", err)
		return res
	}
	defer p.shutdown()

	deadline := time.Now().Add(drainBudget)
	pending := append([]crashJob(nil), tracked...)
	for len(pending) > 0 && time.Now().Before(deadline) {
		var still []crashJob
		for _, j := range pending {
			code, env, err := p.do(http.MethodGet, "/v1/jobs/"+j.id, key, nil)
			if err != nil {
				res.fail("poll %s: %v", j.id, err)
				continue
			}
			if code != http.StatusOK {
				// A job accepted (202 + fsync) before the kill that the
				// restarted server does not know about is LOST.
				res.Lost++
				res.fail("%s %s: lost across restart: HTTP %d %s", j.name, j.id, code, env.Error)
				continue
			}
			var view struct {
				Status    string `json:"status"`
				Result    []byte `json:"result"`
				Error     string `json:"error"`
				Recovered bool   `json:"recovered"`
			}
			if err := json.Unmarshal(env.Metadata, &view); err != nil {
				res.fail("poll %s: bad view: %v", j.id, err)
				continue
			}
			switch view.Status {
			case jobservice.StatusSucceeded:
				res.Settled++
				if view.Recovered {
					res.Recovered++
				}
				if bytes.Equal(view.Result, j.expect) {
					res.Exact++
				} else {
					res.Inexact++
					res.fail("%s %s: payload %x, want %x", j.name, j.id, view.Result, j.expect)
				}
			case jobservice.StatusFailed, jobservice.StatusCanceled:
				// Every builtin is deterministic and nothing cancels
				// here: any terminal error means the replay corrupted
				// work.
				res.Settled++
				res.fail("%s %s: %s: %s", j.name, j.id, view.Status, view.Error)
			default:
				still = append(still, j)
			}
		}
		pending = still
		if len(pending) > 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	for _, j := range pending {
		res.Lost++
		res.fail("%s %s: never settled after restart", j.name, j.id)
	}

	// The spins could not have finished before their kill, so the final
	// life must have replayed work — and the stats surface must say so.
	if res.Recovered == 0 {
		res.fail("no job was flagged recovered: the kills landed on an idle server")
	}
	code, env, err := p.do(http.MethodGet, "/v1/stats", key, nil)
	if err != nil || code != http.StatusOK {
		res.fail("/v1/stats: HTTP %d err=%v", code, err)
		return res
	}
	var snap struct {
		Service *struct {
			Replayed uint64 `json:"replayed"`
		} `json:"service"`
		Durable *json.RawMessage `json:"durable"`
	}
	if err := json.Unmarshal(env.Metadata, &snap); err != nil || snap.Service == nil {
		res.fail("/v1/stats: bad snapshot: %v", err)
		return res
	}
	if snap.Durable == nil {
		res.fail("/v1/stats: no durable section on a -state-dir server")
	}
	if snap.Service.Replayed == 0 {
		res.fail("/v1/stats: replayed = 0 after %d kill(s) with spins in flight", c.Kills)
	}
	return res
}
