package chaos

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"openmpmca/internal/jobservice"
	"openmpmca/internal/offload"
	"openmpmca/internal/taskfabric"
)

// crashHelperEnv marks a re-exec of the test binary as the server under
// test: TestMain diverts to crashHelperMain before any test runs, so
// RunCrash gets a real, separately-killable process without needing a
// prebuilt ompmca-serve on disk.
const crashHelperEnv = "OMPMCA_CRASH_HELPER"

func TestMain(m *testing.M) {
	if os.Getenv(crashHelperEnv) == "1" {
		crashHelperMain()
		return
	}
	os.Exit(m.Run())
}

// crashHelperMain is a miniature ompmca-serve: demo tenants, a durable
// state dir, and the same stable readiness line. It never shuts down
// gracefully — the whole point is to be SIGKILLed.
func crashHelperMain() {
	fs := flag.NewFlagSet("crash-helper", flag.ExitOnError)
	stateDir := fs.String("state-dir", "", "durable store dir")
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	_ = fs.Parse(os.Args[1:])
	if *stateDir == "" {
		log.Fatal("crash helper: -state-dir required")
	}

	jobs := taskfabric.NewRegistry()
	if err := jobservice.RegisterBuiltinJobs(jobs); err != nil {
		log.Fatal(err)
	}
	fab, err := taskfabric.NewFabric(jobs,
		taskfabric.WithDomains(2),
		taskfabric.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	kernels := offload.NewRegistry()
	if err := jobservice.RegisterBuiltinKernels(kernels); err != nil {
		log.Fatal(err)
	}
	off, err := offload.New(kernels,
		offload.WithDomains(2),
		offload.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := jobservice.New(fab, jobs,
		jobservice.WithTenants(jobservice.DemoTenants()...),
		jobservice.WithOffloader(off, kernels),
		jobservice.WithStateDir(*stateDir),
	)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ompmca-serve: listening on http://%s (2 fabric domains, 2 offload domains)\n", ln.Addr())
	log.Fatal(http.Serve(ln, srv))
}

// TestCrashRestartCampaign is the durability property under a genuine
// SIGKILL: a loaded server process dies without flushing anything,
// restarts over the same state dir, and every job accepted before the
// kill settles with its byte-exact result.
func TestCrashRestartCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second crash-restart campaign")
	}
	r := RunCrash(CrashCampaign{
		Name:     "crash-restart",
		Seed:     42,
		ServeBin: os.Args[0],
		Env:      []string{crashHelperEnv + "=1"},
		StateDir: t.TempDir(),
		Jobs:     12,
		Spins:    4,
		SpinDur:  500 * time.Millisecond,
		Kills:    2,
	})
	t.Log(r.Summary())
	if !r.OK() {
		t.Fatalf("crash campaign failed: %v", r.Failures)
	}
	if r.Lost != 0 || r.Inexact != 0 {
		t.Fatalf("lost=%d inexact=%d, want 0/0", r.Lost, r.Inexact)
	}
	if r.Settled != r.Submitted {
		t.Fatalf("settled %d/%d, want all", r.Settled, r.Submitted)
	}
	if r.Recovered == 0 {
		t.Fatal("Recovered = 0: no job survived a SIGKILL, the kills landed on an idle server")
	}
}
