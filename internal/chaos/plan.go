package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Plan derives n campaigns from one seed. The derivation consumes the
// RNG in a fixed order, so the same (seed, n, duration) triple always
// yields byte-identical schedules — replaying a failed run is
// `ompmca-chaos -seed <seed>`. Workloads rotate fabric → offload →
// service so any n >= 3 mixes every subsystem, and every campaign
// composes at least one domain kill, one readmission and one
// frame-fault window; fabric and service campaigns add saturation
// bursts and group cancellation.
func Plan(seed int64, n int, duration time.Duration) []Campaign {
	if n < 1 {
		n = 1
	}
	if duration <= 0 {
		duration = 2 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	workloads := []Workload{WorkloadFabric, WorkloadOffload, WorkloadService}
	out := make([]Campaign, 0, n)
	for i := 0; i < n; i++ {
		c := Campaign{
			Name:     fmt.Sprintf("c%02d", i),
			Seed:     rng.Int63(),
			Workload: workloads[i%len(workloads)],
			Domains:  2 + rng.Intn(2), // 2..3
			Duration: duration,
		}
		switch c.Workload {
		case WorkloadFabric:
			c.Tasks = 24 + rng.Intn(25) // 24..48
			c.Blockers = rng.Intn(3)    // 0..2 long tasks pinning domains
			if c.Blockers > 0 {
				// Steal setups get busy tasks so kills catch work in
				// flight.
				c.TaskSpin = time.Duration(5+rng.Intn(16)) * time.Millisecond
			}
		case WorkloadOffload:
			c.Tasks = 6 + rng.Intn(7) // 6..12 parallel-for regions
		case WorkloadService:
			c.Tasks = 16 + rng.Intn(17) // 16..32 HTTP jobs
		}

		// Lay faults out inside the first ~70% of the budget so the
		// drain phase can settle everything the faults disturbed.
		at := func(lo, hi float64) time.Duration {
			f := lo + rng.Float64()*(hi-lo)
			return time.Duration(f * float64(duration))
		}

		// One frame-fault window early...
		kinds := []ActionKind{ActDropFrames, ActDelayFrames, ActDupFrames}
		ffk := kinds[rng.Intn(len(kinds))]
		ffa := Action{
			Kind:   ffk,
			At:     at(0.05, 0.2),
			Rate:   0.05 + rng.Float64()*0.20,
			Window: time.Duration((0.2 + rng.Float64()*0.3) * float64(duration)),
		}
		if ffk == ActDelayFrames {
			ffa.Delay = time.Duration(200+rng.Intn(1800)) * time.Microsecond
		}
		c.Actions = append(c.Actions, ffa)

		// ...a kill + readmit pair in the middle...
		victim := rng.Intn(c.Domains)
		c.Actions = append(c.Actions,
			Action{Kind: ActKillDomain, At: at(0.25, 0.4), Domain: victim},
			Action{Kind: ActReadmitDomain, At: at(0.5, 0.65), Domain: victim},
		)

		// ...a second frame-fault window late, over a different kind...
		ffk2 := kinds[rng.Intn(len(kinds))]
		ffa2 := Action{
			Kind:   ffk2,
			At:     at(0.45, 0.6),
			Rate:   0.05 + rng.Float64()*0.15,
			Window: time.Duration((0.1 + rng.Float64()*0.2) * float64(duration)),
		}
		if ffk2 == ActDelayFrames {
			ffa2.Delay = time.Duration(200+rng.Intn(1800)) * time.Microsecond
		}
		c.Actions = append(c.Actions, ffa2)

		// ...and admission/cancel pressure where the workload has it.
		if c.Workload != WorkloadOffload {
			c.Actions = append(c.Actions,
				Action{Kind: ActSaturate, At: at(0.2, 0.5), Burst: 8 + rng.Intn(17)},
				Action{Kind: ActCancelGroup, At: at(0.3, 0.6)},
			)
		}
		out = append(out, c)
	}
	return out
}

// KillMidGraphCampaign is the promoted form of the fabric's original
// kill-mid-graph CI test: three serial worker domains, two long
// blockers backing up domains 0 and 1 so the idle third domain steals,
// then domain 2 killed the moment a steal is brokered — it dies holding
// migrated tasks, and the graph must still settle byte-exact with
// exactly one domain lost. Seed 42, fixed forever; chaos CI replays it
// every run.
func KillMidGraphCampaign() Campaign {
	return Campaign{
		Name:     "kill-mid-graph",
		Seed:     42,
		Workload: WorkloadFabric,
		Domains:  3,
		Tasks:    20,
		Blockers: 2,
		TaskSpin: 25 * time.Millisecond,
		Duration: 4 * time.Second,
		Actions: []Action{
			{Kind: ActKillDomain, At: 50 * time.Millisecond, Domain: 2, AfterSteal: true},
		},
	}
}

// KillVictimMidYieldCampaign exercises the peer-steal mesh's nastiest
// interleaving at full board width: eight serial worker domains, six
// blockers backing most of them up so idle domains steal directly over
// the mesh, then a loaded domain killed the moment the first steal
// lands — with peer stealing on that steal is a direct mesh migration,
// so the victim can die holding tasks it canceled but never finished
// yielding. Those tasks die with it; the host's flights still point at
// the corpse, heartbeat loss reclaims them, and the graph must settle
// byte-exact with zero lost jobs. Seed 42, fixed forever; chaos CI
// replays it every run.
func KillVictimMidYieldCampaign() Campaign {
	return Campaign{
		Name:     "kill-victim-mid-yield",
		Seed:     42,
		Workload: WorkloadFabric,
		Domains:  8,
		Tasks:    32,
		Blockers: 6,
		TaskSpin: 15 * time.Millisecond,
		Duration: 4 * time.Second,
		Actions: []Action{
			{Kind: ActKillDomain, At: 30 * time.Millisecond, Domain: 0, AfterSteal: true},
			{Kind: ActReadmitDomain, At: 2 * time.Second, Domain: 0},
		},
	}
}

// DeadPeerChannelCampaign starves the mesh instead of killing domains:
// a long high-rate drop window eats peer-steal requests and yields
// mid-flight, so thieves time out on unanswered peers and walk the
// fallback ladder down to host brokerage — while a mid-window kill (of
// a domain whose mesh links are equally lossy) exercises loss recovery
// under the same damage. Zero lost jobs, byte-exact, at eight domains.
// Seed 42, fixed forever.
func DeadPeerChannelCampaign() Campaign {
	return Campaign{
		Name:     "dead-peer-channel",
		Seed:     42,
		Workload: WorkloadFabric,
		Domains:  8,
		Tasks:    32,
		Blockers: 5,
		TaskSpin: 10 * time.Millisecond,
		Duration: 4 * time.Second,
		Actions: []Action{
			{Kind: ActDropFrames, At: 10 * time.Millisecond, Rate: 0.6, Window: 1500 * time.Millisecond},
			{Kind: ActKillDomain, At: 400 * time.Millisecond, Domain: 3},
			{Kind: ActReadmitDomain, At: 2 * time.Second, Domain: 3},
		},
	}
}

// MeshCampaigns bundles the fixed peer-steal scenarios chaos CI replays
// alongside KillMidGraphCampaign.
func MeshCampaigns() []Campaign {
	return []Campaign{KillVictimMidYieldCampaign(), DeadPeerChannelCampaign()}
}
