package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"openmpmca/internal/jobservice"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/oerrors"
	"openmpmca/internal/offload"
	"openmpmca/internal/spans"
	"openmpmca/internal/taskfabric"
)

// drainBudget bounds how long a campaign waits for submitted work to
// settle after the schedule has run; work still unsettled past it is
// LOST and fails the campaign.
const drainBudget = 30 * time.Second

// Run executes one campaign: build the workload, install the MCAPI
// fault injector, drive the schedule, drain, verify. It installs
// process-global fault state, so campaigns must run one at a time.
func Run(c Campaign) Result {
	res := Result{Campaign: c.Name, Seed: c.Seed, Workload: c.Workload}
	if err := c.Validate(); err != nil {
		res.checkClassified("validate", err)
		res.fail("invalid campaign: %v", err)
		return res
	}
	before := oerrors.Counts()
	ff := newFrameFaults(c.Seed)
	mcapi.SetFaultInjector(ff.injector)
	defer mcapi.SetFaultInjector(nil)
	start := time.Now()
	switch c.Workload {
	case WorkloadFabric:
		runFabric(c, ff, &res)
	case WorkloadOffload:
		runOffload(c, ff, &res)
	case WorkloadService:
		runService(c, ff, &res)
	default:
		res.fail("unknown workload %q", c.Workload)
	}
	res.Elapsed = time.Since(start)
	res.FaultsInjected = ff.injected.Load()
	res.Errors = oerrors.Counts().Delta(before)
	return res
}

// unit is one verifiable piece of submitted work.
type unit struct {
	where  string
	expect []byte // exact payload a successful settle must carry
	handle *taskfabric.TaskHandle
	// sacrificial marks cancel-group members: settling with a
	// classified error is their expected outcome.
	sacrificial bool
}

// settleUnit verifies one fabric unit's terminal state.
func settleUnit(u unit, res *Result) {
	payload, err := u.handle.Wait(0)
	if err != nil && !errorsSettled(err) {
		// Not settled at all.
		res.Lost++
		res.fail("%s: never settled", u.where)
		return
	}
	res.Settled++
	switch {
	case err == nil || errors.Is(err, taskfabric.ErrDomainLost):
		if errors.Is(err, taskfabric.ErrDomainLost) {
			res.checkClassified(u.where, err)
		}
		if bytes.Equal(payload, u.expect) {
			res.Exact++
		} else {
			res.Inexact++
			res.fail("%s: payload %x, want %x", u.where, payload, u.expect)
		}
	case u.sacrificial:
		// Canceled (or torn down) on purpose; any classified error is
		// a legitimate settle.
		res.checkClassified(u.where, err)
		res.Exact++
	default:
		res.checkClassified(u.where, err)
		res.fail("%s: failed: %v", u.where, err)
	}
}

// errorsSettled distinguishes "settled with an error" from "still
// pending": a zero-timeout Wait on an unsettled task returns
// ErrTimeout.
func errorsSettled(err error) bool {
	return !errors.Is(err, taskfabric.ErrTimeout)
}

// ---------------------------------------------------------------------------
// Fabric workload.

func runFabric(c Campaign, ff *frameFaults, res *Result) {
	reg := taskfabric.NewRegistry()
	if err := jobservice.RegisterBuiltinJobs(reg); err != nil {
		res.fail("registry: %v", err)
		return
	}
	deadline := 600 * time.Millisecond
	opts := []taskfabric.Option{
		taskfabric.WithDomains(c.Domains),
		taskfabric.WithHeartbeat(5 * time.Millisecond), // lost after 40ms
		taskfabric.WithInflight(16),
	}
	if c.Blockers > 0 {
		// The steal setup: serial domain pools let blockers back up a
		// queue, and a generous deadline keeps re-dispatch from masking
		// the loss path (the kill-mid-graph contract).
		opts = append(opts, taskfabric.WithDomainWorkers(1))
		deadline = 5 * time.Second
	}
	sp := spans.NewExporter(0)
	opts = append(opts, taskfabric.WithTaskDeadline(deadline), taskfabric.WithEventSink(sp))
	f, err := taskfabric.NewFabric(reg, opts...)
	if err != nil {
		res.fail("fabric: %v", err)
		return
	}
	defer f.Close()

	var mu sync.Mutex // guards units: saturate bursts race the submitter
	var units []unit
	g := f.NewGroup()
	submit := func(grp *taskfabric.Group, job string, arg, expect []byte, sacrificial bool) {
		h, serr := grp.SubmitJob(job, arg)
		if serr != nil {
			res.checkClassified("submit "+job, serr)
			res.fail("submit %s: %v", job, serr)
			return
		}
		mu.Lock()
		res.Submitted++
		units = append(units, unit{
			where:       fmt.Sprintf("%s task %d", job, h.ID()),
			expect:      expect,
			handle:      h,
			sacrificial: sacrificial,
		})
		mu.Unlock()
	}

	// Blockers first: long spins that pin serial domains and let queues
	// back up behind them.
	for i := 0; i < c.Blockers; i++ {
		arg := jobservice.U64(uint64(400 * time.Millisecond))
		submit(g, jobservice.JobSpin, arg, arg, false)
	}
	// The main graph: sum tasks with closed-form expectations, a fib
	// and an echo mixed in. With TaskSpin set, half the tasks are busy
	// spins instead, so a scheduled kill catches work in flight.
	for i := 0; i < c.Tasks; i++ {
		if c.TaskSpin > 0 && i%2 == 0 {
			arg := jobservice.U64(uint64(c.TaskSpin) + uint64(i%7)*uint64(time.Millisecond))
			submit(g, jobservice.JobSpin, arg, arg, false)
			continue
		}
		switch i % 4 {
		case 0, 1:
			lo, hi := int64(i)*3, int64(i)*3+int64(40+i%23)
			submit(g, jobservice.JobSum, jobservice.I64Pair(lo, hi), jobservice.SumExpected(lo, hi), false)
		case 2:
			n := uint64(10 + i%60)
			submit(g, jobservice.JobFib, jobservice.U64(n), jobservice.FibExpected(n), false)
		default:
			arg := jobservice.U64(uint64(i) * 7919)
			submit(g, jobservice.JobEcho, arg, arg, false)
		}
	}

	// Sacrificial group for ActCancelGroup.
	var sacG *taskfabric.Group
	for _, a := range c.Actions {
		if a.Kind == ActCancelGroup {
			sacG = f.NewGroup()
			for i := 0; i < 6; i++ {
				arg := jobservice.U64(uint64(300 * time.Millisecond))
				submit(sacG, jobservice.JobSpin, arg, arg, true)
			}
			break
		}
	}

	stop := make(chan struct{})
	defer close(stop)
	done := make(chan struct{})
	go func() {
		defer close(done)
		driveFaults(c, ff, ops{
			kill:    f.KillDomain,
			readmit: f.ReadmitDomain,
			steals:  func() uint64 { return f.Stats().Steals },
			saturate: func(burst int) {
				for i := 0; i < burst; i++ {
					arg := jobservice.U64(uint64(i)*31 + 1)
					submit(g, jobservice.JobEcho, arg, arg, false)
				}
			},
			cancel: func() {
				if sacG != nil {
					sacG.Cancel()
				}
			},
		}, stop, res)
	}()
	<-done

	if werr := g.WaitAll(drainBudget); werr != nil && !errors.Is(werr, taskfabric.ErrDomainLost) {
		res.checkClassified("WaitAll", werr)
		res.fail("WaitAll: %v", werr)
	} else if werr != nil {
		res.checkClassified("WaitAll", werr)
	}
	if sacG != nil {
		// Canceled members settle immediately; uncancelled spins need
		// their sleep to elapse.
		if werr := sacG.WaitAll(drainBudget); werr != nil {
			res.checkClassified("sacrificial WaitAll", werr)
			if !errors.Is(werr, taskfabric.ErrCanceled) && !errors.Is(werr, taskfabric.ErrDomainLost) {
				res.fail("sacrificial WaitAll: %v", werr)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, u := range units {
		settleUnit(u, res)
	}
	st := f.Stats()
	res.Steals = st.Steals
	res.PeerSteals = st.PeerSteals
	res.Recovered = sp.Stats().Recovered
	if st.DomainsLost < uint64(res.DomainKills) {
		res.fail("DomainsLost = %d < kills applied %d", st.DomainsLost, res.DomainKills)
	}
}

// ---------------------------------------------------------------------------
// Offload workload.

func runOffload(c Campaign, ff *frameFaults, res *Result) {
	reg := offload.NewRegistry()
	if err := jobservice.RegisterBuiltinKernels(reg); err != nil {
		res.fail("registry: %v", err)
		return
	}
	sp := spans.NewExporter(0)
	o, err := offload.New(reg,
		offload.WithDomains(c.Domains),
		offload.WithHeartbeat(5*time.Millisecond),
		offload.WithChunkDeadline(200*time.Millisecond),
		offload.WithRetries(2),
		offload.WithChunkIters(2048),
		offload.WithEventSink(sp),
	)
	if err != nil {
		res.fail("offload: %v", err)
		return
	}
	defer o.Close()

	stop := make(chan struct{})
	defer close(stop)
	done := make(chan struct{})
	go func() {
		defer close(done)
		driveFaults(c, ff, ops{kill: o.KillDomain, readmit: o.ReadmitDomain}, stop, res)
	}()

	// Regions run back to back while the schedule fires; each result is
	// compared against the closed form. A region that survives a domain
	// loss reports ErrDomainLost alongside the exact result.
	for i := 0; i < c.Tasks; i++ {
		n := 20000 + i*3777
		res.Submitted++
		got, perr := o.ParallelFor(jobservice.KernelVecSum, n, nil)
		res.Settled++
		if perr != nil {
			res.checkClassified("region", perr)
			if !errors.Is(perr, offload.ErrDomainLost) {
				res.fail("region %d: %v", i, perr)
				continue
			}
		}
		if bytes.Equal(got, jobservice.VecSumExpected(n)) {
			res.Exact++
		} else {
			res.Inexact++
			res.fail("region %d (n=%d): payload %x, want %x", i, n, got, jobservice.VecSumExpected(n))
		}
	}
	<-done
	res.Recovered = sp.Stats().Recovered
}

// ---------------------------------------------------------------------------
// Service workload (full HTTP stack).

// envelope mirrors the service's JSON wrapper.
type envelope struct {
	Type       string          `json:"type"`
	StatusCode int             `json:"status_code"`
	Metadata   json.RawMessage `json:"metadata"`
	Error      string          `json:"error"`
	ErrorCode  int             `json:"error_code"`
}

// httpClient drives a jobservice.Server in-process.
type httpClient struct{ srv *jobservice.Server }

func (hc httpClient) do(method, path, key string, body any) (int, envelope) {
	var rd *bytes.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	rec := httptest.NewRecorder()
	hc.srv.ServeHTTP(rec, req)
	var env envelope
	_ = json.Unmarshal(rec.Body.Bytes(), &env)
	return rec.Code, env
}

// serviceJob tracks one HTTP-submitted job to settlement.
type serviceJob struct {
	id     string
	name   string
	key    string // submitting tenant's API key: job views are tenant-scoped
	expect []byte
	// cancelable jobs live in the sacrificial group: status "canceled"
	// is a legitimate terminal state for them.
	cancelable bool
}

const (
	chaosKey = "chaos-key" // admin tenant: the campaign driver
	meekKey  = "meek-key"  // quota-4 tenant: the saturation target
)

func runService(c Campaign, ff *frameFaults, res *Result) {
	jobs := taskfabric.NewRegistry()
	if err := jobservice.RegisterBuiltinJobs(jobs); err != nil {
		res.fail("jobs: %v", err)
		return
	}
	kernels := offload.NewRegistry()
	if err := jobservice.RegisterBuiltinKernels(kernels); err != nil {
		res.fail("kernels: %v", err)
		return
	}
	sp := spans.NewExporter(0)
	fab, err := taskfabric.NewFabric(jobs,
		taskfabric.WithDomains(c.Domains),
		taskfabric.WithHeartbeat(5*time.Millisecond),
		taskfabric.WithTaskDeadline(600*time.Millisecond),
		taskfabric.WithEventSink(sp),
	)
	if err != nil {
		res.fail("fabric: %v", err)
		return
	}
	defer fab.Close()
	off, err := offload.New(kernels,
		offload.WithDomains(2),
		offload.WithHeartbeat(5*time.Millisecond),
		offload.WithChunkDeadline(200*time.Millisecond),
		offload.WithEventSink(sp),
	)
	if err != nil {
		res.fail("offload: %v", err)
		return
	}
	defer off.Close()
	srv, err := jobservice.New(fab, jobs,
		jobservice.WithOffloader(off, kernels),
		jobservice.WithSpans(sp),
		jobservice.WithTenants(
			jobservice.Tenant{Name: "chaos", Key: chaosKey, Quota: 256,
				Priority: jobservice.PriorityHigh, Admin: true},
			jobservice.Tenant{Name: "meek", Key: meekKey, Quota: 4,
				Priority: jobservice.PriorityLow},
		),
	)
	if err != nil {
		res.fail("service: %v", err)
		return
	}
	defer srv.Close()
	hc := httpClient{srv: srv}

	var mu sync.Mutex
	var tracked []serviceJob
	submit := func(key string, body map[string]any, name string, expect []byte, cancelable bool) bool {
		code, env := hc.do(http.MethodPost, "/v1/jobs", key, body)
		if code == http.StatusTooManyRequests {
			return false // quota refusal: the saturation outcome, counted server-side
		}
		if code != http.StatusAccepted {
			res.fail("submit %s: HTTP %d %s", name, code, env.Error)
			return false
		}
		var view struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(env.Metadata, &view); err != nil || view.ID == "" {
			res.fail("submit %s: bad view: %v", name, err)
			return false
		}
		mu.Lock()
		res.Submitted++
		tracked = append(tracked, serviceJob{id: view.ID, name: name, key: key, expect: expect, cancelable: cancelable})
		mu.Unlock()
		return true
	}

	// Sacrificial group, created before the schedule runs so the
	// cancel action has a target.
	var sacGroup string
	for _, a := range c.Actions {
		if a.Kind != ActCancelGroup {
			continue
		}
		code, env := hc.do(http.MethodPost, "/v1/groups", chaosKey, nil)
		if code != http.StatusCreated && code != http.StatusOK && code != http.StatusAccepted {
			res.fail("group create: HTTP %d %s", code, env.Error)
			break
		}
		var gv struct {
			ID string `json:"id"`
		}
		_ = json.Unmarshal(env.Metadata, &gv)
		sacGroup = gv.ID
		for i := 0; i < 4; i++ {
			arg := jobservice.U64(uint64(300 * time.Millisecond))
			submit(chaosKey, map[string]any{"job": jobservice.JobSpin, "arg": arg, "group": sacGroup},
				"spin(group)", arg, true)
		}
		break
	}

	// The main load: task jobs with closed-form results plus
	// parallel-for regions through the offloader.
	for i := 0; i < c.Tasks; i++ {
		switch i % 4 {
		case 0, 1:
			lo, hi := int64(i)*5, int64(i)*5+int64(60+i%31)
			submit(chaosKey, map[string]any{"job": jobservice.JobSum, "arg": jobservice.I64Pair(lo, hi)},
				"sum", jobservice.SumExpected(lo, hi), false)
		case 2:
			n := uint64(12 + i%50)
			submit(chaosKey, map[string]any{"job": jobservice.JobFib, "arg": jobservice.U64(n)},
				"fib", jobservice.FibExpected(n), false)
		default:
			n := 10000 + i*311
			submit(chaosKey, map[string]any{"job": jobservice.KernelVecSum, "kind": "parallel_for", "n": n},
				"vecsum", jobservice.VecSumExpected(n), false)
		}
	}

	stop := make(chan struct{})
	defer close(stop)
	done := make(chan struct{})
	go func() {
		defer close(done)
		driveFaults(c, ff, ops{
			kill: func(d int) error {
				code, env := hc.do(http.MethodPost, fmt.Sprintf("/v1/domains/%d/drain", d), chaosKey, nil)
				if code != http.StatusOK {
					return oerrors.Errorf(oerrors.Domain, oerrors.CodeReadmit,
						"chaos: drain %d: HTTP %d: %s", d, code, env.Error)
				}
				return nil
			},
			readmit: func(d int) error {
				code, env := hc.do(http.MethodPost, fmt.Sprintf("/v1/domains/%d/readmit", d), chaosKey, nil)
				if code != http.StatusOK {
					return oerrors.Errorf(oerrors.Domain, oerrors.CodeReadmit,
						"chaos: readmit %d: HTTP %d: %s", d, code, env.Error)
				}
				return nil
			},
			steals: func() uint64 { return fab.Stats().Steals },
			saturate: func(burst int) {
				// The meek tenant's quota is 4: a burst of slow spins
				// guarantees 429s, exercising Admission/quota.
				for i := 0; i < burst; i++ {
					arg := jobservice.U64(uint64(50 * time.Millisecond))
					submit(meekKey, map[string]any{"job": jobservice.JobSpin, "arg": arg}, "spin(meek)", arg, false)
				}
			},
			cancel: func() {
				if sacGroup != "" {
					hc.do(http.MethodPost, "/v1/groups/"+sacGroup+"/cancel", chaosKey, nil)
				}
			},
		}, stop, res)
	}()
	<-done

	// Drain: poll every tracked job to a terminal status.
	deadline := time.Now().Add(drainBudget)
	mu.Lock()
	pending := append([]serviceJob(nil), tracked...)
	mu.Unlock()
	for len(pending) > 0 && time.Now().Before(deadline) {
		var still []serviceJob
		for _, j := range pending {
			code, env := hc.do(http.MethodGet, "/v1/jobs/"+j.id, j.key, nil)
			if code != http.StatusOK {
				res.fail("poll %s: HTTP %d %s", j.id, code, env.Error)
				continue
			}
			var view struct {
				Status    string `json:"status"`
				Result    []byte `json:"result"`
				Error     string `json:"error"`
				Recovered bool   `json:"recovered"`
			}
			if err := json.Unmarshal(env.Metadata, &view); err != nil {
				res.fail("poll %s: bad view: %v", j.id, err)
				continue
			}
			switch view.Status {
			case jobservice.StatusSucceeded:
				res.Settled++
				if view.Recovered {
					res.Recovered++
				}
				if bytes.Equal(view.Result, j.expect) {
					res.Exact++
				} else {
					res.Inexact++
					res.fail("%s %s: payload %x, want %x", j.name, j.id, view.Result, j.expect)
				}
			case jobservice.StatusCanceled:
				res.Settled++
				if j.cancelable {
					res.Exact++
				} else {
					res.fail("%s %s: canceled but not cancelable", j.name, j.id)
				}
			case jobservice.StatusFailed:
				res.Settled++
				res.fail("%s %s: failed: %s", j.name, j.id, view.Error)
			default:
				still = append(still, j)
			}
		}
		pending = still
		if len(pending) > 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	for _, j := range pending {
		res.Lost++
		res.fail("%s %s: never settled", j.name, j.id)
	}

	res.Steals = fab.Stats().Steals
	res.PeerSteals = fab.Stats().PeerSteals
	verifyObservability(hc, ff, res)
}

// verifyObservability asserts the health, stats and spans surfaces
// reflect the campaign: /v1/health parses with a sane status, the
// /v1/stats errors section carries the injected-fault code, and
// /v1/spans serves folded spans.
func verifyObservability(hc httpClient, ff *frameFaults, res *Result) {
	code, env := hc.do(http.MethodGet, "/v1/health", "", nil)
	var hv struct {
		Status string `json:"status"`
	}
	if code != http.StatusOK || json.Unmarshal(env.Metadata, &hv) != nil ||
		(hv.Status != jobservice.HealthOK && hv.Status != jobservice.HealthDegraded) {
		res.fail("/v1/health: HTTP %d status %q", code, hv.Status)
	}

	code, env = hc.do(http.MethodGet, "/v1/stats", chaosKey, nil)
	var snap struct {
		Errors *oerrors.CountsSnapshot `json:"errors"`
	}
	if code != http.StatusOK || json.Unmarshal(env.Metadata, &snap) != nil || snap.Errors == nil {
		res.fail("/v1/stats: HTTP %d or missing errors section", code)
	} else if ff.injected.Load() > 0 && snap.Errors.ByCode[oerrors.CodeFrameFault] == 0 {
		res.fail("/v1/stats: %d faults injected but no %q count", ff.injected.Load(), oerrors.CodeFrameFault)
	}

	code, env = hc.do(http.MethodGet, "/v1/spans", chaosKey, nil)
	var sv struct {
		Stats spans.Stats `json:"stats"`
	}
	if code != http.StatusOK || json.Unmarshal(env.Metadata, &sv) != nil || sv.Stats.Completed == 0 {
		res.fail("/v1/spans: HTTP %d or no completed spans", code)
	}
}
