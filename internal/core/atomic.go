package core

import (
	"math"
	"sync/atomic"
)

// AtomicFloat64 is a float64 with atomic Load/Store/Add — the runtime's
// stand-in for "#pragma omp atomic" on floating-point accumulators. It
// stores the value's bit pattern in an atomic integer, so no unsafe
// aliasing of user memory is needed.
type AtomicFloat64 struct {
	bits atomic.Uint64
}

// Load returns the current value.
func (a *AtomicFloat64) Load() float64 {
	return math.Float64frombits(a.bits.Load())
}

// Store replaces the value.
func (a *AtomicFloat64) Store(v float64) {
	a.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta and returns the new value.
func (a *AtomicFloat64) Add(delta float64) float64 {
	for {
		old := a.bits.Load()
		next := math.Float64frombits(old) + delta
		if a.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// Max atomically raises the value to v if v is larger, returning the
// resulting maximum.
func (a *AtomicFloat64) Max(v float64) float64 {
	for {
		old := a.bits.Load()
		cur := math.Float64frombits(old)
		if v <= cur {
			return cur
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return v
		}
	}
}
