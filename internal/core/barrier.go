package core

import "sync"

// teamBarrier is a reusable synchronization barrier for a fixed-size team.
// Two implementations exist so the ablation bench can compare them:
// centralBarrier (the default, matching libGOMP's central counter) and
// treeBarrier (a combining tree that trades latency for contention).
type teamBarrier interface {
	// Wait blocks thread tid until all team members arrive. onRelease, if
	// non-nil, runs exactly once per episode after the last arrival and
	// before ANY thread is released — the window in which the runtime
	// notifies the virtual-time monitor so that post-barrier work cannot
	// race the clock alignment. Wait reports true to exactly one caller
	// per episode (the one that ran onRelease).
	Wait(tid int, onRelease func()) bool
}

// BarrierKind selects the barrier algorithm a runtime uses.
type BarrierKind int

const (
	// BarrierCentral is a central-counter broadcast barrier.
	BarrierCentral BarrierKind = iota
	// BarrierTree is a binary combining-tree barrier.
	BarrierTree
)

func (k BarrierKind) String() string {
	if k == BarrierTree {
		return "tree"
	}
	return "central"
}

func newBarrier(kind BarrierKind, size int) teamBarrier {
	if kind == BarrierTree && size > 1 {
		return newTreeBarrier(size)
	}
	return newCentralBarrier(size)
}

// centralBarrier: each arrival increments a counter under a mutex; the
// last arrival opens the episode's broadcast channel. Channels are
// replaced per episode so the barrier is reusable and insensitive to
// stragglers from the previous episode.
type centralBarrier struct {
	size int

	mu    sync.Mutex
	count int
	gate  chan struct{}
}

func newCentralBarrier(size int) *centralBarrier {
	return &centralBarrier{size: size, gate: make(chan struct{})}
}

func (b *centralBarrier) Wait(_ int, onRelease func()) bool {
	if b.size <= 1 {
		if onRelease != nil {
			onRelease()
		}
		return true
	}
	b.mu.Lock()
	b.count++
	if b.count == b.size {
		b.count = 0
		if onRelease != nil {
			onRelease()
		}
		close(b.gate)
		b.gate = make(chan struct{})
		b.mu.Unlock()
		return true
	}
	gate := b.gate
	b.mu.Unlock()
	<-gate
	return false
}

// treeBarrier: threads combine pairwise up a binary tree rooted at thread
// 0, which then broadcasts the release down the same tree. Positions are
// the fixed thread ids, so per-channel traffic alternates strictly
// send/receive across episodes; with capacity-1 channels the barrier is
// reusable without sense reversal.
type treeBarrier struct {
	size    int
	arrive  []chan struct{} // child -> parent notification, one per thread
	release []chan struct{} // parent -> child release, one per thread
}

func newTreeBarrier(size int) *treeBarrier {
	b := &treeBarrier{
		size:    size,
		arrive:  make([]chan struct{}, size),
		release: make([]chan struct{}, size),
	}
	for i := range b.arrive {
		b.arrive[i] = make(chan struct{}, 1)
		b.release[i] = make(chan struct{}, 1)
	}
	return b
}

func (b *treeBarrier) Wait(tid int, onRelease func()) bool {
	if b.size <= 1 {
		if onRelease != nil {
			onRelease()
		}
		return true
	}
	// Collect arrivals from both children, then notify the parent and wait
	// for the downstream release.
	left, right := 2*tid+1, 2*tid+2
	if left < b.size {
		<-b.arrive[left]
	}
	if right < b.size {
		<-b.arrive[right]
	}
	if tid != 0 {
		b.arrive[tid] <- struct{}{}
		<-b.release[tid]
	} else if onRelease != nil {
		// The root sees the last arrival; run the hook before releasing.
		onRelease()
	}
	// Release children top-down.
	if left < b.size {
		b.release[left] <- struct{}{}
	}
	if right < b.size {
		b.release[right] <- struct{}{}
	}
	return tid == 0
}
