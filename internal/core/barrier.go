package core

import "sync"

// teamBarrier is a reusable synchronization barrier for a fixed-size team.
// Two implementations exist so the ablation bench can compare them:
// centralBarrier (the default, matching libGOMP's central counter) and
// treeBarrier (a combining tree that trades latency for contention).
type teamBarrier interface {
	// Wait blocks thread tid until all team members arrive. onRelease, if
	// non-nil, runs exactly once per episode after the last arrival and
	// before ANY thread is released — the window in which the runtime
	// notifies the virtual-time monitor so that post-barrier work cannot
	// race the clock alignment. Wait reports true to exactly one caller
	// per episode (the one that ran onRelease).
	//
	// abort, when non-nil, is the team's cancellation channel: a closed
	// abort releases every parked or arriving thread immediately without
	// completing the episode. An aborted barrier's internal state is
	// unspecified; the runtime rebuilds the barrier before reusing the
	// team (Team.reset). A nil abort never fires.
	Wait(tid int, abort <-chan struct{}, onRelease func()) bool
}

// BarrierKind selects the barrier algorithm a runtime uses.
type BarrierKind int

const (
	// BarrierCentral is a central-counter broadcast barrier.
	BarrierCentral BarrierKind = iota
	// BarrierTree is a binary combining-tree barrier.
	BarrierTree
)

func (k BarrierKind) String() string {
	if k == BarrierTree {
		return "tree"
	}
	return "central"
}

func newBarrier(kind BarrierKind, size int) teamBarrier {
	if kind == BarrierTree && size > 1 {
		return newTreeBarrier(size)
	}
	return newCentralBarrier(size)
}

// centralBarrier: each arrival increments a counter under a mutex; the
// last arrival opens the episode's broadcast channel. Channels are
// replaced per episode so the barrier is reusable and insensitive to
// stragglers from the previous episode.
type centralBarrier struct {
	size int

	mu    sync.Mutex
	count int
	gate  chan struct{}
}

func newCentralBarrier(size int) *centralBarrier {
	return &centralBarrier{size: size, gate: make(chan struct{})}
}

func (b *centralBarrier) Wait(_ int, abort <-chan struct{}, onRelease func()) bool {
	if b.size <= 1 {
		if onRelease != nil {
			onRelease()
		}
		return true
	}
	b.mu.Lock()
	b.count++
	if b.count == b.size {
		b.count = 0
		if onRelease != nil {
			onRelease()
		}
		close(b.gate)
		b.gate = make(chan struct{})
		b.mu.Unlock()
		return true
	}
	gate := b.gate
	b.mu.Unlock()
	// A receive from a nil abort blocks forever, so the select degrades to
	// the plain gate wait when cancellation is not in play.
	select {
	case <-gate:
	case <-abort:
	}
	return false
}

// treeBarrier: threads combine pairwise up a binary tree rooted at thread
// 0, which then broadcasts the release down the same tree. Positions are
// the fixed thread ids, so per-channel traffic alternates strictly
// send/receive across episodes; with capacity-1 channels the barrier is
// reusable without sense reversal.
type treeBarrier struct {
	size    int
	arrive  []chan struct{} // child -> parent notification, one per thread
	release []chan struct{} // parent -> child release, one per thread
}

func newTreeBarrier(size int) *treeBarrier {
	b := &treeBarrier{
		size:    size,
		arrive:  make([]chan struct{}, size),
		release: make([]chan struct{}, size),
	}
	for i := range b.arrive {
		b.arrive[i] = make(chan struct{}, 1)
		b.release[i] = make(chan struct{}, 1)
	}
	return b
}

func (b *treeBarrier) Wait(tid int, abort <-chan struct{}, onRelease func()) bool {
	if b.size <= 1 {
		if onRelease != nil {
			onRelease()
		}
		return true
	}
	// Collect arrivals from both children, then notify the parent and wait
	// for the downstream release. Every step — receives and sends alike —
	// selects against abort, so a canceled team cannot strand a thread at
	// any rung of the tree (a nil abort never fires and costs nothing).
	left, right := 2*tid+1, 2*tid+2
	if left < b.size {
		select {
		case <-b.arrive[left]:
		case <-abort:
			return false
		}
	}
	if right < b.size {
		select {
		case <-b.arrive[right]:
		case <-abort:
			return false
		}
	}
	if tid != 0 {
		select {
		case b.arrive[tid] <- struct{}{}:
		case <-abort:
			return false
		}
		select {
		case <-b.release[tid]:
		case <-abort:
			return false
		}
	} else if onRelease != nil {
		// The root sees the last arrival; run the hook before releasing.
		onRelease()
	}
	// Release children top-down.
	if left < b.size {
		select {
		case b.release[left] <- struct{}{}:
		case <-abort:
			return false
		}
	}
	if right < b.size {
		select {
		case b.release[right] <- struct{}{}:
		case <-abort:
			return false
		}
	}
	return tid == 0
}
