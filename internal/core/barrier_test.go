package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// exerciseBarrier hammers a barrier with size threads over many episodes
// and verifies (a) no thread enters episode e+1 before all arrived at e,
// and (b) exactly one releaser per episode.
func exerciseBarrier(t *testing.T, mk func(size int) teamBarrier, size, episodes int) {
	t.Helper()
	b := mk(size)
	arrived := make([]atomic.Int32, episodes)
	releasers := make([]atomic.Int32, episodes)
	var wg sync.WaitGroup
	for tid := 0; tid < size; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				arrived[e].Add(1)
				if b.Wait(tid, nil, nil) {
					releasers[e].Add(1)
				}
				if got := arrived[e].Load(); got != int32(size) {
					t.Errorf("episode %d: passed with %d/%d arrivals", e, got, size)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	for e := 0; e < episodes; e++ {
		if releasers[e].Load() != 1 {
			t.Errorf("episode %d: %d releasers, want 1", e, releasers[e].Load())
		}
	}
}

func TestCentralBarrier(t *testing.T) {
	for _, size := range []int{2, 3, 8, 24} {
		exerciseBarrier(t, func(n int) teamBarrier { return newCentralBarrier(n) }, size, 200)
	}
}

func TestTreeBarrier(t *testing.T) {
	for _, size := range []int{2, 3, 7, 8, 24} {
		exerciseBarrier(t, func(n int) teamBarrier { return newTreeBarrier(n) }, size, 200)
	}
}

func TestBarrierSizeOne(t *testing.T) {
	for _, kind := range []BarrierKind{BarrierCentral, BarrierTree} {
		b := newBarrier(kind, 1)
		for i := 0; i < 5; i++ {
			if !b.Wait(0, nil, nil) {
				t.Errorf("%v size-1 barrier must release immediately", kind)
			}
		}
	}
}

func TestNewBarrierSelectsKind(t *testing.T) {
	if _, ok := newBarrier(BarrierTree, 8).(*treeBarrier); !ok {
		t.Error("BarrierTree did not produce a tree barrier")
	}
	if _, ok := newBarrier(BarrierCentral, 8).(*centralBarrier); !ok {
		t.Error("BarrierCentral did not produce a central barrier")
	}
}

func TestTreeBarrierInsideRuntime(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(24)), WithNumThreads(8), WithBarrierKind(BarrierTree))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var sum atomic.Int64
	_ = rt.Parallel(func(c *Context) {
		for r := 0; r < 30; r++ {
			c.For(64, func(i int) { sum.Add(1) })
		}
	})
	if sum.Load() != 30*64 {
		t.Errorf("sum = %d, want %d", sum.Load(), 30*64)
	}
}
