package core

import (
	"fmt"

	"openmpmca/internal/oerrors"
)

// ErrSaturated is returned by Parallel and friends when the runtime's
// admission control refuses a region: the number of outstanding parallel
// regions has reached the WithMaxConcurrentRegions cap and the bounded
// admission queue is full. The caller owns the backpressure decision —
// retry, shed load, or fail upward. Classified Admission/saturated.
var ErrSaturated = oerrors.Sentinel(oerrors.Admission, oerrors.CodeSaturated,
	"core: runtime saturated: too many concurrent parallel regions")

// ErrCanceled is returned by ParallelCtx and friends when a region was
// torn down before completing — the OpenMP "cancel parallel" semantics:
// every thread of the team unwinds at its next cancellation point (loop
// chunk dispatch, task scheduling, barriers) and the fork returns. The
// returned error wraps the context's cause, so
// errors.Is(err, context.DeadlineExceeded) also works. Classified
// Cancel/canceled.
var ErrCanceled = oerrors.Sentinel(oerrors.Cancel, oerrors.CodeCanceled,
	"core: parallel region canceled")

// ErrInvalidOption wraps every validation error the Option constructors
// return from New, so callers can classify configuration mistakes with
// errors.Is(err, ErrInvalidOption). Classified Admission/invalid_option.
var ErrInvalidOption = oerrors.Sentinel(oerrors.Admission, oerrors.CodeInvalidOption,
	"core: invalid option")

// RegionPanicError reports that a thread's region body panicked. The
// runtime recovers the panic on the worker, cancels the rest of the team
// (every thread unwinds at its next cancellation point instead of hanging
// the region-end barrier), and returns this error from the fork. The
// process stays alive and the runtime remains fully usable.
//
// Only the first panic is carried; later panics from other threads of the
// same region are counted in Stats but not retained.
type RegionPanicError struct {
	// Tid is the team thread id whose body panicked first.
	Tid int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *RegionPanicError) Error() string {
	return fmt.Sprintf("core: panic in parallel region body (thread %d): %v", e.Tid, e.Value)
}

// Unwrap exposes the panic value when it was an error, so
// errors.Is/errors.As reach through RegionPanicError to the cause.
func (e *RegionPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// canceledErr wraps a context cause in ErrCanceled. Both
// errors.Is(err, ErrCanceled) and errors.Is(err, cause) hold.
func canceledErr(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// teamUnwind is the sentinel a cancellation point panics with to unwind
// one thread out of a canceled region. The region driver recovers it at
// the top of the thread's run and treats it as a clean exit; it never
// escapes the runtime.
type teamUnwind struct{}

// cancel tears the region down: it records the first cause, flips the
// cancellation flag, closes the abort channel every barrier wait selects
// on, and wakes threads parked in task idle-waits or ordered-section
// waits so they reach a cancellation point. Idempotent; only the first
// cause is kept.
func (t *Team) cancel(cause error) {
	t.cancelMu.Lock()
	if t.cancelFlag.Load() {
		t.cancelMu.Unlock()
		return
	}
	t.cancelErr = cause
	t.poisoned = true
	// Order matters: the flag must be observable before the channel close
	// releases barrier waiters, so an unblocked thread's checkCancel fires.
	t.cancelFlag.Store(true)
	close(t.cancelCh)
	t.cancelMu.Unlock()

	t.rt.stats.Cancels.Add(1)
	t.rt.monitor.Cancel()
	t.wakeIdlers()
	t.wakeOrdered()
}

// canceled reports whether the region has been canceled.
func (t *Team) canceled() bool { return t.cancelFlag.Load() }

// checkCancel is a cancellation point: inside a canceled region it
// unwinds the calling thread via the teamUnwind sentinel.
func (t *Team) checkCancel() {
	if t.cancelFlag.Load() {
		panic(teamUnwind{})
	}
}

// recordPanic converts a recovered region-body panic into the region's
// error and cancels the team. Only the first panic wins the error slot.
func (t *Team) recordPanic(tid int, value any, stack []byte) {
	t.rt.stats.Panics.Add(1)
	t.cancel(&RegionPanicError{Tid: tid, Value: value, Stack: stack})
}

// regionErr returns the error the region should report: nil for a clean
// join, the recorded RegionPanicError or cancellation cause otherwise.
func (t *Team) regionErr() error {
	t.cancelMu.Lock()
	defer t.cancelMu.Unlock()
	return t.cancelErr
}

// wakeOrdered wakes threads parked on ordered-section conditions so they
// observe cancellation. Waiters re-check the cancel flag under the same
// ordMu, so no wakeup is lost.
func (t *Team) wakeOrdered() {
	t.wsMu.Lock()
	defer t.wsMu.Unlock()
	for _, ws := range t.ws {
		ws.ordMu.Lock()
		if ws.ordCond != nil {
			ws.ordCond.Broadcast()
		}
		ws.ordMu.Unlock()
	}
}

// arm readies the team's cancellation state for a new region. It runs on
// the forking goroutine before any worker is dispatched; the dispatch
// handoff publishes the fresh channel.
func (t *Team) arm() {
	t.cancelCh = make(chan struct{})
	t.cancelErr = nil
	t.poisoned = false
	t.cancelFlag.Store(false)
}

// reset rebuilds the coordination structures of a team whose region ended
// abnormally — a barrier abandoned mid-episode or deques still holding
// canceled tasks are not safe to reuse — making the team leasable again.
func (t *Team) reset() {
	t.barrier = newBarrier(t.rt.barrierKind, t.size)
	ndeques := t.size
	if t.rt.taskQueue == TaskQueueShared {
		ndeques = 1
	}
	t.deques = newTaskDequeSlab(ndeques, dequeCapacity)
	t.ws = make(map[int]*workshare)
	t.queued.Store(0)
	t.outstanding.Store(0)
	t.idlers.Store(0)
	t.poisoned = false
}
