package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cancelLayers runs a subtest against the native layer and the MCA layer,
// covering both substrates with one test body.
func cancelLayers(t *testing.T, fn func(t *testing.T, mk func() ThreadLayer)) {
	t.Helper()
	t.Run("native", func(t *testing.T) {
		fn(t, func() ThreadLayer { return NewNativeLayer(8) })
	})
	t.Run("mca", func(t *testing.T) {
		fn(t, func() ThreadLayer { return newMCA(t) })
	})
}

func TestParallelPanicReturnsRegionPanicError(t *testing.T) {
	cancelLayers(t, func(t *testing.T, mk func() ThreadLayer) {
		rt, err := New(WithLayer(mk()), WithNumThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()

		boom := errors.New("boom")
		err = rt.Parallel(func(c *Context) {
			if c.ThreadNum() == 1 {
				panic(boom)
			}
		})
		var rpe *RegionPanicError
		if !errors.As(err, &rpe) {
			t.Fatalf("Parallel with panicking body = %v, want RegionPanicError", err)
		}
		if rpe.Tid != 1 || rpe.Value != any(boom) {
			t.Errorf("RegionPanicError = {Tid:%d Value:%v}, want {Tid:1 Value:boom}", rpe.Tid, rpe.Value)
		}
		if !strings.Contains(string(rpe.Stack), "goroutine") {
			t.Error("RegionPanicError carries no stack")
		}
		// The panic value was an error, so Unwrap reaches it.
		if !errors.Is(err, boom) {
			t.Error("errors.Is(err, boom) = false, want true through RegionPanicError.Unwrap")
		}

		// The runtime and the (rebuilt) team must be fully reusable.
		var sum atomic.Int64
		if err := rt.ParallelFor(100, func(i int) { sum.Add(int64(i)) }); err != nil {
			t.Fatalf("region after contained panic: %v", err)
		}
		if sum.Load() != 99*100/2 {
			t.Errorf("sum after contained panic = %d", sum.Load())
		}
		if got := rt.Stats().Snapshot().Panics; got != 1 {
			t.Errorf("Stats.Panics = %d, want 1", got)
		}
	})
}

func TestPeerPanicUnwindsBarrierParkedThreads(t *testing.T) {
	// Threads 1..n-1 park on a team barrier that thread 0 never reaches
	// (it panics first). Containment must release them — the fork returns
	// instead of deadlocking.
	for _, kind := range []BarrierKind{BarrierCentral, BarrierTree} {
		kind := kind
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(6), WithBarrierKind(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			var parked atomic.Int32
			err = rt.Parallel(func(c *Context) {
				if c.ThreadNum() == 0 {
					// Give peers time to park, then blow up.
					for parked.Load() < 5 {
						time.Sleep(100 * time.Microsecond)
					}
					panic("master down")
				}
				parked.Add(1)
				c.Barrier()
			})
			var rpe *RegionPanicError
			if !errors.As(err, &rpe) {
				t.Fatalf("err = %v, want RegionPanicError", err)
			}
			if rpe.Tid != 0 {
				t.Errorf("panicking tid = %d, want 0", rpe.Tid)
			}
		})
	}
}

func TestTaskBodyPanicIsContained(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	err = rt.Parallel(func(c *Context) {
		c.SingleNoWait(func() {
			for i := 0; i < 32; i++ {
				i := i
				c.Task(func() {
					if i == 7 {
						panic("task boom")
					}
				})
			}
		})
	})
	var rpe *RegionPanicError
	if !errors.As(err, &rpe) {
		t.Fatalf("Parallel with panicking task = %v, want RegionPanicError", err)
	}
	if rpe.Value != any("task boom") {
		t.Errorf("panic value = %v, want %q", rpe.Value, "task boom")
	}
	// Reusable afterwards.
	if err := rt.Parallel(func(c *Context) { c.Barrier() }); err != nil {
		t.Fatalf("region after task panic: %v", err)
	}
}

func TestParallelCtxDeadline(t *testing.T) {
	cancelLayers(t, func(t *testing.T, mk func() ThreadLayer) {
		// Dynamic schedule: every chunk dispatch is a cancellation point,
		// so the deadline interrupts the loop mid-flight. (A default
		// static block would run its whole contiguous range to completion
		// — cancellation is cooperative.)
		rt, err := New(WithLayer(mk()), WithNumThreads(4), WithSchedule(ScheduleDynamic, 8))
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		start := time.Now()
		err = rt.ParallelForCtx(ctx, 1<<30, func(i int) {
			time.Sleep(20 * time.Microsecond)
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("ParallelForCtx past deadline = %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err does not wrap context.DeadlineExceeded: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("cancellation took %v; cancellation points not honored", elapsed)
		}
		if got := rt.Stats().Snapshot().Cancels; got == 0 {
			t.Error("Stats.Cancels = 0 after a canceled region")
		}
		// Reusable afterwards.
		var n atomic.Int64
		if err := rt.ParallelFor(64, func(i int) { n.Add(1) }); err != nil {
			t.Fatalf("region after cancellation: %v", err)
		}
		if n.Load() != 64 {
			t.Errorf("iterations after cancellation = %d, want 64", n.Load())
		}
	})
}

func TestParallelCtxPreCanceled(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(4)), WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err = rt.ParallelCtx(ctx, func(c *Context) { ran = true })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ParallelCtx = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if ran {
		t.Error("body ran despite pre-canceled context")
	}
}

func TestParallelCtxCancelMidBarrier(t *testing.T) {
	// A ctx fire while the team sits in an explicit barrier must release
	// the waiters through the barrier's abort channel.
	rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var arrived atomic.Int32
	go func() {
		for arrived.Load() < 3 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	err = rt.ParallelCtx(ctx, func(c *Context) {
		if c.ThreadNum() == 0 {
			// Thread 0 never arrives; peers park until the ctx fires.
			<-ctx.Done()
			return
		}
		arrived.Add(1)
		c.Barrier()
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelCtx canceled mid-barrier = %v, want ErrCanceled", err)
	}
}

func TestMaxConcurrentRegionsSaturation(t *testing.T) {
	// cap=1: one region runs, one caller queues, the next caller is
	// refused with ErrSaturated.
	rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(2), WithMaxConcurrentRegions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := rt.MaxConcurrentRegions(); got != 1 {
		t.Fatalf("MaxConcurrentRegions = %d, want 1", got)
	}

	occupy := make(chan struct{})  // holds region A open
	inside := make(chan struct{})  // region A is running
	queued := make(chan struct{})  // caller B has joined the wait queue
	release := make(chan error, 1) // caller B's result

	go func() {
		release <- rt.Parallel(func(c *Context) {
			c.Master(func() { close(inside); <-occupy })
		})
	}()
	<-inside

	go func() {
		// B: admitted slot is taken; this blocks in the admission queue.
		close(queued)
		release <- rt.Parallel(func(c *Context) {})
	}()
	<-queued
	// Give B time to actually enter the queued select.
	deadline := time.Now().Add(time.Second)
	for rt.admitWaiting.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if rt.admitWaiting.Load() == 0 {
		t.Fatal("caller B never joined the admission queue")
	}

	// C: queue (bound 1) is full too — refused immediately.
	if err := rt.Parallel(func(c *Context) {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third caller = %v, want ErrSaturated", err)
	}
	if got := rt.Stats().Snapshot().Saturations; got != 1 {
		t.Errorf("Stats.Saturations = %d, want 1", got)
	}

	close(occupy)
	if err := <-release; err != nil {
		t.Fatalf("region A/B failed: %v", err)
	}
	if err := <-release; err != nil {
		t.Fatalf("region A/B failed: %v", err)
	}
}

func TestAdmissionWaitHonorsContext(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(2), WithMaxConcurrentRegions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	occupy := make(chan struct{})
	inside := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rt.Parallel(func(c *Context) {
			c.Master(func() { close(inside); <-occupy })
		})
	}()
	<-inside

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	err = rt.ParallelCtx(ctx, func(c *Context) {})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued ParallelCtx past deadline = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	close(occupy)
	wg.Wait()
}

func TestOptionValidationWrapsErrInvalidOption(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"nil layer", WithLayer(nil)},
		{"zero threads", WithNumThreads(0)},
		{"bad schedule", WithSchedule(Schedule(99), 0)},
		{"negative chunk", WithSchedule(ScheduleDynamic, -1)},
		{"bad barrier", WithBarrierKind(BarrierKind(99))},
		{"bad task queue", WithTaskQueue(TaskQueue(99))},
		{"negative cap", WithMaxConcurrentRegions(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.opt); !errors.Is(err, ErrInvalidOption) {
				t.Errorf("New(%s) = %v, want ErrInvalidOption", tc.name, err)
			}
		})
	}
}
