package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentRegions drives 16 goroutines through overlapping parallel
// regions on one runtime — the multi-tenant contract: disjoint workers
// per region, no cross-team interference, warm teams reused from the
// lease cache. Run under -race it is also the data-race probe for the
// leasing and admission paths.
func TestConcurrentRegions(t *testing.T) {
	const (
		callers = 16
		rounds  = 25
		iters   = 256
	)
	cancelLayers(t, func(t *testing.T, mk func() ThreadLayer) {
		rt, err := New(WithLayer(mk()), WithNumThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()

		var total atomic.Int64
		var wg sync.WaitGroup
		wg.Add(callers)
		for g := 0; g < callers; g++ {
			g := g
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					// Mix region shapes so overlapping teams differ in size
					// and construct use.
					switch (g + r) % 3 {
					case 0:
						if err := rt.ParallelFor(iters, func(i int) { total.Add(1) }); err != nil {
							t.Errorf("caller %d round %d: %v", g, r, err)
							return
						}
					case 1:
						if err := rt.ParallelN(2, func(c *Context) {
							c.ForOpts(iters, LoopOpts{Schedule: ScheduleDynamic, Chunk: 16}, func(lo, hi int) {
								total.Add(int64(hi - lo))
							})
						}); err != nil {
							t.Errorf("caller %d round %d: %v", g, r, err)
							return
						}
					default:
						if err := rt.Parallel(func(c *Context) {
							c.Critical(func() { total.Add(int64(iters) / int64(c.NumThreads())) })
							c.Barrier()
							leftover := iters % c.NumThreads()
							c.Master(func() { total.Add(int64(leftover)) })
						}); err != nil {
							t.Errorf("caller %d round %d: %v", g, r, err)
							return
						}
					}
				}
			}()
		}
		wg.Wait()

		if got, want := total.Load(), int64(callers*rounds*iters); got != want {
			t.Errorf("total = %d, want %d (regions interfered)", got, want)
		}
		st := rt.Stats().Snapshot()
		if st.Regions != callers*rounds {
			t.Errorf("Stats.Regions = %d, want %d", st.Regions, callers*rounds)
		}
		if st.LeaseHits == 0 {
			t.Error("no lease hits across overlapping regions; warm-team cache inert")
		}
	})
}

// TestConcurrentRegionsWithCancellationAndPanics overlaps healthy regions
// with deadline-canceled and panicking ones: failures must stay contained
// to their own team while neighbors complete untouched.
func TestConcurrentRegionsWithCancellationAndPanics(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(3), WithSchedule(ScheduleDynamic, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const callers = 12
	var healthy atomic.Int64
	var wg sync.WaitGroup
	wg.Add(callers)
	for g := 0; g < callers; g++ {
		g := g
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				switch g % 3 {
				case 0: // healthy
					if err := rt.ParallelFor(128, func(i int) { healthy.Add(1) }); err != nil {
						t.Errorf("healthy caller %d: %v", g, err)
						return
					}
				case 1: // deadline-canceled
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					err := rt.ParallelForCtx(ctx, 1<<28, func(i int) {
						time.Sleep(10 * time.Microsecond)
					})
					cancel()
					if err != nil && !errors.Is(err, ErrCanceled) {
						t.Errorf("canceled caller %d: %v", g, err)
						return
					}
				default: // panicking
					err := rt.Parallel(func(c *Context) {
						if c.ThreadNum() == c.NumThreads()-1 {
							panic("chaos")
						}
						c.Barrier()
					})
					var rpe *RegionPanicError
					if !errors.As(err, &rpe) {
						t.Errorf("panicking caller %d = %v, want RegionPanicError", g, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got, want := healthy.Load(), int64(4*10*128); got != want {
		t.Errorf("healthy iterations = %d, want %d (failure leaked across teams)", got, want)
	}
}
