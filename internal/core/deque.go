package core

import "sync"

// dequeCapacity bounds each worker's task deque. A full deque makes Task
// execute the task undeferred on the producing thread — the same pressure
// valve libGOMP applies (serializing tasks as if under an if(0) clause)
// so task storms degrade to recursion instead of unbounded queue growth.
const dequeCapacity = 256

// taskDeque is one worker's bounded double-ended task queue: the owning
// thread pushes and pops at the tail (LIFO, cache-warm child first), idle
// threads steal from the head (FIFO, oldest first — the biggest remaining
// subtree under recursive decomposition). Each deque carries its own lock,
// so the common push/pop path contends with nothing but a thief that
// happens to target this exact worker; the team-wide serialization of the
// old single shared queue is gone.
//
// A mutex — not a lock-free Chase-Lev ring — guards the deque on purpose:
// task bodies may call Context methods of their *creating* thread (the
// recursive-decomposition idiom in task_test.go), so pushes are not
// strictly single-owner and the lock-free owner/thief split would be
// unsound. The lock is per-worker, which is where the scalability win
// lives; see DESIGN.md §"Task scheduler".
type taskDeque struct {
	mu   sync.Mutex
	buf  []*task
	cap  int // hard bound; buf grows lazily toward it
	head int // oldest element; next steal target
	tail int // next push slot
	n    int // live elements

	// pad spaces adjacent deques of a team's slab onto distinct cache
	// lines so one worker's push/pop does not false-share with its
	// neighbour's.
	_ [64]byte
}

// dequeInitialSize keeps team construction cheap: a region's deques start
// with no ring at all; the first push allocates this much, and only deques
// that see deep task nests grow toward dequeCapacity. 32 slots (256 bytes)
// absorbs typical per-thread task batches in one allocation.
const dequeInitialSize = 32

// newTaskDequeSlab allocates n deques in one backing array — one
// allocation per team, not 2n — each bounded by capacity.
func newTaskDequeSlab(n, capacity int) []*taskDeque {
	if capacity < 1 {
		capacity = 1
	}
	slab := make([]taskDeque, n)
	ds := make([]*taskDeque, n)
	for i := range slab {
		slab[i].cap = capacity
		ds[i] = &slab[i]
	}
	return ds
}

func newTaskDeque(capacity int) *taskDeque {
	return newTaskDequeSlab(1, capacity)[0]
}

// pushTail appends tk at the tail; it reports false when the deque is full
// and the caller must run the task undeferred.
func (d *taskDeque) pushTail(tk *task) bool {
	d.mu.Lock()
	if d.n == len(d.buf) {
		if d.n == d.cap {
			d.mu.Unlock()
			return false
		}
		d.grow()
	}
	d.buf[d.tail] = tk
	d.tail = (d.tail + 1) % len(d.buf)
	d.n++
	d.mu.Unlock()
	return true
}

// popTail removes and returns the newest task, or nil when empty.
func (d *taskDeque) popTail() *task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	d.tail = (d.tail - 1 + len(d.buf)) % len(d.buf)
	tk := d.buf[d.tail]
	d.buf[d.tail] = nil
	d.n--
	d.mu.Unlock()
	return tk
}

// stealHead removes and returns the oldest task, or nil when empty.
func (d *taskDeque) stealHead() *task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	tk := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	d.mu.Unlock()
	return tk
}

// grow allocates the initial ring or doubles it (bounded by cap),
// unwrapping the live window into the front of the new buffer. Called with
// d.mu held and d.n == len(d.buf).
func (d *taskDeque) grow() {
	next := 2 * len(d.buf)
	if next == 0 {
		next = dequeInitialSize
	}
	if next > d.cap {
		next = d.cap
	}
	nb := make([]*task, next)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
	d.tail = d.n
}

// size reports the current number of queued tasks.
func (d *taskDeque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}
