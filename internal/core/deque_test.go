package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func mkTask(id int) (*task, *int) {
	slot := new(int)
	return &task{fn: func() { *slot = id }, group: &taskGroup{}}, slot
}

func TestDequeLIFOPopFIFOSteal(t *testing.T) {
	d := newTaskDeque(8)
	tasks := make([]*task, 4)
	for i := range tasks {
		tasks[i], _ = mkTask(i)
		if !d.pushTail(tasks[i]) {
			t.Fatalf("push %d refused", i)
		}
	}
	// Owner pops newest first.
	if got := d.popTail(); got != tasks[3] {
		t.Error("popTail did not return the newest task")
	}
	// Thief steals oldest first.
	if got := d.stealHead(); got != tasks[0] {
		t.Error("stealHead did not return the oldest task")
	}
	if got := d.stealHead(); got != tasks[1] {
		t.Error("second steal out of order")
	}
	if got := d.popTail(); got != tasks[2] {
		t.Error("final popTail wrong")
	}
	if d.popTail() != nil || d.stealHead() != nil || d.size() != 0 {
		t.Error("deque not empty after draining")
	}
}

func TestDequeBoundedRefusesWhenFull(t *testing.T) {
	d := newTaskDeque(2)
	a, _ := mkTask(0)
	b, _ := mkTask(1)
	c, _ := mkTask(2)
	if !d.pushTail(a) || !d.pushTail(b) {
		t.Fatal("pushes within capacity refused")
	}
	if d.pushTail(c) {
		t.Error("push beyond capacity accepted")
	}
	// Freeing a slot re-enables pushes, and wraparound keeps order.
	if d.stealHead() != a {
		t.Fatal("steal order")
	}
	if !d.pushTail(c) {
		t.Error("push after pop refused")
	}
	if d.popTail() != c || d.popTail() != b {
		t.Error("wraparound order wrong")
	}
}

func TestDequeGrowsLazilyPreservingOrder(t *testing.T) {
	// Push past the initial ring size with a wrapped window: growth must
	// unwrap head..tail without reordering or dropping anything.
	d := newTaskDeque(dequeCapacity)
	tasks := make([]*task, dequeInitialSize*3)
	for i := 0; i < dequeInitialSize/2; i++ {
		tk, _ := mkTask(-1)
		if !d.pushTail(tk) || d.stealHead() != tk {
			t.Fatal("warmup push/steal failed")
		}
	}
	for i := range tasks { // head is now mid-ring; this forces repeated grows
		tasks[i], _ = mkTask(i)
		if !d.pushTail(tasks[i]) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	for i := range tasks {
		if got := d.stealHead(); got != tasks[i] {
			t.Fatalf("steal %d out of order after growth", i)
		}
	}
	if d.size() != 0 {
		t.Error("deque not empty")
	}
}

func TestDequeConcurrentPushPopSteal(t *testing.T) {
	// One owner pushing and popping its tail, several thieves hammering
	// the head: every task must run exactly once, whoever claims it.
	// Meaningful mostly under -race (the CI race target runs it).
	const n = 2000
	d := newTaskDeque(64)
	var ran atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for thief := 0; thief < 3; thief++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tk := d.stealHead(); tk != nil {
					tk.fn()
					continue
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		tk := &task{fn: func() { ran.Add(1) }}
		for !d.pushTail(tk) {
			// Full: run one of our own to make room.
			if mine := d.popTail(); mine != nil {
				mine.fn()
			}
		}
	}
	// Drain whatever the thieves have not taken.
	for ran.Load() < n {
		if tk := d.popTail(); tk != nil {
			tk.fn()
		}
	}
	close(done)
	wg.Wait()
	if ran.Load() != n || d.size() != 0 {
		t.Fatalf("tasks ran = %d (deque size %d), want %d and empty", ran.Load(), d.size(), n)
	}
}
