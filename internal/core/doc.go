// Package core implements the paper's primary contribution: an OpenMP-style
// fork/join runtime (modeled on libGOMP's internals) whose three
// load-bearing services — worker-thread management, runtime memory
// allocation, and low-level mutual exclusion — are routed through a
// pluggable ThreadLayer:
//
//   - NativeLayer drives goroutines, sync.Mutex and the Go allocator
//     directly, standing in for the proprietary GNU OpenMP runtime
//     (libGOMP over pthreads) the paper compares against.
//   - MCALayer routes the same services through the MRAPI resource
//     management API: every worker thread is an MRAPI node (paper §5B1),
//     runtime allocations go through the shared-memory/malloc extension
//     (§5A2, Listing 3), mutual exclusion maps onto MRAPI mutexes
//     (Listing 4), and the default thread count comes from the MRAPI
//     metadata resource tree (§5B4).
//
// The runtime provides the OpenMP constructs the paper evaluates with EPCC
// (Table I) — parallel, for (static/dynamic/guided/auto schedules),
// parallel-for, barrier, single, critical, reduction — plus master,
// sections, explicit tasks with taskwait/taskgroup, and runtime locks.
//
// A Monitor hook receives fork/join, work-charge and synchronization
// events; the perfmodel package implements it to produce deterministic
// virtual-time results on the modeled T4240 board (Figure 4).
package core
