package core_test

import (
	"fmt"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

// The canonical fork/join pattern: a team workshares a loop and reduces a
// result, over the MCA thread layer bound to the modeled T4240 board.
func Example() {
	layer, err := core.NewMCALayer(platform.T4240RDB().NewSystem())
	if err != nil {
		panic(err)
	}
	rt, err := core.New(core.WithLayer(layer), core.WithNumThreads(4))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	data := make([]float64, 1000)
	for i := range data {
		data[i] = 1
	}
	var total float64
	_ = rt.Parallel(func(c *core.Context) {
		sum := core.Reduce(c, len(data), 0.0,
			func(a, b float64) float64 { return a + b },
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += data[i]
				}
				return s
			})
		c.Master(func() { total = sum })
	})
	fmt.Println(total)
	// Output: 1000
}

// Worksharing with an explicit schedule: dynamic chunks of 8 over an
// iteration space, through the ParallelFor convenience.
func ExampleRuntime_ParallelFor() {
	rt, err := core.New(core.WithNumThreads(3), core.WithSchedule(core.ScheduleDynamic, 8))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	out := make([]int, 24)
	_ = rt.ParallelFor(len(out), func(i int) { out[i] = i * i })
	fmt.Println(out[5], out[23])
	// Output: 25 529
}

// The single construct's copyprivate form broadcasts one thread's value
// to the whole team.
func ExampleSingleCopy() {
	rt, err := core.New(core.WithNumThreads(4))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	sum := 0
	_ = rt.Parallel(func(c *core.Context) {
		v := core.SingleCopy(c, func() int { return 7 })
		c.Critical(func() { sum += v })
	})
	fmt.Println(sum)
	// Output: 28
}
