package core

import (
	"errors"
	"testing"
)

// failingLayer wraps the native layer and fails selected services, so the
// runtime's error paths can be driven deterministically.
type failingLayer struct {
	*NativeLayer
	failWorker bool
	failMutex  bool
	failAlloc  bool
}

var errInjected = errors.New("injected layer failure")

func (l *failingLayer) StartWorker(wid int, loop func()) (Worker, error) {
	if l.failWorker {
		return nil, errInjected
	}
	return l.NativeLayer.StartWorker(wid, loop)
}

func (l *failingLayer) NewMutex() (RuntimeMutex, error) {
	if l.failMutex {
		return nil, errInjected
	}
	return l.NativeLayer.NewMutex()
}

func (l *failingLayer) Alloc(size int) ([]byte, error) {
	if l.failAlloc {
		return nil, errInjected
	}
	return l.NativeLayer.Alloc(size)
}

func TestParallelSurfacesAllocFailure(t *testing.T) {
	// gomp_malloc failing is the paper's gomp_fatal path (Listing 3); the
	// Go runtime surfaces it as an error instead of aborting.
	rt, err := New(WithLayer(&failingLayer{NativeLayer: NewNativeLayer(4), failAlloc: true}), WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Parallel(func(c *Context) {}); !errors.Is(err, errInjected) {
		t.Errorf("Parallel with failing alloc = %v, want injected error", err)
	}
}

func TestParallelSurfacesWorkerSpawnFailure(t *testing.T) {
	rt, err := New(WithLayer(&failingLayer{NativeLayer: NewNativeLayer(4), failWorker: true}), WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Parallel(func(c *Context) {}); !errors.Is(err, errInjected) {
		t.Errorf("Parallel with failing spawn = %v, want injected error", err)
	}
	// A one-thread team needs no workers and must still run.
	if err := rt.ParallelN(1, func(c *Context) {}); err != nil {
		t.Errorf("1-thread region with failing spawn = %v, want nil", err)
	}
}

func TestNewLockSurfacesMutexFailure(t *testing.T) {
	rt, err := New(WithLayer(&failingLayer{NativeLayer: NewNativeLayer(4), failMutex: true}), WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.NewLock(); !errors.Is(err, errInjected) {
		t.Errorf("NewLock = %v, want injected error", err)
	}
	if _, err := rt.NewNestLock(); !errors.Is(err, errInjected) {
		t.Errorf("NewNestLock = %v, want injected error", err)
	}
}

func TestCriticalSurfacesMutexFailureAsRegionPanic(t *testing.T) {
	// Inside a region the runtime has no error channel for a failed
	// critical-section mutex; it traps, mirroring gomp_fatal. Panic
	// containment converts the trap into a RegionPanicError from the fork
	// instead of killing the caller's process.
	rt, err := New(WithLayer(&failingLayer{NativeLayer: NewNativeLayer(4), failMutex: true}), WithNumThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	err = rt.Parallel(func(c *Context) {
		c.Critical(func() {})
	})
	var rpe *RegionPanicError
	if !errors.As(err, &rpe) {
		t.Fatalf("Critical with failing mutex = %v, want RegionPanicError", err)
	}
}
