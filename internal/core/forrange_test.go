package core

import (
	"sync"
	"testing"
)

func TestParallelForRangeCoversOnce(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(4)), WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const n = 1001
	var mu sync.Mutex
	hits := make([]int, n)
	var ranges int
	err = rt.ParallelForRange(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		mu.Lock()
		ranges++
		for i := lo; i < hi; i++ {
			hits[i]++
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
	if ranges > 4 {
		t.Errorf("static block schedule issued %d ranges for a team of 4", ranges)
	}
}

func TestParallelForRangeEmpty(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	called := false
	if err := rt.ParallelForRange(0, func(lo, hi int) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("body called for an empty range")
	}
}
