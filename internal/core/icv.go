package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Schedule selects a loop worksharing policy, mirroring omp_sched_t.
type Schedule int

// Loop schedules.
const (
	// ScheduleStatic divides iterations into blocks assigned up front; with
	// a chunk size, blocks are dealt round-robin.
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out chunk-sized blocks from a shared counter as
	// threads become free.
	ScheduleDynamic
	// ScheduleGuided hands out exponentially shrinking blocks
	// (remaining / (2·threads), floored at the chunk size).
	ScheduleGuided
	// ScheduleAuto lets the runtime pick; this implementation maps it to
	// static.
	ScheduleAuto
)

var scheduleNames = [...]string{"static", "dynamic", "guided", "auto"}

func (s Schedule) String() string {
	if int(s) < len(scheduleNames) {
		return scheduleNames[s]
	}
	return fmt.Sprintf("schedule(%d)", int(s))
}

// ParseSchedule parses an OMP_SCHEDULE-style string: "kind" or
// "kind,chunk".
func ParseSchedule(s string) (Schedule, int, error) {
	kind, chunkStr, hasChunk := strings.Cut(strings.TrimSpace(strings.ToLower(s)), ",")
	var sched Schedule
	switch strings.TrimSpace(kind) {
	case "static":
		sched = ScheduleStatic
	case "dynamic":
		sched = ScheduleDynamic
	case "guided":
		sched = ScheduleGuided
	case "auto":
		sched = ScheduleAuto
	default:
		return 0, 0, fmt.Errorf("core: unknown schedule kind %q", kind)
	}
	chunk := 0
	if hasChunk {
		c, err := strconv.Atoi(strings.TrimSpace(chunkStr))
		if err != nil || c <= 0 {
			return 0, 0, fmt.Errorf("core: bad schedule chunk %q", chunkStr)
		}
		chunk = c
	}
	return sched, chunk, nil
}

// ICV holds the runtime's internal control variables, the subset of the
// OpenMP ICV table this runtime honors.
type ICV struct {
	// NumThreads is the team size for parallel regions (nthreads-var).
	NumThreads int
	// Schedule and Chunk implement run-sched-var, used by loops that ask
	// for the runtime schedule.
	Schedule Schedule
	Chunk    int
	// Dynamic mirrors dyn-var; when set the runtime may shrink teams to
	// the number of online processors.
	Dynamic bool
	// MaxThreads caps team sizes (thread-limit-var).
	MaxThreads int
}

// defaultMaxThreads bounds how large a team the runtime will ever fork; a
// backstop against runaway env settings, not a tuning knob.
const defaultMaxThreads = 256

// normalize clamps the ICVs into a sane envelope given the layer's
// processor count.
func (v *ICV) normalize(nprocs int) {
	if v.MaxThreads <= 0 {
		v.MaxThreads = defaultMaxThreads
	}
	if v.NumThreads <= 0 {
		v.NumThreads = nprocs
	}
	if v.NumThreads > v.MaxThreads {
		v.NumThreads = v.MaxThreads
	}
	if v.Dynamic && v.NumThreads > nprocs {
		v.NumThreads = nprocs
	}
	if v.Chunk < 0 {
		v.Chunk = 0
	}
}

// ICVFromEnv builds ICVs from OpenMP environment variables via the given
// lookup function (pass os.Getenv in production; tests inject maps).
// Recognized: OMP_NUM_THREADS, OMP_SCHEDULE, OMP_DYNAMIC,
// OMP_THREAD_LIMIT. Malformed values are ignored, matching libGOMP's
// forgiving env parsing.
func ICVFromEnv(getenv func(string) string) ICV {
	var v ICV
	if s := getenv("OMP_NUM_THREADS"); s != "" {
		// A comma-separated list configures nesting levels; only the first
		// matters here.
		first, _, _ := strings.Cut(s, ",")
		if n, err := strconv.Atoi(strings.TrimSpace(first)); err == nil && n > 0 {
			v.NumThreads = n
		}
	}
	if s := getenv("OMP_SCHEDULE"); s != "" {
		if sched, chunk, err := ParseSchedule(s); err == nil {
			v.Schedule = sched
			v.Chunk = chunk
		}
	}
	if s := getenv("OMP_DYNAMIC"); s != "" {
		v.Dynamic = strings.EqualFold(strings.TrimSpace(s), "true") || s == "1"
	}
	if s := getenv("OMP_THREAD_LIMIT"); s != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && n > 0 {
			v.MaxThreads = n
		}
	}
	return v
}
