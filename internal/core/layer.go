package core

import (
	"runtime"
	"sync"
)

// ThreadLayer abstracts the services the OpenMP runtime needs from its
// substrate — the exact three services the paper re-routes through MRAPI:
// worker-thread management, runtime memory allocation, and low-level
// mutual exclusion, plus the processor-count metadata query.
//
// Two implementations exist: NativeLayer (stock libGOMP stand-in) and
// MCALayer (the paper's MCA-libGOMP). The runtime above is byte-for-byte
// identical over either, which is what makes the EPCC overhead ratio
// (Table I) a measurement of the MCA indirection alone.
type ThreadLayer interface {
	// Name identifies the layer in reports ("native", "mca").
	Name() string
	// NumProcs reports the number of processors the layer believes are
	// online; the runtime sizes default teams with it.
	NumProcs() int
	// StartWorker launches persistent pool worker wid running loop; the
	// worker survives until the loop returns.
	StartWorker(wid int, loop func()) (Worker, error)
	// NewMutex creates a mutual-exclusion primitive for critical sections
	// and runtime locks. Lock/Unlock take the worker id of the caller (0
	// for the master) because MRAPI mutexes are owned by nodes.
	NewMutex() (RuntimeMutex, error)
	// Alloc obtains runtime-managed memory (gomp_malloc, paper
	// Listing 3): team and work-share bookkeeping blocks come from here.
	Alloc(size int) ([]byte, error)
	// Free returns memory obtained from Alloc (gomp_free); the runtime
	// calls it when a team's bookkeeping block dies at region end, so
	// long-lived runtimes do not accumulate segments. Buffers not
	// produced by Alloc are ignored.
	Free(buf []byte)
	// Close releases the layer's resources. The runtime guarantees all
	// workers have exited before Close.
	Close() error
}

// Worker is a handle to a pool worker thread.
type Worker interface {
	// Join blocks until the worker's loop has returned.
	Join()
}

// RuntimeMutex is the lock primitive a ThreadLayer provides. wid
// identifies the calling worker (0 = master thread) so node-owned
// implementations (MRAPI) can attribute the acquisition.
type RuntimeMutex interface {
	Lock(wid int)
	Unlock(wid int)
}

// ----- Native layer -----

// NativeLayer implements ThreadLayer directly on the Go runtime:
// goroutines for workers, sync.Mutex for exclusion, the Go allocator for
// memory. It stands in for the proprietary GNU OpenMP runtime the paper
// benchmarks against.
type NativeLayer struct {
	nprocs int
}

// NewNativeLayer creates a native layer reporting nprocs processors; 0
// means "ask the host" (runtime.NumCPU). The EPCC and NAS harnesses pass
// the modeled board's thread count so both layers see the same topology.
func NewNativeLayer(nprocs int) *NativeLayer {
	if nprocs <= 0 {
		nprocs = runtime.NumCPU()
	}
	return &NativeLayer{nprocs: nprocs}
}

// Name implements ThreadLayer.
func (l *NativeLayer) Name() string { return "native" }

// NumProcs implements ThreadLayer.
func (l *NativeLayer) NumProcs() int { return l.nprocs }

// StartWorker implements ThreadLayer with a plain goroutine.
func (l *NativeLayer) StartWorker(wid int, loop func()) (Worker, error) {
	w := &nativeWorker{done: make(chan struct{})}
	go func() {
		defer close(w.done)
		loop()
	}()
	return w, nil
}

type nativeWorker struct{ done chan struct{} }

func (w *nativeWorker) Join() { <-w.done }

// NewMutex implements ThreadLayer with a sync.Mutex.
func (l *NativeLayer) NewMutex() (RuntimeMutex, error) { return &nativeMutex{}, nil }

type nativeMutex struct{ mu sync.Mutex }

func (m *nativeMutex) Lock(int)   { m.mu.Lock() }
func (m *nativeMutex) Unlock(int) { m.mu.Unlock() }

// Alloc implements ThreadLayer with make.
func (l *NativeLayer) Alloc(size int) ([]byte, error) { return make([]byte, size), nil }

// Free implements ThreadLayer; the garbage collector reclaims native
// allocations.
func (l *NativeLayer) Free([]byte) {}

// Close implements ThreadLayer; the native layer holds nothing.
func (l *NativeLayer) Close() error { return nil }
