package core

// Team leasing: a warm-team cache in front of newTeam, so concurrent
// Parallel callers lease pre-built team structures — barrier, worksharing
// database, task deques AND the MRAPI-allocated shmem bookkeeping block —
// instead of paying a full construction + layer allocation per region.
// This is the Thibault et al. observation (reuse warm thread/team
// structures across regions) applied one level above the worker pool,
// which already reuses the threads themselves (§5B1).
//
// Teams are cached per size. A clean region end leaves every structure
// reusable as-is (the barrier completed its episode, worksharing records
// were retired, the deques drained); an abnormal end — cancellation or a
// contained panic — poisons the team and Team.reset rebuilds the
// coordination structures before the team re-enters the cache, so a
// panicking region can never leak a broken barrier into a later one.

// teamCachePerSize bounds the cached teams per team size, so a burst of
// wide concurrency does not pin team structures (and their layer
// allocations) forever.
const teamCachePerSize = 16

// leaseTeam returns an armed team of the given size: a cached one when
// leasing is on and the cache has a fit (a lease hit), a fresh build
// otherwise.
func (r *Runtime) leaseTeam(n int) (*Team, error) {
	if r.teamLease {
		r.leaseMu.Lock()
		if cached := r.leases[n]; len(cached) > 0 {
			t := cached[len(cached)-1]
			r.leases[n] = cached[:len(cached)-1]
			r.leaseMu.Unlock()
			r.stats.LeaseHits.Add(1)
			t.arm()
			return t, nil
		}
		r.leaseMu.Unlock()
	}
	r.stats.LeaseMisses.Add(1)
	return newTeam(r, n)
}

// releaseTeam returns a team to the cache at region end, rebuilding the
// coordination structures first when the region ended abnormally. Teams
// beyond the per-size cache bound — and every team once the runtime is
// closed or leasing is off — give their bookkeeping block back to the
// layer, the original per-region gomp_free.
func (r *Runtime) releaseTeam(t *Team) {
	if t.poisoned {
		t.reset()
	}
	if r.teamLease && !r.closed.Load() {
		r.leaseMu.Lock()
		if len(r.leases[t.size]) < teamCachePerSize {
			r.leases[t.size] = append(r.leases[t.size], t)
			r.leaseMu.Unlock()
			return
		}
		r.leaseMu.Unlock()
	}
	r.layer.Free(t.shmem)
}

// drainTeamCache frees every cached team's bookkeeping block (Close).
func (r *Runtime) drainTeamCache() {
	r.leaseMu.Lock()
	leases := r.leases
	r.leases = make(map[int][]*Team)
	r.leaseMu.Unlock()
	for _, cached := range leases {
		for _, t := range cached {
			r.layer.Free(t.shmem)
		}
	}
}

// acquireMasterWID leases a layer-level identity for a region's thread 0.
// The forking goroutine is not a pool worker, so it has no worker id of
// its own; concurrent forks still need distinct lock-attribution
// identities (MRAPI nodes are deadlock-checked per owner). Slot 0 maps to
// wid 0 — the master node, preserving the single-caller behavior — and
// every additional concurrent caller gets a negative wid the MCA layer
// registers a caller node for on first use. Slots are recycled, so the
// id space stays as small as the peak concurrency.
func (r *Runtime) acquireMasterWID() int {
	r.masterMu.Lock()
	defer r.masterMu.Unlock()
	if n := len(r.masterFree); n > 0 {
		slot := r.masterFree[n-1]
		r.masterFree = r.masterFree[:n-1]
		return -slot
	}
	slot := r.masterNext
	r.masterNext++
	return -slot
}

// releaseMasterWID recycles a leased master identity.
func (r *Runtime) releaseMasterWID(wid int) {
	r.masterMu.Lock()
	defer r.masterMu.Unlock()
	r.masterFree = append(r.masterFree, -wid)
}
