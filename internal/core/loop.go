package core

import (
	"sync"
	"sync/atomic"
)

// workshare is the per-construct coordination record shared by a team for
// one dynamic worksharing instance (dynamic/guided loop, sections, single).
// Static loops need no shared state and allocate none.
type workshare struct {
	// next is the dynamic-schedule / sections iteration dispenser.
	next atomic.Int64
	// guided state, guarded by mu.
	mu        sync.Mutex
	remaining int
	issued    bool
	// claimed is the single-construct winner flag.
	claimed atomic.Bool
	// ordered-construct sequencing: ordNext is the iteration whose
	// ordered section may run; waiters park on ordCond.
	ordMu   sync.Mutex
	ordCond *sync.Cond
	ordNext int
	// slots and result carry a reduction exchange (guarded by mu for the
	// slot writes; result is written by thread 0 between the reduction's
	// two barriers).
	slots  []any
	result any
	// done counts threads finished with this instance (for cleanup).
	done atomic.Int32
}

// LoopOpts configure a worksharing loop.
type LoopOpts struct {
	// Schedule selects the policy; pass ScheduleRuntime semantics by
	// leaving UseRuntime true instead.
	Schedule Schedule
	// Chunk is the schedule's chunk size (0 = policy default).
	Chunk int
	// UseRuntime takes schedule and chunk from the runtime ICVs
	// (schedule(runtime)).
	UseRuntime bool
	// NoWait skips the implied end-of-loop barrier.
	NoWait bool
	// Ordered declares that the loop body contains Context.Ordered
	// sections, which then execute in iteration order.
	Ordered bool
}

// For workshares iterations 0..n-1 over the team with the runtime
// schedule, invoking body once per iteration (#pragma omp for).
func (c *Context) For(n int, body func(i int)) {
	c.ForOpts(n, LoopOpts{UseRuntime: true}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange workshares iterations with the given schedule, handing the
// body contiguous [lo,hi) chunks — the zero-overhead form for tight
// kernels.
func (c *Context) ForRange(n int, opts LoopOpts, body func(lo, hi int)) {
	c.ForOpts(n, opts, body)
}

// ForOpts is the full worksharing loop. Every thread of the team must
// reach it (OpenMP worksharing rule); the runtime matches instances across
// threads by arrival order.
func (c *Context) ForOpts(n int, opts LoopOpts, body func(lo, hi int)) {
	t := c.team
	sched, chunk := opts.Schedule, opts.Chunk
	if opts.UseRuntime {
		sched, chunk = t.rt.RuntimeSchedule()
	}
	if sched == ScheduleAuto {
		sched = ScheduleStatic
	}

	gen := c.wsGen
	c.wsGen++

	if n > 0 {
		var ws *workshare
		if sched != ScheduleStatic || opts.Ordered {
			ws = t.workshareAt(gen)
		}
		if opts.Ordered {
			prev := c.loopWS
			c.loopWS = ws
			defer func() { c.loopWS = prev }()
		}
		switch sched {
		case ScheduleStatic:
			c.staticLoop(n, chunk, body)
		case ScheduleDynamic:
			c.dynamicLoop(ws, n, chunk, body)
		case ScheduleGuided:
			c.guidedLoop(ws, n, chunk, body)
		}
		if ws != nil {
			t.finishWorkshare(gen, ws)
		}
	}

	if !opts.NoWait {
		c.Barrier()
	}
}

// Ordered runs fn as iteration i's ordered section: sections execute in
// ascending iteration order across the team (#pragma omp ordered). It
// must be called from inside a loop declared with LoopOpts.Ordered; every
// iteration of that loop must reach it exactly once. An orphaned call
// (no ordered loop active) just runs fn, matching a one-thread binding.
func (c *Context) Ordered(i int, fn func()) {
	ws := c.loopWS
	if ws == nil {
		fn()
		return
	}
	t := c.team
	ws.ordMu.Lock()
	if ws.ordCond == nil {
		ws.ordCond = sync.NewCond(&ws.ordMu)
	}
	for ws.ordNext != i && !t.canceled() {
		ws.ordCond.Wait()
	}
	ws.ordMu.Unlock()
	// Ordered entry is a cancellation point: a canceled team's sequencing
	// chain is broken (earlier iterations may never run their sections),
	// so waiting threads unwind instead of completing out of order.
	t.checkCancel()

	fn()

	ws.ordMu.Lock()
	ws.ordNext = i + 1
	ws.ordCond.Broadcast()
	ws.ordMu.Unlock()
}

// staticLoop implements schedule(static[,chunk]) with no shared state.
func (c *Context) staticLoop(n, chunk int, body func(lo, hi int)) {
	size, tid := c.team.size, c.tid
	if chunk <= 0 {
		// Block distribution: one contiguous range per thread, remainder
		// spread over the leading threads (libGOMP's static split).
		q, rem := n/size, n%size
		lo := tid*q + min(tid, rem)
		hi := lo + q
		if tid < rem {
			hi++
		}
		if lo < hi {
			// One pre-dispatch cancellation point; the contiguous block
			// itself is handed to the body whole and runs to completion.
			c.team.checkCancel()
			body(lo, hi)
		}
		return
	}
	// Chunked static: chunks dealt round-robin by thread id. Chunk
	// boundaries are cancellation points.
	for lo := tid * chunk; lo < n; lo += size * chunk {
		c.team.checkCancel()
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(lo, hi)
	}
}

// dynamicLoop implements schedule(dynamic[,chunk]) over a shared atomic
// dispenser.
func (c *Context) dynamicLoop(ws *workshare, n, chunk int, body func(lo, hi int)) {
	if chunk <= 0 {
		chunk = 1
	}
	stats := &c.team.rt.stats
	for {
		// Chunk dispatch is a cancellation point (OpenMP cancel parallel):
		// a canceled team stops handing out iterations and unwinds.
		c.team.checkCancel()
		lo := int(ws.next.Add(int64(chunk))) - chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		stats.Chunks.Add(1)
		body(lo, hi)
	}
}

// guidedLoop implements schedule(guided[,chunk]): exponentially shrinking
// chunks of remaining/(2·threads), floored at the chunk size.
func (c *Context) guidedLoop(ws *workshare, n, minChunk int, body func(lo, hi int)) {
	if minChunk <= 0 {
		minChunk = 1
	}
	size := c.team.size
	stats := &c.team.rt.stats
	for {
		c.team.checkCancel()
		ws.mu.Lock()
		if !ws.issued {
			ws.issued = true
			ws.remaining = n
		}
		if ws.remaining == 0 {
			ws.mu.Unlock()
			return
		}
		take := ws.remaining / (2 * size)
		if take < minChunk {
			take = minChunk
		}
		if take > ws.remaining {
			take = ws.remaining
		}
		lo := n - ws.remaining
		ws.remaining -= take
		ws.mu.Unlock()
		stats.Chunks.Add(1)
		body(lo, lo+take)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
