package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// coverage runs a loop under the given options and verifies every
// iteration executes exactly once.
func coverage(t *testing.T, rt *Runtime, n int, opts LoopOpts) {
	t.Helper()
	counts := make([]atomic.Int32, n)
	if err := rt.Parallel(func(c *Context) {
		c.ForOpts(n, opts, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("iteration %d ran %d times (opts %+v)", i, got, opts)
		}
	}
}

func TestLoopSchedulesCoverAllIterations(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(7))
		cases := []LoopOpts{
			{Schedule: ScheduleStatic},
			{Schedule: ScheduleStatic, Chunk: 3},
			{Schedule: ScheduleDynamic},
			{Schedule: ScheduleDynamic, Chunk: 5},
			{Schedule: ScheduleGuided},
			{Schedule: ScheduleGuided, Chunk: 2},
			{Schedule: ScheduleAuto},
			{Schedule: ScheduleDynamic, Chunk: 4, NoWait: true},
		}
		for _, opts := range cases {
			for _, n := range []int{0, 1, 6, 7, 100, 1000} {
				coverage(t, rt, n, opts)
			}
		}
	})
}

func TestStaticBlockDistributionIsContiguousAndBalanced(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	type rng struct{ lo, hi int }
	got := make([][]rng, 4)
	var mu sync.Mutex
	_ = rt.Parallel(func(c *Context) {
		c.ForOpts(10, LoopOpts{Schedule: ScheduleStatic}, func(lo, hi int) {
			mu.Lock()
			got[c.ThreadNum()] = append(got[c.ThreadNum()], rng{lo, hi})
			mu.Unlock()
		})
	})
	// 10 iterations over 4 threads: 3,3,2,2 — remainder on leading threads.
	want := []rng{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for tid, w := range want {
		if len(got[tid]) != 1 || got[tid][0] != w {
			t.Errorf("tid %d ranges = %v, want [%v]", tid, got[tid], w)
		}
	}
}

func TestStaticChunkedRoundRobin(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(2))
	defer rt.Close()
	owner := make([]int32, 8)
	_ = rt.Parallel(func(c *Context) {
		c.ForOpts(8, LoopOpts{Schedule: ScheduleStatic, Chunk: 2}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.StoreInt32(&owner[i], int32(c.ThreadNum()))
			}
		})
	})
	// chunks: [0,2) t0, [2,4) t1, [4,6) t0, [6,8) t1
	want := []int32{0, 0, 1, 1, 0, 0, 1, 1}
	for i := range want {
		if owner[i] != want[i] {
			t.Errorf("owner = %v, want %v", owner, want)
			break
		}
	}
}

func TestDynamicScheduleBalancesSkewedWork(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		// Iteration 0 parks until every other iteration has executed: with
		// a dynamic schedule the remaining threads must be able to drain
		// the whole iteration space meanwhile. (A static schedule would
		// deadlock here, since iteration 0's owner also owns later ones.)
		var done atomic.Int64
		_ = rt.Parallel(func(c *Context) {
			c.ForOpts(64, LoopOpts{Schedule: ScheduleDynamic}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 0 {
						for done.Load() < 63 {
							runtime.Gosched()
						}
					} else {
						done.Add(1)
					}
				}
			})
		})
		if done.Load() != 63 {
			t.Errorf("done = %d, want 63", done.Load())
		}
	})
}

func TestGuidedChunksShrink(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	var mu sync.Mutex
	var sizes []int
	_ = rt.Parallel(func(c *Context) {
		c.ForOpts(1000, LoopOpts{Schedule: ScheduleGuided}, func(lo, hi int) {
			mu.Lock()
			sizes = append(sizes, hi-lo)
			mu.Unlock()
		})
	})
	if len(sizes) < 4 {
		t.Fatalf("guided issued only %d chunks", len(sizes))
	}
	maxSize := 0
	total := 0
	for _, s := range sizes {
		total += s
		if s > maxSize {
			maxSize = s
		}
	}
	if total != 1000 {
		t.Errorf("total = %d, want 1000", total)
	}
	// First chunk is remaining/(2·threads) = 125; nothing may exceed it.
	if maxSize > 125 {
		t.Errorf("max chunk = %d, want <= 125", maxSize)
	}
}

func TestForPerIteration(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(5), WithSchedule(ScheduleDynamic, 2))
		var sum atomic.Int64
		_ = rt.Parallel(func(c *Context) {
			c.For(100, func(i int) { sum.Add(int64(i)) })
		})
		if sum.Load() != 99*100/2 {
			t.Errorf("sum = %d, want %d", sum.Load(), 99*100/2)
		}
	})
}

func TestParallelForConvenience(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(6))
		// Paper Listing 1: b[i] = (a[i] + a[i-1]) / 2.
		n := 512
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(i)
		}
		if err := rt.ParallelFor(n-1, func(i int) {
			b[i+1] = (a[i+1] + a[i]) / 2.0
		}); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			want := (a[i] + a[i-1]) / 2
			if b[i] != want {
				t.Fatalf("b[%d] = %v, want %v", i, b[i], want)
			}
		}
	})
}

func TestNoWaitLoopsDoNotBarrier(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	before := rt.Stats().Snapshot().Barriers
	_ = rt.Parallel(func(c *Context) {
		c.ForOpts(16, LoopOpts{Schedule: ScheduleDynamic, NoWait: true}, func(lo, hi int) {})
	})
	after := rt.Stats().Snapshot().Barriers
	// Only the implicit region-end barrier may have fired.
	if after-before != 1 {
		t.Errorf("barriers during nowait loop = %d, want 1 (implicit only)", after-before)
	}
}

func TestConsecutiveLoopsStayMatched(t *testing.T) {
	// Many worksharing constructs in one region: generations must line up
	// and the workshare database must not leak.
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var sum atomic.Int64
		_ = rt.Parallel(func(c *Context) {
			for round := 0; round < 50; round++ {
				c.ForOpts(40, LoopOpts{Schedule: ScheduleDynamic, Chunk: 3}, func(lo, hi int) {
					sum.Add(int64(hi - lo))
				})
			}
		})
		if sum.Load() != 50*40 {
			t.Errorf("sum = %d, want %d", sum.Load(), 50*40)
		}
	})
}

func TestWorkshareDatabaseDrains(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	var team *Team
	_ = rt.Parallel(func(c *Context) {
		if c.ThreadNum() == 0 {
			team = c.team
		}
		for round := 0; round < 20; round++ {
			c.ForOpts(16, LoopOpts{Schedule: ScheduleDynamic}, func(lo, hi int) {})
		}
	})
	team.wsMu.Lock()
	live := len(team.ws)
	team.wsMu.Unlock()
	if live != 0 {
		t.Errorf("%d workshares leaked", live)
	}
}

// Property: for any thread count, schedule, chunk and n, every iteration
// runs exactly once.
func TestPropLoopCoverage(t *testing.T) {
	rtCache := map[int]*Runtime{}
	t.Cleanup(func() {
		for _, rt := range rtCache {
			_ = rt.Close()
		}
	})
	f := func(threads8, sched8, chunk8 uint8, n16 uint16) bool {
		threads := int(threads8)%8 + 1
		sched := Schedule(int(sched8) % 4)
		chunk := int(chunk8) % 10
		n := int(n16) % 500
		rt, ok := rtCache[threads]
		if !ok {
			var err error
			rt, err = New(WithLayer(NewNativeLayer(24)), WithNumThreads(threads))
			if err != nil {
				return false
			}
			rtCache[threads] = rt
		}
		counts := make([]int32, n)
		err := rt.Parallel(func(c *Context) {
			c.ForOpts(n, LoopOpts{Schedule: sched, Chunk: chunk}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
		})
		if err != nil {
			return false
		}
		for i := range counts {
			if counts[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
