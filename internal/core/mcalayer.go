package core

import (
	"fmt"
	"sync"

	"openmpmca/internal/mrapi"
)

// MCADomain is the MRAPI domain the OpenMP runtime claims for itself.
const MCADomain mrapi.DomainID = 1

// mcaMasterNode is the node ID of the initial (master) thread; worker
// nodes are numbered from mcaWorkerBase+1 upward, mirroring the paper's
// scheme of registering every worker thread as an MRAPI node (§5B1).
const (
	mcaMasterNode mrapi.NodeID = 0
	mcaWorkerBase mrapi.NodeID = 100
	mcaShmemBase  mrapi.Key    = 0x5000
	mcaMutexBase  mrapi.Key    = 0x9000
)

// MCAOption configures an MCALayer.
type MCAOption func(*MCALayer)

// WithBrokenMutex injects the fault the paper reports finding with its
// validation suite (§6A): the layer hands out non-functional mutexes whose
// lock/unlock operations do nothing. Used by the validation package to
// prove the suite detects the bug; never enable it elsewhere.
func WithBrokenMutex() MCAOption {
	return func(l *MCALayer) { l.brokenMutex = true }
}

// MCALayer implements ThreadLayer on top of MRAPI, reproducing the
// paper's MCA-libGOMP design:
//
//   - every pool worker is an MRAPI node whose thread is created through
//     the node-management extension (mrapi_thread_create, Listing 2);
//   - runtime allocations go through the shared-memory/malloc extension
//     (mrapi_shmem_create_malloc, Listing 3);
//   - critical-section mutexes are MRAPI mutexes (Listing 4);
//   - the processor count comes from the MRAPI metadata resource tree
//     (§5B4).
type MCALayer struct {
	sys    *mrapi.System
	master *mrapi.Node

	mu        sync.Mutex
	nodes     map[int]*mrapi.Node // worker id -> node (0 = master)
	nextShmem mrapi.Key
	nextMutex mrapi.Key
	shmems    map[*byte]*mrapi.Shmem // live allocations, keyed by buffer identity
	mutexes   []*mrapi.Mutex
	closed    bool

	brokenMutex bool
}

// NewMCALayer binds an MCA thread layer to the given MRAPI universe
// (typically board.NewSystem()). It initializes the master node and reads
// the metadata tree.
func NewMCALayer(sys *mrapi.System, opts ...MCAOption) (*MCALayer, error) {
	master, err := sys.Initialize(MCADomain, mcaMasterNode, &mrapi.NodeAttributes{
		Name:     "omp-master",
		Affinity: -1,
	})
	if err != nil {
		return nil, fmt.Errorf("core: initializing MRAPI master node: %w", err)
	}
	l := &MCALayer{
		sys:       sys,
		master:    master,
		nodes:     map[int]*mrapi.Node{0: master},
		nextShmem: mcaShmemBase,
		nextMutex: mcaMutexBase,
		shmems:    make(map[*byte]*mrapi.Shmem),
	}
	for _, o := range opts {
		o(l)
	}
	return l, nil
}

// Name implements ThreadLayer.
func (l *MCALayer) Name() string { return "mca" }

// System exposes the underlying MRAPI universe (used by tests and tools).
func (l *MCALayer) System() *mrapi.System { return l.sys }

// NumProcs implements ThreadLayer by walking the MRAPI metadata resource
// tree for online hardware threads (§5B4).
func (l *MCALayer) NumProcs() int { return l.master.ProcessorsOnline() }

// StartWorker implements ThreadLayer: it initializes an MRAPI node for the
// worker and creates its thread through the node-management extension. The
// node is registered in the domain's global database for the worker's
// lifetime, exactly as the paper's runtime registers each forked thread.
func (l *MCALayer) StartWorker(wid int, loop func()) (Worker, error) {
	node, err := l.sys.Initialize(MCADomain, mcaWorkerBase+mrapi.NodeID(wid), &mrapi.NodeAttributes{
		Name:     fmt.Sprintf("omp-worker-%d", wid),
		Affinity: wid,
	})
	if err != nil {
		return nil, fmt.Errorf("core: initializing MRAPI node for worker %d: %w", wid, err)
	}
	l.mu.Lock()
	l.nodes[wid] = node
	l.mu.Unlock()

	th, err := node.SpawnThread(mrapi.ThreadParams{
		Name:  fmt.Sprintf("omp-worker-%d", wid),
		Start: loop,
	})
	if err != nil {
		_ = node.Finalize()
		return nil, fmt.Errorf("core: spawning MRAPI thread for worker %d: %w", wid, err)
	}
	return &mcaWorker{layer: l, wid: wid, node: node, thread: th}, nil
}

type mcaWorker struct {
	layer  *MCALayer
	wid    int
	node   *mrapi.Node
	thread *mrapi.NodeThread
}

// Join waits for the worker's loop to return, then finalizes its MRAPI
// node — the paper's post-region rundown (§5B1): exit the thread, release
// the node's registration.
func (w *mcaWorker) Join() {
	w.thread.Join()
	w.layer.mu.Lock()
	delete(w.layer.nodes, w.wid)
	w.layer.mu.Unlock()
	_ = w.node.Finalize()
}

// node resolves a worker id to its MRAPI node, falling back to the master
// for ids with no node (e.g. lock use before workers exist).
func (l *MCALayer) node(wid int) *mrapi.Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.nodes[wid]; ok {
		return n
	}
	return l.master
}

// NewMutex implements ThreadLayer with an MRAPI mutex created in the
// domain database (Listing 4).
func (l *MCALayer) NewMutex() (RuntimeMutex, error) {
	if l.brokenMutex {
		return brokenMutex{}, nil
	}
	l.mu.Lock()
	key := l.nextMutex
	l.nextMutex++
	l.mu.Unlock()
	m, err := l.master.MutexCreate(key, nil)
	if err != nil {
		return nil, fmt.Errorf("core: creating MRAPI mutex: %w", err)
	}
	l.mu.Lock()
	l.mutexes = append(l.mutexes, m)
	l.mu.Unlock()
	return &mcaMutex{layer: l, m: m}, nil
}

type mcaMutex struct {
	layer *MCALayer
	m     *mrapi.Mutex
}

// Lock maps onto mrapi_mutex_lock with an infinite timeout, as in the
// paper's gomp_mrapi_mutex_lock (Listing 4).
func (mm *mcaMutex) Lock(wid int) {
	node := mm.layer.node(wid)
	if _, err := mm.m.Lock(node, mrapi.TimeoutInfinite); err != nil {
		panic(fmt.Sprintf("core: MRAPI mutex lock failed: %v", err))
	}
}

// Unlock maps onto mrapi_mutex_unlock.
func (mm *mcaMutex) Unlock(wid int) {
	node := mm.layer.node(wid)
	if err := mm.m.Unlock(node, 0); err != nil {
		panic(fmt.Sprintf("core: MRAPI mutex unlock failed: %v", err))
	}
}

// brokenMutex reproduces the paper's §6A bug: a synchronization primitive
// that silently does nothing, making critical constructs racy.
type brokenMutex struct{}

func (brokenMutex) Lock(int)   {}
func (brokenMutex) Unlock(int) {}

// Alloc implements ThreadLayer through the shared-memory/malloc extension
// (Listing 3): a heap-kind MRAPI shmem segment attached by the master
// node. Failure maps to an error the runtime reports as gomp_fatal would.
func (l *MCALayer) Alloc(size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: MRAPI allocation of %d bytes", size)
	}
	l.mu.Lock()
	key := l.nextShmem
	l.nextShmem++
	l.mu.Unlock()
	buf, seg, err := l.master.ShmemCreateMalloc(key, size)
	if err != nil {
		return nil, fmt.Errorf("core: MRAPI failed memory allocation: %w", err)
	}
	l.mu.Lock()
	l.shmems[&buf[0]] = seg
	l.mu.Unlock()
	return buf, nil
}

// Free implements ThreadLayer: detach and delete the backing MRAPI
// segment, releasing its key — the gomp_free counterpart of Listing 3.
// Unknown buffers (not from Alloc, or already freed) are ignored.
func (l *MCALayer) Free(buf []byte) {
	if len(buf) == 0 {
		return
	}
	l.mu.Lock()
	seg, ok := l.shmems[&buf[0]]
	if ok {
		delete(l.shmems, &buf[0])
	}
	l.mu.Unlock()
	if !ok {
		return
	}
	_ = seg.Detach(l.master)
	_ = seg.Delete(l.master)
}

// Close finalizes the master node and releases every MRAPI object the
// layer created.
func (l *MCALayer) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	shmems := l.shmems
	mutexes := l.mutexes
	l.shmems, l.mutexes = nil, nil
	l.mu.Unlock()

	for _, s := range shmems {
		_ = s.Detach(l.master)
		_ = s.Delete(l.master)
	}
	for _, m := range mutexes {
		_ = m.Delete(l.master)
	}
	return l.master.Finalize()
}
