package core

import (
	"fmt"
	"sync"
	"unsafe"

	"openmpmca/internal/mrapi"
)

// MCADomain is the MRAPI domain the OpenMP runtime claims for itself.
const MCADomain mrapi.DomainID = 1

// mcaMasterNode is the node ID of the initial (master) thread; worker
// nodes are numbered from mcaWorkerBase+1 upward, mirroring the paper's
// scheme of registering every worker thread as an MRAPI node (§5B1).
const (
	mcaMasterNode mrapi.NodeID = 0
	mcaWorkerBase mrapi.NodeID = 100
	mcaCallerBase mrapi.NodeID = 0x10000
	mcaShmemBase  mrapi.Key    = 0x5000
	mcaMutexBase  mrapi.Key    = 0x9000
)

// MCAOption configures an MCALayer.
type MCAOption func(*MCALayer)

// WithBrokenMutex injects the fault the paper reports finding with its
// validation suite (§6A): the layer hands out non-functional mutexes whose
// lock/unlock operations do nothing. Used by the validation package to
// prove the suite detects the bug; never enable it elsewhere.
func WithBrokenMutex() MCAOption {
	return func(l *MCALayer) { l.brokenMutex = true }
}

// WithAllocDebug makes Free trap (panic) when handed a sub-slice of a live
// Alloc result instead of silently leaking the MRAPI segment — the debug
// mode for hunting gomp_free misuse. Without it such frees are counted in
// FreeMisses and the segment stays live until Close.
func WithAllocDebug() MCAOption {
	return func(l *MCALayer) { l.allocDebug = true }
}

// MCALayer implements ThreadLayer on top of MRAPI, reproducing the
// paper's MCA-libGOMP design:
//
//   - every pool worker is an MRAPI node whose thread is created through
//     the node-management extension (mrapi_thread_create, Listing 2);
//   - runtime allocations go through the shared-memory/malloc extension
//     (mrapi_shmem_create_malloc, Listing 3);
//   - critical-section mutexes are MRAPI mutexes (Listing 4);
//   - the processor count comes from the MRAPI metadata resource tree
//     (§5B4).
type MCALayer struct {
	sys    *mrapi.System
	master *mrapi.Node

	mu        sync.Mutex
	nodes     map[int]*mrapi.Node // worker id -> node (0 = master, <0 = leased caller)
	callers   []*mrapi.Node       // lazily registered caller nodes, finalized at Close
	nextShmem mrapi.Key
	nextMutex mrapi.Key
	shmems    map[*byte]*mcaAlloc // live allocations, keyed by base pointer
	mutexes   []*mrapi.Mutex
	closed    bool

	// freeMisses counts Free calls that matched no live allocation —
	// leaked MRAPI segment keys unless the buffer never came from Alloc.
	freeMisses int

	brokenMutex bool
	allocDebug  bool
}

// mcaAlloc is one live Alloc result: the backing MRAPI segment and the
// buffer it returned (kept so sub-slice frees can be diagnosed).
type mcaAlloc struct {
	seg *mrapi.Shmem
	buf []byte
}

// NewMCALayer binds an MCA thread layer to the given MRAPI universe
// (typically board.NewSystem()). It initializes the master node and reads
// the metadata tree.
func NewMCALayer(sys *mrapi.System, opts ...MCAOption) (*MCALayer, error) {
	master, err := sys.Initialize(MCADomain, mcaMasterNode, &mrapi.NodeAttributes{
		Name:     "omp-master",
		Affinity: -1,
	})
	if err != nil {
		return nil, fmt.Errorf("core: initializing MRAPI master node: %w", err)
	}
	l := &MCALayer{
		sys:       sys,
		master:    master,
		nodes:     map[int]*mrapi.Node{0: master},
		nextShmem: mcaShmemBase,
		nextMutex: mcaMutexBase,
		shmems:    make(map[*byte]*mcaAlloc),
	}
	for _, o := range opts {
		o(l)
	}
	return l, nil
}

// Name implements ThreadLayer.
func (l *MCALayer) Name() string { return "mca" }

// System exposes the underlying MRAPI universe (used by tests and tools).
func (l *MCALayer) System() *mrapi.System { return l.sys }

// NumProcs implements ThreadLayer by walking the MRAPI metadata resource
// tree for online hardware threads (§5B4).
func (l *MCALayer) NumProcs() int { return l.master.ProcessorsOnline() }

// StartWorker implements ThreadLayer: it initializes an MRAPI node for the
// worker and creates its thread through the node-management extension. The
// node is registered in the domain's global database for the worker's
// lifetime, exactly as the paper's runtime registers each forked thread.
func (l *MCALayer) StartWorker(wid int, loop func()) (Worker, error) {
	node, err := l.sys.Initialize(MCADomain, mcaWorkerBase+mrapi.NodeID(wid), &mrapi.NodeAttributes{
		Name:     fmt.Sprintf("omp-worker-%d", wid),
		Affinity: wid,
	})
	if err != nil {
		return nil, fmt.Errorf("core: initializing MRAPI node for worker %d: %w", wid, err)
	}
	l.mu.Lock()
	l.nodes[wid] = node
	l.mu.Unlock()

	th, err := node.SpawnThread(mrapi.ThreadParams{
		Name:  fmt.Sprintf("omp-worker-%d", wid),
		Start: loop,
	})
	if err != nil {
		_ = node.Finalize()
		return nil, fmt.Errorf("core: spawning MRAPI thread for worker %d: %w", wid, err)
	}
	return &mcaWorker{layer: l, wid: wid, node: node, thread: th}, nil
}

type mcaWorker struct {
	layer  *MCALayer
	wid    int
	node   *mrapi.Node
	thread *mrapi.NodeThread
}

// Join waits for the worker's loop to return, then finalizes its MRAPI
// node — the paper's post-region rundown (§5B1): exit the thread, release
// the node's registration.
func (w *mcaWorker) Join() {
	w.thread.Join()
	w.layer.mu.Lock()
	delete(w.layer.nodes, w.wid)
	w.layer.mu.Unlock()
	_ = w.node.Finalize()
}

// node resolves a worker id to its MRAPI node, falling back to the master
// for ids with no node (e.g. lock use before workers exist).
//
// Negative ids are leased caller identities (see Runtime.acquireMasterWID):
// the forking goroutine of a concurrent region, which is not a pool worker
// but still needs a distinct lock-attribution node — MRAPI deadlock-checks
// mutexes per owning node, so two concurrent masters sharing one node
// would trip a false self-deadlock on the same critical mutex. Caller
// nodes are registered in the domain database lazily on first lock use
// and finalized at Close.
func (l *MCALayer) node(wid int) *mrapi.Node {
	l.mu.Lock()
	if n, ok := l.nodes[wid]; ok {
		l.mu.Unlock()
		return n
	}
	if wid >= 0 || l.closed {
		l.mu.Unlock()
		return l.master
	}
	l.mu.Unlock()
	n, err := l.sys.Initialize(MCADomain, mcaCallerBase+mrapi.NodeID(-wid), &mrapi.NodeAttributes{
		Name:     fmt.Sprintf("omp-caller-%d", -wid),
		Affinity: -1,
	})
	if err != nil {
		// Degraded attribution: the master node stands in. Concurrent
		// callers contending for one mutex may then trip the MRAPI
		// self-deadlock check, which surfaces as a contained region panic
		// rather than a hang.
		return l.master
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if raced, ok := l.nodes[wid]; ok {
		// Another goroutine registered this id first; ours is redundant.
		_ = n.Finalize()
		return raced
	}
	if l.closed {
		_ = n.Finalize()
		return l.master
	}
	l.nodes[wid] = n
	l.callers = append(l.callers, n)
	return n
}

// NewMutex implements ThreadLayer with an MRAPI mutex created in the
// domain database (Listing 4).
func (l *MCALayer) NewMutex() (RuntimeMutex, error) {
	if l.brokenMutex {
		return brokenMutex{}, nil
	}
	l.mu.Lock()
	key := l.nextMutex
	l.nextMutex++
	l.mu.Unlock()
	m, err := l.master.MutexCreate(key, nil)
	if err != nil {
		return nil, fmt.Errorf("core: creating MRAPI mutex: %w", err)
	}
	l.mu.Lock()
	l.mutexes = append(l.mutexes, m)
	l.mu.Unlock()
	return &mcaMutex{layer: l, m: m}, nil
}

type mcaMutex struct {
	layer *MCALayer
	m     *mrapi.Mutex
}

// Lock maps onto mrapi_mutex_lock with an infinite timeout, as in the
// paper's gomp_mrapi_mutex_lock (Listing 4).
func (mm *mcaMutex) Lock(wid int) {
	node := mm.layer.node(wid)
	if _, err := mm.m.Lock(node, mrapi.TimeoutInfinite); err != nil {
		panic(fmt.Sprintf("core: MRAPI mutex lock failed: %v", err))
	}
}

// Unlock maps onto mrapi_mutex_unlock.
func (mm *mcaMutex) Unlock(wid int) {
	node := mm.layer.node(wid)
	if err := mm.m.Unlock(node, 0); err != nil {
		panic(fmt.Sprintf("core: MRAPI mutex unlock failed: %v", err))
	}
}

// brokenMutex reproduces the paper's §6A bug: a synchronization primitive
// that silently does nothing, making critical constructs racy.
type brokenMutex struct{}

func (brokenMutex) Lock(int)   {}
func (brokenMutex) Unlock(int) {}

// Alloc implements ThreadLayer through the shared-memory/malloc extension
// (Listing 3): a heap-kind MRAPI shmem segment attached by the master
// node. Failure maps to an error the runtime reports as gomp_fatal would.
func (l *MCALayer) Alloc(size int) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: MRAPI allocation of %d bytes", size)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("core: MRAPI allocation after layer close")
	}
	key := l.nextShmem
	l.nextShmem++
	l.mu.Unlock()
	buf, seg, err := l.master.ShmemCreateMalloc(key, size)
	if err != nil {
		return nil, fmt.Errorf("core: MRAPI failed memory allocation: %w", err)
	}
	l.mu.Lock()
	if l.closed {
		// Lost the race with Close: release the fresh segment instead of
		// stranding it past the layer's lifetime.
		l.mu.Unlock()
		_ = seg.Detach(l.master)
		_ = seg.Delete(l.master)
		return nil, fmt.Errorf("core: MRAPI allocation after layer close")
	}
	l.shmems[unsafe.SliceData(buf)] = &mcaAlloc{seg: seg, buf: buf}
	l.mu.Unlock()
	return buf, nil
}

// Free implements ThreadLayer: detach and delete the backing MRAPI
// segment, releasing its key — the gomp_free counterpart of Listing 3.
//
// Buffers are matched by base pointer (unsafe.SliceData), so any reslice
// that keeps the base — buf[:0], buf[:n] — frees the segment correctly;
// the seed's &buf[0] key silently leaked zero-length reslices. A buffer
// matching no live allocation is counted in FreeMisses; under
// WithAllocDebug a miss that points *inside* a live allocation (a
// sub-slice like buf[1:], a guaranteed segment-key leak) panics instead.
func (l *MCALayer) Free(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	base := unsafe.SliceData(buf[:cap(buf)])
	l.mu.Lock()
	a, ok := l.shmems[base]
	if ok {
		delete(l.shmems, base)
		l.mu.Unlock()
		_ = a.seg.Detach(l.master)
		_ = a.seg.Delete(l.master)
		return
	}
	l.freeMisses++
	trap := l.allocDebug && l.insideLiveAllocLocked(base)
	l.mu.Unlock()
	if trap {
		panic("core: MCALayer.Free of a sub-slice of a live MRAPI allocation (segment key would leak)")
	}
}

// insideLiveAllocLocked reports whether p points strictly inside one of
// the live allocations' buffers. Callers hold l.mu.
func (l *MCALayer) insideLiveAllocLocked(p *byte) bool {
	addr := uintptr(unsafe.Pointer(p))
	for base, a := range l.shmems {
		lo := uintptr(unsafe.Pointer(base))
		if addr > lo && addr < lo+uintptr(len(a.buf)) {
			return true
		}
	}
	return false
}

// LiveAllocs reports the number of Alloc segments not yet freed — the
// layer's leak count if the runtime is done with all of them.
func (l *MCALayer) LiveAllocs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.shmems)
}

// FreeMisses reports how many Free calls matched no live allocation
// (sub-slices, double frees, foreign buffers).
func (l *MCALayer) FreeMisses() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.freeMisses
}

// Close finalizes the master node and releases every MRAPI object the
// layer created.
func (l *MCALayer) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	shmems := l.shmems
	mutexes := l.mutexes
	callers := l.callers
	l.shmems, l.mutexes, l.callers = nil, nil, nil
	l.mu.Unlock()

	for _, a := range shmems {
		_ = a.seg.Detach(l.master)
		_ = a.seg.Delete(l.master)
	}
	for _, m := range mutexes {
		_ = m.Delete(l.master)
	}
	for _, n := range callers {
		_ = n.Finalize()
	}
	return l.master.Finalize()
}
