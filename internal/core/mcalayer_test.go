package core

import (
	"sync/atomic"
	"testing"

	"openmpmca/internal/mrapi"
	"openmpmca/internal/platform"
)

func newMCA(t *testing.T, opts ...MCAOption) *MCALayer {
	t.Helper()
	l, err := NewMCALayer(platform.T4240RDB().NewSystem(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMCALayerNumProcsFromMetadata(t *testing.T) {
	l := newMCA(t)
	defer l.Close()
	if got := l.NumProcs(); got != 24 {
		t.Errorf("NumProcs = %d, want 24 (T4240 metadata)", got)
	}
	p := newMCAOnBoard(t, platform.P4080DS())
	defer p.Close()
	if got := p.NumProcs(); got != 8 {
		t.Errorf("P4080 NumProcs = %d, want 8", got)
	}
}

func newMCAOnBoard(t *testing.T, b *platform.Board) *MCALayer {
	t.Helper()
	l, err := NewMCALayer(b.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMCALayerRegistersWorkerNodes(t *testing.T) {
	// Paper §5B1: each forked worker thread is represented by an MRAPI
	// node registered in the domain's global database.
	l := newMCA(t)
	rt, err := New(WithLayer(l), WithNumThreads(6))
	if err != nil {
		t.Fatal(err)
	}
	dom, err := l.System().Domain(MCADomain)
	if err != nil {
		t.Fatal(err)
	}
	// Before any region only the master node exists.
	if got := dom.NumNodes(); got != 1 {
		t.Errorf("nodes before fork = %d, want 1", got)
	}
	var seen atomic.Int32
	_ = rt.Parallel(func(c *Context) { seen.Add(1) })
	if seen.Load() != 6 {
		t.Fatalf("activations = %d", seen.Load())
	}
	// Master + 5 pooled workers stay registered between regions (pool
	// reuse, §5B1).
	if got := dom.NumNodes(); got != 6 {
		t.Errorf("nodes after fork = %d, want 6", got)
	}
	// Worker node ids follow the scheme base+wid.
	if _, err := dom.Node(mcaWorkerBase + 1); err != nil {
		t.Errorf("worker node 1 not registered: %v", err)
	}
	// Close finalizes everything.
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dom.NumNodes(); got != 0 {
		t.Errorf("nodes after close = %d, want 0", got)
	}
}

func TestMCALayerAllocGoesThroughShmem(t *testing.T) {
	l := newMCA(t)
	defer l.Close()
	buf, err := l.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 128 {
		t.Errorf("alloc len = %d", len(buf))
	}
	// The allocation must exist as a malloc-kind shmem segment in the
	// MRAPI database.
	dom, _ := l.System().Domain(MCADomain)
	node, _ := dom.Node(mcaMasterNode)
	seg, err := node.ShmemGet(mcaShmemBase)
	if err != nil {
		t.Fatalf("shmem not registered: %v", err)
	}
	if seg.Attributes().Kind != mrapi.ShmemMalloc {
		t.Errorf("kind = %v, want malloc", seg.Attributes().Kind)
	}
}

func TestMCALayerMutexIsMRAPIMutex(t *testing.T) {
	l := newMCA(t)
	defer l.Close()
	m, err := l.NewMutex()
	if err != nil {
		t.Fatal(err)
	}
	dom, _ := l.System().Domain(MCADomain)
	node, _ := dom.Node(mcaMasterNode)
	if _, err := node.MutexGet(mcaMutexBase); err != nil {
		t.Fatalf("mutex not in MRAPI database: %v", err)
	}
	m.Lock(0)
	m.Unlock(0)
}

func TestMCALayerBrokenMutexInjection(t *testing.T) {
	l := newMCA(t, WithBrokenMutex())
	defer l.Close()
	m, err := l.NewMutex()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(brokenMutex); !ok {
		t.Errorf("expected brokenMutex, got %T", m)
	}
}

func TestMCALayerCloseIdempotent(t *testing.T) {
	l := newMCA(t)
	if _, err := l.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
}

func TestMCALayerDistinctWorkersCanContend(t *testing.T) {
	// Two different worker ids map to two different MRAPI nodes, so the
	// MRAPI self-deadlock detection must NOT fire when two workers
	// serialize on a critical mutex.
	l := newMCA(t)
	rt, err := New(WithLayer(l), WithNumThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	count := 0
	if err := rt.Parallel(func(c *Context) {
		for i := 0; i < 100; i++ {
			c.Critical(func() { count++ })
		}
	}); err != nil {
		t.Fatal(err)
	}
	if count != 800 {
		t.Errorf("count = %d, want 800", count)
	}
}

func TestMCALayerInsideHypervisorPartition(t *testing.T) {
	// §4A put to work: an OpenMP runtime deployed in one hypervisor
	// partition must size itself to the partition's CPUs, not the board's.
	hv, err := platform.NewHypervisor(platform.T4240RDB())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hv.CreatePartition("guest", platform.GuestLinux, []int{0, 1, 2, 3, 4}, 1024); err != nil {
		t.Fatal(err)
	}
	sys, err := hv.PartitionSystem("guest")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewMCALayer(sys)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(WithLayer(l))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.NumThreads() != 5 {
		t.Errorf("partition team size = %d, want 5", rt.NumThreads())
	}
	var n atomic.Int32
	if err := rt.Parallel(func(c *Context) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 5 {
		t.Errorf("activations = %d, want 5", n.Load())
	}
}

func TestTeamShmemDoesNotLeakAcrossRegions(t *testing.T) {
	// Every region allocates its team bookkeeping block through MRAPI; it
	// must be released at region end (gomp_free), or a long-lived runtime
	// accumulates segments in the domain database. With team leasing off,
	// the original per-region free contract holds exactly.
	l := newMCA(t)
	rt, err := New(WithLayer(l), WithNumThreads(4), WithTeamLeasing(false))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	dom, err := l.System().Domain(MCADomain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := rt.Parallel(func(c *Context) {
			// Nested serialized regions allocate and free too.
			_ = c.Parallel(func(*Context) {})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := dom.NumShmems(); got != 0 {
		t.Errorf("%d shmem segments leaked after 50 regions", got)
	}
}

func TestLeasedTeamShmemBoundedAndDrainedAtClose(t *testing.T) {
	// With leasing on (the default), cached teams legitimately keep their
	// bookkeeping segments warm between regions — but the cache is bounded
	// per team size and Close must give every cached segment back.
	l := newMCA(t)
	rt, err := New(WithLayer(l), WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	dom, err := l.System().Domain(MCADomain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := rt.Parallel(func(c *Context) {
			_ = c.Parallel(func(*Context) {})
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One sequential caller warms at most one team per size used (outer
	// 4-thread team + nested serialized team of one).
	if got := dom.NumShmems(); got > 2 {
		t.Errorf("%d live shmem segments after 50 leased regions, want <= 2", got)
	}
	st := rt.Stats().Snapshot()
	if st.LeaseHits == 0 {
		t.Error("no lease hits across 50 sequential regions")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dom.NumShmems(); got != 0 {
		t.Errorf("%d shmem segments leaked after Close drained the team cache", got)
	}
}

func TestMCALayerFreeUnknownBufferIgnored(t *testing.T) {
	l := newMCA(t)
	defer l.Close()
	l.Free(nil)
	l.Free(make([]byte, 8)) // not from Alloc: no-op
	buf, err := l.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	l.Free(buf)
	l.Free(buf) // double free: no-op
}

func TestMCALayerFreeByBasePointerHandlesReslices(t *testing.T) {
	l := newMCA(t)
	defer l.Close()
	buf, err := l.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LiveAllocs(); got != 1 {
		t.Fatalf("LiveAllocs = %d, want 1", got)
	}
	// A reslice that keeps the base pointer — even zero-length — must
	// release the segment; the seed's &buf[0] key leaked buf[:0].
	l.Free(buf[:0])
	if got := l.LiveAllocs(); got != 0 {
		t.Errorf("LiveAllocs after Free(buf[:0]) = %d, want 0 (segment leaked)", got)
	}
	if got := l.FreeMisses(); got != 0 {
		t.Errorf("FreeMisses = %d, want 0", got)
	}
}

func TestMCALayerFreeSubSliceCountsAsLeak(t *testing.T) {
	l := newMCA(t)
	defer l.Close()
	buf, err := l.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// buf[1:] has a different base: the segment must stay live and the
	// miss must be visible through the leak accessors.
	l.Free(buf[1:])
	if got := l.LiveAllocs(); got != 1 {
		t.Errorf("LiveAllocs after sub-slice Free = %d, want 1", got)
	}
	if got := l.FreeMisses(); got != 1 {
		t.Errorf("FreeMisses = %d, want 1", got)
	}
	// The real buffer still frees normally afterwards.
	l.Free(buf)
	if got := l.LiveAllocs(); got != 0 {
		t.Errorf("LiveAllocs after real Free = %d, want 0", got)
	}
}

func TestMCALayerAllocDebugTrapsSubSliceFree(t *testing.T) {
	l := newMCA(t, WithAllocDebug())
	defer l.Close()
	buf, err := l.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Free of a live allocation's sub-slice did not panic in debug mode")
		}
	}()
	l.Free(buf[8:])
}

func TestMCALayerAllocDebugIgnoresForeignBuffer(t *testing.T) {
	// A buffer that never came from Alloc is a miss, not a trap, even in
	// debug mode.
	l := newMCA(t, WithAllocDebug())
	defer l.Close()
	if _, err := l.Alloc(64); err != nil {
		t.Fatal(err)
	}
	l.Free(make([]byte, 16))
	if got := l.FreeMisses(); got != 1 {
		t.Errorf("FreeMisses = %d, want 1", got)
	}
}
