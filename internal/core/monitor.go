package core

// Monitor receives the runtime's execution events. The perfmodel package
// implements it to accumulate deterministic virtual time on a modeled
// board; a nil monitor costs one predictable branch per event.
//
// Work is expressed in abstract units; the monitor decides what a unit
// costs (perfmodel charges cycles). Charges issued between CriticalEnter
// and CriticalExit are serialized across the team by a virtual-time
// monitor.
type Monitor interface {
	// Fork fires when a team of n threads starts a parallel region.
	Fork(n int)
	// Join fires when the region's threads have all completed.
	Join()
	// Charge reports that thread tid performed the given amount of work.
	Charge(tid int, units float64)
	// Barrier fires when the whole team completes a barrier.
	Barrier()
	// CriticalEnter/CriticalExit bracket a critical section on tid.
	CriticalEnter(tid int)
	CriticalExit(tid int)
	// Single fires when tid wins a single construct.
	Single(tid int)
	// Reduction fires when the team combines partial results.
	Reduction(n int)
	// Task fires when tid finishes executing an explicit task.
	Task(tid int)
	// Steal fires when thief claims a task from victim's deque — the
	// scheduler-structure visibility a work-stealing runtime owes its
	// observability layer.
	Steal(thief, victim int)
	// NestedFork/NestedJoin bracket a serialized nested parallel region
	// (team of one) on tid. They are distinct from Fork/Join so a
	// virtual-time monitor can keep attributing nested work to the outer
	// thread while tracing monitors still see the nested structure.
	NestedFork(tid, n int)
	NestedJoin(tid int)
	// Cancel fires once when a region is torn down early — a context
	// cancellation/deadline, or a contained region-body panic. The
	// matching Join still follows once every thread has unwound.
	Cancel()
}

// monitorOrNil normalizes a possibly nil monitor so call sites stay
// branch-free.
func monitorOrNil(m Monitor) Monitor {
	if m == nil {
		return nopMonitor{}
	}
	return m
}

// nopMonitor discards all events.
type nopMonitor struct{}

func (nopMonitor) Fork(int)            {}
func (nopMonitor) Join()               {}
func (nopMonitor) Charge(int, float64) {}
func (nopMonitor) Barrier()            {}
func (nopMonitor) CriticalEnter(int)   {}
func (nopMonitor) CriticalExit(int)    {}
func (nopMonitor) Single(int)          {}
func (nopMonitor) Reduction(int)       {}
func (nopMonitor) Task(int)            {}
func (nopMonitor) Steal(int, int)      {}
func (nopMonitor) NestedFork(int, int) {}
func (nopMonitor) NestedJoin(int)      {}
func (nopMonitor) Cancel()             {}
