package core

import "sync"

// NestLock is a nestable runtime lock (omp_nest_lock_t analog): the owning
// thread may re-acquire it, with a matching number of unlocks releasing
// it. Ownership is tracked by Context identity; nil (the initial thread)
// counts as one distinct owner.
type NestLock struct {
	rt *Runtime
	m  RuntimeMutex

	mu    sync.Mutex
	owner *Context
	// ownedByInitial disambiguates "unowned" from "owned by the initial
	// thread", whose Context is nil.
	ownedByInitial bool
	held           bool
	depth          int
}

// NewNestLock creates a nestable lock backed by the thread layer's
// mutual-exclusion primitive (omp_init_nest_lock).
func (r *Runtime) NewNestLock() (*NestLock, error) {
	m, err := r.layer.NewMutex()
	if err != nil {
		return nil, err
	}
	return &NestLock{rt: r, m: m}, nil
}

// owns reports whether c currently owns the lock. Callers hold l.mu.
func (l *NestLock) owns(c *Context) bool {
	if !l.held {
		return false
	}
	if c == nil {
		return l.ownedByInitial
	}
	return l.owner == c
}

// Lock acquires or re-acquires the lock (omp_set_nest_lock).
func (l *NestLock) Lock(c *Context) {
	l.mu.Lock()
	if l.owns(c) {
		l.depth++
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()

	l.m.Lock(widOf(c))

	l.mu.Lock()
	l.held = true
	l.owner = c
	l.ownedByInitial = c == nil
	l.depth = 1
	l.mu.Unlock()
}

// Unlock releases one nesting level (omp_unset_nest_lock); the underlying
// lock is released when the count reaches zero. Unlocking a lock the
// caller does not own panics, as misuse of omp_unset_nest_lock is
// undefined behaviour the runtime chooses to trap.
func (l *NestLock) Unlock(c *Context) {
	l.mu.Lock()
	if !l.owns(c) {
		l.mu.Unlock()
		panic("core: NestLock.Unlock by non-owner")
	}
	l.depth--
	release := l.depth == 0
	if release {
		l.held = false
		l.owner = nil
		l.ownedByInitial = false
	}
	l.mu.Unlock()
	if release {
		l.m.Unlock(widOf(c))
	}
}

// Depth reports the current nesting depth (0 when free) — diagnostic.
func (l *NestLock) Depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.depth
}
