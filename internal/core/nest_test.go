package core

import (
	"sync/atomic"
	"testing"
)

func TestNestLockRecursion(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		l, err := rt.NewNestLock()
		if err != nil {
			t.Fatal(err)
		}
		counter := 0
		_ = rt.Parallel(func(c *Context) {
			for i := 0; i < 100; i++ {
				l.Lock(c)
				l.Lock(c) // recursive re-acquire must not deadlock
				counter++
				if l.Depth() != 2 {
					t.Errorf("depth = %d, want 2", l.Depth())
				}
				l.Unlock(c)
				l.Unlock(c)
			}
		})
		if counter != 400 {
			t.Errorf("counter = %d, want 400 (lock leaked exclusion)", counter)
		}
		if l.Depth() != 0 {
			t.Errorf("final depth = %d", l.Depth())
		}
	})
}

func TestNestLockInitialThread(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(2))
	defer rt.Close()
	l, err := rt.NewNestLock()
	if err != nil {
		t.Fatal(err)
	}
	l.Lock(nil)
	l.Lock(nil)
	if l.Depth() != 2 {
		t.Errorf("depth = %d", l.Depth())
	}
	l.Unlock(nil)
	l.Unlock(nil)
}

func TestNestLockUnlockByNonOwnerPanics(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(2))
	defer rt.Close()
	l, _ := rt.NewNestLock()
	defer func() {
		if recover() == nil {
			t.Error("unlock of unheld nest lock did not panic")
		}
	}()
	l.Unlock(nil)
}

func TestAtomicFloat64(t *testing.T) {
	var a AtomicFloat64
	a.Store(1.5)
	if a.Load() != 1.5 {
		t.Errorf("Load = %v", a.Load())
	}
	if got := a.Add(2.25); got != 3.75 {
		t.Errorf("Add = %v", got)
	}
	if got := a.Max(2.0); got != 3.75 {
		t.Errorf("Max(lower) = %v", got)
	}
	if got := a.Max(10.0); got != 10.0 {
		t.Errorf("Max(higher) = %v", got)
	}
}

func TestAtomicFloat64ConcurrentAdds(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(8))
	defer rt.Close()
	var acc AtomicFloat64
	_ = rt.Parallel(func(c *Context) {
		for i := 0; i < 1000; i++ {
			acc.Add(0.5)
		}
	})
	if got := acc.Load(); got != 4000 {
		t.Errorf("sum = %v, want 4000", got)
	}
}

func TestOrderedSectionsRunInIterationOrder(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(6))
		for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
			const n = 120
			order := make([]int, 0, n)
			_ = rt.Parallel(func(c *Context) {
				c.ForOpts(n, LoopOpts{Schedule: sched, Chunk: 2, Ordered: true}, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						c.Ordered(i, func() {
							order = append(order, i) // ordered: no extra sync needed
						})
					}
				})
			})
			if len(order) != n {
				t.Fatalf("%v: %d ordered sections, want %d", sched, len(order), n)
			}
			for i, v := range order {
				if v != i {
					t.Fatalf("%v: order[%d] = %d — not ascending", sched, i, v)
				}
			}
		}
	})
}

func TestOrderedOrphanedRunsInline(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(2))
	defer rt.Close()
	ran := false
	_ = rt.Parallel(func(c *Context) {
		c.Master(func() {
			c.Ordered(5, func() { ran = true })
		})
	})
	if !ran {
		t.Error("orphaned ordered did not run")
	}
}

func TestConsecutiveOrderedLoops(t *testing.T) {
	// Two ordered loops back to back: sequencing state must not leak.
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4))
	defer rt.Close()
	var sum atomic.Int64
	_ = rt.Parallel(func(c *Context) {
		for round := 0; round < 10; round++ {
			c.ForOpts(16, LoopOpts{Schedule: ScheduleDynamic, Ordered: true}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c.Ordered(i, func() { sum.Add(1) })
				}
			})
		}
	})
	if sum.Load() != 160 {
		t.Errorf("sum = %d, want 160", sum.Load())
	}
}

func TestNestedParallelSerializes(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var innerTeams atomic.Int32
		var innerActivations atomic.Int32
		var tasksRan atomic.Int32
		if err := rt.Parallel(func(c *Context) {
			err := c.Parallel(func(inner *Context) {
				innerTeams.Add(int32(inner.NumThreads()))
				innerActivations.Add(1)
				inner.Barrier() // must not hang in a team of one
				inner.Task(func() { tasksRan.Add(1) })
			})
			if err != nil {
				t.Errorf("nested parallel: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		// Each of the 4 outer threads ran a serialized inner region.
		if innerActivations.Load() != 4 {
			t.Errorf("inner activations = %d, want 4", innerActivations.Load())
		}
		if innerTeams.Load() != 4 {
			t.Errorf("inner team sizes sum = %d, want 4 (teams of one)", innerTeams.Load())
		}
		if tasksRan.Load() != 4 {
			t.Errorf("inner tasks ran = %d, want 4 (drained at inner region end)", tasksRan.Load())
		}
	})
}

func TestThreadPrivatePersistsAcrossRegions(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		tp := NewThreadPrivate[int](func() int { return 100 })
		// Region 1: every thread increments its own copy tid+1 times.
		_ = rt.Parallel(func(c *Context) {
			v := tp.Get(c)
			for i := 0; i <= c.ThreadNum(); i++ {
				*v++
			}
		})
		// Region 2 (same team size): each thread must see ITS OWN copy.
		var wrong atomic.Int32
		_ = rt.Parallel(func(c *Context) {
			if *tp.Get(c) != 100+c.ThreadNum()+1 {
				wrong.Add(1)
			}
		})
		if wrong.Load() != 0 {
			t.Errorf("%d threads lost their threadprivate copy", wrong.Load())
		}
		// Aggregate outside the region.
		sum := 0
		copies := 0
		tp.ForEach(func(tid int, v *int) {
			sum += *v
			copies++
		})
		if copies != 4 {
			t.Errorf("copies = %d, want 4", copies)
		}
		if sum != 4*100+(1+2+3+4) {
			t.Errorf("sum = %d", sum)
		}
	})
}

func TestThreadPrivateZeroInit(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(2))
	defer rt.Close()
	tp := NewThreadPrivate[float64](nil)
	if v := tp.Get(nil); *v != 0 {
		t.Errorf("zero init = %v", *v)
	}
	*tp.Get(nil) = 2.5
	if *tp.Get(nil) != 2.5 {
		t.Error("initial-thread copy not stable")
	}
}
