package core

import "sync"

// pool keeps the persistent worker threads the runtime forks teams from —
// the paper's thread-pool reuse argument (§5B1): nodes and their threads
// are created once and parked between regions rather than re-created per
// region.
//
// Worker 0 is always the calling (master) thread and never lives in the
// pool; pool workers are numbered from 1.
type pool struct {
	layer ThreadLayer

	mu      sync.Mutex
	workers []*poolWorker // index i holds worker id i+1
	closed  bool
}

type poolWorker struct {
	wid    int
	jobs   chan func()
	handle Worker
}

func newPool(layer ThreadLayer) *pool {
	return &pool{layer: layer}
}

// ensure grows the pool so worker ids 1..n-1 exist (team size n).
func (p *pool) ensure(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for len(p.workers) < n-1 {
		wid := len(p.workers) + 1
		w := &poolWorker{wid: wid, jobs: make(chan func())}
		handle, err := p.layer.StartWorker(wid, func() {
			for job := range w.jobs {
				job()
			}
		})
		if err != nil {
			return err
		}
		w.handle = handle
		p.workers = append(p.workers, w)
	}
	return nil
}

// size reports the current number of pool workers (excluding the master).
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// dispatchAll hands jobs[i] to worker i+1, all under one critical section.
// The batch is all-or-nothing: a concurrent close either wins the lock
// first — every send is refused with ErrClosed, no worker starts — or
// waits until every job is handed over. This closes the seed's race where
// close(w.jobs) then a late dispatch sent on a closed channel (panic) and
// p.workers = nil made the index panic; it also prevents a partial team,
// which would hang forever on the region-end barrier. Holding the lock
// across the sends is safe: workers never touch p.mu, and by the fork
// protocol every targeted worker is parked in its receive loop.
func (p *pool) dispatchAll(jobs []func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(jobs) > len(p.workers) {
		return ErrClosed
	}
	for i, job := range jobs {
		p.workers[i].jobs <- job
	}
	return nil
}

// close shuts down every worker and joins them. The jobs channels are
// closed under the lock so a concurrent dispatchAll can never send on a
// closed channel.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	workers := p.workers
	p.workers = nil
	for _, w := range workers {
		close(w.jobs)
	}
	p.mu.Unlock()

	for _, w := range workers {
		w.handle.Join()
	}
}
