package core

import "sync"

// pool keeps the persistent worker threads the runtime forks teams from —
// the paper's thread-pool reuse argument (§5B1): nodes and their threads
// are created once and parked between regions rather than re-created per
// region.
//
// Worker 0 is always the calling (master) thread and never lives in the
// pool; pool workers are numbered from 1.
type pool struct {
	layer ThreadLayer

	mu      sync.Mutex
	workers []*poolWorker // index i holds worker id i+1
	closed  bool
}

type poolWorker struct {
	wid    int
	jobs   chan func()
	handle Worker
}

func newPool(layer ThreadLayer) *pool {
	return &pool{layer: layer}
}

// ensure grows the pool so worker ids 1..n-1 exist (team size n).
func (p *pool) ensure(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	for len(p.workers) < n-1 {
		wid := len(p.workers) + 1
		w := &poolWorker{wid: wid, jobs: make(chan func())}
		handle, err := p.layer.StartWorker(wid, func() {
			for job := range w.jobs {
				job()
			}
		})
		if err != nil {
			return err
		}
		w.handle = handle
		p.workers = append(p.workers, w)
	}
	return nil
}

// size reports the current number of pool workers (excluding the master).
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// dispatch hands job to worker wid (1-based). The caller must have called
// ensure for at least wid+1 first.
func (p *pool) dispatch(wid int, job func()) {
	p.mu.Lock()
	w := p.workers[wid-1]
	p.mu.Unlock()
	w.jobs <- job
}

// close shuts down every worker and joins them.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	workers := p.workers
	p.workers = nil
	p.mu.Unlock()

	for _, w := range workers {
		close(w.jobs)
	}
	for _, w := range workers {
		w.handle.Join()
	}
}
