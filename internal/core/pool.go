package core

import (
	"sort"
	"sync"
)

// pool keeps the persistent worker threads the runtime forks teams from —
// the paper's thread-pool reuse argument (§5B1): nodes and their threads
// are created once and parked between regions rather than re-created per
// region.
//
// Unlike the seed's pool, workers are not statically bound to team thread
// ids: concurrent parallel regions each acquire an exclusive set of
// parked workers for the region's lifetime and hand them back at join, so
// any number of callers can fork overlapping teams against one runtime.
// A worker's id is assigned once at creation and never reused, which
// keeps layer-level attribution (MRAPI node identity under MCALayer)
// unique across concurrently running teams.
//
// Team thread 0 is always a calling goroutine and never lives in the
// pool; pool workers are numbered from 1.
type pool struct {
	layer ThreadLayer

	mu     sync.Mutex
	free   []*poolWorker // parked workers available for acquisition
	all    []*poolWorker // every worker ever started (for close/join)
	closed bool
}

type poolWorker struct {
	wid    int
	jobs   chan func() // capacity 1: an acquired worker is always parked
	handle Worker
}

func newPool(layer ThreadLayer) *pool {
	return &pool{layer: layer}
}

// acquire reserves k workers for one region, starting new ones when the
// free list runs short. Acquired workers are owned exclusively by the
// caller until their dispatched job completes.
//
// The lowest free wids are taken first, in ascending order. For a
// sequential caller this keeps the worker↔thread-number binding stable
// across same-size regions — the OpenMP threadprivate persistence
// guarantee depends on it — without constraining what overlapping regions
// of concurrent callers get.
func (p *pool) acquire(k int) ([]*poolWorker, error) {
	if k == 0 {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	ws := make([]*poolWorker, 0, k)
	if take := min(k, len(p.free)); take > 0 {
		sort.Slice(p.free, func(i, j int) bool { return p.free[i].wid > p.free[j].wid })
		for i := 0; i < take; i++ {
			ws = append(ws, p.free[len(p.free)-1-i])
		}
		p.free = p.free[:len(p.free)-take]
	}
	for len(ws) < k {
		wid := len(p.all) + 1
		w := &poolWorker{wid: wid, jobs: make(chan func(), 1)}
		handle, err := p.layer.StartWorker(wid, func() {
			for job := range w.jobs {
				job()
			}
		})
		if err != nil {
			// Hand the already-reserved workers back; the fresh one never
			// started and owns no resources.
			p.free = append(p.free, ws...)
			return nil, err
		}
		w.handle = handle
		p.all = append(p.all, w)
		ws = append(ws, w)
	}
	return ws, nil
}

// size reports the number of workers ever started (excluding the master).
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.all)
}

// idle reports the number of parked workers on the free list.
func (p *pool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// dispatchAll hands jobs[i] to the acquired workers[i], all under one
// critical section. The batch is all-or-nothing: a concurrent close
// either wins the lock first — every send is refused with ErrClosed, no
// worker starts, and a partial team that would hang its region-end
// barrier cannot form — or waits until every job is handed over. The
// sends cannot block: an acquired worker is parked in its receive loop
// and its capacity-1 channel is empty. Each worker returns itself to the
// free list when its job completes.
func (p *pool) dispatchAll(workers []*poolWorker, jobs []func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for i, w := range workers {
		w, job := w, jobs[i]
		w.jobs <- func() {
			job()
			p.release(w)
		}
	}
	return nil
}

// release parks a worker back on the free list.
func (p *pool) release(w *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.free = append(p.free, w)
}

// close shuts down every worker and joins them. The jobs channels are
// closed under the lock so a concurrent dispatchAll can never send on a
// closed channel; a worker still running a region job drains it (the
// channel close only takes effect at its next receive) before exiting.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	all := p.all
	p.all, p.free = nil, nil
	for _, w := range all {
		close(w.jobs)
	}
	p.mu.Unlock()

	for _, w := range all {
		w.handle.Join()
	}
}
