package core

import (
	"errors"
	"sync"
	"testing"
)

func TestParallelRacingCloseNeverPanics(t *testing.T) {
	// Seed regression: Close between ensure and dispatch either made
	// dispatch index a nil p.workers (panic) or send on a closed jobs
	// channel (panic). Now the fork must either run fully or fail with
	// ErrClosed — never panic, never hang a partial team on its barrier.
	for round := 0; round < 30; round++ {
		rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if err := rt.Parallel(func(c *Context) {}); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Parallel during close: %v, want ErrClosed", err)
					}
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			_ = rt.Close()
		}()
		close(start)
		wg.Wait()
	}
}

func TestDispatchAllAfterCloseReturnsErrClosed(t *testing.T) {
	p := newPool(NewNativeLayer(4))
	ws, err := p.acquire(2)
	if err != nil {
		t.Fatal(err)
	}
	// Park the acquired workers again so close can join them idle.
	if err := p.dispatchAll(ws, []func(){func() {}, func() {}}); err != nil {
		t.Fatal(err)
	}
	p.close()
	if _, err := p.acquire(1); !errors.Is(err, ErrClosed) {
		t.Errorf("acquire after close = %v, want ErrClosed", err)
	}
	if err := p.dispatchAll(nil, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("dispatchAll after close = %v, want ErrClosed", err)
	}
	// Idempotent close stays safe.
	p.close()
}

func TestAcquirePrefersLowestWids(t *testing.T) {
	// Sequential same-size acquisitions must see the same workers in the
	// same order regardless of the release order of the previous region —
	// the stability ThreadPrivate's per-worker copies rely on.
	p := newPool(NewNativeLayer(8))
	defer p.close()
	ws, err := p.acquire(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(len(ws))
	// Jobs finish in reverse wid order, scrambling the free list.
	gates := make([]chan struct{}, len(ws))
	jobs := make([]func(), len(ws))
	for i := range ws {
		gates[i] = make(chan struct{})
		gate := gates[i]
		jobs[i] = func() { <-gate; wg.Done() }
	}
	if err := p.dispatchAll(ws, jobs); err != nil {
		t.Fatal(err)
	}
	for i := len(gates) - 1; i >= 0; i-- {
		close(gates[i])
	}
	wg.Wait()
	again, err := p.acquire(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range again {
		if w.wid != i+1 {
			t.Errorf("reacquired worker %d has wid %d, want %d", i, w.wid, i+1)
		}
	}
	noop := []func(){func() {}, func() {}, func() {}, func() {}}
	if err := p.dispatchAll(again, noop); err != nil {
		t.Fatal(err)
	}
}
