package core

import (
	"errors"
	"sync"
	"testing"
)

func TestParallelRacingCloseNeverPanics(t *testing.T) {
	// Seed regression: Close between ensure and dispatch either made
	// dispatch index a nil p.workers (panic) or send on a closed jobs
	// channel (panic). Now the fork must either run fully or fail with
	// ErrClosed — never panic, never hang a partial team on its barrier.
	for round := 0; round < 30; round++ {
		rt, err := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if err := rt.Parallel(func(c *Context) {}); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Parallel during close: %v, want ErrClosed", err)
					}
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			_ = rt.Close()
		}()
		close(start)
		wg.Wait()
	}
}

func TestDispatchAllAfterCloseReturnsErrClosed(t *testing.T) {
	p := newPool(NewNativeLayer(4))
	if err := p.ensure(3); err != nil {
		t.Fatal(err)
	}
	p.close()
	if err := p.dispatchAll([]func(){func() {}}); !errors.Is(err, ErrClosed) {
		t.Errorf("dispatchAll after close = %v, want ErrClosed", err)
	}
	// Idempotent close stays safe.
	p.close()
}

func TestDispatchAllRefusesOversizedBatch(t *testing.T) {
	p := newPool(NewNativeLayer(4))
	if err := p.ensure(2); err != nil { // one worker
		t.Fatal(err)
	}
	defer p.close()
	if err := p.dispatchAll(make([]func(), 5)); !errors.Is(err, ErrClosed) {
		t.Errorf("oversized dispatchAll = %v, want ErrClosed", err)
	}
}
