package core

// Reduce workshares iterations 0..n-1 over the team and combines the
// per-thread partial results with op, returning the combined value on
// every thread (#pragma omp parallel for reduction).
//
// body receives a contiguous [lo,hi) range (static block schedule, the
// distribution libGOMP applies to reductions) and returns the partial
// result for that range. identity is the reduction's neutral element. op
// must be associative; commutativity is not required, because partials are
// combined in thread order.
//
// Every thread of the team must call Reduce at the same construct; the
// exchange costs two team barriers.
func Reduce[T any](c *Context, n int, identity T, op func(T, T) T, body func(lo, hi int) T) T {
	partial := identity
	c.staticLoop(n, 0, func(lo, hi int) {
		partial = op(partial, body(lo, hi))
	})
	return ReduceValues(c, partial, op)
}

// ReduceValues combines one already-computed value per thread without
// worksharing a loop — the "reduction over explicit partials" form used
// when the caller has its own loop structure.
//
// Each reduction instance carries its own workshare record, so
// back-to-back reductions cannot clobber each other and no trailing
// barrier is needed beyond the two of the exchange itself.
func ReduceValues[T any](c *Context, value T, op func(T, T) T) T {
	t := c.team
	gen := c.wsGen
	c.wsGen++
	ws := t.workshareAt(gen)

	ws.mu.Lock()
	if ws.slots == nil {
		ws.slots = make([]any, t.size)
	}
	ws.slots[c.tid] = value
	ws.mu.Unlock()

	c.Barrier()
	if c.tid == 0 {
		acc := ws.slots[0].(T)
		for i := 1; i < t.size; i++ {
			acc = op(acc, ws.slots[i].(T))
		}
		ws.result = acc
		t.rt.monitor.Reduction(t.size)
	}
	c.Barrier()
	result := ws.result.(T)
	t.finishWorkshare(gen, ws)
	return result
}
