package core

import (
	"testing"
	"testing/quick"
)

func TestReduceSum(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(8))
		var results [8]int64
		_ = rt.Parallel(func(c *Context) {
			got := Reduce(c, 1000, int64(0),
				func(a, b int64) int64 { return a + b },
				func(lo, hi int) int64 {
					var s int64
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					return s
				})
			results[c.ThreadNum()] = got
		})
		want := int64(999 * 1000 / 2)
		for tid, got := range results {
			if got != want {
				t.Errorf("tid %d: reduce = %d, want %d", tid, got, want)
			}
		}
	})
}

func TestReduceNonCommutativeOrder(t *testing.T) {
	// String concatenation is associative but not commutative: combining
	// in thread order must reassemble the input exactly.
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(5))
	defer rt.Close()
	text := "the quick brown fox jumps over the lazy dog"
	var got string
	_ = rt.Parallel(func(c *Context) {
		r := Reduce(c, len(text), "",
			func(a, b string) string { return a + b },
			func(lo, hi int) string { return text[lo:hi] })
		if c.ThreadNum() == 0 {
			got = r
		}
	})
	if got != text {
		t.Errorf("reduce = %q, want %q", got, text)
	}
}

func TestReduceMax(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(6))
		data := make([]float64, 10000)
		for i := range data {
			data[i] = float64((i*2654435761)%100000) / 7
		}
		var want float64
		for _, v := range data {
			if v > want {
				want = v
			}
		}
		var got float64
		_ = rt.Parallel(func(c *Context) {
			r := Reduce(c, len(data), 0.0,
				func(a, b float64) float64 {
					if a > b {
						return a
					}
					return b
				},
				func(lo, hi int) float64 {
					m := 0.0
					for i := lo; i < hi; i++ {
						if data[i] > m {
							m = data[i]
						}
					}
					return m
				})
			if c.ThreadNum() == 0 {
				got = r
			}
		})
		if got != want {
			t.Errorf("max = %v, want %v", got, want)
		}
	})
}

func TestReduceValues(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(7))
		var results [7]int
		_ = rt.Parallel(func(c *Context) {
			got := ReduceValues(c, c.ThreadNum()+1, func(a, b int) int { return a + b })
			results[c.ThreadNum()] = got
		})
		want := 7 * 8 / 2
		for tid, got := range results {
			if got != want {
				t.Errorf("tid %d: %d, want %d", tid, got, want)
			}
		}
	})
}

func TestConsecutiveReductionsDoNotInterfere(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	bad := false
	_ = rt.Parallel(func(c *Context) {
		for round := 1; round <= 40; round++ {
			got := ReduceValues(c, round, func(a, b int) int { return a + b })
			if got != 4*round {
				bad = true
			}
		}
	})
	if bad {
		t.Error("a reduction result leaked across episodes")
	}
}

func TestPropReduceEqualsSequential(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(24)), WithNumThreads(6))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	f := func(vals []int32) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		var got int64
		perr := rt.Parallel(func(c *Context) {
			r := Reduce(c, len(vals), int64(0),
				func(a, b int64) int64 { return a + b },
				func(lo, hi int) int64 {
					var s int64
					for i := lo; i < hi; i++ {
						s += int64(vals[i])
					}
					return s
				})
			if c.ThreadNum() == 0 {
				got = r
			}
		})
		return perr == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
