package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Parallel (and the worker pool underneath) when
// the runtime has been Closed; a fork racing Close is refused whole with
// this error instead of panicking or hanging a partial team.
var ErrClosed = errors.New("core: runtime is closed")

// Stats aggregates runtime event counters; read them with Snapshot.
type Stats struct {
	Regions  atomic.Uint64 // parallel regions forked (incl. serialized nested ones)
	Threads  atomic.Uint64 // thread-region activations (sum of team sizes)
	Barriers atomic.Uint64 // completed barrier episodes
	Chunks   atomic.Uint64 // loop chunks issued by dynamic/guided schedules
	Tasks    atomic.Uint64 // explicit tasks executed
	Crits    atomic.Uint64 // critical sections entered
	Singles  atomic.Uint64 // single constructs won

	// Task-scheduler structure (see task.go): how executed tasks were
	// claimed. LocalPops + Steals can trail Tasks when a full deque
	// forces undeferred execution.
	LocalPops  atomic.Uint64 // tasks popped from the claiming thread's own deque
	Steals     atomic.Uint64 // tasks stolen from a victim's deque head
	StealFails atomic.Uint64 // victim probes that found an empty deque
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Regions, Threads, Barriers, Chunks, Tasks, Crits, Singles uint64
	LocalPops, Steals, StealFails                             uint64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Regions:    s.Regions.Load(),
		Threads:    s.Threads.Load(),
		Barriers:   s.Barriers.Load(),
		Chunks:     s.Chunks.Load(),
		Tasks:      s.Tasks.Load(),
		Crits:      s.Crits.Load(),
		Singles:    s.Singles.Load(),
		LocalPops:  s.LocalPops.Load(),
		Steals:     s.Steals.Load(),
		StealFails: s.StealFails.Load(),
	}
}

// Runtime is an OpenMP-style runtime instance bound to one ThreadLayer.
// Create one with New, fork parallel regions with Parallel/ParallelFor,
// and Close it when done. A Runtime is safe for sequential reuse across
// many regions; concurrent Parallel calls from different goroutines are
// not supported (matching a single OpenMP initial thread).
type Runtime struct {
	layer       ThreadLayer
	monitor     Monitor
	barrierKind BarrierKind
	taskQueue   TaskQueue
	pool        *pool

	icvMu sync.Mutex
	icv   ICV

	critMu    sync.Mutex
	criticals map[string]RuntimeMutex

	epoch  time.Time
	stats  Stats
	closed atomic.Bool
}

// Option configures a Runtime at construction.
type Option func(*Runtime) error

// WithLayer selects the thread layer (default: NewNativeLayer(0)).
func WithLayer(l ThreadLayer) Option {
	return func(r *Runtime) error {
		if l == nil {
			return errors.New("core: nil thread layer")
		}
		r.layer = l
		return nil
	}
}

// WithNumThreads sets the default team size.
func WithNumThreads(n int) Option {
	return func(r *Runtime) error {
		if n < 1 {
			return fmt.Errorf("core: NumThreads %d < 1", n)
		}
		r.icv.NumThreads = n
		return nil
	}
}

// WithSchedule sets the runtime loop schedule (run-sched-var).
func WithSchedule(s Schedule, chunk int) Option {
	return func(r *Runtime) error {
		if chunk < 0 {
			return fmt.Errorf("core: negative chunk %d", chunk)
		}
		r.icv.Schedule = s
		r.icv.Chunk = chunk
		return nil
	}
}

// WithMonitor installs an execution monitor (perfmodel hook).
func WithMonitor(m Monitor) Option {
	return func(r *Runtime) error {
		r.monitor = monitorOrNil(m)
		return nil
	}
}

// WithBarrierKind selects the barrier algorithm (ablation knob).
func WithBarrierKind(k BarrierKind) Option {
	return func(r *Runtime) error {
		r.barrierKind = k
		return nil
	}
}

// WithTaskQueue selects the task-scheduler structure (ablation knob):
// per-worker stealing deques (default) or the legacy single shared queue.
func WithTaskQueue(k TaskQueue) Option {
	return func(r *Runtime) error {
		if k != TaskQueueSteal && k != TaskQueueShared {
			return fmt.Errorf("core: unknown task queue kind %d", int(k))
		}
		r.taskQueue = k
		return nil
	}
}

// TaskQueueKind reports the runtime's task-scheduler structure.
func (r *Runtime) TaskQueueKind() TaskQueue { return r.taskQueue }

// WithEnv loads ICVs from OpenMP environment variables through getenv
// before other options apply their overrides.
func WithEnv(getenv func(string) string) Option {
	return func(r *Runtime) error {
		env := ICVFromEnv(getenv)
		if env.NumThreads > 0 {
			r.icv.NumThreads = env.NumThreads
		}
		r.icv.Schedule = env.Schedule
		if env.Chunk > 0 {
			r.icv.Chunk = env.Chunk
		}
		r.icv.Dynamic = env.Dynamic
		if env.MaxThreads > 0 {
			r.icv.MaxThreads = env.MaxThreads
		}
		return nil
	}
}

// New creates a runtime. With no options it uses the native layer and one
// thread per host processor.
func New(opts ...Option) (*Runtime, error) {
	r := &Runtime{
		monitor:   nopMonitor{},
		criticals: make(map[string]RuntimeMutex),
		epoch:     time.Now(),
	}
	for _, o := range opts {
		if err := o(r); err != nil {
			return nil, err
		}
	}
	if r.layer == nil {
		r.layer = NewNativeLayer(0)
	}
	r.icv.normalize(r.layer.NumProcs())
	r.pool = newPool(r.layer)
	return r, nil
}

// Layer returns the runtime's thread layer.
func (r *Runtime) Layer() ThreadLayer { return r.layer }

// Wtime returns elapsed wall-clock seconds since the runtime was created
// (omp_get_wtime; the epoch choice follows libGOMP's
// "per-program-start").
func (r *Runtime) Wtime() float64 {
	return time.Since(r.epoch).Seconds()
}

// Stats returns the live counters.
func (r *Runtime) Stats() *Stats { return &r.stats }

// NumThreads reports the current default team size
// (omp_get_max_threads).
func (r *Runtime) NumThreads() int {
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	return r.icv.NumThreads
}

// SetNumThreads changes the default team size (omp_set_num_threads). The
// request is clamped by thread-limit-var, and — when dynamic adjustment
// is enabled — by the number of online processors, per the OpenMP rules
// for dyn-var.
func (r *Runtime) SetNumThreads(n int) {
	if n < 1 {
		return
	}
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	r.icv.NumThreads = n
	r.icv.normalize(r.layer.NumProcs())
}

// RuntimeSchedule reports run-sched-var (omp_get_schedule).
func (r *Runtime) RuntimeSchedule() (Schedule, int) {
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	return r.icv.Schedule, r.icv.Chunk
}

// SetRuntimeSchedule sets run-sched-var (omp_set_schedule).
func (r *Runtime) SetRuntimeSchedule(s Schedule, chunk int) {
	if chunk < 0 {
		chunk = 0
	}
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	r.icv.Schedule = s
	r.icv.Chunk = chunk
}

// snapshotICV captures the ICVs for one region fork.
func (r *Runtime) snapshotICV() ICV {
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	return r.icv
}

// Parallel forks a team and runs body once per thread (#pragma omp
// parallel). The master (calling goroutine) is thread 0; pool workers
// carry the rest. The region ends with an implicit barrier that also
// drains outstanding explicit tasks.
func (r *Runtime) Parallel(body func(c *Context)) error {
	return r.ParallelN(0, body)
}

// ParallelN is Parallel with an explicit team size (num_threads clause);
// n <= 0 means "use the ICV".
func (r *Runtime) ParallelN(n int, body func(c *Context)) error {
	if r.closed.Load() {
		return ErrClosed
	}
	icv := r.snapshotICV()
	if n <= 0 {
		n = icv.NumThreads
	}
	if n > icv.MaxThreads {
		n = icv.MaxThreads
	}
	if n < 1 {
		n = 1
	}

	team, err := newTeam(r, n)
	if err != nil {
		return err
	}
	// The team's bookkeeping block dies with the region (gomp_free).
	defer r.layer.Free(team.shmem)
	if err := r.pool.ensure(n); err != nil {
		return err
	}

	run := func(tid int) {
		c := &Context{team: team, tid: tid, groups: []*taskGroup{{}}}
		body(c)
		// Implicit region-end barrier: drain the task queues, then sync.
		team.quiesce(c)
	}

	// Jobs for workers 1..n-1 are handed over in one all-or-nothing batch:
	// a Close racing this fork either refuses the whole batch (ErrClosed,
	// no worker started, nothing waits on the team barrier) or happens
	// after every send. Partial teams — which would hang the region-end
	// barrier — cannot form.
	var wg sync.WaitGroup
	wg.Add(n - 1)
	jobs := make([]func(), n-1)
	for t := 1; t < n; t++ {
		tid := t
		jobs[t-1] = func() {
			defer wg.Done()
			run(tid)
		}
	}
	r.monitor.Fork(n)
	if err := r.pool.dispatchAll(jobs); err != nil {
		r.monitor.Join()
		return err
	}
	r.stats.Regions.Add(1)
	r.stats.Threads.Add(uint64(n))
	run(0)
	wg.Wait()
	r.monitor.Join()
	return nil
}

// ParallelFor forks a team and workshares iterations 0..n-1 over it with
// the runtime schedule (#pragma omp parallel for).
func (r *Runtime) ParallelFor(n int, body func(i int)) error {
	return r.Parallel(func(c *Context) { c.For(n, body) })
}

// criticalMutex returns the mutex backing the named critical section,
// creating it through the thread layer on first use.
func (r *Runtime) criticalMutex(name string) RuntimeMutex {
	r.critMu.Lock()
	defer r.critMu.Unlock()
	m, ok := r.criticals[name]
	if !ok {
		var err error
		m, err = r.layer.NewMutex()
		if err != nil {
			// Mirrors gomp_fatal: the runtime cannot continue without its
			// synchronization primitive.
			panic(fmt.Sprintf("core: creating critical-section mutex: %v", err))
		}
		r.criticals[name] = m
	}
	return m
}

// Close shuts the pool down and releases the layer. The runtime is
// unusable afterwards.
func (r *Runtime) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	r.pool.close()
	return r.layer.Close()
}
