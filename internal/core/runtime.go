package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"openmpmca/internal/oerrors"
)

// ErrClosed is returned by Parallel (and the worker pool underneath) when
// the runtime has been Closed; a fork racing Close is refused whole with
// this error instead of panicking or hanging a partial team. Classified
// Cancel/runtime_closed.
var ErrClosed = oerrors.Sentinel(oerrors.Cancel, oerrors.CodeRuntimeClosed,
	"core: runtime is closed")

// Stats aggregates runtime event counters; read them with Snapshot.
type Stats struct {
	Regions  atomic.Uint64 // parallel regions forked (incl. serialized nested ones)
	Threads  atomic.Uint64 // thread-region activations (sum of team sizes)
	Barriers atomic.Uint64 // completed barrier episodes
	Chunks   atomic.Uint64 // loop chunks issued by dynamic/guided schedules
	Tasks    atomic.Uint64 // explicit tasks executed
	Crits    atomic.Uint64 // critical sections entered
	Singles  atomic.Uint64 // single constructs won

	// Task-scheduler structure (see task.go): how executed tasks were
	// claimed. LocalPops + Steals can trail Tasks when a full deque
	// forces undeferred execution.
	LocalPops  atomic.Uint64 // tasks popped from the claiming thread's own deque
	Steals     atomic.Uint64 // tasks stolen from a victim's deque head
	StealFails atomic.Uint64 // victim probes that found an empty deque

	// Concurrent-caller machinery (see lease.go, cancel.go).
	LeaseHits   atomic.Uint64 // regions served from the warm-team cache
	LeaseMisses atomic.Uint64 // regions that had to build a fresh team
	Saturations atomic.Uint64 // forks refused with ErrSaturated
	Cancels     atomic.Uint64 // regions torn down early (ctx or panic)
	Panics      atomic.Uint64 // region-body panics contained per thread
}

// StatsSnapshot is a point-in-time copy of Stats. It is JSON-taggable:
// the job service's /v1/stats endpoint, ompmca-info -stats -json and
// ompmca-bench -stats all serialize it as the "core" section of the
// unified openmpmca.Snapshot.
type StatsSnapshot struct {
	Regions     uint64 `json:"regions"`
	Threads     uint64 `json:"threads"`
	Barriers    uint64 `json:"barriers"`
	Chunks      uint64 `json:"chunks"`
	Tasks       uint64 `json:"tasks"`
	Crits       uint64 `json:"crits"`
	Singles     uint64 `json:"singles"`
	LocalPops   uint64 `json:"local_pops"`
	Steals      uint64 `json:"steals"`
	StealFails  uint64 `json:"steal_fails"`
	LeaseHits   uint64 `json:"lease_hits"`
	LeaseMisses uint64 `json:"lease_misses"`
	Saturations uint64 `json:"saturations"`
	Cancels     uint64 `json:"cancels"`
	Panics      uint64 `json:"panics"`
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Regions:     s.Regions.Load(),
		Threads:     s.Threads.Load(),
		Barriers:    s.Barriers.Load(),
		Chunks:      s.Chunks.Load(),
		Tasks:       s.Tasks.Load(),
		Crits:       s.Crits.Load(),
		Singles:     s.Singles.Load(),
		LocalPops:   s.LocalPops.Load(),
		Steals:      s.Steals.Load(),
		StealFails:  s.StealFails.Load(),
		LeaseHits:   s.LeaseHits.Load(),
		LeaseMisses: s.LeaseMisses.Load(),
		Saturations: s.Saturations.Load(),
		Cancels:     s.Cancels.Load(),
		Panics:      s.Panics.Load(),
	}
}

// Runtime is an OpenMP-style runtime instance bound to one ThreadLayer.
// Create one with New, fork parallel regions with Parallel/ParallelFor
// (or their Ctx variants), and Close it when done.
//
// A Runtime is safe for concurrent use: any number of goroutines may fork
// overlapping parallel regions against one instance. Each region leases a
// warm team from the runtime's cache (or builds one on a miss) and an
// exclusive set of pool workers for its lifetime. WithMaxConcurrentRegions
// bounds the number of outstanding regions; past the cap and its bounded
// admission queue, forks fail fast with ErrSaturated. A panic in any
// thread's region body is contained: the team is canceled, every thread
// unwinds at its next cancellation point, and the fork returns a
// RegionPanicError while the runtime stays fully usable.
type Runtime struct {
	layer       ThreadLayer
	monitor     Monitor
	barrierKind BarrierKind
	taskQueue   TaskQueue
	pool        *pool

	icvMu sync.Mutex
	icv   ICV

	critMu    sync.Mutex
	criticals map[string]RuntimeMutex

	// Warm-team cache (lease.go).
	teamLease bool
	leaseMu   sync.Mutex
	leases    map[int][]*Team

	// Master-identity leasing for concurrent callers (lease.go).
	masterMu   sync.Mutex
	masterFree []int
	masterNext int

	// Admission control: maxRegions outstanding regions may run, another
	// maxRegions may queue; beyond that forks return ErrSaturated.
	// maxRegions == 0 means unbounded (admitSem nil).
	maxRegions   int
	admitSem     chan struct{}
	admitWaiting atomic.Int32

	epoch  time.Time
	stats  Stats
	closed atomic.Bool
}

// Option configures a Runtime at construction. Options validate their
// arguments: a bad value makes New fail with an error wrapping
// ErrInvalidOption instead of being silently clamped.
type Option func(*Runtime) error

// WithLayer selects the thread layer (default: NewNativeLayer(0)).
func WithLayer(l ThreadLayer) Option {
	return func(r *Runtime) error {
		if l == nil {
			return fmt.Errorf("%w: nil thread layer", ErrInvalidOption)
		}
		r.layer = l
		return nil
	}
}

// WithNumThreads sets the default team size.
func WithNumThreads(n int) Option {
	return func(r *Runtime) error {
		if n < 1 {
			return fmt.Errorf("%w: NumThreads %d < 1", ErrInvalidOption, n)
		}
		r.icv.NumThreads = n
		return nil
	}
}

// WithSchedule sets the runtime loop schedule (run-sched-var).
func WithSchedule(s Schedule, chunk int) Option {
	return func(r *Runtime) error {
		if s != ScheduleStatic && s != ScheduleDynamic && s != ScheduleGuided && s != ScheduleAuto {
			return fmt.Errorf("%w: unknown schedule %d", ErrInvalidOption, int(s))
		}
		if chunk < 0 {
			return fmt.Errorf("%w: negative schedule chunk %d", ErrInvalidOption, chunk)
		}
		r.icv.Schedule = s
		r.icv.Chunk = chunk
		return nil
	}
}

// WithMonitor installs an execution monitor (perfmodel hook).
func WithMonitor(m Monitor) Option {
	return func(r *Runtime) error {
		r.monitor = monitorOrNil(m)
		return nil
	}
}

// WithBarrierKind selects the barrier algorithm (ablation knob).
func WithBarrierKind(k BarrierKind) Option {
	return func(r *Runtime) error {
		if k != BarrierCentral && k != BarrierTree {
			return fmt.Errorf("%w: unknown barrier kind %d", ErrInvalidOption, int(k))
		}
		r.barrierKind = k
		return nil
	}
}

// WithTaskQueue selects the task-scheduler structure (ablation knob):
// per-worker stealing deques (default) or the legacy single shared queue.
func WithTaskQueue(k TaskQueue) Option {
	return func(r *Runtime) error {
		if k != TaskQueueSteal && k != TaskQueueShared {
			return fmt.Errorf("%w: unknown task queue kind %d", ErrInvalidOption, int(k))
		}
		r.taskQueue = k
		return nil
	}
}

// WithMaxConcurrentRegions caps the number of parallel regions that may
// be outstanding at once. Up to max regions run concurrently and up to
// max more callers wait in the admission queue (a canceled context
// abandons the wait); past both, forks fail fast with ErrSaturated so
// overload surfaces as backpressure instead of unbounded thread and
// memory growth. max == 0 removes the cap (the default).
func WithMaxConcurrentRegions(max int) Option {
	return func(r *Runtime) error {
		if max < 0 {
			return fmt.Errorf("%w: MaxConcurrentRegions %d < 0", ErrInvalidOption, max)
		}
		r.maxRegions = max
		return nil
	}
}

// WithTeamLeasing toggles the warm-team cache (ablation knob; default
// on). Disabled, every region builds and frees its own team — the
// per-region construction cost BenchmarkConcurrentRegions compares
// leasing against.
func WithTeamLeasing(on bool) Option {
	return func(r *Runtime) error {
		r.teamLease = on
		return nil
	}
}

// TaskQueueKind reports the runtime's task-scheduler structure.
func (r *Runtime) TaskQueueKind() TaskQueue { return r.taskQueue }

// MaxConcurrentRegions reports the admission cap (0 = unbounded).
func (r *Runtime) MaxConcurrentRegions() int { return r.maxRegions }

// WithEnv loads ICVs from OpenMP environment variables through getenv
// before other options apply their overrides.
func WithEnv(getenv func(string) string) Option {
	return func(r *Runtime) error {
		env := ICVFromEnv(getenv)
		if env.NumThreads > 0 {
			r.icv.NumThreads = env.NumThreads
		}
		r.icv.Schedule = env.Schedule
		if env.Chunk > 0 {
			r.icv.Chunk = env.Chunk
		}
		r.icv.Dynamic = env.Dynamic
		if env.MaxThreads > 0 {
			r.icv.MaxThreads = env.MaxThreads
		}
		return nil
	}
}

// New creates a runtime. With no options it uses the native layer and one
// thread per host processor.
func New(opts ...Option) (*Runtime, error) {
	r := &Runtime{
		monitor:   nopMonitor{},
		criticals: make(map[string]RuntimeMutex),
		teamLease: true,
		leases:    make(map[int][]*Team),
		epoch:     time.Now(),
	}
	for _, o := range opts {
		if err := o(r); err != nil {
			return nil, err
		}
	}
	if r.layer == nil {
		r.layer = NewNativeLayer(0)
	}
	if r.maxRegions > 0 {
		r.admitSem = make(chan struct{}, r.maxRegions)
	}
	r.icv.normalize(r.layer.NumProcs())
	r.pool = newPool(r.layer)
	return r, nil
}

// Layer returns the runtime's thread layer.
func (r *Runtime) Layer() ThreadLayer { return r.layer }

// Wtime returns elapsed wall-clock seconds since the runtime was created
// (omp_get_wtime; the epoch choice follows libGOMP's
// "per-program-start").
func (r *Runtime) Wtime() float64 {
	return time.Since(r.epoch).Seconds()
}

// Stats returns the live counters.
func (r *Runtime) Stats() *Stats { return &r.stats }

// NumThreads reports the current default team size
// (omp_get_max_threads).
func (r *Runtime) NumThreads() int {
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	return r.icv.NumThreads
}

// SetNumThreads changes the default team size (omp_set_num_threads). The
// request is clamped by thread-limit-var, and — when dynamic adjustment
// is enabled — by the number of online processors, per the OpenMP rules
// for dyn-var.
func (r *Runtime) SetNumThreads(n int) {
	if n < 1 {
		return
	}
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	r.icv.NumThreads = n
	r.icv.normalize(r.layer.NumProcs())
}

// RuntimeSchedule reports run-sched-var (omp_get_schedule).
func (r *Runtime) RuntimeSchedule() (Schedule, int) {
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	return r.icv.Schedule, r.icv.Chunk
}

// SetRuntimeSchedule sets run-sched-var (omp_set_schedule).
func (r *Runtime) SetRuntimeSchedule(s Schedule, chunk int) {
	if chunk < 0 {
		chunk = 0
	}
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	r.icv.Schedule = s
	r.icv.Chunk = chunk
}

// snapshotICV captures the ICVs for one region fork.
func (r *Runtime) snapshotICV() ICV {
	r.icvMu.Lock()
	defer r.icvMu.Unlock()
	return r.icv
}

// admit applies the concurrency cap before a fork: a free slot admits
// immediately; otherwise the caller joins the bounded admission queue
// (up to maxRegions waiters) until a region finishes or ctx fires; a
// full queue refuses with ErrSaturated.
func (r *Runtime) admit(ctx context.Context) error {
	if r.admitSem == nil {
		return nil
	}
	select {
	case r.admitSem <- struct{}{}:
		return nil
	default:
	}
	if int(r.admitWaiting.Add(1)) > r.maxRegions {
		r.admitWaiting.Add(-1)
		r.stats.Saturations.Add(1)
		return ErrSaturated
	}
	defer r.admitWaiting.Add(-1)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case r.admitSem <- struct{}{}:
		return nil
	case <-done:
		return canceledErr(ctx.Err())
	}
}

// unadmit releases an admission slot at region end.
func (r *Runtime) unadmit() {
	if r.admitSem != nil {
		<-r.admitSem
	}
}

// Parallel forks a team and runs body once per thread (#pragma omp
// parallel). The master (calling goroutine) is thread 0; pool workers
// carry the rest. The region ends with an implicit barrier that also
// drains outstanding explicit tasks.
func (r *Runtime) Parallel(body func(c *Context)) error {
	return r.parallel(nil, 0, body)
}

// ParallelN is Parallel with an explicit team size (num_threads clause);
// n <= 0 means "use the ICV".
func (r *Runtime) ParallelN(n int, body func(c *Context)) error {
	return r.parallel(nil, n, body)
}

// ParallelCtx is Parallel under a context: when ctx is canceled or its
// deadline passes, the whole team unwinds at its next cancellation
// points — loop chunk dispatch, task scheduling, barriers — and the fork
// returns an error wrapping both ErrCanceled and ctx's error (the OpenMP
// "cancel parallel" semantics). Work already inside a body call runs to
// that body's completion; cancellation is cooperative, not preemptive.
func (r *Runtime) ParallelCtx(ctx context.Context, body func(c *Context)) error {
	return r.parallel(ctx, 0, body)
}

// ParallelNCtx is ParallelCtx with an explicit team size.
func (r *Runtime) ParallelNCtx(ctx context.Context, n int, body func(c *Context)) error {
	return r.parallel(ctx, n, body)
}

// parallel is the region driver shared by every fork variant. ctx may be
// nil (no cancellation source); panic containment is always on.
func (r *Runtime) parallel(ctx context.Context, n int, body func(c *Context)) error {
	if r.closed.Load() {
		return ErrClosed
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return canceledErr(err)
		}
	}
	if err := r.admit(ctx); err != nil {
		return err
	}
	defer r.unadmit()

	icv := r.snapshotICV()
	if n <= 0 {
		n = icv.NumThreads
	}
	if n > icv.MaxThreads {
		n = icv.MaxThreads
	}
	if n < 1 {
		n = 1
	}

	team, err := r.leaseTeam(n)
	if err != nil {
		return err
	}
	workers, err := r.pool.acquire(n - 1)
	if err != nil {
		r.releaseTeam(team)
		return err
	}
	masterWID := r.acquireMasterWID()
	defer r.releaseMasterWID(masterWID)

	// The watcher converts a ctx fire into team cancellation. It must be
	// stopped AND joined before the team is released: releaseTeam may
	// rebuild the team's structures, which is only safe once no other
	// goroutine (a watcher mid-cancel included) can still touch them.
	stopWatcher := func() {}
	if ctx != nil && ctx.Done() != nil {
		stopWatch := make(chan struct{})
		watchDone := make(chan struct{})
		go func() {
			defer close(watchDone)
			select {
			case <-ctx.Done():
				team.cancel(canceledErr(ctx.Err()))
			case <-stopWatch:
			}
		}()
		stopWatcher = func() {
			close(stopWatch)
			<-watchDone
		}
	}

	run := func(tid, wid int) {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := v.(teamUnwind); ok && team.canceled() {
					return // cooperative unwind out of a canceled region
				}
				// A real panic from the region body (or a task it
				// spawned): contain it, fail the region, unwind the rest
				// of the team. The process stays alive.
				team.recordPanic(tid, v, debug.Stack())
			}
		}()
		c := &Context{team: team, tid: tid, wid: wid, groups: []*taskGroup{{}}}
		body(c)
		// Implicit region-end barrier: drain the task queues, then sync.
		team.quiesce(c)
	}

	// Jobs for workers 1..n-1 are handed over in one all-or-nothing batch:
	// a Close racing this fork either refuses the whole batch (ErrClosed,
	// no worker started, nothing waits on the team barrier) or happens
	// after every send. Partial teams — which would hang the region-end
	// barrier — cannot form.
	var wg sync.WaitGroup
	wg.Add(n - 1)
	jobs := make([]func(), n-1)
	for t := 1; t < n; t++ {
		tid, wid := t, workers[t-1].wid
		jobs[t-1] = func() {
			defer wg.Done()
			run(tid, wid)
		}
	}
	r.monitor.Fork(n)
	if err := r.pool.dispatchAll(workers, jobs); err != nil {
		stopWatcher()
		r.monitor.Join()
		r.releaseTeam(team)
		return err
	}
	r.stats.Regions.Add(1)
	r.stats.Threads.Add(uint64(n))
	run(0, masterWID)
	wg.Wait()
	stopWatcher()
	r.monitor.Join()
	err = team.regionErr()
	r.releaseTeam(team)
	return err
}

// ParallelFor forks a team and workshares iterations 0..n-1 over it with
// the runtime schedule (#pragma omp parallel for).
func (r *Runtime) ParallelFor(n int, body func(i int)) error {
	return r.Parallel(func(c *Context) { c.For(n, body) })
}

// ParallelForCtx is ParallelFor under a context; see ParallelCtx for the
// cancellation contract.
func (r *Runtime) ParallelForCtx(ctx context.Context, n int, body func(i int)) error {
	return r.ParallelCtx(ctx, func(c *Context) { c.For(n, body) })
}

// ParallelForRange forks a team and workshares iterations 0..n-1 with a
// static block schedule, handing each thread one contiguous [lo,hi)
// range (#pragma omp parallel for schedule(static)). This is the
// zero-per-index-overhead fork: no closure call per iteration, which is
// what an offload domain wants when executing a remote chunk whose body
// is already a range kernel.
func (r *Runtime) ParallelForRange(n int, body func(lo, hi int)) error {
	return r.Parallel(func(c *Context) {
		c.ForRange(n, LoopOpts{Schedule: ScheduleStatic}, body)
	})
}

// criticalMutex returns the mutex backing the named critical section,
// creating it through the thread layer on first use.
func (r *Runtime) criticalMutex(name string) RuntimeMutex {
	r.critMu.Lock()
	defer r.critMu.Unlock()
	m, ok := r.criticals[name]
	if !ok {
		var err error
		m, err = r.layer.NewMutex()
		if err != nil {
			// Mirrors gomp_fatal: the runtime cannot continue without its
			// synchronization primitive.
			panic(fmt.Sprintf("core: creating critical-section mutex: %v", err))
		}
		r.criticals[name] = m
	}
	return m
}

// Close shuts the pool down and releases the layer. The runtime is
// unusable afterwards.
func (r *Runtime) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	r.pool.close()
	r.drainTeamCache()
	return r.layer.Close()
}
