package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"openmpmca/internal/platform"
)

// eachLayer runs the test body once per thread layer so every construct is
// exercised both over the native substrate and over MRAPI.
func eachLayer(t *testing.T, body func(t *testing.T, newRT func(opts ...Option) *Runtime)) {
	t.Helper()
	layers := map[string]func(t *testing.T) ThreadLayer{
		"native": func(t *testing.T) ThreadLayer { return NewNativeLayer(24) },
		"mca": func(t *testing.T) ThreadLayer {
			l, err := NewMCALayer(platform.T4240RDB().NewSystem())
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
	}
	for name, mk := range layers {
		t.Run(name, func(t *testing.T) {
			newRT := func(opts ...Option) *Runtime {
				t.Helper()
				all := append([]Option{WithLayer(mk(t))}, opts...)
				rt, err := New(all...)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = rt.Close() })
				return rt
			}
			body(t, newRT)
		})
	}
}

func TestParallelRunsEveryThreadOnce(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(8))
		var mu sync.Mutex
		var tids []int
		if err := rt.Parallel(func(c *Context) {
			if c.NumThreads() != 8 {
				t.Errorf("NumThreads = %d, want 8", c.NumThreads())
			}
			mu.Lock()
			tids = append(tids, c.ThreadNum())
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
		sort.Ints(tids)
		if len(tids) != 8 {
			t.Fatalf("got %d activations, want 8", len(tids))
		}
		for i, tid := range tids {
			if tid != i {
				t.Fatalf("thread ids = %v, want 0..7 each once", tids)
			}
		}
	})
}

func TestParallelNOverridesICV(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var n atomic.Int32
		if err := rt.ParallelN(6, func(c *Context) { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
		if n.Load() != 6 {
			t.Errorf("activations = %d, want 6", n.Load())
		}
	})
}

func TestParallelSingleThreadTeam(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(1))
		ran := false
		if err := rt.Parallel(func(c *Context) {
			ran = true
			if c.ThreadNum() != 0 || c.NumThreads() != 1 {
				t.Errorf("tid/size = %d/%d", c.ThreadNum(), c.NumThreads())
			}
			c.Barrier() // must not hang on a team of one
		}); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Error("body did not run")
		}
	})
}

func TestRegionsReusePoolWorkers(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		for i := 0; i < 10; i++ {
			if err := rt.Parallel(func(c *Context) {}); err != nil {
				t.Fatal(err)
			}
		}
		if got := rt.pool.size(); got != 3 {
			t.Errorf("pool size = %d, want 3 (workers reused, not re-created)", got)
		}
		st := rt.Stats().Snapshot()
		if st.Regions != 10 || st.Threads != 40 {
			t.Errorf("stats = %+v", st)
		}
	})
}

func TestSetNumThreads(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(24)), WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", rt.NumThreads())
	}
	rt.SetNumThreads(12)
	var n atomic.Int32
	_ = rt.Parallel(func(c *Context) { n.Add(1) })
	if n.Load() != 12 {
		t.Errorf("activations = %d, want 12", n.Load())
	}
	rt.SetNumThreads(0) // ignored
	if rt.NumThreads() != 12 {
		t.Errorf("NumThreads after bad set = %d", rt.NumThreads())
	}
}

func TestDefaultTeamSizeFromLayerMetadata(t *testing.T) {
	// With no explicit thread count the MCA layer must size teams from the
	// MRAPI resource tree: 24 hardware threads on the T4240.
	l, err := NewMCALayer(platform.T4240RDB().NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(WithLayer(l))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.NumThreads() != 24 {
		t.Errorf("default NumThreads = %d, want 24 (from metadata)", rt.NumThreads())
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(2))
		if err := rt.Parallel(func(c *Context) {}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if err := rt.Parallel(func(c *Context) {}); !errors.Is(err, ErrClosed) {
			t.Errorf("Parallel after Close = %v, want ErrClosed", err)
		}
		if err := rt.Close(); err != nil {
			t.Errorf("double Close = %v, want nil", err)
		}
	})
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(WithNumThreads(0)); err == nil {
		t.Error("WithNumThreads(0) accepted")
	}
	if _, err := New(WithLayer(nil)); err == nil {
		t.Error("WithLayer(nil) accepted")
	}
	if _, err := New(WithSchedule(ScheduleDynamic, -1)); err == nil {
		t.Error("negative chunk accepted")
	}
}

func TestWithEnv(t *testing.T) {
	env := map[string]string{
		"OMP_NUM_THREADS": "6",
		"OMP_SCHEDULE":    "guided,8",
		"OMP_DYNAMIC":     "false",
	}
	rt, err := New(WithLayer(NewNativeLayer(24)), WithEnv(func(k string) string { return env[k] }))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.NumThreads() != 6 {
		t.Errorf("NumThreads = %d, want 6", rt.NumThreads())
	}
	s, c := rt.RuntimeSchedule()
	if s != ScheduleGuided || c != 8 {
		t.Errorf("schedule = %v,%d, want guided,8", s, c)
	}
}

func TestScratchIsPerThread(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		if err := rt.Parallel(func(c *Context) {
			s := c.Scratch()
			if len(s) != teamShmemSize {
				t.Errorf("scratch len = %d", len(s))
			}
			for i := range s {
				s[i] = byte(c.ThreadNum())
			}
			c.Barrier()
			// No other thread overwrote our slice.
			for _, b := range s {
				if b != byte(c.ThreadNum()) {
					t.Errorf("scratch corrupted: tid %d saw %d", c.ThreadNum(), b)
					break
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMasterOnlyThreadZero(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(6))
		var who atomic.Int32
		who.Store(-1)
		var count atomic.Int32
		_ = rt.Parallel(func(c *Context) {
			c.Master(func() {
				who.Store(int32(c.ThreadNum()))
				count.Add(1)
			})
		})
		if who.Load() != 0 || count.Load() != 1 {
			t.Errorf("master ran on tid %d, %d times", who.Load(), count.Load())
		}
	})
}

func TestICVNormalization(t *testing.T) {
	v := ICV{NumThreads: 0, MaxThreads: 0}
	v.normalize(16)
	if v.NumThreads != 16 || v.MaxThreads != defaultMaxThreads {
		t.Errorf("normalized = %+v", v)
	}
	v2 := ICV{NumThreads: 100, MaxThreads: 8}
	v2.normalize(16)
	if v2.NumThreads != 8 {
		t.Errorf("NumThreads = %d, want clamped to 8", v2.NumThreads)
	}
	v3 := ICV{NumThreads: 40, Dynamic: true}
	v3.normalize(16)
	if v3.NumThreads != 16 {
		t.Errorf("dynamic NumThreads = %d, want 16", v3.NumThreads)
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in    string
		sched Schedule
		chunk int
		ok    bool
	}{
		{"static", ScheduleStatic, 0, true},
		{"dynamic,4", ScheduleDynamic, 4, true},
		{"GUIDED , 16", ScheduleGuided, 16, true},
		{"auto", ScheduleAuto, 0, true},
		{"bogus", 0, 0, false},
		{"static,0", 0, 0, false},
		{"static,x", 0, 0, false},
	}
	for _, c := range cases {
		s, ch, err := ParseSchedule(c.in)
		if c.ok && (err != nil || s != c.sched || ch != c.chunk) {
			t.Errorf("ParseSchedule(%q) = %v,%d,%v", c.in, s, ch, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSchedule(%q) accepted", c.in)
		}
	}
}

func TestScheduleString(t *testing.T) {
	if ScheduleStatic.String() != "static" || ScheduleGuided.String() != "guided" {
		t.Error("schedule names wrong")
	}
	if BarrierCentral.String() != "central" || BarrierTree.String() != "tree" {
		t.Error("barrier kind names wrong")
	}
}

func TestWtimeAdvances(t *testing.T) {
	rt, err := New(WithLayer(NewNativeLayer(4)), WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	a := rt.Wtime()
	_ = rt.Parallel(func(c *Context) { c.Barrier() })
	b := rt.Wtime()
	if a < 0 || b <= a {
		t.Errorf("Wtime not monotone: %v -> %v", a, b)
	}
}

func TestSetNumThreadsDynamicClamps(t *testing.T) {
	env := map[string]string{"OMP_DYNAMIC": "true"}
	rt, err := New(WithLayer(NewNativeLayer(8)), WithEnv(func(k string) string { return env[k] }))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetNumThreads(100) // dyn-var lets the runtime reduce the request
	if got := rt.NumThreads(); got != 8 {
		t.Errorf("dynamic NumThreads = %d, want clamped to 8", got)
	}
}
