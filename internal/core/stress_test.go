package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestStressMixedConstructs drives a deterministic pseudo-random sequence
// of regions, each mixing worksharing loops, criticals, singles, barriers,
// reductions and tasks, over both layers — the "whole runtime at once"
// soak that shakes out construct interactions no focused test covers.
func TestStressMixedConstructs(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rng := rand.New(rand.NewSource(42))
		rt := newRT(WithNumThreads(6))

		for region := 0; region < 25; region++ {
			loopN := 16 + rng.Intn(200)
			sched := Schedule(rng.Intn(3))
			chunk := rng.Intn(5)
			tasks := rng.Intn(20)
			rounds := 1 + rng.Intn(4)

			var loopSum atomic.Int64
			var taskRan atomic.Int64
			critCount := 0
			var reduceGot int64

			err := rt.Parallel(func(c *Context) {
				for round := 0; round < rounds; round++ {
					c.ForOpts(loopN, LoopOpts{Schedule: sched, Chunk: chunk}, func(lo, hi int) {
						loopSum.Add(int64(hi - lo))
					})
					c.Critical(func() { critCount++ })
					c.SingleNoWait(func() {
						for i := 0; i < tasks; i++ {
							c.Task(func() { taskRan.Add(1) })
						}
					})
					c.TaskWait()
					r := Reduce(c, loopN, int64(0),
						func(a, b int64) int64 { return a + b },
						func(lo, hi int) int64 { return int64(hi - lo) })
					c.Master(func() { reduceGot = r })
					c.Barrier()
				}
			})
			if err != nil {
				t.Fatalf("region %d: %v", region, err)
			}
			if got := loopSum.Load(); got != int64(rounds*loopN) {
				t.Fatalf("region %d: loop sum %d, want %d", region, got, rounds*loopN)
			}
			if critCount != rounds*6 {
				t.Fatalf("region %d: criticals %d, want %d", region, critCount, rounds*6)
			}
			if got := taskRan.Load(); got != int64(rounds*tasks) {
				t.Fatalf("region %d: tasks %d, want %d", region, got, rounds*tasks)
			}
			if reduceGot != int64(loopN) {
				t.Fatalf("region %d: reduce %d, want %d", region, reduceGot, loopN)
			}
		}
	})
}

// TestStressTaskStealingAcrossTaskgroups hammers the per-worker deques
// from every thread at once: concurrent pushes, local pops, steals and
// group drains, with nested taskgroups spawning second-generation tasks.
// The -race CI target runs this; it is the memory-model audit of the
// stealing scheduler's push/steal/wake protocol.
func TestStressTaskStealingAcrossTaskgroups(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(8))
		const rounds = 6
		for round := 0; round < rounds; round++ {
			var ran atomic.Int64
			err := rt.Parallel(func(c *Context) {
				// Every thread is a producer: its own taskgroup of tasks
				// that each spawn a child into the same group.
				for rep := 0; rep < 3; rep++ {
					c.Taskgroup(func() {
						for i := 0; i < 40; i++ {
							c.Task(func() {
								ran.Add(1)
								c.Task(func() { ran.Add(1) })
							})
						}
					})
					c.TaskWait() // stray-child guard: group must be empty
				}
			})
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if got := ran.Load(); got != 8*3*40*2 {
				t.Fatalf("round %d: tasks ran = %d, want %d", round, got, 8*3*40*2)
			}
		}
		s := rt.Stats().Snapshot()
		if s.LocalPops+s.Steals > s.Tasks {
			t.Errorf("claim counters exceed executions: pops %d + steals %d > tasks %d",
				s.LocalPops, s.Steals, s.Tasks)
		}
	})
}

// TestStressOrderedDynamicNoWait drives Ordered sections inside a
// dynamic-schedule loop that skips its end-of-loop barrier: fast threads
// run ahead into later loop instances while stragglers still sequence the
// previous one, so instance matching, ordered sequencing and workshare
// cleanup are all exercised against each other.
func TestStressOrderedDynamicNoWait(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(6))
		const rounds, n = 8, 60
		orders := make([][]int, rounds)
		for r := range orders {
			orders[r] = make([]int, 0, n)
		}
		var total atomic.Int64
		err := rt.Parallel(func(c *Context) {
			for r := 0; r < rounds; r++ {
				round := r
				c.ForOpts(n, LoopOpts{Schedule: ScheduleDynamic, Chunk: 3, Ordered: true, NoWait: true},
					func(lo, hi int) {
						for i := lo; i < hi; i++ {
							c.Ordered(i, func() {
								// Ordered serializes within the instance; each
								// round has its own slice, so no extra sync.
								orders[round] = append(orders[round], i)
								total.Add(1)
							})
						}
					})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if total.Load() != rounds*n {
			t.Fatalf("ordered sections = %d, want %d", total.Load(), rounds*n)
		}
		for r, order := range orders {
			if len(order) != n {
				t.Fatalf("round %d: %d sections, want %d", r, len(order), n)
			}
			for i, v := range order {
				if v != i {
					t.Fatalf("round %d: order[%d] = %d — not ascending", r, i, v)
				}
			}
		}
	})
}
