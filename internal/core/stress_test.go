package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestStressMixedConstructs drives a deterministic pseudo-random sequence
// of regions, each mixing worksharing loops, criticals, singles, barriers,
// reductions and tasks, over both layers — the "whole runtime at once"
// soak that shakes out construct interactions no focused test covers.
func TestStressMixedConstructs(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rng := rand.New(rand.NewSource(42))
		rt := newRT(WithNumThreads(6))

		for region := 0; region < 25; region++ {
			loopN := 16 + rng.Intn(200)
			sched := Schedule(rng.Intn(3))
			chunk := rng.Intn(5)
			tasks := rng.Intn(20)
			rounds := 1 + rng.Intn(4)

			var loopSum atomic.Int64
			var taskRan atomic.Int64
			critCount := 0
			var reduceGot int64

			err := rt.Parallel(func(c *Context) {
				for round := 0; round < rounds; round++ {
					c.ForOpts(loopN, LoopOpts{Schedule: sched, Chunk: chunk}, func(lo, hi int) {
						loopSum.Add(int64(hi - lo))
					})
					c.Critical(func() { critCount++ })
					c.SingleNoWait(func() {
						for i := 0; i < tasks; i++ {
							c.Task(func() { taskRan.Add(1) })
						}
					})
					c.TaskWait()
					r := Reduce(c, loopN, int64(0),
						func(a, b int64) int64 { return a + b },
						func(lo, hi int) int64 { return int64(hi - lo) })
					c.Master(func() { reduceGot = r })
					c.Barrier()
				}
			})
			if err != nil {
				t.Fatalf("region %d: %v", region, err)
			}
			if got := loopSum.Load(); got != int64(rounds*loopN) {
				t.Fatalf("region %d: loop sum %d, want %d", region, got, rounds*loopN)
			}
			if critCount != rounds*6 {
				t.Fatalf("region %d: criticals %d, want %d", region, critCount, rounds*6)
			}
			if got := taskRan.Load(); got != int64(rounds*tasks) {
				t.Fatalf("region %d: tasks %d, want %d", region, got, rounds*tasks)
			}
			if reduceGot != int64(loopN) {
				t.Fatalf("region %d: reduce %d, want %d", region, reduceGot, loopN)
			}
		}
	})
}
