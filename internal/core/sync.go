package core

// DefaultCriticalName is the section name of an unnamed #pragma omp
// critical.
const DefaultCriticalName = "<unnamed>"

// Critical runs fn inside the unnamed critical section.
func (c *Context) Critical(fn func()) {
	c.CriticalNamed(DefaultCriticalName, fn)
}

// CriticalNamed runs fn inside the critical section with the given name
// (#pragma omp critical(name)). Sections with different names may overlap;
// the same name is mutually exclusive runtime-wide, across regions.
func (c *Context) CriticalNamed(name string, fn func()) {
	rt := c.team.rt
	m := rt.criticalMutex(name)
	// Lock attribution uses the layer-level worker id, not the team
	// thread id: wids stay unique across concurrently running teams,
	// where tids repeat (MRAPI mutexes trap a same-node relock as
	// self-deadlock). The deferred unlock also releases the section when
	// fn panics, so a contained region panic cannot strand waiters.
	m.Lock(c.wid)
	rt.monitor.CriticalEnter(c.tid)
	rt.stats.Crits.Add(1)
	defer func() {
		rt.monitor.CriticalExit(c.tid)
		m.Unlock(c.wid)
	}()
	fn()
}

// Single runs fn on the first thread to arrive and reports whether this
// thread executed it (#pragma omp single). All threads synchronize on the
// implied barrier afterwards.
func (c *Context) Single(fn func()) bool {
	return c.singleOpts(fn, false)
}

// SingleNoWait is Single without the trailing barrier (nowait clause).
func (c *Context) SingleNoWait(fn func()) bool {
	return c.singleOpts(fn, true)
}

func (c *Context) singleOpts(fn func(), nowait bool) bool {
	t := c.team
	gen := c.wsGen
	c.wsGen++
	ws := t.workshareAt(gen)
	won := ws.claimed.CompareAndSwap(false, true)
	if won {
		t.rt.monitor.Single(c.tid)
		t.rt.stats.Singles.Add(1)
		fn()
	}
	t.finishWorkshare(gen, ws)
	if !nowait {
		c.Barrier()
	}
	return won
}

// SingleCopy runs fn on the first thread to arrive and broadcasts its
// result to every thread of the team — the single construct's
// copyprivate clause. The implied barrier publishes the value.
func SingleCopy[T any](c *Context, fn func() T) T {
	t := c.team
	gen := c.wsGen
	c.wsGen++
	ws := t.workshareAt(gen)
	if ws.claimed.CompareAndSwap(false, true) {
		t.rt.monitor.Single(c.tid)
		t.rt.stats.Singles.Add(1)
		ws.result = fn()
	}
	c.Barrier()
	v := ws.result.(T)
	t.finishWorkshare(gen, ws)
	return v
}

// Sections distributes the given section bodies over the team
// (#pragma omp sections): each section runs exactly once, on whichever
// thread claims it. The construct ends with an implied barrier.
func (c *Context) Sections(sections ...func()) {
	c.SectionsOpts(false, sections...)
}

// SectionsOpts is Sections with a nowait control.
func (c *Context) SectionsOpts(nowait bool, sections ...func()) {
	t := c.team
	gen := c.wsGen
	c.wsGen++
	if len(sections) > 0 {
		ws := t.workshareAt(gen)
		for {
			idx := int(ws.next.Add(1)) - 1
			if idx >= len(sections) {
				break
			}
			sections[idx]()
		}
		t.finishWorkshare(gen, ws)
	}
	if !nowait {
		c.Barrier()
	}
}

// Lock is a runtime lock (omp_lock_t analog) backed by the thread layer's
// mutual-exclusion primitive — an MRAPI mutex under MCALayer.
type Lock struct {
	rt *Runtime
	m  RuntimeMutex
}

// NewLock creates a lock (omp_init_lock).
func (r *Runtime) NewLock() (*Lock, error) {
	m, err := r.layer.NewMutex()
	if err != nil {
		return nil, err
	}
	return &Lock{rt: r, m: m}, nil
}

// Lock acquires the lock (omp_set_lock). Pass the calling thread's Context
// inside parallel regions; nil means the initial thread.
func (l *Lock) Lock(c *Context) {
	l.m.Lock(widOf(c))
}

// Unlock releases the lock (omp_unset_lock).
func (l *Lock) Unlock(c *Context) {
	l.m.Unlock(widOf(c))
}

// widOf resolves a Context to its layer-level worker id for lock
// attribution; nil (the initial thread, outside any region) maps to the
// master identity.
func widOf(c *Context) int {
	if c == nil {
		return 0
	}
	return c.wid
}
