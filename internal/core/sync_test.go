package core

import (
	"sync/atomic"
	"testing"
)

func TestCriticalMutualExclusion(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(8))
		counter := 0 // deliberately unsynchronized; Critical must protect it
		const perThread = 500
		_ = rt.Parallel(func(c *Context) {
			for i := 0; i < perThread; i++ {
				c.Critical(func() { counter++ })
			}
		})
		if counter != 8*perThread {
			t.Errorf("counter = %d, want %d (critical leaked updates)", counter, 8*perThread)
		}
		if got := rt.Stats().Snapshot().Crits; got != 8*perThread {
			t.Errorf("Crits stat = %d", got)
		}
	})
}

func TestNamedCriticalsAreIndependent(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var aCount, bCount int
		_ = rt.Parallel(func(c *Context) {
			for i := 0; i < 200; i++ {
				c.CriticalNamed("a", func() { aCount++ })
				c.CriticalNamed("b", func() { bCount++ })
			}
		})
		if aCount != 800 || bCount != 800 {
			t.Errorf("counts = %d,%d, want 800,800", aCount, bCount)
		}
	})
}

func TestCriticalSameNameAcrossRegions(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	counter := 0
	for r := 0; r < 3; r++ {
		_ = rt.Parallel(func(c *Context) {
			for i := 0; i < 100; i++ {
				c.Critical(func() { counter++ })
			}
		})
	}
	if counter != 1200 {
		t.Errorf("counter = %d, want 1200", counter)
	}
	// Only one mutex may have been created for the unnamed section.
	rt.critMu.Lock()
	n := len(rt.criticals)
	rt.critMu.Unlock()
	if n != 1 {
		t.Errorf("criticals map has %d entries, want 1", n)
	}
}

func TestSingleExactlyOneWinner(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(8))
		var winners atomic.Int32
		var trueReturns atomic.Int32
		_ = rt.Parallel(func(c *Context) {
			for i := 0; i < 20; i++ {
				if c.Single(func() { winners.Add(1) }) {
					trueReturns.Add(1)
				}
			}
		})
		if winners.Load() != 20 {
			t.Errorf("single bodies ran %d times, want 20", winners.Load())
		}
		if trueReturns.Load() != 20 {
			t.Errorf("true returns = %d, want 20", trueReturns.Load())
		}
	})
}

func TestSingleBarrierPublishesWinnerWrites(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(6))
		shared := 0
		ok := true
		_ = rt.Parallel(func(c *Context) {
			for i := 1; i <= 30; i++ {
				c.Single(func() { shared = i })
				if shared != i { // visible to all threads after the barrier
					ok = false
				}
				c.Barrier()
			}
		})
		if !ok {
			t.Error("single's write was not visible after its barrier")
		}
	})
}

func TestSingleNoWaitDoesNotBarrier(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	before := rt.Stats().Snapshot().Barriers
	var ran atomic.Int32
	_ = rt.Parallel(func(c *Context) {
		c.SingleNoWait(func() { ran.Add(1) })
	})
	if ran.Load() != 1 {
		t.Errorf("single ran %d times", ran.Load())
	}
	if got := rt.Stats().Snapshot().Barriers - before; got != 1 {
		t.Errorf("barriers = %d, want 1 (implicit only)", got)
	}
}

func TestSectionsEachRunsOnce(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(3))
		var counts [7]atomic.Int32
		secs := make([]func(), 7)
		for i := range secs {
			i := i
			secs[i] = func() { counts[i].Add(1) }
		}
		_ = rt.Parallel(func(c *Context) {
			c.Sections(secs...)
		})
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Errorf("section %d ran %d times", i, counts[i].Load())
			}
		}
	})
}

func TestSectionsMoreThreadsThanSections(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(8))
	defer rt.Close()
	var n atomic.Int32
	_ = rt.Parallel(func(c *Context) {
		c.Sections(func() { n.Add(1) }, func() { n.Add(1) })
	})
	if n.Load() != 2 {
		t.Errorf("sections ran %d, want 2", n.Load())
	}
}

func TestEmptySections(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	if err := rt.Parallel(func(c *Context) { c.Sections() }); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSeparatesPhases(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(8))
		const rounds = 50
		phase := make([]atomic.Int32, rounds)
		violated := atomic.Bool{}
		_ = rt.Parallel(func(c *Context) {
			for r := 0; r < rounds; r++ {
				phase[r].Add(1)
				c.Barrier()
				// After the barrier every thread must see all 8 arrivals.
				if phase[r].Load() != 8 {
					violated.Store(true)
				}
				c.Barrier()
			}
		})
		if violated.Load() {
			t.Error("a thread passed the barrier before all arrivals")
		}
	})
}

func TestRuntimeLocks(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(6))
		l, err := rt.NewLock()
		if err != nil {
			t.Fatal(err)
		}
		counter := 0
		_ = rt.Parallel(func(c *Context) {
			for i := 0; i < 300; i++ {
				l.Lock(c)
				counter++
				l.Unlock(c)
			}
		})
		if counter != 1800 {
			t.Errorf("counter = %d, want 1800", counter)
		}
		// Lock usable from the initial thread outside regions.
		l.Lock(nil)
		counter++
		l.Unlock(nil)
		if counter != 1801 {
			t.Errorf("counter = %d", counter)
		}
	})
}

func TestBrokenMutexReproducesPaperBug(t *testing.T) {
	// §6A: the validation suite caught a non-functional synchronization
	// primitive that made critical fail. The fault injection must actually
	// produce a mutex that does not exclude.
	bm := brokenMutex{}
	bm.Lock(0)
	bm.Lock(1) // a real mutex would block here
	bm.Unlock(0)
	bm.Unlock(1)
}

func TestSingleCopyBroadcastsWinnerValue(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(8))
		var execs atomic.Int32
		var wrong atomic.Int32
		_ = rt.Parallel(func(c *Context) {
			for round := 1; round <= 20; round++ {
				v := SingleCopy(c, func() int {
					execs.Add(1)
					return round * 100
				})
				if v != round*100 {
					wrong.Add(1)
				}
			}
		})
		if execs.Load() != 20 {
			t.Errorf("single bodies ran %d times, want 20", execs.Load())
		}
		if wrong.Load() != 0 {
			t.Errorf("%d threads observed a wrong broadcast value", wrong.Load())
		}
	})
}

func TestSingleCopyHeterogeneousTypes(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4))
	defer rt.Close()
	_ = rt.Parallel(func(c *Context) {
		s := SingleCopy(c, func() string { return "broadcast" })
		if s != "broadcast" {
			t.Errorf("string copy = %q", s)
		}
		sl := SingleCopy(c, func() []int { return []int{1, 2, 3} })
		if len(sl) != 3 {
			t.Errorf("slice copy = %v", sl)
		}
	})
}
