package core

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestTasksAllExecuteBeforeRegionEnd(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var ran atomic.Int32
		_ = rt.Parallel(func(c *Context) {
			c.SingleNoWait(func() {
				for i := 0; i < 100; i++ {
					c.Task(func() { ran.Add(1) })
				}
			})
		})
		// The implicit region-end barrier must have drained everything.
		if ran.Load() != 100 {
			t.Errorf("tasks ran = %d, want 100", ran.Load())
		}
		if got := rt.Stats().Snapshot().Tasks; got != 100 {
			t.Errorf("Tasks stat = %d", got)
		}
	})
}

func TestTaskWaitBlocksForChildren(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		ok := atomic.Bool{}
		ok.Store(true)
		_ = rt.Parallel(func(c *Context) {
			c.SingleNoWait(func() {
				var done atomic.Int32
				for i := 0; i < 50; i++ {
					c.Task(func() { done.Add(1) })
				}
				c.TaskWait()
				if done.Load() != 50 {
					ok.Store(false)
				}
			})
		})
		if !ok.Load() {
			t.Error("TaskWait returned before children completed")
		}
	})
}

func TestTaskWaitOnlyWaitsOwnChildren(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(2))
	defer rt.Close()
	var mine atomic.Int32
	_ = rt.Parallel(func(c *Context) {
		if c.ThreadNum() == 0 {
			for i := 0; i < 10; i++ {
				c.Task(func() { mine.Add(1) })
			}
			c.TaskWait()
			if mine.Load() != 10 {
				t.Errorf("own children done = %d, want 10", mine.Load())
			}
		}
		// Thread 1 creates no tasks; its TaskWait must return immediately
		// even while thread 0's tasks may still be queued.
		if c.ThreadNum() == 1 {
			c.TaskWait()
		}
	})
}

func TestTaskgroupWaitsNestedTasks(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var inGroup atomic.Int32
		var after atomic.Int32
		_ = rt.Parallel(func(c *Context) {
			c.SingleNoWait(func() {
				c.Taskgroup(func() {
					for i := 0; i < 30; i++ {
						c.Task(func() { inGroup.Add(1) })
					}
				})
				// All 30 must be complete the moment Taskgroup returns.
				after.Store(inGroup.Load())
			})
		})
		if after.Load() != 30 {
			t.Errorf("tasks complete at taskgroup end = %d, want 30", after.Load())
		}
	})
}

func TestTasksRunBySiblingsUnderTaskWait(t *testing.T) {
	// A task that busy-waits for its sibling: only completes if some other
	// thread (or the waiter itself) picks the sibling up.
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(4))
	defer rt.Close()
	var sequence atomic.Int32
	_ = rt.Parallel(func(c *Context) {
		c.SingleNoWait(func() {
			c.Task(func() { sequence.Add(1) })
			c.Task(func() { sequence.Add(1) })
			c.TaskWait()
		})
	})
	if sequence.Load() != 2 {
		t.Errorf("sequence = %d, want 2", sequence.Load())
	}
}

func TestRecursiveTaskDecomposition(t *testing.T) {
	// Fibonacci via nested taskgroups, the classic OpenMP tasking demo.
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var fib func(c *Context, n int) int
		fib = func(c *Context, n int) int {
			if n < 2 {
				return n
			}
			var a, b int
			c.Taskgroup(func() {
				c.Task(func() { a = fib(c, n-1) })
				b = fib(c, n-2)
			})
			return a + b
		}
		var got int
		_ = rt.Parallel(func(c *Context) {
			c.SingleNoWait(func() { got = fib(c, 12) })
		})
		if got != 144 {
			t.Errorf("fib(12) = %d, want 144", got)
		}
	})
}

func TestEmptyTaskWaitReturns(t *testing.T) {
	rt, _ := New(WithLayer(NewNativeLayer(24)), WithNumThreads(3))
	defer rt.Close()
	if err := rt.Parallel(func(c *Context) {
		c.TaskWait()
		c.Taskgroup(func() {})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskSchedulerCountersAccountEveryTask(t *testing.T) {
	eachLayer(t, func(t *testing.T, newRT func(...Option) *Runtime) {
		rt := newRT(WithNumThreads(4))
		var ran atomic.Int32
		_ = rt.Parallel(func(c *Context) {
			c.SingleNoWait(func() {
				for i := 0; i < 100; i++ {
					c.Task(func() { ran.Add(1) })
				}
			})
		})
		if ran.Load() != 100 {
			t.Fatalf("tasks ran = %d", ran.Load())
		}
		s := rt.Stats().Snapshot()
		// 100 tasks fit one deque (capacity 256): every execution was a
		// local pop or a steal, never an undeferred overflow.
		if s.LocalPops+s.Steals != s.Tasks || s.Tasks != 100 {
			t.Errorf("LocalPops %d + Steals %d != Tasks %d", s.LocalPops, s.Steals, s.Tasks)
		}
	})
}

func TestTaskDequeOverflowRunsUndeferred(t *testing.T) {
	// A single-thread team spawning far beyond dequeCapacity: the bounded
	// deque must shed the excess by running tasks undeferred, not grow or
	// deadlock.
	rt, _ := New(WithLayer(NewNativeLayer(4)), WithNumThreads(1))
	defer rt.Close()
	const n = dequeCapacity * 4
	var ran atomic.Int32
	_ = rt.Parallel(func(c *Context) {
		for i := 0; i < n; i++ {
			c.Task(func() { ran.Add(1) })
		}
		c.TaskWait()
	})
	if ran.Load() != n {
		t.Fatalf("tasks ran = %d, want %d", ran.Load(), n)
	}
	s := rt.Stats().Snapshot()
	if s.Tasks != n {
		t.Errorf("Tasks = %d, want %d", s.Tasks, n)
	}
	if s.LocalPops >= n {
		t.Errorf("LocalPops = %d: overflow never ran undeferred", s.LocalPops)
	}
}

func TestSharedTaskQueueAblationKeepsSemantics(t *testing.T) {
	// The legacy single-queue scheduler stays available as an ablation
	// baseline; the tasking semantics must be identical.
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4), WithTaskQueue(TaskQueueShared))
	defer rt.Close()
	if rt.TaskQueueKind() != TaskQueueShared {
		t.Fatalf("TaskQueueKind = %v", rt.TaskQueueKind())
	}
	var fib func(c *Context, n int) int
	fib = func(c *Context, n int) int {
		if n < 2 {
			return n
		}
		var a, b int
		c.Taskgroup(func() {
			c.Task(func() { a = fib(c, n-1) })
			b = fib(c, n-2)
		})
		return a + b
	}
	var got int
	_ = rt.Parallel(func(c *Context) {
		c.SingleNoWait(func() { got = fib(c, 10) })
	})
	if got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
	s := rt.Stats().Snapshot()
	if s.Steals != 0 {
		t.Errorf("shared queue recorded %d steals", s.Steals)
	}
}

func TestStealsHappenWhenOneThreadProduces(t *testing.T) {
	// One producer spawns three tasks that can only complete together:
	// each spins until all three have been claimed, so three DISTINCT
	// threads must claim them — at least two by stealing from the
	// producer's deque. The counter must move.
	rt, _ := New(WithLayer(NewNativeLayer(8)), WithNumThreads(4))
	defer rt.Close()
	var arrived atomic.Int32
	_ = rt.Parallel(func(c *Context) {
		c.SingleNoWait(func() {
			for i := 0; i < 3; i++ {
				c.Task(func() {
					arrived.Add(1)
					for arrived.Load() < 3 {
						runtime.Gosched()
					}
				})
			}
		})
	})
	if arrived.Load() != 3 {
		t.Fatalf("tasks ran = %d", arrived.Load())
	}
	if got := rt.Stats().Snapshot().Steals; got < 2 {
		t.Errorf("Steals = %d, want >= 2 (three co-blocking tasks, one producer)", got)
	}
}
