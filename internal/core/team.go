package core

import (
	"sync"
	"sync/atomic"
)

// teamShmemSize is the size of the MRAPI-allocated bookkeeping block each
// team obtains at fork (the paper's "block of work share" per team, §5B2).
// Its allocation exercises the layer's gomp_malloc path; per-thread scratch
// is sliced out of it.
const teamShmemSize = 64

// Team is one parallel region's thread team: the barrier, the worksharing
// database, the reduction slots and the task scheduler its threads
// coordinate through.
type Team struct {
	rt   *Runtime
	size int

	barrier teamBarrier
	// shmem is the team's runtime-allocated bookkeeping block; it comes
	// from the thread layer (MRAPI shared memory under MCALayer).
	shmem []byte

	// Worksharing database: generation -> live workshare instance.
	wsMu sync.Mutex
	ws   map[int]*workshare

	// Task scheduler state. deques holds one bounded deque per thread
	// (TaskQueueSteal) or a single team-shared one (TaskQueueShared);
	// see task.go for the push/pop/steal protocol.
	deques      []*taskDeque
	queued      atomic.Int64 // tasks sitting in deques, not yet claimed
	outstanding atomic.Int64 // tasks created but not yet retired
	idlers      atomic.Int32 // drainers parked in idleWait
	idleMu      sync.Mutex
	idleCond    *sync.Cond

	// Region cancellation state (see cancel.go), re-armed per lease.
	// cancelCh is closed exactly once per canceled region; barrier waits
	// select on it. poisoned marks a team whose region ended abnormally
	// and whose structures must be rebuilt before reuse.
	cancelCh   chan struct{}
	cancelFlag atomic.Bool
	cancelMu   sync.Mutex
	cancelErr  error
	poisoned   bool
}

func newTeam(rt *Runtime, size int) (*Team, error) {
	shmem, err := rt.layer.Alloc(teamShmemSize * size)
	if err != nil {
		return nil, err
	}
	t := &Team{
		rt:      rt,
		size:    size,
		barrier: newBarrier(rt.barrierKind, size),
		shmem:   shmem,
		ws:      make(map[int]*workshare),
	}
	ndeques := size
	if rt.taskQueue == TaskQueueShared {
		ndeques = 1
	}
	t.deques = newTaskDequeSlab(ndeques, dequeCapacity)
	t.idleCond = sync.NewCond(&t.idleMu)
	t.arm()
	return t, nil
}

// Size returns the team's thread count.
func (t *Team) Size() int { return t.size }

// workshareAt returns the workshare instance for generation gen, creating
// it if this thread arrives first.
func (t *Team) workshareAt(gen int) *workshare {
	t.wsMu.Lock()
	defer t.wsMu.Unlock()
	ws, ok := t.ws[gen]
	if !ok {
		ws = &workshare{}
		t.ws[gen] = ws
	}
	return ws
}

// finishWorkshare records that one thread is done with the instance; the
// last one removes it from the database so long regions do not accumulate
// dead worksharing state.
func (t *Team) finishWorkshare(gen int, ws *workshare) {
	if ws.done.Add(1) == int32(t.size) {
		t.wsMu.Lock()
		delete(t.ws, gen)
		t.wsMu.Unlock()
	}
}

// Context is one thread's view of a parallel region. The runtime passes a
// Context to the region body; every construct method is keyed off it.
// A Context is owned by its thread and must not be shared.
type Context struct {
	team *Team
	tid  int

	// wid is the thread's layer-level worker identity: the pool worker's
	// id for threads 1..n-1, a (non-positive) leased caller id for thread
	// 0. Unlike tid it is unique across concurrently running teams, which
	// is what MRAPI node-owned mutexes attribute acquisitions by — two
	// overlapping regions both presenting tid 1 to the layer would trip
	// MRAPI's self-deadlock detection.
	wid int

	// wsGen counts worksharing constructs (for/sections/single) this
	// thread has entered; since every thread executes the same construct
	// sequence, equal generations across threads denote the same source
	// construct — the libGOMP work-share matching scheme.
	wsGen int

	// groups is the task-group stack; index 0 is the implicit group of
	// this thread's region task. groupMu guards it because task bodies
	// may call their creating thread's Context from whichever thread
	// claimed them (the recursive-decomposition idiom in task_test.go),
	// racing the owner's Taskgroup push/pop; the lock is per-Context and
	// all but uncontended.
	groupMu sync.Mutex
	groups  []*taskGroup

	// loopWS points at the enclosing Ordered loop's workshare while one
	// is active, so Context.Ordered can find its sequencing state.
	loopWS *workshare
}

// ThreadNum returns this thread's id within the team (omp_get_thread_num).
func (c *Context) ThreadNum() int { return c.tid }

// NumThreads returns the team size (omp_get_num_threads).
func (c *Context) NumThreads() int { return c.team.size }

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.team.rt }

// Scratch returns this thread's slice of the team's MRAPI-allocated
// bookkeeping block — private scratch carved from runtime-managed shared
// memory, as the paper's runtime does for its work-share blocks.
func (c *Context) Scratch() []byte {
	return c.team.shmem[c.tid*teamShmemSize : (c.tid+1)*teamShmemSize]
}

// Charge reports abstract work units to the runtime monitor; the
// virtual-time performance model turns them into board cycles. A nil
// monitor makes this a no-op.
func (c *Context) Charge(units float64) {
	c.team.rt.monitor.Charge(c.tid, units)
}

// Barrier executes a full team barrier (#pragma omp barrier). It is a
// cancellation point: in a canceled region the wait aborts and the thread
// unwinds instead of blocking on teammates that will never arrive.
func (c *Context) Barrier() {
	t := c.team
	t.checkCancel()
	t.barrier.Wait(c.tid, t.cancelCh, func() {
		t.rt.monitor.Barrier()
		t.rt.stats.Barriers.Add(1)
	})
	t.checkCancel()
}

// Master runs fn on thread 0 only, with no implied barrier
// (#pragma omp master).
func (c *Context) Master(fn func()) {
	if c.tid == 0 {
		fn()
	}
}

// Parallel runs a nested parallel region. Nested parallelism is disabled
// in this runtime (OMP_NESTED=false semantics, the usual configuration on
// the paper's embedded targets), so the inner region executes serialized:
// a team of one on the calling thread. Inner explicit tasks are drained
// before it returns. The serialized region still counts: Stats sees one
// region of one thread, and the monitor gets NestedFork/NestedJoin — the
// dedicated events that let traces show nested structure without
// disturbing the outer region's virtual clocks.
func (c *Context) Parallel(body func(*Context)) error {
	c.team.checkCancel()
	rt := c.team.rt
	team, err := rt.leaseTeam(1)
	if err != nil {
		return err
	}
	completed := false
	defer func() {
		if !completed {
			// A panic (or outer-cancellation unwind) is escaping through
			// this nested region: its deques and counters are in an
			// unknown state, so poison the team and let releaseTeam
			// rebuild it before reuse.
			team.poisoned = true
		}
		rt.releaseTeam(team)
	}()
	rt.monitor.NestedFork(c.tid, 1)
	rt.stats.Regions.Add(1)
	rt.stats.Threads.Add(1)
	// The inner context inherits the executing thread's layer identity:
	// the serialized team runs on the same worker.
	inner := &Context{team: team, tid: 0, wid: c.wid, groups: []*taskGroup{{}}}
	body(inner)
	team.drain(0, nil)
	rt.monitor.NestedJoin(c.tid)
	completed = true
	return nil
}
