package core

import "sync"

// ThreadPrivate is per-thread storage that persists across parallel
// regions of one runtime — the threadprivate directive's semantics.
// Copies are keyed by the layer-level worker identity (stable for a pool
// worker's whole life, and unique across concurrently running teams), so
// a physical thread re-encounters its own copy in later regions, as
// OpenMP guarantees for persistent threads.
type ThreadPrivate[T any] struct {
	mu   sync.Mutex
	vals map[int]*T
	init func() T
}

// NewThreadPrivate creates a threadprivate variable; init produces each
// thread's initial copy on first touch (the copyin-from-initializer
// model). A nil init zero-initializes.
func NewThreadPrivate[T any](init func() T) *ThreadPrivate[T] {
	return &ThreadPrivate[T]{vals: make(map[int]*T), init: init}
}

// Get returns the calling thread's copy, creating it on first touch. Pass
// nil for the initial thread outside parallel regions.
func (tp *ThreadPrivate[T]) Get(c *Context) *T {
	wid := widOf(c)
	tp.mu.Lock()
	defer tp.mu.Unlock()
	v, ok := tp.vals[wid]
	if !ok {
		v = new(T)
		if tp.init != nil {
			*v = tp.init()
		}
		tp.vals[wid] = v
	}
	return v
}

// ForEach visits every existing copy (worker id, value) outside parallel
// execution — the aggregation step threadprivate reductions end with.
// The visit order is unspecified.
func (tp *ThreadPrivate[T]) ForEach(fn func(wid int, v *T)) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	for wid, v := range tp.vals {
		fn(wid, v)
	}
}
