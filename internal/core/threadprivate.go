package core

import "sync"

// ThreadPrivate is per-thread storage that persists across parallel
// regions of one runtime — the threadprivate directive's semantics. Pool
// workers keep their thread ids across regions (the pool never shuffles
// them), so a thread re-encounters its own copy in later regions, exactly
// as OpenMP guarantees for teams of constant size.
type ThreadPrivate[T any] struct {
	mu   sync.Mutex
	vals map[int]*T
	init func() T
}

// NewThreadPrivate creates a threadprivate variable; init produces each
// thread's initial copy on first touch (the copyin-from-initializer
// model). A nil init zero-initializes.
func NewThreadPrivate[T any](init func() T) *ThreadPrivate[T] {
	return &ThreadPrivate[T]{vals: make(map[int]*T), init: init}
}

// Get returns the calling thread's copy, creating it on first touch. Pass
// nil for the initial thread outside parallel regions.
func (tp *ThreadPrivate[T]) Get(c *Context) *T {
	tid := tidOf(c)
	tp.mu.Lock()
	defer tp.mu.Unlock()
	v, ok := tp.vals[tid]
	if !ok {
		v = new(T)
		if tp.init != nil {
			*v = tp.init()
		}
		tp.vals[tid] = v
	}
	return v
}

// ForEach visits every existing copy (tid, value) outside parallel
// execution — the aggregation step threadprivate reductions end with.
// The visit order is unspecified.
func (tp *ThreadPrivate[T]) ForEach(fn func(tid int, v *T)) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	for tid, v := range tp.vals {
		fn(tid, v)
	}
}
