package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeWal assembles a raw wal image from entries and writes it as the
// given generation's journal, bypassing the Store so tests control the
// exact bytes on disk.
func writeWal(t *testing.T, dir string, gen uint64, entries []Entry, mutate func([]byte) []byte) {
	t.Helper()
	var img []byte
	for _, e := range entries {
		frame, err := encodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		img = append(img, frame...)
	}
	if mutate != nil {
		img = mutate(img)
	}
	path := filepath.Join(dir, fmt.Sprintf("wal-%06d.log", gen))
	if err := os.WriteFile(path, img, 0o600); err != nil {
		t.Fatal(err)
	}
}

func nEntries(n int) []Entry {
	out := make([]Entry, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, Entry{Op: OpAccept, ID: fmt.Sprintf("j-%d", i),
			Tenant: "t", Name: "echo", Arg: []byte{byte(i)}, At: int64(i + 1)})
	}
	return out
}

// TestJournalCorruption drives the three damage shapes the recovery
// contract names: a tail truncated mid-frame, a bit-flipped record, and
// a trailing garbage run. Each must recover exactly the last good
// prefix — never fewer records, never a fabricated one.
func TestJournalCorruption(t *testing.T) {
	cases := []struct {
		name       string
		mutate     func([]byte) []byte
		want       int // jobs recovered
		expectDrop bool
	}{
		{"intact", nil, 8, false},
		{"truncated-tail", func(b []byte) []byte {
			return b[:len(b)-7] // mid-frame cut: last record torn
		}, 7, true},
		{"truncated-header", func(b []byte) []byte {
			return b[:len(b)-1]
		}, 7, true},
		{"bit-flip-last-record", func(b []byte) []byte {
			b[len(b)-3] ^= 0x40
			return b
		}, 7, true},
		{"trailing-garbage", func(b []byte) []byte {
			return append(b, 0xDE, 0xAD, 0xBE, 0xEF, 0x01)
		}, 8, true},
		{"empty", func(b []byte) []byte { return nil }, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeWal(t, dir, 1, nEntries(8), tc.mutate)
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			got := s.Recovered()
			if len(got.Jobs) != tc.want {
				t.Fatalf("recovered %d jobs, want %d", len(got.Jobs), tc.want)
			}
			for i := 0; i < tc.want; i++ {
				if got.Jobs[fmt.Sprintf("j-%d", i)] == nil {
					t.Fatalf("prefix job j-%d missing", i)
				}
			}
			if tc.expectDrop && s.Stats().DroppedTailBytes == 0 {
				t.Fatal("tail was dropped but DroppedTailBytes is 0")
			}
		})
	}
}

// TestBitFlipMidJournal flips a byte inside an early record: replay
// must stop there, keeping only the records before it — the "last good
// prefix" is a prefix, not a sieve.
func TestBitFlipMidJournal(t *testing.T) {
	dir := t.TempDir()
	entries := nEntries(8)
	firstLen := func() int {
		frame, _ := encodeEntry(entries[0])
		return len(frame)
	}()
	writeWal(t, dir, 1, entries, func(b []byte) []byte {
		b[firstLen+frameHeaderLen+2] ^= 0x01 // damage record 1's payload
		return b
	})
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := s.Recovered()
	if len(got.Jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1 (records after the flip are unreachable)", len(got.Jobs))
	}
}

// TestTornSnapshotFallsBack tears the newest snapshot: recovery must
// fall back to the previous generation's snapshot and rebuild the full
// state from the retained wals.
func TestTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	// Build a real two-generation layout through the store itself.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range nEntries(4) {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil { // gen 2: snap-2 holds j-0..3
		t.Fatal(err)
	}
	if err := s.Append(Entry{Op: OpAccept, ID: "j-100", Tenant: "t", Name: "echo"}); err != nil {
		t.Fatal(err)
	}
	gen := s.Stats().Generation
	// Abandon without Close (crash), then tear the newest snapshot.
	snap := filepath.Join(dir, fmt.Sprintf("snap-%06d.db", gen))
	img, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, img[:len(img)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered()
	if len(got.Jobs) != 5 {
		t.Fatalf("recovered %d jobs after torn snapshot, want 5", len(got.Jobs))
	}
	if got.Jobs["j-100"] == nil {
		t.Fatal("post-compaction job lost in the fallback path")
	}
	if s2.Stats().TornSnapshots == 0 {
		t.Fatal("torn snapshot not counted")
	}
}

// FuzzJournalReplay hammers the frame scanner with arbitrary bytes: it
// must never panic, must account for every byte as either good prefix
// or dropped tail, and every accepted entry must be a valid JSON
// re-encodable Entry.
func FuzzJournalReplay(f *testing.F) {
	var valid []byte
	for _, e := range nEntries(3) {
		frame, _ := encodeEntry(e)
		valid = append(valid, frame...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep := replayJournal(data)
		if rep.goodBytes+rep.lostBytes != int64(len(data)) {
			t.Fatalf("byte accounting: %d good + %d lost != %d total",
				rep.goodBytes, rep.lostBytes, len(data))
		}
		if rep.goodBytes < 0 || rep.goodBytes > int64(len(data)) {
			t.Fatalf("goodBytes %d out of range", rep.goodBytes)
		}
		st := newState()
		for _, e := range rep.entries {
			if e.Op == "" || e.ID == "" {
				t.Fatalf("accepted entry without op/id: %+v", e)
			}
			if _, err := json.Marshal(e); err != nil {
				t.Fatalf("accepted entry does not re-encode: %v", err)
			}
			st.apply(e)
		}
		// Replaying the same entries again must be a fixed point.
		before := len(st.Jobs)
		for _, e := range rep.entries {
			st.apply(e)
		}
		if len(st.Jobs) != before {
			t.Fatal("second replay of the same entries changed the state")
		}
	})
}
