// Package durable is the job service's persistence layer: an
// append-only, CRC-framed write-ahead journal plus periodic snapshot
// compaction, recording every job-state transition (accepted →
// dispatched → settled/canceled, with tenant, kind, payload and result
// bytes) so that a server restart — graceful or SIGKILL — loses
// nothing.
//
// On disk a state directory holds generation-numbered pairs:
//
//	snap-000003.db    full state as of generation 3's birth (one CRC frame)
//	wal-000003.log    every transition since (a sequence of CRC frames)
//
// Appends go to the newest wal and are fsynced before the caller's
// response leaves the process, so an accepted job survives any crash.
// When the wal outgrows a threshold the store compacts: it writes the
// folded state to snap-<g+1>.tmp, fsyncs, renames it into place, starts
// an empty wal-<g+1>.log and prunes generations older than g. Because
// every journal entry is self-contained and idempotent, a crash at any
// point of that dance is safe: recovery loads the newest snapshot that
// passes its CRC and replays every wal of that generation and later, in
// order, each to its longest intact prefix. A torn snapshot (crash
// mid-write, bit rot) simply falls back one generation — the previous
// snapshot plus the retained wals reconstruct the same state.
//
// Open itself compacts: recovery folds everything it found into a fresh
// generation, so the process never appends to a file another process
// (or a torn tail) wrote. Jobs that were mid-flight at crash time come
// back with Status "running"; the service re-enqueues them for
// deterministic re-execution — safe because every builtin is
// closed-form and results are byte-verified downstream.
package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"openmpmca/internal/oerrors"
)

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = oerrors.Sentinel(oerrors.Cancel, oerrors.CodeStoreClosed,
	"durable: store closed")

// Job statuses a JobState carries; they mirror the job service's wire
// statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusSucceeded = "succeeded"
	StatusFailed    = "failed"
	StatusCanceled  = "canceled"
)

// JobState is the folded state of one job after replay.
type JobState struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Arg    []byte `json:"arg,omitempty"`
	N      int    `json:"n,omitempty"`
	Group  string `json:"group,omitempty"`

	Status    string `json:"status"`
	Result    []byte `json:"result,omitempty"`
	Error     string `json:"error,omitempty"`
	Recovered bool   `json:"recovered,omitempty"`

	SubmittedNs int64 `json:"submitted_ns,omitempty"`
	StartedNs   int64 `json:"started_ns,omitempty"`
	FinishedNs  int64 `json:"finished_ns,omitempty"`
}

// Settled reports whether the job reached a terminal state.
func (j *JobState) Settled() bool {
	switch j.Status {
	case StatusSucceeded, StatusFailed, StatusCanceled:
		return true
	}
	return false
}

// GroupState is the folded state of one completion group.
type GroupState struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	CreatedNs int64  `json:"created_ns,omitempty"`
}

// State is the full folded store state: every job and group ever
// journaled and not yet pruned by compaction retention.
type State struct {
	Jobs   map[string]*JobState
	Groups map[string]*GroupState
}

func newState() *State {
	return &State{Jobs: make(map[string]*JobState), Groups: make(map[string]*GroupState)}
}

// apply folds one entry into the state. Every operation is idempotent
// and tolerant of replayed suffixes: re-accepting an existing job or
// re-settling a settled one is a no-op, so recovery may replay a wal
// whose prefix was already folded into a snapshot.
func (st *State) apply(e Entry) {
	switch e.Op {
	case OpGroup:
		if _, ok := st.Groups[e.ID]; !ok {
			st.Groups[e.ID] = &GroupState{ID: e.ID, Tenant: e.Tenant, CreatedNs: e.At}
		}
	case OpAccept:
		if _, ok := st.Jobs[e.ID]; ok {
			return
		}
		st.Jobs[e.ID] = &JobState{
			ID: e.ID, Tenant: e.Tenant, Kind: e.Kind, Name: e.Name,
			Arg: e.Arg, N: e.N, Group: e.Group,
			Status: StatusQueued, SubmittedNs: e.At,
		}
	case OpDispatch:
		if j, ok := st.Jobs[e.ID]; ok && !j.Settled() {
			j.Status = StatusRunning
			j.StartedNs = e.At
		}
	case OpSettle:
		j, ok := st.Jobs[e.ID]
		if !ok || j.Settled() {
			return
		}
		switch e.Status {
		case StatusSucceeded, StatusFailed, StatusCanceled:
			j.Status = e.Status
		default:
			return // a settle without a terminal status is garbage; drop it
		}
		j.Result = e.Result
		j.Error = e.Error
		j.Recovered = e.Recovered
		j.FinishedNs = e.At
	}
}

// snapshotImage is the serialized form of a snapshot file's single CRC
// frame.
type snapshotImage struct {
	Version int          `json:"version"`
	Gen     uint64       `json:"gen"`
	At      int64        `json:"at"` // unix nanos of the snapshot write
	Jobs    []JobState   `json:"jobs"`
	Groups  []GroupState `json:"groups,omitempty"`
}

const snapshotVersion = 1

// encodeSnapshot renders the state as one framed record, jobs and
// groups in ID order so identical states serialize identically.
func encodeSnapshot(st *State, gen uint64, at int64) ([]byte, error) {
	img := snapshotImage{Version: snapshotVersion, Gen: gen, At: at}
	for _, j := range st.Jobs {
		img.Jobs = append(img.Jobs, *j)
	}
	sort.Slice(img.Jobs, func(a, b int) bool { return img.Jobs[a].ID < img.Jobs[b].ID })
	for _, g := range st.Groups {
		img.Groups = append(img.Groups, *g)
	}
	sort.Slice(img.Groups, func(a, b int) bool { return img.Groups[a].ID < img.Groups[b].ID })
	payload, err := json.Marshal(img)
	if err != nil {
		return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: encode snapshot gen %d: %w", gen, err)
	}
	return appendFrame(nil, payload), nil
}

// decodeSnapshot parses a snapshot file image. A torn or bit-flipped
// snapshot fails here — with a classified error — and recovery falls
// back a generation.
func decodeSnapshot(data []byte) (*State, int64, error) {
	payload, next, ok := readFrame(data, 0)
	if !ok || next != len(data) {
		return nil, 0, oerrors.Errorf(oerrors.Internal, oerrors.CodeSnapshotTorn,
			"durable: snapshot torn: bad frame or trailing bytes (%d bytes)", len(data))
	}
	var img snapshotImage
	if err := json.Unmarshal(payload, &img); err != nil {
		return nil, 0, oerrors.Errorf(oerrors.Internal, oerrors.CodeSnapshotTorn,
			"durable: snapshot torn: %w", err)
	}
	if img.Version != snapshotVersion {
		return nil, 0, oerrors.Errorf(oerrors.Internal, oerrors.CodeSnapshotTorn,
			"durable: snapshot version %d, want %d", img.Version, snapshotVersion)
	}
	st := newState()
	for i := range img.Jobs {
		j := img.Jobs[i]
		st.Jobs[j.ID] = &j
	}
	for i := range img.Groups {
		g := img.Groups[i]
		st.Groups[g.ID] = &g
	}
	return st, img.At, nil
}

// ---------------------------------------------------------------------------
// Store.

// Stats is the durable section of the service snapshot: journal and
// snapshot activity this process plus what recovery found at Open.
type Stats struct {
	Generation     uint64 `json:"generation"`      // current snapshot/wal generation
	JournalBytes   int64  `json:"journal_bytes"`   // bytes in the live wal
	JournalRecords uint64 `json:"journal_records"` // records appended this process
	Fsyncs         uint64 `json:"fsyncs"`          // file syncs issued this process
	Snapshots      uint64 `json:"snapshots"`       // snapshots written this process
	SnapshotAgeMs  int64  `json:"snapshot_age_ms"` // ms since the newest snapshot was written

	// Recovery evidence, fixed at Open.
	ReplayedJobs         int   `json:"replayed_jobs"`                   // jobs reconstructed at Open
	ReplayedSettled      int   `json:"replayed_settled"`                // already terminal at crash time
	ReplayedQueued       int   `json:"replayed_queued"`                 // accepted, never dispatched
	ReplayedInFlight     int   `json:"replayed_in_flight"`              // mid-flight at crash: re-executed
	TornSnapshots        int   `json:"torn_snapshots"`                  // snapshots skipped for CRC/frame damage
	DroppedTailBytes     int64 `json:"dropped_tail_bytes"`              // torn wal tails discarded
	RecoveredJournals    int   `json:"recovered_journals"`              // wal files replayed at Open
	RecoveredGenerations int   `json:"recovered_generations,omitempty"` // distinct generations walked
}

// config collects the tunables behind the Options.
type config struct {
	compactBytes int64
	fsync        bool
}

// Option configures Open.
type Option func(*config) error

// WithCompactEvery sets the wal size (bytes) past which an append
// triggers snapshot compaction (default 4 MiB; minimum 4 KiB).
func WithCompactEvery(n int64) Option {
	return func(c *config) error {
		if n < 4<<10 {
			return oerrors.Errorf(oerrors.Admission, oerrors.CodeInvalidOption,
				"durable: WithCompactEvery(%d): want >= 4096", n)
		}
		c.compactBytes = n
		return nil
	}
}

// WithFsync toggles the per-append fsync (default on). Turning it off
// trades the crash guarantee for throughput — only tests and
// benchmarks should.
func WithFsync(on bool) Option {
	return func(c *config) error {
		c.fsync = on
		return nil
	}
}

// Store is the write-ahead journal + snapshot pair rooted at one state
// directory. All methods are safe for concurrent use; appends are
// serialized and each is durable (fsynced) before it returns.
type Store struct {
	dir string
	cfg config

	mu       sync.Mutex
	f        *os.File // live wal
	gen      uint64
	walBytes int64
	state    *State
	closed   bool

	records     uint64
	fsyncs      uint64
	snapshots   uint64
	lastSnapNs  int64
	replayStats Stats // recovery-evidence fields only
}

// Open recovers (or initializes) the state directory and returns a
// ready store. Recovery loads the newest intact snapshot, replays every
// retained wal of that generation and later to its longest intact
// prefix, then immediately compacts into a fresh generation so this
// process never appends behind a torn tail.
func Open(dir string, opts ...Option) (*Store, error) {
	cfg := config{compactBytes: 4 << 20, fsync: true}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: state dir %s: %w", dir, err)
	}
	s := &Store{dir: dir, cfg: cfg, state: newState()}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Fold everything recovery found into a fresh generation: one
	// snapshot, one empty wal, no inherited tails.
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.compactLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// genFile renders a generation's snapshot or wal path.
func (s *Store) genFile(prefix string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%06d%s", prefix, gen,
		map[string]string{"snap": ".db", "wal": ".log"}[prefix]))
}

// scanGenerations lists the generation numbers present in the state
// dir, from snapshot and wal files alike, ascending.
func (s *Store) scanGenerations() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: scan %s: %w", s.dir, err)
	}
	seen := make(map[uint64]bool)
	for _, de := range ents {
		name := de.Name()
		var gen uint64
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".db"):
			fmt.Sscanf(name, "snap-%06d.db", &gen)
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			fmt.Sscanf(name, "wal-%06d.log", &gen)
		default:
			continue
		}
		if gen > 0 {
			seen[gen] = true
		}
	}
	gens := make([]uint64, 0, len(seen))
	for g := range seen {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens, nil
}

// recover rebuilds s.state from disk. Called once, from Open.
func (s *Store) recover() error {
	gens, err := s.scanGenerations()
	if err != nil {
		return err
	}
	if len(gens) == 0 {
		s.gen = 0 // compactLocked bumps to 1
		return nil
	}
	// Newest intact snapshot wins; torn ones fall back a generation.
	base := 0 // index into gens of the snapshot generation actually used; gens[0] if none
	st := newState()
	var snapAt int64
	for i := len(gens) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(s.genFile("snap", gens[i]))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // wal-only generation
			}
			return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
				"durable: read snapshot gen %d: %w", gens[i], rerr)
		}
		dec, at, derr := decodeSnapshot(data)
		if derr != nil {
			s.replayStats.TornSnapshots++
			continue
		}
		st, snapAt, base = dec, at, i
		break
	}
	// Replay the wals of the base generation and everything after it,
	// in order, each to its longest intact prefix.
	replayedGens := 0
	for i := base; i < len(gens); i++ {
		data, rerr := os.ReadFile(s.genFile("wal", gens[i]))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
				"durable: read wal gen %d: %w", gens[i], rerr)
		}
		rep := replayJournal(data)
		for _, e := range rep.entries {
			st.apply(e)
		}
		if rep.lostBytes > 0 {
			s.replayStats.DroppedTailBytes += rep.lostBytes
			_ = oerrors.New(oerrors.Internal, oerrors.CodeJournalCorrupt,
				"durable: torn journal tail dropped")
		}
		s.replayStats.RecoveredJournals++
		replayedGens++
	}
	s.replayStats.RecoveredGenerations = replayedGens
	s.state = st
	s.gen = gens[len(gens)-1]
	s.lastSnapNs = snapAt
	for _, j := range st.Jobs {
		s.replayStats.ReplayedJobs++
		switch {
		case j.Settled():
			s.replayStats.ReplayedSettled++
		case j.Status == StatusRunning:
			s.replayStats.ReplayedInFlight++
		default:
			s.replayStats.ReplayedQueued++
		}
	}
	return nil
}

// Recovered returns the state reconstructed at Open. The caller owns
// the returned maps; the store keeps its own mirror for compaction.
func (s *Store) Recovered() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := newState()
	for id, j := range s.state.Jobs {
		cp := *j
		out.Jobs[id] = &cp
	}
	for id, g := range s.state.Groups {
		cp := *g
		out.Groups[id] = &cp
	}
	return out
}

// Append journals one entry, fsyncs it, and folds it into the live
// state mirror. It returns only after the record is durable, so a
// caller may acknowledge the transition (e.g. answer HTTP 202) the
// moment Append returns.
func (s *Store) Append(e Entry) error {
	if e.At == 0 {
		e.At = time.Now().UnixNano()
	}
	frame, err := encodeEntry(e)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	n, werr := s.f.Write(frame)
	if werr == nil && n != len(frame) {
		werr = errShortWrite
	}
	if werr != nil {
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: append %s %s: %w", e.Op, e.ID, werr)
	}
	if s.cfg.fsync {
		if serr := s.f.Sync(); serr != nil {
			return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
				"durable: fsync %s %s: %w", e.Op, e.ID, serr)
		}
		s.fsyncs++
	}
	s.walBytes += int64(len(frame))
	s.records++
	s.state.apply(e)
	if s.walBytes >= s.cfg.compactBytes {
		return s.compactLocked()
	}
	return nil
}

// Compact forces a snapshot + wal rotation now. Normally the store
// compacts itself when the wal crosses the WithCompactEvery threshold.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked rotates to generation gen+1: snapshot first (tmp +
// fsync + atomic rename), then a fresh wal, then pruning of
// generations older than the previous one. Caller holds s.mu. The
// ordering makes every crash window safe: before the rename the old
// generation is intact; between rename and wal creation the new
// snapshot plus the old wals replay idempotently; after it the old
// generation is pure redundancy kept as the torn-snapshot fallback.
func (s *Store) compactLocked() error {
	newGen := s.gen + 1
	now := time.Now().UnixNano()
	img, err := encodeSnapshot(s.state, newGen, now)
	if err != nil {
		return err
	}
	snapPath := s.genFile("snap", newGen)
	tmp := snapPath + ".tmp"
	if err := writeFileSync(tmp, img); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: publish snapshot gen %d: %w", newGen, err)
	}
	s.fsyncs++ // writeFileSync's
	if err := s.syncDir(); err != nil {
		return err
	}
	wal, err := os.OpenFile(s.genFile("wal", newGen), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: open wal gen %d: %w", newGen, err)
	}
	if s.f != nil {
		_ = s.f.Close()
	}
	s.f = wal
	oldGen := s.gen
	s.gen = newGen
	s.walBytes = 0
	s.snapshots++
	s.lastSnapNs = now
	// Retain exactly one previous generation as the torn-snapshot
	// fallback; everything older is garbage.
	if gens, gerr := s.scanGenerations(); gerr == nil {
		for _, g := range gens {
			if g < oldGen {
				_ = os.Remove(s.genFile("snap", g))
				_ = os.Remove(s.genFile("wal", g))
			}
		}
	}
	return nil
}

// syncDir fsyncs the state directory so renames and creations are
// durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: open dir %s: %w", s.dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: fsync dir %s: %w", s.dir, err)
	}
	s.fsyncs++
	return nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: create %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: fsync %s: %w", path, err)
	}
	return f.Close()
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.replayStats
	st.Generation = s.gen
	st.JournalBytes = s.walBytes
	st.JournalRecords = s.records
	st.Fsyncs = s.fsyncs
	st.Snapshots = s.snapshots
	if s.lastSnapNs > 0 {
		st.SnapshotAgeMs = (time.Now().UnixNano() - s.lastSnapNs) / int64(time.Millisecond)
	}
	return st
}

// Close compacts one last time (folding the final wal into a snapshot)
// and releases the wal handle. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.compactLocked()
	s.closed = true
	if s.f != nil {
		cerr := s.f.Close()
		s.f = nil
		if err == nil {
			err = cerr
		}
	}
	return err
}

// Dir returns the store's state directory.
func (s *Store) Dir() string { return s.dir }
