package durable

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// acceptEntry builds an OpAccept for tests.
func acceptEntry(i int, tenant string) Entry {
	return Entry{
		Op: OpAccept, ID: fmt.Sprintf("j-%d", i), Tenant: tenant,
		Kind: "task", Name: "sum", Arg: []byte{byte(i), 1, 2},
		At: time.Now().UnixNano(),
	}
}

func settleEntry(i int, status string, result []byte) Entry {
	return Entry{Op: OpSettle, ID: fmt.Sprintf("j-%d", i), Status: status,
		Result: result, At: time.Now().UnixNano()}
}

func TestOpenEmptyDir(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.Generation != 1 {
		t.Fatalf("generation = %d, want 1", st.Generation)
	}
	if st.ReplayedJobs != 0 {
		t.Fatalf("replayed %d jobs from an empty dir", st.ReplayedJobs)
	}
	if got := s.Recovered(); len(got.Jobs) != 0 || len(got.Groups) != 0 {
		t.Fatalf("non-empty recovered state: %+v", got)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Entry{Op: OpGroup, ID: "g-1", Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e := acceptEntry(i, "alice")
		if i%2 == 0 {
			e.Group = "g-1"
		}
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	// 0,1 settle; 2,3 dispatched but unsettled (mid-flight); 4,5 queued.
	for i := 0; i < 4; i++ {
		if err := s.Append(Entry{Op: OpDispatch, ID: fmt.Sprintf("j-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(settleEntry(0, StatusSucceeded, []byte("res-0"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Entry{Op: OpSettle, ID: "j-1", Status: StatusFailed, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Reopen the same dir.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered()
	if len(got.Jobs) != 6 {
		t.Fatalf("recovered %d jobs, want 6", len(got.Jobs))
	}
	if g := got.Groups["g-1"]; g == nil || g.Tenant != "alice" {
		t.Fatalf("group not recovered: %+v", got.Groups)
	}
	j0 := got.Jobs["j-0"]
	if j0.Status != StatusSucceeded || !bytes.Equal(j0.Result, []byte("res-0")) {
		t.Fatalf("j-0 = %+v", j0)
	}
	if j1 := got.Jobs["j-1"]; j1.Status != StatusFailed || j1.Error != "boom" {
		t.Fatalf("j-1 = %+v", j1)
	}
	for _, id := range []string{"j-2", "j-3"} {
		if j := got.Jobs[id]; j.Status != StatusRunning {
			t.Fatalf("%s status = %q, want running (mid-flight)", id, j.Status)
		}
	}
	for _, id := range []string{"j-4", "j-5"} {
		if j := got.Jobs[id]; j.Status != StatusQueued {
			t.Fatalf("%s status = %q, want queued", id, j.Status)
		}
		if j := got.Jobs[id]; !bytes.Equal(j.Arg, []byte{j.Arg[0], 1, 2}) {
			t.Fatalf("%s arg not preserved: %x", id, j.Arg)
		}
	}
	st := s2.Stats()
	if st.ReplayedJobs != 6 || st.ReplayedSettled != 2 || st.ReplayedInFlight != 2 || st.ReplayedQueued != 2 {
		t.Fatalf("replay stats = %+v", st)
	}
}

func TestCompactionRotatesAndPreserves(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithCompactEvery(4096))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Append(acceptEntry(i, "bob")); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(settleEntry(i, StatusSucceeded, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Snapshots == 0 {
		t.Fatalf("no compaction after %d records / %d bytes", st.JournalRecords, st.JournalBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovered()
	if len(got.Jobs) != 200 {
		t.Fatalf("recovered %d jobs across compactions, want 200", len(got.Jobs))
	}
	for i := 0; i < 200; i++ {
		j := got.Jobs[fmt.Sprintf("j-%d", i)]
		if j == nil || j.Status != StatusSucceeded || !bytes.Equal(j.Result, []byte{byte(i)}) {
			t.Fatalf("j-%d = %+v", i, j)
		}
	}
}

func TestApplyIdempotent(t *testing.T) {
	entries := []Entry{
		{Op: OpAccept, ID: "j-1", Tenant: "a", Name: "sum", Arg: []byte{1}},
		{Op: OpDispatch, ID: "j-1"},
		{Op: OpSettle, ID: "j-1", Status: StatusSucceeded, Result: []byte{9}},
	}
	once := newState()
	for _, e := range entries {
		once.apply(e)
	}
	twice := newState()
	for _, e := range entries {
		twice.apply(e)
	}
	for _, e := range entries { // a replayed suffix must change nothing
		twice.apply(e)
	}
	j1, j2 := once.Jobs["j-1"], twice.Jobs["j-1"]
	if j1.Status != j2.Status || !bytes.Equal(j1.Result, j2.Result) {
		t.Fatalf("replayed fold diverged: %+v vs %+v", j1, j2)
	}
	// A settle must not resurrect or mutate a terminal job.
	twice.apply(Entry{Op: OpSettle, ID: "j-1", Status: StatusFailed, Error: "late"})
	if twice.Jobs["j-1"].Status != StatusSucceeded {
		t.Fatal("late settle overwrote a terminal state")
	}
	twice.apply(Entry{Op: OpDispatch, ID: "j-1"})
	if twice.Jobs["j-1"].Status != StatusSucceeded {
		t.Fatal("late dispatch overwrote a terminal state")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(acceptEntry(1, "x")); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
