package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"openmpmca/internal/oerrors"
)

// The journal is a flat sequence of CRC-framed records:
//
//	+----------+----------+------------------+
//	| len u32  | crc u32  | payload (len B)  |
//	+----------+----------+------------------+
//
// both integers big-endian, crc = CRC-32 (IEEE) of the payload bytes.
// A reader accepts the longest prefix of intact frames and stops at the
// first frame whose header is short, whose declared length is absurd,
// whose payload is truncated, or whose CRC does not match — the torn
// tail a crash mid-append leaves behind. Everything before that point
// is trusted; everything after is dropped and reported, never guessed
// at.

// frameHeaderLen is the fixed framing overhead per record.
const frameHeaderLen = 8

// maxRecordLen bounds a single record so a corrupt length field cannot
// ask the reader to allocate gigabytes: results are capped far below
// this by the service.
const maxRecordLen = 16 << 20

// appendFrame frames payload into buf and returns the extended slice.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame decodes one record starting at data[off]. It returns the
// payload and the offset just past the record, or ok=false when the
// bytes from off on do not form an intact record.
func readFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHeaderLen > len(data) {
		return nil, off, false
	}
	n := int(binary.BigEndian.Uint32(data[off : off+4]))
	crc := binary.BigEndian.Uint32(data[off+4 : off+8])
	if n < 0 || n > maxRecordLen || off+frameHeaderLen+n > len(data) {
		return nil, off, false
	}
	payload = data[off+frameHeaderLen : off+frameHeaderLen+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, off, false
	}
	return payload, off + frameHeaderLen + n, true
}

// Journal entry operations, in job-lifecycle order.
const (
	// OpGroup records a completion-group creation.
	OpGroup = "group"
	// OpAccept records an admitted job, with its full payload: the
	// record alone is enough to re-execute the job from scratch.
	OpAccept = "accept"
	// OpDispatch records the hand-off of a job to the fabric or
	// offloader. A job whose last record is a dispatch was mid-flight
	// when the process died.
	OpDispatch = "dispatch"
	// OpSettle records a terminal state: succeeded (with result bytes),
	// failed (with the classified error text) or canceled.
	OpSettle = "settle"
)

// Entry is one journal record. Fields beyond Op/ID are populated per
// operation; every entry is self-contained, so replay is a pure
// left-fold and re-applying any suffix is idempotent.
type Entry struct {
	Op string `json:"op"`
	ID string `json:"id"`           // job id (group id for OpGroup)
	At int64  `json:"at,omitempty"` // unix nanos of the transition

	// OpAccept / OpGroup.
	Tenant string `json:"tenant,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Name   string `json:"name,omitempty"`
	Arg    []byte `json:"arg,omitempty"`
	N      int    `json:"n,omitempty"`
	Group  string `json:"group,omitempty"`

	// OpSettle.
	Status    string `json:"status,omitempty"`
	Result    []byte `json:"result,omitempty"`
	Error     string `json:"error,omitempty"`
	Recovered bool   `json:"recovered,omitempty"`
}

// encodeEntry frames one entry for appending.
func encodeEntry(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: encode %s %s: %w", e.Op, e.ID, err)
	}
	return appendFrame(nil, payload), nil
}

// replayResult is what scanning one journal image yields: the intact
// prefix's entries, how many bytes of that prefix were good, and how
// many trailing bytes were dropped as torn or corrupt.
type replayResult struct {
	entries   []Entry
	goodBytes int64
	lostBytes int64
}

// replayJournal scans a journal image and accepts its longest intact
// prefix. A frame that decodes but whose payload is not a valid entry
// also ends the prefix: a CRC collision over garbage must not
// fabricate state.
func replayJournal(data []byte) replayResult {
	var res replayResult
	off := 0
	for {
		payload, next, ok := readFrame(data, off)
		if !ok {
			break
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil || e.Op == "" || e.ID == "" {
			break
		}
		res.entries = append(res.entries, e)
		off = next
	}
	res.goodBytes = int64(off)
	res.lostBytes = int64(len(data) - off)
	return res
}

// readAll reads r fully, classifying failures.
func readAll(r io.Reader, what string) ([]byte, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, oerrors.Errorf(oerrors.Internal, oerrors.CodeStoreIO,
			"durable: read %s: %w", what, err)
	}
	return b, nil
}

var errShortWrite = fmt.Errorf("short write")
