package epcc

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"openmpmca/internal/core"
)

// EPCC's third microbenchmark, arraybench, measures the data-environment
// cost of parallel regions: how much a PRIVATE or FIRSTPRIVATE array of a
// given size adds to the bare region overhead. In this runtime the
// private-array cost is the per-thread allocation and (for firstprivate)
// the copy-in, performed at region entry exactly where a compiler would
// emit them.

// ArrayClauses name the measured data-sharing clauses.
var ArrayClauses = []string{"private", "firstprivate"}

// ArraySizes are EPCC's 3^k sweep.
var ArraySizes = []int{1, 3, 9, 27, 81, 243, 729, 2187, 6561, 59049}

// ArrayPoint is one (clause, size) overhead measurement.
type ArrayPoint struct {
	Clause string
	Size   int
	// OverheadUS is the median per-region data-environment overhead in
	// µs, relative to a bare parallel region.
	OverheadUS float64
}

// arraySink defeats elision of the private arrays (see delay's sink).
var arraySink float64

// MeasureArray measures the data-environment overhead for one clause and
// array size.
func (s *Suite) MeasureArray(clause string, size int) (ArrayPoint, error) {
	rt := s.rt
	inner := s.opt.InnerReps

	template := make([]float64, size)
	for i := range template {
		template[i] = float64(i)
	}

	var body func(c *core.Context)
	switch clause {
	case "private":
		body = func(c *core.Context) {
			private := make([]float64, size)
			private[0] = 1
			if private[0] < 0 {
				arraySink = private[0]
			}
		}
	case "firstprivate":
		body = func(c *core.Context) {
			private := make([]float64, size)
			copy(private, template)
			if private[size-1] < -1 {
				arraySink = private[0]
			}
		}
	default:
		return ArrayPoint{}, fmt.Errorf("epcc: unknown array clause %q", clause)
	}

	timeRegions := func(fn func(c *core.Context)) float64 {
		best := 0.0
		samples := make([]float64, 0, s.opt.OuterReps)
		for rep := 0; rep < s.opt.OuterReps; rep++ {
			start := time.Now()
			for j := 0; j < inner; j++ {
				_ = rt.Parallel(fn)
			}
			samples = append(samples, float64(time.Since(start).Nanoseconds()))
		}
		sort.Float64s(samples)
		best = samples[len(samples)/2]
		return best
	}

	bare := timeRegions(func(c *core.Context) {})
	loaded := timeRegions(body)
	return ArrayPoint{
		Clause:     clause,
		Size:       size,
		OverheadUS: (loaded - bare) / float64(inner) / 1e3,
	}, nil
}

// ArrayTable holds a full arraybench sweep.
type ArrayTable struct {
	Threads int
	Points  []ArrayPoint
}

// MeasureArrayTable sweeps both clauses across ArraySizes.
func (s *Suite) MeasureArrayTable() (*ArrayTable, error) {
	t := &ArrayTable{Threads: s.rt.NumThreads()}
	for _, clause := range ArrayClauses {
		for _, size := range ArraySizes {
			p, err := s.MeasureArray(clause, size)
			if err != nil {
				return nil, err
			}
			t.Points = append(t.Points, p)
		}
	}
	return t, nil
}

// Render formats the sweep as arraybench's clause × size matrix.
func (t *ArrayTable) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EPCC arraybench — data-environment overhead (µs/region, %d threads)\n", t.Threads)
	fmt.Fprintf(&sb, "%-14s", "clause")
	for _, s := range ArraySizes {
		fmt.Fprintf(&sb, "%9d", s)
	}
	sb.WriteString("\n" + strings.Repeat("-", 14+9*len(ArraySizes)) + "\n")
	byClause := make(map[string][]ArrayPoint)
	for _, p := range t.Points {
		byClause[p.Clause] = append(byClause[p.Clause], p)
	}
	for _, clause := range ArrayClauses {
		fmt.Fprintf(&sb, "%-14s", clause)
		for _, p := range byClause[clause] {
			fmt.Fprintf(&sb, "%9.2f", p.OverheadUS)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
