// Package epcc ports the EPCC OpenMP synchronization microbenchmarks
// (Bull, EWOMP'99 — the paper's overhead-measurement tool, §6A) to the Go
// OpenMP runtime, so the paper's Table I can be regenerated: the relative
// overhead of each directive under the MCA-backed runtime versus the
// native runtime.
//
// Methodology, adapted for a host whose CPU count may be smaller than the
// team size: each construct executes innerreps times with a calibrated
// busy-delay inside; the reference time is the SAME TOTAL delay work run
// sequentially (the host must serialize it anyway), so
//
//	overhead = (constructTime − referenceTime) / innerreps
//
// isolates the construct's management cost — fork/join dispatch, barrier
// episodes, lock traffic — which is exactly the part the MCA indirection
// could slow down. Table I reports the ratio of these overheads between
// the two thread layers, so host speed cancels.
package epcc

import (
	"fmt"
	"math"
	"sort"
	"time"

	"openmpmca/internal/core"
)

// Constructs lists the directives measured, in the paper's Table I order
// (plus "lock", "ordered" and "task", which the full EPCC suites —
// syncbench and taskbench — measure too).
var Constructs = []string{
	"parallel", "for", "parallel for", "barrier", "single", "critical", "reduction", "lock", "ordered", "task",
}

// Options tune a measurement run.
type Options struct {
	// InnerReps is how many times the construct executes per sample.
	InnerReps int
	// OuterReps is how many samples are taken; the median is reported.
	OuterReps int
	// DelayLength is the busy-delay iteration count inside constructs.
	DelayLength int
}

// DefaultOptions returns the settings used by the Table I harness: small
// enough to run in seconds on a laptop, large enough that construct cost
// dominates timer noise.
func DefaultOptions() Options {
	return Options{InnerReps: 128, OuterReps: 7, DelayLength: 64}
}

func (o *Options) normalize() {
	if o.InnerReps <= 0 {
		o.InnerReps = 128
	}
	if o.OuterReps <= 0 {
		o.OuterReps = 7
	}
	if o.DelayLength < 0 {
		o.DelayLength = 0
	}
}

// Measurement is one construct's overhead result.
type Measurement struct {
	Construct string
	// OverheadUS is the median per-execution overhead in microseconds.
	OverheadUS float64
	// Samples holds every outer-rep overhead (µs), already sorted.
	Samples []float64
}

// sink defeats dead-code elimination of the busy delay. The accumulator
// is provably non-negative, so the store never executes and concurrent
// delay() calls stay race-free — but the compiler cannot prove it, so the
// loop is kept.
var sink float64

// delay is EPCC's delay(): a data-dependent floating-point spin.
func delay(length int) {
	a := 0.0
	for i := 0; i < length; i++ {
		a += float64(i&7) * 0.5
		if a > 512 {
			a *= 0.25
		}
	}
	if a < 0 {
		sink = a
	}
}

// Suite measures one runtime instance.
type Suite struct {
	rt  *core.Runtime
	opt Options
	// delayNs is the calibrated cost of one delay() call.
	delayNs float64
}

// NewSuite calibrates the delay loop against the host and returns a suite
// bound to rt.
func NewSuite(rt *core.Runtime, opt Options) *Suite {
	opt.normalize()
	s := &Suite{rt: rt, opt: opt}
	s.delayNs = s.calibrateDelay()
	return s
}

func (s *Suite) calibrateDelay() float64 {
	const reps = 20000
	best := math.MaxFloat64
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			delay(s.opt.DelayLength)
		}
		ns := float64(time.Since(start).Nanoseconds()) / reps
		if ns < best {
			best = ns
		}
	}
	return best
}

// Measure runs one construct's measurement and returns its overhead.
func (s *Suite) Measure(construct string) (Measurement, error) {
	fn, delaysPerRep, err := s.body(construct)
	if err != nil {
		return Measurement{}, err
	}
	samples := make([]float64, 0, s.opt.OuterReps)
	for rep := 0; rep < s.opt.OuterReps; rep++ {
		start := time.Now()
		fn()
		elapsed := float64(time.Since(start).Nanoseconds())
		refNs := delaysPerRep * float64(s.opt.InnerReps) * s.delayNs
		overheadUS := (elapsed - refNs) / float64(s.opt.InnerReps) / 1e3
		samples = append(samples, overheadUS)
	}
	sort.Float64s(samples)
	return Measurement{
		Construct:  construct,
		OverheadUS: samples[len(samples)/2],
		Samples:    samples,
	}, nil
}

// MeasureAll measures every construct in Constructs order.
func (s *Suite) MeasureAll() ([]Measurement, error) {
	out := make([]Measurement, 0, len(Constructs))
	for _, c := range Constructs {
		m, err := s.Measure(c)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// body returns the timed closure for a construct plus the number of
// delay() executions the construct performs per inner repetition (for the
// serialized reference).
func (s *Suite) body(construct string) (fn func(), delaysPerRep float64, err error) {
	rt := s.rt
	n := rt.NumThreads()
	inner := s.opt.InnerReps
	d := s.opt.DelayLength

	switch construct {
	case "parallel":
		// Fork/join per repetition — the paper's PARALLEL row.
		return func() {
			for j := 0; j < inner; j++ {
				_ = rt.Parallel(func(c *core.Context) { delay(d) })
			}
		}, float64(n), nil

	case "for":
		// One region; a worksharing loop per repetition.
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < inner; j++ {
					c.For(n, func(i int) { delay(d) })
				}
			})
		}, float64(n), nil

	case "parallel for":
		return func() {
			for j := 0; j < inner; j++ {
				_ = rt.ParallelFor(n, func(i int) { delay(d) })
			}
		}, float64(n), nil

	case "barrier":
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < inner; j++ {
					delay(d)
					c.Barrier()
				}
			})
		}, float64(n), nil

	case "single":
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < inner; j++ {
					c.Single(func() { delay(d) })
				}
			})
		}, 1, nil

	case "critical":
		// Each thread performs inner/n criticals so the serialized delay
		// work totals inner executions.
		perThread := inner / n
		if perThread == 0 {
			perThread = 1
		}
		total := perThread * n
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < perThread; j++ {
					c.Critical(func() { delay(d) })
				}
			})
		}, float64(total) / float64(inner), nil

	case "lock":
		perThread := inner / n
		if perThread == 0 {
			perThread = 1
		}
		total := perThread * n
		lock, lerr := rt.NewLock()
		if lerr != nil {
			return nil, 0, lerr
		}
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < perThread; j++ {
					lock.Lock(c)
					delay(d)
					lock.Unlock(c)
				}
			})
		}, float64(total) / float64(inner), nil

	case "ordered":
		// Each repetition is an ordered loop of nthreads iterations whose
		// ordered sections serialize a delay each.
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < inner; j++ {
					c.ForOpts(n, core.LoopOpts{Schedule: core.ScheduleStatic, Chunk: 1, Ordered: true},
						func(lo, hi int) {
							for i := lo; i < hi; i++ {
								c.Ordered(i, func() { delay(d) })
							}
						})
				}
			})
		}, float64(n), nil

	case "task":
		// EPCC taskbench's PARALLEL TASK pattern: every thread generates
		// its share of inner explicit tasks, then waits for its children.
		perThread := inner / n
		if perThread == 0 {
			perThread = 1
		}
		total := perThread * n
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < perThread; j++ {
					c.Task(func() { delay(d) })
				}
				c.TaskWait()
			})
		}, float64(total) / float64(inner), nil

	case "reduction":
		return func() {
			_ = rt.Parallel(func(c *core.Context) {
				for j := 0; j < inner; j++ {
					_ = core.Reduce(c, n, 0.0,
						func(a, b float64) float64 { return a + b },
						func(lo, hi int) float64 {
							for i := lo; i < hi; i++ {
								delay(d)
							}
							return float64(hi - lo)
						})
				}
			})
		}, float64(n), nil
	}
	return nil, 0, fmt.Errorf("epcc: unknown construct %q", construct)
}
