package epcc

import (
	"strings"
	"testing"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

func quickOptions() Options {
	return Options{InnerReps: 16, OuterReps: 3, DelayLength: 16}
}

func testRuntime(t *testing.T, threads int) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.WithLayer(core.NewNativeLayer(24)), core.WithNumThreads(threads))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func TestMeasureAllConstructs(t *testing.T) {
	rt := testRuntime(t, 4)
	s := NewSuite(rt, quickOptions())
	ms, err := s.MeasureAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(Constructs) {
		t.Fatalf("got %d measurements, want %d", len(ms), len(Constructs))
	}
	for i, m := range ms {
		if m.Construct != Constructs[i] {
			t.Errorf("measurement %d = %q, want %q", i, m.Construct, Constructs[i])
		}
		if len(m.Samples) != 3 {
			t.Errorf("%s: %d samples, want 3", m.Construct, len(m.Samples))
		}
		// Sorted samples; median is the middle one.
		if m.OverheadUS != m.Samples[1] {
			t.Errorf("%s: median %v not middle sample of %v", m.Construct, m.OverheadUS, m.Samples)
		}
	}
}

func TestMeasureUnknownConstruct(t *testing.T) {
	rt := testRuntime(t, 2)
	s := NewSuite(rt, quickOptions())
	if _, err := s.Measure("bogus"); err == nil {
		t.Error("unknown construct accepted")
	}
}

func TestDelayCalibrationPositive(t *testing.T) {
	rt := testRuntime(t, 2)
	s := NewSuite(rt, quickOptions())
	if s.delayNs <= 0 {
		t.Errorf("delayNs = %v, want > 0", s.delayNs)
	}
	// A longer delay must calibrate to more time.
	s2 := NewSuite(rt, Options{InnerReps: 16, OuterReps: 3, DelayLength: 1024})
	if s2.delayNs <= s.delayNs {
		t.Errorf("calibration not monotone: len 16 -> %v ns, len 1024 -> %v ns", s.delayNs, s2.delayNs)
	}
}

func TestParallelOverheadPositive(t *testing.T) {
	// Fork/join cannot be free: the measured overhead must exceed zero by
	// more than noise.
	rt := testRuntime(t, 4)
	s := NewSuite(rt, Options{InnerReps: 64, OuterReps: 5, DelayLength: 16})
	m, err := s.Measure("parallel")
	if err != nil {
		t.Fatal(err)
	}
	if m.OverheadUS <= 0 {
		t.Errorf("parallel overhead = %v µs, want > 0", m.OverheadUS)
	}
}

func TestMeasureOverMCALayer(t *testing.T) {
	l, err := core.NewMCALayer(platform.T4240RDB().NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(core.WithLayer(l), core.WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	s := NewSuite(rt, quickOptions())
	if _, err := s.MeasureAll(); err != nil {
		t.Fatal(err)
	}
}

func TestRatioClampsNoise(t *testing.T) {
	if got := ratio(0.005, 0.002); got != 1.0 {
		t.Errorf("noise ratio = %v, want 1.0 (both clamped to floor)", got)
	}
	if got := ratio(2, 1); got != 2 {
		t.Errorf("ratio = %v, want 2", got)
	}
	if got := ratio(-0.5, 1); got != 0.01 {
		t.Errorf("negative mca ratio = %v, want clamped 0.01", got)
	}
}

func TestMeasureTable1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table measurement in -short mode")
	}
	res, err := MeasureTable1(platform.T4240RDB(), quickOptions(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Table1Constructs {
		if len(res.Ratio[c]) != 2 {
			t.Fatalf("%s: %d ratios, want 2", c, len(res.Ratio[c]))
		}
		for i, v := range res.Ratio[c] {
			if v <= 0 {
				t.Errorf("%s@%d: ratio %v <= 0", c, res.Threads[i], v)
			}
			// The paper's band is 0.41–2.39; allow generous headroom for
			// host noise but catch order-of-magnitude blowups.
			if v > 10 {
				t.Errorf("%s@%d: ratio %v, MCA layer overhead blew up", c, res.Threads[i], v)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"TABLE I", "Parallel", "Reduction", "Critical"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleBench(t *testing.T) {
	rt := testRuntime(t, 4)
	s := NewSuite(rt, Options{InnerReps: 8, OuterReps: 3, DelayLength: 8})
	p := s.MeasureSchedule(core.ScheduleDynamic, 4)
	if p.Schedule != core.ScheduleDynamic || p.Chunk != 4 {
		t.Errorf("point = %+v", p)
	}
}

func TestScheduleTableRender(t *testing.T) {
	rt := testRuntime(t, 3)
	s := NewSuite(rt, Options{InnerReps: 4, OuterReps: 3, DelayLength: 4})
	table := s.MeasureScheduleTable()
	if len(table.Points) != 3*len(ScheduleChunks) {
		t.Fatalf("points = %d", len(table.Points))
	}
	out := table.Render()
	for _, want := range []string{"schedbench", "static", "dynamic", "guided", "128"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOrderedAndTaskConstructsMeasured(t *testing.T) {
	rt := testRuntime(t, 4)
	s := NewSuite(rt, quickOptions())
	for _, construct := range []string{"ordered", "task"} {
		if _, err := s.Measure(construct); err != nil {
			t.Errorf("Measure(%s): %v", construct, err)
		}
	}
}

func TestArrayBench(t *testing.T) {
	rt := testRuntime(t, 4)
	s := NewSuite(rt, Options{InnerReps: 8, OuterReps: 3, DelayLength: 4})
	p, err := s.MeasureArray("firstprivate", 243)
	if err != nil {
		t.Fatal(err)
	}
	if p.Clause != "firstprivate" || p.Size != 243 {
		t.Errorf("point = %+v", p)
	}
	if _, err := s.MeasureArray("shared", 1); err == nil {
		t.Error("unknown clause accepted")
	}
}

func TestArrayTableRender(t *testing.T) {
	rt := testRuntime(t, 2)
	s := NewSuite(rt, Options{InnerReps: 2, OuterReps: 1, DelayLength: 1})
	table, err := s.MeasureArrayTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Points) != 2*len(ArraySizes) {
		t.Fatalf("points = %d", len(table.Points))
	}
	out := table.Render()
	for _, want := range []string{"arraybench", "private", "firstprivate", "59049"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.InnerReps <= 0 || o.OuterReps <= 0 || o.DelayLength <= 0 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{InnerReps: -1, OuterReps: 0, DelayLength: -5}
	o.normalize()
	if o.InnerReps <= 0 || o.OuterReps <= 0 || o.DelayLength != 0 {
		t.Errorf("normalized = %+v", o)
	}
}
