package epcc

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"openmpmca/internal/core"
)

// The EPCC distribution ships a second microbenchmark, schedbench, that
// measures loop-scheduling overhead: the cost of distributing a fixed
// iteration space under static/dynamic/guided schedules at several chunk
// sizes. This file ports it, completing the suite the paper's §6A tool
// provides.

// SchedulePoint is one (schedule, chunk) overhead measurement.
type SchedulePoint struct {
	Schedule core.Schedule
	Chunk    int
	// OverheadUS is the median per-loop-instance overhead in µs.
	OverheadUS float64
}

// ScheduleChunks are the chunk sizes schedbench sweeps.
var ScheduleChunks = []int{1, 2, 4, 8, 16, 32, 64, 128}

// scheduleIters is the iteration space each measured loop distributes
// (EPCC's itersperthr × threads, fixed here for cross-run comparability).
const scheduleIters = 1024

// MeasureSchedule measures the per-instance overhead of worksharing
// scheduleIters iterations under the given schedule and chunk.
func (s *Suite) MeasureSchedule(sched core.Schedule, chunk int) SchedulePoint {
	rt := s.rt
	inner := s.opt.InnerReps
	d := s.opt.DelayLength

	samples := make([]float64, 0, s.opt.OuterReps)
	for rep := 0; rep < s.opt.OuterReps; rep++ {
		start := time.Now()
		_ = rt.Parallel(func(c *core.Context) {
			for j := 0; j < inner; j++ {
				c.ForOpts(scheduleIters, core.LoopOpts{Schedule: sched, Chunk: chunk}, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						delay(d)
					}
				})
			}
		})
		elapsed := float64(time.Since(start).Nanoseconds())
		refNs := float64(scheduleIters) * float64(inner) * s.delayNs
		samples = append(samples, (elapsed-refNs)/float64(inner)/1e3)
	}
	sort.Float64s(samples)
	return SchedulePoint{Schedule: sched, Chunk: chunk, OverheadUS: samples[len(samples)/2]}
}

// ScheduleTable holds a full schedbench sweep.
type ScheduleTable struct {
	Threads int
	Points  []SchedulePoint
}

// MeasureScheduleTable sweeps static/dynamic/guided across
// ScheduleChunks.
func (s *Suite) MeasureScheduleTable() *ScheduleTable {
	t := &ScheduleTable{Threads: s.rt.NumThreads()}
	for _, sched := range []core.Schedule{core.ScheduleStatic, core.ScheduleDynamic, core.ScheduleGuided} {
		for _, chunk := range ScheduleChunks {
			t.Points = append(t.Points, s.MeasureSchedule(sched, chunk))
		}
	}
	return t
}

// Render formats the sweep as schedbench's schedule × chunk matrix.
func (t *ScheduleTable) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EPCC schedbench — loop scheduling overhead (µs/instance, %d threads, %d iterations)\n",
		t.Threads, scheduleIters)
	fmt.Fprintf(&sb, "%-10s", "schedule")
	for _, c := range ScheduleChunks {
		fmt.Fprintf(&sb, "%8d", c)
	}
	sb.WriteString("\n" + strings.Repeat("-", 10+8*len(ScheduleChunks)) + "\n")
	bySched := make(map[core.Schedule][]SchedulePoint)
	order := []core.Schedule{}
	for _, p := range t.Points {
		if _, ok := bySched[p.Schedule]; !ok {
			order = append(order, p.Schedule)
		}
		bySched[p.Schedule] = append(bySched[p.Schedule], p)
	}
	for _, sched := range order {
		fmt.Fprintf(&sb, "%-10s", sched)
		for _, p := range bySched[sched] {
			fmt.Fprintf(&sb, "%8.2f", p.OverheadUS)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
