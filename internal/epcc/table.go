package epcc

import (
	"fmt"
	"strings"

	"openmpmca/internal/core"
	"openmpmca/internal/platform"
)

// Table1ThreadCounts are the pool sizes of the paper's Table I.
var Table1ThreadCounts = []int{4, 8, 12, 16, 20, 24}

// Table1Constructs are the rows of the paper's Table I (the full EPCC
// suite minus lock, which the paper omits).
var Table1Constructs = []string{
	"parallel", "for", "parallel for", "barrier", "single", "critical", "reduction",
}

// RelativeOverheads holds the Table I payload: for each construct, the
// ratio MCA-runtime overhead / native-runtime overhead per thread count.
// Values near 1.0 mean the MCA layer costs nothing; below 1.0 it is
// faster.
type RelativeOverheads struct {
	Board      *platform.Board
	Threads    []int
	Constructs []string
	// Ratio[construct][i] corresponds to Threads[i].
	Ratio map[string][]float64
	// NativeUS and MCAUS keep the absolute medians for EXPERIMENTS.md.
	NativeUS map[string][]float64
	MCAUS    map[string][]float64
}

// newRuntime builds a runtime on the given layer sized to nthreads.
func newRuntime(layer core.ThreadLayer, nthreads int) (*core.Runtime, error) {
	return core.New(core.WithLayer(layer), core.WithNumThreads(nthreads))
}

// MeasureTable1 regenerates the paper's Table I on the given board: it
// runs the EPCC suite over the native layer and over the MCA layer at each
// thread count and forms the overhead ratios.
func MeasureTable1(board *platform.Board, opt Options, threads []int) (*RelativeOverheads, error) {
	if len(threads) == 0 {
		threads = Table1ThreadCounts
	}
	res := &RelativeOverheads{
		Board:      board,
		Threads:    threads,
		Constructs: Table1Constructs,
		Ratio:      make(map[string][]float64),
		NativeUS:   make(map[string][]float64),
		MCAUS:      make(map[string][]float64),
	}
	for _, n := range threads {
		native, err := measureLayer(core.NewNativeLayer(board.HWThreads()), n, opt)
		if err != nil {
			return nil, fmt.Errorf("epcc: native layer at %d threads: %w", n, err)
		}
		mcaLayer, err := core.NewMCALayer(board.NewSystem())
		if err != nil {
			return nil, err
		}
		mca, err := measureLayer(mcaLayer, n, opt)
		if err != nil {
			return nil, fmt.Errorf("epcc: mca layer at %d threads: %w", n, err)
		}
		for _, c := range Table1Constructs {
			res.NativeUS[c] = append(res.NativeUS[c], native[c])
			res.MCAUS[c] = append(res.MCAUS[c], mca[c])
			res.Ratio[c] = append(res.Ratio[c], ratio(mca[c], native[c]))
		}
	}
	return res, nil
}

// ratio guards against zero/negative denominators, which can occur when an
// overhead is at timer-noise level; EPCC itself reports such cells as
// noise. We clamp into a ratio of the absolute magnitudes.
func ratio(mca, native float64) float64 {
	const floorUS = 0.01 // below 10ns the measurement is pure noise
	am, an := mca, native
	if am < floorUS {
		am = floorUS
	}
	if an < floorUS {
		an = floorUS
	}
	return am / an
}

func measureLayer(layer core.ThreadLayer, nthreads int, opt Options) (map[string]float64, error) {
	rt, err := newRuntime(layer, nthreads)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	s := NewSuite(rt, opt)
	out := make(map[string]float64, len(Table1Constructs))
	for _, c := range Table1Constructs {
		m, err := s.Measure(c)
		if err != nil {
			return nil, err
		}
		out[c] = m.OverheadUS
	}
	return out, nil
}

// Render formats the result like the paper's Table I.
func (r *RelativeOverheads) Render() string {
	var sb strings.Builder
	sb.WriteString("TABLE I: Relative overhead of MCA-libGOMP versus GNU OpenMP runtime\n")
	fmt.Fprintf(&sb, "%-14s", "Directive")
	for _, n := range r.Threads {
		fmt.Fprintf(&sb, "%8d", n)
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 14+8*len(r.Threads)) + "\n")
	for _, c := range r.Constructs {
		fmt.Fprintf(&sb, "%-14s", titleCase(c))
		for _, v := range r.Ratio[c] {
			fmt.Fprintf(&sb, "%8.2f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
