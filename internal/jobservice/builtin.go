package jobservice

import (
	"encoding/binary"
	"fmt"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/offload"
	"openmpmca/internal/taskfabric"
)

// Built-in demo jobs and kernels. ompmca-serve registers these so the
// service is usable out of the box, and ompmca-loadgen (plus the test
// suite) submits them and asserts the exact expected payloads — every
// builtin is deterministic with a closed-form or cheaply recomputable
// expected result.
const (
	// JobSum sums the integers in [lo,hi); arg I64Pair(lo,hi), result
	// U64 (two's-complement of the int64 sum).
	JobSum = "sum"
	// JobFib computes Fibonacci(n) iteratively with wrapping uint64
	// arithmetic; arg U64(n), result U64.
	JobFib = "fib"
	// JobEcho returns its argument unchanged.
	JobEcho = "echo"
	// JobSpin sleeps for arg nanoseconds (capped at 500ms) and echoes
	// the arg back; it exists to hold a dispatch slot open long enough
	// for fault injection to land mid-job. Arg U64(ns), result U64(ns).
	JobSpin = "spin"
	// KernelVecSum is the parallel-for builtin: iteration i contributes
	// i*i, folded by wrapping addition; result U64. Expected value is
	// the closed form (n-1)n(2n-1)/6 (mod 2^64).
	KernelVecSum = "vecsum"
)

// spinCap bounds JobSpin so a hostile argument cannot wedge a dispatch
// slot.
const spinCap = 500 * time.Millisecond

// U64 encodes v big-endian, the builtins' wire convention.
func U64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeU64 decodes a builtin result.
func DecodeU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("jobservice: want 8-byte payload, got %d", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// I64Pair encodes (a,b) big-endian, the JobSum argument convention.
func I64Pair(a, b int64) []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(a))
	binary.BigEndian.PutUint64(buf[8:], uint64(b))
	return buf[:]
}

// SumExpected is JobSum's closed-form expected result for [lo,hi).
func SumExpected(lo, hi int64) []byte {
	var s uint64
	if hi > lo {
		n := uint64(hi - lo)
		// lo + (lo+1) + ... + (hi-1) = n*lo + n(n-1)/2, wrapping.
		s = n*uint64(lo) + n*(n-1)/2
	}
	return U64(s)
}

// FibExpected is JobFib's expected result.
func FibExpected(n uint64) []byte { return U64(fib(n)) }

func fib(n uint64) uint64 {
	var a, b uint64 = 0, 1
	for i := uint64(0); i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// VecSumExpected is KernelVecSum's closed-form expected result for n
// iterations: sum of i*i over [0,n), i.e. (n-1)n(2n-1)/6 mod 2^64.
func VecSumExpected(n int) []byte {
	var s uint64
	for i := 0; i < n; i++ {
		s += uint64(i) * uint64(i)
	}
	return U64(s)
}

// RegisterBuiltinJobs registers the demo jobs on a fabric registry.
func RegisterBuiltinJobs(reg *taskfabric.Registry) error {
	jobs := []taskfabric.Job{
		taskfabric.FuncJob{JobName: JobSum, Fn: func(_ *core.Runtime, arg []byte) ([]byte, error) {
			if len(arg) != 16 {
				return nil, fmt.Errorf("%s: want 16-byte arg, got %d", JobSum, len(arg))
			}
			lo := int64(binary.BigEndian.Uint64(arg[:8]))
			hi := int64(binary.BigEndian.Uint64(arg[8:]))
			var s uint64
			for i := lo; i < hi; i++ {
				s += uint64(i)
			}
			return U64(s), nil
		}},
		taskfabric.FuncJob{JobName: JobFib, Fn: func(_ *core.Runtime, arg []byte) ([]byte, error) {
			n, err := DecodeU64(arg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", JobFib, err)
			}
			return U64(fib(n)), nil
		}},
		taskfabric.FuncJob{JobName: JobEcho, Fn: func(_ *core.Runtime, arg []byte) ([]byte, error) {
			out := make([]byte, len(arg))
			copy(out, arg)
			return out, nil
		}},
		taskfabric.FuncJob{JobName: JobSpin, Fn: func(_ *core.Runtime, arg []byte) ([]byte, error) {
			ns, err := DecodeU64(arg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", JobSpin, err)
			}
			d := time.Duration(ns)
			if d < 0 || d > spinCap {
				d = spinCap
			}
			time.Sleep(d)
			return U64(ns), nil
		}},
	}
	for _, j := range jobs {
		if err := reg.Register(j); err != nil {
			return err
		}
	}
	return nil
}

// RegisterBuiltinKernels registers the demo kernels on an offload
// registry.
func RegisterBuiltinKernels(reg *offload.Registry) error {
	return reg.Register(offload.FuncKernel{
		KernelName: KernelVecSum,
		ChunkFn: func(_ *core.Runtime, lo, hi int, _ []byte) ([]byte, error) {
			var s uint64
			for i := lo; i < hi; i++ {
				s += uint64(i) * uint64(i)
			}
			return U64(s), nil
		},
		FoldFn: func(acc, part []byte) ([]byte, error) {
			if acc == nil {
				return part, nil
			}
			a, err := DecodeU64(acc)
			if err != nil {
				return nil, err
			}
			p, err := DecodeU64(part)
			if err != nil {
				return nil, err
			}
			return U64(a + p), nil
		},
	})
}
