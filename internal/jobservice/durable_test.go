package jobservice

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"openmpmca/internal/durable"
	"openmpmca/internal/offload"
	"openmpmca/internal/taskfabric"
)

// newDurableEnv boots a full service like newTestEnv but returns an
// explicit shutdown func instead of only registering cleanups, so
// restart tests can tear the first life down before booting the second.
func newDurableEnv(t *testing.T, opts ...Option) (*testEnv, func()) {
	t.Helper()
	jobs := taskfabric.NewRegistry()
	if err := RegisterBuiltinJobs(jobs); err != nil {
		t.Fatal(err)
	}
	fab, err := taskfabric.NewFabric(jobs,
		taskfabric.WithDomains(2),
		taskfabric.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	kernels := offload.NewRegistry()
	if err := RegisterBuiltinKernels(kernels); err != nil {
		fab.Close()
		t.Fatal(err)
	}
	off, err := offload.New(kernels,
		offload.WithDomains(2),
		offload.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		fab.Close()
		t.Fatal(err)
	}
	opts = append([]Option{
		WithTenants(testTenants...),
		WithOffloader(off, kernels),
	}, opts...)
	srv, err := New(fab, jobs, opts...)
	if err != nil {
		off.Close()
		fab.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	env := &testEnv{fab: fab, off: off, srv: srv, ts: ts}
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		srv.Close()
		off.Close()
		fab.Close()
	}
	t.Cleanup(shutdown)
	return env, shutdown
}

// TestDurableRestartPreservesSettled settles a batch of jobs against a
// state dir, restarts the service over the same dir, and checks every
// job is still queryable with its byte-exact result — no re-execution,
// no loss.
func TestDurableRestartPreservesSettled(t *testing.T) {
	dir := t.TempDir()
	env1, shutdown1 := newDurableEnv(t, WithStateDir(dir, durable.WithFsync(false)))

	type want struct {
		id     string
		result []byte
	}
	var wants []want
	wants = append(wants, want{
		env1.submit(t, "key-alice", submitRequest{Job: JobSum, Arg: I64Pair(0, 1000)}).ID,
		SumExpected(0, 1000),
	})
	wants = append(wants, want{
		env1.submit(t, "key-alice", submitRequest{Job: JobFib, Arg: U64(40)}).ID,
		FibExpected(40),
	})
	wants = append(wants, want{
		env1.submit(t, "key-bob", submitRequest{Job: JobEcho, Arg: []byte("persist me")}).ID,
		[]byte("persist me"),
	})
	wants = append(wants, want{
		env1.submit(t, "key-bob", submitRequest{Job: KernelVecSum, Kind: KindParallelFor, N: 500}).ID,
		VecSumExpected(500),
	})
	// Wait under the owning key.
	for i, wt := range wants {
		key := "key-alice"
		if i >= 2 {
			key = "key-bob"
		}
		v := env1.wait(t, key, wt.id)
		if v.Status != StatusSucceeded || !bytes.Equal(v.Result, wt.result) {
			t.Fatalf("first life: job %s = %+v", wt.id, v)
		}
	}
	shutdown1()

	// Second life over the same state dir.
	env2, _ := newDurableEnv(t, WithStateDir(dir, durable.WithFsync(false)))
	for i, wt := range wants {
		key := "key-alice"
		if i >= 2 {
			key = "key-bob"
		}
		code, envl := env2.do(t, http.MethodGet, "/v1/jobs/"+wt.id, key, nil)
		if code != http.StatusOK {
			t.Fatalf("restart lost job %s: status %d (%s)", wt.id, code, envl.Error)
		}
		var v JobView
		meta(t, envl, &v)
		if v.Status != StatusSucceeded {
			t.Fatalf("restart: job %s status %q", wt.id, v.Status)
		}
		if !bytes.Equal(v.Result, wt.result) {
			t.Fatalf("restart: job %s result %x, want %x", wt.id, v.Result, wt.result)
		}
	}
	// Settled jobs must not have been re-enqueued.
	if st := env2.srv.ServiceStats(); st.Replayed != 0 {
		t.Fatalf("settled-only restart re-enqueued %d jobs", st.Replayed)
	}
	// Fresh ids must not collide with replayed ones.
	nv := env2.submit(t, "key-alice", submitRequest{Job: JobEcho, Arg: []byte("new")})
	for _, wt := range wants {
		if nv.ID == wt.id {
			t.Fatalf("job id %s reused after restart", nv.ID)
		}
	}
	// The durable section must be live in the snapshot.
	snap := env2.srv.Snapshot()
	if snap.Durable == nil || snap.Durable.ReplayedJobs < len(wants) {
		t.Fatalf("durable stats missing or short: %+v", snap.Durable)
	}
}

// copyDir clones a state directory — the moral equivalent of the disk
// image a SIGKILL leaves behind at the instant of the copy.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashImageReplaysQueue snapshots the state dir while jobs are
// still queued and mid-flight (a crash image: the first life never
// closes anything), boots a second service over the image, and checks
// every accepted job re-executes to its byte-exact expected result.
func TestCrashImageReplaysQueue(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	env1, _ := newDurableEnv(t,
		WithStateDir(dirA, durable.WithFsync(false)),
		WithDispatchWindow(2),
	)
	// Spin jobs hold the 2-slot window open so later submissions stay
	// queued; every accept is journaled before its 202.
	spinNs := uint64(150 * time.Millisecond)
	var ids []string
	for i := 0; i < 8; i++ {
		ids = append(ids, env1.submit(t, "key-alice", submitRequest{Job: JobSpin, Arg: U64(spinNs)}).ID)
	}
	copyDir(t, dirA, dirB) // crash image: some running, most queued

	env2, _ := newDurableEnv(t, WithStateDir(dirB, durable.WithFsync(false)))
	if st := env2.srv.ServiceStats(); st.Replayed == 0 {
		t.Fatal("crash image with queued jobs replayed nothing")
	}
	for _, id := range ids {
		v := env2.wait(t, "key-alice", id)
		if v.Status != StatusSucceeded {
			t.Fatalf("replayed job %s: status %q (%s)", id, v.Status, v.Error)
		}
		if !bytes.Equal(v.Result, U64(spinNs)) {
			t.Fatalf("replayed job %s: result %x, want %x", id, v.Result, U64(spinNs))
		}
		if !v.Recovered {
			t.Fatalf("replayed job %s not flagged recovered", id)
		}
	}
}

// TestDurableGroupSurvivesRestart checks group membership crosses the
// restart: a crash image holding a group and queued members comes back
// with the group streaming every member.
func TestDurableGroupSurvivesRestart(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	env1, _ := newDurableEnv(t,
		WithStateDir(dirA, durable.WithFsync(false)),
		WithDispatchWindow(1),
	)
	code, genv := env1.do(t, http.MethodPost, "/v1/groups", "key-alice", nil)
	if code != http.StatusCreated {
		t.Fatalf("group create: %d", code)
	}
	var gv GroupView
	meta(t, genv, &gv)
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, env1.submit(t, "key-alice", submitRequest{
			Job: JobSpin, Arg: U64(uint64(100 * time.Millisecond)), Group: gv.ID,
		}).ID)
	}
	copyDir(t, dirA, dirB)

	env2, _ := newDurableEnv(t, WithStateDir(dirB, durable.WithFsync(false)))
	for _, id := range ids {
		if v := env2.wait(t, "key-alice", id); v.Group != gv.ID {
			t.Fatalf("job %s lost its group: %+v", id, v)
		}
	}
	code, genv2 := env2.do(t, http.MethodGet, "/v1/groups/"+gv.ID, "key-alice", nil)
	if code != http.StatusOK {
		t.Fatalf("group lost in restart: %d", code)
	}
	var gv2 GroupView
	meta(t, genv2, &gv2)
	if gv2.Members != len(ids) {
		t.Fatalf("group members = %d, want %d", gv2.Members, len(ids))
	}
}

// TestNoStoreUnchanged pins the nil-store contract: without a state
// dir nothing durable appears in the snapshot and nothing is written
// anywhere.
func TestNoStoreUnchanged(t *testing.T) {
	env := newTestEnv(t)
	v := env.submit(t, "key-alice", submitRequest{Job: JobEcho, Arg: []byte("x")})
	if got := env.wait(t, "key-alice", v.ID); !bytes.Equal(got.Result, []byte("x")) {
		t.Fatalf("echo = %+v", got)
	}
	if snap := env.srv.Snapshot(); snap.Durable != nil {
		t.Fatalf("nil-store snapshot has a durable section: %+v", snap.Durable)
	}
}
