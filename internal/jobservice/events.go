package jobservice

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"openmpmca/internal/taskfabric"
)

// Per-job progress streaming: every job carries a bounded event log
// recording its lifecycle transitions plus fine-grained execution
// progress — chunk completions for parallel_for jobs (fed by the
// offloader's RegionObserver) and task send/receive for fabric jobs
// (fed by a ProgressHub wired as the fabric's event sink). Clients
// follow a single job at GET /v1/jobs/{id}/events (NDJSON), and group
// streams interleave members' progress lines with the existing
// settled-member events.

// Job event types, in rough lifecycle order.
const (
	EventAccepted   = "accepted"   // admitted (and journaled, when durable)
	EventDispatched = "dispatched" // handed to the fabric or offloader
	EventTaskSent   = "task_sent"  // fabric task dispatched to a domain
	EventTaskDone   = "task_done"  // fabric task result accepted
	EventChunk      = "chunk"      // one parallel_for chunk completed
	EventSettled    = "settled"    // terminal: succeeded, failed or canceled
)

// JobEvent is one line of a job's progress stream. Chunk and Domain are
// -1 when the event type carries no such coordinate; Domain -1 on a
// chunk/task event means host-local execution (matching the span and
// trace conventions), so task/chunk events carry HostDomain instead.
type JobEvent struct {
	Seq    int    `json:"seq"`
	AtNs   int64  `json:"at_ns"`
	Type   string `json:"type"`
	Chunk  int    `json:"chunk,omitempty"`
	Total  int    `json:"total,omitempty"`  // region chunk count, on chunk events
	Domain *int   `json:"domain,omitempty"` // executor; -1 = host
	Status string `json:"status,omitempty"` // terminal status, on settled events
}

// eventLogCap bounds one job's retained events: a drop-oldest window,
// like the trace and span rings. Seq numbers stay global, so a follower
// can detect the gap.
const eventLogCap = 256

// eventLog is one job's append-only progress log with follower support:
// pulse is closed and replaced on every append, waking all waiters.
type eventLog struct {
	mu     sync.Mutex
	events []JobEvent
	seq    int
	done   bool
	pulse  chan struct{}
}

func newEventLog() *eventLog { return &eventLog{pulse: make(chan struct{})} }

// add stamps and appends one event, returning the stamped copy.
func (l *eventLog) add(e JobEvent) JobEvent {
	l.mu.Lock()
	e.Seq = l.seq
	l.seq++
	if e.AtNs == 0 {
		e.AtNs = time.Now().UnixNano()
	}
	l.events = append(l.events, e)
	if len(l.events) > eventLogCap {
		l.events = l.events[len(l.events)-eventLogCap:]
	}
	if e.Type == EventSettled {
		l.done = true
	}
	close(l.pulse)
	l.pulse = make(chan struct{})
	l.mu.Unlock()
	return e
}

// since returns the retained events with Seq >= seq, whether the log is
// terminal, and a channel that pulses on the next append.
func (l *eventLog) since(seq int) (evs []JobEvent, done bool, pulse <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.events {
		if e.Seq >= seq {
			evs = append(evs, e)
		}
	}
	return evs, l.done, l.pulse
}

// domainOf boxes a domain id for the JSON shape.
func domainOf(d int) *int { return &d }

// progress appends one event to the job's log and, when the job belongs
// to a group, mirrors it onto the group's progress queue. Never called
// with Server.mu held: group delivery takes the group lock.
func (j *jobRec) progress(e JobEvent) {
	stamped := j.events.add(e)
	if j.group != nil && e.Type != EventSettled {
		j.group.deliverProgress(j.id, stamped)
	}
}

// groupProgress is one member progress line queued for the group
// stream.
type groupProgress struct {
	jobID string
	event JobEvent
}

// groupProgressCap bounds a group's undrained progress queue; a slow or
// absent streamer loses the oldest lines, never completions.
const groupProgressCap = 1024

// deliverProgress queues one member progress event for the stream.
func (g *groupRec) deliverProgress(jobID string, e JobEvent) {
	g.mu.Lock()
	g.progress = append(g.progress, groupProgress{jobID: jobID, event: e})
	if len(g.progress) > groupProgressCap {
		g.progress = g.progress[len(g.progress)-groupProgressCap:]
	}
	g.mu.Unlock()
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------------
// ProgressHub: fabric event sink with per-job attribution.

// ProgressHub adapts the fabric's global event stream into per-job
// progress: the server binds each submitted task id to its job record,
// and the hub routes TaskSend/TaskRecv events into that job's event
// log. Every event is also forwarded to the wrapped sink (typically the
// spans exporter), so one fabric sink slot serves both consumers.
//
// Create the hub first, build the fabric with
// taskfabric.WithEventSink(hub), then hand it to the server via
// WithProgress.
type ProgressHub struct {
	next taskfabric.EventSink // optional tee target; may be nil

	mu     sync.Mutex
	byTask map[uint64]*jobRec
}

// NewProgressHub builds a hub teeing into next (nil for none).
func NewProgressHub(next taskfabric.EventSink) *ProgressHub {
	return &ProgressHub{next: next, byTask: make(map[uint64]*jobRec)}
}

func (h *ProgressHub) bind(task uint64, j *jobRec) {
	h.mu.Lock()
	h.byTask[task] = j
	h.mu.Unlock()
}

func (h *ProgressHub) unbind(task uint64) {
	h.mu.Lock()
	delete(h.byTask, task)
	h.mu.Unlock()
}

func (h *ProgressHub) jobOf(task int) *jobRec {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.byTask[uint64(task)]
}

// TaskSend implements taskfabric.EventSink.
func (h *ProgressHub) TaskSend(domain, task int) {
	if j := h.jobOf(task); j != nil {
		j.progress(JobEvent{Type: EventTaskSent, Chunk: -1, Domain: domainOf(domain)})
	}
	if h.next != nil {
		h.next.TaskSend(domain, task)
	}
}

// TaskRecv implements taskfabric.EventSink.
func (h *ProgressHub) TaskRecv(domain, task int) {
	if j := h.jobOf(task); j != nil {
		j.progress(JobEvent{Type: EventTaskDone, Chunk: -1, Domain: domainOf(domain)})
	}
	if h.next != nil {
		h.next.TaskRecv(domain, task)
	}
}

// TaskSteal implements taskfabric.EventSink. Steal grants carry domain
// ids, not task ids, so they are forwarded but not attributed.
func (h *ProgressHub) TaskSteal(thief, victim int) {
	if h.next != nil {
		h.next.TaskSteal(thief, victim)
	}
}

// PeerSteal implements taskfabric.PeerStealSink, forwarding when the
// wrapped sink also does.
func (h *ProgressHub) PeerSteal(thief, victim int) {
	if ps, ok := h.next.(taskfabric.PeerStealSink); ok {
		ps.PeerSteal(thief, victim)
	}
}

var (
	_ taskfabric.EventSink     = (*ProgressHub)(nil)
	_ taskfabric.PeerStealSink = (*ProgressHub)(nil)
)

// jobObserver feeds one parallel_for region's chunk completions into
// its job's event log.
type jobObserver struct {
	j     *jobRec
	total int
}

// RegionStart implements offload.RegionObserver.
func (o *jobObserver) RegionStart(chunks int) { o.total = chunks }

// ChunkDone implements offload.RegionObserver.
func (o *jobObserver) ChunkDone(chunk, domain int) {
	o.j.progress(JobEvent{Type: EventChunk, Chunk: chunk, Total: o.total, Domain: domainOf(domain)})
}

// ---------------------------------------------------------------------------
// GET /v1/jobs/{id}/events

// apiJobEvents streams one job's progress log as NDJSON from the
// beginning, following live until the job settles (the settled event is
// the last line), the client disconnects, or the server stops. For an
// already-settled job the retained log is dumped and the stream ends.
func (s *Server) apiJobEvents(w http.ResponseWriter, r *http.Request, t *tenantState) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil || j.tenant != t {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, done, pulse := j.events.since(next)
		for _, e := range evs {
			if enc.Encode(e) != nil {
				return
			}
			next = e.Seq + 1
		}
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-pulse:
		case <-r.Context().Done():
			return
		case <-s.stopCh:
			return
		}
	}
}
