package jobservice

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"openmpmca/internal/offload"
	"openmpmca/internal/spans"
	"openmpmca/internal/taskfabric"
)

// newProgressEnv boots a service with a ProgressHub wired as the
// fabric's event sink (teeing into a spans exporter, the production
// shape), so fabric task events are attributed to jobs.
func newProgressEnv(t *testing.T) (*testEnv, *spans.Exporter) {
	t.Helper()
	x := spans.NewExporter(0)
	hub := NewProgressHub(x)
	jobs := taskfabric.NewRegistry()
	if err := RegisterBuiltinJobs(jobs); err != nil {
		t.Fatal(err)
	}
	fab, err := taskfabric.NewFabric(jobs,
		taskfabric.WithDomains(2),
		taskfabric.WithHeartbeat(10*time.Millisecond),
		taskfabric.WithEventSink(hub),
	)
	if err != nil {
		t.Fatal(err)
	}
	kernels := offload.NewRegistry()
	if err := RegisterBuiltinKernels(kernels); err != nil {
		fab.Close()
		t.Fatal(err)
	}
	off, err := offload.New(kernels,
		offload.WithDomains(2),
		offload.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		fab.Close()
		t.Fatal(err)
	}
	srv, err := New(fab, jobs,
		WithTenants(testTenants...),
		WithOffloader(off, kernels),
		WithProgress(hub),
		WithSpans(x),
	)
	if err != nil {
		off.Close()
		fab.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	env := &testEnv{fab: fab, off: off, srv: srv, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		off.Close()
		fab.Close()
	})
	return env, x
}

// readEvents follows one job's NDJSON event stream to its settled
// terminator.
func readEvents(t *testing.T, env *testEnv, key, id string) []JobEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, env.ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", key)
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream: status %d", resp.StatusCode)
	}
	var out []JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e JobEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, e)
		if e.Type == EventSettled {
			return out
		}
	}
	t.Fatalf("stream ended without a settled event: %+v", out)
	return nil
}

// TestJobEventsParallelFor follows a parallel_for job's event stream
// and checks the full lifecycle lands in order: accepted, dispatched,
// per-chunk completions with the region's chunk count, settled.
func TestJobEventsParallelFor(t *testing.T) {
	env, _ := newProgressEnv(t)
	v := env.submit(t, "key-alice", submitRequest{Job: KernelVecSum, Kind: KindParallelFor, N: 4000})
	evs := readEvents(t, env, "key-alice", v.ID)
	var accepted, dispatched, chunks int
	total := -1
	lastSeq := -1
	for _, e := range evs {
		if e.Seq <= lastSeq {
			t.Fatalf("event seq not increasing: %+v", evs)
		}
		lastSeq = e.Seq
		switch e.Type {
		case EventAccepted:
			accepted++
		case EventDispatched:
			dispatched++
		case EventChunk:
			chunks++
			total = e.Total
			if e.Domain == nil {
				t.Fatalf("chunk event without a domain: %+v", e)
			}
		}
	}
	if accepted != 1 || dispatched != 1 {
		t.Fatalf("lifecycle events: accepted=%d dispatched=%d (%+v)", accepted, dispatched, evs)
	}
	if chunks == 0 || chunks != total {
		t.Fatalf("saw %d chunk events, region advertised %d", chunks, total)
	}
	if last := evs[len(evs)-1]; last.Status != StatusSucceeded {
		t.Fatalf("settled status %q", last.Status)
	}
}

// TestJobEventsTask checks fabric-task attribution through the
// ProgressHub: a task job's stream carries task_sent/task_done with the
// executing domain, and the teed spans exporter still sees the events.
func TestJobEventsTask(t *testing.T) {
	env, x := newProgressEnv(t)
	v := env.submit(t, "key-alice", submitRequest{Job: JobSum, Arg: I64Pair(0, 100)})
	evs := readEvents(t, env, "key-alice", v.ID)
	var sent, recvd int
	for _, e := range evs {
		switch e.Type {
		case EventTaskSent:
			sent++
		case EventTaskDone:
			recvd++
			if e.Domain == nil {
				t.Fatalf("task_done without a domain: %+v", e)
			}
		}
	}
	if sent == 0 || recvd == 0 {
		t.Fatalf("task attribution missing: sent=%d done=%d (%+v)", sent, recvd, evs)
	}
	// The tee must not starve the spans exporter.
	if st := x.Stats(); st.Completed == 0 {
		t.Fatalf("spans exporter saw nothing through the hub: %+v", st)
	}
}

// TestGroupStreamProgress checks the group stream interleaves member
// progress lines before the settled-member and drained events.
func TestGroupStreamProgress(t *testing.T) {
	env, _ := newProgressEnv(t)
	code, genv := env.do(t, http.MethodPost, "/v1/groups", "key-alice", nil)
	if code != http.StatusCreated {
		t.Fatalf("group create: %d", code)
	}
	var gv GroupView
	meta(t, genv, &gv)
	v := env.submit(t, "key-alice", submitRequest{
		Job: KernelVecSum, Kind: KindParallelFor, N: 4000, Group: gv.ID,
	})
	env.wait(t, "key-alice", v.ID)

	req, err := http.NewRequest(http.MethodGet, env.ts.URL+"/v1/groups/"+gv.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "key-alice")
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var progress, jobsSeen, drained int
	sawJob := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "progress":
			if sawJob {
				t.Fatal("progress line after the member settled event")
			}
			if ev.JobID != v.ID || ev.Event == nil {
				t.Fatalf("progress line malformed: %+v", ev)
			}
			progress++
		case "job":
			sawJob = true
			jobsSeen++
		case "drained":
			drained++
		}
		if drained > 0 {
			break
		}
	}
	if progress == 0 || jobsSeen != 1 || drained != 1 {
		t.Fatalf("stream shape: progress=%d jobs=%d drained=%d", progress, jobsSeen, drained)
	}
}
