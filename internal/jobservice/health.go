package jobservice

import (
	"net/http"

	"openmpmca/internal/oerrors"
	"openmpmca/internal/offload"
	"openmpmca/internal/taskfabric"
)

// Health statuses. The surface is deliberately three-valued: "ok" means
// every worker domain is live, "degraded" means the service is up but
// some domains are lost (work still completes — the fabric re-executes
// a dead domain's tasks on the host), "down" means the service is
// shutting down and refusing work.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthDown     = "down"
)

// HealthView is the GET /v1/health body: one unauthenticated,
// load-balancer-friendly verdict plus the evidence it was derived from
// — domain liveness, queue depths and the error-taxonomy counters.
type HealthView struct {
	Status      string `json:"status"` // ok | degraded | down
	DomainsLive int    `json:"domains_live"`
	DomainsLost int    `json:"domains_lost"`
	// Queued and Running are the service's admission-queue depth and
	// in-flight job count; Outstanding sums tasks dispatched to worker
	// domains whose results are still pending.
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	Outstanding int `json:"outstanding"`
	// Errors is the taxonomy counter snapshot; ByCategory gives the
	// error rate per failure plane without message parsing.
	Errors  oerrors.CountsSnapshot  `json:"errors"`
	Fabric  []taskfabric.DomainInfo `json:"fabric"`
	Offload []offload.DomainInfo    `json:"offload,omitempty"`
}

// Health assembles the service's liveness verdict.
func (s *Server) Health() HealthView {
	v := HealthView{
		Fabric: s.fab.DomainInfos(),
		Errors: oerrors.Counts(),
	}
	if s.cfg.off != nil {
		v.Offload = s.cfg.off.DomainInfos()
	}
	for _, d := range v.Fabric {
		if d.Live {
			v.DomainsLive++
		} else {
			v.DomainsLost++
		}
		v.Outstanding += d.Outstanding
	}
	for _, d := range v.Offload {
		if d.Live {
			v.DomainsLive++
		} else {
			v.DomainsLost++
		}
	}
	s.mu.Lock()
	for _, t := range s.order {
		v.Queued += len(t.queue)
		v.Running += t.inflight - len(t.queue)
	}
	s.mu.Unlock()
	switch {
	case s.closed.Load():
		v.Status = HealthDown
	case v.DomainsLost > 0:
		v.Status = HealthDegraded
	default:
		v.Status = HealthOK
	}
	return v
}

// apiHealth serves GET /v1/health. Like /v1/ready it is
// unauthenticated, so probes and load balancers need no tenant key; a
// down service answers 503 so TCP-level checks agree with the body.
func (s *Server) apiHealth(w http.ResponseWriter, _ *http.Request) {
	v := s.Health()
	code := http.StatusOK
	if v.Status == HealthDown {
		code = http.StatusServiceUnavailable
	}
	writeSync(w, code, v)
}

// apiSpans serves GET /v1/spans: the folded task/chunk/region lifetime
// spans of the exporter wired via WithSpans.
func (s *Server) apiSpans(w http.ResponseWriter, _ *http.Request, _ *tenantState) {
	if s.cfg.spans == nil {
		writeError(w, http.StatusNotFound, "no span exporter wired (jobservice.WithSpans)")
		return
	}
	writeSync(w, http.StatusOK, s.cfg.spans.Snapshot())
}
