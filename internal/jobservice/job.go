package jobservice

import (
	"sync"
	"time"
)

// Job kinds: a fabric task (irregular job via the MTAPI task fabric) or
// an offloaded parallel-for region (chunked across domains).
const (
	KindTask        = "task"
	KindParallelFor = "parallel_for"
)

// Job statuses, in lifecycle order.
const (
	StatusQueued    = "queued"    // admitted, waiting for a dispatch slot
	StatusRunning   = "running"   // handed to the fabric or offloader
	StatusSucceeded = "succeeded" // settled with a result
	StatusFailed    = "failed"    // settled with an error
	StatusCanceled  = "canceled"  // canceled before dispatch
)

// jobRec is the server's record of one submitted job.
type jobRec struct {
	id     string
	tenant *tenantState
	kind   string
	name   string
	arg    []byte
	n      int // parallel_for iteration count
	group  *groupRec

	events *eventLog     // per-job progress log (see events.go)
	done   chan struct{} // closed exactly once when the job settles

	// replayed marks a job re-enqueued by durable-store recovery after a
	// restart: it was accepted (or mid-flight) in a previous process
	// life and is being re-executed deterministically. Set before the
	// dispatcher starts, read-only after.
	replayed bool

	mu        sync.Mutex
	status    string
	result    []byte
	errMsg    string
	recovered bool
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// claim transitions queued -> running; the dispatcher calls it when
// popping the job so a concurrently canceled job is skipped instead of
// dispatched.
func (j *jobRec) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// cancelQueued transitions queued -> canceled and settles the job.
func (j *jobRec) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusCanceled
	j.finished = time.Now()
	close(j.done)
	j.events.add(JobEvent{Type: EventSettled, Chunk: -1, Status: StatusCanceled})
	return true
}

// settle records the terminal result and wakes every waiter.
func (j *jobRec) settle(result []byte, errMsg string, recovered bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusSucceeded || j.status == StatusFailed || j.status == StatusCanceled {
		return
	}
	if errMsg == "" {
		j.status = StatusSucceeded
	} else {
		j.status = StatusFailed
	}
	j.result = result
	j.errMsg = errMsg
	j.recovered = recovered
	j.finished = time.Now()
	close(j.done)
	j.events.add(JobEvent{Type: EventSettled, Chunk: -1, Status: j.status})
}

// JobView is the wire representation of a job; result bytes travel
// base64-encoded per encoding/json's []byte convention.
type JobView struct {
	ID          string     `json:"id"`
	Tenant      string     `json:"tenant"`
	Kind        string     `json:"kind"`
	Name        string     `json:"name"`
	Status      string     `json:"status"`
	Group       string     `json:"group,omitempty"`
	Result      []byte     `json:"result,omitempty"`
	Error       string     `json:"error,omitempty"`
	Recovered   bool       `json:"recovered,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

func (j *jobRec) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Tenant:      j.tenant.Name,
		Kind:        j.kind,
		Name:        j.name,
		Status:      j.status,
		Result:      j.result,
		Error:       j.errMsg,
		Recovered:   j.recovered,
		SubmittedAt: j.submitted,
	}
	if j.group != nil {
		v.Group = j.group.id
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// groupRec collects related jobs of one tenant for collective streaming:
// every settled member is delivered on the stream exactly once.
type groupRec struct {
	id     string
	tenant *tenantState

	mu       sync.Mutex
	members  int
	pending  int
	ready    []*jobRec       // settled, not yet streamed
	progress []groupProgress // member progress lines, not yet streamed (bounded)
	notify   chan struct{}   // cap 1: completion signal
	canceled bool
}

func (g *groupRec) addMember() {
	g.mu.Lock()
	g.members++
	g.pending++
	g.mu.Unlock()
}

// deliver hands a settled member to the stream queue.
func (g *groupRec) deliver(j *jobRec) {
	g.mu.Lock()
	g.pending--
	g.ready = append(g.ready, j)
	g.mu.Unlock()
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// GroupView is the wire representation of a group.
type GroupView struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Members  int    `json:"members"`
	Pending  int    `json:"pending"`
	Canceled bool   `json:"canceled,omitempty"`
}

func (g *groupRec) view() GroupView {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupView{
		ID:       g.id,
		Tenant:   g.tenant.Name,
		Members:  g.members,
		Pending:  g.pending,
		Canceled: g.canceled,
	}
}
