package jobservice

import (
	"net/http"
	"testing"
	"time"

	"openmpmca/internal/oerrors"
	"openmpmca/internal/spans"
)

func TestHealthSurface(t *testing.T) {
	env := newTestEnv(t)

	// Health is unauthenticated and "ok" on a fresh service.
	code, resp := env.do(t, http.MethodGet, "/v1/health", "", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/health = %d (%s)", code, resp.Error)
	}
	var hv HealthView
	meta(t, resp, &hv)
	if hv.Status != HealthOK {
		t.Errorf("status = %q, want %q", hv.Status, HealthOK)
	}
	if hv.DomainsLive == 0 || hv.DomainsLost != 0 {
		t.Errorf("domains live/lost = %d/%d", hv.DomainsLive, hv.DomainsLost)
	}
	if len(hv.Fabric) == 0 || len(hv.Offload) == 0 {
		t.Errorf("per-domain detail missing: fabric=%d offload=%d", len(hv.Fabric), len(hv.Offload))
	}

	// Draining a domain degrades health; readmitting restores it. The
	// drain rides the real loss path — the health monitor declares the
	// domain lost after heartbeat silence — so degradation is not
	// instantaneous.
	if code, resp := env.do(t, http.MethodPost, "/v1/domains/1/drain", "key-alice", nil); code != http.StatusOK {
		t.Fatalf("drain = %d (%s)", code, resp.Error)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, resp = env.do(t, http.MethodGet, "/v1/health", "", nil)
		meta(t, resp, &hv)
		if hv.Status == HealthDegraded && hv.DomainsLost == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after drain: status=%q lost=%d, want degraded/1", hv.Status, hv.DomainsLost)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, resp := env.do(t, http.MethodPost, "/v1/domains/1/readmit", "key-alice", nil); code != http.StatusOK {
		t.Fatalf("readmit = %d (%s)", code, resp.Error)
	}
	_, resp = env.do(t, http.MethodGet, "/v1/health", "", nil)
	meta(t, resp, &hv)
	if hv.Status != HealthOK {
		t.Errorf("after readmit: status = %q, want ok", hv.Status)
	}

	// Closed service: 503 / down.
	if err := env.srv.Close(); err != nil {
		t.Fatal(err)
	}
	code, resp = env.do(t, http.MethodGet, "/v1/health", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("closed health = %d, want 503", code)
	}
	meta(t, resp, &hv)
	if hv.Status != HealthDown {
		t.Errorf("closed status = %q, want down", hv.Status)
	}
}

func TestSpansEndpoint(t *testing.T) {
	// Without WithSpans the endpoint 404s.
	bare := newTestEnv(t)
	if code, _ := bare.do(t, http.MethodGet, "/v1/spans", "key-bob", nil); code != http.StatusNotFound {
		t.Errorf("unwired /v1/spans = %d, want 404", code)
	}

	sp := spans.NewExporter(256)
	env := newTestEnv(t, WithSpans(sp))
	// The exporter only sees events it is wired into as a sink; feed it
	// directly — the wiring contract (fabric/offload sinks) is covered by
	// the span package's own tests and cmd/ompmca-serve.
	sp.TaskSend(1, 7)
	sp.TaskRecv(1, 7)

	if code, _ := env.do(t, http.MethodGet, "/v1/spans", "", nil); code != http.StatusUnauthorized {
		t.Errorf("unauthenticated /v1/spans = %d, want 401", code)
	}
	code, resp := env.do(t, http.MethodGet, "/v1/spans", "key-bob", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/spans = %d (%s)", code, resp.Error)
	}
	var view spans.View
	meta(t, resp, &view)
	if view.Stats.Completed != 1 || len(view.Spans) != 1 {
		t.Errorf("view = %+v, want one completed span", view.Stats)
	}
}

func TestStatsCarriesErrorTaxonomy(t *testing.T) {
	env := newTestEnv(t)
	// Blow carol's quota of 2: the refusals must show up as
	// Admission/quota growth in /v1/stats.
	before := oerrors.Counts()
	rejected := 0
	for i := 0; i < 6; i++ {
		code, _ := env.do(t, http.MethodPost, "/v1/jobs", "key-carol",
			submitRequest{Job: JobSpin, Arg: U64(uint64(50_000_000))})
		if code == http.StatusTooManyRequests {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("quota never tripped")
	}
	code, resp := env.do(t, http.MethodGet, "/v1/stats", "key-alice", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d (%s)", code, resp.Error)
	}
	var snap Snapshot
	meta(t, resp, &snap)
	if snap.Errors == nil {
		t.Fatal("stats missing errors section")
	}
	delta := snap.Errors.Delta(before)
	if got := delta.ByCode[oerrors.CodeQuota]; got < uint64(rejected) {
		t.Errorf("quota code growth = %d, want >= %d", got, rejected)
	}
	if got := delta.ByCategory[string(oerrors.Admission)]; got < uint64(rejected) {
		t.Errorf("admission category growth = %d, want >= %d", got, rejected)
	}
}
