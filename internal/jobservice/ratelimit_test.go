package jobservice

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRateLimit429 drives a tenant with a 2-token bucket: the burst is
// admitted, the next submission bounces with 429 and a computed
// Retry-After, and the refusals land in the rate-limited counters
// (distinct from the quota's rejected counter).
func TestRateLimit429(t *testing.T) {
	env := newTestEnv(t, WithTenants(Tenant{
		Name: "dave", Key: "key-dave", Quota: 64,
		Priority: PriorityNormal, Rate: 0.5, Burst: 2,
	}))
	for i := 0; i < 2; i++ {
		env.submit(t, "key-dave", submitRequest{Job: JobEcho, Arg: []byte{byte(i)}})
	}
	body, _ := json.Marshal(submitRequest{Job: JobEcho, Arg: []byte("over")})
	req, err := http.NewRequest(http.MethodPost, env.ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "key-dave")
	resp, err := env.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive deficit hint", ra)
	}
	st := env.srv.ServiceStats()
	if st.RateLimited != 1 {
		t.Fatalf("service rate_limited = %d, want 1", st.RateLimited)
	}
	if st.Rejected != 0 {
		t.Fatalf("rate refusal leaked into the quota counter: rejected = %d", st.Rejected)
	}
	var dave *TenantStats
	for i := range st.Tenants {
		if st.Tenants[i].Name == "dave" {
			dave = &st.Tenants[i]
		}
	}
	if dave == nil || dave.RateLimited != 1 || dave.Rate != 0.5 || dave.Burst != 2 {
		t.Fatalf("tenant stats = %+v", dave)
	}
}

// TestRateLimitRefills waits out the deficit and checks a token
// accrues: the bucket limits rate, not count.
func TestRateLimitRefills(t *testing.T) {
	env := newTestEnv(t, WithTenants(Tenant{
		Name: "erin", Key: "key-erin", Quota: 64,
		Priority: PriorityNormal, Rate: 50, Burst: 1,
	}))
	env.submit(t, "key-erin", submitRequest{Job: JobEcho, Arg: []byte("a")})
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := env.do(t, http.MethodPost, "/v1/jobs", "key-erin",
			submitRequest{Job: JobEcho, Arg: []byte("b")})
		if code == http.StatusAccepted {
			return
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled at 50 tokens/sec")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestParseTenantRate covers the spec grammar's optional fields.
func TestParseTenantRate(t *testing.T) {
	tn, err := ParseTenant("x:k:8:high:admin:rate=2.5/10")
	if err != nil {
		t.Fatal(err)
	}
	if !tn.Admin || tn.Rate != 2.5 || tn.Burst != 10 {
		t.Fatalf("parsed %+v", tn)
	}
	tn, err = ParseTenant("y:k:8:low:rate=1/1")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Admin || tn.Rate != 1 || tn.Burst != 1 {
		t.Fatalf("parsed %+v", tn)
	}
	for _, bad := range []string{
		"x:k:8:high:rate=",        // malformed rate
		"x:k:8:high:rate=2",       // missing burst
		"x:k:8:high:rate=2/0",     // zero burst with rate
		"x:k:8:high:turbo",        // unknown field
		"x:k:8:high:rate=-1/4",    // negative rate
		"x:k:8:high:admin:admin:", // too many fields
	} {
		if _, err := ParseTenant(bad); err == nil {
			t.Fatalf("ParseTenant(%q) accepted", bad)
		}
	}
}

// TestLoadTenantsFile covers the keys-file loader: happy path,
// permissive-mode refusal, and parse-error attribution.
func TestLoadTenantsFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "tenants")
	content := "# demo tenants\nalice:key-a:64:high:admin\n\nbob:key-b:8:normal:rate=5/10\n"
	if err := os.WriteFile(good, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	ts, err := LoadTenantsFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || !ts[0].Admin || ts[1].Rate != 5 || ts[1].Burst != 10 {
		t.Fatalf("loaded %+v", ts)
	}

	loose := filepath.Join(dir, "loose")
	if err := os.WriteFile(loose, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenantsFile(loose); err == nil {
		t.Fatal("world-readable tenants file accepted")
	}

	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not-a-spec\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenantsFile(bad); err == nil {
		t.Fatal("malformed tenants file accepted")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenantsFile(empty); err == nil {
		t.Fatal("empty tenants file accepted")
	}
}
