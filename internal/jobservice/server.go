// Package jobservice turns the one-shot fabric and offload demos into a
// long-running, multi-tenant job service: an HTTP/JSON front end that
// wraps a taskfabric.Fabric (irregular named jobs) and optionally an
// offload.Offloader (chunked parallel-for regions) behind a small REST
// surface, with per-tenant admission control on top.
//
// The API shape follows the incus-osd REST handlers: every response is a
// JSON envelope ({"type":"sync",...} or {"type":"error",...}), endpoints
// live under /v1, and mutations are POSTs. Tenants authenticate with an
// API key (X-API-Key or Authorization: Bearer); each tenant carries a
// quota — the maximum jobs it may have in flight — and a priority class.
// Submissions over quota are refused with HTTP 429 and a Retry-After
// header, mirroring how the runtime itself surfaces saturation
// (WithMaxConcurrentRegions / ErrSaturated) one layer down. Admitted
// jobs enter per-tenant FIFOs; a single dispatcher drains them through a
// bounded dispatch window using smooth weighted round-robin across
// tenants, so a burst-heavy tenant cannot starve the others no matter
// how deep its queue grows.
//
//	POST /v1/jobs                  submit a named job
//	GET  /v1/jobs/{id}?wait=2s     poll or long-poll a result
//	POST /v1/groups                create a completion group
//	GET  /v1/groups/{id}/stream    NDJSON stream of member completions
//	POST /v1/groups/{id}/cancel    cancel the group's queued members
//	GET  /v1/domains               worker domains: health, occupancy, EWMA
//	POST /v1/domains/{id}/drain    take a domain out of service (loss path)
//	POST /v1/domains/{id}/readmit  bring a drained domain back
//	GET  /v1/stats                 unified Snapshot
package jobservice

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/durable"
	"openmpmca/internal/oerrors"
	"openmpmca/internal/offload"
	"openmpmca/internal/spans"
	"openmpmca/internal/taskfabric"
)

// ErrClosed is returned by operations on a closed Server. Classified
// Cancel/service_closed.
var ErrClosed = oerrors.Sentinel(oerrors.Cancel, oerrors.CodeServiceClosed,
	"jobservice: server closed")

// config collects the tunables behind the Options.
type config struct {
	off        *offload.Offloader
	kernels    *offload.Registry
	tenants    []Tenant
	dispatch   int
	retryAfter time.Duration
	spans      *spans.Exporter
	store      *durable.Store
	ownStore   bool // store opened by WithStateDir: Close closes it
	hub        *ProgressHub
}

// Option configures New.
type Option func(*config) error

func defaultConfig() config {
	return config{
		dispatch:   64,
		retryAfter: time.Second,
	}
}

// WithOffloader wires an offloader (and its kernel registry) into the
// service so tenants can submit kind=parallel_for jobs.
func WithOffloader(o *offload.Offloader, kernels *offload.Registry) Option {
	return func(c *config) error {
		if o == nil || kernels == nil {
			return fmt.Errorf("%w: jobservice: WithOffloader(nil)", core.ErrInvalidOption)
		}
		c.off = o
		c.kernels = kernels
		return nil
	}
}

// WithTenants registers the service's tenants (at least one is
// required).
func WithTenants(ts ...Tenant) Option {
	return func(c *config) error {
		for _, t := range ts {
			if err := t.validate(); err != nil {
				return err
			}
		}
		c.tenants = append(c.tenants, ts...)
		return nil
	}
}

// WithDispatchWindow bounds how many jobs may be inside the fabric and
// offloader at once (default 64); admitted jobs past the window wait in
// their tenant's queue.
func WithDispatchWindow(n int) Option {
	return func(c *config) error {
		if n < 1 || n > 4096 {
			return fmt.Errorf("%w: jobservice: WithDispatchWindow(%d): want 1..4096", core.ErrInvalidOption, n)
		}
		c.dispatch = n
		return nil
	}
}

// WithRetryAfter sets the Retry-After hint attached to 429 responses
// (default 1s; rounded up to whole seconds on the wire).
func WithRetryAfter(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: jobservice: WithRetryAfter(%v): want > 0", core.ErrInvalidOption, d)
		}
		c.retryAfter = d
		return nil
	}
}

// WithSpans serves a span exporter's folded task/chunk/region lifetimes
// at GET /v1/spans. The exporter should be the one wired into the
// fabric (and offloader) as their event sink; the service only reads
// it. Without this option /v1/spans answers 404.
func WithSpans(x *spans.Exporter) Option {
	return func(c *config) error {
		if x == nil {
			return fmt.Errorf("%w: jobservice: WithSpans(nil)", core.ErrInvalidOption)
		}
		c.spans = x
		return nil
	}
}

// serviceCounters are the server's monotonic counters.
type serviceCounters struct {
	accepted    atomic.Uint64
	rejected    atomic.Uint64
	rateLimited atomic.Uint64
	dispatched  atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	canceled    atomic.Uint64
	recovered   atomic.Uint64
	replayed    atomic.Uint64
}

// Server is the multi-tenant job service. It implements http.Handler;
// serve it with net/http and shut it down with Close.
type Server struct {
	fab     *taskfabric.Fabric
	jobsReg *taskfabric.Registry
	cfg     config
	mux     *http.ServeMux

	byKey  map[string]*tenantState
	byName map[string]*tenantState
	order  []*tenantState // registration order; WRR iterates it

	mu     sync.Mutex // guards queues, jobs, groups, WRR state
	jobs   map[string]*jobRec
	groups map[string]*groupRec

	jobSeq   atomic.Uint64
	groupSeq atomic.Uint64

	slots  chan struct{} // dispatch-window tokens
	kick   chan struct{} // cap 1: "queues may have work"
	stopCh chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	st serviceCounters
}

// New builds a job service over the given fabric and job registry. The
// registry must be the one the fabric was built with: the server
// validates submitted job names against it before admission.
func New(fab *taskfabric.Fabric, jobs *taskfabric.Registry, opts ...Option) (*Server, error) {
	if fab == nil || jobs == nil {
		return nil, fmt.Errorf("%w: jobservice: nil fabric or registry", core.ErrInvalidOption)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if len(cfg.tenants) == 0 {
		return nil, fmt.Errorf("%w: jobservice: no tenants configured", core.ErrInvalidOption)
	}
	s := &Server{
		fab:     fab,
		jobsReg: jobs,
		cfg:     cfg,
		byKey:   make(map[string]*tenantState),
		byName:  make(map[string]*tenantState),
		jobs:    make(map[string]*jobRec),
		groups:  make(map[string]*groupRec),
		slots:   make(chan struct{}, cfg.dispatch),
		kick:    make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	for _, t := range cfg.tenants {
		if _, dup := s.byName[t.Name]; dup {
			return nil, fmt.Errorf("%w: jobservice: duplicate tenant %q", core.ErrInvalidOption, t.Name)
		}
		if _, dup := s.byKey[t.Key]; dup {
			return nil, fmt.Errorf("%w: jobservice: duplicate API key (tenant %q)", core.ErrInvalidOption, t.Name)
		}
		ts := &tenantState{Tenant: t, weight: t.Priority.Weight()}
		s.byName[t.Name] = ts
		s.byKey[t.Key] = ts
		s.order = append(s.order, ts)
	}
	for i := 0; i < cfg.dispatch; i++ {
		s.slots <- struct{}{}
	}
	if cfg.store != nil {
		s.recoverFromStore()
	}
	s.routes()
	s.wg.Add(1)
	go s.dispatcher()
	s.kickDispatcher() // recovered queues may already hold work
	return s, nil
}

// Close stops the dispatcher, settles every queued job with ErrClosed
// and waits for in-flight jobs to drain. It does not close the fabric or
// offloader — the caller owns those. Idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stopCh)
	s.mu.Lock()
	for _, t := range s.order {
		for _, j := range t.queue {
			if j.cancelQueued() {
				t.inflight--
				s.st.canceled.Add(1)
				s.journalBestEffort(settleEntry(j))
				if j.group != nil {
					defer j.group.deliver(j)
				}
			}
		}
		t.queue = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.cfg.ownStore {
		return s.cfg.store.Close()
	}
	return nil
}

// ServeHTTP implements http.Handler. The mux's own plain-text 404/405
// responses are rewrapped into the JSON error envelope so every byte the
// service emits is envelope-shaped.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&envelopeWriter{rw: w}, r)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// envelopeWriter intercepts non-JSON 404/405 status writes (http.ServeMux
// defaults) and substitutes the JSON error envelope. Handlers' own
// responses set Content-Type: application/json first and pass through
// untouched.
type envelopeWriter struct {
	rw       http.ResponseWriter
	suppress bool // original body dropped; envelope already written
}

func (w *envelopeWriter) Header() http.Header { return w.rw.Header() }

func (w *envelopeWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.rw.Header().Get("Content-Type"), "application/json") {
		w.suppress = true
		w.rw.Header().Del("Content-Type")
		w.rw.Header().Del("X-Content-Type-Options")
		writeError(w.rw, code, "%s", strings.ToLower(http.StatusText(code)))
		return
	}
	w.rw.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.suppress {
		return len(b), nil
	}
	return w.rw.Write(b)
}

// Flush forwards to the underlying writer so NDJSON streaming works.
func (w *envelopeWriter) Flush() {
	if f, ok := w.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// ---------------------------------------------------------------------------
// Response envelope (incus-osd style).

type apiResponse struct {
	Type       string `json:"type"` // "sync" | "error"
	Status     string `json:"status,omitempty"`
	StatusCode int    `json:"status_code,omitempty"`
	Metadata   any    `json:"metadata,omitempty"`
	Error      string `json:"error,omitempty"`
	ErrorCode  int    `json:"error_code,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeSync(w http.ResponseWriter, code int, metadata any) {
	writeJSON(w, code, apiResponse{Type: "sync", Status: http.StatusText(code), StatusCode: code, Metadata: metadata})
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiResponse{Type: "error", Error: fmt.Sprintf(format, args...), ErrorCode: code})
}

// ---------------------------------------------------------------------------
// Routing and auth.

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1", s.apiIndex)
	s.mux.HandleFunc("GET /v1/{$}", s.apiIndex)
	s.mux.HandleFunc("GET /v1/ready", s.apiReady)
	s.mux.HandleFunc("GET /v1/health", s.apiHealth)
	s.mux.HandleFunc("POST /v1/jobs", s.auth(s.apiJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.auth(s.apiJobList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.auth(s.apiJobGet))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.auth(s.apiJobEvents))
	s.mux.HandleFunc("POST /v1/groups", s.auth(s.apiGroupCreate))
	s.mux.HandleFunc("GET /v1/groups/{id}", s.auth(s.apiGroupGet))
	s.mux.HandleFunc("GET /v1/groups/{id}/stream", s.auth(s.apiGroupStream))
	s.mux.HandleFunc("POST /v1/groups/{id}/cancel", s.auth(s.apiGroupCancel))
	s.mux.HandleFunc("GET /v1/domains", s.auth(s.apiDomains))
	s.mux.HandleFunc("POST /v1/domains/{id}/drain", s.auth(s.admin(s.apiDomainDrain)))
	s.mux.HandleFunc("POST /v1/domains/{id}/readmit", s.auth(s.admin(s.apiDomainReadmit)))
	s.mux.HandleFunc("GET /v1/stats", s.auth(s.apiStats))
	s.mux.HandleFunc("GET /v1/spans", s.auth(s.apiSpans))
}

type authedHandler func(w http.ResponseWriter, r *http.Request, t *tenantState)

// tenantOf resolves the caller's tenant from X-API-Key or a bearer
// token.
func (s *Server) tenantOf(r *http.Request) *tenantState {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
			key = strings.TrimPrefix(h, "Bearer ")
		}
	}
	if key == "" {
		return nil
	}
	return s.byKey[key]
}

func (s *Server) auth(h authedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := s.tenantOf(r)
		if t == nil {
			writeError(w, http.StatusUnauthorized, "missing or unknown API key")
			return
		}
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, "service shutting down")
			return
		}
		h(w, r, t)
	}
}

func (s *Server) admin(h authedHandler) authedHandler {
	return func(w http.ResponseWriter, r *http.Request, t *tenantState) {
		if !t.Admin {
			writeError(w, http.StatusForbidden, "tenant %q is not an admin", t.Name)
			return
		}
		h(w, r, t)
	}
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) apiIndex(w http.ResponseWriter, _ *http.Request) {
	writeSync(w, http.StatusOK, []string{
		"/v1/domains",
		"/v1/groups",
		"/v1/health",
		"/v1/jobs",
		"/v1/ready",
		"/v1/spans",
		"/v1/stats",
	})
}

func (s *Server) apiReady(w http.ResponseWriter, _ *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	writeSync(w, http.StatusOK, map[string]any{
		"domains": s.fab.Domains(),
		"tenants": len(s.order),
	})
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Job   string `json:"job"`             // registered job (kind=task) or kernel (kind=parallel_for) name
	Kind  string `json:"kind,omitempty"`  // default "task"
	Arg   []byte `json:"arg,omitempty"`   // opaque argument, base64 in JSON
	N     int    `json:"n,omitempty"`     // parallel_for iteration count
	Group string `json:"group,omitempty"` // optional group membership
}

func (s *Server) apiJobSubmit(w http.ResponseWriter, r *http.Request, t *tenantState) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Kind == "" {
		req.Kind = KindTask
	}
	switch req.Kind {
	case KindTask:
		if _, ok := s.jobsReg.Lookup(req.Job); !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", req.Job)
			return
		}
	case KindParallelFor:
		if s.cfg.off == nil {
			writeError(w, http.StatusBadRequest, "no offloader wired: kind %q unavailable", req.Kind)
			return
		}
		if _, ok := s.cfg.kernels.Lookup(req.Job); !ok {
			writeError(w, http.StatusNotFound, "unknown kernel %q", req.Job)
			return
		}
		if req.N < 1 {
			writeError(w, http.StatusBadRequest, "kind %q needs n >= 1, got %d", req.Kind, req.N)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown kind %q (want %q or %q)", req.Kind, KindTask, KindParallelFor)
		return
	}

	var g *groupRec
	s.mu.Lock()
	if req.Group != "" {
		g = s.groups[req.Group]
		if g == nil || g.tenant != t {
			s.mu.Unlock()
			writeError(w, http.StatusNotFound, "unknown group %q", req.Group)
			return
		}
	}
	// Per-tenant admission, two gates. The token bucket bounds the
	// submission *rate* (tokens/sec with a burst allowance), the quota
	// bounds jobs *in flight*. Both refuse with HTTP 429; the bucket's
	// Retry-After is computed from the deficit, the quota's is the
	// configured hint.
	if ok, wait := t.takeToken(time.Now()); !ok {
		t.rateLimited.Add(1)
		s.st.rateLimited.Add(1)
		s.mu.Unlock()
		_ = oerrors.New(oerrors.Admission, oerrors.CodeRateLimited,
			"jobservice: tenant over rate")
		secs := int((wait + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "tenant %q over rate (%g/s, burst %d)", t.Name, t.Rate, t.Burst)
		return
	}
	// Saturation surfaces exactly like the runtime's ErrSaturated —
	// backpressure, retry later — but as HTTP 429.
	if t.inflight >= t.Quota {
		t.rejected.Add(1)
		s.st.rejected.Add(1)
		s.mu.Unlock()
		// Counted in the taxonomy even though the refusal surfaces as
		// HTTP 429, not a Go error: New records one Admission/quota.
		_ = oerrors.New(oerrors.Admission, oerrors.CodeQuota,
			"jobservice: tenant over quota")
		secs := int((s.cfg.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "tenant %q over quota (%d jobs in flight)", t.Name, t.Quota)
		return
	}
	j := &jobRec{
		id:        fmt.Sprintf("j-%d", s.jobSeq.Add(1)),
		tenant:    t,
		kind:      req.Kind,
		name:      req.Job,
		arg:       req.Arg,
		n:         req.N,
		group:     g,
		events:    newEventLog(),
		done:      make(chan struct{}),
		status:    StatusQueued,
		submitted: time.Now(),
	}
	t.inflight++
	t.jobs = append(t.jobs, j.id)
	s.jobs[j.id] = j
	if g != nil {
		g.addMember()
	}
	s.mu.Unlock()
	// Durability gate: the accept record — payload and all — must be on
	// disk before the 202 leaves, so an acknowledged job survives any
	// crash. The job is not queued for dispatch until the record is
	// durable.
	if err := s.journal(durable.Entry{
		Op: durable.OpAccept, ID: j.id, At: j.submitted.UnixNano(),
		Tenant: t.Name, Kind: j.kind, Name: j.name, Arg: j.arg, N: j.n, Group: req.Group,
	}); err != nil {
		s.mu.Lock()
		t.inflight--
		delete(s.jobs, j.id)
		for i := len(t.jobs) - 1; i >= 0; i-- {
			if t.jobs[i] == j.id {
				t.jobs = append(t.jobs[:i], t.jobs[i+1:]...)
				break
			}
		}
		if g != nil {
			g.mu.Lock()
			g.members--
			g.pending--
			g.mu.Unlock()
		}
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "state store: %v", err)
		return
	}
	s.mu.Lock()
	t.queue = append(t.queue, j)
	s.mu.Unlock()
	t.accepted.Add(1)
	s.st.accepted.Add(1)
	j.progress(JobEvent{Type: EventAccepted, Chunk: -1})
	s.kickDispatcher()
	writeSync(w, http.StatusAccepted, j.view())
}

func (s *Server) apiJobList(w http.ResponseWriter, _ *http.Request, t *tenantState) {
	s.mu.Lock()
	ids := append([]string(nil), t.jobs...)
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			views = append(views, j.view())
		}
	}
	s.mu.Unlock()
	writeSync(w, http.StatusOK, views)
}

func (s *Server) apiJobGet(w http.ResponseWriter, r *http.Request, t *tenantState) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil || j.tenant != t {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait %q: %v", waitStr, err)
			return
		}
		// Long-poll: return early when the job settles; on timeout the
		// current (possibly still running) view is returned.
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
		case <-r.Context().Done():
		case <-s.stopCh:
		}
	}
	writeSync(w, http.StatusOK, j.view())
}

func (s *Server) apiGroupCreate(w http.ResponseWriter, _ *http.Request, t *tenantState) {
	g := &groupRec{
		id:     fmt.Sprintf("g-%d", s.groupSeq.Add(1)),
		tenant: t,
		notify: make(chan struct{}, 1),
	}
	// Durable before visible, like job acceptance: members will
	// reference the group across restarts.
	if err := s.journal(durable.Entry{Op: durable.OpGroup, ID: g.id, Tenant: t.Name}); err != nil {
		writeError(w, http.StatusInternalServerError, "state store: %v", err)
		return
	}
	s.mu.Lock()
	s.groups[g.id] = g
	s.mu.Unlock()
	writeSync(w, http.StatusCreated, g.view())
}

func (s *Server) groupOf(r *http.Request, t *tenantState) *groupRec {
	s.mu.Lock()
	g := s.groups[r.PathValue("id")]
	s.mu.Unlock()
	if g == nil || g.tenant != t {
		return nil
	}
	return g
}

func (s *Server) apiGroupGet(w http.ResponseWriter, r *http.Request, t *tenantState) {
	g := s.groupOf(r, t)
	if g == nil {
		writeError(w, http.StatusNotFound, "unknown group %q", r.PathValue("id"))
		return
	}
	writeSync(w, http.StatusOK, g.view())
}

// streamEvent is one NDJSON line of a group stream.
type streamEvent struct {
	Type string   `json:"type"` // "job" | "progress" | "drained"
	Job  *JobView `json:"job,omitempty"`
	// Progress events: the member's id and its progress line.
	JobID string    `json:"job_id,omitempty"`
	Event *JobEvent `json:"event,omitempty"`
	Group GroupView `json:"group"`
}

// apiGroupStream streams the group as NDJSON: member progress lines
// (chunk/task completions) as they happen, each settled member exactly
// once across all streamers, and a final "drained" event once no
// member is outstanding or undelivered.
func (s *Server) apiGroupStream(w http.ResponseWriter, r *http.Request, t *tenantState) {
	g := s.groupOf(r, t)
	if g == nil {
		writeError(w, http.StatusNotFound, "unknown group %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		g.mu.Lock()
		if len(g.progress) > 0 {
			p := g.progress[0]
			g.progress = g.progress[1:]
			if len(g.progress) > 0 || len(g.ready) > 0 {
				select {
				case g.notify <- struct{}{}:
				default:
				}
			}
			g.mu.Unlock()
			e := p.event
			if enc.Encode(streamEvent{Type: "progress", JobID: p.jobID, Event: &e, Group: g.view()}) != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if len(g.ready) > 0 {
			j := g.ready[0]
			g.ready = g.ready[1:]
			if len(g.ready) > 0 {
				select {
				case g.notify <- struct{}{}:
				default:
				}
			}
			g.mu.Unlock()
			v := j.view()
			if enc.Encode(streamEvent{Type: "job", Job: &v, Group: g.view()}) != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		drained := g.pending == 0
		g.mu.Unlock()
		if drained {
			_ = enc.Encode(streamEvent{Type: "drained", Group: g.view()})
			return
		}
		select {
		case <-g.notify:
		case <-r.Context().Done():
			return
		case <-s.stopCh:
			return
		}
	}
}

// apiGroupCancel cancels the group's queued members; running members
// finish normally and still stream.
func (s *Server) apiGroupCancel(w http.ResponseWriter, r *http.Request, t *tenantState) {
	g := s.groupOf(r, t)
	if g == nil {
		writeError(w, http.StatusNotFound, "unknown group %q", r.PathValue("id"))
		return
	}
	g.mu.Lock()
	g.canceled = true
	g.mu.Unlock()
	var canceled []*jobRec
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.group != g {
			continue
		}
		if j.cancelQueued() {
			j.tenant.inflight--
			s.st.canceled.Add(1)
			canceled = append(canceled, j)
		}
	}
	s.mu.Unlock()
	for _, j := range canceled {
		s.journalBestEffort(settleEntry(j))
		g.deliver(j)
	}
	writeSync(w, http.StatusOK, g.view())
}

// DomainsView is the GET /v1/domains body: the fabric's worker fleet
// (always) and the offloader's (when wired).
type DomainsView struct {
	Fabric  []taskfabric.DomainInfo `json:"fabric"`
	Offload []offload.DomainInfo    `json:"offload,omitempty"`
}

func (s *Server) apiDomains(w http.ResponseWriter, _ *http.Request, _ *tenantState) {
	v := DomainsView{Fabric: s.fab.DomainInfos()}
	if s.cfg.off != nil {
		v.Offload = s.cfg.off.DomainInfos()
	}
	writeSync(w, http.StatusOK, v)
}

func (s *Server) domainID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("bad domain id %q", r.PathValue("id"))
	}
	return id, nil
}

// apiDomainDrain takes fabric domain {id} out of service through the
// loss path: the domain is killed, the health monitor declares it lost,
// and its in-flight tasks are reclaimed and re-executed — exactly the
// recovery machinery a real crash exercises. Accepted jobs keep their
// results.
func (s *Server) apiDomainDrain(w http.ResponseWriter, r *http.Request, _ *tenantState) {
	id, err := s.domainID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.fab.KillDomain(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeSync(w, http.StatusOK, map[string]any{"id": id, "state": "draining"})
}

// apiDomainReadmit brings a drained (lost) domain back into service.
func (s *Server) apiDomainReadmit(w http.ResponseWriter, r *http.Request, _ *tenantState) {
	id, err := s.domainID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.fab.ReadmitDomain(id); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeSync(w, http.StatusOK, map[string]any{"id": id, "state": "live"})
}

func (s *Server) apiStats(w http.ResponseWriter, _ *http.Request, _ *tenantState) {
	writeSync(w, http.StatusOK, s.Snapshot())
}

// Snapshot assembles the unified stats umbrella from every layer the
// service fronts.
func (s *Server) Snapshot() Snapshot {
	hostStats := s.fab.HostStats()
	fabStats := s.fab.Stats()
	svc := s.ServiceStats()
	snap := Snapshot{Core: &hostStats, Fabric: &fabStats, Service: &svc}
	if s.cfg.off != nil {
		offStats := s.cfg.off.Stats()
		snap.Offload = &offStats
	}
	errCounts := oerrors.Counts()
	snap.Errors = &errCounts
	snap.Durable = s.DurableStats()
	return snap
}

// ServiceStats snapshots the admission/dispatch counters and live queue
// state.
func (s *Server) ServiceStats() ServiceStats {
	st := ServiceStats{
		Accepted:    s.st.accepted.Load(),
		Rejected:    s.st.rejected.Load(),
		RateLimited: s.st.rateLimited.Load(),
		Dispatched:  s.st.dispatched.Load(),
		Completed:   s.st.completed.Load(),
		Failed:      s.st.failed.Load(),
		Canceled:    s.st.canceled.Load(),
		Recovered:   s.st.recovered.Load(),
		Replayed:    s.st.replayed.Load(),
	}
	s.mu.Lock()
	for _, t := range s.order {
		st.Queued += len(t.queue)
		st.Tenants = append(st.Tenants, TenantStats{
			Name:        t.Name,
			Priority:    t.Priority,
			Weight:      t.weight,
			Quota:       t.Quota,
			Rate:        t.Rate,
			Burst:       t.Burst,
			InFlight:    t.inflight,
			Queued:      len(t.queue),
			Accepted:    t.accepted.Load(),
			Rejected:    t.rejected.Load(),
			RateLimited: t.rateLimited.Load(),
			Completed:   t.completed.Load(),
		})
	}
	s.mu.Unlock()
	running := int(st.Dispatched) - int(st.Completed+st.Failed)
	if running < 0 {
		running = 0
	}
	st.Running = running
	return st
}

// ---------------------------------------------------------------------------
// Dispatcher.

func (s *Server) kickDispatcher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// dispatcher is the single goroutine draining tenant queues into the
// fabric/offloader: it acquires a dispatch-window slot, picks the next
// tenant by smooth weighted round-robin, pops that tenant's oldest
// uncanceled job and launches it. Slots are returned by the per-job
// completion goroutines, which kick the dispatcher awake again.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.kick:
		}
		for {
			select {
			case <-s.slots:
			default:
				// Window full; a completion will kick us.
				goto wait
			}
			j := s.nextJob()
			if j == nil {
				s.slots <- struct{}{}
				goto wait
			}
			s.launch(j)
		}
	wait:
	}
}

// nextJob pops the next dispatchable job under the fairness policy, or
// nil when every queue is empty.
func (s *Server) nextJob() *jobRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		t := s.nextTenant()
		if t == nil {
			return nil
		}
		for len(t.queue) > 0 {
			j := t.queue[0]
			t.queue = t.queue[1:]
			if j.claim() {
				return j
			}
			// Canceled while queued: already settled, just dropped.
		}
	}
}

// launch hands one claimed job to its executor and spawns the completion
// waiter that settles it and returns the dispatch slot.
func (s *Server) launch(j *jobRec) {
	s.st.dispatched.Add(1)
	// A lost dispatch record only costs a redundant deterministic
	// re-execution after a crash, so it does not gate the launch.
	s.journalBestEffort(durable.Entry{Op: durable.OpDispatch, ID: j.id})
	j.progress(JobEvent{Type: EventDispatched, Chunk: -1})
	finish := func(res []byte, err error) {
		s.complete(j, res, err)
		s.slots <- struct{}{}
		s.kickDispatcher()
	}
	if j.kind == KindParallelFor {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			res, err := s.cfg.off.ParallelForObserved(j.name, j.n, j.arg, &jobObserver{j: j})
			finish(res, err)
		}()
		return
	}
	h, err := s.fab.SubmitJob(j.name, j.arg)
	if err != nil {
		finish(nil, err)
		return
	}
	if s.cfg.hub != nil {
		s.cfg.hub.bind(h.ID(), j)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res, err := h.Wait(taskfabric.TimeoutInfinite)
		if s.cfg.hub != nil {
			s.cfg.hub.unbind(h.ID())
		}
		finish(res, err)
	}()
}

// complete settles a dispatched job. A result recovered from a lost
// domain (ErrDomainLost) is complete and correct — it settles as a
// success with the recovered flag set; so is a job re-executed after a
// restart (replayed flag).
func (s *Server) complete(j *jobRec, res []byte, err error) {
	recovered := errors.Is(err, offload.ErrDomainLost) || j.replayed
	errMsg := ""
	if err != nil && !errors.Is(err, offload.ErrDomainLost) {
		errMsg = err.Error()
	}
	j.settle(res, errMsg, recovered)
	s.journalBestEffort(settleEntry(j))
	s.mu.Lock()
	j.tenant.inflight--
	s.mu.Unlock()
	if errMsg == "" {
		j.tenant.completed.Add(1)
		s.st.completed.Add(1)
		if recovered {
			s.st.recovered.Add(1)
		}
	} else {
		s.st.failed.Add(1)
	}
	if j.group != nil {
		j.group.deliver(j)
	}
}
