package jobservice

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/offload"
	"openmpmca/internal/taskfabric"
)

// testEnv is one booted service: fabric + offloader + Server + httptest
// listener.
type testEnv struct {
	fab *taskfabric.Fabric
	off *offload.Offloader
	srv *Server
	ts  *httptest.Server
}

// Standard test tenants: alice is a high-priority admin, bob normal,
// carol low with a tight quota.
var testTenants = []Tenant{
	{Name: "alice", Key: "key-alice", Quota: 64, Priority: PriorityHigh, Admin: true},
	{Name: "bob", Key: "key-bob", Quota: 32, Priority: PriorityNormal},
	{Name: "carol", Key: "key-carol", Quota: 2, Priority: PriorityLow},
}

func newTestEnv(t *testing.T, opts ...Option) *testEnv {
	t.Helper()
	jobs := taskfabric.NewRegistry()
	if err := RegisterBuiltinJobs(jobs); err != nil {
		t.Fatal(err)
	}
	fab, err := taskfabric.NewFabric(jobs,
		taskfabric.WithDomains(3),
		taskfabric.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	kernels := offload.NewRegistry()
	if err := RegisterBuiltinKernels(kernels); err != nil {
		fab.Close()
		t.Fatal(err)
	}
	off, err := offload.New(kernels,
		offload.WithDomains(2),
		offload.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		fab.Close()
		t.Fatal(err)
	}
	opts = append([]Option{
		WithTenants(testTenants...),
		WithOffloader(off, kernels),
	}, opts...)
	srv, err := New(fab, jobs, opts...)
	if err != nil {
		off.Close()
		fab.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	env := &testEnv{fab: fab, off: off, srv: srv, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		off.Close()
		fab.Close()
	})
	return env
}

// do issues one request with the given API key and decodes the response
// envelope.
func (e *testEnv) do(t *testing.T, method, path, key string, body any) (int, apiResponse) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decode envelope: %v", method, path, err)
	}
	return resp.StatusCode, env
}

// meta re-marshals an envelope's metadata into out.
func meta(t *testing.T, env apiResponse, out any) {
	t.Helper()
	b, err := json.Marshal(env.Metadata)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
}

// submit posts one job and returns its accepted view.
func (e *testEnv) submit(t *testing.T, key string, req submitRequest) JobView {
	t.Helper()
	code, env := e.do(t, http.MethodPost, "/v1/jobs", key, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit %+v: status %d (%s)", req, code, env.Error)
	}
	var v JobView
	meta(t, env, &v)
	return v
}

// wait long-polls a job until it settles.
func (e *testEnv) wait(t *testing.T, key, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, env := e.do(t, http.MethodGet, "/v1/jobs/"+id+"?wait=2s", key, nil)
		if code != http.StatusOK {
			t.Fatalf("wait %s: status %d (%s)", id, code, env.Error)
		}
		var v JobView
		meta(t, env, &v)
		switch v.Status {
		case StatusSucceeded, StatusFailed, StatusCanceled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, v.Status)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	jobs := taskfabric.NewRegistry()
	fab, err := taskfabric.NewFabric(jobs, taskfabric.WithDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	ok := Tenant{Name: "t", Key: "k", Quota: 1, Priority: PriorityNormal}
	cases := []struct {
		name string
		run  func() error
	}{
		{"nil fabric", func() error { _, err := New(nil, jobs, WithTenants(ok)); return err }},
		{"nil registry", func() error { _, err := New(fab, nil, WithTenants(ok)); return err }},
		{"no tenants", func() error { _, err := New(fab, jobs); return err }},
		{"empty tenant name", func() error {
			_, err := New(fab, jobs, WithTenants(Tenant{Key: "k", Quota: 1, Priority: PriorityNormal}))
			return err
		}},
		{"empty key", func() error {
			_, err := New(fab, jobs, WithTenants(Tenant{Name: "t", Quota: 1, Priority: PriorityNormal}))
			return err
		}},
		{"zero quota", func() error {
			_, err := New(fab, jobs, WithTenants(Tenant{Name: "t", Key: "k", Priority: PriorityNormal}))
			return err
		}},
		{"bad priority", func() error {
			_, err := New(fab, jobs, WithTenants(Tenant{Name: "t", Key: "k", Quota: 1, Priority: "turbo"}))
			return err
		}},
		{"dup name", func() error {
			_, err := New(fab, jobs, WithTenants(ok, Tenant{Name: "t", Key: "k2", Quota: 1, Priority: PriorityLow}))
			return err
		}},
		{"dup key", func() error {
			_, err := New(fab, jobs, WithTenants(ok, Tenant{Name: "u", Key: "k", Quota: 1, Priority: PriorityLow}))
			return err
		}},
		{"window zero", func() error { _, err := New(fab, jobs, WithTenants(ok), WithDispatchWindow(0)); return err }},
		{"window huge", func() error { _, err := New(fab, jobs, WithTenants(ok), WithDispatchWindow(5000)); return err }},
		{"retry-after", func() error { _, err := New(fab, jobs, WithTenants(ok), WithRetryAfter(0)); return err }},
		{"nil offloader", func() error { _, err := New(fab, jobs, WithTenants(ok), WithOffloader(nil, nil)); return err }},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, core.ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", tc.name, err)
		}
	}
}

// TestEnvelopes pins the wire format: the sync envelope on /v1, error
// envelopes on 404s, 401 without a key, 405 on a method mismatch.
func TestEnvelopes(t *testing.T) {
	e := newTestEnv(t)

	code, env := e.do(t, http.MethodGet, "/v1", "", nil)
	if code != http.StatusOK || env.Type != "sync" || env.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1 = %d %+v", code, env)
	}
	var routes []string
	meta(t, env, &routes)
	want := []string{"/v1/domains", "/v1/groups", "/v1/health", "/v1/jobs", "/v1/ready", "/v1/spans", "/v1/stats"}
	if fmt.Sprint(routes) != fmt.Sprint(want) {
		t.Errorf("index routes = %v, want %v", routes, want)
	}

	code, env = e.do(t, http.MethodGet, "/nope", "", nil)
	if code != http.StatusNotFound || env.Type != "error" || env.ErrorCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d %+v", code, env)
	}

	code, _ = e.do(t, http.MethodPost, "/v1/jobs", "", submitRequest{Job: JobEcho})
	if code != http.StatusUnauthorized {
		t.Errorf("unauthenticated submit = %d, want 401", code)
	}
	code, _ = e.do(t, http.MethodPost, "/v1/jobs", "key-wrong", submitRequest{Job: JobEcho})
	if code != http.StatusUnauthorized {
		t.Errorf("bad-key submit = %d, want 401", code)
	}

	resp, err := http.Get(e.ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("GET /v1/jobs without key = %d, want 401", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, e.ts.URL+"/v1/jobs", nil)
	req.Header.Set("X-API-Key", "key-alice")
	resp, err = e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/jobs = %d, want 405", resp.StatusCode)
	}

	code, env = e.do(t, http.MethodPost, "/v1/jobs", "key-bob", submitRequest{Job: "no-such-job"})
	if code != http.StatusNotFound {
		t.Errorf("unknown job = %d (%s), want 404", code, env.Error)
	}
	code, env = e.do(t, http.MethodGet, "/v1/jobs/j-999999", "key-bob", nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown job id = %d (%s), want 404", code, env.Error)
	}
	code, env = e.do(t, http.MethodPost, "/v1/jobs", "key-bob", submitRequest{Job: JobEcho, Kind: "weird"})
	if code != http.StatusBadRequest {
		t.Errorf("bad kind = %d (%s), want 400", code, env.Error)
	}
	code, env = e.do(t, http.MethodPost, "/v1/jobs", "key-bob",
		submitRequest{Job: KernelVecSum, Kind: KindParallelFor})
	if code != http.StatusBadRequest {
		t.Errorf("parallel_for without n = %d (%s), want 400", code, env.Error)
	}
}

// TestSubmitWaitExact drives each builtin end to end and asserts the
// exact expected payloads, including bearer-token auth and tenant
// isolation on job visibility.
func TestSubmitWaitExact(t *testing.T) {
	e := newTestEnv(t)

	v := e.submit(t, "key-bob", submitRequest{Job: JobSum, Arg: I64Pair(-5, 1000)})
	if v.Tenant != "bob" || v.Kind != KindTask || v.Status == "" {
		t.Fatalf("accepted view = %+v", v)
	}
	got := e.wait(t, "key-bob", v.ID)
	if got.Status != StatusSucceeded || !bytes.Equal(got.Result, SumExpected(-5, 1000)) {
		t.Errorf("sum = %+v, want succeeded %x", got, SumExpected(-5, 1000))
	}
	if got.StartedAt == nil || got.FinishedAt == nil {
		t.Errorf("settled job missing timestamps: %+v", got)
	}

	v = e.submit(t, "key-carol", submitRequest{Job: JobFib, Arg: U64(40)})
	if got = e.wait(t, "key-carol", v.ID); !bytes.Equal(got.Result, FibExpected(40)) {
		t.Errorf("fib(40) = %x, want %x", got.Result, FibExpected(40))
	}

	// Tenant isolation: bob cannot see carol's job.
	if code, _ := e.do(t, http.MethodGet, "/v1/jobs/"+v.ID, "key-bob", nil); code != http.StatusNotFound {
		t.Errorf("cross-tenant job get = %d, want 404", code)
	}

	// Bearer auth is equivalent to X-API-Key.
	req, _ := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/jobs", nil)
	req.Header.Set("Authorization", "Bearer key-bob")
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("bearer list = %d, want 200", resp.StatusCode)
	}

	// parallel_for through the offloader.
	v = e.submit(t, "key-alice", submitRequest{Job: KernelVecSum, Kind: KindParallelFor, N: 10000})
	if got = e.wait(t, "key-alice", v.ID); !bytes.Equal(got.Result, VecSumExpected(10000)) {
		t.Errorf("vecsum(10000) = %x, want %x", got.Result, VecSumExpected(10000))
	}
}

// TestQuota429 pins admission control: over-quota submits are refused
// with 429 + Retry-After and succeed again once capacity frees.
func TestQuota429(t *testing.T) {
	e := newTestEnv(t)

	// carol's quota is 2: two slow jobs fill it.
	a := e.submit(t, "key-carol", submitRequest{Job: JobSpin, Arg: U64(uint64(200 * time.Millisecond))})
	b := e.submit(t, "key-carol", submitRequest{Job: JobSpin, Arg: U64(uint64(200 * time.Millisecond))})

	code, env := e.do(t, http.MethodPost, "/v1/jobs", "key-carol", submitRequest{Job: JobEcho})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d (%s), want 429", code, env.Error)
	}
	req, _ := http.NewRequest(http.MethodPost, e.ts.URL+"/v1/jobs", strings.NewReader(`{"job":"echo"}`))
	req.Header.Set("X-API-Key", "key-carol")
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}

	// Other tenants are unaffected by carol's saturation.
	v := e.submit(t, "key-bob", submitRequest{Job: JobEcho, Arg: []byte("hi")})
	if got := e.wait(t, "key-bob", v.ID); !bytes.Equal(got.Result, []byte("hi")) {
		t.Errorf("echo = %q", got.Result)
	}

	// Capacity frees, carol is welcome again.
	e.wait(t, "key-carol", a.ID)
	e.wait(t, "key-carol", b.ID)
	v = e.submit(t, "key-carol", submitRequest{Job: JobEcho})
	e.wait(t, "key-carol", v.ID)

	st := e.srv.ServiceStats()
	for _, ts := range st.Tenants {
		if ts.Name == "carol" && ts.Rejected < 2 {
			t.Errorf("carol rejected = %d, want >= 2", ts.Rejected)
		}
	}
}

// TestGroupStream pins the NDJSON stream: every member exactly once,
// then a drained event.
func TestGroupStream(t *testing.T) {
	e := newTestEnv(t)

	_, env := e.do(t, http.MethodPost, "/v1/groups", "key-alice", nil)
	var g GroupView
	meta(t, env, &g)

	const n = 8
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		v := e.submit(t, "key-alice", submitRequest{
			Job: JobFib, Arg: U64(uint64(20 + i)), Group: g.ID,
		})
		want[v.ID] = FibExpected(uint64(20 + i))
	}

	// A group belongs to its tenant.
	if code, _ := e.do(t, http.MethodGet, "/v1/groups/"+g.ID, "key-bob", nil); code != http.StatusNotFound {
		t.Errorf("cross-tenant group get = %d, want 404", code)
	}

	req, _ := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/groups/"+g.ID+"/stream", nil)
	req.Header.Set("X-API-Key", "key-alice")
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	drained := false
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "job":
			if seen[ev.Job.ID] {
				t.Errorf("job %s streamed twice", ev.Job.ID)
			}
			seen[ev.Job.ID] = true
			exp, ok := want[ev.Job.ID]
			if !ok {
				t.Errorf("streamed unknown job %s", ev.Job.ID)
			} else if ev.Job.Status != StatusSucceeded || !bytes.Equal(ev.Job.Result, exp) {
				t.Errorf("job %s = %+v, want succeeded %x", ev.Job.ID, ev.Job, exp)
			}
		case "drained":
			drained = true
			if ev.Group.Pending != 0 || ev.Group.Members != n {
				t.Errorf("drained group = %+v", ev.Group)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !drained || len(seen) != n {
		t.Errorf("stream delivered %d/%d members, drained=%v", len(seen), n, drained)
	}
}

// TestGroupCancel submits more slow jobs than the dispatch window holds
// and cancels the group: queued members settle canceled, running ones
// finish, and the stream still drains completely.
func TestGroupCancel(t *testing.T) {
	e := newTestEnv(t, WithDispatchWindow(2))

	_, env := e.do(t, http.MethodPost, "/v1/groups", "key-alice", nil)
	var g GroupView
	meta(t, env, &g)

	const n = 10
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v := e.submit(t, "key-alice", submitRequest{
			Job: JobSpin, Arg: U64(uint64(100 * time.Millisecond)), Group: g.ID,
		})
		ids = append(ids, v.ID)
	}
	code, env := e.do(t, http.MethodPost, "/v1/groups/"+g.ID+"/cancel", "key-alice", nil)
	if code != http.StatusOK {
		t.Fatalf("cancel = %d (%s)", code, env.Error)
	}
	var canceled, finished int
	for _, id := range ids {
		switch v := e.wait(t, "key-alice", id); v.Status {
		case StatusCanceled:
			canceled++
		case StatusSucceeded:
			finished++
		default:
			t.Errorf("job %s = %+v", id, v)
		}
	}
	if canceled == 0 {
		t.Error("cancel with full window canceled no queued jobs")
	}
	if canceled+finished != n {
		t.Errorf("canceled %d + finished %d != %d", canceled, finished, n)
	}
}

// TestDomainsDrainReadmit pins the admin surface: listing, role
// enforcement, drain through the loss path, accepted work completing
// exactly, then readmission.
func TestDomainsDrainReadmit(t *testing.T) {
	e := newTestEnv(t)

	var doms DomainsView
	_, env := e.do(t, http.MethodGet, "/v1/domains", "key-bob", nil)
	meta(t, env, &doms)
	if len(doms.Fabric) != 3 || len(doms.Offload) != 2 {
		t.Fatalf("domains = %d fabric, %d offload; want 3, 2", len(doms.Fabric), len(doms.Offload))
	}
	for _, d := range doms.Fabric {
		if !d.Live {
			t.Errorf("domain %d not live at boot", d.ID)
		}
	}

	// Drain requires the admin role.
	if code, _ := e.do(t, http.MethodPost, "/v1/domains/1/drain", "key-bob", nil); code != http.StatusForbidden {
		t.Errorf("non-admin drain = %d, want 403", code)
	}
	if code, _ := e.do(t, http.MethodPost, "/v1/domains/99/drain", "key-alice", nil); code != http.StatusNotFound {
		t.Errorf("drain bad id = %d, want 404", code)
	}
	if code, _ := e.do(t, http.MethodPost, "/v1/domains/x/drain", "key-alice", nil); code != http.StatusBadRequest {
		t.Errorf("drain non-numeric id = %d, want 400", code)
	}

	if code, env := e.do(t, http.MethodPost, "/v1/domains/1/drain", "key-alice", nil); code != http.StatusOK {
		t.Fatalf("drain = %d (%s)", code, env.Error)
	}
	// The health monitor must declare the loss before readmission is
	// possible.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, env = e.do(t, http.MethodGet, "/v1/domains", "key-alice", nil)
		meta(t, env, &doms)
		if !doms.Fabric[1].Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("domain 1 still live 10s after drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain-then-submit: the degraded fleet still serves exactly.
	v := e.submit(t, "key-bob", submitRequest{Job: JobSum, Arg: I64Pair(0, 5000)})
	if got := e.wait(t, "key-bob", v.ID); !bytes.Equal(got.Result, SumExpected(0, 5000)) {
		t.Errorf("degraded sum = %+v, want %x", got, SumExpected(0, 5000))
	}

	if code, env := e.do(t, http.MethodPost, "/v1/domains/1/readmit", "key-alice", nil); code != http.StatusOK {
		t.Fatalf("readmit = %d (%s)", code, env.Error)
	}
	if code, _ := e.do(t, http.MethodPost, "/v1/domains/1/readmit", "key-alice", nil); code != http.StatusConflict {
		t.Errorf("double readmit = %d, want 409", code)
	}
	_, env = e.do(t, http.MethodGet, "/v1/domains", "key-alice", nil)
	meta(t, env, &doms)
	if !doms.Fabric[1].Live {
		t.Error("domain 1 not live after readmit")
	}
}

// TestKillMidJob pins the availability contract under fault injection:
// a domain drained while slow jobs are in flight must not cost a single
// accepted job its exact result.
func TestKillMidJob(t *testing.T) {
	e := newTestEnv(t)

	const n = 12
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v := e.submit(t, "key-alice", submitRequest{Job: JobSpin, Arg: U64(uint64(60 * time.Millisecond))})
		ids = append(ids, v.ID)
	}
	time.Sleep(10 * time.Millisecond) // let dispatch spread across domains
	if code, env := e.do(t, http.MethodPost, "/v1/domains/0/drain", "key-alice", nil); code != http.StatusOK {
		t.Fatalf("drain = %d (%s)", code, env.Error)
	}
	recovered := 0
	for _, id := range ids {
		v := e.wait(t, "key-alice", id)
		if v.Status != StatusSucceeded {
			t.Errorf("job %s = %+v, want succeeded despite domain loss", id, v)
			continue
		}
		if !bytes.Equal(v.Result, U64(uint64(60*time.Millisecond))) {
			t.Errorf("job %s result = %x", id, v.Result)
		}
		if v.Recovered {
			recovered++
		}
	}
	t.Logf("killed domain 0 mid-run: %d/%d jobs recovered", recovered, n)

	st := e.srv.ServiceStats()
	if st.Completed != uint64(n) || st.Failed != 0 {
		t.Errorf("service stats = %+v, want %d completed, 0 failed", st, n)
	}
	if uint64(recovered) != st.Recovered {
		t.Errorf("recovered views %d != stat %d", recovered, st.Recovered)
	}
}

// TestStatsSnapshot pins the unified Snapshot umbrella on /v1/stats:
// every layer's section present and the service counters consistent.
func TestStatsSnapshot(t *testing.T) {
	e := newTestEnv(t)

	v := e.submit(t, "key-bob", submitRequest{Job: JobSum, Arg: I64Pair(0, 100)})
	e.wait(t, "key-bob", v.ID)
	v = e.submit(t, "key-bob", submitRequest{Job: KernelVecSum, Kind: KindParallelFor, N: 500})
	e.wait(t, "key-bob", v.ID)

	code, env := e.do(t, http.MethodGet, "/v1/stats", "key-bob", nil)
	if code != http.StatusOK {
		t.Fatalf("stats = %d (%s)", code, env.Error)
	}
	var snap Snapshot
	meta(t, env, &snap)
	if snap.Core == nil || snap.Fabric == nil || snap.Offload == nil || snap.Service == nil {
		t.Fatalf("snapshot sections missing: %+v", snap)
	}
	if snap.Service.Accepted != 2 || snap.Service.Completed != 2 {
		t.Errorf("service = %+v, want 2 accepted, 2 completed", snap.Service)
	}
	if snap.Fabric.Submitted < 1 {
		t.Errorf("fabric submitted = %d, want >= 1", snap.Fabric.Submitted)
	}
	if snap.Offload.Regions < 1 {
		t.Errorf("offload regions = %d, want >= 1", snap.Offload.Regions)
	}
	if len(snap.Service.Tenants) != 3 {
		t.Errorf("tenant stats = %d entries, want 3", len(snap.Service.Tenants))
	}

	// The raw JSON must carry the section keys (the stable wire names).
	b, err := json.Marshal(env.Metadata)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"core"`, `"offload"`, `"fabric"`, `"service"`, `"tenants"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("stats JSON missing %s: %s", key, b)
		}
	}
}

// TestConcurrentTenants is the -race soak: 16 tenants × concurrent
// submitters hammering the service with tight quotas, retrying on 429,
// every accepted job asserting its exact expected result.
func TestConcurrentTenants(t *testing.T) {
	jobs := taskfabric.NewRegistry()
	if err := RegisterBuiltinJobs(jobs); err != nil {
		t.Fatal(err)
	}
	fab, err := taskfabric.NewFabric(jobs,
		taskfabric.WithDomains(3),
		taskfabric.WithHeartbeat(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()

	const nt = 16
	tenants := make([]Tenant, 0, nt)
	prios := []Priority{PriorityHigh, PriorityNormal, PriorityLow}
	for i := 0; i < nt; i++ {
		tenants = append(tenants, Tenant{
			Name:     fmt.Sprintf("t%02d", i),
			Key:      fmt.Sprintf("key-t%02d", i),
			Quota:    4,
			Priority: prios[i%len(prios)],
		})
	}
	srv, err := New(fab, jobs, WithTenants(tenants...), WithDispatchWindow(32))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const subsPerTenant = 4
	const jobsPerSub = 6
	var wg sync.WaitGroup
	errCh := make(chan error, nt*subsPerTenant)
	for ti := 0; ti < nt; ti++ {
		for si := 0; si < subsPerTenant; si++ {
			wg.Add(1)
			go func(ti, si int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(ti*100 + si)))
				key := fmt.Sprintf("key-t%02d", ti)
				client := ts.Client()
				for k := 0; k < jobsPerSub; k++ {
					n := uint64(10 + rng.Intn(30))
					body, _ := json.Marshal(submitRequest{Job: JobFib, Arg: U64(n)})
					var id string
					for {
						req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
						req.Header.Set("X-API-Key", key)
						resp, err := client.Do(req)
						if err != nil {
							errCh <- err
							return
						}
						var env apiResponse
						derr := json.NewDecoder(resp.Body).Decode(&env)
						resp.Body.Close()
						if resp.StatusCode == http.StatusTooManyRequests {
							time.Sleep(time.Duration(1+rng.Intn(10)) * time.Millisecond)
							continue
						}
						if derr != nil || resp.StatusCode != http.StatusAccepted {
							errCh <- fmt.Errorf("submit: status %d, decode %v", resp.StatusCode, derr)
							return
						}
						var v JobView
						b, _ := json.Marshal(env.Metadata)
						if err := json.Unmarshal(b, &v); err != nil {
							errCh <- err
							return
						}
						id = v.ID
						break
					}
					for {
						req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"?wait=2s", nil)
						req.Header.Set("X-API-Key", key)
						resp, err := client.Do(req)
						if err != nil {
							errCh <- err
							return
						}
						var env apiResponse
						derr := json.NewDecoder(resp.Body).Decode(&env)
						resp.Body.Close()
						if derr != nil {
							errCh <- derr
							return
						}
						var v JobView
						b, _ := json.Marshal(env.Metadata)
						if err := json.Unmarshal(b, &v); err != nil {
							errCh <- err
							return
						}
						if v.Status == StatusSucceeded {
							if !bytes.Equal(v.Result, FibExpected(n)) {
								errCh <- fmt.Errorf("job %s: fib(%d) = %x, want %x", id, n, v.Result, FibExpected(n))
							}
							break
						}
						if v.Status == StatusFailed || v.Status == StatusCanceled {
							errCh <- fmt.Errorf("job %s settled %s: %s", id, v.Status, v.Error)
							break
						}
					}
				}
			}(ti, si)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := srv.ServiceStats()
	wantJobs := uint64(nt * subsPerTenant * jobsPerSub)
	if st.Completed != wantJobs || st.Failed != 0 {
		t.Errorf("service stats = %+v, want %d completed, 0 failed", st, wantJobs)
	}
	if st.Accepted != wantJobs {
		t.Errorf("accepted = %d, want %d", st.Accepted, wantJobs)
	}
}

// TestCloseSettlesQueued pins shutdown: queued jobs settle canceled,
// nothing wedges, Close is idempotent.
func TestCloseSettlesQueued(t *testing.T) {
	jobs := taskfabric.NewRegistry()
	if err := RegisterBuiltinJobs(jobs); err != nil {
		t.Fatal(err)
	}
	fab, err := taskfabric.NewFabric(jobs, taskfabric.WithDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	srv, err := New(fab, jobs,
		WithTenants(Tenant{Name: "t", Key: "k", Quota: 32, Priority: PriorityNormal}),
		WithDispatchWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	e := &testEnv{fab: fab, srv: srv, ts: ts}

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		v := e.submit(t, "k", submitRequest{Job: JobSpin, Arg: U64(uint64(50 * time.Millisecond))})
		ids = append(ids, v.ID)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var canceled, done int
	for _, id := range ids {
		srv.mu.Lock()
		j := srv.jobs[id]
		srv.mu.Unlock()
		<-j.done
		j.mu.Lock()
		switch j.status {
		case StatusCanceled:
			canceled++
		case StatusSucceeded:
			done++
		default:
			t.Errorf("job %s status %s after Close", id, j.status)
		}
		j.mu.Unlock()
	}
	if canceled == 0 {
		t.Error("Close canceled no queued jobs")
	}
	if canceled+done != len(ids) {
		t.Errorf("canceled %d + done %d != %d", canceled, done, len(ids))
	}
}
