package jobservice

import (
	"openmpmca/internal/core"
	"openmpmca/internal/durable"
	"openmpmca/internal/oerrors"
	"openmpmca/internal/offload"
	"openmpmca/internal/taskfabric"
)

// Snapshot is the unified stats umbrella every surface serializes: the
// job service's GET /v1/stats, ompmca-info -stats -json and
// ompmca-bench -stats all emit this one shape, replacing the three
// divergent ad-hoc dumps that predated it. Sections a producer cannot
// fill are omitted from the JSON rather than zeroed, so a consumer can
// tell "no offloader wired" from "offloader idle".
type Snapshot struct {
	Core    *core.StatsSnapshot     `json:"core,omitempty"`    // host runtime scheduler counters
	Offload *offload.StatsSnapshot  `json:"offload,omitempty"` // parallel-for offload counters
	Fabric  *taskfabric.Stats       `json:"fabric,omitempty"`  // task-fabric counters
	Service *ServiceStats           `json:"service,omitempty"` // job-service admission/dispatch counters
	Errors  *oerrors.CountsSnapshot `json:"errors,omitempty"`  // error-taxonomy counters (by category and code)
	Durable *durable.Stats          `json:"durable,omitempty"` // journal/snapshot activity and replay evidence
}

// ServiceStats is the job service's own section of Snapshot: admission,
// dispatch and settlement counters plus the live queue state, overall
// and per tenant.
type ServiceStats struct {
	Accepted    uint64        `json:"accepted"`               // jobs admitted (202)
	Rejected    uint64        `json:"rejected"`               // jobs refused over quota (429)
	RateLimited uint64        `json:"rate_limited,omitempty"` // jobs refused over token-bucket rate (429)
	Dispatched  uint64        `json:"dispatched"`             // jobs handed to the fabric/offloader
	Completed   uint64        `json:"completed"`              // jobs settled with a result
	Failed      uint64        `json:"failed"`                 // jobs settled with an error
	Canceled    uint64        `json:"canceled"`               // jobs canceled before dispatch
	Recovered   uint64        `json:"recovered"`              // completions that survived a domain loss or restart
	Replayed    uint64        `json:"replayed,omitempty"`     // jobs re-enqueued from the durable store at startup
	Queued      int           `json:"queued"`                 // live: admitted, waiting for a slot
	Running     int           `json:"running"`                // live: dispatched, not settled
	Tenants     []TenantStats `json:"tenants"`
}
