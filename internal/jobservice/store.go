package jobservice

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"openmpmca/internal/core"
	"openmpmca/internal/durable"
	"openmpmca/internal/oerrors"
)

// Durable job store wiring. With a store attached, every job-state
// transition is journaled — group creation, acceptance (with the full
// payload), dispatch, settlement (with result bytes) — and New replays
// the store's recovered state before the dispatcher starts: settled
// jobs come back queryable with their exact results, queued jobs
// re-enter their tenants' FIFOs, and jobs that were mid-flight when the
// process died are re-enqueued for deterministic re-execution with the
// recovered flag set. Without a store the server behaves exactly as
// before — every hook is nil-guarded.
//
// The durability contract: an accept record is fsynced before the
// HTTP 202 leaves the server, so an acknowledged job is never lost.
// Dispatch and settle records are appended best-effort — losing one
// costs only a redundant (deterministic) re-execution after a crash,
// never a wrong or missing result.

// WithStore attaches a caller-owned durable store. The caller keeps
// ownership: the server journals to it and replays its recovered state,
// but Close does not close it.
func WithStore(st *durable.Store) Option {
	return func(c *config) error {
		if st == nil {
			return fmt.Errorf("%w: jobservice: WithStore(nil)", core.ErrInvalidOption)
		}
		c.store = st
		return nil
	}
}

// WithStateDir opens (creating if needed) a durable store in dir and
// attaches it, server-owned: Close closes it. The shorthand for
// WithStore when the caller has no reason to hold the store itself.
func WithStateDir(dir string, opts ...durable.Option) Option {
	return func(c *config) error {
		if strings.TrimSpace(dir) == "" {
			return fmt.Errorf("%w: jobservice: WithStateDir(\"\")", core.ErrInvalidOption)
		}
		st, err := durable.Open(dir, opts...)
		if err != nil {
			return err
		}
		c.store = st
		c.ownStore = true
		return nil
	}
}

// WithProgress attaches a ProgressHub so fabric task events are
// attributed to jobs. The hub must be the fabric's event sink (built
// with taskfabric.WithEventSink(hub)); parallel_for chunk progress
// works without it.
func WithProgress(h *ProgressHub) Option {
	return func(c *config) error {
		if h == nil {
			return fmt.Errorf("%w: jobservice: WithProgress(nil)", core.ErrInvalidOption)
		}
		c.hub = h
		return nil
	}
}

// journal appends one entry when a store is attached. The returned
// error matters only on the accept path, where durability gates the
// 202.
func (s *Server) journal(e durable.Entry) error {
	if s.cfg.store == nil {
		return nil
	}
	return s.cfg.store.Append(e)
}

// journalBestEffort appends a dispatch/settle record, tolerating
// failure: the entry only saves a deterministic re-execution after a
// crash. Store errors were classified and counted at creation; a closed
// store during shutdown is expected.
func (s *Server) journalBestEffort(e durable.Entry) {
	if err := s.journal(e); err != nil && !errors.Is(err, durable.ErrClosed) {
		_ = err // counted in the oerrors taxonomy by the store
	}
}

// settleEntry builds the OpSettle record for a settled job.
func settleEntry(j *jobRec) durable.Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return durable.Entry{
		Op:        durable.OpSettle,
		ID:        j.id,
		At:        j.finished.UnixNano(),
		Status:    j.status,
		Result:    j.result,
		Error:     j.errMsg,
		Recovered: j.recovered,
	}
}

// seqOf extracts the numeric suffix of a "j-N"/"g-N" id, 0 when the id
// has another shape.
func seqOf(id, prefix string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, prefix), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// sortedBySeq orders ids by their numeric suffix (submission order),
// unknown shapes last by string order.
func sortedBySeq(ids []string, prefix string) {
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := seqOf(ids[a], prefix), seqOf(ids[b], prefix)
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})
}

// recoverFromStore rebuilds the server's job and group tables from the
// store's recovered state. Runs inside New, before the dispatcher
// starts, so no locking is contended; Server.mu is still held for the
// invariant's sake. Settled members of recovered groups are re-queued
// for streaming (delivery is exactly-once per server lifetime,
// at-least-once across restarts: stream positions are not journaled).
func (s *Server) recoverFromStore() {
	rec := s.cfg.store.Recovered()
	s.mu.Lock()
	defer s.mu.Unlock()

	gids := make([]string, 0, len(rec.Groups))
	for gid := range rec.Groups {
		gids = append(gids, gid)
	}
	sortedBySeq(gids, "g-")
	var maxG uint64
	for _, gid := range gids {
		gs := rec.Groups[gid]
		if n := seqOf(gid, "g-"); n > maxG {
			maxG = n
		}
		t := s.byName[gs.Tenant]
		if t == nil {
			continue // members settle tenant_gone below
		}
		s.groups[gid] = &groupRec{id: gid, tenant: t, notify: make(chan struct{}, 1)}
	}

	jids := make([]string, 0, len(rec.Jobs))
	for id := range rec.Jobs {
		jids = append(jids, id)
	}
	sortedBySeq(jids, "j-")
	var maxJ uint64
	for _, id := range jids {
		js := rec.Jobs[id]
		if n := seqOf(id, "j-"); n > maxJ {
			maxJ = n
		}
		t := s.byName[js.Tenant]
		if t == nil {
			// The job's tenant is no longer configured: settle it in the
			// journal so the next replay converges instead of carrying
			// the orphan forever.
			err := oerrors.Errorf(oerrors.Admission, oerrors.CodeTenantGone,
				"jobservice: replayed job %s: tenant %q no longer configured", id, js.Tenant)
			s.journalBestEffort(durable.Entry{
				Op: durable.OpSettle, ID: id,
				Status: durable.StatusFailed, Error: err.Error(),
			})
			continue
		}
		j := &jobRec{
			id:     id,
			tenant: t,
			kind:   js.Kind,
			name:   js.Name,
			arg:    js.Arg,
			n:      js.N,
			events: newEventLog(),
			done:   make(chan struct{}),
		}
		if js.SubmittedNs != 0 {
			j.submitted = time.Unix(0, js.SubmittedNs)
		}
		if js.Group != "" {
			if g := s.groups[js.Group]; g != nil {
				j.group = g
				g.members++
				g.pending++
			}
		}
		j.events.add(JobEvent{Type: EventAccepted, Chunk: -1})
		if js.Settled() {
			j.status = js.Status
			j.result = js.Result
			j.errMsg = js.Error
			j.recovered = js.Recovered
			if js.FinishedNs != 0 {
				j.finished = time.Unix(0, js.FinishedNs)
			}
			close(j.done)
			j.events.add(JobEvent{Type: EventSettled, Chunk: -1, Status: j.status})
			if j.group != nil {
				j.group.pending--
				j.group.ready = append(j.group.ready, j)
			}
		} else {
			// Queued and mid-flight jobs alike go back to the tenant
			// FIFO; a mid-flight job is marked recovered — its (builtin,
			// deterministic) work is re-executed from the journaled
			// payload.
			j.status = StatusQueued
			j.replayed = true
			if js.Status == durable.StatusRunning {
				j.recovered = true
			}
			t.queue = append(t.queue, j)
			t.inflight++
			s.st.replayed.Add(1)
		}
		s.jobs[id] = j
		t.jobs = append(t.jobs, id)
	}
	if maxJ > 0 {
		s.jobSeq.Store(maxJ)
	}
	if maxG > 0 {
		s.groupSeq.Store(maxG)
	}
}

// DurableStats returns the attached store's counters, nil without a
// store. Served as the durable section of GET /v1/stats.
func (s *Server) DurableStats() *durable.Stats {
	if s.cfg.store == nil {
		return nil
	}
	st := s.cfg.store.Stats()
	return &st
}
