package jobservice

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"openmpmca/internal/core"
)

// Priority is a tenant's service class. It maps to a weight in the
// weighted-fair dispatcher: under contention a high tenant is dequeued
// four times for every one dequeue of a low tenant.
type Priority string

// Tenant service classes.
const (
	PriorityHigh   Priority = "high"
	PriorityNormal Priority = "normal"
	PriorityLow    Priority = "low"
)

// Weight returns the fair-share weight of the class (high 4, normal 2,
// low 1; unknown classes are invalid and rejected at construction).
func (p Priority) Weight() int {
	switch p {
	case PriorityHigh:
		return 4
	case PriorityNormal:
		return 2
	case PriorityLow:
		return 1
	}
	return 0
}

// Tenant is one API-key principal of the job service. Quota bounds the
// tenant's jobs in flight — admitted but not yet settled, queued and
// running alike — and further submissions are refused with HTTP 429
// until a slot frees. Rate/Burst optionally add a token bucket on top:
// sustained submissions above Rate jobs/sec (with bursts up to Burst)
// are refused with HTTP 429 and a computed Retry-After, independent of
// how many slots the quota has free. Rate 0 means unlimited. Admin
// additionally unlocks the domain drain/readmit endpoints.
type Tenant struct {
	Name     string   `json:"name"`
	Key      string   `json:"-"` // API key; never serialized
	Quota    int      `json:"quota"`
	Priority Priority `json:"priority"`
	Admin    bool     `json:"admin,omitempty"`
	Rate     float64  `json:"rate,omitempty"`  // submissions/sec; 0 = unlimited
	Burst    int      `json:"burst,omitempty"` // bucket depth; min 1 when Rate > 0
}

func (t Tenant) validate() error {
	if strings.TrimSpace(t.Name) == "" {
		return fmt.Errorf("%w: jobservice: tenant with empty name", core.ErrInvalidOption)
	}
	if t.Key == "" {
		return fmt.Errorf("%w: jobservice: tenant %q has no API key", core.ErrInvalidOption, t.Name)
	}
	if t.Quota < 1 {
		return fmt.Errorf("%w: jobservice: tenant %q quota %d: want >= 1", core.ErrInvalidOption, t.Name, t.Quota)
	}
	if t.Priority.Weight() == 0 {
		return fmt.Errorf("%w: jobservice: tenant %q priority %q: want high|normal|low", core.ErrInvalidOption, t.Name, t.Priority)
	}
	if t.Rate < 0 {
		return fmt.Errorf("%w: jobservice: tenant %q rate %v: want >= 0", core.ErrInvalidOption, t.Name, t.Rate)
	}
	if t.Rate > 0 && t.Burst < 1 {
		return fmt.Errorf("%w: jobservice: tenant %q burst %d with rate %v: want >= 1", core.ErrInvalidOption, t.Name, t.Burst, t.Rate)
	}
	return nil
}

// ParseTenant parses the "name:key:quota:priority[:admin][:rate=R/B]"
// spec the command-line tools (ompmca-serve -tenant, ompmca-loadgen
// -tenant) share. The optional trailing fields may appear in either
// order: "admin" grants the admin bit, "rate=R/B" sets a token bucket
// of R submissions/sec with burst depth B.
func ParseTenant(spec string) (Tenant, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 4 || len(parts) > 6 {
		return Tenant{}, fmt.Errorf("%w: jobservice: tenant spec %q: want name:key:quota:priority[:admin][:rate=R/B]",
			core.ErrInvalidOption, spec)
	}
	quota, err := strconv.Atoi(parts[2])
	if err != nil {
		return Tenant{}, fmt.Errorf("%w: jobservice: tenant spec %q: bad quota: %v",
			core.ErrInvalidOption, spec, err)
	}
	t := Tenant{Name: parts[0], Key: parts[1], Quota: quota, Priority: Priority(parts[3])}
	for _, field := range parts[4:] {
		switch {
		case field == "admin":
			t.Admin = true
		case strings.HasPrefix(field, "rate="):
			rb := strings.SplitN(strings.TrimPrefix(field, "rate="), "/", 2)
			if len(rb) != 2 {
				return Tenant{}, fmt.Errorf("%w: jobservice: tenant spec %q: rate field wants rate=R/B",
					core.ErrInvalidOption, spec)
			}
			rate, err := strconv.ParseFloat(rb[0], 64)
			if err != nil {
				return Tenant{}, fmt.Errorf("%w: jobservice: tenant spec %q: bad rate: %v",
					core.ErrInvalidOption, spec, err)
			}
			burst, err := strconv.Atoi(rb[1])
			if err != nil {
				return Tenant{}, fmt.Errorf("%w: jobservice: tenant spec %q: bad burst: %v",
					core.ErrInvalidOption, spec, err)
			}
			t.Rate, t.Burst = rate, burst
		default:
			return Tenant{}, fmt.Errorf("%w: jobservice: tenant spec %q: unknown field %q (want \"admin\" or \"rate=R/B\")",
				core.ErrInvalidOption, spec, field)
		}
	}
	if err := t.validate(); err != nil {
		return Tenant{}, err
	}
	return t, nil
}

// DemoTenants is the out-of-the-box tenant set ompmca-serve boots with
// when no -tenant flags are given, and the set ompmca-loadgen drives by
// default; the keys are demo fixtures for the simulated board, not
// secrets.
func DemoTenants() []Tenant {
	return []Tenant{
		{Name: "alice", Key: "key-alice", Quota: 64, Priority: PriorityHigh, Admin: true},
		{Name: "bob", Key: "key-bob", Quota: 32, Priority: PriorityNormal},
		{Name: "carol", Key: "key-carol", Quota: 8, Priority: PriorityLow},
	}
}

// tenantState is the server's live record of one tenant: its static
// config, the FIFO of admitted-but-undispatched jobs, the in-flight
// count the quota is enforced against, and the smooth-WRR credit the
// fair dispatcher cycles.
type tenantState struct {
	Tenant
	weight int

	// Guarded by Server.mu.
	queue    []*jobRec
	inflight int
	wrr      int
	jobs     []string // every job ID ever admitted, submission order

	// Token bucket (guarded by Server.mu). tokens is the current fill;
	// refilled lazily on each admission attempt from lastRefill.
	tokens     float64
	lastRefill time.Time

	accepted    atomic.Uint64
	rejected    atomic.Uint64
	rateLimited atomic.Uint64
	completed   atomic.Uint64
}

// takeToken refills the tenant's bucket from the wall clock and tries
// to spend one token. When the bucket is dry it returns false and the
// wait until the next token accrues. Tenants without a rate always
// admit. Caller holds Server.mu.
func (t *tenantState) takeToken(now time.Time) (bool, time.Duration) {
	if t.Rate <= 0 {
		return true, 0
	}
	if t.lastRefill.IsZero() {
		t.tokens = float64(t.Burst)
	} else if dt := now.Sub(t.lastRefill).Seconds(); dt > 0 {
		t.tokens += dt * t.Rate
		if max := float64(t.Burst); t.tokens > max {
			t.tokens = max
		}
	}
	t.lastRefill = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := time.Duration((1 - t.tokens) / t.Rate * float64(time.Second))
	return false, wait
}

// TenantStats is one tenant's section of ServiceStats.
type TenantStats struct {
	Name        string   `json:"name"`
	Priority    Priority `json:"priority"`
	Weight      int      `json:"weight"`
	Quota       int      `json:"quota"`
	Rate        float64  `json:"rate,omitempty"`
	Burst       int      `json:"burst,omitempty"`
	InFlight    int      `json:"in_flight"`
	Queued      int      `json:"queued"`
	Accepted    uint64   `json:"accepted"`
	Rejected    uint64   `json:"rejected"`
	RateLimited uint64   `json:"rate_limited,omitempty"`
	Completed   uint64   `json:"completed"`
}

// nextTenant picks the tenant to dequeue from next using smooth weighted
// round-robin over the tenants with queued jobs: each candidate's credit
// grows by its weight, the highest credit wins and pays back the total.
// Over a contended interval every tenant's dequeue share converges to
// weight/Σweights, with no tenant ever starved. Caller holds Server.mu.
func (s *Server) nextTenant() *tenantState {
	total := 0
	var best *tenantState
	for _, t := range s.order {
		if len(t.queue) == 0 {
			continue
		}
		total += t.weight
		t.wrr += t.weight
		if best == nil || t.wrr > best.wrr {
			best = t
		}
	}
	if best != nil {
		best.wrr -= total
	}
	return best
}
