package jobservice

import (
	"fmt"
	"os"
	"strings"

	"openmpmca/internal/core"
)

// LoadTenantsFile reads a tenants file: one ParseTenant spec
// ("name:key:quota:priority[:admin][:rate=R/B]") per line, with blank
// lines and #-comments ignored. Because the file carries API keys it
// must not be readable by group or others — anything looser than 0600
// is refused, the same posture ssh takes with private keys.
func LoadTenantsFile(path string) ([]Tenant, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("jobservice: tenants file: %w", err)
	}
	if perm := fi.Mode().Perm(); perm&0o077 != 0 {
		return nil, fmt.Errorf("%w: jobservice: tenants file %s has mode %04o: keys demand 0600",
			core.ErrInvalidOption, path, perm)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobservice: tenants file: %w", err)
	}
	var out []Tenant
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTenant(line)
		if err != nil {
			return nil, fmt.Errorf("jobservice: tenants file %s line %d: %w", path, i+1, err)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: jobservice: tenants file %s defines no tenants", core.ErrInvalidOption, path)
	}
	return out, nil
}
