package mcapi

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

// TestPktChannelBackpressureRace drives a packet channel from many
// concurrent senders into a deliberately slow receiver behind a tiny
// receive queue, so every sender spends most of its time parked on the
// full-queue wait path — the credit/backpressure path the offload layer
// leans on. Run under -race this exercises the enqueue/dequeue wakeup
// protocol for lost-wakeup and double-signal bugs.
func TestPktChannelBackpressureRace(t *testing.T) {
	const (
		senders    = 8
		perSender  = 40
		queueDepth = 4
	)
	sys := NewSystem()
	ns, err := sys.Initialize(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := sys.Initialize(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sendEp, err := ns.CreateEndpoint(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	recvEp, err := nr.CreateEndpoint(1, &EndpointAttributes{QueueDepth: queueDepth})
	if err != nil {
		t.Fatal(err)
	}
	if err := PktConnect(sendEp, recvEp); err != nil {
		t.Fatal(err)
	}
	send, err := PktOpenSend(sendEp)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := PktOpenRecv(recvEp)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < perSender; i++ {
				binary.LittleEndian.PutUint32(buf, uint32(s))
				binary.LittleEndian.PutUint32(buf[4:], uint32(i))
				if err := send.Send(buf, TimeoutInfinite); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}

	// Slow receiver: drain with periodic stalls so the queue oscillates
	// between full and empty.
	lastSeq := make([]int, senders)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	total := senders * perSender
	for got := 0; got < total; got++ {
		if got%16 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		pkt, err := recv.Recv(Timeout(5 * time.Second))
		if err != nil {
			t.Fatalf("recv %d/%d: %v", got, total, err)
		}
		s := int(binary.LittleEndian.Uint32(pkt))
		i := int(binary.LittleEndian.Uint32(pkt[4:]))
		if s < 0 || s >= senders {
			t.Fatalf("bogus sender id %d", s)
		}
		// A channel is FIFO, and each sender sends sequentially, so each
		// sender's packets must arrive in its own send order.
		if i <= lastSeq[s] {
			t.Fatalf("sender %d: seq %d arrived after %d", s, i, lastSeq[s])
		}
		lastSeq[s] = i
	}
	wg.Wait()
	for s, last := range lastSeq {
		if last != perSender-1 {
			t.Errorf("sender %d: last seq %d, want %d", s, last, perSender-1)
		}
	}
	if n := recv.Available(); n != 0 {
		t.Errorf("queue should be drained, %d left", n)
	}
}

// TestMsgBackpressureConcurrentPriorities is the connectionless variant:
// concurrent senders on every priority level against a small queue and a
// slow receiver; all messages must land, none duplicated.
func TestMsgBackpressureConcurrentPriorities(t *testing.T) {
	const perPrio = 30
	_, dst := newPair(t, &EndpointAttributes{QueueDepth: 3})
	var wg sync.WaitGroup
	for p := 0; p <= MaxPriority; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := make([]byte, 2)
			for i := 0; i < perPrio; i++ {
				buf[0], buf[1] = byte(p), byte(i)
				if err := MsgSend(dst, buf, p, TimeoutInfinite); err != nil {
					t.Errorf("priority %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	seen := make(map[[2]byte]bool)
	total := (MaxPriority + 1) * perPrio
	for got := 0; got < total; got++ {
		if got%8 == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		data, prio, err := MsgRecv(dst, Timeout(5*time.Second))
		if err != nil {
			t.Fatalf("recv %d/%d: %v", got, total, err)
		}
		if int(data[0]) != prio {
			t.Fatalf("priority mismatch: payload says %d, recv says %d", data[0], prio)
		}
		key := [2]byte{data[0], data[1]}
		if seen[key] {
			t.Fatalf("duplicate message p=%d i=%d", data[0], data[1])
		}
		seen[key] = true
	}
	wg.Wait()
	if len(seen) != total {
		t.Errorf("received %d distinct messages, want %d", len(seen), total)
	}
}
