package mcapi

// Packet and scalar channels: connected, unidirectional, FIFO pipes
// between exactly two endpoints — MCAPI's high-throughput alternative to
// connectionless messages.

// PktConnect connects a send endpoint to a receive endpoint as a packet
// channel (mcapi_pktchan_connect_i, completed synchronously). Both
// endpoints must be free.
func PktConnect(send, recv *Endpoint) error {
	return connect(send, recv, statePktSend, statePktRecv)
}

// ScalarConnect connects a scalar channel (mcapi_sclchan_connect_i).
func ScalarConnect(send, recv *Endpoint) error {
	return connect(send, recv, stateScalarSend, stateScalarRecv)
}

// connect pairs two endpoints with the given directional states. Locks
// are taken in a global order (node ids, then port) to avoid deadlock
// with a concurrent reverse connect.
func connect(send, recv *Endpoint, sendState, recvState chanState) error {
	if send == recv {
		return ErrChanConnected
	}
	first, second := send, recv
	if endpointLess(recv, send) {
		first, second = recv, send
	}
	first.mu.Lock()
	second.mu.Lock()
	defer first.mu.Unlock()
	defer second.mu.Unlock()
	if send.deleted || recv.deleted {
		return ErrEndpInvalid
	}
	if send.state != stateFree || recv.state != stateFree {
		return ErrChanConnected
	}
	if send.queued > 0 || recv.queued > 0 {
		// Pending connectionless traffic cannot be reinterpreted.
		return ErrChanOpen
	}
	send.state = sendState
	recv.state = recvState
	send.peer = recv
	recv.peer = send
	return nil
}

func endpointLess(a, b *Endpoint) bool {
	if a.node.domain != b.node.domain {
		return a.node.domain < b.node.domain
	}
	if a.node.id != b.node.id {
		return a.node.id < b.node.id
	}
	return a.port < b.port
}

// ----- packet channels -----

// PktSendHandle is the send side of an open packet channel.
type PktSendHandle struct{ ep *Endpoint }

// PktRecvHandle is the receive side of an open packet channel.
type PktRecvHandle struct{ ep *Endpoint }

// PktOpenSend opens the send side (mcapi_pktchan_send_open_i).
func PktOpenSend(ep *Endpoint) (*PktSendHandle, error) {
	if err := open(ep, statePktSend); err != nil {
		return nil, err
	}
	return &PktSendHandle{ep: ep}, nil
}

// PktOpenRecv opens the receive side (mcapi_pktchan_recv_open_i).
func PktOpenRecv(ep *Endpoint) (*PktRecvHandle, error) {
	if err := open(ep, statePktRecv); err != nil {
		return nil, err
	}
	return &PktRecvHandle{ep: ep}, nil
}

func open(ep *Endpoint, want chanState) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	switch {
	case ep.deleted:
		return ErrEndpInvalid
	case ep.state == stateFree:
		return ErrChanNotConnect
	case ep.state != want:
		return ErrChanDirection
	case ep.opened:
		return ErrChanOpen
	}
	ep.opened = true
	return nil
}

// Send transmits one packet over the channel (mcapi_pktchan_send). The
// payload is copied; blocks while the peer's queue is full.
func (h *PktSendHandle) Send(data []byte, timeout Timeout) error {
	h.ep.mu.Lock()
	peer := h.ep.peer
	ok := h.ep.opened && h.ep.state == statePktSend
	h.ep.mu.Unlock()
	if !ok {
		return ErrChanNotOpen
	}
	if peer == nil {
		return ErrChanNotConnect
	}
	switch d := injectFault(FaultPkt, h.ep, peer, len(data)); d.Action {
	case FaultDrop:
		// The wire ate the frame; the sender sees success.
		return nil
	case FaultDup:
		buf := append([]byte(nil), data...)
		if err := peer.enqueue(message{data: buf}, timeout); err != nil {
			return err
		}
		dup := append([]byte(nil), data...)
		_ = peer.enqueue(message{data: dup}, TimeoutImmediate) // best-effort copy
		return nil
	}
	buf := append([]byte(nil), data...)
	return peer.enqueue(message{data: buf}, timeout)
}

// Recv receives the next packet (mcapi_pktchan_recv).
func (h *PktRecvHandle) Recv(timeout Timeout) ([]byte, error) {
	h.ep.mu.Lock()
	ok := h.ep.opened && h.ep.state == statePktRecv
	h.ep.mu.Unlock()
	if !ok {
		return nil, ErrChanNotOpen
	}
	m, err := h.ep.dequeue(timeout)
	if err != nil {
		return nil, err
	}
	return m.data, nil
}

// RecvI is the non-blocking packet receive (mcapi_pktchan_recv_i) with a
// request-level deadline: the returned Request completes with the next
// packet, with ErrTimeout once timeout elapses with nothing queued, or
// with ErrRequestCanceled when Cancel beats both. TimeoutInfinite waits
// for a packet or a Cancel indefinitely.
func (h *PktRecvHandle) RecvI(timeout Timeout) *Request {
	r := newRequest()
	go recvPoll(r, timeout, func(t Timeout) ([]byte, int, error) {
		data, err := h.Recv(t)
		return data, 0, err
	})
	return r
}

// Available reports queued packets on the receive side.
func (h *PktRecvHandle) Available() int { return h.ep.Available() }

// Close closes the send side (mcapi_pktchan_send_close_i).
func (h *PktSendHandle) Close() error { return closeHandle(h.ep) }

// Close closes the receive side (mcapi_pktchan_recv_close_i).
func (h *PktRecvHandle) Close() error { return closeHandle(h.ep) }

func closeHandle(ep *Endpoint) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.opened {
		return ErrChanNotOpen
	}
	ep.opened = false
	return nil
}

// ----- scalar channels -----

// ScalarSendHandle is the send side of an open scalar channel.
type ScalarSendHandle struct{ ep *Endpoint }

// ScalarRecvHandle is the receive side of an open scalar channel.
type ScalarRecvHandle struct{ ep *Endpoint }

// ScalarOpenSend opens the send side (mcapi_sclchan_send_open_i).
func ScalarOpenSend(ep *Endpoint) (*ScalarSendHandle, error) {
	if err := open(ep, stateScalarSend); err != nil {
		return nil, err
	}
	return &ScalarSendHandle{ep: ep}, nil
}

// ScalarOpenRecv opens the receive side (mcapi_sclchan_recv_open_i).
func ScalarOpenRecv(ep *Endpoint) (*ScalarRecvHandle, error) {
	if err := open(ep, stateScalarRecv); err != nil {
		return nil, err
	}
	return &ScalarRecvHandle{ep: ep}, nil
}

// Close closes the send side.
func (h *ScalarSendHandle) Close() error { return closeHandle(h.ep) }

// Close closes the receive side.
func (h *ScalarRecvHandle) Close() error { return closeHandle(h.ep) }

// send pushes one scalar of the given byte size.
func (h *ScalarSendHandle) send(v uint64, size int, timeout Timeout) error {
	h.ep.mu.Lock()
	peer := h.ep.peer
	ok := h.ep.opened && h.ep.state == stateScalarSend
	h.ep.mu.Unlock()
	if !ok {
		return ErrChanNotOpen
	}
	if peer == nil {
		return ErrChanNotConnect
	}
	return peer.enqueue(message{scalar: v, scalarSize: size}, timeout)
}

// recv pops one scalar, enforcing MCAPI's size-match rule: receiving a
// scalar with the wrong-width call is ErrChanTypeMatch.
func (h *ScalarRecvHandle) recv(size int, timeout Timeout) (uint64, error) {
	h.ep.mu.Lock()
	ok := h.ep.opened && h.ep.state == stateScalarRecv
	h.ep.mu.Unlock()
	if !ok {
		return 0, ErrChanNotOpen
	}
	m, err := h.ep.dequeue(timeout)
	if err != nil {
		return 0, err
	}
	if m.scalarSize != size {
		return 0, ErrChanTypeMatch
	}
	return m.scalar, nil
}

// SendUint64 sends a 64-bit scalar (mcapi_sclchan_send_uint64).
func (h *ScalarSendHandle) SendUint64(v uint64, timeout Timeout) error { return h.send(v, 8, timeout) }

// SendUint32 sends a 32-bit scalar.
func (h *ScalarSendHandle) SendUint32(v uint32, timeout Timeout) error {
	return h.send(uint64(v), 4, timeout)
}

// SendUint16 sends a 16-bit scalar.
func (h *ScalarSendHandle) SendUint16(v uint16, timeout Timeout) error {
	return h.send(uint64(v), 2, timeout)
}

// SendUint8 sends an 8-bit scalar.
func (h *ScalarSendHandle) SendUint8(v uint8, timeout Timeout) error {
	return h.send(uint64(v), 1, timeout)
}

// RecvUint64 receives a 64-bit scalar (mcapi_sclchan_recv_uint64).
func (h *ScalarRecvHandle) RecvUint64(timeout Timeout) (uint64, error) { return h.recv(8, timeout) }

// RecvUint32 receives a 32-bit scalar.
func (h *ScalarRecvHandle) RecvUint32(timeout Timeout) (uint32, error) {
	v, err := h.recv(4, timeout)
	return uint32(v), err
}

// RecvUint16 receives a 16-bit scalar.
func (h *ScalarRecvHandle) RecvUint16(timeout Timeout) (uint16, error) {
	v, err := h.recv(2, timeout)
	return uint16(v), err
}

// RecvUint8 receives an 8-bit scalar.
func (h *ScalarRecvHandle) RecvUint8(timeout Timeout) (uint8, error) {
	v, err := h.recv(1, timeout)
	return uint8(v), err
}
