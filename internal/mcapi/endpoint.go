package mcapi

import (
	"fmt"
	"sync"
	"time"

	"openmpmca/internal/syncq"
)

// EndpointAttributes configure an endpoint at creation.
type EndpointAttributes struct {
	// QueueDepth is the receive-queue capacity in messages/packets
	// (MCAPI_ENDPT_ATTR_NUM_RECV_BUFFERS); <= 0 selects
	// DefaultQueueDepth.
	QueueDepth int
}

// chanState tracks what a connection has turned the endpoint into.
type chanState int

const (
	stateFree chanState = iota
	statePktSend
	statePktRecv
	stateScalarSend
	stateScalarRecv
)

// message is one queued item: a connectionless message (with priority), a
// packet, or a scalar (with size tag).
type message struct {
	data       []byte
	priority   int
	scalar     uint64
	scalarSize int // bytes: 1, 2, 4, 8; 0 for byte payloads
}

// Endpoint is an MCAPI communication endpoint: the (domain, node, port)
// addressable queue all traffic lands in.
type Endpoint struct {
	node *Node
	port Port
	attr EndpointAttributes

	mu      sync.Mutex
	queues  [MaxPriority + 1][]message // priority-ordered receive queues
	queued  int
	state   chanState
	peer    *Endpoint // connected counterpart (both directions recorded)
	opened  bool
	deleted bool

	recvQ syncq.WaitQueue // waiters for data
	sendQ syncq.WaitQueue // waiters for queue space
}

func newEndpoint(n *Node, port Port, attr EndpointAttributes) *Endpoint {
	return &Endpoint{node: n, port: port, attr: attr}
}

// Node returns the owning node.
func (e *Endpoint) Node() *Node { return e.node }

// Port returns the endpoint's port.
func (e *Endpoint) Port() Port { return e.port }

func (e *Endpoint) String() string {
	return fmt.Sprintf("mcapi.Endpoint(d%d,n%d,p%d)", e.node.domain, e.node.id, e.port)
}

// Delete removes the endpoint (mcapi_endpoint_delete); blocked callers are
// woken with ErrClosed and a connected peer is disconnected.
func (e *Endpoint) Delete() error {
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return ErrEndpInvalid
	}
	e.deleted = true
	peer := e.peer
	e.peer = nil
	e.state = stateFree
	e.recvQ.Broadcast()
	e.sendQ.Broadcast()
	e.mu.Unlock()

	if peer != nil {
		peer.mu.Lock()
		if peer.peer == e {
			peer.peer = nil
			peer.state = stateFree
			peer.recvQ.Broadcast()
			peer.sendQ.Broadcast()
		}
		peer.mu.Unlock()
	}

	e.node.mu.Lock()
	delete(e.node.endpoints, e.port)
	e.node.mu.Unlock()
	return nil
}

// wait adapts syncq to MCAPI timeouts; callers hold e.mu.
func wait(q *syncq.WaitQueue, mu *sync.Mutex, timeout Timeout) Status {
	if timeout == TimeoutImmediate {
		return ErrTimeout
	}
	if q.Wait(mu, time.Duration(timeout), timeout == TimeoutInfinite) {
		return Success
	}
	return ErrTimeout
}

// enqueue appends a message at its priority, blocking while the queue is
// full. Callers must NOT hold e.mu.
func (e *Endpoint) enqueue(m message, timeout Timeout) error {
	if m.priority < 0 || m.priority > MaxPriority {
		return ErrPriority
	}
	e.mu.Lock()
	for {
		if e.deleted {
			e.mu.Unlock()
			return ErrEndpInvalid
		}
		if e.queued < e.attr.QueueDepth {
			e.queues[m.priority] = append(e.queues[m.priority], m)
			e.queued++
			e.recvQ.Signal()
			e.mu.Unlock()
			return nil
		}
		if st := wait(&e.sendQ, &e.mu, timeout); st != Success {
			e.mu.Unlock()
			return st
		}
	}
}

// dequeue removes the highest-priority oldest message, blocking while
// empty.
func (e *Endpoint) dequeue(timeout Timeout) (message, error) {
	e.mu.Lock()
	for {
		if e.deleted {
			e.mu.Unlock()
			return message{}, ErrEndpInvalid
		}
		for p := 0; p <= MaxPriority; p++ {
			if len(e.queues[p]) > 0 {
				m := e.queues[p][0]
				e.queues[p] = e.queues[p][1:]
				e.queued--
				e.sendQ.Signal()
				e.mu.Unlock()
				return m, nil
			}
		}
		if st := wait(&e.recvQ, &e.mu, timeout); st != Success {
			e.mu.Unlock()
			return message{}, st
		}
	}
}

// Available reports queued items (mcapi_msg_available /
// mcapi_pktchan_available).
func (e *Endpoint) Available() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queued
}

// EndpointAttribute selects an attribute for Attribute
// (mcapi_endpoint_get_attribute).
type EndpointAttribute int

const (
	// AttrQueueDepth is the receive-queue capacity
	// (MCAPI_ENDPT_ATTR_NUM_RECV_BUFFERS).
	AttrQueueDepth EndpointAttribute = iota
	// AttrQueued is the number of currently queued items
	// (MCAPI_ENDPT_ATTR_RECV_BUFFERS_AVAILABLE reports the complement).
	AttrQueued
	// AttrConnected reports 1 when the endpoint is bound into a channel
	// (MCAPI_ENDPT_ATTR_CHAN_TYPE != none).
	AttrConnected
)

// Attribute queries one endpoint attribute (mcapi_endpoint_get_attribute).
func (e *Endpoint) Attribute(a EndpointAttribute) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return 0, ErrEndpInvalid
	}
	switch a {
	case AttrQueueDepth:
		return e.attr.QueueDepth, nil
	case AttrQueued:
		return e.queued, nil
	case AttrConnected:
		if e.state != stateFree {
			return 1, nil
		}
		return 0, nil
	}
	return 0, ErrParameterInvalid
}

// ----- connectionless messages -----

// MsgSend sends data to endpoint `to` with the given priority
// (mcapi_msg_send). The payload is copied. Blocks while the destination
// queue is full, up to timeout.
func MsgSend(to *Endpoint, data []byte, priority int, timeout Timeout) error {
	if len(data) > MaxMsgSize {
		return ErrMemLimit
	}
	to.mu.Lock()
	st := to.state
	to.mu.Unlock()
	if st != stateFree {
		// Connected endpoints carry channel traffic only.
		return ErrChanConnected
	}
	switch d := injectFault(FaultMsg, nil, to, len(data)); d.Action {
	case FaultDrop:
		return nil
	case FaultDup:
		buf := append([]byte(nil), data...)
		if err := to.enqueue(message{data: buf, priority: priority}, timeout); err != nil {
			return err
		}
		dup := append([]byte(nil), data...)
		_ = to.enqueue(message{data: dup, priority: priority}, TimeoutImmediate)
		return nil
	}
	buf := append([]byte(nil), data...)
	return to.enqueue(message{data: buf, priority: priority}, timeout)
}

// MsgRecv receives the next message (highest priority first), blocking up
// to timeout (mcapi_msg_recv). It returns the payload and its priority.
func MsgRecv(from *Endpoint, timeout Timeout) ([]byte, int, error) {
	from.mu.Lock()
	st := from.state
	from.mu.Unlock()
	if st != stateFree {
		return nil, 0, ErrChanConnected
	}
	m, err := from.dequeue(timeout)
	if err != nil {
		return nil, 0, err
	}
	return m.data, m.priority, nil
}
