package mcapi_test

import (
	"fmt"

	"openmpmca/internal/mcapi"
)

// Connectionless messaging between two nodes: create endpoints, send with
// a priority, receive.
func Example() {
	sys := mcapi.NewSystem()
	sender, err := sys.Initialize(1, 1)
	if err != nil {
		panic(err)
	}
	receiver, err := sys.Initialize(1, 2)
	if err != nil {
		panic(err)
	}
	_, _ = sender, receiver

	inbox, err := receiver.CreateEndpoint(5, nil)
	if err != nil {
		panic(err)
	}
	// Senders resolve the destination by (domain, node, port).
	to, err := sys.GetEndpoint(1, 2, 5)
	if err != nil {
		panic(err)
	}
	if err := mcapi.MsgSend(to, []byte("hello embedded world"), 0, mcapi.TimeoutInfinite); err != nil {
		panic(err)
	}
	data, prio, err := mcapi.MsgRecv(inbox, mcapi.TimeoutInfinite)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (priority %d)\n", data, prio)
	// Output: hello embedded world (priority 0)
}

// A connected packet channel: unidirectional FIFO pipe between two
// endpoints.
func ExamplePktConnect() {
	sys := mcapi.NewSystem()
	a, _ := sys.Initialize(1, 1)
	b, _ := sys.Initialize(1, 2)
	out, _ := a.CreateEndpoint(1, nil)
	in, _ := b.CreateEndpoint(1, nil)

	if err := mcapi.PktConnect(out, in); err != nil {
		panic(err)
	}
	send, err := mcapi.PktOpenSend(out)
	if err != nil {
		panic(err)
	}
	recv, err := mcapi.PktOpenRecv(in)
	if err != nil {
		panic(err)
	}
	_ = send.Send([]byte("pkt-1"), mcapi.TimeoutInfinite)
	_ = send.Send([]byte("pkt-2"), mcapi.TimeoutInfinite)
	for i := 0; i < 2; i++ {
		pkt, _ := recv.Recv(mcapi.TimeoutInfinite)
		fmt.Println(string(pkt))
	}
	// Output:
	// pkt-1
	// pkt-2
}
