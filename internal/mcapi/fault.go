package mcapi

// Transport fault injection: a process-wide hook consulted on every
// packet-channel and connectionless-message send. The hook exists for
// the chaos subsystem (internal/chaos): campaigns install an injector
// that drops, duplicates or delays frames to prove the protocols above
// MCAPI — chunk retry/dedup in internal/offload, task deadlines and
// re-dispatch in internal/taskfabric, heartbeat grace in both — recover
// to byte-exact results. With no injector installed (the default) the
// hook is one atomic load on the send path.
//
// Faults model the wire, not the API: a dropped send still returns
// success to the caller, exactly as a lossy interconnect would ack a
// frame that never arrives. Duplicates are enqueued best-effort (a full
// peer queue drops the copy, never blocks the sender), and delays are
// served synchronously on the sender — a slow link applies
// backpressure and preserves FIFO ordering.

import (
	"sync/atomic"
	"time"
)

// FaultClass is the traffic class of a faultable send.
type FaultClass int

// Traffic classes the injector can distinguish.
const (
	// FaultPkt is a packet-channel send (PktSendHandle.Send) — task and
	// chunk descriptors, results, credits, yields.
	FaultPkt FaultClass = iota
	// FaultMsg is a connectionless message send (MsgSend) — heartbeat
	// pings and pongs, boot traffic.
	FaultMsg
	// FaultScalar is a scalar-channel send (reserved; no injection
	// point yet).
	FaultScalar
)

// FaultAction is the injector's verdict on one send.
type FaultAction int

// Verdicts.
const (
	FaultPass  FaultAction = iota // deliver normally
	FaultDrop                     // lose the frame; the send still reports success
	FaultDup                      // deliver, then enqueue a best-effort duplicate
	FaultDelay                    // sleep Delay on the sender, then deliver
)

// FaultTarget names one side of a transfer for the injector.
type FaultTarget struct {
	Domain int // MCAPI domain id
	Node   int // node id within the domain
	Port   int // endpoint port
}

// FaultDecision is the injector's answer: an action, plus the hold time
// when the action is FaultDelay.
type FaultDecision struct {
	Action FaultAction
	Delay  time.Duration
}

// FaultInjector decides the fate of one send. It runs on the sender's
// goroutine under no locks; it must be safe for concurrent use and
// should be fast — every send in the process consults it.
type FaultInjector func(class FaultClass, from, to FaultTarget, size int) FaultDecision

var faultInjector atomic.Pointer[FaultInjector]

// SetFaultInjector installs (or, with nil, removes) the process-wide
// fault injector. Intended for tests and the chaos runner; production
// paths leave it unset.
func SetFaultInjector(f FaultInjector) {
	if f == nil {
		faultInjector.Store(nil)
		return
	}
	faultInjector.Store(&f)
}

// faultTargetOf snapshots an endpoint's identity. A nil endpoint (no
// peer resolved yet) is reported as {-1,-1,-1}.
func faultTargetOf(ep *Endpoint) FaultTarget {
	if ep == nil {
		return FaultTarget{Domain: -1, Node: -1, Port: -1}
	}
	return FaultTarget{Domain: int(ep.node.domain), Node: int(ep.node.id), Port: int(ep.port)}
}

// injectFault consults the installed injector for one send. It returns
// the decision to apply; with no injector installed it returns
// FaultPass without allocating.
func injectFault(class FaultClass, from, to *Endpoint, size int) FaultDecision {
	p := faultInjector.Load()
	if p == nil {
		return FaultDecision{}
	}
	d := (*p)(class, faultTargetOf(from), faultTargetOf(to), size)
	if d.Action == FaultDelay && d.Delay > 0 {
		time.Sleep(d.Delay)
		// The frame was only held, not harmed: deliver it normally.
		d.Action = FaultPass
	}
	return d
}
