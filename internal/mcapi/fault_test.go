package mcapi

import (
	"bytes"
	"testing"
	"time"
)

// pktPair builds a connected, opened packet channel between two nodes.
func pktPair(t *testing.T) (*PktSendHandle, *PktRecvHandle) {
	t.Helper()
	_, e1, e2 := twoEndpoints(t)
	if err := PktConnect(e1, e2); err != nil {
		t.Fatal(err)
	}
	tx, err := PktOpenSend(e1)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := PktOpenRecv(e2)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestFaultInjectorDropEatsFrame(t *testing.T) {
	tx, rx := pktPair(t)
	SetFaultInjector(func(class FaultClass, from, to FaultTarget, size int) FaultDecision {
		if class != FaultPkt {
			t.Errorf("class = %v, want FaultPkt", class)
		}
		if from.Domain != 1 || to.Domain != 1 || size != 3 {
			t.Errorf("targets/size = %+v -> %+v / %d", from, to, size)
		}
		return FaultDecision{Action: FaultDrop}
	})
	defer SetFaultInjector(nil)

	// The sender sees success — the wire ate the frame.
	if err := tx.Send([]byte("abc"), TimeoutImmediate); err != nil {
		t.Fatalf("dropped send errored: %v", err)
	}
	if n := rx.Available(); n != 0 {
		t.Errorf("%d frames delivered, want 0", n)
	}
}

func TestFaultInjectorDupDeliversTwice(t *testing.T) {
	tx, rx := pktPair(t)
	SetFaultInjector(func(_ FaultClass, _, _ FaultTarget, _ int) FaultDecision {
		return FaultDecision{Action: FaultDup}
	})
	defer SetFaultInjector(nil)

	if err := tx.Send([]byte("dup"), TimeoutImmediate); err != nil {
		t.Fatal(err)
	}
	if n := rx.Available(); n != 2 {
		t.Fatalf("%d frames queued, want 2", n)
	}
	for i := 0; i < 2; i++ {
		got, err := rx.Recv(TimeoutImmediate)
		if err != nil || !bytes.Equal(got, []byte("dup")) {
			t.Errorf("copy %d = %q/%v", i, got, err)
		}
	}
}

func TestFaultInjectorDelayHoldsSender(t *testing.T) {
	tx, rx := pktPair(t)
	const hold = 20 * time.Millisecond
	SetFaultInjector(func(_ FaultClass, _, _ FaultTarget, _ int) FaultDecision {
		return FaultDecision{Action: FaultDelay, Delay: hold}
	})
	defer SetFaultInjector(nil)

	start := time.Now()
	if err := tx.Send([]byte("slow"), TimeoutImmediate); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < hold {
		t.Errorf("delayed send returned after %v, want >= %v", took, hold)
	}
	// The frame is delayed, not lost: FIFO delivery still happens.
	got, err := rx.Recv(TimeoutImmediate)
	if err != nil || !bytes.Equal(got, []byte("slow")) {
		t.Errorf("recv = %q/%v", got, err)
	}
}

func TestFaultInjectorMsgPathAndClear(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	_ = e1
	calls := 0
	SetFaultInjector(func(class FaultClass, from, _ FaultTarget, _ int) FaultDecision {
		calls++
		if class != FaultMsg {
			t.Errorf("class = %v, want FaultMsg", class)
		}
		if from.Domain != -1 {
			t.Errorf("connectionless send carries no source, got %+v", from)
		}
		return FaultDecision{Action: FaultDrop}
	})
	if err := MsgSend(e2, []byte("m"), 0, TimeoutImmediate); err != nil {
		t.Fatal(err)
	}
	if e2.Available() != 0 {
		t.Error("dropped message was delivered")
	}

	// Clearing the injector restores normal delivery.
	SetFaultInjector(nil)
	if err := MsgSend(e2, []byte("m"), 0, TimeoutImmediate); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || e2.Available() != 1 {
		t.Errorf("calls=%d queued=%d after clear, want 1/1", calls, e2.Available())
	}
}
