// Package mcapi implements the Multicore Association Communication API
// (MCAPI) semantics in pure Go: port-addressed endpoints on nodes,
// connectionless prioritized messages, connected packet channels and
// connected scalar channels, with blocking and non-blocking variants.
//
// The paper limits itself to MRAPI and names MCAPI as the vehicle for its
// future heterogeneous work (§7, and §4A's plan to drive the hypervisor
// with it); this package completes that surface so the router example can
// demonstrate inter-node communication on the modeled platform.
package mcapi

import (
	"time"
)

// Status mirrors mcapi_status_t; failing calls return a Status as their
// error. Success is never returned as an error.
type Status uint32

// Status codes, following MCAPI 2.0 naming.
const (
	Success             Status = iota
	ErrNodeInitFailed          // node already initialized in its domain
	ErrNodeNotInit             // node not initialized / finalized
	ErrEndpExists              // port already has an endpoint
	ErrEndpInvalid             // no such endpoint or endpoint deleted
	ErrEndpLimit               // too many endpoints on the node
	ErrPortInvalid             // port number out of range
	ErrPriority                // priority out of range
	ErrTruncated               // receive buffer smaller than the message
	ErrMemLimit                // queue full (non-blocking) or message too large
	ErrChanOpen                // operation illegal while the channel is open
	ErrChanNotOpen             // channel handle not open
	ErrChanConnected           // endpoint already connected
	ErrChanNotConnect          // endpoints not connected
	ErrChanDirection           // wrong-direction handle for the operation
	ErrChanTypeMatch           // scalar size mismatch or packet/scalar confusion
	ErrTimeout                 // blocking call timed out
	ErrRequestInvalid          // unknown request
	ErrRequestCanceled         // request canceled
	ErrClosed                  // endpoint or channel torn down under a waiter
	ErrParameterInvalid        // bad argument (unknown attribute, ...)
)

var statusNames = map[Status]string{
	Success:             "MCAPI_SUCCESS",
	ErrNodeInitFailed:   "MCAPI_ERR_NODE_INITFAILED",
	ErrNodeNotInit:      "MCAPI_ERR_NODE_NOTINIT",
	ErrEndpExists:       "MCAPI_ERR_ENDP_EXISTS",
	ErrEndpInvalid:      "MCAPI_ERR_ENDP_INVALID",
	ErrEndpLimit:        "MCAPI_ERR_ENDP_LIMIT",
	ErrPortInvalid:      "MCAPI_ERR_PORT_INVALID",
	ErrPriority:         "MCAPI_ERR_PRIORITY",
	ErrTruncated:        "MCAPI_ERR_MSG_TRUNCATED",
	ErrMemLimit:         "MCAPI_ERR_MEM_LIMIT",
	ErrChanOpen:         "MCAPI_ERR_CHAN_OPEN",
	ErrChanNotOpen:      "MCAPI_ERR_CHAN_NOTOPEN",
	ErrChanConnected:    "MCAPI_ERR_CHAN_CONNECTED",
	ErrChanNotConnect:   "MCAPI_ERR_CHAN_NOTCONNECTED",
	ErrChanDirection:    "MCAPI_ERR_CHAN_DIRECTION",
	ErrChanTypeMatch:    "MCAPI_ERR_CHAN_TYPE",
	ErrTimeout:          "MCAPI_TIMEOUT",
	ErrRequestInvalid:   "MCAPI_ERR_REQUEST_INVALID",
	ErrRequestCanceled:  "MCAPI_ERR_REQUEST_CANCELED",
	ErrClosed:           "MCAPI_ERR_CLOSED",
	ErrParameterInvalid: "MCAPI_ERR_PARAMETER",
}

// Error implements the error interface.
func (s Status) Error() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return "MCAPI_STATUS_UNKNOWN"
}

// String returns the spec-style name.
func (s Status) String() string { return s.Error() }

// Timeout expresses how long a blocking MCAPI call may wait.
type Timeout time.Duration

const (
	// TimeoutInfinite blocks indefinitely (MCA_INFINITE).
	TimeoutInfinite Timeout = -1
	// TimeoutImmediate makes the call non-blocking.
	TimeoutImmediate Timeout = 0
)

// Priorities run 0 (highest) through MaxPriority.
const MaxPriority = 3

// MaxMsgSize bounds one connectionless message, mirroring
// MCAPI_MAX_MSG_SIZE.
const MaxMsgSize = 1 << 20

// DefaultQueueDepth is an endpoint's receive-queue capacity (messages or
// packets) unless overridden by EndpointAttributes.
const DefaultQueueDepth = 64
