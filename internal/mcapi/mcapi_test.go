package mcapi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func twoEndpoints(t *testing.T) (*System, *Endpoint, *Endpoint) {
	t.Helper()
	sys := NewSystem()
	n1, err := sys.Initialize(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := sys.Initialize(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := n1.CreateEndpoint(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := n2.CreateEndpoint(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys, e1, e2
}

func TestNodeLifecycle(t *testing.T) {
	sys := NewSystem()
	n, err := sys.Initialize(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n.Domain() != 3 || n.ID() != 7 {
		t.Errorf("ids = %d/%d", n.Domain(), n.ID())
	}
	if _, err := sys.Initialize(3, 7); !errors.Is(err, ErrNodeInitFailed) {
		t.Errorf("duplicate init = %v", err)
	}
	ep, err := n.CreateEndpoint(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); !errors.Is(err, ErrNodeNotInit) {
		t.Errorf("double finalize = %v", err)
	}
	// Finalize deletes endpoints.
	if _, err := sys.GetEndpoint(3, 7, 1); !errors.Is(err, ErrEndpInvalid) {
		t.Errorf("endpoint survived finalize: %v", err)
	}
	if err := MsgSend(ep, []byte("x"), 0, TimeoutImmediate); !errors.Is(err, ErrEndpInvalid) {
		t.Errorf("send to deleted endpoint = %v", err)
	}
	// Node id reusable.
	if _, err := sys.Initialize(3, 7); err != nil {
		t.Errorf("re-init after finalize: %v", err)
	}
}

func TestEndpointCreation(t *testing.T) {
	sys := NewSystem()
	n, _ := sys.Initialize(1, 1)
	if _, err := n.CreateEndpoint(5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CreateEndpoint(5, nil); !errors.Is(err, ErrEndpExists) {
		t.Errorf("duplicate port = %v", err)
	}
	// PortAny picks unused ports.
	a, err := n.CreateEndpoint(PortAny, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.CreateEndpoint(PortAny, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Port() == b.Port() || a.Port() == 5 || b.Port() == 5 {
		t.Errorf("PortAny ports = %d, %d", a.Port(), b.Port())
	}
	got, err := sys.GetEndpoint(1, 1, a.Port())
	if err != nil || got != a {
		t.Errorf("GetEndpoint = %v, %v", got, err)
	}
	if _, err := sys.GetEndpoint(9, 9, 0); !errors.Is(err, ErrEndpInvalid) {
		t.Errorf("unknown endpoint = %v", err)
	}
}

func TestMsgRoundTrip(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	_ = e1
	if err := MsgSend(e2, []byte("hello"), 1, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if e2.Available() != 1 {
		t.Errorf("Available = %d", e2.Available())
	}
	data, prio, err := MsgRecv(e2, TimeoutInfinite)
	if err != nil || string(data) != "hello" || prio != 1 {
		t.Errorf("recv = %q, %d, %v", data, prio, err)
	}
}

func TestMsgPriorityOrdering(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	_ = MsgSend(e2, []byte("low"), 3, TimeoutInfinite)
	_ = MsgSend(e2, []byte("mid"), 1, TimeoutInfinite)
	_ = MsgSend(e2, []byte("high"), 0, TimeoutInfinite)
	_ = MsgSend(e2, []byte("mid2"), 1, TimeoutInfinite)
	want := []string{"high", "mid", "mid2", "low"}
	for _, w := range want {
		data, _, err := MsgRecv(e2, TimeoutImmediate)
		if err != nil || string(data) != w {
			t.Fatalf("recv = %q, %v, want %q", data, err, w)
		}
	}
}

func TestMsgValidation(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	if err := MsgSend(e2, []byte("x"), 9, TimeoutInfinite); !errors.Is(err, ErrPriority) {
		t.Errorf("bad priority = %v", err)
	}
	if err := MsgSend(e2, make([]byte, MaxMsgSize+1), 0, TimeoutInfinite); !errors.Is(err, ErrMemLimit) {
		t.Errorf("oversized = %v", err)
	}
	if _, _, err := MsgRecv(e2, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Errorf("empty recv = %v", err)
	}
}

func TestMsgBackpressure(t *testing.T) {
	sys := NewSystem()
	n, _ := sys.Initialize(1, 1)
	ep, _ := n.CreateEndpoint(1, &EndpointAttributes{QueueDepth: 2})
	_ = MsgSend(ep, []byte("a"), 0, TimeoutInfinite)
	_ = MsgSend(ep, []byte("b"), 0, TimeoutInfinite)
	if err := MsgSend(ep, []byte("c"), 0, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Fatalf("full queue send = %v", err)
	}
	// A blocked sender proceeds once the receiver drains.
	done := make(chan error, 1)
	go func() { done <- MsgSend(ep, []byte("c"), 0, TimeoutInfinite) }()
	time.Sleep(5 * time.Millisecond)
	if _, _, err := MsgRecv(ep, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unblocked send: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sender never unblocked")
	}
}

func TestMsgSendCopiesPayload(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	buf := []byte("immutable")
	_ = MsgSend(e2, buf, 0, TimeoutInfinite)
	buf[0] = 'X'
	data, _, _ := MsgRecv(e2, TimeoutInfinite)
	if string(data) != "immutable" {
		t.Errorf("payload aliased sender buffer: %q", data)
	}
}

func TestPktChannel(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	if err := PktConnect(e1, e2); err != nil {
		t.Fatal(err)
	}
	// Connected endpoints refuse connectionless traffic.
	if err := MsgSend(e2, []byte("x"), 0, TimeoutImmediate); !errors.Is(err, ErrChanConnected) {
		t.Errorf("msg on connected endpoint = %v", err)
	}
	send, err := PktOpenSend(e1)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := PktOpenRecv(e2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := send.Send([]byte{byte(i), byte(i + 1)}, TimeoutInfinite); err != nil {
			t.Fatal(err)
		}
	}
	if recv.Available() != 10 {
		t.Errorf("Available = %d", recv.Available())
	}
	for i := 0; i < 10; i++ {
		data, err := recv.Recv(TimeoutInfinite)
		if err != nil || !bytes.Equal(data, []byte{byte(i), byte(i + 1)}) {
			t.Fatalf("pkt %d = %v, %v", i, data, err)
		}
	}
	if err := send.Close(); err != nil {
		t.Fatal(err)
	}
	if err := send.Send([]byte("x"), TimeoutInfinite); !errors.Is(err, ErrChanNotOpen) {
		t.Errorf("send after close = %v", err)
	}
}

func TestPktConnectValidation(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	if err := PktConnect(e1, e1); !errors.Is(err, ErrChanConnected) {
		t.Errorf("self connect = %v", err)
	}
	if _, err := PktOpenSend(e1); !errors.Is(err, ErrChanNotConnect) {
		t.Errorf("open unconnected = %v", err)
	}
	if err := PktConnect(e1, e2); err != nil {
		t.Fatal(err)
	}
	if err := PktConnect(e1, e2); !errors.Is(err, ErrChanConnected) {
		t.Errorf("double connect = %v", err)
	}
	// Wrong direction opens.
	if _, err := PktOpenRecv(e1); !errors.Is(err, ErrChanDirection) {
		t.Errorf("recv-open on send side = %v", err)
	}
	if _, err := PktOpenSend(e2); !errors.Is(err, ErrChanDirection) {
		t.Errorf("send-open on recv side = %v", err)
	}
	// Double open.
	if _, err := PktOpenSend(e1); err != nil {
		t.Fatal(err)
	}
	if _, err := PktOpenSend(e1); !errors.Is(err, ErrChanOpen) {
		t.Errorf("double open = %v", err)
	}
}

func TestPktConnectRefusesPendingMessages(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	_ = MsgSend(e2, []byte("pending"), 0, TimeoutInfinite)
	if err := PktConnect(e1, e2); !errors.Is(err, ErrChanOpen) {
		t.Errorf("connect with queued messages = %v", err)
	}
}

func TestScalarChannelSizeMatching(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	if err := ScalarConnect(e1, e2); err != nil {
		t.Fatal(err)
	}
	send, err := ScalarOpenSend(e1)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ScalarOpenRecv(e2)
	if err != nil {
		t.Fatal(err)
	}
	if err := send.SendUint32(0xDEADBEEF, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	// Wrong-width receive is a type error (and consumes the scalar, per
	// MCAPI).
	if _, err := recv.RecvUint64(TimeoutInfinite); !errors.Is(err, ErrChanTypeMatch) {
		t.Errorf("mismatched recv = %v", err)
	}
	_ = send.SendUint64(42, TimeoutInfinite)
	v, err := recv.RecvUint64(TimeoutInfinite)
	if err != nil || v != 42 {
		t.Errorf("recv64 = %d, %v", v, err)
	}
	_ = send.SendUint8(7, TimeoutInfinite)
	b, err := recv.RecvUint8(TimeoutInfinite)
	if err != nil || b != 7 {
		t.Errorf("recv8 = %d, %v", b, err)
	}
	_ = send.SendUint16(65535, TimeoutInfinite)
	w, err := recv.RecvUint16(TimeoutInfinite)
	if err != nil || w != 65535 {
		t.Errorf("recv16 = %d, %v", w, err)
	}
}

func TestDeleteDisconnectsPeer(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	_ = PktConnect(e1, e2)
	send, _ := PktOpenSend(e1)
	if err := e2.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := send.Send([]byte("x"), TimeoutImmediate); err == nil {
		t.Error("send to deleted peer succeeded")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	sys := NewSystem()
	n, _ := sys.Initialize(1, 1)
	ep, _ := n.CreateEndpoint(1, &EndpointAttributes{QueueDepth: 8})
	const producers, perProducer = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := MsgSend(ep, []byte(fmt.Sprintf("%d:%d", p, i)), 0, TimeoutInfinite); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(p)
	}
	got := make(map[string]bool)
	var mu sync.Mutex
	var rg sync.WaitGroup
	for c := 0; c < 2; c++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				data, _, err := MsgRecv(ep, Timeout(200*time.Millisecond))
				if err != nil {
					return
				}
				mu.Lock()
				got[string(data)] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	if len(got) != producers*perProducer {
		t.Errorf("received %d unique messages, want %d", len(got), producers*perProducer)
	}
}

func TestRequestSendRecv(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	recvReq := MsgRecvI(e2)
	if done, _ := recvReq.Test(); done {
		t.Error("recv request done before any send")
	}
	sendReq := MsgSendI(e2, []byte("async"), 2)
	if err := sendReq.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if err := recvReq.Wait(Timeout(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	data, prio, err := recvReq.Payload()
	if err != nil || string(data) != "async" || prio != 2 {
		t.Errorf("payload = %q, %d, %v", data, prio, err)
	}
	// Completed requests cannot be canceled.
	if err := recvReq.Cancel(); !errors.Is(err, ErrRequestInvalid) {
		t.Errorf("cancel done request = %v", err)
	}
}

func TestRequestCancel(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	req := MsgRecvI(e2)
	if err := req.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(TimeoutInfinite); !errors.Is(err, ErrRequestCanceled) {
		t.Errorf("wait on canceled = %v", err)
	}
	if _, _, err := req.Payload(); !errors.Is(err, ErrRequestCanceled) {
		t.Errorf("payload of canceled = %v", err)
	}
}

func TestRequestWaitTimeout(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	req := MsgRecvI(e2)
	if err := req.Wait(Timeout(10 * time.Millisecond)); !errors.Is(err, ErrTimeout) {
		t.Errorf("wait = %v, want ErrTimeout", err)
	}
	_ = req.Cancel()
}

func TestStatusStrings(t *testing.T) {
	if ErrChanDirection.Error() != "MCAPI_ERR_CHAN_DIRECTION" {
		t.Error("status name wrong")
	}
	if Status(999).Error() != "MCAPI_STATUS_UNKNOWN" {
		t.Error("unknown status name wrong")
	}
}

func TestWaitAny(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	slow := MsgRecvI(e2) // completes only when a message arrives
	fast := MsgSendI(e2, []byte("x"), 0)
	idx, err := WaitAny([]*Request{slow, fast}, Timeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Either could win (the send completes the recv too), but SOME index
	// must come back and that request must be done.
	if done, _ := []*Request{slow, fast}[idx].Test(); !done {
		t.Errorf("WaitAny returned index %d of an unfinished request", idx)
	}
	if err := slow.Wait(Timeout(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAnyTimeout(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	pending := MsgRecvI(e2)
	defer pending.Cancel()
	if _, err := WaitAny([]*Request{pending}, Timeout(10*time.Millisecond)); !errors.Is(err, ErrTimeout) {
		t.Errorf("WaitAny = %v, want ErrTimeout", err)
	}
	if _, err := WaitAny(nil, TimeoutImmediate); !errors.Is(err, ErrRequestInvalid) {
		t.Errorf("empty WaitAny = %v, want ErrRequestInvalid", err)
	}
}

func TestWaitAnyFastPath(t *testing.T) {
	_, _, e2 := twoEndpoints(t)
	done := MsgSendI(e2, []byte("y"), 0)
	if err := done.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	idx, err := WaitAny([]*Request{done}, TimeoutImmediate)
	if err != nil || idx != 0 {
		t.Errorf("fast path = %d, %v", idx, err)
	}
}

func TestEndpointAttributes(t *testing.T) {
	_, e1, e2 := twoEndpoints(t)
	if got, err := e2.Attribute(AttrQueueDepth); err != nil || got != DefaultQueueDepth {
		t.Errorf("queue depth = %d, %v", got, err)
	}
	_ = MsgSend(e2, []byte("x"), 0, TimeoutInfinite)
	if got, _ := e2.Attribute(AttrQueued); got != 1 {
		t.Errorf("queued = %d, want 1", got)
	}
	if got, _ := e1.Attribute(AttrConnected); got != 0 {
		t.Errorf("connected = %d, want 0", got)
	}
	// Drain before connecting (pending traffic blocks connects).
	_, _, _ = MsgRecv(e2, TimeoutImmediate)
	if err := PktConnect(e1, e2); err != nil {
		t.Fatal(err)
	}
	if got, _ := e1.Attribute(AttrConnected); got != 1 {
		t.Errorf("connected after PktConnect = %d, want 1", got)
	}
	if _, err := e1.Attribute(EndpointAttribute(99)); !errors.Is(err, ErrParameterInvalid) {
		t.Errorf("unknown attribute = %v", err)
	}
	_ = e1.Delete()
	if _, err := e1.Attribute(AttrQueued); !errors.Is(err, ErrEndpInvalid) {
		t.Errorf("attribute of deleted = %v", err)
	}
}

func TestGetEndpointWait(t *testing.T) {
	sys := NewSystem()
	n, _ := sys.Initialize(1, 1)
	// Immediate: not there yet.
	if _, err := sys.GetEndpointWait(1, 1, 9, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Errorf("immediate wait = %v", err)
	}
	// The endpoint appears while a getter waits.
	got := make(chan error, 1)
	go func() {
		_, err := sys.GetEndpointWait(1, 1, 9, Timeout(2*time.Second))
		got <- err
	}()
	time.Sleep(3 * time.Millisecond)
	if _, err := n.CreateEndpoint(9, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiting get: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("GetEndpointWait never resolved")
	}
	// Bounded wait on a never-created endpoint times out.
	if _, err := sys.GetEndpointWait(1, 1, 99, Timeout(5*time.Millisecond)); !errors.Is(err, ErrTimeout) {
		t.Errorf("bounded wait = %v", err)
	}
}
