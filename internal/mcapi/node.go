package mcapi

import (
	"fmt"
	"sync"
	"time"
)

// DomainID and NodeID address MCAPI nodes; Port addresses an endpoint on
// a node.
type (
	DomainID uint32
	NodeID   uint32
	Port     uint32
)

// PortAny asks CreateEndpoint to pick an unused port
// (MCAPI_PORT_ANY).
const PortAny Port = ^Port(0)

// maxEndpointsPerNode mirrors MCAPI_MAX_ENDPOINTS.
const maxEndpointsPerNode = 256

// System is an MCAPI universe: the registry endpoint lookups resolve
// against.
type System struct {
	mu    sync.RWMutex
	nodes map[[2]uint32]*Node // (domain, node) -> Node
}

// NewSystem creates an empty MCAPI universe.
func NewSystem() *System {
	return &System{nodes: make(map[[2]uint32]*Node)}
}

// Node is an MCAPI node: an independent unit of execution owning
// endpoints.
type Node struct {
	sys    *System
	domain DomainID
	id     NodeID

	mu        sync.Mutex
	endpoints map[Port]*Endpoint
	nextPort  Port
	alive     bool
}

// Initialize registers node (domain, id) in the system
// (mcapi_initialize).
func (s *System) Initialize(domain DomainID, id NodeID) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := [2]uint32{uint32(domain), uint32(id)}
	if _, dup := s.nodes[key]; dup {
		return nil, ErrNodeInitFailed
	}
	n := &Node{
		sys:       s,
		domain:    domain,
		id:        id,
		endpoints: make(map[Port]*Endpoint),
		alive:     true,
	}
	s.nodes[key] = n
	return n, nil
}

// Finalize tears the node down, deleting its endpoints
// (mcapi_finalize).
func (n *Node) Finalize() error {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return ErrNodeNotInit
	}
	n.alive = false
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()

	for _, ep := range eps {
		_ = ep.Delete()
	}

	n.sys.mu.Lock()
	delete(n.sys.nodes, [2]uint32{uint32(n.domain), uint32(n.id)})
	n.sys.mu.Unlock()
	return nil
}

// Domain returns the node's domain ID (mcapi_domain_id_get).
func (n *Node) Domain() DomainID { return n.domain }

// ID returns the node ID (mcapi_node_id_get).
func (n *Node) ID() NodeID { return n.id }

func (n *Node) String() string {
	return fmt.Sprintf("mcapi.Node(d%d,n%d)", n.domain, n.id)
}

// CreateEndpoint creates an endpoint on the given port, or on a fresh
// port with PortAny (mcapi_endpoint_create). attrs may be nil.
func (n *Node) CreateEndpoint(port Port, attrs *EndpointAttributes) (*Endpoint, error) {
	a := EndpointAttributes{QueueDepth: DefaultQueueDepth}
	if attrs != nil {
		a = *attrs
		if a.QueueDepth <= 0 {
			a.QueueDepth = DefaultQueueDepth
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return nil, ErrNodeNotInit
	}
	if len(n.endpoints) >= maxEndpointsPerNode {
		return nil, ErrEndpLimit
	}
	if port == PortAny {
		for {
			if _, used := n.endpoints[n.nextPort]; !used {
				port = n.nextPort
				n.nextPort++
				break
			}
			n.nextPort++
		}
	} else if _, dup := n.endpoints[port]; dup {
		return nil, ErrEndpExists
	}
	ep := newEndpoint(n, port, a)
	n.endpoints[port] = ep
	return ep, nil
}

// GetEndpoint resolves (domain, node, port) to an endpoint
// (mcapi_endpoint_get with an immediate timeout).
func (s *System) GetEndpoint(domain DomainID, node NodeID, port Port) (*Endpoint, error) {
	s.mu.RLock()
	n, ok := s.nodes[[2]uint32{uint32(domain), uint32(node)}]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrEndpInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.endpoints[port]
	if !ok {
		return nil, ErrEndpInvalid
	}
	return ep, nil
}

// endpointPollInterval paces GetEndpointWait's retries.
const endpointPollInterval = 500 * time.Microsecond

// GetEndpointWait blocks until (domain, node, port) exists or timeout
// elapses — the blocking form of mcapi_endpoint_get that real MCAPI
// programs use to ride out startup ordering (a receiver may create its
// endpoint after the sender asks for it).
func (s *System) GetEndpointWait(domain DomainID, node NodeID, port Port, timeout Timeout) (*Endpoint, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(time.Duration(timeout))
		defer t.Stop()
		deadline = t.C
	}
	for {
		if ep, err := s.GetEndpoint(domain, node, port); err == nil {
			return ep, nil
		}
		if timeout == TimeoutImmediate {
			return nil, ErrTimeout
		}
		tick := time.NewTimer(endpointPollInterval)
		select {
		case <-tick.C:
		case <-deadline:
			tick.Stop()
			return nil, ErrTimeout
		}
	}
}
