package mcapi

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: a packet channel is a faithful FIFO — any sequence of
// payloads is received intact and in order.
func TestPropPktChannelFIFO(t *testing.T) {
	sys := NewSystem()
	n1, _ := sys.Initialize(1, 1)
	n2, _ := sys.Initialize(1, 2)
	nextPort := Port(100)
	f := func(payloads [][]byte) bool {
		if len(payloads) > 32 {
			payloads = payloads[:32]
		}
		out, err := n1.CreateEndpoint(nextPort, &EndpointAttributes{QueueDepth: 64})
		if err != nil {
			return false
		}
		in, err := n2.CreateEndpoint(nextPort, &EndpointAttributes{QueueDepth: 64})
		nextPort++
		if err != nil {
			return false
		}
		if err := PktConnect(out, in); err != nil {
			return false
		}
		send, err := PktOpenSend(out)
		if err != nil {
			return false
		}
		recv, err := PktOpenRecv(in)
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if err := send.Send(p, TimeoutInfinite); err != nil {
				return false
			}
		}
		for _, want := range payloads {
			got, err := recv.Recv(TimeoutImmediate)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return recv.Available() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: messages of mixed priorities are delivered highest-priority
// first and FIFO within a priority, for any interleaving of priorities.
func TestPropMsgPriorityOrder(t *testing.T) {
	sys := NewSystem()
	n, _ := sys.Initialize(1, 1)
	nextPort := Port(0)
	f := func(prios []uint8) bool {
		if len(prios) > 40 {
			prios = prios[:40]
		}
		ep, err := n.CreateEndpoint(nextPort, &EndpointAttributes{QueueDepth: 64})
		nextPort++
		if err != nil {
			return false
		}
		// Send tagged messages.
		for seq, p8 := range prios {
			prio := int(p8) % (MaxPriority + 1)
			if err := MsgSend(ep, []byte{byte(prio), byte(seq)}, prio, TimeoutInfinite); err != nil {
				return false
			}
		}
		// Receive and check: priorities non-decreasing; within equal
		// priority, sequence ascending.
		lastPrio := -1
		lastSeqAt := map[int]int{}
		for range prios {
			data, prio, err := MsgRecv(ep, TimeoutImmediate)
			if err != nil || int(data[0]) != prio {
				return false
			}
			if prio < lastPrio {
				return false
			}
			lastPrio = prio
			seq := int(data[1])
			if prev, ok := lastSeqAt[prio]; ok && seq <= prev {
				return false
			}
			lastSeqAt[prio] = seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
