package mcapi

import (
	"sync"
	"time"
)

// Request is a handle to a non-blocking MCAPI operation (mcapi_request_t):
// Test polls it, Wait blocks on it, Cancel attempts to abort it.
type Request struct {
	mu       sync.Mutex
	done     bool
	canceled bool
	err      error
	data     []byte
	priority int
	doneCh   chan struct{}
	cancelCh chan struct{}
}

func newRequest() *Request {
	return &Request{doneCh: make(chan struct{}), cancelCh: make(chan struct{})}
}

// complete records the operation outcome unless the request was canceled
// first.
func (r *Request) complete(data []byte, priority int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	r.data = data
	r.priority = priority
	r.err = err
	close(r.doneCh)
}

// Test reports whether the operation finished (mcapi_test); when it has,
// the second result carries the operation error, if any.
func (r *Request) Test() (finished bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.err
}

// Wait blocks up to timeout for completion (mcapi_wait).
func (r *Request) Wait(timeout Timeout) error {
	if timeout == TimeoutInfinite {
		<-r.doneCh
	} else {
		t := time.NewTimer(time.Duration(timeout))
		defer t.Stop()
		select {
		case <-r.doneCh:
		case <-t.C:
			return ErrTimeout
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Cancel aborts a pending operation (mcapi_cancel). Completed requests
// cannot be canceled.
func (r *Request) Cancel() error {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return ErrRequestInvalid
	}
	r.done = true
	r.canceled = true
	r.err = ErrRequestCanceled
	close(r.doneCh)
	close(r.cancelCh)
	r.mu.Unlock()
	return nil
}

// Payload returns a completed receive's data and priority.
func (r *Request) Payload() ([]byte, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done {
		return nil, 0, ErrRequestInvalid
	}
	return r.data, r.priority, r.err
}

// WaitAny blocks until one of the requests completes and returns its
// index (mcapi_wait_any). With an empty set it returns ErrRequestInvalid.
func WaitAny(reqs []*Request, timeout Timeout) (int, error) {
	if len(reqs) == 0 {
		return -1, ErrRequestInvalid
	}
	// Fast path: something already done.
	for i, r := range reqs {
		if done, _ := r.Test(); done {
			return i, nil
		}
	}
	winner := make(chan int, len(reqs))
	for i, r := range reqs {
		i, r := i, r
		go func() {
			<-r.doneCh
			winner <- i
		}()
	}
	if timeout == TimeoutInfinite {
		return <-winner, nil
	}
	t := time.NewTimer(time.Duration(timeout))
	defer t.Stop()
	select {
	case i := <-winner:
		return i, nil
	case <-t.C:
		return -1, ErrTimeout
	}
}

// MsgSendI is the non-blocking message send (mcapi_msg_send_i): it
// returns immediately with a Request that completes when the message is
// queued at the destination.
func MsgSendI(to *Endpoint, data []byte, priority int) *Request {
	r := newRequest()
	buf := append([]byte(nil), data...)
	go func() {
		err := MsgSend(to, buf, priority, TimeoutInfinite)
		r.complete(nil, priority, err)
	}()
	return r
}

// recvPollSlice paces the cancellation checks of deadline-aware receive
// requests: the underlying blocking receive is issued in slices this long
// so a Cancel (or an expired deadline) wins between arrivals.
const recvPollSlice = 2 * time.Millisecond

// recvPoll drives a cancelable, deadline-bounded receive request over any
// blocking receive primitive. It completes the request with the received
// payload, with ErrTimeout once the deadline elapses with nothing queued,
// or not at all when a Cancel wins first.
func recvPoll(r *Request, timeout Timeout, recv func(Timeout) ([]byte, int, error)) {
	var deadline time.Time
	if timeout > TimeoutImmediate {
		deadline = time.Now().Add(time.Duration(timeout))
	}
	for {
		select {
		case <-r.cancelCh:
			return
		default:
		}
		step := Timeout(recvPollSlice)
		if timeout == TimeoutImmediate {
			step = TimeoutImmediate
		} else if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				r.complete(nil, 0, ErrTimeout)
				return
			}
			if rem < recvPollSlice {
				step = Timeout(rem)
			}
		}
		data, prio, err := recv(step)
		if err == ErrTimeout {
			if timeout == TimeoutImmediate || (!deadline.IsZero() && !time.Now().Before(deadline)) {
				r.complete(nil, 0, ErrTimeout)
				return
			}
			continue
		}
		r.complete(data, prio, err)
		return
	}
}

// MsgRecvI is the non-blocking message receive (mcapi_msg_recv_i). The
// payload is retrieved from the Request after completion. A canceled
// receive re-queues nothing: cancellation only wins if it beats message
// arrival.
func MsgRecvI(from *Endpoint) *Request {
	return MsgRecvTI(from, TimeoutInfinite)
}

// MsgRecvTI is MsgRecvI bounded by a deadline — mcapi_msg_recv_i whose
// request carries its own timeout, the gap the offload layer exposed:
// a host waiting on a worker domain needs a receive it can both abandon
// at a per-chunk deadline (the request completes with ErrTimeout) and
// cancel outright when the domain is declared lost (Cancel, completing
// with ErrRequestCanceled). Test/Wait observe whichever happens first.
func MsgRecvTI(from *Endpoint, timeout Timeout) *Request {
	r := newRequest()
	go recvPoll(r, timeout, func(t Timeout) ([]byte, int, error) { return MsgRecv(from, t) })
	return r
}
