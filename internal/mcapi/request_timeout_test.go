package mcapi

import (
	"testing"
	"time"
)

// newPair returns a system with two endpoints on separate nodes.
func newPair(t *testing.T, attrs *EndpointAttributes) (*Endpoint, *Endpoint) {
	t.Helper()
	sys := NewSystem()
	na, err := sys.Initialize(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := sys.Initialize(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := na.CreateEndpoint(1, attrs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nb.CreateEndpoint(1, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestMsgRecvTIDeadline(t *testing.T) {
	_, b := newPair(t, nil)
	start := time.Now()
	r := MsgRecvTI(b, Timeout(30*time.Millisecond))
	if err := r.Wait(TimeoutInfinite); err != ErrTimeout {
		t.Fatalf("Wait = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("deadline fired after %v, want >= ~30ms", elapsed)
	}
	if done, err := r.Test(); !done || err != ErrTimeout {
		t.Errorf("Test = %v, %v after deadline", done, err)
	}
}

func TestMsgRecvTIDelivery(t *testing.T) {
	_, b := newPair(t, nil)
	r := MsgRecvTI(b, Timeout(2*time.Second))
	time.Sleep(5 * time.Millisecond)
	if err := MsgSend(b, []byte("ping"), 2, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(Timeout(2 * time.Second)); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	data, prio, err := r.Payload()
	if err != nil || string(data) != "ping" || prio != 2 {
		t.Fatalf("Payload = %q, %d, %v", data, prio, err)
	}
}

func TestMsgRecvTICancelBeatsDeadline(t *testing.T) {
	_, b := newPair(t, nil)
	r := MsgRecvTI(b, Timeout(time.Second))
	if err := r.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(TimeoutInfinite); err != ErrRequestCanceled {
		t.Fatalf("Wait after Cancel = %v, want ErrRequestCanceled", err)
	}
	// Cancellation won before arrival: a later message is still receivable
	// by a plain blocking receive.
	if err := MsgSend(b, []byte("late"), 0, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	data, _, err := MsgRecv(b, Timeout(time.Second))
	if err != nil || string(data) != "late" {
		t.Fatalf("MsgRecv after canceled request = %q, %v", data, err)
	}
}

func TestPktRecvIDeadlineAndDelivery(t *testing.T) {
	a, b := newPair(t, nil)
	if err := PktConnect(a, b); err != nil {
		t.Fatal(err)
	}
	send, err := PktOpenSend(a)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := PktOpenRecv(b)
	if err != nil {
		t.Fatal(err)
	}

	// Deadline path: nothing queued.
	r := recv.RecvI(Timeout(20 * time.Millisecond))
	if err := r.Wait(TimeoutInfinite); err != ErrTimeout {
		t.Fatalf("RecvI deadline: Wait = %v, want ErrTimeout", err)
	}

	// Delivery path: packet beats the deadline.
	r = recv.RecvI(Timeout(2 * time.Second))
	if err := send.Send([]byte{7, 7}, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(Timeout(2 * time.Second)); err != nil {
		t.Fatalf("RecvI delivery: Wait = %v", err)
	}
	data, _, err := r.Payload()
	if err != nil || len(data) != 2 || data[0] != 7 {
		t.Fatalf("RecvI Payload = %v, %v", data, err)
	}

	// Cancel path: a pending infinite receive aborts immediately.
	r = recv.RecvI(TimeoutInfinite)
	if err := r.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(TimeoutInfinite); err != ErrRequestCanceled {
		t.Fatalf("RecvI Cancel: Wait = %v, want ErrRequestCanceled", err)
	}
}

func TestMsgRecvTIImmediate(t *testing.T) {
	_, b := newPair(t, nil)
	r := MsgRecvTI(b, TimeoutImmediate)
	if err := r.Wait(Timeout(time.Second)); err != ErrTimeout {
		t.Fatalf("immediate empty receive: Wait = %v, want ErrTimeout", err)
	}
	if err := MsgSend(b, []byte("x"), 0, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	r = MsgRecvTI(b, TimeoutImmediate)
	if err := r.Wait(Timeout(time.Second)); err != nil {
		t.Fatalf("immediate receive with queued message: Wait = %v", err)
	}
}
