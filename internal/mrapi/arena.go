package mrapi

import (
	"sync"
	"time"
)

// WindowArena carves one remote-memory segment into recyclable leases,
// so a domain can stage bulk payloads for its peers without allocating
// a fresh segment per transfer. The arena only manages offsets: the
// actual data moves through the segment's ReadI/WriteI DMA requests
// (see RmemWritePadded/RmemReadPadded for the burst-alignment helpers).
//
// Leases are expected to be released explicitly by the consumer's ack;
// because acks ride lossy channels, every lease also carries a birth
// time, and an allocation that finds the arena full sweeps leases older
// than maxAge before giving up. A failed Lease is therefore a signal to
// fall back to inline payloads, never an error.
type WindowArena struct {
	rm     *Rmem
	maxAge time.Duration

	mu     sync.Mutex
	free   []arenaSpan        // sorted by offset, coalesced
	leases map[int]arenaLease // offset -> live lease
}

type arenaSpan struct{ off, size int }

type arenaLease struct {
	size int
	born time.Time
}

// PadToBurst rounds n up to the DMA engine's burst granularity; DMA
// segments reject transfers that are not a burst multiple, so arena
// slots and transfer buffers are always padded.
func PadToBurst(n int) int {
	return (n + DMABurstSize - 1) / DMABurstSize * DMABurstSize
}

// NewWindowArena wraps rm, treating the whole segment as free. maxAge
// bounds how long an unreleased lease can block the space: leases older
// than maxAge are reclaimed when an allocation would otherwise fail.
// maxAge <= 0 disables the sweep (leases then live until Release).
func NewWindowArena(rm *Rmem, maxAge time.Duration) *WindowArena {
	return &WindowArena{
		rm:     rm,
		maxAge: maxAge,
		free:   []arenaSpan{{off: 0, size: rm.Size()}},
		leases: make(map[int]arenaLease),
	}
}

// Rmem returns the segment the arena manages.
func (a *WindowArena) Rmem() *Rmem { return a.rm }

// Lease reserves space for n payload bytes (padded to the DMA burst
// size) and returns its window offset. ok is false when the arena —
// even after sweeping expired leases — has no span large enough; the
// caller then ships the payload inline.
func (a *WindowArena) Lease(n int) (offset int, ok bool) {
	if n <= 0 {
		return 0, false
	}
	size := PadToBurst(n)
	a.mu.Lock()
	defer a.mu.Unlock()
	if off, ok := a.takeLocked(size); ok {
		return off, true
	}
	if !a.sweepLocked(time.Now()) {
		return 0, false
	}
	return a.takeLocked(size)
}

// takeLocked carves size bytes out of the first span that fits.
func (a *WindowArena) takeLocked(size int) (int, bool) {
	for i, s := range a.free {
		if s.size < size {
			continue
		}
		off := s.off
		if s.size == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = arenaSpan{off: s.off + size, size: s.size - size}
		}
		a.leases[off] = arenaLease{size: size, born: time.Now()}
		return off, true
	}
	return 0, false
}

// sweepLocked releases leases older than maxAge, reporting whether any
// space was reclaimed.
func (a *WindowArena) sweepLocked(now time.Time) bool {
	if a.maxAge <= 0 {
		return false
	}
	swept := false
	for off, l := range a.leases {
		if now.Sub(l.born) > a.maxAge {
			a.releaseLocked(off, l)
			swept = true
		}
	}
	return swept
}

// Release returns a lease's space to the arena. Releasing an offset
// that holds no live lease (already released, already swept, or a
// duplicate ack) is a no-op and reports false.
func (a *WindowArena) Release(offset int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	l, ok := a.leases[offset]
	if !ok {
		return false
	}
	a.releaseLocked(offset, l)
	return true
}

// releaseLocked merges the lease's span back into the sorted free list.
func (a *WindowArena) releaseLocked(offset int, l arenaLease) {
	delete(a.leases, offset)
	i := 0
	for i < len(a.free) && a.free[i].off < offset {
		i++
	}
	a.free = append(a.free, arenaSpan{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = arenaSpan{off: offset, size: l.size}
	// Coalesce with the right neighbor, then the left.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// InUse reports the live lease count and leased byte total.
func (a *WindowArena) InUse() (leases, bytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, l := range a.leases {
		bytes += l.size
	}
	return len(a.leases), bytes
}

// RmemWritePadded stages src into the segment at offset through the
// asynchronous DMA engine, padding the transfer up to the burst size
// the segment requires. The destination slot must have been leased with
// at least len(src) bytes.
func RmemWritePadded(r *Rmem, n *Node, offset int, src []byte) error {
	size := PadToBurst(len(src))
	if size != len(src) {
		buf := make([]byte, size)
		copy(buf, src)
		src = buf
	}
	return r.WriteI(n, offset, src).Wait(TimeoutInfinite)
}

// RmemReadPadded pulls length payload bytes from the segment at offset
// through the asynchronous DMA engine, reading the padded slot and
// returning the unpadded payload.
func RmemReadPadded(r *Rmem, n *Node, offset, length int) ([]byte, error) {
	buf := make([]byte, PadToBurst(length))
	if err := r.ReadI(n, offset, buf).Wait(TimeoutInfinite); err != nil {
		return nil, err
	}
	return buf[:length], nil
}
