package mrapi

import (
	"bytes"
	"testing"
	"time"
)

func arenaFixture(t *testing.T, size int) (*WindowArena, *Node, *Node) {
	t.Helper()
	sys := NewSystem(nil)
	owner, err := sys.Initialize(0, 1, nil)
	if err != nil {
		t.Fatalf("owner init: %v", err)
	}
	peer, err := sys.Initialize(0, 2, nil)
	if err != nil {
		t.Fatalf("peer init: %v", err)
	}
	rm, err := owner.RmemCreate(Key(7), size, &RmemAttributes{Access: RmemDMA})
	if err != nil {
		t.Fatalf("rmem create: %v", err)
	}
	for _, n := range []*Node{owner, peer} {
		if err := rm.Attach(n); err != nil {
			t.Fatalf("attach: %v", err)
		}
	}
	return NewWindowArena(rm, 0), owner, peer
}

func TestWindowArenaLeaseReleaseCoalesce(t *testing.T) {
	a, _, _ := arenaFixture(t, 4*DMABurstSize)

	// Three burst-sized leases fill 3/4 of the window.
	offs := make([]int, 3)
	for i := range offs {
		off, ok := a.Lease(1) // pads to one burst
		if !ok {
			t.Fatalf("lease %d failed", i)
		}
		offs[i] = off
	}
	if offs[0] == offs[1] || offs[1] == offs[2] || offs[0] == offs[2] {
		t.Fatalf("overlapping leases: %v", offs)
	}
	// A lease larger than the remaining contiguous space must fail.
	if _, ok := a.Lease(2 * DMABurstSize); ok {
		t.Fatal("oversized lease succeeded in fragmented arena")
	}
	// Releasing the middle and first leases coalesces back into one
	// span big enough for a 2-burst lease.
	if !a.Release(offs[1]) || !a.Release(offs[0]) {
		t.Fatal("release failed")
	}
	// Double release is a no-op.
	if a.Release(offs[1]) {
		t.Fatal("double release reported a live lease")
	}
	if _, ok := a.Lease(2 * DMABurstSize); !ok {
		t.Fatal("coalesced span not reusable")
	}
	if n, _ := a.InUse(); n != 2 {
		t.Fatalf("InUse leases = %d, want 2", n)
	}
}

func TestWindowArenaSweepExpired(t *testing.T) {
	a, _, _ := arenaFixture(t, 2*DMABurstSize)
	a.maxAge = time.Millisecond

	if _, ok := a.Lease(2 * DMABurstSize); !ok {
		t.Fatal("initial lease failed")
	}
	if _, ok := a.Lease(1); ok {
		t.Fatal("lease in full arena succeeded before expiry")
	}
	time.Sleep(5 * time.Millisecond)
	// The expired lease is swept when an allocation would otherwise
	// fail, so the arena self-heals from dropped acks.
	if _, ok := a.Lease(2 * DMABurstSize); !ok {
		t.Fatal("sweep did not reclaim the expired lease")
	}
}

func TestWindowArenaPaddedTransferRoundTrip(t *testing.T) {
	a, owner, peer := arenaFixture(t, 1<<10)

	payload := make([]byte, 100) // deliberately not burst-aligned
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	off, ok := a.Lease(len(payload))
	if !ok {
		t.Fatal("lease failed")
	}
	if err := RmemWritePadded(a.Rmem(), owner, off, payload); err != nil {
		t.Fatalf("padded write: %v", err)
	}
	got, err := RmemReadPadded(a.Rmem(), peer, off, len(payload))
	if err != nil {
		t.Fatalf("padded read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across the window")
	}
	if !a.Release(off) {
		t.Fatal("release failed")
	}
}
