// Package mrapi implements the Multicore Association Resource Management
// API (MRAPI) semantics in pure Go, including the two extensions introduced
// by the OpenMP-MCA paper (Sun, Chandrasekaran, Chapman — IPDPSW 2015):
//
//   - a node/thread extension (mrapi_thread_create, paper Listing 2) that
//     lets an MRAPI node own lightweight worker threads so that a
//     thread-level runtime such as OpenMP can be layered on top of MRAPI
//     node management, and
//   - a shared-memory/malloc extension (mrapi_shmem_create_malloc, paper
//     Listing 3) that maps "shared memory" onto the process heap so
//     thread-level shared data does not pay the system-V IPC cost.
//
// The package models the MRAPI object universe faithfully:
//
//   - Domains group Nodes; a per-domain global database registers every
//     node and every resource so any node in the domain can look them up
//     by key, exactly as the C reference implementation's shared database
//     does.
//   - Nodes are independent units of execution. A node must be initialized
//     before it may create or use resources; using a finalized node yields
//     ErrNodeNotInit.
//   - Shared memory, remote memory, mutexes, semaphores and reader/writer
//     locks are created against integer keys and are visible domain-wide.
//   - Metadata is exposed as a resource tree (see metadata.go) produced by
//     the platform model.
//
// Blocking operations accept a Timeout; TimeoutInfinite blocks forever,
// matching MRAPI_TIMEOUT_INFINITE.
package mrapi
