package mrapi_test

import (
	"fmt"

	"openmpmca/internal/mrapi"
)

// Two nodes of one domain coordinate through the global database: a
// shared-memory segment for data and a mutex for exclusion — the MRAPI
// workflow the paper's runtime builds on.
func Example() {
	sys := mrapi.NewSystem(nil)
	producer, err := sys.Initialize(1, 1, nil)
	if err != nil {
		panic(err)
	}
	consumer, err := sys.Initialize(1, 2, nil)
	if err != nil {
		panic(err)
	}

	// The producer creates a heap-backed segment (the paper's malloc
	// extension) and writes into it.
	buf, _, err := producer.ShmemCreateMalloc(100, 32)
	if err != nil {
		panic(err)
	}
	copy(buf, "shared payload")

	// The consumer looks the segment up by key and attaches.
	seg, err := consumer.ShmemGet(100)
	if err != nil {
		panic(err)
	}
	view, err := seg.Attach(consumer)
	if err != nil {
		panic(err)
	}

	// A mutex serializes access.
	m, err := producer.MutexCreate(200, nil)
	if err != nil {
		panic(err)
	}
	k, err := m.Lock(consumer, mrapi.TimeoutInfinite)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(view[:14]))
	_ = m.Unlock(consumer, k)
	// Output: shared payload
}

// The node-thread extension (paper Listing 2): a node spawns worker
// threads it manages.
func ExampleNode_SpawnThread() {
	sys := mrapi.NewSystem(nil)
	node, err := sys.Initialize(1, 1, nil)
	if err != nil {
		panic(err)
	}
	done := make(chan string, 1)
	th, err := node.SpawnThread(mrapi.ThreadParams{
		Name:  "worker-0",
		Start: func() { done <- "worker ran" },
	})
	if err != nil {
		panic(err)
	}
	th.Join()
	fmt.Println(<-done)
	// Output: worker ran
}
