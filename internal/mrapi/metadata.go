package mrapi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ResourceType classifies a node in the system resource metadata tree
// (mrapi_rsrc_type).
type ResourceType int

const (
	// ResSystem is the tree root.
	ResSystem ResourceType = iota
	// ResCPU is a physical core.
	ResCPU
	// ResHWThread is one SMT thread of a core.
	ResHWThread
	// ResCluster is a core cluster sharing a cache.
	ResCluster
	// ResCache is a cache (L1/L2/L3).
	ResCache
	// ResMemory is a DDR controller / memory bank.
	ResMemory
	// ResFabric is an on-chip interconnect (CoreNet).
	ResFabric
	// ResAccelerator is a specialized engine (DPAA, SEC, ...).
	ResAccelerator
	// ResCrossbar is an I/O crossbar or switch.
	ResCrossbar
)

var resourceTypeNames = [...]string{
	ResSystem:      "system",
	ResCPU:         "cpu",
	ResHWThread:    "hwthread",
	ResCluster:     "cluster",
	ResCache:       "cache",
	ResMemory:      "memory",
	ResFabric:      "fabric",
	ResAccelerator: "accelerator",
	ResCrossbar:    "crossbar",
}

func (t ResourceType) String() string {
	if int(t) < len(resourceTypeNames) {
		return resourceTypeNames[t]
	}
	return fmt.Sprintf("rsrc(%d)", int(t))
}

// Resource is one node of the MRAPI system resource metadata tree
// (mrapi_resource_t). Attributes may be static (core frequency) or dynamic
// (cores online); dynamic attributes are read through a getter so the
// platform model can expose live values.
type Resource struct {
	Name     string
	Type     ResourceType
	Children []*Resource

	mu      sync.RWMutex
	static  map[string]any
	dynamic map[string]func() any
}

// NewResource creates a resource tree node.
func NewResource(name string, typ ResourceType) *Resource {
	return &Resource{
		Name:    name,
		Type:    typ,
		static:  make(map[string]any),
		dynamic: make(map[string]func() any),
	}
}

// AddChild appends a child and returns it for chaining.
func (r *Resource) AddChild(c *Resource) *Resource {
	r.Children = append(r.Children, c)
	return c
}

// SetAttr sets a static attribute.
func (r *Resource) SetAttr(name string, value any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.static[name] = value
}

// SetDynamicAttr installs a live attribute whose value is fetched on each
// read (mrapi_dynamic_attributes).
func (r *Resource) SetDynamicAttr(name string, get func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dynamic[name] = get
}

// Attr reads an attribute (static or dynamic). The boolean reports
// existence.
func (r *Resource) Attr(name string) (any, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if g, ok := r.dynamic[name]; ok {
		return g(), true
	}
	v, ok := r.static[name]
	return v, ok
}

// AttrNames returns the sorted attribute names.
func (r *Resource) AttrNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.static)+len(r.dynamic))
	for k := range r.static {
		names = append(names, k)
	}
	for k := range r.dynamic {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Filter returns the subtree of resources matching the given type, as a
// flat slice in depth-first order (mrapi_resources_get with a subsystem
// filter).
func (r *Resource) Filter(typ ResourceType) []*Resource {
	var out []*Resource
	r.walk(func(n *Resource) {
		if n.Type == typ {
			out = append(out, n)
		}
	})
	return out
}

func (r *Resource) walk(f func(*Resource)) {
	f(r)
	for _, c := range r.Children {
		c.walk(f)
	}
}

// Count returns the number of resources of the given type in the tree.
func (r *Resource) Count(typ ResourceType) int { return len(r.Filter(typ)) }

// Render pretty-prints the tree, one resource per line, indented by depth —
// the format cmd/ompmca-info uses to regenerate the paper's Figure 1.
func (r *Resource) Render() string {
	var b strings.Builder
	r.render(&b, 0)
	return b.String()
}

func (r *Resource) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s [%s]", r.Name, r.Type)
	if names := r.AttrNames(); len(names) > 0 {
		parts := make([]string, 0, len(names))
		for _, n := range names {
			v, _ := r.Attr(n)
			parts = append(parts, fmt.Sprintf("%s=%v", n, v))
		}
		fmt.Fprintf(b, " {%s}", strings.Join(parts, ", "))
	}
	b.WriteByte('\n')
	for _, c := range r.Children {
		c.render(b, depth+1)
	}
}

// ResourcesGet returns the system resource tree root (mrapi_resources_get).
// The paper's runtime uses this to discover how many processors are online
// (§5B4). It fails with ErrResourceInvalid when the system carries no
// metadata.
func (n *Node) ResourcesGet() (*Resource, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	sys := n.domain.sys
	sys.mu.RLock()
	defer sys.mu.RUnlock()
	if sys.resources == nil {
		return nil, ErrResourceInvalid
	}
	return sys.resources, nil
}

// ProcessorsOnline reports the number of online hardware threads from the
// metadata tree, the quantity the MCA-backed OpenMP runtime sizes its
// default thread pool with. Falls back to 1 when no metadata is installed.
func (n *Node) ProcessorsOnline() int {
	root, err := n.ResourcesGet()
	if err != nil {
		return 1
	}
	online := 0
	for _, hw := range root.Filter(ResHWThread) {
		if v, ok := hw.Attr("online"); ok {
			if b, isBool := v.(bool); isBool && !b {
				continue
			}
		}
		online++
	}
	if online == 0 {
		return 1
	}
	return online
}
