package mrapi

import (
	"errors"
	"strings"
	"testing"
)

// miniTree builds a 2-core, 4-hwthread resource tree for tests.
func miniTree() *Resource {
	root := NewResource("testboard", ResSystem)
	root.SetAttr("cores", 2)
	for c := 0; c < 2; c++ {
		cpu := NewResource("core", ResCPU)
		cpu.SetAttr("index", c)
		cpu.SetAttr("mhz", 1800)
		for h := 0; h < 2; h++ {
			hw := NewResource("hwthread", ResHWThread)
			hw.SetAttr("index", c*2+h)
			hw.SetAttr("online", true)
			cpu.AddChild(hw)
		}
		root.AddChild(cpu)
	}
	return root
}

func TestResourcesGet(t *testing.T) {
	sys := NewSystem(miniTree())
	n, _ := sys.Initialize(1, 1, nil)
	root, err := n.ResourcesGet()
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "testboard" {
		t.Errorf("root = %q", root.Name)
	}
	if got := root.Count(ResCPU); got != 2 {
		t.Errorf("CPU count = %d, want 2", got)
	}
	if got := root.Count(ResHWThread); got != 4 {
		t.Errorf("hwthread count = %d, want 4", got)
	}
}

func TestResourcesGetWithoutMetadata(t *testing.T) {
	sys := NewSystem(nil)
	n, _ := sys.Initialize(1, 1, nil)
	if _, err := n.ResourcesGet(); !errors.Is(err, ErrResourceInvalid) {
		t.Errorf("no metadata = %v, want ErrResourceInvalid", err)
	}
	if got := n.ProcessorsOnline(); got != 1 {
		t.Errorf("ProcessorsOnline fallback = %d, want 1", got)
	}
}

func TestProcessorsOnline(t *testing.T) {
	tree := miniTree()
	sys := NewSystem(tree)
	n, _ := sys.Initialize(1, 1, nil)
	if got := n.ProcessorsOnline(); got != 4 {
		t.Errorf("ProcessorsOnline = %d, want 4", got)
	}
	// Take one hardware thread offline; the dynamic view must shrink.
	hw := tree.Filter(ResHWThread)[3]
	hw.SetAttr("online", false)
	if got := n.ProcessorsOnline(); got != 3 {
		t.Errorf("ProcessorsOnline after offline = %d, want 3", got)
	}
}

func TestDynamicAttr(t *testing.T) {
	r := NewResource("sensor", ResCPU)
	temp := 40
	r.SetDynamicAttr("celsius", func() any { return temp })
	if v, ok := r.Attr("celsius"); !ok || v.(int) != 40 {
		t.Errorf("dynamic attr = %v, %v", v, ok)
	}
	temp = 55
	if v, _ := r.Attr("celsius"); v.(int) != 55 {
		t.Errorf("dynamic attr not live: %v", v)
	}
	if _, ok := r.Attr("missing"); ok {
		t.Error("missing attr should report !ok")
	}
}

func TestRenderContainsHierarchy(t *testing.T) {
	out := miniTree().Render()
	for _, want := range []string{"testboard [system]", "core [cpu]", "hwthread [hwthread]", "mhz=1800"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// Children are indented below parents.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("child not indented: %q", lines[1])
	}
}

func TestAttrNamesSorted(t *testing.T) {
	r := NewResource("x", ResCPU)
	r.SetAttr("zeta", 1)
	r.SetAttr("alpha", 2)
	r.SetDynamicAttr("mid", func() any { return 3 })
	names := r.AttrNames()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names = %v, want %v", names, want)
			break
		}
	}
}

func TestResourceTypeString(t *testing.T) {
	if ResCluster.String() != "cluster" || ResFabric.String() != "fabric" {
		t.Error("resource type names wrong")
	}
	if got := ResourceType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type = %q", got)
	}
}
