package mrapi

import "sync"

// MutexAttributes configure a mutex at creation (mrapi_mutex_init_attributes).
type MutexAttributes struct {
	// Recursive allows the owning node to re-lock; each lock returns a new
	// LockKey and unlocks must be issued in reverse key order, matching the
	// MRAPI recursive-mutex contract.
	Recursive bool
}

// LockKey is the token mrapi_mutex_lock hands back; it must be presented to
// Unlock. For recursive mutexes the key encodes the recursion depth.
type LockKey uint32

// Mutex is an MRAPI mutex: a domain-wide, key-addressed mutual-exclusion
// primitive with optional recursion and timed acquisition. It is the
// primitive the paper maps gomp_mutex_lock onto (Listing 4).
type Mutex struct {
	domain *Domain
	key    Key
	attrs  MutexAttributes

	mu      sync.Mutex
	held    bool
	owner   *Node
	depth   uint32 // recursion depth while held
	deleted bool
	waiters waitQueue
}

// MutexCreate registers a new mutex under key in the domain's global
// database (mrapi_mutex_create). The creating node must be initialized.
func (n *Node) MutexCreate(key Key, attrs *MutexAttributes) (*Mutex, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	a := MutexAttributes{}
	if attrs != nil {
		a = *attrs
	}
	d := n.domain
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.mutexes[key]; dup {
		return nil, ErrMutexExists
	}
	m := &Mutex{domain: d, key: key, attrs: a}
	d.mutexes[key] = m
	return m, nil
}

// MutexGet looks up an existing mutex by key (mrapi_mutex_get).
func (n *Node) MutexGet(key Key) (*Mutex, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	d := n.domain
	d.mu.RLock()
	defer d.mu.RUnlock()
	m, ok := d.mutexes[key]
	if !ok {
		return nil, ErrMutexInvalid
	}
	return m, nil
}

// Key returns the database key the mutex was created under.
func (m *Mutex) Key() Key { return m.key }

// Attributes returns a copy of the creation attributes.
func (m *Mutex) Attributes() MutexAttributes { return m.attrs }

// Lock acquires the mutex on behalf of node, waiting up to timeout
// (mrapi_mutex_lock). On success it returns the LockKey that must be given
// back to Unlock. Re-locking a non-recursive mutex from its owning node
// fails immediately with ErrMutexLocked (self-deadlock detection); on a
// recursive mutex it succeeds and increments the key.
func (m *Mutex) Lock(node *Node, timeout Timeout) (LockKey, error) {
	if node == nil {
		return 0, ErrParameter
	}
	if err := node.checkLive(); err != nil {
		return 0, err
	}

	m.mu.Lock()
	for {
		if m.deleted {
			m.mu.Unlock()
			return 0, ErrMutexDeleted
		}
		if !m.held {
			m.held = true
			m.owner = node
			m.depth = 1
			m.mu.Unlock()
			node.locksTaken.Add(1)
			return LockKey(0), nil
		}
		if m.owner == node {
			if !m.attrs.Recursive {
				m.mu.Unlock()
				return 0, ErrMutexLocked
			}
			m.depth++
			k := LockKey(m.depth - 1)
			m.mu.Unlock()
			node.locksTaken.Add(1)
			return k, nil
		}
		if timeout == TimeoutImmediate {
			m.mu.Unlock()
			return 0, ErrTimeout
		}
		if st := m.waiters.wait(&m.mu, timeout); st != Success {
			m.mu.Unlock()
			return 0, st
		}
	}
}

// Unlock releases one level of the mutex (mrapi_mutex_unlock). The lock key
// must be the most recently issued one; recursive unlocks out of order fail
// with ErrMutexLockOrder, unlocking from a non-owner fails with
// ErrMutexKey, and unlocking an unheld mutex fails with ErrMutexNotLocked.
func (m *Mutex) Unlock(node *Node, key LockKey) error {
	if node == nil {
		return ErrParameter
	}
	if err := node.checkLive(); err != nil {
		return err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.deleted {
		return ErrMutexDeleted
	}
	if !m.held {
		return ErrMutexNotLocked
	}
	if m.owner != node {
		return ErrMutexKey
	}
	if uint32(key) != m.depth-1 {
		return ErrMutexLockOrder
	}
	m.depth--
	if m.depth == 0 {
		m.held = false
		m.owner = nil
		m.waiters.signalLocked()
	}
	return nil
}

// Held reports whether the mutex is currently locked (diagnostic).
func (m *Mutex) Held() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.held
}

// Delete removes the mutex from the domain database (mrapi_mutex_delete).
// Waiters are woken with ErrMutexDeleted. Deleting a held mutex is allowed
// only for the owner; other nodes get ErrMutexLocked.
func (m *Mutex) Delete(node *Node) error {
	if err := node.checkLive(); err != nil {
		return err
	}
	m.mu.Lock()
	if m.deleted {
		m.mu.Unlock()
		return ErrMutexInvalid
	}
	if m.held && m.owner != node {
		m.mu.Unlock()
		return ErrMutexLocked
	}
	m.deleted = true
	m.waiters.broadcastLocked()
	m.mu.Unlock()

	d := m.domain
	d.mu.Lock()
	delete(d.mutexes, m.key)
	d.mu.Unlock()
	return nil
}
