package mrapi

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// twoNodes returns two initialized nodes in the same domain of a fresh
// system.
func twoNodes(t *testing.T) (*Node, *Node) {
	t.Helper()
	sys := NewSystem(nil)
	a, err := sys.Initialize(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Initialize(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestMutexCreateGetDelete(t *testing.T) {
	a, b := twoNodes(t)
	m, err := a.MutexCreate(10, nil)
	if err != nil {
		t.Fatalf("MutexCreate: %v", err)
	}
	if m.Key() != 10 {
		t.Errorf("Key = %d", m.Key())
	}
	if _, err := a.MutexCreate(10, nil); !errors.Is(err, ErrMutexExists) {
		t.Errorf("duplicate create = %v, want ErrMutexExists", err)
	}
	got, err := b.MutexGet(10)
	if err != nil || got != m {
		t.Errorf("MutexGet from other node = %v, %v", got, err)
	}
	if err := m.Delete(a); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := b.MutexGet(10); !errors.Is(err, ErrMutexInvalid) {
		t.Errorf("get after delete = %v, want ErrMutexInvalid", err)
	}
	// Key is reusable after deletion.
	if _, err := b.MutexCreate(10, nil); err != nil {
		t.Errorf("recreate after delete: %v", err)
	}
}

func TestMutexLockUnlock(t *testing.T) {
	a, _ := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	k, err := m.Lock(a, TimeoutInfinite)
	if err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if !m.Held() {
		t.Error("mutex should be held")
	}
	if err := m.Unlock(a, k); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
	if m.Held() {
		t.Error("mutex should be free")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	a, b := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	const iters = 2000
	counter := 0
	var wg sync.WaitGroup
	for _, n := range []*Node{a, b} {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k, err := m.Lock(n, TimeoutInfinite)
				if err != nil {
					t.Errorf("Lock: %v", err)
					return
				}
				counter++
				if err := m.Unlock(n, k); err != nil {
					t.Errorf("Unlock: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	if counter != 2*iters {
		t.Errorf("counter = %d, want %d (lost updates)", counter, 2*iters)
	}
}

func TestMutexSelfDeadlockDetection(t *testing.T) {
	a, _ := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	k, _ := m.Lock(a, TimeoutInfinite)
	if _, err := m.Lock(a, TimeoutInfinite); !errors.Is(err, ErrMutexLocked) {
		t.Errorf("self relock = %v, want ErrMutexLocked", err)
	}
	if err := m.Unlock(a, k); err != nil {
		t.Fatal(err)
	}
}

func TestMutexRecursive(t *testing.T) {
	a, _ := twoNodes(t)
	m, _ := a.MutexCreate(1, &MutexAttributes{Recursive: true})
	k0, err := m.Lock(a, TimeoutInfinite)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := m.Lock(a, TimeoutInfinite)
	if err != nil {
		t.Fatalf("recursive relock: %v", err)
	}
	k2, err := m.Lock(a, TimeoutInfinite)
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 || k1 == k2 {
		t.Errorf("lock keys should differ: %d %d %d", k0, k1, k2)
	}
	// Out-of-order unlock is rejected.
	if err := m.Unlock(a, k0); !errors.Is(err, ErrMutexLockOrder) {
		t.Errorf("out-of-order unlock = %v, want ErrMutexLockOrder", err)
	}
	for _, k := range []LockKey{k2, k1, k0} {
		if err := m.Unlock(a, k); err != nil {
			t.Fatalf("Unlock(%d): %v", k, err)
		}
	}
	if m.Held() {
		t.Error("mutex should be free after full unwind")
	}
}

func TestMutexUnlockErrors(t *testing.T) {
	a, b := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	if err := m.Unlock(a, 0); !errors.Is(err, ErrMutexNotLocked) {
		t.Errorf("unlock unheld = %v, want ErrMutexNotLocked", err)
	}
	k, _ := m.Lock(a, TimeoutInfinite)
	if err := m.Unlock(b, k); !errors.Is(err, ErrMutexKey) {
		t.Errorf("unlock by non-owner = %v, want ErrMutexKey", err)
	}
	if err := m.Unlock(a, k); err != nil {
		t.Fatal(err)
	}
}

func TestMutexTimeout(t *testing.T) {
	a, b := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	k, _ := m.Lock(a, TimeoutInfinite)

	if _, err := m.Lock(b, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Errorf("immediate lock on held mutex = %v, want ErrTimeout", err)
	}
	start := time.Now()
	if _, err := m.Lock(b, Timeout(20*time.Millisecond)); !errors.Is(err, ErrTimeout) {
		t.Errorf("timed lock = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("timed lock returned too early: %v", elapsed)
	}
	if err := m.Unlock(a, k); err != nil {
		t.Fatal(err)
	}
	// After release a timed lock succeeds.
	if _, err := m.Lock(b, Timeout(time.Second)); err != nil {
		t.Errorf("lock after release: %v", err)
	}
}

func TestMutexHandoffAfterUnlock(t *testing.T) {
	a, b := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	k, _ := m.Lock(a, TimeoutInfinite)
	acquired := make(chan error, 1)
	go func() {
		_, err := m.Lock(b, TimeoutInfinite)
		acquired <- err
	}()
	time.Sleep(5 * time.Millisecond) // let b park
	if err := m.Unlock(a, k); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("waiter lock: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never acquired the mutex")
	}
}

func TestMutexDeleteWakesWaiters(t *testing.T) {
	a, b := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	if _, err := m.Lock(a, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	woke := make(chan error, 1)
	go func() {
		_, err := m.Lock(b, TimeoutInfinite)
		woke <- err
	}()
	time.Sleep(5 * time.Millisecond)
	if err := m.Delete(a); err != nil {
		t.Fatalf("Delete by owner: %v", err)
	}
	select {
	case err := <-woke:
		if !errors.Is(err, ErrMutexDeleted) {
			t.Errorf("waiter error = %v, want ErrMutexDeleted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by delete")
	}
}

func TestMutexDeleteHeldByOtherNodeFails(t *testing.T) {
	a, b := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	k, _ := m.Lock(a, TimeoutInfinite)
	if err := m.Delete(b); !errors.Is(err, ErrMutexLocked) {
		t.Errorf("delete of mutex held elsewhere = %v, want ErrMutexLocked", err)
	}
	if err := m.Unlock(a, k); err != nil {
		t.Fatal(err)
	}
}

func TestMutexLockCountsStat(t *testing.T) {
	a, _ := twoNodes(t)
	m, _ := a.MutexCreate(1, nil)
	before := a.LocksTaken()
	k, _ := m.Lock(a, TimeoutInfinite)
	_ = m.Unlock(a, k)
	if a.LocksTaken() != before+1 {
		t.Errorf("LocksTaken = %d, want %d", a.LocksTaken(), before+1)
	}
}
