package mrapi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// NodeAttributes carry optional per-node configuration supplied at
// initialization time (mrapi_node_init_attributes / mrapi_initialize).
type NodeAttributes struct {
	// Name is a human-readable label used in diagnostics and the metadata
	// tree ("core0-worker", "dsp-offload", ...).
	Name string
	// Affinity optionally names the hardware thread (platform CPU index)
	// this node is pinned to; -1 means unpinned. The simulated platform
	// model consumes this; the host Go scheduler is unaffected.
	Affinity int
	// MemDomain is the memory domain (e.g. DDR controller index) the node
	// allocates from. Shared-memory segments with a conflicting placement
	// refuse attachment with ErrShmNodesIncompat.
	MemDomain int
}

// DefaultNodeAttributes returns the attribute set used when Initialize is
// passed nil: unnamed, unpinned (Affinity -1), memory domain 0. Callers that
// build a NodeAttributes by hand and want an unpinned node must set
// Affinity to -1 themselves (a zero Affinity pins to hardware thread 0).
func DefaultNodeAttributes() NodeAttributes {
	return NodeAttributes{Affinity: -1, MemDomain: 0}
}

func defaultNodeAttributes() NodeAttributes { return DefaultNodeAttributes() }

// Node is an independent MRAPI unit of execution. A node may map onto a
// process, a thread, a thread pool, or a hardware accelerator; this
// implementation maps it onto the calling goroutine plus any worker threads
// spawned through the paper's thread extension (SpawnThread).
type Node struct {
	domain *Domain
	id     NodeID
	attrs  NodeAttributes

	mu          sync.Mutex
	initialized bool
	threads     map[uint64]*NodeThread
	nextThread  uint64

	// statistics, updated atomically
	locksTaken   atomic.Uint64
	shmemAttachs atomic.Uint64
}

// Initialize creates the node (domainID, nodeID) in the system and registers
// it in the domain's global database, mirroring mrapi_initialize. It fails
// with ErrNodeInitFailed if the node ID is already registered in the domain.
func (s *System) Initialize(domainID DomainID, nodeID NodeID, attrs *NodeAttributes) (*Node, error) {
	d := s.domain(domainID)

	a := defaultNodeAttributes()
	if attrs != nil {
		a = *attrs
	}

	n := &Node{
		domain:      d,
		id:          nodeID,
		attrs:       a,
		initialized: true,
		threads:     make(map[uint64]*NodeThread),
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.nodes[nodeID]; dup {
		return nil, ErrNodeInitFailed
	}
	d.nodes[nodeID] = n
	return n, nil
}

// Finalize tears the node down: joins any still-running worker threads,
// then removes the node from the domain database (mrapi_finalize). Further
// use of the node yields ErrNodeNotInit.
func (n *Node) Finalize() error {
	n.mu.Lock()
	if !n.initialized {
		n.mu.Unlock()
		return ErrNodeNotInit
	}
	n.initialized = false
	threads := make([]*NodeThread, 0, len(n.threads))
	for _, t := range n.threads {
		threads = append(threads, t)
	}
	n.threads = nil
	n.mu.Unlock()

	for _, t := range threads {
		t.Join()
	}

	n.domain.mu.Lock()
	delete(n.domain.nodes, n.id)
	n.domain.mu.Unlock()
	return nil
}

// Initialized reports whether the node is live (mrapi_initialized).
func (n *Node) Initialized() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.initialized
}

// ID returns the node's identifier (mrapi_node_id_get).
func (n *Node) ID() NodeID { return n.id }

// Domain returns the node's domain (mrapi_domain_id_get gives its ID).
func (n *Node) Domain() *Domain { return n.domain }

// Attributes returns a copy of the node's attributes.
func (n *Node) Attributes() NodeAttributes { return n.attrs }

// LocksTaken reports how many mutex/semaphore/rwlock acquisitions the node
// has performed; used by the trace layer and tests.
func (n *Node) LocksTaken() uint64 { return n.locksTaken.Load() }

func (n *Node) String() string {
	return fmt.Sprintf("mrapi.Node(d%d,n%d)", n.domain.id, n.id)
}

// checkLive returns ErrNodeNotInit unless the node is initialized. Every
// resource operation calls this first, matching the guard in the paper's
// Listing 2 (mrapi_impl_initialized()).
func (n *Node) checkLive() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.initialized {
		return ErrNodeNotInit
	}
	return nil
}

// ----- Node thread extension (paper §5A1, Listing 2) -----

// ThreadState describes a NodeThread's lifecycle phase.
type ThreadState int32

const (
	// ThreadRunning means the worker function is still executing.
	ThreadRunning ThreadState = iota
	// ThreadExited means the worker function returned and the thread's
	// registration has been withdrawn from the node.
	ThreadExited
)

// ThreadParams mirrors mrapi_thread_parameters_t from the paper's node
// extension: the start routine plus an optional label.
type ThreadParams struct {
	// Start is the worker body. Required.
	Start func()
	// Name labels the thread for diagnostics.
	Name string
}

// NodeThread is one worker thread created and managed by a node via the
// paper's mrapi_thread_create extension. It is backed by a goroutine; the
// registration lives in the node so the domain database can enumerate the
// execution resources a node owns.
type NodeThread struct {
	node  *Node
	id    uint64
	name  string
	state atomic.Int32
	done  chan struct{}
}

// SpawnThread implements the paper's mrapi_thread_create: it creates a
// worker thread for the calling node and registers it with the node for
// later management. It fails with ErrNodeNotInit if the node is not live
// and ErrParameter if params.Start is nil.
func (n *Node) SpawnThread(params ThreadParams) (*NodeThread, error) {
	if params.Start == nil {
		return nil, ErrParameter
	}
	n.mu.Lock()
	if !n.initialized {
		n.mu.Unlock()
		return nil, ErrNodeNotInit
	}
	n.nextThread++
	t := &NodeThread{
		node: n,
		id:   n.nextThread,
		name: params.Name,
		done: make(chan struct{}),
	}
	n.threads[t.id] = t
	n.mu.Unlock()

	go func() {
		defer func() {
			t.state.Store(int32(ThreadExited))
			n.mu.Lock()
			if n.threads != nil {
				delete(n.threads, t.id)
			}
			n.mu.Unlock()
			close(t.done)
		}()
		params.Start()
	}()
	return t, nil
}

// Join blocks until the worker function has returned.
func (t *NodeThread) Join() { <-t.done }

// Done exposes the completion channel for select-based joins.
func (t *NodeThread) Done() <-chan struct{} { return t.done }

// State reports the thread's lifecycle phase.
func (t *NodeThread) State() ThreadState { return ThreadState(t.state.Load()) }

// Name returns the label given at spawn time.
func (t *NodeThread) Name() string { return t.name }

// ID returns the node-local thread identifier.
func (t *NodeThread) ID() uint64 { return t.id }

// NumThreads reports how many worker threads the node currently manages.
func (n *Node) NumThreads() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.threads)
}
