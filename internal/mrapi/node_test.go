package mrapi

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func newTestNode(t *testing.T) *Node {
	t.Helper()
	sys := NewSystem(nil)
	n, err := sys.Initialize(1, 1, nil)
	if err != nil {
		t.Fatalf("Initialize: %v", err)
	}
	return n
}

func TestInitializeRegistersNode(t *testing.T) {
	sys := NewSystem(nil)
	n, err := sys.Initialize(1, 42, &NodeAttributes{Name: "boss", Affinity: 3})
	if err != nil {
		t.Fatalf("Initialize: %v", err)
	}
	if n.ID() != 42 {
		t.Errorf("ID = %d, want 42", n.ID())
	}
	if n.Domain().ID() != 1 {
		t.Errorf("domain = %d, want 1", n.Domain().ID())
	}
	if !n.Initialized() {
		t.Error("node should report initialized")
	}
	if got := n.Attributes(); got.Name != "boss" || got.Affinity != 3 {
		t.Errorf("attributes = %+v", got)
	}
	d, err := sys.Domain(1)
	if err != nil {
		t.Fatalf("Domain: %v", err)
	}
	if d.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", d.NumNodes())
	}
	if back, err := d.Node(42); err != nil || back != n {
		t.Errorf("Node(42) = %v, %v", back, err)
	}
}

func TestInitializeDuplicateNodeFails(t *testing.T) {
	sys := NewSystem(nil)
	if _, err := sys.Initialize(1, 7, nil); err != nil {
		t.Fatalf("first Initialize: %v", err)
	}
	_, err := sys.Initialize(1, 7, nil)
	if !errors.Is(err, ErrNodeInitFailed) {
		t.Errorf("duplicate Initialize error = %v, want ErrNodeInitFailed", err)
	}
}

func TestSameNodeIDInDifferentDomains(t *testing.T) {
	sys := NewSystem(nil)
	if _, err := sys.Initialize(1, 7, nil); err != nil {
		t.Fatalf("domain 1: %v", err)
	}
	if _, err := sys.Initialize(2, 7, nil); err != nil {
		t.Fatalf("domain 2 same node id should succeed: %v", err)
	}
}

func TestFinalizeRemovesNode(t *testing.T) {
	sys := NewSystem(nil)
	n, _ := sys.Initialize(1, 7, nil)
	if err := n.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if n.Initialized() {
		t.Error("finalized node still reports initialized")
	}
	if err := n.Finalize(); !errors.Is(err, ErrNodeNotInit) {
		t.Errorf("double Finalize = %v, want ErrNodeNotInit", err)
	}
	d, _ := sys.Domain(1)
	if _, err := d.Node(7); !errors.Is(err, ErrNodeInvalid) {
		t.Errorf("lookup after finalize = %v, want ErrNodeInvalid", err)
	}
	// The ID can be reused after finalization.
	if _, err := sys.Initialize(1, 7, nil); err != nil {
		t.Errorf("re-Initialize after Finalize: %v", err)
	}
}

func TestFinalizedNodeRejectsResourceOps(t *testing.T) {
	n := newTestNode(t)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.MutexCreate(1, nil); !errors.Is(err, ErrNodeNotInit) {
		t.Errorf("MutexCreate on dead node = %v", err)
	}
	if _, err := n.ShmemCreate(1, 16, nil); !errors.Is(err, ErrNodeNotInit) {
		t.Errorf("ShmemCreate on dead node = %v", err)
	}
	if _, err := n.SpawnThread(ThreadParams{Start: func() {}}); !errors.Is(err, ErrNodeNotInit) {
		t.Errorf("SpawnThread on dead node = %v", err)
	}
}

func TestSpawnThreadRunsAndDeregisters(t *testing.T) {
	n := newTestNode(t)
	var ran atomic.Bool
	th, err := n.SpawnThread(ThreadParams{Name: "w0", Start: func() { ran.Store(true) }})
	if err != nil {
		t.Fatalf("SpawnThread: %v", err)
	}
	th.Join()
	if !ran.Load() {
		t.Error("worker body did not run")
	}
	if th.State() != ThreadExited {
		t.Errorf("state = %v, want ThreadExited", th.State())
	}
	if th.Name() != "w0" {
		t.Errorf("name = %q", th.Name())
	}
	if n.NumThreads() != 0 {
		t.Errorf("NumThreads after join = %d, want 0", n.NumThreads())
	}
}

func TestSpawnThreadNilStart(t *testing.T) {
	n := newTestNode(t)
	if _, err := n.SpawnThread(ThreadParams{}); !errors.Is(err, ErrParameter) {
		t.Errorf("nil start = %v, want ErrParameter", err)
	}
}

func TestSpawnManyThreadsConcurrently(t *testing.T) {
	n := newTestNode(t)
	const workers = 50
	var count atomic.Int64
	var start sync.WaitGroup
	start.Add(1)
	threads := make([]*NodeThread, workers)
	for i := 0; i < workers; i++ {
		th, err := n.SpawnThread(ThreadParams{Start: func() {
			start.Wait()
			count.Add(1)
		}})
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		threads[i] = th
	}
	if got := n.NumThreads(); got != workers {
		t.Errorf("NumThreads while running = %d, want %d", got, workers)
	}
	start.Done()
	for _, th := range threads {
		th.Join()
	}
	if count.Load() != workers {
		t.Errorf("count = %d, want %d", count.Load(), workers)
	}
}

func TestFinalizeJoinsRunningThreads(t *testing.T) {
	n := newTestNode(t)
	release := make(chan struct{})
	var done atomic.Bool
	if _, err := n.SpawnThread(ThreadParams{Start: func() {
		<-release
		done.Store(true)
	}}); err != nil {
		t.Fatal(err)
	}
	go close(release)
	if err := n.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if !done.Load() {
		t.Error("Finalize returned before worker completed")
	}
}

func TestThreadIDsAreUnique(t *testing.T) {
	n := newTestNode(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		th, err := n.SpawnThread(ThreadParams{Start: func() {}})
		if err != nil {
			t.Fatal(err)
		}
		if seen[th.ID()] {
			t.Fatalf("duplicate thread id %d", th.ID())
		}
		seen[th.ID()] = true
		th.Join()
	}
}

func TestDefaultSystemIsSingleton(t *testing.T) {
	a, b := DefaultSystem(), DefaultSystem()
	if a != b {
		t.Error("DefaultSystem returned two instances")
	}
}

func TestDomainsEnumeration(t *testing.T) {
	sys := NewSystem(nil)
	for _, d := range []DomainID{3, 9, 12} {
		if _, err := sys.Initialize(d, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	ids := sys.Domains()
	if len(ids) != 3 {
		t.Fatalf("Domains = %v, want 3 entries", ids)
	}
	if _, err := sys.Domain(99); !errors.Is(err, ErrDomainInvalid) {
		t.Errorf("unknown domain = %v, want ErrDomainInvalid", err)
	}
}

func TestStatusErrorStrings(t *testing.T) {
	cases := map[Status]string{
		Success:        "MRAPI_SUCCESS",
		ErrNodeNotInit: "MRAPI_ERR_NODE_NOTINIT",
		ErrTimeout:     "MRAPI_TIMEOUT",
		Status(9999):   "MRAPI_STATUS_UNKNOWN",
	}
	for st, want := range cases {
		if st.Error() != want || st.String() != want {
			t.Errorf("Status(%d) = %q, want %q", uint32(st), st.Error(), want)
		}
	}
}
