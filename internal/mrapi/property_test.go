package mrapi

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: for any write offset/content within bounds, an rmem read-back
// returns exactly what was written (remote memory is a faithful store).
func TestPropRmemRoundTrip(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(1, 4096, nil)
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		offset := int(off) % 2048
		if len(data) > 1024 {
			data = data[:1024]
		}
		if err := r.Write(a, offset, data); err != nil {
			return false
		}
		back := make([]byte, len(data))
		if err := r.Read(a, offset, back); err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: strided write followed by strided read with identical geometry
// is the identity, for any valid geometry.
func TestPropRmemStridedRoundTrip(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(2, 1<<16, nil)
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	f := func(e, s, c uint8, seed byte) bool {
		elem := int(e)%16 + 1
		stride := elem + int(s)%16
		count := int(c) % 32
		if stride*count+elem > r.Size() {
			return true // geometry out of range: skip
		}
		data := make([]byte, elem*count)
		for i := range data {
			data[i] = seed + byte(i)
		}
		if err := r.WriteStrided(a, 0, elem, stride, count, data); err != nil {
			return false
		}
		back := make([]byte, len(data))
		if err := r.ReadStrided(a, 0, elem, stride, count, back); err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a recursive mutex locked k times unwinds with exactly k unlocks
// in reverse key order, never fewer, and is free afterwards.
func TestPropRecursiveMutexDepth(t *testing.T) {
	a, _ := twoNodes(t)
	m, _ := a.MutexCreate(1, &MutexAttributes{Recursive: true})
	f := func(depth8 uint8) bool {
		depth := int(depth8)%20 + 1
		keys := make([]LockKey, depth)
		for i := 0; i < depth; i++ {
			k, err := m.Lock(a, TimeoutInfinite)
			if err != nil {
				return false
			}
			keys[i] = k
		}
		if !m.Held() {
			return false
		}
		for i := depth - 1; i >= 0; i-- {
			if err := m.Unlock(a, keys[i]); err != nil {
				return false
			}
			held := m.Held()
			if i > 0 && !held {
				return false // released too early
			}
		}
		return !m.Held()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a semaphore's count after a sequence of k locks and j unlocks
// (k <= initial, j <= k) is initial - k + j.
func TestPropSemaphoreCounting(t *testing.T) {
	f := func(init8, locks8, posts8 uint8) bool {
		sys := NewSystem(nil)
		n, err := sys.Initialize(1, 1, nil)
		if err != nil {
			return false
		}
		initial := int(init8)%50 + 1
		locks := int(locks8) % (initial + 1)
		posts := 0
		if locks > 0 {
			posts = int(posts8) % (locks + 1)
		}
		s, err := n.SemCreate(1, initial, nil)
		if err != nil {
			return false
		}
		for i := 0; i < locks; i++ {
			if err := s.Lock(n, TimeoutImmediate); err != nil {
				return false
			}
		}
		for i := 0; i < posts; i++ {
			if err := s.Unlock(n); err != nil {
				return false
			}
		}
		return s.Count() == initial-locks+posts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SysV shmem sizes are always rounded up to whole pages and are
// never smaller than the request; malloc shmem sizes are exact.
func TestPropShmemSizing(t *testing.T) {
	a, _ := twoNodes(t)
	key := Key(0)
	f := func(req16 uint16, useMalloc bool) bool {
		size := int(req16)%20000 + 1
		key++
		kind := ShmemSysV
		if useMalloc {
			kind = ShmemMalloc
		}
		s, err := a.ShmemCreate(key, size, &ShmemAttributes{Kind: kind})
		if err != nil {
			return false
		}
		defer func() { _ = s.Delete(a) }()
		if useMalloc {
			return s.Size() == size
		}
		return s.Size() >= size && s.Size()%PageSize == 0 && s.Size()-size < PageSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
