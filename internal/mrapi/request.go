package mrapi

import (
	"sync"
	"time"
)

// Request is a handle to a non-blocking MRAPI operation
// (mrapi_request_t): Test polls it, Wait blocks on it, Cancel attempts to
// abort it. The remote-memory transfer functions come in _i variants that
// return Requests, mirroring mrapi_rmem_read_i / mrapi_rmem_write_i —
// remote memories sit behind DMA engines, so their transfers are the
// operations MRAPI makes asynchronous.
type Request struct {
	mu       sync.Mutex
	done     bool
	canceled bool
	status   Status
	doneCh   chan struct{}
	cancelCh chan struct{}
}

func newRequest() *Request {
	return &Request{doneCh: make(chan struct{}), cancelCh: make(chan struct{})}
}

// complete records the outcome unless the request was canceled first.
func (r *Request) complete(st Status) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	r.status = st
	close(r.doneCh)
}

// Test reports whether the operation finished (mrapi_test); if it has,
// err carries the operation's failure, if any.
func (r *Request) Test() (finished bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done {
		return false, nil
	}
	return true, r.err()
}

// Wait blocks up to timeout for completion (mrapi_wait).
func (r *Request) Wait(timeout Timeout) error {
	if timeout == TimeoutInfinite {
		<-r.doneCh
	} else {
		t := time.NewTimer(time.Duration(timeout))
		defer t.Stop()
		select {
		case <-r.doneCh:
		case <-t.C:
			return ErrTimeout
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err()
}

func (r *Request) err() error {
	if r.status == Success {
		return nil
	}
	return r.status
}

// Cancel aborts a pending operation (mrapi_cancel). Completed requests
// cannot be canceled.
func (r *Request) Cancel() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return ErrRequestInvalid
	}
	r.done = true
	r.canceled = true
	r.status = ErrRequestCanceled
	close(r.doneCh)
	close(r.cancelCh)
	return nil
}

// dmaLatencyPerBurst is the simulated DMA engine's per-burst transfer
// time; it is what makes asynchronous transfers observable as pending.
const dmaLatencyPerBurst = 2 * time.Microsecond

// ReadI starts an asynchronous read (mrapi_rmem_read_i): the transfer
// completes in the background after the simulated DMA latency; dst must
// stay untouched until the request completes.
func (r *Rmem) ReadI(n *Node, offset int, dst []byte) *Request {
	return r.accessI(n, offset, dst, false)
}

// WriteI starts an asynchronous write (mrapi_rmem_write_i); src must stay
// untouched until the request completes.
func (r *Rmem) WriteI(n *Node, offset int, src []byte) *Request {
	return r.accessI(n, offset, src, true)
}

func (r *Rmem) accessI(n *Node, offset int, data []byte, write bool) *Request {
	req := newRequest()
	latency := time.Duration(0)
	if r.attrs.Access == RmemDMA {
		latency = dmaLatencyPerBurst * time.Duration((len(data)+DMABurstSize-1)/DMABurstSize)
	}
	go func() {
		if latency > 0 {
			t := time.NewTimer(latency)
			defer t.Stop()
			select {
			case <-t.C:
			case <-req.cancelCh:
				return // canceled before the engine fired
			}
		}
		var err error
		if write {
			err = r.Write(n, offset, data)
		} else {
			err = r.Read(n, offset, data)
		}
		if err == nil {
			req.complete(Success)
			return
		}
		if st, ok := err.(Status); ok {
			req.complete(st)
		} else {
			req.complete(ErrParameter)
		}
	}()
	return req
}
