package mrapi

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func dmaRmem(t *testing.T) (*Node, *Rmem) {
	t.Helper()
	a, _ := twoNodes(t)
	r, err := a.RmemCreate(1, 2048*DMABurstSize, &RmemAttributes{Access: RmemDMA})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	return a, r
}

func TestAsyncWriteReadRoundTrip(t *testing.T) {
	a, r := dmaRmem(t)
	src := bytes.Repeat([]byte{0x5A}, 2*DMABurstSize)
	wr := r.WriteI(a, 64, src)
	if err := wr.Wait(TimeoutInfinite); err != nil {
		t.Fatalf("async write: %v", err)
	}
	dst := make([]byte, len(src))
	rd := r.ReadI(a, 64, dst)
	if err := rd.Wait(Timeout(2 * time.Second)); err != nil {
		t.Fatalf("async read: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("async round trip corrupted data")
	}
	if done, err := rd.Test(); !done || err != nil {
		t.Errorf("Test after completion = %v, %v", done, err)
	}
}

func TestAsyncTestPendingThenDone(t *testing.T) {
	a, r := dmaRmem(t)
	// Large transfer: many bursts => measurable simulated latency.
	req := r.WriteI(a, 0, make([]byte, 128*DMABurstSize))
	if done, _ := req.Test(); done {
		t.Log("transfer completed instantly; latency model may be too fast for this host")
	}
	if err := req.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	done, err := req.Test()
	if !done || err != nil {
		t.Errorf("Test = %v, %v", done, err)
	}
}

func TestAsyncErrorPropagates(t *testing.T) {
	a, r := dmaRmem(t)
	// Unaligned DMA length fails inside the engine.
	req := r.WriteI(a, 0, make([]byte, 10))
	if err := req.Wait(TimeoutInfinite); !errors.Is(err, ErrRmemTypeNotValid) {
		t.Errorf("async error = %v, want ErrRmemTypeNotValid", err)
	}
}

func TestAsyncWaitTimeout(t *testing.T) {
	a, r := dmaRmem(t)
	req := r.WriteI(a, 0, make([]byte, 512*DMABurstSize)) // ~1ms simulated
	if err := req.Wait(Timeout(1 * time.Nanosecond)); !errors.Is(err, ErrTimeout) {
		t.Errorf("wait = %v, want ErrTimeout", err)
	}
	if err := req.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncCancel(t *testing.T) {
	a, r := dmaRmem(t)
	req := r.WriteI(a, 0, make([]byte, 1024*DMABurstSize)) // ~2ms simulated
	if err := req.Cancel(); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if err := req.Wait(TimeoutInfinite); !errors.Is(err, ErrRequestCanceled) {
		t.Errorf("wait canceled = %v", err)
	}
	// Canceling again fails: the request is complete.
	if err := req.Cancel(); !errors.Is(err, ErrRequestInvalid) {
		t.Errorf("double cancel = %v", err)
	}
}

func TestAsyncDirectAccessHasNoLatency(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(2, 256, nil) // direct access
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	req := r.WriteI(a, 0, []byte("immediate"))
	if err := req.Wait(Timeout(time.Second)); err != nil {
		t.Fatal(err)
	}
}
