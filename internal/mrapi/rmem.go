package mrapi

import "sync"

// RmemAccess selects how a remote-memory segment is reached, mirroring
// mrapi_rmem_atype_t.
type RmemAccess int

const (
	// RmemDirect models directly addressable remote memory (e.g. a
	// memory-mapped window onto another device's SRAM).
	RmemDirect RmemAccess = iota
	// RmemDMA models remote memory that must be reached through a DMA
	// engine: transfers are counted and sized so the platform cost model
	// can charge for them, and sub-word access granularity is rejected.
	RmemDMA
)

func (a RmemAccess) String() string {
	if a == RmemDMA {
		return "MRAPI_RMEM_DMA"
	}
	return "MRAPI_RMEM_DUMMY" // spec name for the direct/trivial access type
}

// DMABurstSize is the minimum transfer granularity of the modeled DMA
// engine, in bytes.
const DMABurstSize = 32

// RmemAttributes configure a remote-memory segment at creation.
type RmemAttributes struct {
	// Access selects direct or DMA transfer semantics.
	Access RmemAccess
}

// RmemStats counts the traffic a segment has seen; the platform cost model
// reads these to charge simulated transfer time.
type RmemStats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten uint64
	DMABursts               uint64
}

// Rmem is an MRAPI remote-memory segment: memory that is NOT part of the
// node's local address space and is reached by explicit read/write (or
// scatter/gather) transfers. The paper's platform has such memories on its
// coprocessors; the OpenMP runtime itself only needs shmem, but rmem
// completes the MRAPI memory-primitive surface.
type Rmem struct {
	domain *Domain
	key    Key
	attrs  RmemAttributes

	mu       sync.Mutex
	buf      []byte
	attached map[NodeID]struct{}
	deleted  bool
	stats    RmemStats
}

// RmemCreate creates a remote-memory segment of the given size under key
// (mrapi_rmem_create).
func (n *Node) RmemCreate(key Key, size int, attrs *RmemAttributes) (*Rmem, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, ErrParameter
	}
	a := RmemAttributes{}
	if attrs != nil {
		a = *attrs
	}
	d := n.domain
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.rmems[key]; dup {
		return nil, ErrRmemExists
	}
	r := &Rmem{
		domain:   d,
		key:      key,
		attrs:    a,
		buf:      make([]byte, size),
		attached: make(map[NodeID]struct{}),
	}
	d.rmems[key] = r
	return r, nil
}

// RmemGet looks up an existing remote-memory segment by key
// (mrapi_rmem_get).
func (n *Node) RmemGet(key Key) (*Rmem, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	d := n.domain
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.rmems[key]
	if !ok {
		return nil, ErrRmemInvalid
	}
	return r, nil
}

// Key returns the database key of the segment.
func (r *Rmem) Key() Key { return r.key }

// Size returns the segment size in bytes.
func (r *Rmem) Size() int { return len(r.buf) }

// Attach registers the node as a user of the segment (mrapi_rmem_attach).
func (r *Rmem) Attach(n *Node) error {
	if err := n.checkLive(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deleted {
		return ErrRmemInvalid
	}
	r.attached[n.id] = struct{}{}
	return nil
}

// Detach deregisters the node (mrapi_rmem_detach).
func (r *Rmem) Detach(n *Node) error {
	if err := n.checkLive(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.attached[n.id]; !ok {
		return ErrRmemNotAttached
	}
	delete(r.attached, n.id)
	return nil
}

// Read copies len(dst) bytes starting at offset into dst
// (mrapi_rmem_read). The node must be attached. DMA-kind segments reject
// transfers that are not a multiple of the burst size.
func (r *Rmem) Read(n *Node, offset int, dst []byte) error {
	return r.access(n, offset, dst, false)
}

// Write copies src into the segment starting at offset (mrapi_rmem_write).
func (r *Rmem) Write(n *Node, offset int, src []byte) error {
	return r.access(n, offset, src, true)
}

func (r *Rmem) access(n *Node, offset int, data []byte, write bool) error {
	if err := n.checkLive(); err != nil {
		return err
	}
	if offset < 0 || offset+len(data) > len(r.buf) {
		return ErrParameter
	}
	if r.attrs.Access == RmemDMA && len(data)%DMABurstSize != 0 {
		return ErrRmemTypeNotValid
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deleted {
		return ErrRmemInvalid
	}
	if _, ok := r.attached[n.id]; !ok {
		return ErrRmemNotAttached
	}
	if write {
		copy(r.buf[offset:], data)
		r.stats.Writes++
		r.stats.BytesWritten += uint64(len(data))
	} else {
		copy(data, r.buf[offset:])
		r.stats.Reads++
		r.stats.BytesRead += uint64(len(data))
	}
	if r.attrs.Access == RmemDMA {
		r.stats.DMABursts += uint64(len(data) / DMABurstSize)
	}
	return nil
}

// ReadStrided performs a scatter read: count elements of elemSize bytes,
// separated by stride bytes in the segment, packed densely into dst
// (mrapi_rmem_read with stride arguments). The stride must be at least the
// element size.
func (r *Rmem) ReadStrided(n *Node, offset, elemSize, stride, count int, dst []byte) error {
	return r.strided(n, offset, elemSize, stride, count, dst, false)
}

// WriteStrided performs a gather write: count densely packed elements from
// src land elemSize-apart-by-stride in the segment.
func (r *Rmem) WriteStrided(n *Node, offset, elemSize, stride, count int, src []byte) error {
	return r.strided(n, offset, elemSize, stride, count, src, true)
}

func (r *Rmem) strided(n *Node, offset, elemSize, stride, count int, data []byte, write bool) error {
	if err := n.checkLive(); err != nil {
		return err
	}
	if elemSize <= 0 || count < 0 || offset < 0 {
		return ErrParameter
	}
	if stride < elemSize {
		return ErrRmemStride
	}
	if count == 0 {
		return nil
	}
	last := offset + (count-1)*stride + elemSize
	if last > len(r.buf) || len(data) < count*elemSize {
		return ErrParameter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deleted {
		return ErrRmemInvalid
	}
	if _, ok := r.attached[n.id]; !ok {
		return ErrRmemNotAttached
	}
	for i := 0; i < count; i++ {
		seg := r.buf[offset+i*stride : offset+i*stride+elemSize]
		pack := data[i*elemSize : (i+1)*elemSize]
		if write {
			copy(seg, pack)
		} else {
			copy(pack, seg)
		}
	}
	if write {
		r.stats.Writes++
		r.stats.BytesWritten += uint64(count * elemSize)
	} else {
		r.stats.Reads++
		r.stats.BytesRead += uint64(count * elemSize)
	}
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (r *Rmem) Stats() RmemStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Delete removes the segment from the domain database
// (mrapi_rmem_delete). Deletion fails with ErrRmemAttached while nodes are
// attached.
func (r *Rmem) Delete(n *Node) error {
	if err := n.checkLive(); err != nil {
		return err
	}
	r.mu.Lock()
	if r.deleted {
		r.mu.Unlock()
		return ErrRmemInvalid
	}
	if len(r.attached) > 0 {
		r.mu.Unlock()
		return ErrRmemAttached
	}
	r.deleted = true
	r.mu.Unlock()

	d := r.domain
	d.mu.Lock()
	delete(d.rmems, r.key)
	d.mu.Unlock()
	return nil
}
