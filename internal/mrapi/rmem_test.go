package mrapi

import (
	"bytes"
	"errors"
	"testing"
)

func TestRmemReadWriteRoundTrip(t *testing.T) {
	a, b := twoNodes(t)
	r, err := a.RmemCreate(1, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(b); err != nil {
		t.Fatal(err)
	}
	msg := []byte("remote payload")
	if err := r.Write(a, 100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := r.Read(b, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read %q, want %q", got, msg)
	}
	st := r.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesRead != uint64(len(msg)) || st.BytesWritten != uint64(len(msg)) {
		t.Errorf("byte counters = %+v", st)
	}
}

func TestRmemRequiresAttach(t *testing.T) {
	a, b := twoNodes(t)
	r, _ := a.RmemCreate(1, 64, nil)
	buf := make([]byte, 8)
	if err := r.Read(b, 0, buf); !errors.Is(err, ErrRmemNotAttached) {
		t.Errorf("read unattached = %v, want ErrRmemNotAttached", err)
	}
	if err := r.Detach(b); !errors.Is(err, ErrRmemNotAttached) {
		t.Errorf("detach unattached = %v, want ErrRmemNotAttached", err)
	}
}

func TestRmemBoundsChecks(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(1, 64, nil)
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := r.Read(a, 60, buf); !errors.Is(err, ErrParameter) {
		t.Errorf("overflow read = %v, want ErrParameter", err)
	}
	if err := r.Write(a, -1, buf); !errors.Is(err, ErrParameter) {
		t.Errorf("negative offset = %v, want ErrParameter", err)
	}
}

func TestRmemDMAGranularity(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(1, 256, &RmemAttributes{Access: RmemDMA})
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(a, 0, make([]byte, 10)); !errors.Is(err, ErrRmemTypeNotValid) {
		t.Errorf("sub-burst DMA write = %v, want ErrRmemTypeNotValid", err)
	}
	if err := r.Write(a, 0, make([]byte, 2*DMABurstSize)); err != nil {
		t.Fatalf("aligned DMA write: %v", err)
	}
	if st := r.Stats(); st.DMABursts != 2 {
		t.Errorf("DMABursts = %d, want 2", st.DMABursts)
	}
}

func TestRmemStrided(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(1, 100, nil)
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	// Gather-write 4 elements of 2 bytes with stride 10.
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := r.WriteStrided(a, 0, 2, 10, 4, src); err != nil {
		t.Fatal(err)
	}
	flat := make([]byte, 32)
	if err := r.Read(a, 0, flat); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if flat[i*10] != src[i*2] || flat[i*10+1] != src[i*2+1] {
			t.Errorf("element %d misplaced: %v", i, flat)
		}
	}
	// Scatter-read them back densely.
	dst := make([]byte, 8)
	if err := r.ReadStrided(a, 0, 2, 10, 4, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Errorf("strided read = %v, want %v", dst, src)
	}
}

func TestRmemStridedValidation(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(1, 100, nil)
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := r.ReadStrided(a, 0, 4, 2, 4, buf); !errors.Is(err, ErrRmemStride) {
		t.Errorf("stride < elem = %v, want ErrRmemStride", err)
	}
	if err := r.ReadStrided(a, 0, 4, 40, 4, buf); !errors.Is(err, ErrParameter) {
		t.Errorf("out-of-bounds strided = %v, want ErrParameter", err)
	}
	if err := r.ReadStrided(a, 0, 4, 8, 0, nil); err != nil {
		t.Errorf("zero-count strided should be a no-op: %v", err)
	}
}

func TestRmemDeleteBlockedByAttachment(t *testing.T) {
	a, _ := twoNodes(t)
	r, _ := a.RmemCreate(1, 64, nil)
	if err := r.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(a); !errors.Is(err, ErrRmemAttached) {
		t.Errorf("delete while attached = %v, want ErrRmemAttached", err)
	}
	if err := r.Detach(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(a); err != nil {
		t.Fatalf("delete after detach: %v", err)
	}
	if _, err := a.RmemGet(1); !errors.Is(err, ErrRmemInvalid) {
		t.Errorf("get after delete = %v, want ErrRmemInvalid", err)
	}
}

func TestRmemDuplicateKey(t *testing.T) {
	a, _ := twoNodes(t)
	if _, err := a.RmemCreate(1, 64, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RmemCreate(1, 64, nil); !errors.Is(err, ErrRmemExists) {
		t.Errorf("duplicate = %v, want ErrRmemExists", err)
	}
	if _, err := a.RmemCreate(2, 0, nil); !errors.Is(err, ErrParameter) {
		t.Errorf("zero size = %v, want ErrParameter", err)
	}
}
