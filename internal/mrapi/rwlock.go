package mrapi

import "sync"

// RWLockMode selects shared (reader) or exclusive (writer) acquisition.
type RWLockMode int

const (
	// Reader acquires the lock shared: any number of concurrent readers.
	Reader RWLockMode = iota
	// Writer acquires the lock exclusive.
	Writer
)

func (m RWLockMode) String() string {
	if m == Reader {
		return "MRAPI_RWL_READER"
	}
	return "MRAPI_RWL_WRITER"
}

// RWLock is an MRAPI reader/writer lock: key-addressed, domain-wide, timed,
// writer-preferring (a queued writer blocks new readers, preventing writer
// starvation — the policy of the C reference implementation).
type RWLock struct {
	domain *Domain
	key    Key

	mu             sync.Mutex
	readers        int
	writer         *Node
	writersWaiting int
	deleted        bool
	readQ, writeQ  waitQueue
}

// RWLockCreate registers a reader/writer lock under key
// (mrapi_rwl_create).
func (n *Node) RWLockCreate(key Key) (*RWLock, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	d := n.domain
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.rwlocks[key]; dup {
		return nil, ErrRwlExists
	}
	l := &RWLock{domain: d, key: key}
	d.rwlocks[key] = l
	return l, nil
}

// RWLockGet looks up an existing reader/writer lock by key (mrapi_rwl_get).
func (n *Node) RWLockGet(key Key) (*RWLock, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	d := n.domain
	d.mu.RLock()
	defer d.mu.RUnlock()
	l, ok := d.rwlocks[key]
	if !ok {
		return nil, ErrRwlInvalid
	}
	return l, nil
}

// Key returns the database key of the lock.
func (l *RWLock) Key() Key { return l.key }

// Lock acquires the lock in the given mode, waiting up to timeout
// (mrapi_rwl_lock). Re-acquiring exclusively while this node already holds
// it exclusively fails with ErrRwlLocked.
func (l *RWLock) Lock(node *Node, mode RWLockMode, timeout Timeout) error {
	if node == nil {
		return ErrParameter
	}
	if err := node.checkLive(); err != nil {
		return err
	}
	l.mu.Lock()
	if mode == Writer {
		l.writersWaiting++
		for {
			if l.deleted {
				l.writersWaiting--
				l.mu.Unlock()
				return ErrRwlDeleted
			}
			if l.writer == node {
				l.writersWaiting--
				l.mu.Unlock()
				return ErrRwlLocked
			}
			if l.writer == nil && l.readers == 0 {
				l.writersWaiting--
				l.writer = node
				l.mu.Unlock()
				node.locksTaken.Add(1)
				return nil
			}
			if timeout == TimeoutImmediate {
				l.writersWaiting--
				l.mu.Unlock()
				return ErrTimeout
			}
			if st := l.writeQ.wait(&l.mu, timeout); st != Success {
				l.writersWaiting--
				l.mu.Unlock()
				return st
			}
		}
	}
	// Reader path: blocked while a writer holds the lock or is queued.
	for {
		if l.deleted {
			l.mu.Unlock()
			return ErrRwlDeleted
		}
		if l.writer == nil && l.writersWaiting == 0 {
			l.readers++
			l.mu.Unlock()
			node.locksTaken.Add(1)
			return nil
		}
		if timeout == TimeoutImmediate {
			l.mu.Unlock()
			return ErrTimeout
		}
		if st := l.readQ.wait(&l.mu, timeout); st != Success {
			l.mu.Unlock()
			return st
		}
	}
}

// Unlock releases the lock in the given mode (mrapi_rwl_unlock).
func (l *RWLock) Unlock(node *Node, mode RWLockMode) error {
	if node == nil {
		return ErrParameter
	}
	if err := node.checkLive(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.deleted {
		return ErrRwlDeleted
	}
	if mode == Writer {
		if l.writer != node {
			return ErrRwlNotLocked
		}
		l.writer = nil
	} else {
		if l.readers == 0 {
			return ErrRwlNotLocked
		}
		l.readers--
	}
	if l.writer == nil && l.readers == 0 && l.writersWaiting > 0 {
		l.writeQ.signalLocked()
	} else if l.writer == nil && l.writersWaiting == 0 {
		l.readQ.broadcastLocked()
	}
	return nil
}

// Readers reports the number of current shared holders (diagnostic).
func (l *RWLock) Readers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readers
}

// Delete removes the lock from the domain database, waking waiters with
// ErrRwlDeleted (mrapi_rwl_delete).
func (l *RWLock) Delete(node *Node) error {
	if err := node.checkLive(); err != nil {
		return err
	}
	l.mu.Lock()
	if l.deleted {
		l.mu.Unlock()
		return ErrRwlInvalid
	}
	l.deleted = true
	l.readQ.broadcastLocked()
	l.writeQ.broadcastLocked()
	l.mu.Unlock()

	d := l.domain
	d.mu.Lock()
	delete(d.rwlocks, l.key)
	d.mu.Unlock()
	return nil
}
