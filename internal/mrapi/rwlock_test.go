package mrapi

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// nNodes creates count nodes in one fresh domain.
func nNodes(t *testing.T, count int) []*Node {
	t.Helper()
	sys := NewSystem(nil)
	out := make([]*Node, count)
	for i := range out {
		n, err := sys.Initialize(1, NodeID(i+1), nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = n
	}
	return out
}

func TestRWLockManyReaders(t *testing.T) {
	ns := nNodes(t, 4)
	l, err := ns[0].RWLockCreate(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		if err := l.Lock(n, Reader, TimeoutInfinite); err != nil {
			t.Fatalf("reader lock: %v", err)
		}
	}
	if l.Readers() != 4 {
		t.Errorf("Readers = %d, want 4", l.Readers())
	}
	for _, n := range ns {
		if err := l.Unlock(n, Reader); err != nil {
			t.Fatalf("reader unlock: %v", err)
		}
	}
}

func TestRWLockWriterExcludesReaders(t *testing.T) {
	ns := nNodes(t, 2)
	l, _ := ns[0].RWLockCreate(1)
	if err := l.Lock(ns[0], Writer, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if err := l.Lock(ns[1], Reader, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Errorf("reader during write = %v, want ErrTimeout", err)
	}
	if err := l.Lock(ns[1], Writer, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Errorf("second writer = %v, want ErrTimeout", err)
	}
	if err := l.Unlock(ns[0], Writer); err != nil {
		t.Fatal(err)
	}
	if err := l.Lock(ns[1], Reader, TimeoutInfinite); err != nil {
		t.Errorf("reader after writer release: %v", err)
	}
}

func TestRWLockWriterReacquireFails(t *testing.T) {
	ns := nNodes(t, 1)
	l, _ := ns[0].RWLockCreate(1)
	if err := l.Lock(ns[0], Writer, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if err := l.Lock(ns[0], Writer, TimeoutInfinite); !errors.Is(err, ErrRwlLocked) {
		t.Errorf("writer self-relock = %v, want ErrRwlLocked", err)
	}
}

func TestRWLockWriterPreference(t *testing.T) {
	ns := nNodes(t, 3)
	l, _ := ns[0].RWLockCreate(1)
	// Reader holds; writer queues; a new reader must now wait behind the
	// writer (anti-starvation policy).
	if err := l.Lock(ns[0], Reader, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	writerGot := make(chan error, 1)
	go func() { writerGot <- l.Lock(ns[1], Writer, TimeoutInfinite) }()
	time.Sleep(5 * time.Millisecond)
	if err := l.Lock(ns[2], Reader, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Errorf("reader while writer queued = %v, want ErrTimeout", err)
	}
	if err := l.Unlock(ns[0], Reader); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-writerGot:
		if err != nil {
			t.Fatalf("queued writer: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued writer never admitted")
	}
	if err := l.Unlock(ns[1], Writer); err != nil {
		t.Fatal(err)
	}
	// Readers flow again after the writer drains.
	if err := l.Lock(ns[2], Reader, Timeout(time.Second)); err != nil {
		t.Errorf("reader after writer drain: %v", err)
	}
}

func TestRWLockUnlockErrors(t *testing.T) {
	ns := nNodes(t, 2)
	l, _ := ns[0].RWLockCreate(1)
	if err := l.Unlock(ns[0], Reader); !errors.Is(err, ErrRwlNotLocked) {
		t.Errorf("unlock unheld reader = %v", err)
	}
	if err := l.Unlock(ns[0], Writer); !errors.Is(err, ErrRwlNotLocked) {
		t.Errorf("unlock unheld writer = %v", err)
	}
	if err := l.Lock(ns[0], Writer, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(ns[1], Writer); !errors.Is(err, ErrRwlNotLocked) {
		t.Errorf("unlock by non-owner = %v", err)
	}
}

func TestRWLockInvariantUnderContention(t *testing.T) {
	ns := nNodes(t, 6)
	l, _ := ns[0].RWLockCreate(1)
	var data int64
	var inWriter atomic.Int32
	var wg sync.WaitGroup
	for i, n := range ns {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for iter := 0; iter < 300; iter++ {
				if i%2 == 0 {
					if err := l.Lock(n, Writer, TimeoutInfinite); err != nil {
						t.Errorf("writer lock: %v", err)
						return
					}
					if inWriter.Add(1) != 1 {
						t.Error("two writers inside the lock")
					}
					data++
					inWriter.Add(-1)
					if err := l.Unlock(n, Writer); err != nil {
						t.Errorf("writer unlock: %v", err)
						return
					}
				} else {
					if err := l.Lock(n, Reader, TimeoutInfinite); err != nil {
						t.Errorf("reader lock: %v", err)
						return
					}
					if inWriter.Load() != 0 {
						t.Error("reader overlapped a writer")
					}
					_ = data
					if err := l.Unlock(n, Reader); err != nil {
						t.Errorf("reader unlock: %v", err)
						return
					}
				}
			}
		}(i, n)
	}
	wg.Wait()
	if data != 3*300 {
		t.Errorf("data = %d, want %d", data, 3*300)
	}
}

func TestRWLockDeleteWakesAll(t *testing.T) {
	ns := nNodes(t, 3)
	l, _ := ns[0].RWLockCreate(1)
	if err := l.Lock(ns[0], Writer, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- l.Lock(ns[1], Reader, TimeoutInfinite) }()
	go func() { errs <- l.Lock(ns[2], Writer, TimeoutInfinite) }()
	time.Sleep(5 * time.Millisecond)
	if err := l.Delete(ns[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrRwlDeleted) {
				t.Errorf("waiter %d error = %v, want ErrRwlDeleted", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter not woken by delete")
		}
	}
}

func TestRWLockDuplicateKey(t *testing.T) {
	ns := nNodes(t, 1)
	if _, err := ns[0].RWLockCreate(5); err != nil {
		t.Fatal(err)
	}
	if _, err := ns[0].RWLockCreate(5); !errors.Is(err, ErrRwlExists) {
		t.Errorf("duplicate = %v, want ErrRwlExists", err)
	}
	if _, err := ns[0].RWLockGet(6); !errors.Is(err, ErrRwlInvalid) {
		t.Errorf("unknown get = %v, want ErrRwlInvalid", err)
	}
}
