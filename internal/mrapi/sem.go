package mrapi

import "sync"

// SemAttributes configure a semaphore at creation.
type SemAttributes struct {
	// Max caps the count; 0 means "no explicit cap" and is normalized to
	// MaxSemValue.
	Max int
}

// MaxSemValue is the default maximum semaphore count, mirroring the C
// implementation's MRAPI_MAX_SEM_VALUE bound.
const MaxSemValue = 1 << 30

// Semaphore is an MRAPI counting semaphore: key-addressed, domain-wide,
// with timed acquisition.
type Semaphore struct {
	domain *Domain
	key    Key
	max    int

	mu      sync.Mutex
	count   int
	deleted bool
	waiters waitQueue
}

// SemCreate registers a counting semaphore under key with the given initial
// count (mrapi_sem_create). The count must satisfy 0 <= initial <= max.
func (n *Node) SemCreate(key Key, initial int, attrs *SemAttributes) (*Semaphore, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	max := MaxSemValue
	if attrs != nil && attrs.Max > 0 {
		max = attrs.Max
	}
	if initial < 0 || initial > max {
		return nil, ErrSemValue
	}
	d := n.domain
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.sems[key]; dup {
		return nil, ErrSemExists
	}
	s := &Semaphore{domain: d, key: key, max: max, count: initial}
	d.sems[key] = s
	return s, nil
}

// SemGet looks up an existing semaphore by key (mrapi_sem_get).
func (n *Node) SemGet(key Key) (*Semaphore, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	d := n.domain
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.sems[key]
	if !ok {
		return nil, ErrSemInvalid
	}
	return s, nil
}

// Key returns the database key of the semaphore.
func (s *Semaphore) Key() Key { return s.key }

// Lock decrements the semaphore, waiting up to timeout when the count is
// zero (mrapi_sem_lock).
func (s *Semaphore) Lock(node *Node, timeout Timeout) error {
	if node == nil {
		return ErrParameter
	}
	if err := node.checkLive(); err != nil {
		return err
	}
	s.mu.Lock()
	for {
		if s.deleted {
			s.mu.Unlock()
			return ErrSemDeleted
		}
		if s.count > 0 {
			s.count--
			s.mu.Unlock()
			node.locksTaken.Add(1)
			return nil
		}
		if timeout == TimeoutImmediate {
			s.mu.Unlock()
			return ErrTimeout
		}
		if st := s.waiters.wait(&s.mu, timeout); st != Success {
			s.mu.Unlock()
			return st
		}
	}
}

// Unlock increments the semaphore (mrapi_sem_unlock / post). Posting past
// the maximum fails with ErrSemNotLocked.
func (s *Semaphore) Unlock(node *Node) error {
	if node == nil {
		return ErrParameter
	}
	if err := node.checkLive(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted {
		return ErrSemDeleted
	}
	if s.count >= s.max {
		return ErrSemNotLocked
	}
	s.count++
	s.waiters.signalLocked()
	return nil
}

// Count reports the current count (diagnostic).
func (s *Semaphore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Delete removes the semaphore from the domain database, waking waiters
// with ErrSemDeleted (mrapi_sem_delete).
func (s *Semaphore) Delete(node *Node) error {
	if err := node.checkLive(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.deleted {
		s.mu.Unlock()
		return ErrSemInvalid
	}
	s.deleted = true
	s.waiters.broadcastLocked()
	s.mu.Unlock()

	d := s.domain
	d.mu.Lock()
	delete(d.sems, s.key)
	d.mu.Unlock()
	return nil
}
