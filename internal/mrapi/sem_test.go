package mrapi

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSemCreateValidation(t *testing.T) {
	a, _ := twoNodes(t)
	if _, err := a.SemCreate(1, -1, nil); !errors.Is(err, ErrSemValue) {
		t.Errorf("negative initial = %v, want ErrSemValue", err)
	}
	if _, err := a.SemCreate(1, 5, &SemAttributes{Max: 3}); !errors.Is(err, ErrSemValue) {
		t.Errorf("initial > max = %v, want ErrSemValue", err)
	}
	if _, err := a.SemCreate(1, 2, &SemAttributes{Max: 3}); err != nil {
		t.Fatalf("valid create: %v", err)
	}
	if _, err := a.SemCreate(1, 0, nil); !errors.Is(err, ErrSemExists) {
		t.Errorf("duplicate key = %v, want ErrSemExists", err)
	}
}

func TestSemLockUnlockCounts(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.SemCreate(1, 2, nil)
	if err := s.Lock(a, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if err := s.Lock(b, TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Errorf("count = %d, want 0", s.Count())
	}
	if err := s.Lock(a, TimeoutImmediate); !errors.Is(err, ErrTimeout) {
		t.Errorf("lock at zero = %v, want ErrTimeout", err)
	}
	if err := s.Unlock(a); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Errorf("count after post = %d, want 1", s.Count())
	}
}

func TestSemPostPastMaxFails(t *testing.T) {
	a, _ := twoNodes(t)
	s, _ := a.SemCreate(1, 1, &SemAttributes{Max: 1})
	if err := s.Unlock(a); !errors.Is(err, ErrSemNotLocked) {
		t.Errorf("post past max = %v, want ErrSemNotLocked", err)
	}
}

func TestSemBlocksUntilPost(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.SemCreate(1, 0, nil)
	got := make(chan error, 1)
	go func() { got <- s.Lock(b, TimeoutInfinite) }()
	time.Sleep(5 * time.Millisecond)
	if err := s.Unlock(a); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released")
	}
}

func TestSemAsMutexExcludes(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.SemCreate(1, 1, nil)
	const iters = 1500
	counter := 0
	var wg sync.WaitGroup
	for _, n := range []*Node{a, b} {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := s.Lock(n, TimeoutInfinite); err != nil {
					t.Errorf("Lock: %v", err)
					return
				}
				counter++
				if err := s.Unlock(n); err != nil {
					t.Errorf("Unlock: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	if counter != 2*iters {
		t.Errorf("counter = %d, want %d", counter, 2*iters)
	}
}

func TestSemTimeout(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.SemCreate(1, 0, nil)
	start := time.Now()
	if err := s.Lock(b, Timeout(20*time.Millisecond)); !errors.Is(err, ErrTimeout) {
		t.Errorf("timed lock = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("returned before the timeout elapsed")
	}
}

func TestSemDeleteWakesWaiters(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.SemCreate(1, 0, nil)
	got := make(chan error, 1)
	go func() { got <- s.Lock(b, TimeoutInfinite) }()
	time.Sleep(5 * time.Millisecond)
	if err := s.Delete(a); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrSemDeleted) {
			t.Errorf("waiter error = %v, want ErrSemDeleted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by delete")
	}
	if _, err := a.SemGet(1); !errors.Is(err, ErrSemInvalid) {
		t.Errorf("get after delete = %v, want ErrSemInvalid", err)
	}
}

func TestSemGetSharesInstance(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.SemCreate(9, 3, nil)
	got, err := b.SemGet(9)
	if err != nil || got != s {
		t.Errorf("SemGet = %v, %v", got, err)
	}
}
