package mrapi

import "sync"

// ShmemKind selects which memory substrate backs a shared-memory segment.
type ShmemKind int

const (
	// ShmemSysV models the MRAPI default: a system-level (System-V style)
	// shared-memory segment, the inter-process mechanism. Sizes are rounded
	// up to the platform page size, as the OS would.
	ShmemSysV ShmemKind = iota
	// ShmemMalloc is the paper's extension (Listing 3,
	// mrapi_shmem_create_malloc): the segment lives on the process heap, so
	// threads of one process share it with no IPC machinery. This is what
	// the MCA-backed OpenMP runtime uses for its global runtime state.
	ShmemMalloc
)

func (k ShmemKind) String() string {
	if k == ShmemMalloc {
		return "malloc"
	}
	return "sysv"
}

// PageSize is the platform page size used to round System-V style segments.
const PageSize = 4096

// ShmemAttributes configure a shared-memory segment at creation, mirroring
// mrapi_shmem_attributes_t plus the paper's use_malloc extension flag.
type ShmemAttributes struct {
	// Kind selects heap (malloc extension) or system-level backing.
	Kind ShmemKind
	// MemDomain places the segment in a memory domain (DDR controller
	// index on the modeled board). Nodes whose MemDomain differs cannot
	// attach unless the segment is in domain 0, the interleaved/shared
	// region.
	MemDomain int
}

// Shmem is an MRAPI shared-memory segment: key-addressed, domain-wide, and
// attachable by any compatible node. Unlike Linux SysV shmem, MRAPI shmem
// may be shared by nodes running different OS instances; the simulation
// models that by performing compatibility checks at attach time.
type Shmem struct {
	domain *Domain
	key    Key
	attrs  ShmemAttributes
	buf    []byte

	mu       sync.Mutex
	attached map[NodeID]struct{}
	deleted  bool
	// deleteOnDetach implements the MRAPI rundown: delete marks the
	// segment, and the storage is reclaimed when the last node detaches.
	deleteOnDetach bool
}

// ShmemCreate creates a shared-memory segment of the given size under key
// (mrapi_shmem_create). SysV-kind segments are rounded up to a whole number
// of pages. The creating node is NOT attached automatically, matching the
// spec: creation and attachment are distinct steps.
func (n *Node) ShmemCreate(key Key, size int, attrs *ShmemAttributes) (*Shmem, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, ErrParameter
	}
	a := ShmemAttributes{}
	if attrs != nil {
		a = *attrs
	}
	alloc := size
	if a.Kind == ShmemSysV {
		alloc = (size + PageSize - 1) / PageSize * PageSize
	}
	d := n.domain
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.shmems[key]; dup {
		return nil, ErrShmExists
	}
	s := &Shmem{
		domain:   d,
		key:      key,
		attrs:    a,
		buf:      make([]byte, alloc),
		attached: make(map[NodeID]struct{}),
	}
	d.shmems[key] = s
	return s, nil
}

// ShmemCreateMalloc is the paper's Listing 3 helper: create a heap-backed
// segment and attach the calling node in one step, returning the memory.
// It is the allocation path the MCA-backed OpenMP runtime's gomp_malloc
// maps onto.
func (n *Node) ShmemCreateMalloc(key Key, size int) ([]byte, *Shmem, error) {
	s, err := n.ShmemCreate(key, size, &ShmemAttributes{Kind: ShmemMalloc})
	if err != nil {
		return nil, nil, err
	}
	buf, err := s.Attach(n)
	if err != nil {
		return nil, nil, err
	}
	return buf, s, nil
}

// ShmemGet looks up an existing segment by key (mrapi_shmem_get).
func (n *Node) ShmemGet(key Key) (*Shmem, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	d := n.domain
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.shmems[key]
	if !ok {
		return nil, ErrShmInvalid
	}
	return s, nil
}

// Key returns the database key of the segment.
func (s *Shmem) Key() Key { return s.key }

// Size returns the usable size in bytes (after any page rounding).
func (s *Shmem) Size() int { return len(s.buf) }

// Attributes returns a copy of the creation attributes.
func (s *Shmem) Attributes() ShmemAttributes { return s.attrs }

// Attach maps the segment into the node and returns the shared bytes
// (mrapi_shmem_attach). Nodes in a different, non-shared memory domain are
// rejected with ErrShmNodesIncompat.
func (s *Shmem) Attach(n *Node) ([]byte, error) {
	if err := n.checkLive(); err != nil {
		return nil, err
	}
	if s.attrs.MemDomain != 0 && n.attrs.MemDomain != s.attrs.MemDomain {
		return nil, ErrShmNodesIncompat
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted {
		return nil, ErrShmInvalid
	}
	s.attached[n.id] = struct{}{}
	n.shmemAttachs.Add(1)
	return s.buf, nil
}

// Detach unmaps the segment from the node (mrapi_shmem_detach). If the
// segment was marked for deletion and this was the last attachment, the
// storage is reclaimed and the key released.
func (s *Shmem) Detach(n *Node) error {
	if err := n.checkLive(); err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.attached[n.id]; !ok {
		s.mu.Unlock()
		return ErrShmNotAttached
	}
	delete(s.attached, n.id)
	reclaim := s.deleteOnDetach && len(s.attached) == 0
	if reclaim {
		s.deleted = true
	}
	s.mu.Unlock()
	if reclaim {
		s.release()
	}
	return nil
}

// Delete removes the segment (mrapi_shmem_delete). Per the MRAPI rundown
// protocol, a segment with live attachments is only marked; the key and
// storage are released when the last node detaches.
func (s *Shmem) Delete(n *Node) error {
	if err := n.checkLive(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.deleted {
		s.mu.Unlock()
		return ErrShmInvalid
	}
	if len(s.attached) > 0 {
		s.deleteOnDetach = true
		s.mu.Unlock()
		return nil
	}
	s.deleted = true
	s.mu.Unlock()
	s.release()
	return nil
}

// Attached reports how many nodes currently map the segment.
func (s *Shmem) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.attached)
}

// IsAttached reports whether the given node currently maps the segment.
func (s *Shmem) IsAttached(n *Node) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.attached[n.id]
	return ok
}

func (s *Shmem) release() {
	d := s.domain
	d.mu.Lock()
	delete(d.shmems, s.key)
	d.mu.Unlock()
}
