package mrapi

import (
	"errors"
	"testing"
)

func TestShmemCreateRoundsSysVToPages(t *testing.T) {
	a, _ := twoNodes(t)
	s, err := a.ShmemCreate(1, 100, nil) // default kind: SysV
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != PageSize {
		t.Errorf("SysV size = %d, want %d (page rounded)", s.Size(), PageSize)
	}
	m, err := a.ShmemCreate(2, 100, &ShmemAttributes{Kind: ShmemMalloc})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 100 {
		t.Errorf("malloc size = %d, want exact 100", m.Size())
	}
}

func TestShmemCreateValidation(t *testing.T) {
	a, _ := twoNodes(t)
	if _, err := a.ShmemCreate(1, 0, nil); !errors.Is(err, ErrParameter) {
		t.Errorf("zero size = %v, want ErrParameter", err)
	}
	if _, err := a.ShmemCreate(1, -5, nil); !errors.Is(err, ErrParameter) {
		t.Errorf("negative size = %v, want ErrParameter", err)
	}
	if _, err := a.ShmemCreate(3, 8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ShmemCreate(3, 8, nil); !errors.Is(err, ErrShmExists) {
		t.Errorf("duplicate key = %v, want ErrShmExists", err)
	}
}

func TestShmemSharedVisibility(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.ShmemCreate(1, 64, &ShmemAttributes{Kind: ShmemMalloc})
	bufA, err := s.Attach(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.ShmemGet(1)
	if err != nil {
		t.Fatal(err)
	}
	bufB, err := sb.Attach(b)
	if err != nil {
		t.Fatal(err)
	}
	copy(bufA, "hello from node A")
	if got := string(bufB[:17]); got != "hello from node A" {
		t.Errorf("node B sees %q", got)
	}
}

func TestShmemAccessRequiresAttach(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.ShmemCreate(1, 16, nil)
	if err := s.Detach(b); !errors.Is(err, ErrShmNotAttached) {
		t.Errorf("detach unattached = %v, want ErrShmNotAttached", err)
	}
	if s.IsAttached(b) {
		t.Error("b should not be attached")
	}
}

func TestShmemDeleteRundown(t *testing.T) {
	a, b := twoNodes(t)
	s, _ := a.ShmemCreate(1, 16, nil)
	if _, err := s.Attach(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Attach(b); err != nil {
		t.Fatal(err)
	}
	// Delete with live attachments only marks the segment...
	if err := s.Delete(a); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := a.ShmemGet(1); err != nil {
		t.Errorf("segment should survive until last detach: %v", err)
	}
	if err := s.Detach(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Detach(b); err != nil {
		t.Fatal(err)
	}
	// ...and the key is released after the last detach.
	if _, err := a.ShmemGet(1); !errors.Is(err, ErrShmInvalid) {
		t.Errorf("get after rundown = %v, want ErrShmInvalid", err)
	}
	if _, err := s.Attach(a); !errors.Is(err, ErrShmInvalid) {
		t.Errorf("attach after rundown = %v, want ErrShmInvalid", err)
	}
}

func TestShmemDeleteUnattachedImmediate(t *testing.T) {
	a, _ := twoNodes(t)
	s, _ := a.ShmemCreate(1, 16, nil)
	if err := s.Delete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ShmemGet(1); !errors.Is(err, ErrShmInvalid) {
		t.Errorf("get after delete = %v, want ErrShmInvalid", err)
	}
	if err := s.Delete(a); !errors.Is(err, ErrShmInvalid) {
		t.Errorf("double delete = %v, want ErrShmInvalid", err)
	}
}

func TestShmemMemDomainCompatibility(t *testing.T) {
	sys := NewSystem(nil)
	a, _ := sys.Initialize(1, 1, &NodeAttributes{Affinity: -1, MemDomain: 1})
	b, _ := sys.Initialize(1, 2, &NodeAttributes{Affinity: -1, MemDomain: 2})
	s, err := a.ShmemCreate(1, 16, &ShmemAttributes{MemDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Attach(a); err != nil {
		t.Errorf("same-domain attach: %v", err)
	}
	if _, err := s.Attach(b); !errors.Is(err, ErrShmNodesIncompat) {
		t.Errorf("cross-domain attach = %v, want ErrShmNodesIncompat", err)
	}
	// Domain 0 (interleaved) is attachable by everyone.
	s0, _ := a.ShmemCreate(2, 16, &ShmemAttributes{MemDomain: 0})
	if _, err := s0.Attach(b); err != nil {
		t.Errorf("domain-0 attach: %v", err)
	}
}

func TestShmemCreateMallocListing3(t *testing.T) {
	// Mirrors the paper's gomp_malloc: one call yields attached heap memory.
	a, _ := twoNodes(t)
	buf, s, err := a.ShmemCreateMalloc(77, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 256 {
		t.Errorf("len(buf) = %d, want 256", len(buf))
	}
	if s.Attributes().Kind != ShmemMalloc {
		t.Errorf("kind = %v, want malloc", s.Attributes().Kind)
	}
	if !s.IsAttached(a) {
		t.Error("creator should be attached")
	}
	if s.Attached() != 1 {
		t.Errorf("Attached = %d, want 1", s.Attached())
	}
}

func TestShmemAttachCountStat(t *testing.T) {
	a, _ := twoNodes(t)
	s, _ := a.ShmemCreate(1, 16, nil)
	if _, err := s.Attach(a); err != nil {
		t.Fatal(err)
	}
	if a.shmemAttachs.Load() != 1 {
		t.Errorf("shmemAttachs = %d, want 1", a.shmemAttachs.Load())
	}
}
