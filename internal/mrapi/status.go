package mrapi

// Status mirrors mrapi_status_t. A Status is also a Go error so MRAPI-style
// failure codes flow through idiomatic error returns; Success is never
// returned as an error (callers get nil).
type Status uint32

// Status codes, following the MRAPI 1.0 specification naming.
const (
	Success Status = iota

	ErrNodeInitFailed  // node already initialized, or registration failed
	ErrNodeNotInit     // calling node was never initialized or was finalized
	ErrNodeFinalFailed // node finalization failed
	ErrDomainInvalid   // no such domain
	ErrNodeInvalid     // no such node
	ErrParameter       // invalid parameter (nil attribute, bad size, ...)
	ErrNotSupported    // requested attribute/operation is unsupported

	ErrMutexExists    // mutex key already in use
	ErrMutexInvalid   // unknown mutex key or deleted mutex
	ErrMutexLocked    // non-recursive relock attempted by the owner
	ErrMutexNotLocked // unlock of an unlocked mutex
	ErrMutexKey       // wrong lock key passed to unlock
	ErrMutexDeleted   // mutex deleted while waiting
	ErrMutexLockOrder // recursive unlock out of order

	ErrSemExists    // semaphore key already in use
	ErrSemInvalid   // unknown semaphore key
	ErrSemValue     // initial count out of range
	ErrSemNotLocked // post would exceed the maximum count
	ErrSemDeleted   // semaphore deleted while waiting

	ErrRwlExists    // reader/writer lock key already in use
	ErrRwlInvalid   // unknown reader/writer lock key
	ErrRwlLocked    // relock attempted while held exclusively
	ErrRwlNotLocked // unlock of an unheld lock
	ErrRwlDeleted   // lock deleted while waiting

	ErrShmExists        // shared-memory key already in use
	ErrShmInvalid       // unknown shared-memory key
	ErrShmNotAttached   // access or detach by a node that is not attached
	ErrShmAttached      // delete while nodes are still attached
	ErrShmNodesIncompat // node's memory domain cannot map this segment

	ErrRmemExists       // remote-memory key already in use
	ErrRmemInvalid      // unknown remote-memory key
	ErrRmemTypeNotValid // access type unsupported by the segment
	ErrRmemNotAttached  // access by a node that is not attached
	ErrRmemAttached     // delete while nodes are still attached
	ErrRmemStride       // scatter/gather stride smaller than element size
	ErrRmemBlocked      // conflicting access in progress

	ErrResourceInvalid // no such resource subsystem / bad filter
	ErrAttrReadOnly    // attempt to set a read-only attribute
	ErrAttrNum         // unknown attribute number
	ErrAttrSize        // attribute size mismatch

	ErrTimeout         // blocking call timed out
	ErrRequestInvalid  // unknown asynchronous request
	ErrRequestCanceled // asynchronous request canceled
	ErrDeleted         // object deleted out from under a waiter
)

var statusNames = map[Status]string{
	Success:             "MRAPI_SUCCESS",
	ErrNodeInitFailed:   "MRAPI_ERR_NODE_INITFAILED",
	ErrNodeNotInit:      "MRAPI_ERR_NODE_NOTINIT",
	ErrNodeFinalFailed:  "MRAPI_ERR_NODE_FINALFAILED",
	ErrDomainInvalid:    "MRAPI_ERR_DOMAIN_INVALID",
	ErrNodeInvalid:      "MRAPI_ERR_NODE_INVALID",
	ErrParameter:        "MRAPI_ERR_PARAMETER",
	ErrNotSupported:     "MRAPI_ERR_NOT_SUPPORTED",
	ErrMutexExists:      "MRAPI_ERR_MUTEX_EXISTS",
	ErrMutexInvalid:     "MRAPI_ERR_MUTEX_INVALID",
	ErrMutexLocked:      "MRAPI_ERR_MUTEX_LOCKED",
	ErrMutexNotLocked:   "MRAPI_ERR_MUTEX_NOTLOCKED",
	ErrMutexKey:         "MRAPI_ERR_MUTEX_KEY",
	ErrMutexDeleted:     "MRAPI_ERR_MUTEX_DELETED",
	ErrMutexLockOrder:   "MRAPI_ERR_MUTEX_LOCKORDER",
	ErrSemExists:        "MRAPI_ERR_SEM_EXISTS",
	ErrSemInvalid:       "MRAPI_ERR_SEM_INVALID",
	ErrSemValue:         "MRAPI_ERR_SEM_VALUE",
	ErrSemNotLocked:     "MRAPI_ERR_SEM_NOTLOCKED",
	ErrSemDeleted:       "MRAPI_ERR_SEM_DELETED",
	ErrRwlExists:        "MRAPI_ERR_RWL_EXISTS",
	ErrRwlInvalid:       "MRAPI_ERR_RWL_INVALID",
	ErrRwlLocked:        "MRAPI_ERR_RWL_LOCKED",
	ErrRwlNotLocked:     "MRAPI_ERR_RWL_NOTLOCKED",
	ErrRwlDeleted:       "MRAPI_ERR_RWL_DELETED",
	ErrShmExists:        "MRAPI_ERR_SHM_EXISTS",
	ErrShmInvalid:       "MRAPI_ERR_SHM_INVALID",
	ErrShmNotAttached:   "MRAPI_ERR_SHM_NOTATTACHED",
	ErrShmAttached:      "MRAPI_ERR_SHM_ATTACHED",
	ErrShmNodesIncompat: "MRAPI_ERR_SHM_NODES_INCOMPAT",
	ErrRmemExists:       "MRAPI_ERR_RMEM_EXISTS",
	ErrRmemInvalid:      "MRAPI_ERR_RMEM_INVALID",
	ErrRmemTypeNotValid: "MRAPI_ERR_RMEM_TYPENOTVALID",
	ErrRmemNotAttached:  "MRAPI_ERR_RMEM_NOTATTACHED",
	ErrRmemAttached:     "MRAPI_ERR_RMEM_ATTACHED",
	ErrRmemStride:       "MRAPI_ERR_RMEM_STRIDE",
	ErrRmemBlocked:      "MRAPI_ERR_RMEM_BLOCKED",
	ErrResourceInvalid:  "MRAPI_ERR_RSRC_INVALID",
	ErrAttrReadOnly:     "MRAPI_ERR_ATTR_READONLY",
	ErrAttrNum:          "MRAPI_ERR_ATTR_NUM",
	ErrAttrSize:         "MRAPI_ERR_ATTR_SIZE",
	ErrTimeout:          "MRAPI_TIMEOUT",
	ErrRequestInvalid:   "MRAPI_ERR_REQUEST_INVALID",
	ErrRequestCanceled:  "MRAPI_ERR_REQUEST_CANCELED",
	ErrDeleted:          "MRAPI_ERR_DELETED",
}

// Error implements the error interface, rendering the spec-style name.
func (s Status) Error() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return "MRAPI_STATUS_UNKNOWN"
}

// String returns the spec-style name of the status.
func (s Status) String() string { return s.Error() }
