package mrapi

import (
	"fmt"
	"sync"
)

// DomainID identifies an MRAPI domain — a unique system-global entity that
// groups a team of nodes.
type DomainID uint32

// NodeID identifies an MRAPI node within its domain.
type NodeID uint32

// Key is the integer key under which synchronization and memory primitives
// are registered in a domain's global database (mrapi_*_create key argument).
type Key uint32

// System is the top-level MRAPI universe: the set of domains plus the
// platform metadata (resource tree) the system exposes.
//
// The C reference implementation keeps one shared database per OS; here a
// System is an explicit object so tests and simulated boards can run several
// isolated universes in one process. DefaultSystem mirrors the implicit
// global database.
type System struct {
	mu        sync.RWMutex
	domains   map[DomainID]*Domain
	resources *Resource // metadata root; may be nil
}

// NewSystem creates an empty MRAPI universe exposing the given resource
// tree as its metadata (may be nil for a metadata-less system).
func NewSystem(resources *Resource) *System {
	return &System{
		domains:   make(map[DomainID]*Domain),
		resources: resources,
	}
}

// defaultSystem mirrors the single per-process database of the C
// implementation.
var (
	defaultSystemOnce sync.Once
	defaultSystem     *System
)

// DefaultSystem returns the process-wide MRAPI universe.
func DefaultSystem() *System {
	defaultSystemOnce.Do(func() { defaultSystem = NewSystem(nil) })
	return defaultSystem
}

// SetResources installs (or replaces) the system metadata tree.
func (s *System) SetResources(root *Resource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resources = root
}

// domain returns the domain with the given ID, creating it on first use —
// MRAPI domains come into existence when their first node initializes.
func (s *System) domain(id DomainID) *Domain {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.domains[id]
	if !ok {
		d = newDomain(s, id)
		s.domains[id] = d
	}
	return d
}

// Domain looks up an existing domain without creating it.
func (s *System) Domain(id DomainID) (*Domain, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.domains[id]
	if !ok {
		return nil, ErrDomainInvalid
	}
	return d, nil
}

// Domains returns the IDs of all live domains, in unspecified order.
func (s *System) Domains() []DomainID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DomainID, 0, len(s.domains))
	for id := range s.domains {
		out = append(out, id)
	}
	return out
}

// Domain is one MRAPI domain: its node registry plus the domain-wide global
// database of synchronization and memory primitives that every node in the
// domain can look up by key.
type Domain struct {
	sys *System
	id  DomainID

	mu      sync.RWMutex
	nodes   map[NodeID]*Node
	mutexes map[Key]*Mutex
	sems    map[Key]*Semaphore
	rwlocks map[Key]*RWLock
	shmems  map[Key]*Shmem
	rmems   map[Key]*Rmem
}

func newDomain(sys *System, id DomainID) *Domain {
	return &Domain{
		sys:     sys,
		id:      id,
		nodes:   make(map[NodeID]*Node),
		mutexes: make(map[Key]*Mutex),
		sems:    make(map[Key]*Semaphore),
		rwlocks: make(map[Key]*RWLock),
		shmems:  make(map[Key]*Shmem),
		rmems:   make(map[Key]*Rmem),
	}
}

// ID returns the domain's identifier.
func (d *Domain) ID() DomainID { return d.id }

// System returns the universe this domain belongs to.
func (d *Domain) System() *System { return d.sys }

// Nodes returns the IDs of the currently registered nodes.
func (d *Domain) Nodes() []NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]NodeID, 0, len(d.nodes))
	for id := range d.nodes {
		out = append(out, id)
	}
	return out
}

// NumNodes reports how many nodes are registered in the domain.
func (d *Domain) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.nodes)
}

// NumShmems reports how many shared-memory segments are registered in the
// domain database (diagnostic; leak tests watch it).
func (d *Domain) NumShmems() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.shmems)
}

// Node looks up a registered node by ID.
func (d *Domain) Node(id NodeID) (*Node, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, ok := d.nodes[id]
	if !ok {
		return nil, ErrNodeInvalid
	}
	return n, nil
}

func (d *Domain) String() string {
	return fmt.Sprintf("mrapi.Domain(%d)", d.id)
}
