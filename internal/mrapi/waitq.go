package mrapi

import (
	"sync"
	"time"

	"openmpmca/internal/syncq"
)

// Timeout expresses how long a blocking MRAPI call may wait.
// TimeoutInfinite matches MRAPI_TIMEOUT_INFINITE; TimeoutImmediate makes the
// call non-blocking (try-lock semantics).
type Timeout time.Duration

const (
	// TimeoutInfinite blocks until the operation completes or the object is
	// deleted.
	TimeoutInfinite Timeout = -1
	// TimeoutImmediate fails with ErrTimeout if the operation cannot
	// complete at once.
	TimeoutImmediate Timeout = 0
)

// waitQueue adapts syncq.WaitQueue to MRAPI timeouts and status codes.
// All methods must be called with the owning mutex held.
type waitQueue struct {
	q syncq.WaitQueue
}

// wait releases mu, parks until signaled or timed out, then reacquires mu.
// The predicate is not re-checked here — callers loop in the usual
// condition-variable style. It reports Success when signaled and
// ErrTimeout when the timeout elapsed first.
func (w *waitQueue) wait(mu *sync.Mutex, timeout Timeout) Status {
	if w.q.Wait(mu, time.Duration(timeout), timeout == TimeoutInfinite) {
		return Success
	}
	return ErrTimeout
}

// signalLocked wakes one waiter, if any.
func (w *waitQueue) signalLocked() { w.q.Signal() }

// broadcastLocked wakes every waiter.
func (w *waitQueue) broadcastLocked() { w.q.Broadcast() }

// len reports the number of parked waiters.
func (w *waitQueue) len() int { return w.q.Len() }
