package mtapi_test

import (
	"fmt"

	"openmpmca/internal/mtapi"
)

// The MTAPI task life-cycle: register an action for a job, start tasks,
// collect results through a group.
func Example() {
	node := mtapi.NewNode(1, 1, &mtapi.NodeAttributes{Workers: 4})
	defer node.Shutdown()

	const jobSquare mtapi.JobID = 1
	if _, err := node.CreateAction(jobSquare, "square", func(args any) (any, error) {
		x := args.(int)
		return x * x, nil
	}); err != nil {
		panic(err)
	}

	group := node.CreateGroup()
	for i := 1; i <= 4; i++ {
		if _, err := group.Start(jobSquare, i, nil); err != nil {
			panic(err)
		}
	}
	if err := group.WaitAll(mtapi.TimeoutInfinite); err != nil {
		panic(err)
	}

	task, err := node.Start(jobSquare, 9, nil)
	if err != nil {
		panic(err)
	}
	res, err := task.Wait(mtapi.TimeoutInfinite)
	if err != nil {
		panic(err)
	}
	fmt.Println(res)
	// Output: 81
}
