package mtapi

import (
	"sync"
	"time"
)

// Group collects tasks for bulk synchronization (mtapi_group_create /
// mtapi_group_wait_all / mtapi_group_wait_any).
type Group struct {
	node *Node

	mu      sync.Mutex
	pending int
	tasks   []*Task
	anyCh   chan *Task
}

// CreateGroup creates an empty task group.
func (n *Node) CreateGroup() *Group {
	return &Group{node: n, anyCh: make(chan *Task, 64)}
}

// Start launches a task for job inside the group.
func (g *Group) Start(job JobID, args any, attrs *TaskAttributes) (*Task, error) {
	prio := 0
	if attrs != nil {
		prio = attrs.Priority
	}
	if prio < 0 || prio > MaxPriority {
		return nil, ErrPriority
	}
	a, err := g.node.pickAction(job)
	if err != nil {
		return nil, err
	}
	t := newTask(a, args, prio)
	t.group = g
	g.mu.Lock()
	g.pending++
	g.tasks = append(g.tasks, t)
	g.mu.Unlock()
	if err := g.node.enqueue(t); err != nil {
		g.mu.Lock()
		g.pending--
		g.mu.Unlock()
		return nil, err
	}
	return t, nil
}

// onTaskDone is called by the scheduler when a group member finishes or is
// canceled.
func (g *Group) onTaskDone(t *Task) {
	g.mu.Lock()
	g.pending--
	g.mu.Unlock()
	select {
	case g.anyCh <- t:
	default:
	}
}

// Pending reports unfinished member tasks.
func (g *Group) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pending
}

// WaitAll blocks until every member task has finished (or canceled) and
// returns the first member error, if any. A negative timeout
// (TimeoutInfinite) waits forever; zero polls once, returning ErrTimeout
// unless every member is already done; positive bounds the wait.
func (g *Group) WaitAll(timeout time.Duration) error {
	var deadline <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		deadline = tm.C
	}
	g.mu.Lock()
	tasks := append([]*Task(nil), g.tasks...)
	g.mu.Unlock()
	for _, t := range tasks {
		select {
		case <-t.done:
		default:
			switch {
			case timeout == 0:
				return ErrTimeout
			case timeout < 0:
				<-t.done
			default:
				select {
				case <-t.done:
				case <-deadline:
					return ErrTimeout
				}
			}
		}
	}
	var firstErr error
	for _, t := range tasks {
		t.mu.Lock()
		if t.err != nil && firstErr == nil {
			firstErr = t.err
		}
		t.mu.Unlock()
	}
	return firstErr
}

// WaitAny blocks until some member task finishes and returns it
// (mtapi_group_wait_any). A negative timeout (TimeoutInfinite) waits
// forever; zero polls once, returning ErrTimeout if no completion is
// ready; positive bounds the wait.
func (g *Group) WaitAny(timeout time.Duration) (*Task, error) {
	g.mu.Lock()
	if g.pending == 0 && len(g.anyCh) == 0 {
		g.mu.Unlock()
		return nil, ErrGroupCompleted
	}
	g.mu.Unlock()
	switch {
	case timeout < 0:
		return <-g.anyCh, nil
	case timeout == 0:
		select {
		case t := <-g.anyCh:
			return t, nil
		default:
			return nil, ErrTimeout
		}
	}
	tm := time.NewTimer(timeout)
	defer tm.Stop()
	select {
	case t := <-g.anyCh:
		return t, nil
	case <-tm.C:
		return nil, ErrTimeout
	}
}

// Queue is an MTAPI queue: an ordered execution context bound to a job —
// tasks enqueued on one queue run strictly one at a time, in order
// (mtapi_queue_create), while different queues run concurrently.
type Queue struct {
	node *Node
	job  JobID
	prio int

	mu      sync.Mutex
	backlog []*Task
	busy    bool
	deleted bool
}

// QueueAttributes configure a queue.
type QueueAttributes struct {
	// Priority applies to every task of the queue.
	Priority int
}

// CreateQueue creates an ordered queue bound to job.
func (n *Node) CreateQueue(job JobID, attrs *QueueAttributes) (*Queue, error) {
	prio := 0
	if attrs != nil {
		prio = attrs.Priority
	}
	if prio < 0 || prio > MaxPriority {
		return nil, ErrPriority
	}
	n.mu.Lock()
	down := n.down
	n.mu.Unlock()
	if down {
		return nil, ErrNodeDown
	}
	return &Queue{node: n, job: job, prio: prio}, nil
}

// Enqueue submits a task to the queue (mtapi_task_enqueue); it runs after
// every previously enqueued task of this queue has completed.
func (q *Queue) Enqueue(args any) (*Task, error) {
	a, err := q.node.pickAction(q.job)
	if err != nil {
		return nil, err
	}
	t := newTask(a, args, q.prio)
	t.queue = q

	q.mu.Lock()
	if q.deleted {
		q.mu.Unlock()
		return nil, ErrQueueDeleted
	}
	if q.busy {
		q.backlog = append(q.backlog, t)
		q.mu.Unlock()
		return t, nil
	}
	q.busy = true
	q.mu.Unlock()
	if err := q.node.enqueue(t); err != nil {
		q.mu.Lock()
		q.busy = false
		q.mu.Unlock()
		return nil, err
	}
	return t, nil
}

// onTaskDone releases the queue's serialization slot and dispatches the
// next backlog task.
func (q *Queue) onTaskDone() {
	q.mu.Lock()
	var next *Task
	if len(q.backlog) > 0 {
		next = q.backlog[0]
		q.backlog = q.backlog[1:]
	} else {
		q.busy = false
	}
	q.mu.Unlock()
	if next != nil {
		if err := q.node.enqueue(next); err != nil {
			next.finish(nil, err, TaskCanceled)
			q.onTaskDone()
		}
	}
}

// Delete marks the queue deleted; backlogged tasks are canceled
// (mtapi_queue_delete).
func (q *Queue) Delete() {
	q.mu.Lock()
	q.deleted = true
	backlog := q.backlog
	q.backlog = nil
	q.mu.Unlock()
	for _, t := range backlog {
		t.finish(nil, ErrQueueDeleted, TaskCanceled)
	}
}
