// Package mtapi implements the Multicore Association Task Management API
// (MTAPI) semantics in pure Go: jobs implemented by actions, tasks started
// against jobs and scheduled onto a bounded worker pool with priorities,
// task groups for bulk synchronization, and ordered queues that serialize
// their tasks — the full task life-cycle surface the paper names as
// future work (§7; Siemens' EMBB is the reference implementation it
// cites).
package mtapi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by the package.
var (
	ErrNodeDown       = errors.New("mtapi: node is shut down")
	ErrJobInvalid     = errors.New("mtapi: no action registered for job")
	ErrActionExists   = errors.New("mtapi: action already registered for job on this node")
	ErrTimeout        = errors.New("mtapi: timeout")
	ErrCanceled       = errors.New("mtapi: task canceled")
	ErrPriority       = errors.New("mtapi: priority out of range")
	ErrQueueDeleted   = errors.New("mtapi: queue deleted")
	ErrGroupCompleted = errors.New("mtapi: group already waited")
)

// JobID identifies a job — the abstract "what" tasks execute.
type JobID uint32

// TimeoutInfinite makes Task.Wait, Group.WaitAll and Group.WaitAny block
// until completion. The timeout contract, shared by all three:
//
//	timeout < 0   wait forever (use TimeoutInfinite)
//	timeout == 0  poll once: return immediately, ErrTimeout if not done
//	timeout > 0   wait at most that long
//
// Earlier versions treated 0 as "forever"; a zero timeout now matches
// MCAPI's TimeoutImmediate semantics so callers can poll without
// blocking.
const TimeoutInfinite time.Duration = -1

// ActionFunc is a job implementation: args in, result out.
type ActionFunc func(args any) (any, error)

// MaxPriority is the lowest priority level; 0 is highest.
const MaxPriority = 3

// TaskState describes a task's lifecycle phase.
type TaskState int32

// Task lifecycle states.
const (
	TaskQueued TaskState = iota
	TaskRunning
	TaskCompleted
	TaskCanceled
)

func (s TaskState) String() string {
	switch s {
	case TaskQueued:
		return "queued"
	case TaskRunning:
		return "running"
	case TaskCompleted:
		return "completed"
	default:
		return "canceled"
	}
}

// Node is an MTAPI node: the action registry plus the scheduler (a bounded
// worker pool with priority queues).
type Node struct {
	domain, id uint32

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[JobID][]*Action
	rr      map[JobID]int // round-robin cursor over a job's actions
	ready   [MaxPriority + 1][]*Task
	down    bool
	workers int
	wg      sync.WaitGroup

	executed uint64
}

// NodeAttributes configure a node.
type NodeAttributes struct {
	// Workers is the scheduler pool size; <= 0 means 4.
	Workers int
}

// NewNode initializes an MTAPI node and starts its scheduler
// (mtapi_initialize).
func NewNode(domain, id uint32, attrs *NodeAttributes) *Node {
	workers := 4
	if attrs != nil && attrs.Workers > 0 {
		workers = attrs.Workers
	}
	n := &Node{
		domain:  domain,
		id:      id,
		jobs:    make(map[JobID][]*Action),
		rr:      make(map[JobID]int),
		workers: workers,
	}
	n.cond = sync.NewCond(&n.mu)
	for w := 0; w < workers; w++ {
		n.wg.Add(1)
		go n.worker()
	}
	return n
}

// Shutdown stops the scheduler after canceling queued tasks
// (mtapi_finalize). Running tasks complete.
func (n *Node) Shutdown() {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return
	}
	n.down = true
	for p := range n.ready {
		for _, t := range n.ready[p] {
			t.finish(nil, ErrCanceled, TaskCanceled)
		}
		n.ready[p] = nil
	}
	n.cond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
}

// Executed reports how many tasks the node has run to completion.
func (n *Node) Executed() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.executed
}

func (n *Node) String() string { return fmt.Sprintf("mtapi.Node(d%d,n%d)", n.domain, n.id) }

// worker is one scheduler thread: pop the highest-priority ready task and
// run it.
func (n *Node) worker() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		var t *Task
		for {
			if n.down {
				n.mu.Unlock()
				return
			}
			for p := 0; p <= MaxPriority; p++ {
				if len(n.ready[p]) > 0 {
					t = n.ready[p][0]
					n.ready[p] = n.ready[p][1:]
					break
				}
			}
			if t != nil {
				break
			}
			n.cond.Wait()
		}
		n.mu.Unlock()
		n.runTask(t)
	}
}

// runTask executes one task and, for queue tasks, schedules the queue's
// successor.
func (n *Node) runTask(t *Task) {
	if !t.toRunning() {
		return // canceled while queued
	}
	result, err := t.action.fn(t.args)
	t.finish(result, err, TaskCompleted)
	n.mu.Lock()
	n.executed++
	n.mu.Unlock()
	if t.queue != nil {
		t.queue.onTaskDone()
	}
	if t.group != nil {
		t.group.onTaskDone(t)
	}
}

// enqueue admits a task to the ready queues.
func (n *Node) enqueue(t *Task) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	n.ready[t.priority] = append(n.ready[t.priority], t)
	n.cond.Signal()
	return nil
}

// Action is one registered implementation of a job on a node
// (mtapi_action_create).
type Action struct {
	node *Node
	job  JobID
	fn   ActionFunc
	name string
}

// CreateAction registers fn as an implementation of job
// (mtapi_action_create). Multiple actions may implement one job; Start
// dispatches round-robin across them (MTAPI's local load balancing).
func (n *Node) CreateAction(job JobID, name string, fn ActionFunc) (*Action, error) {
	if fn == nil {
		return nil, errors.New("mtapi: nil action function")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNodeDown
	}
	for _, a := range n.jobs[job] {
		if a.name == name {
			return nil, ErrActionExists
		}
	}
	a := &Action{node: n, job: job, fn: fn, name: name}
	n.jobs[job] = append(n.jobs[job], a)
	return a, nil
}

// Delete deregisters the action (mtapi_action_delete). Tasks already
// started keep their binding.
func (a *Action) Delete() {
	n := a.node
	n.mu.Lock()
	defer n.mu.Unlock()
	actions := n.jobs[a.job]
	for i, x := range actions {
		if x == a {
			n.jobs[a.job] = append(actions[:i], actions[i+1:]...)
			break
		}
	}
	if len(n.jobs[a.job]) == 0 {
		delete(n.jobs, a.job)
	}
}

// pickAction selects an implementation for a job, round-robin.
func (n *Node) pickAction(job JobID) (*Action, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	actions := n.jobs[job]
	if len(actions) == 0 {
		return nil, ErrJobInvalid
	}
	i := n.rr[job] % len(actions)
	n.rr[job]++
	return actions[i], nil
}

// TaskAttributes configure a task start.
type TaskAttributes struct {
	// Priority is 0 (highest) .. MaxPriority.
	Priority int
}

// Task is one job execution instance (mtapi_task_start handle).
type Task struct {
	action   *Action
	args     any
	priority int
	queue    *Queue
	group    *Group

	mu     sync.Mutex
	state  TaskState
	result any
	err    error
	done   chan struct{}
}

func newTask(a *Action, args any, priority int) *Task {
	return &Task{action: a, args: args, priority: priority, done: make(chan struct{})}
}

// toRunning transitions queued -> running; false if canceled.
func (t *Task) toRunning() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != TaskQueued {
		return false
	}
	t.state = TaskRunning
	return true
}

func (t *Task) finish(result any, err error, state TaskState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == TaskCompleted || t.state == TaskCanceled {
		return
	}
	t.state = state
	t.result = result
	t.err = err
	close(t.done)
}

// State reports the task's lifecycle phase.
func (t *Task) State() TaskState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Cancel aborts the task if it has not started running
// (mtapi_task_cancel).
func (t *Task) Cancel() error {
	t.mu.Lock()
	if t.state != TaskQueued {
		t.mu.Unlock()
		return ErrCanceled
	}
	t.state = TaskCanceled
	t.err = ErrCanceled
	close(t.done)
	g := t.group
	t.mu.Unlock()
	if g != nil {
		g.onTaskDone(t)
	}
	return nil
}

// Wait blocks up to timeout for completion and returns the action's
// result (mtapi_task_wait). A negative timeout (TimeoutInfinite) waits
// forever; zero polls once, returning ErrTimeout if the task has not
// finished; positive bounds the wait.
func (t *Task) Wait(timeout time.Duration) (any, error) {
	switch {
	case timeout < 0:
		<-t.done
	case timeout == 0:
		select {
		case <-t.done:
		default:
			return nil, ErrTimeout
		}
	default:
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		select {
		case <-t.done:
		case <-tm.C:
			return nil, ErrTimeout
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result, t.err
}

// Start launches a task for the job (mtapi_task_start). attrs may be nil.
func (n *Node) Start(job JobID, args any, attrs *TaskAttributes) (*Task, error) {
	prio := 0
	if attrs != nil {
		prio = attrs.Priority
	}
	if prio < 0 || prio > MaxPriority {
		return nil, ErrPriority
	}
	a, err := n.pickAction(job)
	if err != nil {
		return nil, err
	}
	t := newTask(a, args, prio)
	if err := n.enqueue(t); err != nil {
		return nil, err
	}
	return t, nil
}
