package mtapi

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestNode(t *testing.T, workers int) *Node {
	t.Helper()
	n := NewNode(1, 1, &NodeAttributes{Workers: workers})
	t.Cleanup(n.Shutdown)
	return n
}

func TestTaskStartWait(t *testing.T) {
	n := newTestNode(t, 2)
	if _, err := n.CreateAction(1, "double", func(args any) (any, error) {
		return args.(int) * 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	task, err := n.Start(1, 21, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := task.Wait(TimeoutInfinite)
	if err != nil || res.(int) != 42 {
		t.Errorf("result = %v, %v", res, err)
	}
	if task.State() != TaskCompleted {
		t.Errorf("state = %v", task.State())
	}
	if n.Executed() != 1 {
		t.Errorf("Executed = %d", n.Executed())
	}
}

func TestStartUnknownJob(t *testing.T) {
	n := newTestNode(t, 1)
	if _, err := n.Start(99, nil, nil); !errors.Is(err, ErrJobInvalid) {
		t.Errorf("unknown job = %v", err)
	}
}

func TestActionRegistry(t *testing.T) {
	n := newTestNode(t, 1)
	a, err := n.CreateAction(1, "impl", func(any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.CreateAction(1, "impl", func(any) (any, error) { return nil, nil }); !errors.Is(err, ErrActionExists) {
		t.Errorf("duplicate action = %v", err)
	}
	if _, err := n.CreateAction(1, "", nil); err == nil {
		t.Error("nil fn accepted")
	}
	a.Delete()
	if _, err := n.Start(1, nil, nil); !errors.Is(err, ErrJobInvalid) {
		t.Errorf("job after action delete = %v", err)
	}
}

func TestMultipleActionsRoundRobin(t *testing.T) {
	n := newTestNode(t, 1)
	var aRuns, bRuns atomic.Int32
	_, _ = n.CreateAction(1, "a", func(any) (any, error) { aRuns.Add(1); return nil, nil })
	_, _ = n.CreateAction(1, "b", func(any) (any, error) { bRuns.Add(1); return nil, nil })
	for i := 0; i < 10; i++ {
		task, err := n.Start(1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := task.Wait(TimeoutInfinite); err != nil {
			t.Fatal(err)
		}
	}
	if aRuns.Load() != 5 || bRuns.Load() != 5 {
		t.Errorf("round robin = %d/%d, want 5/5", aRuns.Load(), bRuns.Load())
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	n := newTestNode(t, 1)
	boom := errors.New("boom")
	_, _ = n.CreateAction(1, "fail", func(any) (any, error) { return nil, boom })
	task, _ := n.Start(1, nil, nil)
	if _, err := task.Wait(TimeoutInfinite); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestTaskWaitTimeout(t *testing.T) {
	n := newTestNode(t, 1)
	release := make(chan struct{})
	_, _ = n.CreateAction(1, "slow", func(any) (any, error) { <-release; return nil, nil })
	task, _ := n.Start(1, nil, nil)
	if _, err := task.Wait(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("wait = %v, want ErrTimeout", err)
	}
	close(release)
	if _, err := task.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
}

func TestTaskCancelQueued(t *testing.T) {
	n := newTestNode(t, 1)
	block := make(chan struct{})
	_, _ = n.CreateAction(1, "block", func(any) (any, error) { <-block; return nil, nil })
	running, _ := n.Start(1, nil, nil) // occupies the only worker
	queued, _ := n.Start(1, nil, nil)
	time.Sleep(5 * time.Millisecond)
	if err := queued.Cancel(); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if _, err := queued.Wait(TimeoutInfinite); !errors.Is(err, ErrCanceled) {
		t.Errorf("wait canceled = %v", err)
	}
	close(block)
	if _, err := running.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	// A running/completed task cannot be canceled.
	if err := running.Cancel(); !errors.Is(err, ErrCanceled) {
		t.Errorf("cancel completed = %v", err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	n := newTestNode(t, 1)
	block := make(chan struct{})
	var order []int
	var mu sync.Mutex
	_, _ = n.CreateAction(1, "gate", func(any) (any, error) { <-block; return nil, nil })
	_, _ = n.CreateAction(2, "record", func(args any) (any, error) {
		mu.Lock()
		order = append(order, args.(int))
		mu.Unlock()
		return nil, nil
	})
	gate, _ := n.Start(1, nil, nil)
	time.Sleep(5 * time.Millisecond)
	low, _ := n.Start(2, 3, &TaskAttributes{Priority: 3})
	mid, _ := n.Start(2, 1, &TaskAttributes{Priority: 1})
	high, _ := n.Start(2, 0, &TaskAttributes{Priority: 0})
	close(block)
	for _, task := range []*Task{gate, low, mid, high} {
		if _, err := task.Wait(TimeoutInfinite); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 3 {
		t.Errorf("execution order = %v, want [0 1 3]", order)
	}
}

func TestBadPriorityRejected(t *testing.T) {
	n := newTestNode(t, 1)
	_, _ = n.CreateAction(1, "x", func(any) (any, error) { return nil, nil })
	if _, err := n.Start(1, nil, &TaskAttributes{Priority: 7}); !errors.Is(err, ErrPriority) {
		t.Errorf("bad priority = %v", err)
	}
	if _, err := n.CreateQueue(1, &QueueAttributes{Priority: -1}); !errors.Is(err, ErrPriority) {
		t.Errorf("bad queue priority = %v", err)
	}
}

func TestGroupWaitAll(t *testing.T) {
	n := newTestNode(t, 4)
	var sum atomic.Int64
	_, _ = n.CreateAction(1, "add", func(args any) (any, error) {
		sum.Add(int64(args.(int)))
		return nil, nil
	})
	g := n.CreateGroup()
	for i := 1; i <= 20; i++ {
		if _, err := g.Start(1, i, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.WaitAll(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 210 {
		t.Errorf("sum = %d, want 210", sum.Load())
	}
	if g.Pending() != 0 {
		t.Errorf("pending = %d", g.Pending())
	}
}

func TestGroupWaitAllPropagatesError(t *testing.T) {
	n := newTestNode(t, 2)
	boom := errors.New("boom")
	_, _ = n.CreateAction(1, "ok", func(any) (any, error) { return nil, nil })
	_, _ = n.CreateAction(2, "bad", func(any) (any, error) { return nil, boom })
	g := n.CreateGroup()
	_, _ = g.Start(1, nil, nil)
	_, _ = g.Start(2, nil, nil)
	if err := g.WaitAll(TimeoutInfinite); !errors.Is(err, boom) {
		t.Errorf("WaitAll = %v, want boom", err)
	}
}

func TestGroupWaitAny(t *testing.T) {
	n := newTestNode(t, 2)
	slow := make(chan struct{})
	_, _ = n.CreateAction(1, "fast", func(any) (any, error) { return "fast", nil })
	_, _ = n.CreateAction(2, "slow", func(any) (any, error) { <-slow; return "slow", nil })
	g := n.CreateGroup()
	_, _ = g.Start(2, nil, nil)
	_, _ = g.Start(1, nil, nil)
	first, err := g.WaitAny(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := first.Wait(TimeoutInfinite); res != "fast" {
		t.Errorf("first finisher = %v, want fast", res)
	}
	close(slow)
	if err := g.WaitAll(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	// Drain the remaining any-notification, then the group is exhausted.
	if _, err := g.WaitAny(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WaitAny(time.Second); !errors.Is(err, ErrGroupCompleted) {
		t.Errorf("exhausted WaitAny = %v", err)
	}
}

func TestQueueSerializesTasks(t *testing.T) {
	n := newTestNode(t, 4)
	var active, maxActive atomic.Int32
	var order []int
	var mu sync.Mutex
	_, _ = n.CreateAction(1, "step", func(args any) (any, error) {
		cur := active.Add(1)
		for {
			m := maxActive.Load()
			if cur <= m || maxActive.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		mu.Lock()
		order = append(order, args.(int))
		mu.Unlock()
		active.Add(-1)
		return nil, nil
	})
	q, err := n.CreateQueue(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last *Task
	for i := 0; i < 10; i++ {
		task, err := q.Enqueue(i)
		if err != nil {
			t.Fatal(err)
		}
		last = task
	}
	if _, err := last.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if maxActive.Load() != 1 {
		t.Errorf("queue overlap: max active = %d", maxActive.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestTwoQueuesRunConcurrently(t *testing.T) {
	n := newTestNode(t, 2)
	gateA := make(chan struct{})
	var bDone atomic.Bool
	_, _ = n.CreateAction(1, "a", func(any) (any, error) { <-gateA; return nil, nil })
	_, _ = n.CreateAction(2, "b", func(any) (any, error) { bDone.Store(true); return nil, nil })
	qa, _ := n.CreateQueue(1, nil)
	qb, _ := n.CreateQueue(2, nil)
	ta, _ := qa.Enqueue(nil)
	tb, _ := qb.Enqueue(nil)
	if _, err := tb.Wait(2 * time.Second); err != nil {
		t.Fatalf("queue B blocked behind queue A: %v", err)
	}
	close(gateA)
	if _, err := ta.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if !bDone.Load() {
		t.Error("b never ran")
	}
}

func TestQueueDelete(t *testing.T) {
	n := newTestNode(t, 1)
	block := make(chan struct{})
	_, _ = n.CreateAction(1, "x", func(any) (any, error) { <-block; return nil, nil })
	q, _ := n.CreateQueue(1, nil)
	running, _ := q.Enqueue(nil)
	backlogged, _ := q.Enqueue(nil)
	q.Delete()
	if _, err := backlogged.Wait(TimeoutInfinite); !errors.Is(err, ErrQueueDeleted) {
		t.Errorf("backlogged task = %v, want ErrQueueDeleted", err)
	}
	if _, err := q.Enqueue(nil); !errors.Is(err, ErrQueueDeleted) {
		t.Errorf("enqueue after delete = %v", err)
	}
	close(block)
	if _, err := running.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownCancelsQueued(t *testing.T) {
	n := NewNode(1, 2, &NodeAttributes{Workers: 1})
	block := make(chan struct{})
	_, _ = n.CreateAction(1, "x", func(any) (any, error) { <-block; return nil, nil })
	running, _ := n.Start(1, nil, nil)
	queued, _ := n.Start(1, nil, nil)
	time.Sleep(5 * time.Millisecond)
	close(block)
	n.Shutdown()
	if _, err := running.Wait(TimeoutInfinite); err != nil {
		t.Errorf("running task = %v", err)
	}
	if _, err := queued.Wait(TimeoutInfinite); !errors.Is(err, ErrCanceled) {
		t.Errorf("queued task after shutdown = %v", err)
	}
	if _, err := n.Start(1, nil, nil); !errors.Is(err, ErrNodeDown) {
		t.Errorf("start after shutdown = %v", err)
	}
	n.Shutdown() // idempotent
}

func TestParallelTaskStorm(t *testing.T) {
	n := newTestNode(t, 8)
	var count atomic.Int64
	_, _ = n.CreateAction(1, "inc", func(any) (any, error) { count.Add(1); return nil, nil })
	g := n.CreateGroup()
	const tasks = 500
	for i := 0; i < tasks; i++ {
		if _, err := g.Start(1, nil, &TaskAttributes{Priority: i % (MaxPriority + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.WaitAll(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count.Load() != tasks {
		t.Errorf("count = %d, want %d", count.Load(), tasks)
	}
}

// TestZeroTimeoutPollsOnce pins the timeout contract: 0 returns
// immediately (ErrTimeout while running, the result once done) instead of
// blocking forever as it used to.
func TestZeroTimeoutPollsOnce(t *testing.T) {
	n := newTestNode(t, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := n.CreateAction(1, "gate", func(args any) (any, error) {
		close(started)
		<-release
		return "done", nil
	}); err != nil {
		t.Fatal(err)
	}
	g := n.CreateGroup()
	task, err := g.Start(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	poll := make(chan error, 3)
	go func() {
		_, err := task.Wait(0)
		poll <- err
		poll <- g.WaitAll(0)
		_, err = g.WaitAny(0)
		poll <- err
	}()
	for i := 0; i < 3; i++ {
		select {
		case err := <-poll:
			if !errors.Is(err, ErrTimeout) {
				t.Errorf("poll %d while running = %v, want ErrTimeout", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("zero-timeout wait blocked")
		}
	}

	close(release)
	if _, err := task.Wait(TimeoutInfinite); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Wait(0); err != nil {
		t.Errorf("Wait(0) on a completed task = %v, want nil", err)
	}
	if err := g.WaitAll(0); err != nil {
		t.Errorf("WaitAll(0) on a completed group = %v, want nil", err)
	}
	if got, err := g.WaitAny(0); err != nil || got != task {
		t.Errorf("WaitAny(0) with a ready completion = %v, %v", got, err)
	}
}
