package mtapi

import (
	"sync"
	"testing"
	"testing/quick"
)

// Property: for any number of tasks enqueued on one MTAPI queue, the
// execution order is exactly the enqueue order, regardless of worker
// count.
func TestPropQueuePreservesOrder(t *testing.T) {
	f := func(count8, workers8 uint8) bool {
		count := int(count8)%60 + 1
		workers := int(workers8)%6 + 1
		n := NewNode(1, 1, &NodeAttributes{Workers: workers})
		defer n.Shutdown()
		var mu sync.Mutex
		var order []int
		if _, err := n.CreateAction(1, "rec", func(args any) (any, error) {
			mu.Lock()
			order = append(order, args.(int))
			mu.Unlock()
			return nil, nil
		}); err != nil {
			return false
		}
		q, err := n.CreateQueue(1, nil)
		if err != nil {
			return false
		}
		var last *Task
		for i := 0; i < count; i++ {
			task, err := q.Enqueue(i)
			if err != nil {
				return false
			}
			last = task
		}
		if _, err := last.Wait(TimeoutInfinite); err != nil {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if len(order) != count {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a group of k tasks always reports exactly k completions
// through WaitAll, with the correct sum of results.
func TestPropGroupCompletion(t *testing.T) {
	f := func(k8, workers8 uint8) bool {
		k := int(k8)%80 + 1
		workers := int(workers8)%8 + 1
		n := NewNode(1, 1, &NodeAttributes{Workers: workers})
		defer n.Shutdown()
		if _, err := n.CreateAction(1, "id", func(args any) (any, error) {
			return args.(int) * 2, nil
		}); err != nil {
			return false
		}
		g := n.CreateGroup()
		tasks := make([]*Task, k)
		for i := 0; i < k; i++ {
			task, err := g.Start(1, i, nil)
			if err != nil {
				return false
			}
			tasks[i] = task
		}
		if err := g.WaitAll(TimeoutInfinite); err != nil {
			return false
		}
		if g.Pending() != 0 {
			return false
		}
		sum := 0
		for _, task := range tasks {
			res, err := task.Wait(TimeoutInfinite)
			if err != nil {
				return false
			}
			sum += res.(int)
		}
		return sum == k*(k-1) // Σ 2i for i in [0,k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
