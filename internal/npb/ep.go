package npb

import (
	"fmt"
	"math"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

// EP is the NPB "embarrassingly parallel" kernel: generate 2^(M+1) uniform
// deviates with the NPB LCG, form candidate points in the unit square,
// accept those inside the unit circle and transform them into Gaussian
// pairs (Marsaglia polar method), tallying annulus counts and coordinate
// sums. There is almost no communication — one reduction at the end —
// which is why the paper's Figure 4 shows it scaling near-ideally through
// the SMT region.
type EP struct {
	class Class
	m     uint // number of pairs = 2^m
}

// epSeed is the NPB EP seed (271828183).
const epSeed = uint64(271828183)

// NewEP builds the EP kernel for a class: M = 24 (S), 25 (W), 28 (A) —
// the NPB 3.x values.
func NewEP(class Class) (*EP, error) {
	switch class {
	case ClassS:
		return &EP{class: class, m: 24}, nil
	case ClassW:
		return &EP{class: class, m: 25}, nil
	case ClassA:
		return &EP{class: class, m: 28}, nil
	}
	return nil, fmt.Errorf("npb: EP has no class %q", class)
}

// Name implements Kernel.
func (e *EP) Name() string { return "EP" }

// Class implements Kernel.
func (e *EP) Class() Class { return e.class }

// Profile implements Kernel: EP is latency-bound compute (sqrt/log), so
// the second SMT thread yields almost a full extra pipe and memory traffic
// is negligible.
func (e *EP) Profile() perfmodel.KernelProfile {
	return perfmodel.KernelProfile{
		Name:            "EP",
		CyclesPerUnit:   110, // cycles per candidate pair (two LCG steps + polar test)
		SMTYield:        0.95,
		MemoryIntensity: 0.02,
	}
}

// epTally is one thread's partial result.
type epTally struct {
	sx, sy float64
	q      [10]int64 // annulus counts
	accept int64
}

func (t *epTally) add(o epTally) {
	t.sx += o.sx
	t.sy += o.sy
	t.accept += o.accept
	for i := range t.q {
		t.q[i] += o.q[i]
	}
}

// Run implements Kernel. The pair index space is workshared statically;
// each chunk skips the LCG ahead to its own offset, so the integer tallies
// are identical for every thread count (the float sums agree to rounding,
// since reduction grouping follows the team size). Run verifies against a
// sequentially recomputed reference for classes S/W and against internal
// invariants for class A.
func (e *EP) Run(rt *core.Runtime) (Result, error) {
	pairs := int64(1) << e.m

	var total epTally
	err := rt.Parallel(func(c *core.Context) {
		tally := core.ReduceValues(c, e.chunkTally(c, pairs), func(a, b epTally) epTally {
			a.add(b)
			return a
		})
		c.Master(func() { total = tally })
	})
	if err != nil {
		return Result{}, err
	}

	// Verification. Internal invariant: annulus counts sum to the number
	// of accepted pairs. For S and W, also recompute sequentially.
	var qsum int64
	for _, q := range total.q {
		qsum += q
	}
	verified := qsum == total.accept && total.accept > 0
	detail := fmt.Sprintf("sx=%.10e sy=%.10e accepted=%d", total.sx, total.sy, total.accept)
	if verified && e.class != ClassA {
		// Counts must match exactly; the coordinate sums only to rounding,
		// because the reduction's grouping depends on the team size.
		ref := epSequential(pairs)
		if ref.accept != total.accept || ref.q != total.q ||
			!closeRel(ref.sx, total.sx, 1e-9) || !closeRel(ref.sy, total.sy, 1e-9) {
			verified = false
			detail += fmt.Sprintf(" MISMATCH ref sx=%.10e sy=%.10e accepted=%d", ref.sx, ref.sy, ref.accept)
		}
	}
	return Result{
		Kernel:    "EP",
		Class:     e.class,
		Verified:  verified,
		Checksum:  total.sx + total.sy,
		Detail:    detail,
		WorkUnits: float64(pairs),
	}, nil
}

// closeRel reports whether a and b agree to relative tolerance tol.
func closeRel(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

// chunkTally processes this thread's statically assigned pair ranges.
func (e *EP) chunkTally(c *core.Context, pairs int64) epTally {
	var tally epTally
	// Chunk in blocks so LCG skip-ahead cost stays negligible and work is
	// charged at chunk granularity.
	const block = 1 << 14
	nblocks := int((pairs + block - 1) / block)
	c.ForRange(nblocks, core.LoopOpts{Schedule: core.ScheduleStatic, NoWait: true}, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := int64(b) * block
			end := start + block
			if end > pairs {
				end = pairs
			}
			tally.add(epBlock(start, end))
			c.Charge(float64(end - start))
		}
	})
	return tally
}

// epBlock tallies pairs [start, end) of the global stream.
func epBlock(start, end int64) epTally {
	var t epTally
	// Each pair consumes two deviates; skip to 2·start.
	x := lcgSkip(epSeed, uint64(2*start))
	for i := start; i < end; i++ {
		u1 := 2*randlc(&x, lcgA) - 1
		u2 := 2*randlc(&x, lcgA) - 1
		s := u1*u1 + u2*u2
		if s > 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		gx, gy := u1*f, u2*f
		t.sx += gx
		t.sy += gy
		t.accept++
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l > 9 {
			l = 9
		}
		t.q[l]++
	}
	return t
}

// epSequential is the single-stream reference tally.
func epSequential(pairs int64) epTally {
	var t epTally
	const block = 1 << 14
	for start := int64(0); start < pairs; start += block {
		end := start + block
		if end > pairs {
			end = pairs
		}
		t.add(epBlock(start, end))
	}
	return t
}
