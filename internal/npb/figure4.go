package npb

import (
	"fmt"
	"strings"

	"openmpmca/internal/core"
	"openmpmca/internal/epcc"
	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
)

// Figure4ThreadCounts is the sweep of the paper's Figure 4: 1 to 24
// threads on the T4240.
var Figure4ThreadCounts = []int{1, 2, 4, 8, 12, 16, 20, 24}

// LayerNames identifies the two runtimes Figure 4 compares.
var LayerNames = []string{"native", "mca"}

// Figure4Point is one (layer, threads) measurement.
type Figure4Point struct {
	Layer   string
	Threads int
	// Seconds is the deterministic virtual time on the modeled board.
	Seconds float64
	// Speedup is relative to the same layer's 1-thread point.
	Speedup float64
	// Mops is the NPB-style rate: millions of kernel work units per
	// modeled second.
	Mops float64
	// Verified reports the kernel's self-verification for this run.
	Verified bool
	Checksum float64
}

// Figure4Series is one kernel's panel in Figure 4.
type Figure4Series struct {
	Kernel string
	Class  Class
	Board  *platform.Board
	Points []Figure4Point
	// MCAScales are the EPCC-calibrated management-cost factors applied
	// to the MCA layer's model (all 1.0 when calibration was off).
	MCAScales perfmodel.Scales
}

// Figure4Options tune a panel measurement.
type Figure4Options struct {
	// Calibrate measures the MCA/native EPCC overhead ratios on the host
	// first and scales the MCA layer's modeled management costs by them,
	// so the layer gap in the panel is empirical rather than assumed.
	Calibrate bool
	// Scales, if non-nil, supplies pre-measured MCA cost factors and
	// overrides Calibrate — the driver calibrates once and reuses the
	// result across kernels.
	Scales *perfmodel.Scales
}

// MeasureFigure4 regenerates one kernel's Figure 4 panel with default
// options (no host calibration — fully deterministic).
func MeasureFigure4(board *platform.Board, kernelName string, class Class, threads []int) (*Figure4Series, error) {
	return MeasureFigure4Opts(board, kernelName, class, threads, Figure4Options{})
}

// MeasureFigure4Opts regenerates one kernel's Figure 4 panel: the kernel
// runs through both thread layers at every thread count, with the
// virtual-time model attached as the runtime monitor.
func MeasureFigure4Opts(board *platform.Board, kernelName string, class Class, threads []int, opts Figure4Options) (*Figure4Series, error) {
	if len(threads) == 0 {
		threads = Figure4ThreadCounts
	}
	kern, err := New(kernelName, class)
	if err != nil {
		return nil, err
	}
	series := &Figure4Series{Kernel: kern.Name(), Class: class, Board: board, MCAScales: perfmodel.UnitScales()}
	switch {
	case opts.Scales != nil:
		series.MCAScales = *opts.Scales
	case opts.Calibrate:
		scales, err := CalibrateMCAScales(board, maxOf(threads))
		if err != nil {
			return nil, fmt.Errorf("npb: calibrating layer overheads: %w", err)
		}
		series.MCAScales = scales
	}
	base := make(map[string]float64)

	for _, layerName := range LayerNames {
		scales := perfmodel.UnitScales()
		if layerName == "mca" {
			scales = series.MCAScales
		}
		for _, n := range threads {
			seconds, res, err := runOnce(board, kern, layerName, n, scales)
			if err != nil {
				return nil, fmt.Errorf("npb: %s %s@%d: %w", kern.Name(), layerName, n, err)
			}
			pt := Figure4Point{
				Layer:    layerName,
				Threads:  n,
				Seconds:  seconds,
				Verified: res.Verified,
				Checksum: res.Checksum,
			}
			if seconds > 0 {
				pt.Mops = res.WorkUnits / seconds / 1e6
			}
			if n == 1 {
				base[layerName] = seconds
			}
			if b := base[layerName]; b > 0 {
				pt.Speedup = b / seconds
			}
			series.Points = append(series.Points, pt)
		}
	}
	return series, nil
}

// CalibrateMCAScales measures both layers' EPCC overheads on the host and
// returns the MCA/native ratios for the constructs the model scales. Three
// independent measurement rounds are taken and the median ratio of each
// construct is used, damping host scheduling noise.
func CalibrateMCAScales(board *platform.Board, threads int) (perfmodel.Scales, error) {
	opt := epcc.Options{InnerReps: 128, OuterReps: 7, DelayLength: 32}
	const rounds = 3
	samples := map[string][]float64{}
	for r := 0; r < rounds; r++ {
		res, err := epcc.MeasureTable1(board, opt, []int{threads})
		if err != nil {
			return perfmodel.UnitScales(), err
		}
		for _, c := range []string{"parallel", "barrier", "reduction"} {
			samples[c] = append(samples[c], res.Ratio[c][0])
		}
	}
	med := func(vals []float64) float64 {
		sorted := append([]float64(nil), vals...)
		for i := range sorted { // insertion sort: three elements
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		return sorted[len(sorted)/2]
	}
	return perfmodel.Scales{
		Fork:      med(samples["parallel"]),
		Sync:      med(samples["barrier"]),
		Reduction: med(samples["reduction"]),
	}, nil
}

func maxOf(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// runOnce executes the kernel on one configuration and returns the
// modeled seconds.
func runOnce(board *platform.Board, kern Kernel, layerName string, threads int, scales perfmodel.Scales) (float64, Result, error) {
	var layer core.ThreadLayer
	switch layerName {
	case "native":
		layer = core.NewNativeLayer(board.HWThreads())
	case "mca":
		l, err := core.NewMCALayer(board.NewSystem())
		if err != nil {
			return 0, Result{}, err
		}
		layer = l
	default:
		return 0, Result{}, fmt.Errorf("npb: unknown layer %q", layerName)
	}
	model := perfmodel.NewScaled(board, kern.Profile(), scales)
	rt, err := core.New(
		core.WithLayer(layer),
		core.WithNumThreads(threads),
		core.WithMonitor(model),
	)
	if err != nil {
		return 0, Result{}, err
	}
	defer rt.Close()
	res, err := kern.Run(rt)
	if err != nil {
		return 0, Result{}, err
	}
	return model.Seconds(), res, nil
}

// Render draws the series as the text analogue of a Figure 4 panel:
// execution time and speedup per layer and thread count.
func (s *Figure4Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 — NAS %s class %s on %s (modeled time)\n", s.Kernel, s.Class, s.Board.Name)
	fmt.Fprintf(&sb, "%-8s %-8s %12s %10s %10s %9s\n", "layer", "threads", "time(s)", "speedup", "Mop/s", "verified")
	sb.WriteString(strings.Repeat("-", 63) + "\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%-8s %-8d %12.4f %10.2f %10.1f %9v\n",
			p.Layer, p.Threads, p.Seconds, p.Speedup, p.Mops, p.Verified)
	}
	return sb.String()
}

// MaxRelativeGap returns the largest |mca−native|/native time difference
// across matching thread counts — Figure 4's claim is that this gap is
// negligible.
func (s *Figure4Series) MaxRelativeGap() float64 {
	native := make(map[int]float64)
	for _, p := range s.Points {
		if p.Layer == "native" {
			native[p.Threads] = p.Seconds
		}
	}
	maxGap := 0.0
	for _, p := range s.Points {
		if p.Layer != "mca" {
			continue
		}
		if n, ok := native[p.Threads]; ok && n > 0 {
			gap := (p.Seconds - n) / n
			if gap < 0 {
				gap = -gap
			}
			if gap > maxGap {
				maxGap = gap
			}
		}
	}
	return maxGap
}

// SpeedupAt returns the speedup of the given layer at the given thread
// count (0 if absent).
func (s *Figure4Series) SpeedupAt(layer string, threads int) float64 {
	for _, p := range s.Points {
		if p.Layer == layer && p.Threads == threads {
			return p.Speedup
		}
	}
	return 0
}
