package npb

import (
	"strings"
	"testing"

	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
)

func testBoard() *platform.Board { return platform.T4240RDB() }

func TestFigure4EPShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	s, err := MeasureFigure4(testBoard(), "EP", ClassS, []int{1, 4, 12, 24})
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: EP near-ideal, both layers indistinguishable.
	for _, layer := range LayerNames {
		s12 := s.SpeedupAt(layer, 12)
		s24 := s.SpeedupAt(layer, 24)
		if s12 < 10 {
			t.Errorf("%s: EP speedup@12 = %.2f, want ~11-12", layer, s12)
		}
		if s24 < 18 {
			t.Errorf("%s: EP speedup@24 = %.2f, want near-ideal", layer, s24)
		}
	}
	if gap := s.MaxRelativeGap(); gap > 0.05 {
		t.Errorf("MCA vs native gap = %.1f%%, want < 5%%", gap*100)
	}
	for _, p := range s.Points {
		if !p.Verified {
			t.Errorf("unverified point: %+v", p)
		}
	}
	out := s.Render()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "T4240RDB") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure4MemoryBoundShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	s, err := MeasureFigure4(testBoard(), "IS", ClassW, []int{1, 12, 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range LayerNames {
		s12 := s.SpeedupAt(layer, 12)
		s24 := s.SpeedupAt(layer, 24)
		if s24 <= s12 {
			t.Errorf("%s: IS speedup fell from 12 (%.2f) to 24 (%.2f)", layer, s12, s24)
		}
		// SMT knee: 24 threads far from 2x the 12-thread speedup.
		if s24 > s12*1.6 {
			t.Errorf("%s: no SMT knee: %.2f -> %.2f", layer, s12, s24)
		}
	}
}

func TestFigure4UnknownInputs(t *testing.T) {
	if _, err := MeasureFigure4(testBoard(), "ZZ", ClassS, nil); err == nil {
		t.Error("unknown kernel accepted")
	}
	k, _ := New("EP", ClassS)
	if _, _, err := runOnce(testBoard(), k, "bogus", 2, perfmodel.UnitScales()); err == nil {
		t.Error("unknown layer accepted")
	}
}

func TestSpeedupAtMissing(t *testing.T) {
	s := &Figure4Series{}
	if got := s.SpeedupAt("native", 4); got != 0 {
		t.Errorf("missing point speedup = %v", got)
	}
	if got := s.MaxRelativeGap(); got != 0 {
		t.Errorf("empty gap = %v", got)
	}
}

func TestPlotRendersCurves(t *testing.T) {
	s := &Figure4Series{Kernel: "EP", Class: ClassS, Board: testBoard()}
	for _, layer := range LayerNames {
		for _, pt := range []Figure4Point{
			{Layer: layer, Threads: 1, Speedup: 1},
			{Layer: layer, Threads: 12, Speedup: 11.5},
			{Layer: layer, Threads: 24, Speedup: 23},
		} {
			s.Points = append(s.Points, pt)
		}
	}
	out := s.Plot()
	if !strings.Contains(out, "EP class S speedup") {
		t.Errorf("missing title:\n%s", out)
	}
	// Coincident layers render as '*'.
	if !strings.Contains(out, "*") {
		t.Errorf("expected overlapping-layer marker:\n%s", out)
	}
	if !strings.Contains(out, "threads") || !strings.Contains(out, "24") {
		t.Errorf("missing axis:\n%s", out)
	}
	// Divergent layers render distinct markers.
	s2 := &Figure4Series{Kernel: "CG", Class: ClassS, Board: testBoard()}
	s2.Points = []Figure4Point{
		{Layer: "native", Threads: 1, Speedup: 1},
		{Layer: "native", Threads: 24, Speedup: 20},
		{Layer: "mca", Threads: 1, Speedup: 1},
		{Layer: "mca", Threads: 24, Speedup: 8},
	}
	out2 := s2.Plot()
	if !strings.Contains(out2, "N") || !strings.Contains(out2, "M") {
		t.Errorf("divergent curves not distinct:\n%s", out2)
	}
}
