package npb

import (
	"fmt"
	"math"
	"math/cmplx"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

// FT is the NPB 3-D fast Fourier transform kernel: a forward 3-D FFT of a
// pseudo-random complex field, then several time steps that evolve the
// spectrum with Gaussian exponential factors and inverse-transform it,
// checksumming sample points each step. Pencil-parallel FFT sweeps stress
// strided memory access with three team barriers per transform.
//
// Grid sizes: S = 32³ and W = 64³ run quickly on a laptop; class A is
// scaled from NPB's 256×256×128 to 128³ (substitution recorded in
// DESIGN.md).
type FT struct {
	class Class
	n     int // grid edge, power of two
	iters int

	field   []complex128 // working spectrum/field, n³
	initial []complex128 // initial field for verification
	scratch [][]complex128
}

// ftAlpha is NPB's diffusion constant in the evolution factors.
const ftAlpha = 1e-6

// NewFT builds the FT kernel.
func NewFT(class Class) (*FT, error) {
	var k *FT
	switch class {
	case ClassS:
		k = &FT{class: class, n: 32, iters: 6}
	case ClassW:
		k = &FT{class: class, n: 64, iters: 6}
	case ClassA:
		k = &FT{class: class, n: 128, iters: 6}
	default:
		return nil, fmt.Errorf("npb: FT has no class %q", class)
	}
	total := k.n * k.n * k.n
	k.field = make([]complex128, total)
	k.initial = make([]complex128, total)
	x := uint64(314159265)
	for i := range k.initial {
		re := randlc(&x, lcgA)
		im := randlc(&x, lcgA)
		k.initial[i] = complex(re, im)
	}
	return k, nil
}

// Name implements Kernel.
func (k *FT) Name() string { return "FT" }

// Class implements Kernel.
func (k *FT) Class() Class { return k.class }

// Profile implements Kernel: FFT butterflies are compute-dense but the
// transposed pencil sweeps stride through memory; in between EP and the
// stencil kernels.
func (k *FT) Profile() perfmodel.KernelProfile {
	return perfmodel.KernelProfile{
		Name:            "FT",
		CyclesPerUnit:   7, // cycles per butterfly
		SMTYield:        0.60,
		MemoryIntensity: 0.55,
	}
}

// Run implements Kernel.
func (k *FT) Run(rt *core.Runtime) (Result, error) {
	n := k.n
	total := n * n * n
	copy(k.field, k.initial)
	k.scratch = make([][]complex128, rt.NumThreads())
	checksums := make([]complex128, 0, k.iters)

	err := rt.Parallel(func(c *core.Context) {
		k.fft3d(c, k.field, +1) // forward transform once

		for t := 1; t <= k.iters; t++ {
			k.evolve(c, t)
			// Inverse-transform a snapshot (NPB keeps the evolved
			// spectrum and transforms into a scratch array; we transform a
			// copy so the spectrum keeps evolving). The copy is taken by
			// one thread and broadcast with copyprivate semantics.
			snap := core.SingleCopy(c, func() []complex128 {
				s := make([]complex128, total)
				copy(s, k.field)
				return s
			})
			k.fft3d(c, snap, -1)
			sum := k.checksum(c, snap)
			c.Master(func() { checksums = append(checksums, sum) })
			c.Barrier()
		}
	})
	if err != nil {
		return Result{}, err
	}

	verified, detail := k.verify(rt, checksums)
	butterflies := float64(total) * math.Log2(float64(n)) * 3
	return Result{
		Kernel:    "FT",
		Class:     k.class,
		Verified:  verified,
		Checksum:  real(checksums[len(checksums)-1]),
		Detail:    detail,
		WorkUnits: butterflies * float64(k.iters+1),
	}, nil
}

// verify checks (a) a forward+inverse round trip reproduces the initial
// field and (b) every checksum is finite. Round-trip error bounds follow
// FFT numerical analysis: O(eps·log n).
func (k *FT) verify(rt *core.Runtime, checksums []complex128) (bool, string) {
	n := k.n
	total := n * n * n
	probe := make([]complex128, total)
	copy(probe, k.initial)
	if err := rt.Parallel(func(c *core.Context) {
		k.fft3d(c, probe, +1)
		k.fft3d(c, probe, -1)
	}); err != nil {
		return false, err.Error()
	}
	var maxErr float64
	for i := range probe {
		if e := cmplx.Abs(probe[i] - k.initial[i]); e > maxErr {
			maxErr = e
		}
	}
	roundTripOK := maxErr < 1e-10
	sumsOK := true
	for _, s := range checksums {
		if cmplx.IsNaN(s) || cmplx.IsInf(s) {
			sumsOK = false
		}
	}
	last := checksums[len(checksums)-1]
	return roundTripOK && sumsOK && len(checksums) == k.iters,
		fmt.Sprintf("roundtrip max err=%.3e, checksum[%d]=(%.6e,%.6e)", maxErr, k.iters, real(last), imag(last))
}

// evolve multiplies the spectrum by the Gaussian evolution factors
// exp(−4α π² t k̄²) with k̄ the symmetric wavenumber.
func (k *FT) evolve(c *core.Context, t int) {
	n := k.n
	factor := -4 * ftAlpha * math.Pi * math.Pi * float64(t)
	c.ForRange(n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ki := wavenumber(i, n)
			for j := 0; j < n; j++ {
				kj := wavenumber(j, n)
				base := (i*n + j) * n
				for l := 0; l < n; l++ {
					kl := wavenumber(l, n)
					e := math.Exp(factor * float64(ki*ki+kj*kj+kl*kl))
					k.field[base+l] *= complex(e, 0)
				}
			}
		}
		c.Charge(float64((hi - lo) * n * n * 4))
	})
}

func wavenumber(i, n int) int {
	if i >= n/2 {
		return i - n
	}
	return i
}

// checksum sums the NPB probe points X[(5j) mod n, (3j) mod n, j mod n].
func (k *FT) checksum(c *core.Context, a []complex128) complex128 {
	n := k.n
	probes := 1024
	sum := core.Reduce(c, probes, complex(0, 0),
		func(x, y complex128) complex128 { return x + y },
		func(lo, hi int) complex128 {
			var s complex128
			for j := lo + 1; j <= hi; j++ {
				idx := (((5*j)%n)*n+(3*j)%n)*n + j%n
				s += a[idx]
			}
			c.Charge(float64(hi - lo))
			return s
		})
	return sum / complex(float64(n*n*n), 0)
}

// fft3d performs an in-place 3-D FFT over the n³ array (dir=+1 forward,
// −1 inverse with 1/N³ normalization), one axis at a time with
// pencil-level worksharing.
func (k *FT) fft3d(c *core.Context, a []complex128, dir int) {
	n := k.n
	buf := k.pencilScratch(c)

	// Axis Z: contiguous pencils.
	c.ForRange(n*n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			base := p * n
			copy(buf, a[base:base+n])
			fft1d(buf, dir)
			copy(a[base:base+n], buf)
		}
		c.Charge(float64(hi-lo) * float64(n) * math.Log2(float64(n)))
	})

	// Axis Y: stride n within each i-plane.
	c.ForRange(n*n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i, l := p/n, p%n
			base := i*n*n + l
			for j := 0; j < n; j++ {
				buf[j] = a[base+j*n]
			}
			fft1d(buf, dir)
			for j := 0; j < n; j++ {
				a[base+j*n] = buf[j]
			}
		}
		c.Charge(float64(hi-lo) * float64(n) * math.Log2(float64(n)))
	})

	// Axis X: stride n².
	c.ForRange(n*n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			j, l := p/n, p%n
			base := j*n + l
			for i := 0; i < n; i++ {
				buf[i] = a[base+i*n*n]
			}
			fft1d(buf, dir)
			for i := 0; i < n; i++ {
				a[base+i*n*n] = buf[i]
			}
		}
		c.Charge(float64(hi-lo) * float64(n) * math.Log2(float64(n)))
	})

	if dir < 0 {
		norm := complex(1/float64(n*n*n), 0)
		c.ForRange(n*n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
			for idx := lo * n; idx < hi*n; idx++ {
				a[idx] *= norm
			}
			c.Charge(float64((hi - lo) * n))
		})
	}
}

// pencilScratch returns this thread's n-element FFT buffer, allocated on
// first use.
func (k *FT) pencilScratch(c *core.Context) []complex128 {
	tid := c.ThreadNum()
	if k.scratch[tid] == nil {
		k.scratch[tid] = make([]complex128, k.n)
	}
	return k.scratch[tid]
}

// fft1d is an iterative radix-2 Cooley-Tukey transform (dir=+1 forward,
// −1 inverse WITHOUT normalization; fft3d normalizes once).
func fft1d(a []complex128, dir int) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length) * float64(dir)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}
