package npb

import (
	"fmt"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

// IS is the NPB integer sort kernel: rank (counting-sort) a sequence of
// pseudo-random integer keys drawn from a known distribution, for several
// iterations, and verify that the computed ranks describe a sorted
// permutation. The parallel structure is the classic per-thread histogram
// + exclusive prefix sum + scatter, which stresses memory bandwidth and
// the runtime's barrier (three per iteration).
type IS struct {
	class   Class
	total   int // number of keys
	maxKey  int
	iters   int
	keys    []int32
	keysOut []int32
}

// isIterations matches NPB IS's 10 ranking iterations.
const isIterations = 10

// NewIS builds the IS kernel; sizes follow NPB 3.x (S: 2^16 keys of 2^11,
// W: 2^20 of 2^16, A: 2^23 of 2^19).
func NewIS(class Class) (*IS, error) {
	var k *IS
	switch class {
	case ClassS:
		k = &IS{class: class, total: 1 << 16, maxKey: 1 << 11, iters: isIterations}
	case ClassW:
		k = &IS{class: class, total: 1 << 20, maxKey: 1 << 16, iters: isIterations}
	case ClassA:
		k = &IS{class: class, total: 1 << 23, maxKey: 1 << 19, iters: isIterations}
	default:
		return nil, fmt.Errorf("npb: IS has no class %q", class)
	}
	k.generateKeys()
	return k, nil
}

// generateKeys fills the key array with NPB IS's distribution: the average
// of four consecutive uniform deviates, scaled to the key range (an
// approximately binomial hump).
func (k *IS) generateKeys() {
	k.keys = make([]int32, k.total)
	k.keysOut = make([]int32, k.total)
	x := uint64(314159265)
	for i := range k.keys {
		s := randlc(&x, lcgA) + randlc(&x, lcgA) + randlc(&x, lcgA) + randlc(&x, lcgA)
		k.keys[i] = int32(s / 4 * float64(k.maxKey))
	}
}

// Name implements Kernel.
func (k *IS) Name() string { return "IS" }

// Class implements Kernel.
func (k *IS) Class() Class { return k.class }

// Profile implements Kernel: random scatter/gather over arrays far larger
// than L2 — the most memory-bound of the five kernels.
func (k *IS) Profile() perfmodel.KernelProfile {
	return perfmodel.KernelProfile{
		Name:            "IS",
		CyclesPerUnit:   6,    // cycles per key movement
		SMTYield:        0.55, // SMT hides the scatter/gather miss latency
		MemoryIntensity: 0.85,
	}
}

// Run implements Kernel.
func (k *IS) Run(rt *core.Runtime) (Result, error) {
	nthreads := rt.NumThreads()
	// Per-thread histograms: hist[t] covers the full key range.
	hist := make([][]int32, nthreads)
	offsets := make([][]int32, nthreads)
	// rangeTotal[t] is the number of keys falling in thread t's static
	// key range; rangeBase is its exclusive scan.
	rangeTotal := make([]int32, nthreads)
	rangeBase := make([]int32, nthreads+1)
	var checksum float64

	err := rt.Parallel(func(c *core.Context) {
		t := c.ThreadNum()
		hist[t] = make([]int32, k.maxKey)
		offsets[t] = make([]int32, k.maxKey)
		c.Barrier()

		for iter := 0; iter < k.iters; iter++ {
			// NPB perturbs two keys per iteration to defeat caching of the
			// previous ranking.
			c.Single(func() {
				k.keys[iter] = int32(iter)
				k.keys[iter+k.iters] = int32(k.maxKey - iter - 1)
			})

			// Phase 1: per-thread histogram over a static key range.
			h := hist[t]
			for i := range h {
				h[i] = 0
			}
			c.ForRange(k.total, core.LoopOpts{Schedule: core.ScheduleStatic, NoWait: true}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					h[k.keys[i]]++
				}
				c.Charge(float64(hi - lo))
			})
			c.Barrier()

			// Phase 2: exclusive prefix over (key, thread) in key-major
			// order, parallelized the NPB way: each thread totals its
			// static key range, a tiny serial scan stitches the ranges,
			// then each thread fills its range's offsets.
			// A work unit is one random-access key movement (CyclesPerUnit
			// 6); these merge sweeps are streaming adds at ~1 cycle each,
			// hence the 1/6 scaling on their charges.
			c.ForRange(k.maxKey, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
				var sum int32
				for key := lo; key < hi; key++ {
					for th := 0; th < nthreads; th++ {
						sum += hist[th][key]
					}
				}
				rangeTotal[t] = sum
				c.Charge(float64((hi-lo)*nthreads) / 6.0)
			})
			c.Single(func() {
				rangeBase[0] = 0
				for th := 0; th < nthreads; th++ {
					rangeBase[th+1] = rangeBase[th] + rangeTotal[th]
				}
			})
			c.ForRange(k.maxKey, core.LoopOpts{Schedule: core.ScheduleStatic, NoWait: true}, func(lo, hi int) {
				running := rangeBase[t]
				for key := lo; key < hi; key++ {
					for th := 0; th < nthreads; th++ {
						offsets[th][key] = running
						running += hist[th][key]
					}
				}
				c.Charge(float64((hi-lo)*nthreads) / 6.0)
			})
			c.Barrier()

			// Phase 3: scatter keys to their ranked position.
			off := offsets[t]
			c.ForRange(k.total, core.LoopOpts{Schedule: core.ScheduleStatic, NoWait: true}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					key := k.keys[i]
					k.keysOut[off[key]] = key
					off[key]++
				}
				c.Charge(float64(hi - lo))
			})
			c.Barrier()
		}

		// Checksum: sample ranked keys.
		c.Master(func() {
			s := 0.0
			for i := 0; i < k.total; i += k.total / 1024 {
				s += float64(k.keysOut[i])
			}
			checksum = s
		})
	})
	if err != nil {
		return Result{}, err
	}

	verified, detail := k.verify()
	return Result{
		Kernel:    "IS",
		Class:     k.class,
		Verified:  verified,
		Checksum:  checksum,
		Detail:    detail,
		WorkUnits: float64(2*k.total*k.iters + k.maxKey*k.iters),
	}, nil
}

// verify performs NPB-style full verification: the output must be sorted
// and must be a permutation of the input.
func (k *IS) verify() (bool, string) {
	for i := 1; i < k.total; i++ {
		if k.keysOut[i-1] > k.keysOut[i] {
			return false, fmt.Sprintf("out of order at %d: %d > %d", i, k.keysOut[i-1], k.keysOut[i])
		}
	}
	counts := make([]int32, k.maxKey)
	for _, key := range k.keys {
		counts[key]++
	}
	for _, key := range k.keysOut {
		counts[key]--
	}
	for key, cnt := range counts {
		if cnt != 0 {
			return false, fmt.Sprintf("key %d count mismatch (%+d)", key, cnt)
		}
	}
	return true, fmt.Sprintf("%d keys fully sorted, permutation intact", k.total)
}
