package npb

import (
	"math"
	"testing"

	"openmpmca/internal/core"
)

// ----- MG internals -----

func TestGrid3Indexing(t *testing.T) {
	g := newGrid3(4)
	g.set(1, 2, 3, 42)
	if g.at(1, 2, 3) != 42 {
		t.Error("set/at mismatch")
	}
	if g.a[(1*4+2)*4+3] != 42 {
		t.Error("layout not row-major")
	}
	// Periodic wrap.
	if g.wrap(-1) != 3 || g.wrap(4) != 0 || g.wrap(2) != 2 {
		t.Errorf("wrap = %d,%d,%d", g.wrap(-1), g.wrap(4), g.wrap(2))
	}
}

func TestMGOperatorAnnihilatesConstants(t *testing.T) {
	// The A-stencil coefficients sum to zero: applying the operator to a
	// constant field must give ~0 — the discrete-Laplacian property the
	// smoother relies on. (Shell sizes on a 27-point periodic stencil:
	// 1 center, 6 faces, 12 edges, 8 corners.)
	sum := mgA[0] + 6*mgA[1] + 12*mgA[2] + 8*mgA[3]
	if math.Abs(sum) > 1e-12 {
		t.Errorf("A-stencil coefficient sum = %v, want 0", sum)
	}
	k, _ := NewMG(ClassS)
	rt := newNPBRuntime(t, 2)
	u := newGrid3(k.n)
	for i := range u.a {
		u.a[i] = 7.5
	}
	out := newGrid3(k.n)
	_ = rt.Parallel(func(c *core.Context) {
		k.apply27(c, mgA, u, out, nil, false)
	})
	maxAbs := 0.0
	for _, v := range out.a {
		if math.Abs(v) > maxAbs {
			maxAbs = math.Abs(v)
		}
	}
	if maxAbs > 1e-11 {
		t.Errorf("A·const max = %v, want ~0", maxAbs)
	}
}

// ----- FT internals -----

func TestWavenumberSymmetry(t *testing.T) {
	n := 8
	want := []int{0, 1, 2, 3, -4, -3, -2, -1}
	for i, w := range want {
		if got := wavenumber(i, n); got != w {
			t.Errorf("wavenumber(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestFFT1DLinearity(t *testing.T) {
	n := 32
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	x := uint64(99)
	for i := 0; i < n; i++ {
		a[i] = complex(randlc(&x, lcgA), randlc(&x, lcgA))
		b[i] = complex(randlc(&x, lcgA), randlc(&x, lcgA))
		sum[i] = a[i] + b[i]
	}
	fft1d(a, +1)
	fft1d(b, +1)
	fft1d(sum, +1)
	for i := 0; i < n; i++ {
		if d := sum[i] - (a[i] + b[i]); math.Hypot(real(d), imag(d)) > 1e-10 {
			t.Fatalf("FFT not linear at bin %d: %v", i, d)
		}
	}
}

func TestFFT1DParseval(t *testing.T) {
	n := 64
	a := make([]complex128, n)
	x := uint64(7)
	timeEnergy := 0.0
	for i := range a {
		a[i] = complex(randlc(&x, lcgA)-0.5, randlc(&x, lcgA)-0.5)
		timeEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	fft1d(a, +1)
	freqEnergy := 0.0
	for _, v := range a {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	// Parseval: Σ|x|² = (1/N)Σ|X|² for an unnormalized forward transform.
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-10*timeEnergy {
		t.Errorf("Parseval violated: time %v vs freq/N %v", timeEnergy, freqEnergy/float64(n))
	}
}

// ----- IS internals -----

func TestISKeyDistribution(t *testing.T) {
	k, _ := NewIS(ClassS)
	// Keys are the average of four uniforms: a binomial-ish hump centered
	// at maxKey/2, with all keys in range.
	var sum float64
	for _, key := range k.keys {
		if key < 0 || key >= int32(k.maxKey) {
			t.Fatalf("key %d out of range [0,%d)", key, k.maxKey)
		}
		sum += float64(key)
	}
	mean := sum / float64(len(k.keys))
	center := float64(k.maxKey) / 2
	if math.Abs(mean-center) > center*0.05 {
		t.Errorf("key mean = %.1f, want near %.1f", mean, center)
	}
	// The middle half should hold most of the mass (hump, not uniform).
	mid := 0
	for _, key := range k.keys {
		if float64(key) > center/2 && float64(key) < center*1.5 {
			mid++
		}
	}
	if frac := float64(mid) / float64(len(k.keys)); frac < 0.8 {
		t.Errorf("middle-half mass = %.2f, distribution not humped", frac)
	}
}

// ----- LU internals -----

func TestLUHyperplaneCoversGridOncePerSweep(t *testing.T) {
	// Re-derive the plane decomposition and confirm every (i,j,l) appears
	// in exactly one hyperplane.
	n := 12
	seen := make(map[[3]int]int)
	nPlanes := 3*n - 2
	for p := 0; p < nPlanes; p++ {
		iLo := p - 2*(n-1)
		if iLo < 0 {
			iLo = 0
		}
		iHi := p
		if iHi > n-1 {
			iHi = n - 1
		}
		for i := iLo; i <= iHi; i++ {
			rem := p - i
			jLo := rem - (n - 1)
			if jLo < 0 {
				jLo = 0
			}
			jHi := rem
			if jHi > n-1 {
				jHi = n - 1
			}
			for j := jLo; j <= jHi; j++ {
				l := rem - j
				if l < 0 || l >= n {
					t.Fatalf("plane %d produced out-of-range l=%d", p, l)
				}
				seen[[3]int{i, j, l}]++
			}
		}
	}
	if len(seen) != n*n*n {
		t.Fatalf("planes cover %d points, want %d", len(seen), n*n*n)
	}
	for pt, count := range seen {
		if count != 1 {
			t.Fatalf("point %v visited %d times", pt, count)
		}
	}
}

func TestLUBoundaryReadsAreZero(t *testing.T) {
	k, _ := NewLU(ClassS)
	if k.at(-1, 0, 0) != 0 || k.at(0, k.n, 0) != 0 || k.at(0, 0, -5) != 0 {
		t.Error("Dirichlet boundary not zero")
	}
}

// ----- CG internals -----

func TestCGMatvecIdentityOnUnitBasis(t *testing.T) {
	// A·e_i must reproduce column i, and by symmetry row i.
	k, _ := NewCG(ClassS)
	rt := newNPBRuntime(t, 3)
	in := make([]float64, k.n)
	out := make([]float64, k.n)
	probe := 37
	in[probe] = 1
	_ = rt.Parallel(func(c *core.Context) {
		k.matvec(c, in, out)
	})
	// out[j] = A[j][probe]; verify against the stored row of probe
	// (symmetry) summed for duplicates.
	wantRow := make(map[int]float64)
	for p := k.rowPtr[probe]; p < k.rowPtr[probe+1]; p++ {
		wantRow[int(k.colIdx[p])] += k.vals[p]
	}
	for j := 0; j < k.n; j++ {
		if w, ok := wantRow[j]; ok {
			if math.Abs(out[j]-w) > 1e-12*math.Max(1, math.Abs(w)) {
				t.Fatalf("A·e[%d] at %d = %v, want %v", probe, j, out[j], w)
			}
		} else if out[j] != 0 {
			t.Fatalf("A·e[%d] at %d = %v, want 0", probe, j, out[j])
		}
	}
}
