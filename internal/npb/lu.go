package npb

import (
	"fmt"
	"math"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

// LU is the NPB lower-upper symmetric Gauss-Seidel kernel, reduced from
// the full compressible Navier-Stokes system to its computational
// skeleton: SSOR sweeps over a 3-D grid where the lower-triangular update
// at point (i,j,k) depends on the already-updated (i-1,j,k), (i,j-1,k)
// and (i,j,k-1) neighbours, and the upper sweep on the (+1) neighbours.
//
// The data dependence forces NPB's hyperplane ("wavefront")
// parallelization: points with equal i+j+k form an independent set, so
// each sweep is a sequence of 3n-2 workshared hyperplanes with a team
// barrier between consecutive planes — the most synchronization-intensive
// kernel of the suite, which is why its Figure 4 panel scales worst.
//
// Grid sizes: S = 12³, W = 33³, A = 64³ (NPB values). Verification checks
// the SSOR residual contraction and cross-team determinism.
type LU struct {
	class Class
	n     int
	iters int

	u   []float64 // solution grid, n³
	rhs []float64 // right-hand side, n³
	res []float64 // residual scratch
}

// luOmega is the SSOR over-relaxation factor (NPB's 1.2).
const luOmega = 1.2

// NewLU builds the LU kernel.
func NewLU(class Class) (*LU, error) {
	var k *LU
	switch class {
	case ClassS:
		k = &LU{class: class, n: 12, iters: 10}
	case ClassW:
		k = &LU{class: class, n: 33, iters: 10}
	case ClassA:
		k = &LU{class: class, n: 64, iters: 10}
	default:
		return nil, fmt.Errorf("npb: LU has no class %q", class)
	}
	total := k.n * k.n * k.n
	k.u = make([]float64, total)
	k.rhs = make([]float64, total)
	k.res = make([]float64, total)
	// Smooth deterministic right-hand side.
	x := uint64(314159265)
	for i := range k.rhs {
		k.rhs[i] = randlc(&x, lcgA) - 0.5
	}
	return k, nil
}

// Name implements Kernel.
func (k *LU) Name() string { return "LU" }

// Class implements Kernel.
func (k *LU) Class() Class { return k.class }

// Profile implements Kernel: short dependent stencil chains, moderate
// memory traffic, and a barrier per hyperplane — latency-bound compute
// whose SMT yield is decent but whose sync density dominates at scale.
//
// CyclesPerUnit models the REAL NPB LU point update — the 5×5 block
// lower/upper solves of jacld/blts (~150 cycles/point) — while the
// executed skeleton performs the scalar relaxation that carries the same
// dependence structure. The unit is "one grid-point update", so the
// model's time reflects the full kernel's arithmetic density (documented
// substitution, DESIGN.md §2).
func (k *LU) Profile() perfmodel.KernelProfile {
	return perfmodel.KernelProfile{
		Name:            "LU",
		CyclesPerUnit:   150,
		SMTYield:        0.5,
		MemoryIntensity: 0.6,
	}
}

func (k *LU) idx(i, j, l int) int { return (i*k.n+j)*k.n + l }

// at reads u with zero (Dirichlet) boundaries.
func (k *LU) at(i, j, l int) float64 {
	if i < 0 || j < 0 || l < 0 || i >= k.n || j >= k.n || l >= k.n {
		return 0
	}
	return k.u[k.idx(i, j, l)]
}

// Run implements Kernel.
func (k *LU) Run(rt *core.Runtime) (Result, error) {
	for i := range k.u {
		k.u[i] = 0
	}
	var initialNorm, finalNorm float64

	err := rt.Parallel(func(c *core.Context) {
		r0 := k.residualNorm(c)
		c.Master(func() { initialNorm = r0 })

		for it := 0; it < k.iters; it++ {
			k.sweep(c, +1) // lower-triangular (forward) sweep
			k.sweep(c, -1) // upper-triangular (backward) sweep
		}
		rn := k.residualNorm(c)
		c.Master(func() { finalNorm = rn })
		c.Barrier()
	})
	if err != nil {
		return Result{}, err
	}

	// Verification: SSOR must contract the residual substantially (the
	// random right-hand side is rich in high-frequency modes that
	// Gauss-Seidel damps fast; the asymptotic rate only limits the smooth
	// tail), and the solution checksum must be finite. Because every
	// hyperplane reads only already-synchronized planes, the sweep is
	// bit-deterministic across team sizes — the cross-thread test asserts
	// exact checksum equality.
	verified := finalNorm < initialNorm*0.6 && !math.IsNaN(finalNorm)
	checksum := 0.0
	for _, v := range k.u {
		checksum += v
	}
	pts := float64(k.n * k.n * k.n)
	return Result{
		Kernel:    "LU",
		Class:     k.class,
		Verified:  verified,
		Checksum:  checksum,
		Detail:    fmt.Sprintf("‖r₀‖=%.6e ‖r‖=%.6e contraction=%.2e", initialNorm, finalNorm, finalNorm/initialNorm),
		WorkUnits: pts * float64(2*k.iters),
	}, nil
}

// sweep performs one triangular SSOR half-sweep over hyperplanes. dir=+1
// walks planes in ascending i+j+l order using (-1) neighbours; dir=-1
// descends using (+1) neighbours.
func (k *LU) sweep(c *core.Context, dir int) {
	n := k.n
	nPlanes := 3*n - 2
	for p := 0; p < nPlanes; p++ {
		plane := p
		if dir < 0 {
			plane = nPlanes - 1 - p
		}
		// Workshare the i-range of the plane; (j,l) follow from i and the
		// plane equation i+j+l = plane.
		iLo := plane - 2*(n-1)
		if iLo < 0 {
			iLo = 0
		}
		iHi := plane
		if iHi > n-1 {
			iHi = n - 1
		}
		span := iHi - iLo + 1
		c.ForRange(span, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
			work := 0
			for ii := lo; ii < hi; ii++ {
				i := iLo + ii
				rem := plane - i
				jLo := rem - (n - 1)
				if jLo < 0 {
					jLo = 0
				}
				jHi := rem
				if jHi > n-1 {
					jHi = n - 1
				}
				for j := jLo; j <= jHi; j++ {
					l := rem - j
					// 7-point Gauss-Seidel relaxation: the dir-side
					// neighbours carry already-updated values, giving the
					// triangular solve its dependence structure.
					sum := k.at(i-dir, j, l) + k.at(i, j-dir, l) + k.at(i, j, l-dir) +
						k.at(i+dir, j, l) + k.at(i, j+dir, l) + k.at(i, j, l+dir)
					gs := (k.rhs[k.idx(i, j, l)] + sum) / 6.0
					old := k.u[k.idx(i, j, l)]
					k.u[k.idx(i, j, l)] = old + luOmega*(gs-old)
					work++
				}
			}
			c.Charge(float64(work))
		})
		// The loop's implied barrier orders this hyperplane before the
		// next — the wavefront synchronization NPB's LU pipelines.
	}
}

// residualNorm computes ‖rhs − A·u‖/n^1.5 for the 7-point operator
// A = 6·I − Σ neighbours.
func (k *LU) residualNorm(c *core.Context) float64 {
	n := k.n
	c.ForRange(n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				for l := 0; l < n; l++ {
					neigh := k.at(i-1, j, l) + k.at(i+1, j, l) +
						k.at(i, j-1, l) + k.at(i, j+1, l) +
						k.at(i, j, l-1) + k.at(i, j, l+1)
					k.res[k.idx(i, j, l)] = k.rhs[k.idx(i, j, l)] - (6*k.u[k.idx(i, j, l)] - neigh)
				}
			}
		}
		// The unit is one block point-update (~150 cycles); this residual
		// evaluation costs ~8 cycles per point.
		c.Charge(float64((hi-lo)*n*n) * 8.0 / 150.0)
	})
	sum := core.Reduce(c, n, 0.0,
		func(a, b float64) float64 { return a + b },
		func(lo, hi int) float64 {
			s := 0.0
			for idx := lo * n * n; idx < hi*n*n; idx++ {
				s += k.res[idx] * k.res[idx]
			}
			c.Charge(float64((hi-lo)*n*n) * 2.0 / 150.0)
			return s
		})
	return math.Sqrt(sum / float64(n*n*n))
}
