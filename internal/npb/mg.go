package npb

import (
	"fmt"
	"math"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

// MG is the NPB multigrid kernel: iterations of a V-cycle on a 3D Poisson
// problem ∇²u = v on an n³ periodic grid, followed by a residual
// evaluation. Each V-cycle descends through coarser grids (restriction),
// smooths, and interpolates back up (prolongation) — a sweep-heavy,
// stencil-bound workload with a barrier after every grid level, which is
// what separates it from EP in Figure 4.
//
// Grid sizes: S = 32³, W = 64³ (NPB values); class A is scaled from NPB's
// 256³ to 128³ so the working set fits a laptop (substitution recorded in
// DESIGN.md); iteration counts follow NPB (4).
type MG struct {
	class Class
	n     int // finest grid edge (power of two)
	iters int

	levels []*grid3 // levels[0] is the finest
	v      *grid3   // right-hand side on the finest grid
	r      []*grid3 // residual / restricted right-hand side per level
	tmp    []*grid3 // scratch per level: residual sweeps cannot run in place
}

// grid3 is an n³ periodic grid stored densely.
type grid3 struct {
	n int
	a []float64
}

func newGrid3(n int) *grid3 { return &grid3{n: n, a: make([]float64, n*n*n)} }

func (g *grid3) at(i, j, k int) float64 { return g.a[(i*g.n+j)*g.n+k] }
func (g *grid3) set(i, j, k int, v float64) {
	g.a[(i*g.n+j)*g.n+k] = v
}

// wrap maps an index onto the periodic grid.
func (g *grid3) wrap(i int) int {
	if i < 0 {
		return i + g.n
	}
	if i >= g.n {
		return i - g.n
	}
	return i
}

// NewMG builds the MG kernel.
func NewMG(class Class) (*MG, error) {
	var k *MG
	switch class {
	case ClassS:
		k = &MG{class: class, n: 32, iters: 4}
	case ClassW:
		k = &MG{class: class, n: 64, iters: 4}
	case ClassA:
		k = &MG{class: class, n: 128, iters: 4}
	default:
		return nil, fmt.Errorf("npb: MG has no class %q", class)
	}
	// Build the grid hierarchy down to 4³.
	for n := k.n; n >= 4; n /= 2 {
		k.levels = append(k.levels, newGrid3(n))
		k.r = append(k.r, newGrid3(n))
		k.tmp = append(k.tmp, newGrid3(n))
	}
	k.v = newGrid3(k.n)
	k.seedRHS()
	return k, nil
}

// seedRHS places NPB-style ±1 point charges at pseudo-random grid points.
func (k *MG) seedRHS() {
	x := uint64(314159265)
	n := k.n
	for c := 0; c < 20; c++ {
		i := int(randlc(&x, lcgA) * float64(n))
		j := int(randlc(&x, lcgA) * float64(n))
		l := int(randlc(&x, lcgA) * float64(n))
		val := 1.0
		if c%2 == 1 {
			val = -1.0
		}
		k.v.set(i%n, j%n, l%n, val)
	}
}

// Name implements Kernel.
func (k *MG) Name() string { return "MG" }

// Class implements Kernel.
func (k *MG) Class() Class { return k.class }

// Profile implements Kernel: 27-point stencils stream whole grids through
// the cache hierarchy.
func (k *MG) Profile() perfmodel.KernelProfile {
	return perfmodel.KernelProfile{
		Name:            "MG",
		CyclesPerUnit:   3,    // cycles per stencil point-op
		SMTYield:        0.50, // stencil sweeps alternate stalls and FP work
		MemoryIntensity: 0.8,
	}
}

// stencil coefficients (NPB's class-independent a[] / c[] sets, flattened
// to the three shell distances of a 27-point stencil).
var (
	mgA = [4]float64{-8.0 / 3.0, 0, 1.0 / 6.0, 1.0 / 12.0}   // residual operator A
	mgS = [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0} // smoother S
)

// Run implements Kernel.
func (k *MG) Run(rt *core.Runtime) (Result, error) {
	u := k.levels[0]
	for i := range u.a {
		u.a[i] = 0
	}
	var initialNorm, finalNorm float64

	err := rt.Parallel(func(c *core.Context) {
		k.residual(c, u, k.v, k.r[0])
		n0 := k.norm(c, k.r[0])
		c.Master(func() { initialNorm = n0 })

		for it := 0; it < k.iters; it++ {
			k.vCycle(c)
			k.residual(c, u, k.v, k.r[0])
		}
		nf := k.norm(c, k.r[0])
		c.Master(func() { finalNorm = nf })
		c.Barrier()
	})
	if err != nil {
		return Result{}, err
	}

	// Verification: the V-cycles must contract the residual (each cycle
	// of this single-smoothing-step scheme removes roughly half the
	// residual, so four cycles must reach ≤ 10%) and produce finite
	// values.
	verified := finalNorm < initialNorm*0.1 && !math.IsNaN(finalNorm)
	pts := float64(k.n * k.n * k.n)
	return Result{
		Kernel:    "MG",
		Class:     k.class,
		Verified:  verified,
		Checksum:  finalNorm,
		Detail:    fmt.Sprintf("‖r₀‖=%.6e ‖r‖=%.6e contraction=%.2e", initialNorm, finalNorm, finalNorm/initialNorm),
		WorkUnits: pts * float64(k.iters) * 60, // stencil ops per point per cycle
	}, nil
}

// vCycle runs one V-cycle across the hierarchy.
func (k *MG) vCycle(c *core.Context) {
	depth := len(k.levels)
	// Downstroke: restrict the residual and zero the coarse corrections.
	for l := 0; l < depth-1; l++ {
		k.restrict(c, k.r[l], k.r[l+1])
		k.zero(c, k.levels[l+1])
	}
	// Coarsest solve: one smoother application on 4³.
	k.smooth(c, k.levels[depth-1], k.r[depth-1])
	// Upstroke: prolongate the correction, re-evaluate the level residual
	// into scratch (a 27-point sweep cannot run in place), and smooth.
	for l := depth - 2; l >= 0; l-- {
		k.prolongate(c, k.levels[l+1], k.levels[l])
		if l == 0 {
			k.residual(c, k.levels[0], k.v, k.tmp[0])
		} else {
			k.residual(c, k.levels[l], k.r[l], k.tmp[l])
		}
		k.smooth(c, k.levels[l], k.tmp[l])
	}
}

// zero clears a grid with plane-level worksharing.
func (k *MG) zero(c *core.Context, g *grid3) {
	n := g.n
	c.ForRange(n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for idx := lo * n * n; idx < hi*n*n; idx++ {
			g.a[idx] = 0
		}
		c.Charge(float64((hi - lo) * n * n))
	})
}

// apply27 sweeps a 27-point shell stencil out = op(in) with plane-level
// worksharing; "add" accumulates into out instead of overwriting.
func (k *MG) apply27(c *core.Context, coef [4]float64, in, out *grid3, rhs *grid3, add bool) {
	n := in.n
	c.ForRange(n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			im, ip := in.wrap(i-1), in.wrap(i+1)
			for j := 0; j < n; j++ {
				jm, jp := in.wrap(j-1), in.wrap(j+1)
				for l := 0; l < n; l++ {
					lm, lp := in.wrap(l-1), in.wrap(l+1)
					// Shell sums by Manhattan-ish distance class.
					s0 := in.at(i, j, l)
					s1 := in.at(im, j, l) + in.at(ip, j, l) +
						in.at(i, jm, l) + in.at(i, jp, l) +
						in.at(i, j, lm) + in.at(i, j, lp)
					s2 := in.at(im, jm, l) + in.at(im, jp, l) + in.at(ip, jm, l) + in.at(ip, jp, l) +
						in.at(im, j, lm) + in.at(im, j, lp) + in.at(ip, j, lm) + in.at(ip, j, lp) +
						in.at(i, jm, lm) + in.at(i, jm, lp) + in.at(i, jp, lm) + in.at(i, jp, lp)
					s3 := in.at(im, jm, lm) + in.at(im, jm, lp) + in.at(im, jp, lm) + in.at(im, jp, lp) +
						in.at(ip, jm, lm) + in.at(ip, jm, lp) + in.at(ip, jp, lm) + in.at(ip, jp, lp)
					v := coef[0]*s0 + coef[1]*s1 + coef[2]*s2 + coef[3]*s3
					if rhs != nil {
						v = rhs.at(i, j, l) - v
					}
					if add {
						out.a[(i*n+j)*n+l] += v
					} else {
						out.a[(i*n+j)*n+l] = v
					}
				}
			}
		}
		c.Charge(float64((hi - lo) * n * n * 30))
	})
}

// residual computes r = v − A·u.
func (k *MG) residual(c *core.Context, u, v, r *grid3) {
	k.apply27(c, mgA, u, r, v, false)
}

// smooth applies u += S·r.
func (k *MG) smooth(c *core.Context, u, r *grid3) {
	k.apply27(c, mgS, r, u, nil, true)
}

// restrict projects the fine residual onto the next coarser grid with
// full-weighting over 2³ cells.
func (k *MG) restrict(c *core.Context, fine, coarse *grid3) {
	nc := coarse.n
	c.ForRange(nc, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < nc; j++ {
				for l := 0; l < nc; l++ {
					s := 0.0
					for di := 0; di < 2; di++ {
						for dj := 0; dj < 2; dj++ {
							for dl := 0; dl < 2; dl++ {
								s += fine.at(2*i+di, 2*j+dj, 2*l+dl)
							}
						}
					}
					coarse.set(i, j, l, s/8)
				}
			}
		}
		c.Charge(float64((hi - lo) * nc * nc * 9))
	})
}

// prolongate injects the coarse correction into the fine grid (trilinear
// into the even points, which suffices as the smoother follows).
func (k *MG) prolongate(c *core.Context, coarse, fine *grid3) {
	nc := coarse.n
	c.ForRange(nc, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < nc; j++ {
				for l := 0; l < nc; l++ {
					v := coarse.at(i, j, l)
					for di := 0; di < 2; di++ {
						for dj := 0; dj < 2; dj++ {
							for dl := 0; dl < 2; dl++ {
								fi := (2*i + di)
								fj := (2*j + dj)
								fl := (2*l + dl)
								fine.a[(fi*fine.n+fj)*fine.n+fl] += v
							}
						}
					}
				}
			}
		}
		c.Charge(float64((hi - lo) * nc * nc * 9))
	})
}

// norm computes the L2 norm of a grid via the team reduction.
func (k *MG) norm(c *core.Context, g *grid3) float64 {
	n := g.n
	sum := core.Reduce(c, n, 0.0,
		func(a, b float64) float64 { return a + b },
		func(lo, hi int) float64 {
			s := 0.0
			for idx := lo * n * n; idx < hi*n*n; idx++ {
				s += g.a[idx] * g.a[idx]
			}
			c.Charge(float64(2 * (hi - lo) * n * n))
			return s
		})
	return math.Sqrt(sum / float64(n*n*n))
}
