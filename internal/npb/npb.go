// Package npb implements the five NAS Parallel Benchmark kernels the
// paper's Figure 4 evaluates — EP, CG, IS, MG and FT — on top of the Go
// OpenMP runtime, with built-in verification and virtual-time measurement
// on the modeled board.
//
// Problem classes follow NPB conventions where feasible on a laptop-class
// host; MG and FT class A grids are scaled down (documented per kernel and
// in DESIGN.md) because the original 256³ grids need multi-GB arrays. The
// Figure 4 harness defaults to class W; shapes are class-invariant because
// the performance model charges work proportional to the executed
// iteration counts.
//
// Each kernel executes its numerical work for real through the runtime
// under test (so verification is meaningful for either thread layer) while
// charging abstract work units to the runtime monitor; the perfmodel
// Monitor turns those charges into deterministic T4240 seconds.
package npb

import (
	"fmt"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

// Class is an NPB problem class.
type Class byte

// Problem classes: S (sample), W (workstation), A (standard).
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
)

// ParseClass converts "S"/"W"/"A" (any case) to a Class.
func ParseClass(s string) (Class, error) {
	if len(s) == 1 {
		switch s[0] {
		case 'S', 's':
			return ClassS, nil
		case 'W', 'w':
			return ClassW, nil
		case 'A', 'a':
			return ClassA, nil
		}
	}
	return 0, fmt.Errorf("npb: unknown class %q (want S, W or A)", s)
}

func (c Class) String() string { return string(c) }

// Result is one kernel run's outcome.
type Result struct {
	Kernel   string
	Class    Class
	Verified bool
	// Checksum is a kernel-specific scalar fingerprint of the numerical
	// result; runs at different thread counts must agree (exactly for
	// integer kernels, within tolerance for floating-point reductions).
	Checksum float64
	// Detail carries the human-readable verification summary.
	Detail string
	// WorkUnits is the total abstract work charged to the monitor.
	WorkUnits float64
}

// Kernel is one NAS benchmark instance, reusable across runs.
type Kernel interface {
	// Name is the NPB kernel mnemonic ("EP", "CG", ...).
	Name() string
	// Class reports the problem class.
	Class() Class
	// Profile returns the kernel's board-interaction profile for the
	// virtual-time model.
	Profile() perfmodel.KernelProfile
	// Run executes the kernel through rt and verifies the result.
	Run(rt *core.Runtime) (Result, error)
}

// Kernels lists the Figure 4 kernel names in the paper's order.
var Kernels = []string{"EP", "CG", "IS", "MG", "FT", "LU", "SP"}

// New constructs a kernel by name and class.
func New(name string, class Class) (Kernel, error) {
	switch name {
	case "EP", "ep":
		return NewEP(class)
	case "CG", "cg":
		return NewCG(class)
	case "IS", "is":
		return NewIS(class)
	case "MG", "mg":
		return NewMG(class)
	case "FT", "ft":
		return NewFT(class)
	case "LU", "lu":
		return NewLU(class)
	case "SP", "sp":
		return NewSP(class)
	}
	return nil, fmt.Errorf("npb: unknown kernel %q", name)
}

// ----- NPB pseudo-random number generator -----

// lcgMod is the 2^46 modulus of the NPB linear congruential generator.
const lcgMod = uint64(1) << 46

const lcgMask = lcgMod - 1

// lcgA is the NPB multiplier 5^13.
const lcgA = uint64(1220703125)

// randlc advances the NPB LCG one step: x' = a·x mod 2^46, returning the
// uniform double x'/2^46. Because 2^64 ≡ 0 (mod 2^46), the wrap-around
// 64-bit product already carries the right low bits.
func randlc(x *uint64, a uint64) float64 {
	*x = (a * *x) & lcgMask
	return float64(*x) / float64(lcgMod)
}

// lcgPow returns a^n mod 2^46 — the skip-ahead multiplier that lets each
// thread jump the stream to its chunk in O(log n), the trick NPB EP uses
// to parallelize the generator.
func lcgPow(a uint64, n uint64) uint64 {
	result := uint64(1)
	base := a & lcgMask
	for n > 0 {
		if n&1 == 1 {
			result = (result * base) & lcgMask
		}
		base = (base * base) & lcgMask
		n >>= 1
	}
	return result
}

// lcgSkip returns the LCG state n steps ahead of seed.
func lcgSkip(seed uint64, n uint64) uint64 {
	return (lcgPow(lcgA, n) * seed) & lcgMask
}
