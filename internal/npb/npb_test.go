package npb

import (
	"math"
	"sync"
	"testing"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

func newNPBRuntime(t *testing.T, threads int) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.WithLayer(core.NewNativeLayer(24)), core.WithNumThreads(threads))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"S": ClassS, "w": ClassW, "A": ClassA} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("B"); err == nil {
		t.Error("ParseClass accepted B")
	}
	if _, err := ParseClass(""); err == nil {
		t.Error("ParseClass accepted empty")
	}
}

func TestNewKernelDispatch(t *testing.T) {
	for _, name := range Kernels {
		k, err := New(name, ClassS)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if k.Name() != name {
			t.Errorf("Name = %q, want %q", k.Name(), name)
		}
		if k.Class() != ClassS {
			t.Errorf("%s class = %v", name, k.Class())
		}
		if p := k.Profile(); p.CyclesPerUnit <= 0 || p.Name == "" {
			t.Errorf("%s profile = %+v", name, p)
		}
	}
	if _, err := New("XX", ClassS); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := New("EP", Class('Q')); err == nil {
		t.Error("unknown class accepted")
	}
}

// ----- LCG -----

func TestRandlcMatchesSequential(t *testing.T) {
	// Skip-ahead must land exactly where sequential stepping lands.
	x := uint64(271828183)
	for i := 0; i < 1000; i++ {
		randlc(&x, lcgA)
	}
	if got := lcgSkip(271828183, 1000); got != x {
		t.Errorf("lcgSkip(1000) = %d, sequential = %d", got, x)
	}
	if got := lcgSkip(271828183, 0); got != 271828183 {
		t.Errorf("lcgSkip(0) = %d", got)
	}
}

func TestRandlcRange(t *testing.T) {
	x := uint64(314159265)
	for i := 0; i < 10000; i++ {
		v := randlc(&x, lcgA)
		if v < 0 || v >= 1 {
			t.Fatalf("randlc out of [0,1): %v", v)
		}
	}
}

// ----- kernels at class S over multiple thread counts -----

func TestEPVerifiesAcrossThreadCounts(t *testing.T) {
	k, err := NewEP(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	var first Result
	for _, threads := range []int{1, 3, 8} {
		rt := newNPBRuntime(t, threads)
		res, err := k.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("EP@%d not verified: %s", threads, res.Detail)
		}
		if threads == 1 {
			first = res
		} else if !closeRel(res.Checksum, first.Checksum, 1e-9) {
			t.Errorf("EP@%d checksum %v != 1-thread %v", threads, res.Checksum, first.Checksum)
		}
	}
}

func TestCGVerifies(t *testing.T) {
	k, err := NewCG(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if k.NNZ() <= k.n {
		t.Fatalf("matrix degenerate: nnz=%d", k.NNZ())
	}
	var zeta1 float64
	for _, threads := range []int{1, 4} {
		rt := newNPBRuntime(t, threads)
		res, err := k.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("CG@%d not verified: %s", threads, res.Detail)
		}
		if threads == 1 {
			zeta1 = res.Checksum
		} else if !closeRel(res.Checksum, zeta1, 1e-6) {
			t.Errorf("CG zeta differs across thread counts: %v vs %v", res.Checksum, zeta1)
		}
	}
}

func TestCGMatrixIsSymmetric(t *testing.T) {
	k, _ := NewCG(ClassS)
	// Spot-check symmetry: for a sample of entries (i,j,v), j's row must
	// contain (i,v).
	find := func(row, col int) (float64, bool) {
		for p := k.rowPtr[row]; p < k.rowPtr[row+1]; p++ {
			if int(k.colIdx[p]) == col {
				return k.vals[p], true
			}
		}
		return 0, false
	}
	checked := 0
	for i := 0; i < k.n && checked < 200; i += 17 {
		for p := k.rowPtr[i]; p < k.rowPtr[i+1]; p++ {
			j := int(k.colIdx[p])
			if j == i {
				continue
			}
			v, ok := find(j, i)
			if !ok {
				t.Fatalf("A[%d,%d] exists but A[%d,%d] missing", i, j, j, i)
			}
			// Duplicate pairs may accumulate; both directions must carry
			// the same total, which holds when each direction stores the
			// same entries. Spot value check:
			_ = v
			checked++
		}
	}
	// Diagonal dominance (Gershgorin ⇒ SPD).
	for i := 0; i < k.n; i += 97 {
		var diag, off float64
		for p := k.rowPtr[i]; p < k.rowPtr[i+1]; p++ {
			if int(k.colIdx[p]) == i {
				diag += k.vals[p]
			} else {
				off += math.Abs(k.vals[p])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %v <= %v", i, diag, off)
		}
	}
}

func TestISVerifiesAcrossThreadCounts(t *testing.T) {
	for _, threads := range []int{1, 4, 7} {
		k, err := NewIS(ClassS)
		if err != nil {
			t.Fatal(err)
		}
		rt := newNPBRuntime(t, threads)
		res, err := k.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("IS@%d not verified: %s", threads, res.Detail)
		}
	}
}

func TestMGVerifies(t *testing.T) {
	k, err := NewMG(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		rt := newNPBRuntime(t, threads)
		res, err := k.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("MG@%d not verified: %s", threads, res.Detail)
		}
	}
}

func TestFTVerifies(t *testing.T) {
	k, err := NewFT(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	var sum1 float64
	for _, threads := range []int{1, 4} {
		rt := newNPBRuntime(t, threads)
		res, err := k.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("FT@%d not verified: %s", threads, res.Detail)
		}
		if threads == 1 {
			sum1 = res.Checksum
		} else if !closeRel(res.Checksum, sum1, 1e-9) {
			t.Errorf("FT checksum differs: %v vs %v", res.Checksum, sum1)
		}
	}
}

func TestFFT1DKnownTransform(t *testing.T) {
	// FFT of a constant is an impulse at bin 0.
	n := 16
	a := make([]complex128, n)
	for i := range a {
		a[i] = 1
	}
	fft1d(a, +1)
	if math.Abs(real(a[0])-float64(n)) > 1e-12 || math.Abs(imag(a[0])) > 1e-12 {
		t.Errorf("bin 0 = %v, want %d", a[0], n)
	}
	for i := 1; i < n; i++ {
		if math.Hypot(real(a[i]), imag(a[i])) > 1e-10 {
			t.Errorf("bin %d = %v, want 0", i, a[i])
		}
	}
	// Inverse recovers the constant (after 1/n scaling).
	fft1d(a, -1)
	for i := range a {
		if math.Abs(real(a[i])/float64(n)-1) > 1e-12 {
			t.Errorf("roundtrip[%d] = %v", i, a[i])
		}
	}
}

func TestKernelsRunOnMCALayer(t *testing.T) {
	// The paper's Figure 4 point: the MCA-backed runtime computes the
	// same answers. One kernel suffices per run here; the harness tests
	// the rest.
	for _, name := range []string{"EP", "IS"} {
		k, err := New(name, ClassS)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := runOnce(testBoard(), k, "mca", 4, perfmodel.UnitScales())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Errorf("%s on MCA layer not verified: %s", name, res.Detail)
		}
	}
}

func TestWorkChargesIndependentOfThreadCount(t *testing.T) {
	// The virtual-time model is only sound if the total work charged is a
	// property of the problem, not of the team size. EP's charges must be
	// exactly equal; IS's may differ only by the histogram-merge term
	// (which scales with nthreads by construction).
	charge := func(threads int) float64 {
		k, err := NewEP(ClassS)
		if err != nil {
			t.Fatal(err)
		}
		m := perfmodel.New(testBoard(), k.Profile())
		rec := &chargeCounter{}
		rt, err := core.New(
			core.WithLayer(core.NewNativeLayer(24)),
			core.WithNumThreads(threads),
			core.WithMonitor(rec),
		)
		_ = m
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		if _, err := k.Run(rt); err != nil {
			t.Fatal(err)
		}
		return rec.total.Load()
	}
	c1 := charge(1)
	c8 := charge(8)
	if c1 != c8 {
		t.Errorf("EP charges differ with team size: %v vs %v", c1, c8)
	}
	if c1 != float64(1<<24) {
		t.Errorf("EP charges = %v, want 2^24", c1)
	}
}

// chargeCounter tallies Monitor charges.
type chargeCounter struct {
	total atomicFloat
}

func (c *chargeCounter) Fork(int)            {}
func (c *chargeCounter) Join()               {}
func (c *chargeCounter) Barrier()            {}
func (c *chargeCounter) CriticalEnter(int)   {}
func (c *chargeCounter) CriticalExit(int)    {}
func (c *chargeCounter) Single(int)          {}
func (c *chargeCounter) Reduction(int)       {}
func (c *chargeCounter) Task(int)            {}
func (c *chargeCounter) Steal(int, int)      {}
func (c *chargeCounter) NestedFork(int, int) {}
func (c *chargeCounter) NestedJoin(int)      {}
func (c *chargeCounter) Cancel()             {}
func (c *chargeCounter) Charge(tid int, u float64) {
	c.total.Add(u)
}

// atomicFloat is a tiny mutex-free accumulator for the test monitor.
type atomicFloat struct {
	mu  sync.Mutex
	val float64
}

func (a *atomicFloat) Add(v float64) {
	a.mu.Lock()
	a.val += v
	a.mu.Unlock()
}

func (a *atomicFloat) Load() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.val
}

func TestLUVerifiesAndIsDeterministicAcrossThreadCounts(t *testing.T) {
	var first float64
	for _, threads := range []int{1, 4, 9} {
		k, err := NewLU(ClassS)
		if err != nil {
			t.Fatal(err)
		}
		rt := newNPBRuntime(t, threads)
		res, err := k.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("LU@%d not verified: %s", threads, res.Detail)
		}
		if threads == 1 {
			first = res.Checksum
		} else if res.Checksum != first {
			// Hyperplane sweeps read only barrier-ordered planes, so the
			// result must be BIT-identical regardless of team size.
			t.Errorf("LU@%d checksum %v != 1-thread %v (wavefront broke determinism)",
				threads, res.Checksum, first)
		}
	}
}

func TestLUClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W in -short mode")
	}
	k, err := NewLU(ClassW)
	if err != nil {
		t.Fatal(err)
	}
	rt := newNPBRuntime(t, 8)
	res, err := k.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("LU class W not verified: %s", res.Detail)
	}
}

func TestSPVerifiesAndIsDeterministicAcrossThreadCounts(t *testing.T) {
	var first float64
	for _, threads := range []int{1, 5, 8} {
		k, err := NewSP(ClassS)
		if err != nil {
			t.Fatal(err)
		}
		rt := newNPBRuntime(t, threads)
		res, err := k.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("SP@%d not verified: %s", threads, res.Detail)
		}
		if threads == 1 {
			first = res.Checksum
		} else if res.Checksum != first {
			// Lines are independent; ADI must be bit-deterministic.
			t.Errorf("SP@%d checksum %v != 1-thread %v", threads, res.Checksum, first)
		}
	}
}

func TestThomasSolvesTridiagonal(t *testing.T) {
	// Verify (I − λL)x = d by residual: reconstruct A·x and compare to
	// the original right-hand side.
	n := 16
	d := make([]float64, n)
	orig := make([]float64, n)
	x := uint64(5)
	for i := range d {
		d[i] = randlc(&x, lcgA) - 0.5
		orig[i] = d[i]
	}
	cp := make([]float64, n)
	thomas(d, cp)
	b := 1 + 2*spLambda
	for i := 0; i < n; i++ {
		ax := b * d[i]
		if i > 0 {
			ax += -spLambda * d[i-1]
		}
		if i < n-1 {
			ax += -spLambda * d[i+1]
		}
		if math.Abs(ax-orig[i]) > 1e-12 {
			t.Fatalf("residual at %d: %v", i, ax-orig[i])
		}
	}
}
