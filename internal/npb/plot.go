package npb

import (
	"fmt"
	"sort"
	"strings"
)

// Plot renders the panel as an ASCII speedup-vs-threads chart — the
// visual form of the paper's Figure 4: the ideal-speedup diagonal, the
// native curve and the MCA curve (which should lie on top of each other).
//
// Markers: '.' ideal, 'N' native, 'M' mca, '*' both layers on one cell.
func (s *Figure4Series) Plot() string {
	const rows = 16
	points := make(map[string]map[int]float64) // layer -> threads -> speedup
	threadSet := map[int]bool{}
	maxSpeedup := 1.0
	maxThreads := 1
	for _, p := range s.Points {
		if points[p.Layer] == nil {
			points[p.Layer] = make(map[int]float64)
		}
		points[p.Layer][p.Threads] = p.Speedup
		threadSet[p.Threads] = true
		if p.Speedup > maxSpeedup {
			maxSpeedup = p.Speedup
		}
		if p.Threads > maxThreads {
			maxThreads = p.Threads
		}
	}
	if float64(maxThreads) > maxSpeedup {
		maxSpeedup = float64(maxThreads) // leave room for the ideal diagonal
	}
	threads := make([]int, 0, len(threadSet))
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	// Column layout: one column per measured thread count, spaced evenly.
	colOf := make(map[int]int, len(threads))
	const colWidth = 4
	for i, t := range threads {
		colOf[t] = i * colWidth
	}
	width := (len(threads)-1)*colWidth + 1
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(speedup float64) int {
		r := rows - 1 - int(speedup/maxSpeedup*float64(rows-1)+0.5)
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return r
	}
	set := func(t int, speedup float64, mark byte) {
		r, c := rowOf(speedup), colOf[t]
		switch {
		case grid[r][c] == ' ' || grid[r][c] == '.': // empty or ideal dot
			grid[r][c] = mark
		case grid[r][c] != mark:
			grid[r][c] = '*'
		}
	}
	for _, t := range threads {
		// Ideal diagonal first, so measurements overwrite it.
		r, c := rowOf(float64(t)), colOf[t]
		if grid[r][c] == ' ' {
			grid[r][c] = '.'
		}
	}
	for _, t := range threads {
		if v, ok := points["native"][t]; ok {
			set(t, v, 'N')
		}
	}
	for _, t := range threads {
		if v, ok := points["mca"][t]; ok {
			set(t, v, 'M')
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s class %s speedup ('.' ideal, N native, M mca, '*' both)\n", s.Kernel, s.Class)
	for r := 0; r < rows; r++ {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%5.1f", maxSpeedup)
		case rows - 1:
			label = "  0.0"
		default:
			label = "     "
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	sb.WriteString("      +" + strings.Repeat("-", width) + "\n")
	axis := make([]byte, width+4) // room for the last label to overhang
	for i := range axis {
		axis[i] = ' '
	}
	for _, t := range threads {
		lbl := fmt.Sprintf("%d", t)
		c := colOf[t]
		for j := 0; j < len(lbl) && c+j < len(axis); j++ {
			axis[c+j] = lbl[j]
		}
	}
	sb.WriteString("       " + string(axis) + "  threads\n")
	return sb.String()
}
