package npb

import (
	"fmt"
	"math"

	"openmpmca/internal/core"
	"openmpmca/internal/perfmodel"
)

// SP is the NPB scalar-pentadiagonal kernel reduced to its computational
// skeleton: ADI (alternating direction implicit) time steps on a 3-D
// grid, each step solving independent line systems along x, then y, then
// z — the (I − λLx)(I − λLy)(I − λLz)uⁿ⁺¹ = uⁿ factorization of implicit
// diffusion, with a Thomas solve per grid line. Unlike LU's wavefront,
// every line of one direction is independent, so the parallel pattern is
// FT-like pencil worksharing with a barrier only between direction
// sweeps.
//
// Grid sizes follow NPB exactly: S = 12³, W = 36³, A = 64³. Verification
// uses the ADI scheme's unconditional stability (the solution's max-norm
// decays monotonically under diffusion with zero boundaries) plus
// bit-exact determinism across team sizes (lines are independent).
type SP struct {
	class Class
	n     int
	iters int

	u       []float64 // solution grid, n³
	scratch [][]float64
}

// spLambda is the diffusion number λ = αΔt/h² of the implicit scheme.
const spLambda = 0.8

// NewSP builds the SP kernel.
func NewSP(class Class) (*SP, error) {
	var k *SP
	switch class {
	case ClassS:
		k = &SP{class: class, n: 12, iters: 20}
	case ClassW:
		k = &SP{class: class, n: 36, iters: 20}
	case ClassA:
		k = &SP{class: class, n: 64, iters: 20}
	default:
		return nil, fmt.Errorf("npb: SP has no class %q", class)
	}
	k.u = make([]float64, k.n*k.n*k.n)
	return k, nil
}

// Name implements Kernel.
func (k *SP) Name() string { return "SP" }

// Class implements Kernel.
func (k *SP) Class() Class { return k.class }

// Profile implements Kernel. As with LU, the executed skeleton is the
// scalar Thomas solve while CyclesPerUnit models the real kernel's
// pentadiagonal arithmetic per point-direction (~45 cycles); memory
// behaviour sits between FT (strided pencils) and MG (whole-grid sweeps).
func (k *SP) Profile() perfmodel.KernelProfile {
	return perfmodel.KernelProfile{
		Name:            "SP",
		CyclesPerUnit:   45,
		SMTYield:        0.45,
		MemoryIntensity: 0.65,
	}
}

func (k *SP) seed() {
	x := uint64(314159265)
	for i := range k.u {
		k.u[i] = randlc(&x, lcgA) - 0.5
	}
}

// maxNorm computes ‖u‖∞ via the team reduction.
func (k *SP) maxNorm(c *core.Context) float64 {
	n := k.n
	return core.Reduce(c, n, 0.0,
		func(a, b float64) float64 { return math.Max(a, b) },
		func(lo, hi int) float64 {
			m := 0.0
			for idx := lo * n * n; idx < hi*n*n; idx++ {
				if v := math.Abs(k.u[idx]); v > m {
					m = v
				}
			}
			c.Charge(float64((hi-lo)*n*n) / 45.0)
			return m
		})
}

// lineScratch returns this thread's Thomas-solver buffers.
func (k *SP) lineScratch(c *core.Context) ([]float64, []float64) {
	tid := c.ThreadNum()
	if k.scratch[tid] == nil {
		k.scratch[tid] = make([]float64, 2*k.n)
	}
	buf := k.scratch[tid]
	return buf[:k.n], buf[k.n:]
}

// thomas solves (I − λL) x = d in place for the 1-D Laplacian L with zero
// Dirichlet boundaries: tridiagonal (−λ, 1+2λ, −λ). cp is scratch for the
// modified upper-diagonal coefficients.
func thomas(d, cp []float64) {
	n := len(d)
	const a = -spLambda
	b := 1 + 2*spLambda
	cp[0] = a / b
	d[0] = d[0] / b
	for i := 1; i < n; i++ {
		m := 1 / (b - a*cp[i-1])
		cp[i] = a * m
		d[i] = (d[i] - a*d[i-1]) * m
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= cp[i] * d[i+1]
	}
}

// Run implements Kernel.
func (k *SP) Run(rt *core.Runtime) (Result, error) {
	k.seed()
	k.scratch = make([][]float64, rt.NumThreads())
	n := k.n
	norms := make([]float64, 0, k.iters+1)

	err := rt.Parallel(func(c *core.Context) {
		n0 := k.maxNorm(c)
		c.Master(func() { norms = append(norms, n0) })
		c.Barrier()

		for it := 0; it < k.iters; it++ {
			k.sweepX(c)
			k.sweepY(c)
			k.sweepZ(c)
			nm := k.maxNorm(c)
			c.Master(func() { norms = append(norms, nm) })
			c.Barrier()
		}
	})
	if err != nil {
		return Result{}, err
	}

	// Verification: the implicit scheme is unconditionally stable and
	// dissipative — the max-norm must decrease strictly every step — and
	// values must stay finite.
	verified := true
	for i := 1; i < len(norms); i++ {
		if !(norms[i] < norms[i-1]) || math.IsNaN(norms[i]) {
			verified = false
			break
		}
	}
	checksum := 0.0
	for _, v := range k.u {
		checksum += v
	}
	pts := float64(n * n * n)
	return Result{
		Kernel:    "SP",
		Class:     k.class,
		Verified:  verified && len(norms) == k.iters+1,
		Checksum:  checksum,
		Detail:    fmt.Sprintf("‖u₀‖∞=%.6f ‖u‖∞=%.6f decay=%.3e", norms[0], norms[len(norms)-1], norms[len(norms)-1]/norms[0]),
		WorkUnits: pts * float64(3*k.iters),
	}, nil
}

// sweepX solves the n² lines running along x (stride n²).
func (k *SP) sweepX(c *core.Context) {
	n := k.n
	line, cp := k.lineScratch(c)
	c.ForRange(n*n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			j, l := p/n, p%n
			base := j*n + l
			for i := 0; i < n; i++ {
				line[i] = k.u[base+i*n*n]
			}
			thomas(line, cp)
			for i := 0; i < n; i++ {
				k.u[base+i*n*n] = line[i]
			}
		}
		c.Charge(float64((hi - lo) * n))
	})
}

// sweepY solves the lines along y (stride n).
func (k *SP) sweepY(c *core.Context) {
	n := k.n
	line, cp := k.lineScratch(c)
	c.ForRange(n*n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i, l := p/n, p%n
			base := i*n*n + l
			for j := 0; j < n; j++ {
				line[j] = k.u[base+j*n]
			}
			thomas(line, cp)
			for j := 0; j < n; j++ {
				k.u[base+j*n] = line[j]
			}
		}
		c.Charge(float64((hi - lo) * n))
	})
}

// sweepZ solves the contiguous lines along z.
func (k *SP) sweepZ(c *core.Context) {
	n := k.n
	_, cp := k.lineScratch(c)
	c.ForRange(n*n, core.LoopOpts{Schedule: core.ScheduleStatic}, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			base := p * n
			thomas(k.u[base:base+n], cp)
		}
		c.Charge(float64((hi - lo) * n))
	})
}
