package oerrors

import "sync"

// Counters aggregates classified-error occurrences by category and by
// code. The zero value is not usable; create one with NewCounters. The
// package-level Default set is fed automatically by New/Wrap/Errorf and
// by explicit Record calls at subsystem boundaries, and is what the
// stats surfaces snapshot.
type Counters struct {
	mu     sync.Mutex
	total  uint64
	byCat  map[Category]uint64
	byCode map[string]uint64
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters {
	return &Counters{
		byCat:  make(map[Category]uint64),
		byCode: make(map[string]uint64),
	}
}

// Default is the process-wide counter set every constructor records
// into. Counters are monotonic, so concurrent subsystems sharing it is
// the intended production shape (one process, one error surface).
var Default = NewCounters()

func (c *Counters) record(cat Category, code string) {
	c.mu.Lock()
	c.total++
	c.byCat[cat]++
	c.byCode[code]++
	c.mu.Unlock()
}

// Record classifies err and counts one occurrence — for errors observed
// at a boundary (an HTTP settlement, a chaos verdict) rather than
// constructed here. Unclassified and nil errors count under
// Internal/CodeInternal and nothing, respectively.
func (c *Counters) Record(err error) {
	if err == nil {
		return
	}
	cat, ok := CategoryOf(err)
	if !ok {
		cat = Internal
	}
	code, ok := CodeOf(err)
	if !ok {
		code = CodeInternal
	}
	c.record(cat, code)
}

// Record counts err in the Default set.
func Record(err error) { Default.Record(err) }

// CountsSnapshot is a point-in-time copy of a counter set, JSON-shaped
// for the unified Snapshot ("errors" section), /v1/stats and
// /v1/health.
type CountsSnapshot struct {
	Total      uint64            `json:"total"`
	ByCategory map[string]uint64 `json:"by_category,omitempty"`
	ByCode     map[string]uint64 `json:"by_code,omitempty"`
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountsSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CountsSnapshot{Total: c.total}
	if len(c.byCat) > 0 {
		s.ByCategory = make(map[string]uint64, len(c.byCat))
		for k, v := range c.byCat {
			s.ByCategory[string(k)] = v
		}
	}
	if len(c.byCode) > 0 {
		s.ByCode = make(map[string]uint64, len(c.byCode))
		for k, v := range c.byCode {
			s.ByCode[k] = v
		}
	}
	return s
}

// Counts snapshots the Default set.
func Counts() CountsSnapshot { return Default.Snapshot() }

// Delta returns the per-code growth from an earlier snapshot to this
// one — what a bounded experiment (one chaos campaign, one load phase)
// contributed. Codes that did not grow are omitted.
func (s CountsSnapshot) Delta(earlier CountsSnapshot) CountsSnapshot {
	d := CountsSnapshot{Total: s.Total - earlier.Total}
	for code, v := range s.ByCode {
		if g := v - earlier.ByCode[code]; g > 0 {
			if d.ByCode == nil {
				d.ByCode = make(map[string]uint64)
			}
			d.ByCode[code] = g
		}
	}
	for cat, v := range s.ByCategory {
		if g := v - earlier.ByCategory[cat]; g > 0 {
			if d.ByCategory == nil {
				d.ByCategory = make(map[string]uint64)
			}
			d.ByCategory[cat] = g
		}
	}
	return d
}
