// Package oerrors is the runtime's error taxonomy: every error the
// public surface returns carries a category (the failure plane it
// belongs to) and a stable string code (the exact failure, safe to key
// dashboards and alerts on). The taxonomy exists so a production
// operator can answer "what is failing, and where" from counters alone
// — the pattern GWD's internal/errors + internal/timesync pair
// established — without parsing message strings that are free to
// change.
//
// The pre-existing sentinel errors (core.ErrClosed, core.ErrSaturated,
// core.ErrCanceled, core.ErrInvalidOption, offload.ErrDomainLost, ...)
// are rebuilt on top of this package with Sentinel, so errors.Is
// identity checks written against them keep working unchanged while
// CategoryOf/CodeOf now classify the same values. Errors constructed
// with Wrap/Errorf are additionally recorded in the package's default
// counter set, which the unified openmpmca.Snapshot and the job
// service's /v1/stats and /v1/health surfaces expose.
package oerrors

import (
	"errors"
	"fmt"
	"time"
)

// Category is the failure plane an error belongs to.
type Category string

// The taxonomy's categories. Every classified error carries exactly
// one.
const (
	// Transport covers the messaging layer: dropped or timed-out
	// frames, full queues, wire-codec trouble.
	Transport Category = "transport"
	// Domain covers worker-domain lifecycle: heartbeat loss, domain
	// death, recovery and re-admission.
	Domain Category = "domain"
	// Admission covers the front door: saturation, quota, validation
	// of options and requests.
	Admission Category = "admission"
	// Cancel covers deliberate teardown: canceled regions and tasks,
	// closed runtimes, fabrics and services.
	Cancel Category = "cancel"
	// Internal covers everything that should not happen: logic errors,
	// unknown jobs, failed kernels.
	Internal Category = "internal"
)

// Categories lists every category in stable order, for surfaces that
// want zero-filled rows.
func Categories() []Category {
	return []Category{Transport, Domain, Admission, Cancel, Internal}
}

// Stable error codes. These are API: they appear in /v1/stats,
// /v1/health and chaos reports, and must not be renamed casually.
const (
	CodeDomainLost    = "domain_lost"      // worker domain declared dead (Domain)
	CodeRuntimeClosed = "runtime_closed"   // core runtime closed (Cancel)
	CodeOffloadClosed = "offload_closed"   // offloader closed (Cancel)
	CodeFabricClosed  = "fabric_closed"    // task fabric closed (Cancel)
	CodeServiceClosed = "service_closed"   // job service closed (Cancel)
	CodeSaturated     = "saturated"        // admission queue full (Admission)
	CodeQuota         = "quota"            // tenant over in-flight quota (Admission)
	CodeInvalidOption = "invalid_option"   // option constructor refused (Admission)
	CodeCanceled      = "canceled"         // parallel region canceled (Cancel)
	CodeTaskCanceled  = "task_canceled"    // task canceled via its group (Cancel)
	CodeTimeout       = "timeout"          // bounded wait expired (Transport)
	CodeGroupDrained  = "group_drained"    // WaitAny on an empty group (Internal)
	CodeUnknownJob    = "unknown_job"      // job/kernel name not registered (Internal)
	CodeJobFailed     = "job_failed"       // job or kernel body returned an error (Internal)
	CodeFrameFault    = "frame_fault"      // injected or detected frame damage (Transport)
	CodeReadmit       = "readmit_conflict" // readmit of a live or contended domain (Domain)
	CodeInternal      = "internal"         // unclassified internal error (Internal)

	// Durable-store codes (internal/durable, the job service's
	// write-ahead journal + snapshot replay).
	CodeJournalCorrupt = "journal_corrupt" // journal record failed its CRC or framing (Internal)
	CodeSnapshotTorn   = "snapshot_torn"   // snapshot file failed its CRC or framing (Internal)
	CodeStoreClosed    = "store_closed"    // durable store closed (Cancel)
	CodeStoreIO        = "store_io"        // state-dir I/O failure: open, append, fsync, rename (Internal)
	CodeRateLimited    = "rate_limited"    // tenant over its token-bucket rate (Admission)
	CodeTenantGone     = "tenant_gone"     // replayed job's tenant no longer configured (Admission)
)

// E is one classified error: a category, a stable code, a message and
// an optional wrapped cause. It is the errors.As target for
// classification; use CategoryOf/CodeOf for the common queries.
type E struct {
	Cat  Category
	Code string
	msg  string
	err  error
}

// Error implements error.
func (e *E) Error() string {
	if e.err != nil && e.msg == "" {
		return e.err.Error()
	}
	return e.msg
}

// Unwrap exposes the wrapped cause, keeping errors.Is chains intact.
func (e *E) Unwrap() error { return e.err }

// Sentinel builds a classified sentinel error — a stable value meant to
// be compared by identity with errors.Is, exactly like errors.New, but
// carrying a category and code. Sentinels are constructed once at init
// and are NOT recorded in the counters; the wraps built around them
// are.
func Sentinel(cat Category, code, msg string) error {
	return &E{Cat: cat, Code: code, msg: msg}
}

// New builds and records a classified leaf error.
func New(cat Category, code, msg string) error {
	e := &E{Cat: cat, Code: code, msg: msg}
	Default.record(cat, code)
	return e
}

// Wrap classifies an existing error, recording one occurrence. The
// wrapped chain stays visible to errors.Is/errors.As. Wrapping nil
// returns nil.
func Wrap(cat Category, code string, err error) error {
	if err == nil {
		return nil
	}
	e := &E{Cat: cat, Code: code, err: err}
	Default.record(cat, code)
	return e
}

// Errorf is fmt.Errorf with classification and recording: %w operands
// stay unwrappable underneath the returned *E.
func Errorf(cat Category, code string, format string, args ...any) error {
	inner := fmt.Errorf(format, args...)
	e := &E{Cat: cat, Code: code, msg: inner.Error(), err: errors.Unwrap(inner)}
	if e.err == nil {
		// Multiple %w operands: keep the full join via the fmt error.
		if _, ok := inner.(interface{ Unwrap() []error }); ok {
			e.err = inner
		}
	}
	Default.record(cat, code)
	return e
}

// DomainLost is the one constructor both offload and taskfabric build
// heartbeat-loss errors with, so the two subsystems surface the same
// shape: subsystem, domain id and name, the silence (time since the
// last pong) that triggered the loss verdict, and a per-subsystem
// detail. The returned error matches the passed sentinel under
// errors.Is and classifies as Domain/CodeDomainLost.
func DomainLost(sentinel error, subsystem string, domainID int, domainName string, silence time.Duration, detail string) error {
	return Errorf(Domain, CodeDomainLost,
		"%s: domain %d (%s) lost after %v without a pong: %s: %w",
		subsystem, domainID, domainName, silence.Round(time.Millisecond), detail, sentinel)
}

// CategoryOf reports the category of the outermost classified error in
// err's chain, or false when the chain carries no classification.
func CategoryOf(err error) (Category, bool) {
	var e *E
	if errors.As(err, &e) {
		return e.Cat, true
	}
	return "", false
}

// CodeOf reports the stable code of the outermost classified error in
// err's chain, or false when the chain carries no classification.
func CodeOf(err error) (string, bool) {
	var e *E
	if errors.As(err, &e) {
		return e.Code, true
	}
	return "", false
}
