package oerrors

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestSentinelIdentityAndMessage(t *testing.T) {
	s := Sentinel(Domain, CodeDomainLost, "x: domain lost")
	if s.Error() != "x: domain lost" {
		t.Errorf("message = %q", s.Error())
	}
	if !errors.Is(s, s) {
		t.Error("sentinel does not match itself")
	}
	if cat, ok := CategoryOf(s); !ok || cat != Domain {
		t.Errorf("CategoryOf = %v/%v", cat, ok)
	}
	if code, ok := CodeOf(s); !ok || code != CodeDomainLost {
		t.Errorf("CodeOf = %v/%v", code, ok)
	}
}

func TestSentinelsAreNotCounted(t *testing.T) {
	c := NewCounters()
	old := Default
	Default = c
	defer func() { Default = old }()

	_ = Sentinel(Cancel, CodeCanceled, "s")
	if got := c.Snapshot().Total; got != 0 {
		t.Errorf("Sentinel recorded %d occurrences, want 0 (sentinels are definitions, not events)", got)
	}
	_ = New(Admission, CodeQuota, "over quota")
	_ = Wrap(Transport, CodeTimeout, errors.New("deadline"))
	_ = Errorf(Internal, CodeInternal, "boom %d", 7)
	snap := c.Snapshot()
	if snap.Total != 3 {
		t.Errorf("total = %d, want 3", snap.Total)
	}
	if snap.ByCategory[string(Admission)] != 1 || snap.ByCode[CodeQuota] != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestWrapNilIsNil(t *testing.T) {
	if Wrap(Internal, CodeInternal, nil) != nil {
		t.Error("Wrap(nil) != nil")
	}
}

func TestErrorfPreservesWrappedSentinel(t *testing.T) {
	sent := Sentinel(Cancel, CodeFabricClosed, "fabric closed")
	err := Errorf(Domain, CodeDomainLost, "group %d: %w", 3, sent)
	if !errors.Is(err, sent) {
		t.Error("errors.Is lost the %w operand")
	}
	// The outermost classification wins.
	if code, _ := CodeOf(err); code != CodeDomainLost {
		t.Errorf("CodeOf = %q, want outermost %q", code, CodeDomainLost)
	}
	var e *E
	if !errors.As(err, &e) || e.Code != CodeDomainLost {
		t.Errorf("errors.As = %+v", e)
	}
}

func TestDomainLostMessageShape(t *testing.T) {
	sent := Sentinel(Domain, CodeDomainLost, "offload: domain lost")
	err := DomainLost(sent, "offload", 2, "worker-2", 40_000_000, "chunks re-executed elsewhere")
	want := "offload: domain 2 (worker-2) lost after 40ms without a pong: chunks re-executed elsewhere: offload: domain lost"
	if err.Error() != want {
		t.Errorf("message:\n got %q\nwant %q", err.Error(), want)
	}
	if !errors.Is(err, sent) {
		t.Error("DomainLost does not unwrap to its sentinel")
	}
	if code, _ := CodeOf(err); code != CodeDomainLost {
		t.Errorf("code = %q", code)
	}
}

func TestRecordClassifiesUnknownAsInternal(t *testing.T) {
	c := NewCounters()
	c.Record(errors.New("mystery"))
	c.Record(nil) // no-op
	snap := c.Snapshot()
	if snap.Total != 1 || snap.ByCode[CodeInternal] != 1 {
		t.Errorf("snapshot = %+v, want one internal", snap)
	}
}

func TestDeltaReportsGrowthOnly(t *testing.T) {
	c := NewCounters()
	old := Default
	Default = c
	defer func() { Default = old }()

	_ = New(Transport, CodeTimeout, "a")
	before := c.Snapshot()
	_ = New(Transport, CodeTimeout, "b")
	_ = New(Admission, CodeQuota, "c")
	d := c.Snapshot().Delta(before)
	if d.Total != 2 {
		t.Errorf("delta total = %d, want 2", d.Total)
	}
	if d.ByCode[CodeTimeout] != 1 || d.ByCode[CodeQuota] != 1 {
		t.Errorf("delta = %+v", d)
	}
	if _, ok := d.ByCode[CodeDomainLost]; ok {
		t.Error("zero-growth code present in delta")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.record(Transport, CodeFrameFault)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().ByCode[CodeFrameFault]; got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

func TestCategoriesStable(t *testing.T) {
	want := []Category{Transport, Domain, Admission, Cancel, Internal}
	got := Categories()
	if len(got) != len(want) {
		t.Fatalf("Categories() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Categories()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWrapThroughFmtChain(t *testing.T) {
	inner := New(Cancel, CodeCanceled, "canceled")
	outer := fmt.Errorf("layer2: %w", fmt.Errorf("layer1: %w", inner))
	if cat, ok := CategoryOf(outer); !ok || cat != Cancel {
		t.Errorf("CategoryOf through fmt chain = %v/%v", cat, ok)
	}
}
