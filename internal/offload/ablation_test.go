package offload

import (
	"fmt"
	"testing"
	"time"
)

// TestAblationModes runs a full offload region under every combination
// of the two hot-path knobs — frame batching and codec pooling — and
// demands identical results. The knobs exist so benchmarks can measure
// each optimization's contribution; correctness must not depend on them.
func TestAblationModes(t *testing.T) {
	for _, batch := range []bool{true, false} {
		for _, pooled := range []bool{true, false} {
			t.Run(fmt.Sprintf("batch=%v/pooled=%v", batch, pooled), func(t *testing.T) {
				prev := CodecPooling()
				SetCodecPooling(pooled)
				defer SetCodecPooling(prev)

				reg := NewRegistry()
				if err := reg.Register(sumKernel("sum", 0)); err != nil {
					t.Fatal(err)
				}
				o, err := New(reg,
					WithDomains(3),
					WithHeartbeat(10*time.Millisecond),
					WithBatching(batch),
				)
				if err != nil {
					t.Fatal(err)
				}
				defer o.Close()

				const n = 20000
				got, err := o.ParallelFor("sum", n, nil)
				if err != nil {
					t.Fatalf("ParallelFor: %v", err)
				}
				if want := seqSum(n); decodeSum(t, got) != want {
					t.Errorf("sum = %d, want %d", decodeSum(t, got), want)
				}
				if st := o.Stats(); st.RemoteChunks == 0 {
					t.Error("no chunks ran remotely")
				}
			})
		}
	}
}
