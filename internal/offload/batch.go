package offload

import (
	"encoding/binary"
	"fmt"
)

// Frame batching. The offload scheduler and the task fabric used to pay
// one MCAPI packet send per frame; a flush that has several frames bound
// for the same domain now coalesces them into one batch packet — one
// queue operation, one wakeup, one receive on the far side — and the
// receiver unwraps the envelope. Batches never nest.
//
//	batch: kind | count u16 | (frameLen u32 | frame)*
//
// KindBatch extends the shared kind space (chunk offloader kinds 1..5,
// task fabric kinds 6..12), so any receiver draining a mixed channel can
// classify a batch by its first byte like every other frame.

// KindBatch is the batch envelope's kind byte.
const KindBatch = msgKind(13)

// batchHeader is the fixed prefix: kind byte plus the frame count.
const batchHeader = 1 + 2

// maxBatchFrames bounds one envelope; a flush larger than this splits
// into several batches.
const maxBatchFrames = 1 << 10

// IsBatch reports whether a packet is a batch envelope.
func IsBatch(pkt []byte) bool {
	return len(pkt) > 0 && msgKind(pkt[0]) == KindBatch
}

// EncodeBatch wraps the given frames into one batch packet. The frames
// are copied into the envelope, so callers may recycle them immediately.
// One lone frame still gets an envelope — senders that want the
// passthrough use a Batcher, which sends a single frame unwrapped.
func EncodeBatch(frames ...[]byte) []byte {
	size := batchHeader
	for _, f := range frames {
		size += 4 + len(f)
	}
	buf := frameBuf(size)
	buf = append(buf, byte(KindBatch))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(frames)))
	for _, f := range frames {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	return buf
}

// DecodeBatch splits a batch envelope into its frames. The returned
// slices alias pkt: the receiver owns a delivered packet exclusively, so
// no copy is needed, but pkt must not be recycled while any frame is
// retained.
func DecodeBatch(pkt []byte) ([][]byte, error) {
	if len(pkt) < batchHeader || msgKind(pkt[0]) != KindBatch {
		return nil, fmt.Errorf("offload: malformed batch (%d bytes)", len(pkt))
	}
	count := int(binary.LittleEndian.Uint16(pkt[1:]))
	if count > maxBatchFrames {
		return nil, fmt.Errorf("offload: batch count %d exceeds limit", count)
	}
	p := pkt[batchHeader:]
	frames := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("offload: batch truncated at frame %d header", i)
		}
		flen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if len(p) < flen {
			return nil, fmt.Errorf("offload: batch truncated at frame %d body", i)
		}
		if flen > 0 && msgKind(p[0]) == KindBatch {
			return nil, fmt.Errorf("offload: nested batch at frame %d", i)
		}
		frames = append(frames, p[:flen])
		p = p[flen:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("offload: batch has %d trailing bytes", len(p))
	}
	return frames, nil
}

// Batcher accumulates frames bound for one destination and flushes them
// as a single packet — the lone-frame case skips the envelope entirely,
// so a Batcher in front of an unbatched protocol is wire-identical.
// Added frames are owned by the Batcher and recycled on Flush/Reset.
type Batcher struct {
	frames [][]byte
}

// Add appends one encoded frame; the Batcher takes ownership.
func (b *Batcher) Add(frame []byte) { b.frames = append(b.frames, frame) }

// Len reports the frames accumulated since the last flush.
func (b *Batcher) Len() int { return len(b.frames) }

// Flush sends the accumulated frames through send as one packet (a lone
// frame goes unwrapped; an empty Batcher is a no-op) and recycles them.
// The error is send's.
func (b *Batcher) Flush(send func(pkt []byte) error) error {
	var err error
	switch len(b.frames) {
	case 0:
		return nil
	case 1:
		err = send(b.frames[0])
	default:
		for start := 0; start < len(b.frames) && err == nil; start += maxBatchFrames {
			end := start + maxBatchFrames
			if end > len(b.frames) {
				end = len(b.frames)
			}
			pkt := EncodeBatch(b.frames[start:end]...)
			err = send(pkt)
			RecycleFrame(pkt)
		}
	}
	b.Reset()
	return err
}

// Reset drops (and recycles) accumulated frames without sending.
func (b *Batcher) Reset() {
	for _, f := range b.frames {
		RecycleFrame(f)
	}
	b.frames = b.frames[:0]
}
