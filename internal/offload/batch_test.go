package offload

import (
	"bytes"
	"fmt"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	frames := [][]byte{
		encodeChunk(chunkMsg{Region: 1, Chunk: 2, Lo: 0, Hi: 8, Kernel: "k", Arg: []byte("arg")}),
		encodeResult(resultMsg{Region: 1, Chunk: 2, Payload: []byte("payload")}),
		encodeHB(kindPing, hbMsg{Domain: 3, Seq: 9}),
	}
	pkt := EncodeBatch(frames...)
	if !IsBatch(pkt) {
		t.Fatalf("IsBatch = false for a batch packet")
	}
	got, err := DecodeBatch(pkt)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch: %x != %x", i, got[i], frames[i])
		}
	}
}

func TestBatchRejectsMalformed(t *testing.T) {
	inner := encodeHB(kindPing, hbMsg{Domain: 1, Seq: 1})
	nested := EncodeBatch(EncodeBatch(inner))
	if _, err := DecodeBatch(nested); err == nil {
		t.Fatalf("nested batch accepted")
	}
	ok := EncodeBatch(inner, inner)
	if _, err := DecodeBatch(ok[:len(ok)-2]); err == nil {
		t.Fatalf("truncated batch accepted")
	}
	if _, err := DecodeBatch(append(append([]byte(nil), ok...), 0xFF)); err == nil {
		t.Fatalf("batch with trailing bytes accepted")
	}
	if _, err := DecodeBatch([]byte{byte(kindChunk), 0, 0}); err == nil {
		t.Fatalf("non-batch kind accepted")
	}
}

func TestBatcherLoneFramePassthrough(t *testing.T) {
	var b Batcher
	frame := encodeHB(kindPong, hbMsg{Domain: 2, Seq: 7})
	want := append([]byte(nil), frame...)
	b.Add(frame)
	var sent [][]byte
	if err := b.Flush(func(pkt []byte) error {
		sent = append(sent, append([]byte(nil), pkt...))
		return nil
	}); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if len(sent) != 1 {
		t.Fatalf("lone frame sent as %d packets", len(sent))
	}
	if IsBatch(sent[0]) {
		t.Fatalf("lone frame was wrapped in a batch envelope")
	}
	if !bytes.Equal(sent[0], want) {
		t.Fatalf("lone frame altered on the wire")
	}
	if b.Len() != 0 {
		t.Fatalf("Batcher not reset after Flush")
	}
}

func TestBatcherCoalescesAndSplits(t *testing.T) {
	var b Batcher
	total := maxBatchFrames + 5
	for i := 0; i < total; i++ {
		b.Add(encodeHB(kindPing, hbMsg{Domain: 1, Seq: uint64(i)}))
	}
	var packets [][]byte
	if err := b.Flush(func(pkt []byte) error {
		packets = append(packets, append([]byte(nil), pkt...))
		return nil
	}); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if len(packets) != 2 {
		t.Fatalf("flushed %d packets, want 2 (split at %d frames)", len(packets), maxBatchFrames)
	}
	seen := 0
	for _, pkt := range packets {
		frames, err := DecodeBatch(pkt)
		if err != nil {
			t.Fatalf("DecodeBatch: %v", err)
		}
		for _, f := range frames {
			m, derr := decodeHB(kindPing, f)
			if derr != nil {
				t.Fatalf("decodeHB: %v", derr)
			}
			if m.Seq != uint64(seen) {
				t.Fatalf("frame order broken: seq %d at position %d", m.Seq, seen)
			}
			seen++
		}
	}
	if seen != total {
		t.Fatalf("round-tripped %d frames, want %d", seen, total)
	}
}

func TestBatcherFlushErrorDropsFrames(t *testing.T) {
	var b Batcher
	b.Add(encodeHB(kindPing, hbMsg{Seq: 1}))
	b.Add(encodeHB(kindPing, hbMsg{Seq: 2}))
	sendErr := fmt.Errorf("queue full")
	if err := b.Flush(func([]byte) error { return sendErr }); err != sendErr {
		t.Fatalf("Flush err = %v, want the send error", err)
	}
	if b.Len() != 0 {
		t.Fatalf("failed Flush retained %d frames", b.Len())
	}
}

// TestCodecPoolingModes round-trips the chunk codec with pooling on and
// off, recycling between encodes, to show the ablation knob changes
// allocation behavior but never bytes.
func TestCodecPoolingModes(t *testing.T) {
	for _, pooled := range []bool{true, false} {
		t.Run(fmt.Sprintf("pooled=%v", pooled), func(t *testing.T) {
			prev := CodecPooling()
			SetCodecPooling(pooled)
			defer SetCodecPooling(prev)
			for i := 0; i < 100; i++ {
				m := chunkMsg{Region: uint64(i), Chunk: uint32(i), Lo: 0, Hi: int64(i),
					Kernel: "kern", Arg: []byte{byte(i), byte(i + 1)}}
				pkt := encodeChunk(m)
				got, err := decodeChunk(pkt)
				if err != nil {
					t.Fatalf("decodeChunk: %v", err)
				}
				if got.Region != m.Region || got.Chunk != m.Chunk || !bytes.Equal(got.Arg, m.Arg) {
					t.Fatalf("round-trip mismatch at %d: %+v != %+v", i, got, m)
				}
				RecycleFrame(pkt)
			}
		})
	}
}

// TestSharedDecodeAliases pins the zero-copy contract: the shared decode
// 's payload aliases the packet, the copying decode's does not.
func TestSharedDecodeAliases(t *testing.T) {
	pkt := encodeResult(resultMsg{Region: 1, Chunk: 2, Payload: []byte("abcdef")})
	shared, err := decodeResultShared(pkt)
	if err != nil {
		t.Fatalf("decodeResultShared: %v", err)
	}
	copied, err := decodeResult(pkt)
	if err != nil {
		t.Fatalf("decodeResult: %v", err)
	}
	pkt[len(pkt)-1] ^= 0xFF // mutate the packet's last payload byte
	if shared.Payload[len(shared.Payload)-1] == copied.Payload[len(copied.Payload)-1] {
		t.Fatalf("shared decode does not alias the packet (or copying decode does)")
	}
}
