package offload

import (
	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/perfmodel"
)

// nominalUnits sizes the perfmodel probe region used to weight the host
// against each worker domain; only the ratios matter. The adaptive
// weights (ServiceEWMA, ns per iteration) are normalized to the same
// span so a primed observation is directly comparable to the static
// estimate it replaces.
const nominalUnits = 1e6

// cluster is everything buildCluster assembles: the partitioned board,
// one OpenMP runtime per partition, and the MCAPI fabric tying the host
// to each worker domain.
type cluster struct {
	net        *Net
	host       *core.Runtime
	hostNode   *mcapi.Node
	hostWeight float64                // static perfmodel estimate, 1/regionNs
	hostEwma   *perfmodel.ServiceEWMA // observed host ns per iteration
	domains    []*domain
	links      []*link
}

// buildCluster builds the fabric net and wraps each worker domain with
// the offloader's dispatcher state and scheduling weights.
func buildCluster(cfg *config, reg *Registry) (*cluster, error) {
	net, err := BuildNet(NetConfig{
		Domains:    cfg.domains,
		Board:      cfg.board,
		NamePrefix: "offload",
		CmdDepth:   cfg.inflight + 2,
		ResDepth:   cfg.inflight + 2,
	})
	if err != nil {
		return nil, err
	}
	c := &cluster{
		net:        net,
		host:       net.Host,
		hostNode:   net.HostNode,
		hostWeight: 1 / perfmodel.EstimateRegionNs(cfg.board, cfg.prof, net.HostCPUs, nominalUnits),
		hostEwma:   perfmodel.NewServiceEWMA(ewmaAlpha),
	}
	for _, nl := range net.Links {
		d := &domain{
			id:      nl.ID,
			name:    nl.Name,
			rt:      nl.RT,
			node:    nl.Node,
			reg:     reg,
			cmdRecv: nl.CmdRecv,
			resSend: nl.ResSend,
			hbEp:    nl.HBEp,
			hbHost:  nl.HBHost,
		}
		l := &link{
			d:      d,
			cpus:   nl.CPUs,
			cmd:    nl.CmdSend,
			res:    nl.ResRecv,
			hbTo:   nl.HBEp,
			hbFrom: nl.HBHost,
			weight: 1 / perfmodel.EstimateRegionNs(cfg.board, cfg.prof, nl.CPUs, nominalUnits),
			ewma:   perfmodel.NewServiceEWMA(ewmaAlpha),
			health: &HealthState{},
		}
		c.domains = append(c.domains, d)
		c.links = append(c.links, l)
	}
	return c, nil
}

// weightOf returns link li's current service rate: the EWMA of observed
// per-iteration service time once primed by real completions, the static
// perfmodel estimate until then.
func (c *cluster) weightOf(li int) float64 {
	if ns, ok := c.links[li].ewma.Value(); ok {
		return 1 / (ns * nominalUnits)
	}
	return c.links[li].weight
}

// hostRate mirrors weightOf for the host's local executor.
func (c *cluster) hostRate() float64 {
	if ns, ok := c.hostEwma.Value(); ok {
		return 1 / (ns * nominalUnits)
	}
	return c.hostWeight
}
