package offload

import (
	"fmt"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/perfmodel"
	"openmpmca/internal/platform"
)

// Well-known ports on each worker domain's MCAPI node. Host-side
// endpoints use PortAny; workers sit on fixed ports the way firmware
// images do.
const (
	portCmd mcapi.Port = 1 // host -> worker packet channel, chunk descriptors
	portRes mcapi.Port = 2 // worker -> host packet channel, results
	portHB  mcapi.Port = 3 // connectionless heartbeat pings
)

// hostDomainID is the host runtime's MCAPI domain; worker i lives in
// domain i (1-based).
const hostDomainID mcapi.DomainID = 0

// nominalUnits sizes the perfmodel probe region used to weight the host
// against each worker domain; only the ratios matter.
const nominalUnits = 1e6

// cluster is everything buildCluster assembles: the partitioned board,
// one OpenMP runtime per partition, and the MCAPI fabric tying the host
// to each worker domain.
type cluster struct {
	hv         *platform.Hypervisor
	comm       *mcapi.System
	host       *core.Runtime
	hostNode   *mcapi.Node
	hostWeight float64
	domains    []*domain
	links      []*link
}

// partitionCPUs splits the board's hardware threads into groups (group 0
// is the host). When the board has enough physical clusters each group
// gets a whole cluster — partitions then never share an L2 — otherwise
// the threads are split evenly and contiguously.
func partitionCPUs(b *platform.Board, groups int) ([][]int, error) {
	if groups < 2 {
		return nil, fmt.Errorf("offload: need at least one worker domain")
	}
	if b.Clusters() >= groups && b.CoresPerCluster > 1 {
		out := make([][]int, groups)
		for i := range out {
			cpus, err := b.ClusterCPUs(i)
			if err != nil {
				return nil, err
			}
			out[i] = cpus
		}
		return out, nil
	}
	hw := b.HWThreads()
	if hw < groups {
		return nil, fmt.Errorf("offload: board %s has %d hw threads, cannot host %d domains",
			b.Name, hw, groups-1)
	}
	out := make([][]int, groups)
	next := 0
	for i := range out {
		n := hw / groups
		if i < hw%groups {
			n++
		}
		for j := 0; j < n; j++ {
			out[i] = append(out[i], next)
			next++
		}
	}
	return out, nil
}

// buildCluster partitions the board under the embedded hypervisor, boots
// one MCA-backed OpenMP runtime per partition, and wires host<->worker
// MCAPI channels. On any error everything already built is torn down.
func buildCluster(cfg *config, reg *Registry) (*cluster, error) {
	b := cfg.board
	hv, err := platform.NewHypervisor(b)
	if err != nil {
		return nil, err
	}
	groups := cfg.domains + 1
	sets, err := partitionCPUs(b, groups)
	if err != nil {
		return nil, err
	}
	memMB := b.MemMB / groups

	var rts []*core.Runtime
	fail := func(err error) (*cluster, error) {
		for _, rt := range rts {
			_ = rt.Close()
		}
		return nil, err
	}

	names := make([]string, groups)
	for i := 0; i < groups; i++ {
		name, guest := "offload-host", platform.GuestLinux
		if i > 0 {
			name, guest = fmt.Sprintf("offload-dom%d", i), platform.GuestRTOS
		}
		names[i] = name
		if _, err := hv.CreatePartition(name, guest, sets[i], memMB); err != nil {
			return fail(err)
		}
		if err := hv.Start(name); err != nil {
			return fail(err)
		}
		sys, err := hv.PartitionSystem(name)
		if err != nil {
			return fail(err)
		}
		layer, err := core.NewMCALayer(sys)
		if err != nil {
			return fail(err)
		}
		rt, err := core.New(core.WithLayer(layer))
		if err != nil {
			return fail(err)
		}
		rts = append(rts, rt)
	}

	comm := mcapi.NewSystem()
	hostNode, err := comm.Initialize(hostDomainID, 0)
	if err != nil {
		return fail(err)
	}
	c := &cluster{
		hv:         hv,
		comm:       comm,
		host:       rts[0],
		hostNode:   hostNode,
		hostWeight: 1 / perfmodel.EstimateRegionNs(b, cfg.prof, len(sets[0]), nominalUnits),
	}

	chanAttrs := &mcapi.EndpointAttributes{QueueDepth: cfg.inflight + 2}
	for i := 1; i < groups; i++ {
		node, err := comm.Initialize(mcapi.DomainID(i), 0)
		if err != nil {
			return fail(err)
		}
		cmdEp, err := node.CreateEndpoint(portCmd, chanAttrs)
		if err != nil {
			return fail(err)
		}
		resEp, err := node.CreateEndpoint(portRes, nil)
		if err != nil {
			return fail(err)
		}
		hbEp, err := node.CreateEndpoint(portHB, &mcapi.EndpointAttributes{QueueDepth: 4})
		if err != nil {
			return fail(err)
		}
		cmdSrc, err := hostNode.CreateEndpoint(mcapi.PortAny, nil)
		if err != nil {
			return fail(err)
		}
		resDst, err := hostNode.CreateEndpoint(mcapi.PortAny, chanAttrs)
		if err != nil {
			return fail(err)
		}
		hbDst, err := hostNode.CreateEndpoint(mcapi.PortAny, &mcapi.EndpointAttributes{QueueDepth: 8})
		if err != nil {
			return fail(err)
		}
		if err := mcapi.PktConnect(cmdSrc, cmdEp); err != nil {
			return fail(err)
		}
		if err := mcapi.PktConnect(resEp, resDst); err != nil {
			return fail(err)
		}
		cmdSend, err := mcapi.PktOpenSend(cmdSrc)
		if err != nil {
			return fail(err)
		}
		cmdRecv, err := mcapi.PktOpenRecv(cmdEp)
		if err != nil {
			return fail(err)
		}
		resSend, err := mcapi.PktOpenSend(resEp)
		if err != nil {
			return fail(err)
		}
		resRecv, err := mcapi.PktOpenRecv(resDst)
		if err != nil {
			return fail(err)
		}
		d := &domain{
			id:      i,
			name:    names[i],
			rt:      rts[i],
			node:    node,
			reg:     reg,
			cmdRecv: cmdRecv,
			resSend: resSend,
			hbEp:    hbEp,
			hbHost:  hbDst,
		}
		l := &link{
			d:      d,
			cmd:    cmdSend,
			res:    resRecv,
			hbTo:   hbEp,
			hbFrom: hbDst,
			weight: 1 / perfmodel.EstimateRegionNs(b, cfg.prof, len(sets[i]), nominalUnits),
		}
		c.domains = append(c.domains, d)
		c.links = append(c.links, l)
	}
	return c, nil
}
