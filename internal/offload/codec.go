package offload

import (
	"encoding/binary"
	"fmt"
)

// Wire codec for the offload protocol. One encoded message per MCAPI
// packet (chunk descriptors and results over the per-domain packet
// channels) or connectionless message (heartbeats). All integers are
// little-endian; the first byte is the message kind:
//
//	chunk:    kind | region u64 | chunk u32 | attempt u32 | lo i64 |
//	          hi i64 | kernelLen u16 | kernel | argLen u32 | arg
//	result:   kind | region u64 | chunk u32 | attempt u32 | status u8 |
//	          payloadLen u32 | payload
//	ping/pong: kind | domain u32 | seq u64
//	shutdown: kind
//
// The codec is deliberately hand-rolled: the messages cross what the
// model treats as a hardware boundary (two hypervisor partitions sharing
// only the MCAPI fabric), so nothing Go-specific — no gob, no pointers —
// may appear on the wire.

type msgKind uint8

const (
	kindChunk msgKind = 1 + iota
	kindResult
	kindPing
	kindPong
	kindShutdown
)

// Result statuses.
const (
	statusOK uint8 = iota
	statusUnknownKernel
	statusKernelError
)

// chunkMsg describes one iteration range for a worker domain to execute.
type chunkMsg struct {
	Region  uint64
	Chunk   uint32
	Attempt uint32
	Lo, Hi  int64
	Kernel  string
	Arg     []byte
}

// resultMsg carries one chunk's outcome back to the host.
type resultMsg struct {
	Region  uint64
	Chunk   uint32
	Attempt uint32
	Status  uint8
	Payload []byte
}

// hbMsg is a heartbeat ping or pong.
type hbMsg struct {
	Domain uint32
	Seq    uint64
}

func encodeChunk(m chunkMsg) []byte {
	buf := frameBuf(1 + 8 + 4 + 4 + 8 + 8 + 2 + len(m.Kernel) + 4 + len(m.Arg))
	buf = append(buf, byte(kindChunk))
	buf = binary.LittleEndian.AppendUint64(buf, m.Region)
	buf = binary.LittleEndian.AppendUint32(buf, m.Chunk)
	buf = binary.LittleEndian.AppendUint32(buf, m.Attempt)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Lo))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Hi))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Kernel)))
	buf = append(buf, m.Kernel...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Arg)))
	buf = append(buf, m.Arg...)
	return buf
}

// decodeChunk copies the variable-length fields out of pkt; use
// decodeChunkShared when the caller owns pkt exclusively.
func decodeChunk(pkt []byte) (chunkMsg, error) { return decodeChunkBuf(pkt, false) }

// decodeChunkShared decodes with m.Arg aliasing pkt — no payload copy.
// Only for receivers that own the delivered packet exclusively.
func decodeChunkShared(pkt []byte) (chunkMsg, error) { return decodeChunkBuf(pkt, true) }

func decodeChunkBuf(pkt []byte, share bool) (chunkMsg, error) {
	var m chunkMsg
	if len(pkt) < 1+8+4+4+8+8+2 || msgKind(pkt[0]) != kindChunk {
		return m, fmt.Errorf("offload: malformed chunk message (%d bytes)", len(pkt))
	}
	p := pkt[1:]
	m.Region = binary.LittleEndian.Uint64(p)
	m.Chunk = binary.LittleEndian.Uint32(p[8:])
	m.Attempt = binary.LittleEndian.Uint32(p[12:])
	m.Lo = int64(binary.LittleEndian.Uint64(p[16:]))
	m.Hi = int64(binary.LittleEndian.Uint64(p[24:]))
	klen := int(binary.LittleEndian.Uint16(p[32:]))
	p = p[34:]
	if len(p) < klen+4 {
		return m, fmt.Errorf("offload: chunk message truncated in kernel name")
	}
	m.Kernel = string(p[:klen])
	p = p[klen:]
	alen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != alen {
		return m, fmt.Errorf("offload: chunk message arg length %d, have %d bytes", alen, len(p))
	}
	if alen > 0 {
		if share {
			m.Arg = p
		} else {
			m.Arg = append([]byte(nil), p...)
		}
	}
	return m, nil
}

func encodeResult(m resultMsg) []byte {
	buf := frameBuf(1 + 8 + 4 + 4 + 1 + 4 + len(m.Payload))
	buf = append(buf, byte(kindResult))
	buf = binary.LittleEndian.AppendUint64(buf, m.Region)
	buf = binary.LittleEndian.AppendUint32(buf, m.Chunk)
	buf = binary.LittleEndian.AppendUint32(buf, m.Attempt)
	buf = append(buf, m.Status)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf
}

// decodeResult copies the payload out of pkt; use decodeResultShared
// when the caller owns pkt exclusively.
func decodeResult(pkt []byte) (resultMsg, error) { return decodeResultBuf(pkt, false) }

// decodeResultShared decodes with m.Payload aliasing pkt — no copy.
// Only for receivers that own the delivered packet exclusively.
func decodeResultShared(pkt []byte) (resultMsg, error) { return decodeResultBuf(pkt, true) }

func decodeResultBuf(pkt []byte, share bool) (resultMsg, error) {
	var m resultMsg
	if len(pkt) < 1+8+4+4+1+4 || msgKind(pkt[0]) != kindResult {
		return m, fmt.Errorf("offload: malformed result message (%d bytes)", len(pkt))
	}
	p := pkt[1:]
	m.Region = binary.LittleEndian.Uint64(p)
	m.Chunk = binary.LittleEndian.Uint32(p[8:])
	m.Attempt = binary.LittleEndian.Uint32(p[12:])
	m.Status = p[16]
	plen := int(binary.LittleEndian.Uint32(p[17:]))
	p = p[21:]
	if len(p) != plen {
		return m, fmt.Errorf("offload: result payload length %d, have %d bytes", plen, len(p))
	}
	if plen > 0 {
		if share {
			m.Payload = p
		} else {
			m.Payload = append([]byte(nil), p...)
		}
	}
	return m, nil
}

func encodeHB(kind msgKind, m hbMsg) []byte {
	buf := frameBuf(1 + 4 + 8)
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint32(buf, m.Domain)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	return buf
}

func decodeHB(kind msgKind, msg []byte) (hbMsg, error) {
	var m hbMsg
	if len(msg) != 1+4+8 || msgKind(msg[0]) != kind {
		return m, fmt.Errorf("offload: malformed heartbeat (%d bytes)", len(msg))
	}
	m.Domain = binary.LittleEndian.Uint32(msg[1:])
	m.Seq = binary.LittleEndian.Uint64(msg[5:])
	return m, nil
}
