package offload

import (
	"bytes"
	"testing"
)

func TestChunkRoundTrip(t *testing.T) {
	in := chunkMsg{
		Region:  42,
		Chunk:   7,
		Attempt: 3,
		Lo:      -5,
		Hi:      1 << 40,
		Kernel:  "ep-like",
		Arg:     []byte{1, 2, 3},
	}
	out, err := decodeChunk(encodeChunk(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Region != in.Region || out.Chunk != in.Chunk || out.Attempt != in.Attempt ||
		out.Lo != in.Lo || out.Hi != in.Hi || out.Kernel != in.Kernel || !bytes.Equal(out.Arg, in.Arg) {
		t.Errorf("round trip mismatch: %+v != %+v", out, in)
	}

	empty := chunkMsg{Region: 1, Kernel: "k"}
	out, err = decodeChunk(encodeChunk(empty))
	if err != nil {
		t.Fatal(err)
	}
	if out.Arg != nil {
		t.Errorf("empty arg decoded as %v", out.Arg)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := resultMsg{Region: 9, Chunk: 2, Attempt: 1, Status: statusKernelError, Payload: []byte("boom")}
	out, err := decodeResult(encodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Region != in.Region || out.Chunk != in.Chunk || out.Attempt != in.Attempt ||
		out.Status != in.Status || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	for _, kind := range []msgKind{kindPing, kindPong} {
		in := hbMsg{Domain: 3, Seq: 99}
		out, err := decodeHB(kind, encodeHB(kind, in))
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Errorf("kind %d round trip mismatch: %+v != %+v", kind, out, in)
		}
	}
	if _, err := decodeHB(kindPong, encodeHB(kindPing, hbMsg{})); err == nil {
		t.Error("pong decoder accepted a ping")
	}
}

func TestDecodeMalformed(t *testing.T) {
	good := encodeChunk(chunkMsg{Region: 1, Kernel: "k", Arg: []byte{1}})
	cases := [][]byte{
		nil,
		{byte(kindResult)},
		good[:len(good)-1],            // truncated arg
		append(good, 0xff),            // trailing garbage
		{byte(kindChunk), 0, 0, 0},    // way short
		encodeResult(resultMsg{})[:5], // truncated result
		encodeHB(kindPing, hbMsg{})[:4],
	}
	for i, pkt := range cases {
		if _, err := decodeChunk(pkt); err == nil && len(pkt) > 0 && msgKind(pkt[0]) == kindChunk {
			t.Errorf("case %d: decodeChunk accepted malformed input", i)
		}
		if _, err := decodeResult(pkt); err == nil && len(pkt) > 0 && msgKind(pkt[0]) == kindResult {
			t.Errorf("case %d: decodeResult accepted malformed input", i)
		}
		if _, err := decodeHB(kindPing, pkt); err == nil {
			t.Errorf("case %d: decodeHB accepted malformed input", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	k := FuncKernel{KernelName: "a"}
	if err := reg.Register(k); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(k); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register(FuncKernel{}); err == nil {
		t.Error("empty-name registration accepted")
	}
	if _, ok := reg.Lookup("a"); !ok {
		t.Error("registered kernel not found")
	}
	if _, ok := reg.Lookup("b"); ok {
		t.Error("phantom kernel found")
	}
	if n := reg.Names(); len(n) != 1 || n[0] != "a" {
		t.Errorf("Names() = %v", n)
	}
}
