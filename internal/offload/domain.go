package offload

import (
	"sync"
	"sync/atomic"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
)

// domain is the worker side of one offload pairing: an OpenMP runtime
// bound to its own hypervisor partition, reachable from the host only
// through MCAPI. Its dispatcher pops chunk descriptors off the command
// packet channel, runs them on the partition's runtime, and pushes
// encoded results back on the result channel; a second goroutine answers
// heartbeat pings so the host can tell a busy domain from a dead one.
type domain struct {
	id   int    // 1-based; MCAPI domain ID and partition ordinal
	name string // hypervisor partition name
	rt   *core.Runtime
	node *mcapi.Node
	reg  *Registry

	cmdRecv *mcapi.PktRecvHandle // host -> domain chunk descriptors
	resSend *mcapi.PktSendHandle // domain -> host results
	hbEp    *mcapi.Endpoint      // receives host pings
	hbHost  *mcapi.Endpoint      // host endpoint pongs are sent to

	killed atomic.Bool
	cmdReq atomic.Pointer[mcapi.Request]
	hbReq  atomic.Pointer[mcapi.Request]
	wg     sync.WaitGroup
}

func (d *domain) start() {
	d.wg.Add(2)
	go d.dispatch()
	go d.heartbeat()
}

// Kill simulates the domain crashing: both service loops abandon their
// pending receives and any chunk in progress dies without a result. The
// host only learns of the crash the way real hardware would — missed
// heartbeats. Idempotent.
func (d *domain) Kill() {
	if !d.killed.CompareAndSwap(false, true) {
		return
	}
	if r := d.cmdReq.Load(); r != nil {
		_ = r.Cancel()
	}
	if r := d.hbReq.Load(); r != nil {
		_ = r.Cancel()
	}
}

// restart brings a killed domain back for re-admission: the crash flag
// clears and fresh service loops start against the still-wired MCAPI
// endpoints (a restarted firmware image comes back on the same ports).
// It reports whether a restart actually happened (the domain must be
// killed, and only one restarter wins).
func (d *domain) restart() bool {
	if !d.killed.CompareAndSwap(true, false) {
		return false
	}
	d.start()
	return true
}

// stop tears the domain down for good. The node is finalized before
// waiting so loops blocked in MCAPI receives are woken by endpoint
// deletion; the host must have finalized its own node first so a
// dispatcher blocked sending into a full host queue is woken too.
func (d *domain) stop() {
	d.Kill()
	_ = d.node.Finalize()
	d.wg.Wait()
	_ = d.rt.Close()
}

// dispatch is the domain's command loop. Receives are issued as
// cancelable requests so Kill can yank the loop out from under a blocked
// receive; the killed re-check after storing the request closes the race
// where Kill runs between RecvI and Store.
func (d *domain) dispatch() {
	defer d.wg.Done()
	for {
		req := d.cmdRecv.RecvI(mcapi.TimeoutInfinite)
		d.cmdReq.Store(req)
		if d.killed.Load() {
			_ = req.Cancel()
		}
		if err := req.Wait(mcapi.TimeoutInfinite); err != nil {
			return
		}
		pkt, _, _ := req.Payload()
		if len(pkt) == 0 {
			continue
		}
		switch msgKind(pkt[0]) {
		case kindShutdown:
			return
		case kindChunk:
			if !d.serve(pkt) {
				return
			}
		case KindBatch:
			frames, err := DecodeBatch(pkt)
			if err != nil {
				continue
			}
			for _, f := range frames {
				if len(f) == 0 {
					continue
				}
				switch msgKind(f[0]) {
				case kindShutdown:
					return
				case kindChunk:
					if !d.serve(f) {
						return
					}
				}
			}
		}
	}
}

// serve executes one chunk descriptor and reports the result; it returns
// false when the domain should stop (killed, or the result channel is
// gone).
func (d *domain) serve(pkt []byte) bool {
	// The dispatcher owns each delivered packet exclusively, so the
	// chunk argument may alias it instead of being copied.
	m, err := decodeChunkShared(pkt)
	if err != nil {
		return true // drop malformed traffic, keep serving
	}
	res := resultMsg{Region: m.Region, Chunk: m.Chunk, Attempt: m.Attempt}
	if k, ok := d.reg.Lookup(m.Kernel); !ok {
		res.Status = statusUnknownKernel
		res.Payload = []byte(m.Kernel)
	} else if payload, kerr := k.Chunk(d.rt, int(m.Lo), int(m.Hi), m.Arg); kerr != nil {
		res.Status = statusKernelError
		res.Payload = []byte(kerr.Error())
	} else {
		res.Payload = payload
	}
	if d.killed.Load() {
		// Crashed mid-chunk: the computed result dies with the domain.
		return false
	}
	out := encodeResult(res)
	ok := d.resSend.Send(out, mcapi.TimeoutInfinite) == nil
	RecycleFrame(out)
	return ok
}

// heartbeat answers host pings with pongs carrying the domain ID and the
// ping's sequence number. Pongs are sent non-blocking: a full host queue
// just drops the pong, which is exactly what a liveness probe wants.
func (d *domain) heartbeat() {
	defer d.wg.Done()
	for {
		req := mcapi.MsgRecvTI(d.hbEp, mcapi.TimeoutInfinite)
		d.hbReq.Store(req)
		if d.killed.Load() {
			_ = req.Cancel()
		}
		if err := req.Wait(mcapi.TimeoutInfinite); err != nil {
			return
		}
		msg, _, _ := req.Payload()
		ping, err := decodeHB(kindPing, msg)
		if err != nil {
			continue
		}
		pong := encodeHB(kindPong, hbMsg{Domain: uint32(d.id), Seq: ping.Seq})
		err = mcapi.MsgSend(d.hbHost, pong, 0, mcapi.TimeoutImmediate)
		RecycleFrame(pong)
		if err != nil {
			if err == mcapi.ErrMemLimit || err == mcapi.ErrTimeout {
				continue // queue full: drop the pong
			}
			return // host endpoint gone
		}
	}
}
