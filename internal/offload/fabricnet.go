package offload

import (
	"fmt"

	"openmpmca/internal/core"
	"openmpmca/internal/mcapi"
	"openmpmca/internal/platform"
)

// The multi-domain fabric net: the board partitioned under the embedded
// hypervisor, one MCA-backed OpenMP runtime per partition, and a
// host<->worker MCAPI wiring per worker domain. The chunk offloader and
// the MTAPI task fabric (internal/taskfabric) build the same net and
// differ only in what they send over it, so the builder lives here and
// both import it.

// Well-known ports on each worker domain's MCAPI node. Host-side
// endpoints use PortAny; workers sit on fixed ports the way firmware
// images do.
const (
	portCmd mcapi.Port = 1 // host -> worker packet channel, commands
	portRes mcapi.Port = 2 // worker -> host packet channel, results
	portHB  mcapi.Port = 3 // connectionless heartbeat pings

	// portPeerBase starts the steal-mesh port range: worker j receives
	// peer traffic from worker i on port portPeerBase+i. Packet channels
	// are strictly 1:1, so each ordered worker pair gets its own port.
	portPeerBase mcapi.Port = 8
)

// hostDomainID is the host runtime's MCAPI domain; worker i lives in
// domain i (1-based).
const hostDomainID mcapi.DomainID = 0

// NetConfig sizes a fabric net build.
type NetConfig struct {
	Domains    int             // worker domain count (>= 1)
	Board      *platform.Board // board to partition
	NamePrefix string          // partition names: <prefix>-host, <prefix>-dom<i>
	CmdDepth   int             // host->worker command queue depth
	ResDepth   int             // worker->host result queue depth
	Mesh       bool            // also wire N×(N−1) direct worker-to-worker channels
	PeerDepth  int             // per-direction peer queue depth (default 8)
}

// NetLink is one worker domain of a built net, both sides of its wiring:
// the worker-side handles its service loops read and write, and the
// host-side handles the scheduler drives.
type NetLink struct {
	ID   int    // 1-based; MCAPI domain ID and partition ordinal
	Name string // hypervisor partition name
	RT   *core.Runtime
	Node *mcapi.Node
	CPUs int // hardware threads in this domain's partition

	// Worker side.
	CmdRecv *mcapi.PktRecvHandle // host -> worker commands
	ResSend *mcapi.PktSendHandle // worker -> host results
	HBEp    *mcapi.Endpoint      // receives host pings
	HBHost  *mcapi.Endpoint      // host endpoint pongs are sent to

	// Host side.
	CmdSend *mcapi.PktSendHandle // commands out
	ResRecv *mcapi.PktRecvHandle // results back

	// Steal mesh (nil maps unless NetConfig.Mesh): direct packet
	// channels to and from every other worker domain, keyed by peer id.
	PeerSend map[int]*mcapi.PktSendHandle // this worker -> peer
	PeerRecv map[int]*mcapi.PktRecvHandle // peer -> this worker
}

// Net is a built fabric: the hypervisor, the host runtime and MCAPI
// node, and one NetLink per worker domain.
type Net struct {
	HV       *platform.Hypervisor
	Comm     *mcapi.System
	Host     *core.Runtime
	HostNode *mcapi.Node
	HostCPUs int
	Links    []*NetLink
}

// partitionCPUs splits the board's hardware threads into groups (group 0
// is the host). When the board has enough physical clusters each group
// gets a whole cluster — partitions then never share an L2 — otherwise
// the threads are split evenly and contiguously.
func partitionCPUs(b *platform.Board, groups int) ([][]int, error) {
	if groups < 2 {
		return nil, fmt.Errorf("offload: need at least one worker domain")
	}
	if b.Clusters() >= groups && b.CoresPerCluster > 1 {
		out := make([][]int, groups)
		for i := range out {
			cpus, err := b.ClusterCPUs(i)
			if err != nil {
				return nil, err
			}
			out[i] = cpus
		}
		return out, nil
	}
	hw := b.HWThreads()
	if hw < groups {
		return nil, fmt.Errorf("offload: board %s has %d hw threads, cannot host %d domains",
			b.Name, hw, groups-1)
	}
	out := make([][]int, groups)
	next := 0
	for i := range out {
		n := hw / groups
		if i < hw%groups {
			n++
		}
		for j := 0; j < n; j++ {
			out[i] = append(out[i], next)
			next++
		}
	}
	return out, nil
}

// BuildNet partitions the board under the embedded hypervisor, boots one
// MCA-backed OpenMP runtime per partition, and wires host<->worker MCAPI
// channels plus heartbeat endpoints. On any error everything already
// built is torn down.
func BuildNet(cfg NetConfig) (*Net, error) {
	b := cfg.Board
	hv, err := platform.NewHypervisor(b)
	if err != nil {
		return nil, err
	}
	groups := cfg.Domains + 1
	sets, err := partitionCPUs(b, groups)
	if err != nil {
		return nil, err
	}
	memMB := b.MemMB / groups

	var rts []*core.Runtime
	fail := func(err error) (*Net, error) {
		for _, rt := range rts {
			_ = rt.Close()
		}
		for _, p := range hv.Partitions() {
			_ = hv.Stop(p.Name)
		}
		return nil, err
	}

	names := make([]string, groups)
	for i := 0; i < groups; i++ {
		name, guest := cfg.NamePrefix+"-host", platform.GuestLinux
		if i > 0 {
			name, guest = fmt.Sprintf("%s-dom%d", cfg.NamePrefix, i), platform.GuestRTOS
		}
		names[i] = name
		if _, err := hv.CreatePartition(name, guest, sets[i], memMB); err != nil {
			return fail(err)
		}
		if err := hv.Start(name); err != nil {
			return fail(err)
		}
		sys, err := hv.PartitionSystem(name)
		if err != nil {
			return fail(err)
		}
		layer, err := core.NewMCALayer(sys)
		if err != nil {
			return fail(err)
		}
		rt, err := core.New(core.WithLayer(layer))
		if err != nil {
			return fail(err)
		}
		rts = append(rts, rt)
	}

	comm := mcapi.NewSystem()
	hostNode, err := comm.Initialize(hostDomainID, 0)
	if err != nil {
		return fail(err)
	}
	net := &Net{
		HV:       hv,
		Comm:     comm,
		Host:     rts[0],
		HostNode: hostNode,
		HostCPUs: len(sets[0]),
	}

	cmdAttrs := &mcapi.EndpointAttributes{QueueDepth: cfg.CmdDepth}
	resAttrs := &mcapi.EndpointAttributes{QueueDepth: cfg.ResDepth}
	for i := 1; i < groups; i++ {
		node, err := comm.Initialize(mcapi.DomainID(i), 0)
		if err != nil {
			return fail(err)
		}
		cmdEp, err := node.CreateEndpoint(portCmd, cmdAttrs)
		if err != nil {
			return fail(err)
		}
		resEp, err := node.CreateEndpoint(portRes, nil)
		if err != nil {
			return fail(err)
		}
		hbEp, err := node.CreateEndpoint(portHB, &mcapi.EndpointAttributes{QueueDepth: 4})
		if err != nil {
			return fail(err)
		}
		cmdSrc, err := hostNode.CreateEndpoint(mcapi.PortAny, nil)
		if err != nil {
			return fail(err)
		}
		resDst, err := hostNode.CreateEndpoint(mcapi.PortAny, resAttrs)
		if err != nil {
			return fail(err)
		}
		hbDst, err := hostNode.CreateEndpoint(mcapi.PortAny, &mcapi.EndpointAttributes{QueueDepth: 8})
		if err != nil {
			return fail(err)
		}
		if err := mcapi.PktConnect(cmdSrc, cmdEp); err != nil {
			return fail(err)
		}
		if err := mcapi.PktConnect(resEp, resDst); err != nil {
			return fail(err)
		}
		cmdSend, err := mcapi.PktOpenSend(cmdSrc)
		if err != nil {
			return fail(err)
		}
		cmdRecv, err := mcapi.PktOpenRecv(cmdEp)
		if err != nil {
			return fail(err)
		}
		resSend, err := mcapi.PktOpenSend(resEp)
		if err != nil {
			return fail(err)
		}
		resRecv, err := mcapi.PktOpenRecv(resDst)
		if err != nil {
			return fail(err)
		}
		net.Links = append(net.Links, &NetLink{
			ID:      i,
			Name:    names[i],
			RT:      rts[i],
			Node:    node,
			CPUs:    len(sets[i]),
			CmdRecv: cmdRecv,
			ResSend: resSend,
			HBEp:    hbEp,
			HBHost:  hbDst,
			CmdSend: cmdSend,
			ResRecv: resRecv,
		})
	}
	if cfg.Mesh && cfg.Domains >= 2 {
		if err := buildMesh(net, cfg); err != nil {
			return fail(err)
		}
	}
	return net, nil
}

// buildMesh wires the N×(N−1) unidirectional steal-mesh channels: for
// every ordered worker pair (src, dst) a packet channel from src's node
// to a fixed per-source port on dst's node, so any worker can push a
// steal request or a yielded task straight to any peer without the host
// relaying frames.
func buildMesh(net *Net, cfg NetConfig) error {
	depth := cfg.PeerDepth
	if depth <= 0 {
		depth = 8
	}
	attrs := &mcapi.EndpointAttributes{QueueDepth: depth}
	for _, l := range net.Links {
		l.PeerSend = make(map[int]*mcapi.PktSendHandle, len(net.Links)-1)
		l.PeerRecv = make(map[int]*mcapi.PktRecvHandle, len(net.Links)-1)
	}
	for _, src := range net.Links {
		for _, dst := range net.Links {
			if src.ID == dst.ID {
				continue
			}
			recvEp, err := dst.Node.CreateEndpoint(portPeerBase+mcapi.Port(src.ID), attrs)
			if err != nil {
				return err
			}
			sendEp, err := src.Node.CreateEndpoint(mcapi.PortAny, nil)
			if err != nil {
				return err
			}
			if err := mcapi.PktConnect(sendEp, recvEp); err != nil {
				return err
			}
			send, err := mcapi.PktOpenSend(sendEp)
			if err != nil {
				return err
			}
			recv, err := mcapi.PktOpenRecv(recvEp)
			if err != nil {
				return err
			}
			src.PeerSend[dst.ID] = send
			dst.PeerRecv[src.ID] = recv
		}
	}
	return nil
}
