package offload

import (
	"sync/atomic"
	"time"

	"openmpmca/internal/mcapi"
)

// Host-side domain health tracking, shared by the chunk offloader and
// the MTAPI task fabric (internal/taskfabric). Both subsystems monitor
// worker domains the same way — periodic MCAPI pings answered by pongs,
// a domain silent past a deadline declared lost — and readmit a
// restarted domain along the same path: reset the pong clock first, then
// clear the lost flag, so the monitor cannot immediately re-declare the
// domain dead.

// HealthState is the host's liveness record for one worker domain. The
// zero value is a live domain that has never ponged; call RecordPong (or
// Readmit) to start its clock.
type HealthState struct {
	lost     atomic.Bool
	lastPong atomic.Int64 // unix nanos of the latest pong
}

// Lost reports whether the domain is currently declared lost.
func (h *HealthState) Lost() bool { return h.lost.Load() }

// MarkLost transitions live -> lost exactly once; it reports whether
// this call made the transition.
func (h *HealthState) MarkLost() bool { return h.lost.CompareAndSwap(false, true) }

// RecordPong notes a pong received at the given unix-nano time.
func (h *HealthState) RecordPong(now int64) { h.lastPong.Store(now) }

// StartClock stamps a never-ponged peer's clock: the zero value's
// lastPong of 0 compares against the unix epoch, which would read as
// instantly expired the moment a monitor looks at it. Stamping only the
// zero value keeps a real pong timestamp intact. It reports whether the
// clock was actually started by this call.
func (h *HealthState) StartClock(now int64) bool {
	return h.lastPong.CompareAndSwap(0, now)
}

// Expired reports whether the domain has been silent longer than
// lostAfter as of now.
func (h *HealthState) Expired(now int64, lostAfter time.Duration) bool {
	return now-h.lastPong.Load() > int64(lostAfter)
}

// Silence reports how long the domain has been quiet: the age of the
// last pong as of now. For a lost domain the clock froze at the final
// pong, so this is the "last-pong age" loss errors report.
func (h *HealthState) Silence() time.Duration {
	return time.Duration(time.Now().UnixNano() - h.lastPong.Load())
}

// Readmit transitions lost -> live for a domain that restarted: the pong
// clock is reset before the flag flips so the health monitor sees a
// fresh domain. It reports whether the domain was actually lost (a live
// domain cannot be readmitted).
func (h *HealthState) Readmit(now int64) bool {
	if !h.lost.Load() {
		return false
	}
	h.lastPong.Store(now)
	return h.lost.CompareAndSwap(true, false)
}

// HealthPeer is one monitored worker domain as the health monitor sees
// it: its liveness record plus the two heartbeat endpoints.
type HealthPeer struct {
	ID       int             // worker domain ID (for ping frames)
	State    *HealthState    // shared liveness record
	PingTo   *mcapi.Endpoint // worker endpoint pings are sent to
	PongFrom *mcapi.Endpoint // host endpoint pongs arrive on
}

// MonitorHealth runs the host-side heartbeat loop until stop closes:
// each period it drains pongs into every live peer's state, declares
// peers silent past lostAfter lost (calling onLost once per transition),
// and pings the survivors. onPong, if non-nil, is called per accepted
// pong — both subsystems use it to count heartbeats. A peer readmitted
// via HealthState.Readmit re-enters the ping rotation automatically.
//
// Two failure modes are handled explicitly rather than silently:
//
//   - A peer whose clock was never started (zero-value HealthState) has
//     lastPong == 0, which compares against the unix epoch and would read
//     as expired on the very first tick. Every peer's clock is stamped
//     when the loop starts, so a slow first pong cannot be declared lost
//     at t=0.
//   - Pings are sent non-blocking, so a briefly-full send queue drops
//     the ping. A dropped ping means the silence that follows is the
//     host's fault, not the domain's: each drop is counted via onDrop
//     (if non-nil) and grants the peer one extra tick — the ping is
//     retried before the loss deadline may fire, instead of
//     false-positiving a healthy domain as lost.
func MonitorHealth(stop <-chan struct{}, period, lostAfter time.Duration,
	peers []HealthPeer, onLost func(peer int), onPong func(), onDrop func()) {
	tick := time.NewTicker(period)
	defer tick.Stop()
	start := time.Now().UnixNano()
	dropped := make([]bool, len(peers)) // last ping send failed
	graced := make([]bool, len(peers))  // retry grace already spent this episode
	for _, p := range peers {
		p.State.StartClock(start)
	}
	var seq uint64
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		for i, p := range peers {
			if p.State.Lost() {
				continue
			}
			for {
				msg, _, err := mcapi.MsgRecv(p.PongFrom, mcapi.TimeoutImmediate)
				if err != nil {
					break
				}
				if _, derr := decodeHB(kindPong, msg); derr == nil {
					p.State.RecordPong(now)
					if onPong != nil {
						onPong()
					}
				}
			}
			if p.State.Expired(now, lostAfter) {
				if dropped[i] && !graced[i] {
					// The last ping never left the host, so the silence
					// is self-inflicted; spend one retry tick before
					// judging the peer. The grace is bounded: a peer that
					// stays unreachable expires on the next tick.
					graced[i] = true
				} else {
					if p.State.MarkLost() {
						onLost(i)
					}
					continue
				}
			}
			seq++
			ping := encodeHB(kindPing, hbMsg{Domain: uint32(p.ID), Seq: seq})
			err := mcapi.MsgSend(p.PingTo, ping, 0, mcapi.TimeoutImmediate)
			RecycleFrame(ping)
			if err != nil {
				dropped[i] = true
				if onDrop != nil {
					onDrop()
				}
			} else {
				dropped[i] = false
				graced[i] = false
			}
		}
	}
}
